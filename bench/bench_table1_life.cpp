// T1-life — Table I, "Parallel Game of Life ... Experimental Scalability
// Study": the lab report's speedup/efficiency table for the threaded
// engine, the message-passing engine's traffic accounting, timed
// generation kernels, and the byte-vs-packed kernel throughput ratio
// (the SWAR rewrite's headline number).
//
// Expected shape: near-linear speedup up to the core count, flattening
// beyond it; packed kernel >= 10x the byte reference on a 1024x1024 torus.
//
// `--smoke` runs the printed studies at reduced size and skips the
// google-benchmark loops (the CI Release job's quick exercise).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <iostream>

#include "bench_util.hpp"

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/perf/scalability.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace {

/// cells * generations / elapsed-ns for one engine run.
double cells_per_ns(std::size_t n, int gens,
                    const std::function<void(pdc::life::Grid&, int)>& engine,
                    const pdc::life::Grid& start) {
  pdc::life::Grid board = start;
  engine(board, 1);  // warmup (pool spin-up, page faults)
  board = start;
  pdc::perf::Timer t;
  engine(board, gens);
  const auto ns = static_cast<double>(t.elapsed_ns());
  benchmark::DoNotOptimize(board);
  return static_cast<double>(n) * static_cast<double>(n) * gens / ns;
}

void print_packed_vs_byte(bool smoke) {
  const std::size_t n = 1024;  // acceptance board: 1024x1024 torus
  const int byte_gens = smoke ? 2 : 6;
  const int packed_gens = smoke ? 64 : 256;
  const auto start = pdc::life::random_grid(n, n, 0.3, 42);

  const double byte_tp =
      cells_per_ns(n, byte_gens, pdc::life::run_reference, start);
  const double packed_tp = cells_per_ns(
      n, packed_gens,
      [](pdc::life::Grid& b, int g) { pdc::life::run_sequential(b, g); },
      start);

  pdc::perf::Table table({"kernel", "cells/ns", "ratio"});
  table.add_row({"byte reference", std::to_string(byte_tp), "1.00"});
  table.add_row({"packed SWAR", std::to_string(packed_tp),
                 std::to_string(packed_tp / byte_tp)});
  std::cout << "== T1-life: byte vs packed sequential kernel (" << n << "x"
            << n << " torus) ==\n"
            << table.str() << "(acceptance: packed >= 10x byte)\n\n";
}

void print_scalability_study(pdc::benchutil::Options& bopt) {
  const bool smoke = bopt.smoke;
  // The packed kernel turned a compute-bound lab into a near-memory-bound
  // one; the study board is much bigger than the byte-era 384x384 so a
  // generation's compute (n^2/64 words) still dominates the two
  // per-generation barriers at higher thread counts.
  const std::size_t n = smoke ? 512 : 2048;
  const int gens = smoke ? 30 : 50;
  const auto start = pdc::life::random_grid(n, n, 0.3, 42);

  pdc::perf::StudyConfig cfg;
  cfg.thread_counts = {1, 2, 4, 8};
  cfg.repetitions = smoke ? 2 : 3;
  const auto study = pdc::perf::run_strong_scaling(cfg, [&](int threads) {
    pdc::life::Grid board = start;
    pdc::life::run_threaded(board, gens, threads);
  });

  std::cout << "== T1-life: threaded Game of Life strong scaling ("
            << n << "x" << n << " torus, " << gens << " generations, "
            << "packed kernel) ==\n"
            << study.to_table() << "\n";

  // Message-passing variant: traffic per rank count. Halo rows travel
  // packed — one word per 64 cells.
  pdc::perf::Table traffic({"ranks", "messages", "payload words moved",
                            "words/generation"});
  const std::size_t tn = smoke ? 256 : 384;
  const int tgens = 30;
  const auto tstart = pdc::life::random_grid(tn, tn, 0.3, 42);
  for (int ranks : {1, 2, 4, 8}) {
    pdc::life::Grid board = tstart;
    std::uint64_t msgs = 0, words = 0;
    pdc::life::run_message_passing(board, tgens, ranks, &msgs, &words);
    traffic.add_row(
        {std::to_string(ranks), std::to_string(msgs), std::to_string(words),
         std::to_string(words / static_cast<std::uint64_t>(tgens))});
  }
  // Exact traffic accounting — deterministic for a fixed board, so the
  // CI release job diffs it against bench/expectations/ (the scaling
  // table above carries timings and stays print-only). Row values depend
  // on the board size, which --smoke changes; the expectation file is
  // generated at smoke size.
  bopt.add_json_table("mp halo traffic", traffic);
  std::cout << "== T1-life: message-passing halo-exchange traffic (" << tn
            << " columns = " << (tn + 63) / 64 << " words/halo row) ==\n"
            << traffic.str()
            << "(halo volume grows linearly with ranks: 2 packed rows x "
               "ranks per generation — 64x fewer words than the byte "
               "wire format)\n\n";
}

void BM_LifeReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_reference(board, 1);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_LifeReference)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_LifeSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_sequential(board, 1);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_LifeSequential)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_LifeThreaded(benchmark::State& state) {
  const std::size_t n = 1024;
  const int threads = static_cast<int>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_threaded(board, 1, threads);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_LifeThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LifeMessagePassing(benchmark::State& state) {
  const std::size_t n = 256;
  const int ranks = static_cast<int>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_message_passing(board, 1, ranks);
    benchmark::DoNotOptimize(board);
  }
}
BENCHMARK(BM_LifeMessagePassing)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  print_packed_vs_byte(opt.smoke);
  print_scalability_study(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
