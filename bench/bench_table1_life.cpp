// T1-life — Table I, "Parallel Game of Life ... Experimental Scalability
// Study": the lab report's speedup/efficiency table for the threaded
// engine, the message-passing engine's traffic accounting, and timed
// generation kernels.
//
// Expected shape: near-linear speedup up to the core count, flattening
// beyond it; the Amdahl fit reports a small serial fraction.

#include <benchmark/benchmark.h>

#include <iostream>

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/perf/scalability.hpp"
#include "pdc/perf/table.hpp"

namespace {

void print_scalability_study() {
  const std::size_t n = 384;
  const int gens = 30;
  const auto start = pdc::life::random_grid(n, n, 0.3, 42);

  pdc::perf::StudyConfig cfg;
  cfg.thread_counts = {1, 2, 4, 8};
  cfg.repetitions = 3;
  const auto study = pdc::perf::run_strong_scaling(cfg, [&](int threads) {
    pdc::life::Grid board = start;
    pdc::life::run_threaded(board, gens, threads);
  });

  std::cout << "== T1-life: threaded Game of Life strong scaling ("
            << n << "x" << n << " torus, " << gens << " generations) ==\n"
            << study.to_table() << "\n";

  // Message-passing variant: traffic per rank count.
  pdc::perf::Table traffic({"ranks", "messages", "cell-words moved",
                            "words/generation"});
  for (int ranks : {1, 2, 4, 8}) {
    pdc::life::Grid board = start;
    std::uint64_t msgs = 0, words = 0;
    pdc::life::run_message_passing(board, gens, ranks, &msgs, &words);
    traffic.add_row({std::to_string(ranks), std::to_string(msgs),
                     std::to_string(words),
                     std::to_string(words / static_cast<std::uint64_t>(gens))});
  }
  std::cout << "== T1-life: message-passing halo-exchange traffic ==\n"
            << traffic.str()
            << "(halo volume grows linearly with ranks: 2 rows x ranks "
               "per generation)\n\n";
}

void BM_LifeSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_sequential(board, 1);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_LifeSequential)->Arg(128)->Arg(256)->Arg(512);

void BM_LifeThreaded(benchmark::State& state) {
  const std::size_t n = 256;
  const int threads = static_cast<int>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_threaded(board, 1, threads);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_LifeThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LifeMessagePassing(benchmark::State& state) {
  const std::size_t n = 256;
  const int ranks = static_cast<int>(state.range(0));
  auto board = pdc::life::random_grid(n, n, 0.3, 7);
  for (auto _ : state) {
    pdc::life::run_message_passing(board, 1, ranks);
    benchmark::DoNotOptimize(board);
  }
}
BENCHMARK(BM_LifeMessagePassing)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_scalability_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
