// T1-bomb — Table I "Binary Bomb" substrate performance: SwatVM dispatch
// rate, assembler throughput, and the instruction-count profile of the
// recursive-call workload (the part of the lab where students count what
// the stack costs).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "pdc/isa/assembler.hpp"
#include "pdc/isa/vm.hpp"
#include "pdc/perf/table.hpp"

namespace {

const char* kFib = R"(
    in r0
    push r0
    call fib
    pop r1
    out r0
    halt
  fib:
    push fp
    mov fp, sp
    mov r1, [fp+2]
    cmp r1, $2
    jge rec
    mov r0, r1
    pop fp
    ret
  rec:
    sub r1, $1
    push r1
    call fib
    pop r1
    push r0
    mov r1, [fp+2]
    sub r1, $2
    push r1
    call fib
    pop r1
    pop r2
    add r0, r2
    pop fp
    ret
)";

void print_fib_cost_table() {
  const auto program = pdc::isa::assemble(kFib);
  pdc::perf::Table t({"n", "fib(n)", "instructions executed"});
  for (std::int64_t n : {5, 10, 15, 20}) {
    pdc::isa::Vm vm(program, 1 << 16);
    vm.set_input({n});
    vm.run(100'000'000);
    t.add_row({std::to_string(n), std::to_string(vm.output().back()),
               pdc::perf::fmt_count(
                   static_cast<double>(vm.instructions_executed()))});
  }
  std::cout << "== T1-bomb: recursive fib on the VM stack ==\n"
            << t.str()
            << "(instruction count grows like fib(n) itself — the cost of "
               "naive recursion, visible in the trace)\n\n";
}

void BM_VmDispatchRate(benchmark::State& state) {
  // Tight countdown loop: measures instructions/second through the
  // fetch-decode-execute core.
  const auto program = pdc::isa::assemble(R"(
      mov r0, $100000
    loop:
      sub r0, $1
      cmp r0, $0
      jg loop
      halt
  )");
  for (auto _ : state) {
    pdc::isa::Vm vm(program);
    const auto executed = vm.run(10'000'000);
    benchmark::DoNotOptimize(executed);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(executed));
  }
}
BENCHMARK(BM_VmDispatchRate);

void BM_Assemble(benchmark::State& state) {
  const std::string source(kFib);
  for (auto _ : state) {
    auto prog = pdc::isa::assemble(source);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_Assemble);

void BM_Disassemble(benchmark::State& state) {
  const auto program = pdc::isa::assemble(kFib);
  for (auto _ : state) {
    auto text = pdc::isa::disassemble_program(program);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Disassemble);

void BM_VmCallReturn(benchmark::State& state) {
  // Call/return pair cost (stack traffic) vs straight-line code.
  const auto program = pdc::isa::assemble(R"(
      mov r2, $20000
    loop:
      call f
      sub r2, $1
      cmp r2, $0
      jg loop
      halt
    f:
      ret
  )");
  for (auto _ : state) {
    pdc::isa::Vm vm(program);
    benchmark::DoNotOptimize(vm.run(10'000'000));
  }
}
BENCHMARK(BM_VmCallReturn);

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_fib_cost_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
