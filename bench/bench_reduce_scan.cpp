// CS40-reduce / T3-scan — "parallel reductions on large arrays" (the CUDA
// lab's CPU substitute) and the Scan paradigm: tree-reduction and Blelloch
// scan scaling with threads, plus pack and histogram applications.
//
// Expected shape: reduce/scan speed up to the core count; scan costs ~2x
// a reduce (two passes); pack tracks scan.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>
#include <numeric>
#include <random>

#include "pdc/algo/prefix.hpp"
#include "pdc/core/reduce_scan.hpp"
#include "pdc/perf/scalability.hpp"
#include "pdc/perf/table.hpp"

namespace {

void print_reduction_study() {
  const std::size_t n = 1 << 23;
  std::vector<double> xs(n);
  std::mt19937_64 rng(2);
  for (auto& x : xs) x = static_cast<double>(rng() % 1000) / 500.0 - 1.0;

  pdc::perf::StudyConfig cfg;
  cfg.thread_counts = {1, 2, 4, 8};
  cfg.repetitions = 3;

  const auto reduce_study =
      pdc::perf::run_strong_scaling(cfg, [&](int threads) {
        volatile double sink =
            pdc::core::parallel_reduce<double>(xs, 0.0, threads);
        (void)sink;
      });
  std::cout << "== CS40-reduce: tree reduction of 2^23 doubles ==\n"
            << reduce_study.to_table() << "\n";

  std::vector<double> out(n);
  const auto scan_study =
      pdc::perf::run_strong_scaling(cfg, [&](int threads) {
        pdc::core::parallel_inclusive_scan<double>(xs, out, 0.0, threads);
      });
  std::cout << "== T3-scan: Blelloch-style inclusive scan of 2^23 doubles "
               "==\n"
            << scan_study.to_table() << "\n";
}

void BM_Reduce(benchmark::State& state) {
  const std::size_t n = 1 << 22;
  std::vector<std::int64_t> xs(n);
  std::iota(xs.begin(), xs.end(), 0);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pdc::core::parallel_reduce<std::int64_t>(xs, 0, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Reduce)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_InclusiveScan(benchmark::State& state) {
  const std::size_t n = 1 << 22;
  std::vector<std::int64_t> xs(n), out(n);
  std::iota(xs.begin(), xs.end(), 0);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::core::parallel_inclusive_scan<std::int64_t>(xs, out, 0, threads);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InclusiveScan)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Pack(benchmark::State& state) {
  const std::size_t n = 1 << 21;
  std::vector<std::int64_t> xs(n);
  std::mt19937_64 rng(3);
  for (auto& x : xs) x = static_cast<std::int64_t>(rng() % 100);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto kept = pdc::algo::parallel_pack<std::int64_t>(
        xs, [](std::int64_t v) { return v < 50; }, threads);
    benchmark::DoNotOptimize(kept);
  }
}
BENCHMARK(BM_Pack)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Histogram(benchmark::State& state) {
  const std::size_t n = 1 << 22;
  std::vector<std::int64_t> xs(n);
  std::mt19937_64 rng(4);
  for (auto& x : xs) x = static_cast<std::int64_t>(rng() % 256);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto hist = pdc::algo::parallel_histogram<std::int64_t>(
        xs, 256, [](std::int64_t v) { return static_cast<std::size_t>(v); },
        threads);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Histogram)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_DotProduct(benchmark::State& state) {
  const std::size_t n = 1 << 22;
  std::vector<double> xs(n, 1.5);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const double dot = pdc::core::parallel_transform_reduce<double, double>(
        xs, 0.0, threads, [](double x) { return x * x; });
    benchmark::DoNotOptimize(dot);
  }
}
BENCHMARK(BM_DotProduct)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_reduction_study();
  return pdc::benchutil::finish(opt, argc, argv);
}
