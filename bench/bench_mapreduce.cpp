// CS87-mapred — the planned Hadoop lab, at laptop scale: word-count worker
// scaling, the combiner's effect on shuffle volume, and the partition-count
// knob.
//
// Expected shape: throughput scales with map workers up to core count;
// the combiner shrinks shuffled pairs to ~distinct-keys-per-worker; too
// few partitions serialize the reduce phase.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "pdc/mapreduce/jobs.hpp"
#include "pdc/perf/scalability.hpp"
#include "pdc/perf/table.hpp"

namespace {

void print_combiner_table() {
  const auto corpus = pdc::mapreduce::synthetic_corpus(400, 400);
  pdc::perf::Table t({"combiner", "map emitted", "shuffled", "reduction"});
  for (bool use : {false, true}) {
    pdc::mapreduce::JobConfig cfg;
    cfg.map_workers = 4;
    cfg.use_combiner = use;
    pdc::mapreduce::JobStats stats;
    (void)pdc::mapreduce::word_count(corpus, cfg, &stats);
    t.add_row({use ? "yes" : "no",
               pdc::perf::fmt_count(static_cast<double>(stats.map_emitted)),
               pdc::perf::fmt_count(static_cast<double>(stats.shuffled)),
               pdc::perf::fmt(static_cast<double>(stats.map_emitted) /
                                  static_cast<double>(stats.shuffled),
                              1) +
                   "x"});
  }
  std::cout << "== CS87-mapred: combiner ablation (400 docs x 400 words) "
               "==\n"
            << t.str()
            << "(the combiner collapses each worker's repeats before the "
               "shuffle — Hadoop's single most important optimization)\n\n";

  pdc::perf::StudyConfig cfg;
  cfg.thread_counts = {1, 2, 4};
  cfg.repetitions = 2;
  const auto study = pdc::perf::run_strong_scaling(cfg, [&](int workers) {
    pdc::mapreduce::JobConfig jc;
    jc.map_workers = workers;
    jc.reduce_workers = workers;
    volatile auto n = pdc::mapreduce::word_count(corpus, jc).size();
    (void)n;
  });
  std::cout << "== CS87-mapred: worker scaling ==\n" << study.to_table()
            << "\n";
}

void BM_WordCount(benchmark::State& state) {
  const auto corpus = pdc::mapreduce::synthetic_corpus(200, 200);
  const int workers = static_cast<int>(state.range(0));
  pdc::mapreduce::JobConfig cfg;
  cfg.map_workers = workers;
  cfg.reduce_workers = workers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdc::mapreduce::word_count(corpus, cfg));
  }
}
BENCHMARK(BM_WordCount)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_WordCountPartitions(benchmark::State& state) {
  const auto corpus = pdc::mapreduce::synthetic_corpus(200, 200);
  pdc::mapreduce::JobConfig cfg;
  cfg.map_workers = 2;
  cfg.reduce_workers = 2;
  cfg.partitions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdc::mapreduce::word_count(corpus, cfg));
  }
}
BENCHMARK(BM_WordCountPartitions)->Arg(1)->Arg(4)->Arg(32)->UseRealTime();

void BM_InvertedIndex(benchmark::State& state) {
  const auto corpus = pdc::mapreduce::synthetic_corpus(100, 100);
  pdc::mapreduce::JobConfig cfg;
  cfg.map_workers = static_cast<int>(state.range(0));
  cfg.reduce_workers = cfg.map_workers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdc::mapreduce::inverted_index(corpus, cfg));
  }
}
BENCHMARK(BM_InvertedIndex)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_combiner_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
