// T2-memhier / T2-vm — Table II "The Memory Hierarchy" and "Virtual
// Memory": the locality experiments CS31 has students run, as exact model
// counts:
//   - row- vs column-major traversal miss rate across associativities
//   - replacement-policy comparison on the same trace
//   - working-set sweep (the miss-rate "cliff" at the cache size)
//   - two-level AMAT
//   - page-replacement fault curves including Belady's anomaly
//
// Expected shape: row-major ~ line_size/elem_size times fewer misses than
// column-major; miss rate cliffs when the working set exceeds the cache;
// LRU <= FIFO ~ Random on locality-rich traces; FIFO shows the anomaly.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "pdc/memsim/cache.hpp"
#include "pdc/memsim/paging.hpp"
#include "pdc/memsim/trace.hpp"
#include "pdc/perf/table.hpp"

namespace {

namespace pm = pdc::memsim;

void print_traversal_table(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"associativity", "row-major miss%", "col-major miss%",
                      "ratio"});
  const auto row = pm::matrix_row_major(128, 128, 8);
  const auto col = pm::matrix_col_major(128, 128, 8);
  for (std::size_t assoc : {1u, 2u, 4u, 8u}) {
    pm::CacheConfig cfg;
    cfg.total_size = 16 * 1024;
    cfg.line_size = 64;
    cfg.associativity = assoc;
    pm::Cache rc(cfg), cc(cfg);
    const auto rs = pm::run_trace(rc, row);
    const auto cs = pm::run_trace(cc, col);
    t.add_row({std::to_string(assoc),
               pdc::perf::fmt(100 * rs.miss_rate(), 2),
               pdc::perf::fmt(100 * cs.miss_rate(), 2),
               pdc::perf::fmt(cs.miss_rate() / rs.miss_rate(), 1)});
  }
  std::cout << "== T2-memhier: 128x128 doubles, 16KB cache, 64B lines ==\n"
            << t.str()
            << "(row-major touches each line 8 times; column-major "
               "strides past it)\n\n";
  opt.add_json_table("traversal miss rate", t);
}

void print_replacement_table(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"policy", "misses", "miss%"});
  // Loop-heavy trace with a working set slightly larger than the cache —
  // the regime where policies differ most.
  const auto trace = pm::repeated_sweep(10 * 1024, 64, 8);
  for (auto policy : {pm::Replacement::kLru, pm::Replacement::kFifo,
                      pm::Replacement::kRandom}) {
    pm::CacheConfig cfg;
    cfg.total_size = 8 * 1024;
    cfg.line_size = 64;
    cfg.associativity = 8;
    cfg.replacement = policy;
    pm::Cache cache(cfg);
    const auto s = pm::run_trace(cache, trace);
    t.add_row({std::string(pm::replacement_name(policy)),
               std::to_string(s.misses),
               pdc::perf::fmt(100 * s.miss_rate(), 2)});
  }
  std::cout << "== T2-memhier: replacement policy on a cyclic sweep "
               "(10KB set, 8KB cache) ==\n"
            << t.str()
            << "(cyclic sweeps are LRU's worst case — Random does better "
               "here, a classic surprise)\n\n";
  opt.add_json_table("replacement policy", t);
}

void print_working_set_sweep(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"working set", "miss% (2nd+ pass)"});
  pm::CacheConfig cfg;
  cfg.total_size = 32 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 8;
  for (std::size_t ws_kb : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 128u}) {
    pm::Cache cache(cfg);
    // One warm pass, then measure three more.
    pm::run_trace(cache, pm::repeated_sweep(ws_kb * 1024, 64, 1));
    cache.reset_stats();
    const auto s =
        pm::run_trace(cache, pm::repeated_sweep(ws_kb * 1024, 64, 3));
    t.add_row({std::to_string(ws_kb) + "KB",
               pdc::perf::fmt(100 * s.miss_rate(), 1)});
  }
  std::cout << "== T2-memhier: miss-rate cliff at the 32KB cache size ==\n"
            << t.str() << "\n";
  opt.add_json_table("working set sweep", t);
}

void print_amat_table(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"workload", "L1 miss%", "L2 miss%", "AMAT (cycles)"});
  for (const auto& [name, trace] :
       {std::pair{std::string("row-major"), pm::matrix_row_major(128, 128, 8)},
        std::pair{std::string("col-major"),
                  pm::matrix_col_major(128, 128, 8)},
        std::pair{std::string("random"),
                  pm::uniform_random(16384, 128 * 128 * 8, 5)}}) {
    pm::CacheConfig l1;
    l1.total_size = 4 * 1024;
    l1.line_size = 64;
    l1.associativity = 2;
    pm::CacheConfig l2;
    l2.total_size = 64 * 1024;
    l2.line_size = 64;
    l2.associativity = 8;
    pm::Hierarchy h({{l1, {4}}, {l2, {12}}}, 120);
    pm::run_trace(h, trace);
    t.add_row({name,
               pdc::perf::fmt(100 * h.level_stats(0).miss_rate(), 1),
               pdc::perf::fmt(100 * h.level_stats(1).miss_rate(), 1),
               pdc::perf::fmt(h.amat(), 1)});
  }
  std::cout << "== T2-memhier: two-level AMAT (L1 4c, L2 12c, mem 120c) "
               "==\n"
            << t.str() << "\n";
  opt.add_json_table("two-level amat", t);
}

void print_paging_tables(pdc::benchutil::Options& opt) {
  // Belady's anomaly.
  const auto refs = pm::belady_reference_string();
  pdc::perf::Table belady({"frames", "FIFO faults", "LRU faults",
                           "Optimal faults"});
  for (std::size_t frames : {3u, 4u}) {
    belady.add_row(
        {std::to_string(frames),
         std::to_string(
             pm::simulate_paging(refs, frames, pm::PageReplacement::kFifo)
                 .faults),
         std::to_string(
             pm::simulate_paging(refs, frames, pm::PageReplacement::kLru)
                 .faults),
         std::to_string(
             pm::simulate_paging(refs, frames,
                                 pm::PageReplacement::kOptimal)
                 .faults)});
  }
  std::cout << "== T2-vm: Belady's anomaly (reference string "
               "1,2,3,4,1,2,5,1,2,3,4,5) ==\n"
            << belady.str()
            << "(FIFO: 4 frames fault MORE than 3 — the anomaly; LRU and "
               "Optimal are monotone)\n\n";

  // Fault-rate curves on a locality-rich trace.
  const auto mem_trace = pm::uniform_random(20000, 256 * 4096, 11);
  std::vector<std::uint64_t> pages;
  for (const auto& r : mem_trace) pages.push_back(r.addr / 4096);
  pdc::perf::Table curve({"frames", "FIFO%", "LRU%", "Clock%", "Optimal%"});
  for (std::size_t frames : {8u, 16u, 32u, 64u, 128u}) {
    auto pct = [&](pm::PageReplacement pr) {
      return pdc::perf::fmt(
          100 * pm::simulate_paging(pages, frames, pr).fault_rate(), 1);
    };
    curve.add_row({std::to_string(frames),
                   pct(pm::PageReplacement::kFifo),
                   pct(pm::PageReplacement::kLru),
                   pct(pm::PageReplacement::kClock),
                   pct(pm::PageReplacement::kOptimal)});
  }
  std::cout << "== T2-vm: page fault rate vs frames (256-page span) ==\n"
            << curve.str()
            << "(Optimal lower-bounds everything; Clock tracks LRU)\n\n";
  opt.add_json_table("belady anomaly", belady);
  opt.add_json_table("page fault curve", curve);
}

void print_prefetch_table(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"workload", "prefetch", "miss%", "useful prefetch%"});
  for (const auto& [name, trace] :
       {std::pair{std::string("sequential"), pm::strided(8192, 64)},
        std::pair{std::string("random"),
                  pm::uniform_random(8192, 1 << 20, 7)}}) {
    for (bool pf : {false, true}) {
      pm::CacheConfig cfg;
      cfg.total_size = 8 * 1024;
      cfg.line_size = 64;
      cfg.associativity = 4;
      cfg.next_line_prefetch = pf;
      pm::Cache cache(cfg);
      const auto s = pm::run_trace(cache, trace);
      const double useful =
          s.prefetch_fills == 0
              ? 0.0
              : 100.0 * static_cast<double>(s.prefetch_useful) /
                    static_cast<double>(s.prefetch_fills);
      t.add_row({name, pf ? "next-line" : "off",
                 pdc::perf::fmt(100 * s.miss_rate(), 1),
                 pf ? pdc::perf::fmt(useful, 1) : "-"});
    }
  }
  std::cout << "== T2-memhier: next-line prefetch ablation ==\n"
            << t.str()
            << "(prefetch halves sequential misses; on random access the "
               "fills are dead weight)\n\n";
  opt.add_json_table("prefetch ablation", t);
}

void BM_CacheSimThroughput(benchmark::State& state) {
  pm::CacheConfig cfg;
  cfg.total_size = 32 * 1024;
  cfg.line_size = 64;
  cfg.associativity = static_cast<std::size_t>(state.range(0));
  const auto trace = pm::uniform_random(1 << 16, 1 << 20, 3);
  for (auto _ : state) {
    pm::Cache cache(cfg);
    benchmark::DoNotOptimize(pm::run_trace(cache, trace).misses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_CacheSimThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_PagingSim(benchmark::State& state) {
  const auto trace = pm::uniform_random(1 << 15, 512 * 4096, 9);
  std::vector<std::uint64_t> pages;
  for (const auto& r : trace) pages.push_back(r.addr / 4096);
  const auto policy = static_cast<pm::PageReplacement>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pm::simulate_paging(pages, 64, policy).faults);
  }
}
BENCHMARK(BM_PagingSim)
    ->Arg(static_cast<int>(pm::PageReplacement::kFifo))
    ->Arg(static_cast<int>(pm::PageReplacement::kLru))
    ->Arg(static_cast<int>(pm::PageReplacement::kClock))
    ->Arg(static_cast<int>(pm::PageReplacement::kOptimal));

}  // namespace

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  print_traversal_table(opt);
  print_replacement_table(opt);
  print_working_set_sweep(opt);
  print_amat_table(opt);
  print_prefetch_table(opt);
  print_paging_tables(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
