// CS87-mp — serving the sharded DHT like a KV store: a closed-loop
// Zipf(0.99) load generator (90% reads) drives the BSP superstep baseline
// (BspHashMap::round) and the pipelined async client (DhtClient) over the
// same per-rank op streams, and prices throughput plus p50/p99/p999 op
// latency via obs::Histogram quantiles. Both modes must produce
// byte-identical get results — the bench aborts if they diverge.
//
// Expected shape: the BSP baseline pays a full global superstep per op
// batch, so its latency floor is the round trip of the slowest rank and
// its throughput is (round size) / (round latency). The pipelined client
// beats it on throughput, for reasons that survive even a single-core CI
// box (where overlap can't help): self-owned keys short-circuit the wire
// entirely (1/P of the stream), Zipf-hot gets dedup into one wire
// request per batch, and the outstanding-op window grows batches far
// past the superstep's round size, amortizing every per-message cost.
// The cost is queueing delay — a deep window means an op waits behind up
// to a window of others, so the ablation table is the latency/throughput
// knob, with window 1 as synchronous RPC. The reliable channel's
// seq/ack/retransmit tax is then priced under real load instead of a
// microbenchmark.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <string>
#include <vector>

#include "pdc/mp/client.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/workload.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/perf/table.hpp"

namespace mp = pdc::mp;
namespace obs = pdc::obs;

namespace {

constexpr double kTheta = 0.99;     // YCSB-style hot-key skew
constexpr double kReadFrac = 0.90;  // read-mostly serving mix

struct Op {
  bool is_get = false;
  std::int64_t key = 0;
  std::int64_t value = 0;
};

/// Values are a pure function of the key, so any interleaving of the same
/// op streams yields byte-identical get results once the keyspace is
/// warmed — the property that lets us diff BSP against pipelined.
std::int64_t value_of(std::int64_t key) {
  return static_cast<std::int64_t>(
      mp::detail::mix64(static_cast<std::uint64_t>(key) + 0x9E37ULL) & 0xffff);
}

/// Deterministic per-rank op stream: Zipf(theta) keys, Bernoulli mix.
std::vector<Op> rank_ops(int rank, std::size_t n, std::size_t keyspace) {
  mp::ZipfGenerator zipf(keyspace, kTheta,
                         0xBE9C4ULL + static_cast<std::uint64_t>(rank) * 131);
  mp::SplitMix64 mix(0x517EEDULL + static_cast<std::uint64_t>(rank));
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = zipf.next();
    const bool is_get = mix.next_unit() < kReadFrac;
    ops.push_back({is_get, key, value_of(key)});
  }
  return ops;
}

std::int64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load();
  while (v > cur && !slot.compare_exchange_weak(cur, v)) {
  }
}

struct ModeResult {
  double mops = 0;                 ///< completed ops per µs, all ranks
  double p50 = 0, p99 = 0, p999 = 0;  ///< op latency, µs
  std::vector<std::vector<std::int64_t>> digests;  ///< per-rank get results
};

void fill_quantiles(const obs::MetricsSnapshot& delta, const char* hist,
                    ModeResult& out) {
  const auto it = delta.histograms.find(hist);
  if (it == delta.histograms.end()) return;
  out.p50 = obs::quantile_from_buckets(it->second, 0.5) / 1e3;
  out.p99 = obs::quantile_from_buckets(it->second, 0.99) / 1e3;
  out.p999 = obs::quantile_from_buckets(it->second, 0.999) / 1e3;
}

/// BSP baseline: the same op stream chopped into supersteps of
/// `round_ops` per rank. Every op in a round costs the whole round — that
/// IS the latency model of bulk-synchronous serving.
ModeResult run_bsp(int p, std::size_t ops_per_rank, std::size_t keyspace,
                   std::size_t round_ops) {
  ModeResult res;
  res.digests.resize(static_cast<std::size_t>(p));
  std::atomic<std::int64_t> max_ns{0};
  obs::MetricsSnapshot mid;
  mp::Communicator comm(p);
  comm.run([&](mp::RankContext& ctx) {
    const int r = ctx.rank();
    obs::Histogram& lat = obs::histogram("dht.bsp.op_ns");
    mp::BspHashMap dht(ctx);
    for (std::int64_t k = r; k < static_cast<std::int64_t>(keyspace); k += p)
      dht.queue_put(k, value_of(k));
    (void)dht.round();
    ctx.barrier();
    if (r == 0) mid = obs::metrics_snapshot();
    ctx.barrier();
    const auto ops = rank_ops(r, ops_per_rank, keyspace);
    auto& digest = res.digests[static_cast<std::size_t>(r)];
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < ops.size(); base += round_ops) {
      const std::size_t end = std::min(ops.size(), base + round_ops);
      for (std::size_t i = base; i < end; ++i) {
        if (ops[i].is_get)
          dht.queue_get(ops[i].key);
        else
          dht.queue_put(ops[i].key, ops[i].value);
      }
      const auto r0 = std::chrono::steady_clock::now();
      const auto got = dht.round();
      const auto dt = static_cast<std::uint64_t>(ns_since(r0));
      for (std::size_t i = base; i < end; ++i) lat.record(dt);
      for (const auto& g : got) {
        digest.push_back(g.found ? 1 : 0);
        digest.push_back(g.value);
      }
    }
    atomic_max(max_ns, ns_since(t0));
  });
  const auto delta = obs::metrics_snapshot() - mid;
  fill_quantiles(delta, "dht.bsp.op_ns", res);
  res.mops = static_cast<double>(ops_per_rank) * p * 1e3 /
             static_cast<double>(max_ns.load());
  return res;
}

/// Pipelined client over the same streams. `plan`/`traffic_out` let the
/// reliable-under-load study price the transport.
ModeResult run_pipelined(int p, std::size_t ops_per_rank, std::size_t keyspace,
                         mp::DhtClient::Options copts,
                         const mp::FaultPlan* plan = nullptr,
                         mp::TrafficStats* traffic_out = nullptr) {
  ModeResult res;
  res.digests.resize(static_cast<std::size_t>(p));
  std::atomic<std::int64_t> max_ns{0};
  obs::MetricsSnapshot mid;
  mp::Communicator comm = plan ? mp::Communicator(p, *plan)
                               : mp::Communicator(p);
  comm.run([&](mp::RankContext& ctx) {
    const int r = ctx.rank();
    mp::DhtClient client(ctx, copts);
    for (std::int64_t k = r; k < static_cast<std::int64_t>(keyspace); k += p)
      (void)client.put(k, value_of(k));
    client.fence();
    // Double fence so rank 0's mid-snapshot sits strictly between the
    // warm phase and the first measured op on every rank.
    if (r == 0) mid = obs::metrics_snapshot();
    client.fence();
    const auto ops = rank_ops(r, ops_per_rank, keyspace);
    auto& digest = res.digests[static_cast<std::size_t>(r)];
    digest.reserve(2 * ops.size());
    std::deque<mp::DhtFuture> pending;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& op : ops) {
      if (op.is_get)
        pending.push_back(client.get(op.key));
      else
        (void)client.put(op.key, op.value);
      // Harvest completed reads in submission order as the stream runs: a
      // serving client consumes answers as they arrive. (Holding every
      // future until the end would make the benchmark's own working set —
      // tens of thousands of live ops — the thing being measured.)
      while (!pending.empty() && pending.front().done()) {
        const auto got = pending.front().wait();
        pending.pop_front();
        digest.push_back(got.found ? 1 : 0);
        digest.push_back(got.value);
      }
    }
    client.drain();
    while (!pending.empty()) {
      const auto got = pending.front().wait();
      pending.pop_front();
      digest.push_back(got.found ? 1 : 0);
      digest.push_back(got.value);
    }
    atomic_max(max_ns, ns_since(t0));
    client.fence();
    client.shutdown();
  });
  const auto delta = obs::metrics_snapshot() - mid;
  fill_quantiles(delta, "dht.client.op_ns", res);
  res.mops = static_cast<double>(ops_per_rank) * p * 1e3 /
             static_cast<double>(max_ns.load());
  if (traffic_out != nullptr) *traffic_out = comm.traffic();
  return res;
}

std::string us(double v) { return pdc::perf::fmt(v, 1); }

void add_mode_row(pdc::perf::Table& t, int p, const char* mode,
                  const ModeResult& m, double speedup) {
  char sp[16];
  std::snprintf(sp, sizeof sp, "%.2fx", speedup);
  t.add_row({std::to_string(p), mode, pdc::perf::fmt(m.mops, 2), us(m.p50),
             us(m.p99), us(m.p999), sp});
}

// -------------------------------------------- study 1: BSP vs client ---

void print_serving_table(bool smoke) {
  const std::size_t ops = smoke ? 5000 : 20000;
  const std::size_t keyspace = smoke ? 4096 : 16384;
  const std::size_t round_ops = 64;
  pdc::perf::Table t({"P", "mode", "Mops/s", "p50 us", "p99 us", "p999 us",
                      "vs BSP"});
  bool identical = true;
  for (int p : (smoke ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8})) {
    const auto bsp = run_bsp(p, ops, keyspace, round_ops);
    const auto piped =
        run_pipelined(p, ops, keyspace, {.window = 1024, .max_batch = 256});
    add_mode_row(t, p, "bsp-round", bsp, 1.0);
    add_mode_row(t, p, "pipelined", piped, piped.mops / bsp.mops);
    identical = identical && bsp.digests == piped.digests;
  }
  std::cout << "== CS87-mp: DHT serving — Zipf(" << kTheta << "), "
            << static_cast<int>(kReadFrac * 100) << "% reads, " << ops
            << " ops/rank, " << keyspace << " keys ==\n"
            << t.str()
            << (identical
                    ? "(get results byte-identical across modes; BSP p50 ~= "
                      "p99 because every op costs a whole superstep)\n\n"
                    : "")
            << std::flush;
  if (!identical) {
    std::cerr << "FATAL: BSP and pipelined get results diverged\n";
    std::exit(1);
  }
}

// ------------------------------------------ study 2: window ablation ---

void print_window_table(bool smoke) {
  const std::size_t ops = smoke ? 2000 : 10000;
  const std::size_t keyspace = smoke ? 4096 : 16384;
  constexpr int kP = 4;
  pdc::perf::Table t({"window", "Mops/s", "p50 us", "p99 us", "p999 us",
                      "batches/op"});
  for (int window : {1, 16, 256, 1024}) {
    const auto before = obs::metrics_snapshot();
    const auto res = run_pipelined(kP, ops, keyspace,
                                   {.window = window, .max_batch = 256});
    const auto delta = obs::metrics_snapshot() - before;
    const double batches =
        static_cast<double>(delta.counter("dht.client.batches")) /
        static_cast<double>(delta.counter("dht.client.puts") +
                            delta.counter("dht.client.gets"));
    t.add_row({std::to_string(window), pdc::perf::fmt(res.mops, 2),
               us(res.p50), us(res.p99), us(res.p999),
               pdc::perf::fmt(batches, 3)});
  }
  std::cout << "== CS87-mp: outstanding-window ablation — P = " << kP
            << ", Zipf(" << kTheta << ") ==\n"
            << t.str()
            << "(window 1 is synchronous RPC; deeper windows buy "
               "throughput with queueing latency — batching amortizes "
               "the per-message cost)\n\n";
}

// --------------------------------- study 3: reliable channel under load ---

void print_reliable_load_table(bool smoke) {
  const std::size_t ops = smoke ? 800 : 4000;
  const std::size_t keyspace = smoke ? 1024 : 4096;
  constexpr int kP = 4;
  pdc::perf::Table t({"channel", "loss", "Mops/s", "p99 us", "acks",
                      "retries", "frame tax"});
  mp::TrafficStats plain_tr{};
  const auto plain = run_pipelined(kP, ops, keyspace,
                                   {.window = 256, .max_batch = 64}, nullptr,
                                   &plain_tr);
  const auto frames = [](const mp::TrafficStats& tr) {
    return tr.messages + tr.dropped + tr.duplicates + tr.acks;
  };
  const double base_frames = static_cast<double>(frames(plain_tr));
  t.add_row({"plain", "0%", pdc::perf::fmt(plain.mops, 2), us(plain.p99), "0",
             "0", "1.00x"});
  for (double loss : {0.0, 0.01, 0.10}) {
    mp::FaultPlan plan;
    plan.drop = loss;
    plan.dup = loss / 2;
    plan.reorder = loss > 0;
    plan.seed = 7;
    mp::TrafficStats tr{};
    const auto rel = run_pipelined(
        kP, ops, keyspace,
        {.window = 256, .max_batch = 64, .reliable = true}, &plan, &tr);
    char pct[16], tax[16];
    std::snprintf(pct, sizeof pct, "%.0f%%", loss * 100);
    std::snprintf(tax, sizeof tax, "%.2fx",
                  static_cast<double>(frames(tr)) / base_frames);
    t.add_row({"reliable", pct, pdc::perf::fmt(rel.mops, 2), us(rel.p99),
               std::to_string(tr.acks), std::to_string(tr.retries), tax});
  }
  std::cout << "== CS87-mp: reliability tax under serving load — P = " << kP
            << ", " << ops << " ops/rank ==\n"
            << t.str()
            << "(stop-and-wait acks halve the batch rate even at 0% loss; "
               "retransmit timeouts dominate p99 as loss grows)\n\n";
}

// ------------------------------------------------------ gbench kernels ---

void BM_DhtServePipelined(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  constexpr std::size_t kOps = 500;
  constexpr std::size_t kKeys = 1024;
  for (auto _ : state) {
    const auto res =
        run_pipelined(p, kOps, kKeys, {.window = 1024, .max_batch = 256});
    benchmark::DoNotOptimize(res.digests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOps) * p);
}
BENCHMARK(BM_DhtServePipelined)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DhtServeBspRounds(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  constexpr std::size_t kOps = 500;
  constexpr std::size_t kKeys = 1024;
  for (auto _ : state) {
    const auto res = run_bsp(p, kOps, kKeys, 64);
    benchmark::DoNotOptimize(res.digests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOps) * p);
}
BENCHMARK(BM_DhtServeBspRounds)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_serving_table(opt.smoke);
  print_window_table(opt.smoke);
  print_reliable_load_table(opt.smoke);
  return pdc::benchutil::finish(opt, argc, argv);
}
