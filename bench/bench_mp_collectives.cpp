// CS87-mp — the MPI topics: ping-pong message rate, flat vs tree
// collective traffic and critical path for P = 2..32, and allreduce
// throughput.
//
// Expected shape: both algorithms move P-1 messages but the tree's
// critical path is ceil(log2 P) rounds vs P-1 — the crossover argument
// for tree collectives.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "pdc/algo/sample_sort.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/launch.hpp"
#include "pdc/mp/transport.hpp"
#include "pdc/perf/table.hpp"

namespace {

int tree_rounds(int p) {
  int rounds = 0;
  for (int reach = 1; reach < p; reach *= 2) ++rounds;
  return rounds;
}

void print_collective_table(pdc::benchutil::Options& bopt) {
  pdc::perf::Table t({"P", "algo", "bcast msgs", "bcast rounds",
                      "reduce msgs", "reduce rounds"});
  for (int p : {2, 4, 8, 16, 32}) {
    for (auto algo :
         {pdc::mp::CollectiveAlgo::kFlat, pdc::mp::CollectiveAlgo::kTree}) {
      // TrafficStats deltas price the phases: run the broadcast alone,
      // then broadcast + reduce, and subtract — both patterns are
      // deterministic, so the difference is exactly the reduce.
      pdc::mp::Communicator bc(p);
      bc.run([&](pdc::mp::RankContext& ctx) {
        (void)ctx.broadcast_value(0, 1, algo);
      });
      const pdc::mp::TrafficStats bcast_tr = bc.traffic();

      pdc::mp::Communicator both(p);
      both.run([&](pdc::mp::RankContext& ctx) {
        (void)ctx.broadcast_value(0, 1, algo);
        (void)ctx.reduce(0, ctx.rank(), pdc::mp::ReduceOp::kSum, algo);
      });
      const pdc::mp::TrafficStats reduce_tr = both.traffic() - bcast_tr;
      const bool tree = algo == pdc::mp::CollectiveAlgo::kTree;
      const int rounds = tree ? tree_rounds(p) : p - 1;
      t.add_row({std::to_string(p), tree ? "tree" : "flat",
                 std::to_string(bcast_tr.messages),
                 std::to_string(rounds),
                 std::to_string(reduce_tr.messages),
                 std::to_string(rounds)});
    }
  }
  bopt.add_json_table("collective traffic", t);
  std::cout << "== CS87-mp: collective traffic and critical path ==\n"
            << t.str()
            << "(same message count; the tree turns P-1 serial rounds "
               "into log2 P)\n\n";
}

// The reliability tax: run the DHT bulk workload (a) on the plain
// channel, then (b) on the reliable channel under seeded loss rates, and
// price what seq/ack/retransmit costs in traffic. Payload overhead is the
// extra words the reliable wire format moves even at 0% loss (round
// numbers + retransmitted copies); acks ride the counters, not the
// payload.
void print_reliability_tax_table() {
  constexpr int kRanks = 4;
  constexpr int kOpsPerRank = 200;
  const auto workload = [](pdc::mp::RankContext& ctx, bool reliable) {
    ctx.set_reliable(reliable);
    pdc::mp::BspHashMap dht(ctx, {reliable});
    for (int i = 0; i < kOpsPerRank; ++i)
      dht.queue_put(ctx.rank() * kOpsPerRank + i, i);
    (void)dht.round();
    for (int i = 0; i < kOpsPerRank; ++i)
      dht.queue_get(((ctx.rank() + 1) % kRanks) * kOpsPerRank + i);
    if (dht.round().empty()) std::abort();
  };

  // A "wire frame" is any physical transmission: a data message that got
  // enqueued, a dropped or duplicate-suppressed copy, or an ack. The tax
  // column is reliable frames / plain frames for the same workload.
  const auto frames = [](const pdc::mp::TrafficStats& tr) {
    return tr.messages + tr.dropped + tr.duplicates + tr.acks;
  };
  pdc::perf::Table t({"mode", "loss", "messages", "payload words", "acks",
                      "retries", "dropped", "dups", "frame tax"});
  pdc::mp::Communicator base(kRanks);
  base.run([&](pdc::mp::RankContext& ctx) { workload(ctx, false); });
  const double base_frames = static_cast<double>(frames(base.traffic()));
  t.add_row({"plain", "0%", std::to_string(base.traffic().messages),
             std::to_string(base.traffic().payload_words), "0", "0", "0", "0",
             "1.00x"});

  for (double loss : {0.0, 0.01, 0.10}) {
    pdc::mp::FaultPlan plan;
    plan.drop = loss;
    plan.dup = loss / 2;
    plan.reorder = loss > 0;
    plan.seed = 7;
    pdc::mp::Communicator comm(kRanks, plan);
    comm.run([&](pdc::mp::RankContext& ctx) { workload(ctx, true); });
    const auto tr = comm.traffic();
    char pct[16], tax[16];
    std::snprintf(pct, sizeof pct, "%.0f%%", loss * 100);
    std::snprintf(tax, sizeof tax, "%.2fx",
                  static_cast<double>(frames(tr)) / base_frames);
    t.add_row({"reliable", pct, std::to_string(tr.messages),
               std::to_string(tr.payload_words), std::to_string(tr.acks),
               std::to_string(tr.retries), std::to_string(tr.dropped),
               std::to_string(tr.duplicates), tax});
  }
  std::cout << "== CS87-mp: reliability tax — DHT bulk workload, P = 4, "
               "2x" << kOpsPerRank << " ops/rank ==\n"
            << t.str()
            << "(acks ~= one per delivered message; retries scale with "
               "loss; dedup eats every duplicate)\n\n";
}

// ---- transport study: the same SPMD code timed over every backend ----
//
// These bodies re-exec this binary one process per rank (except inproc,
// which runs them as threads), so the numbers price the real wire: mutex
// mailboxes vs shared-memory rings vs loopback TCP.

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// Rank 0 reports "lat_us bw_mwps": 1-word round-trip latency and the
/// word rate of 16K-word round trips (128KB — the largest frame that
/// fits the default 256KB shm ring with headroom). args[0] = timed
/// latency reps.
PDC_SPMD_BODY(bench_pingpong) {
  const int peer = 1 - ctx.rank();
  auto round_trips = [&](std::size_t words, int reps) {
    std::vector<std::int64_t> payload(words, 7);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      if (ctx.rank() == 0) {
        ctx.send(peer, 0, payload);
        payload = ctx.recv(peer, 1).data;
      } else {
        payload = ctx.recv(peer, 0).data;
        ctx.send(peer, 1, payload);
      }
    }
    return elapsed_us(t0);
  };
  (void)round_trips(1, 50);  // warm the flows (first contact sets up rings)
  const int lat_reps = io.args.empty() ? 1000 : std::stoi(io.args[0]);
  const double lat_us = round_trips(1, lat_reps) / lat_reps;
  constexpr std::size_t kBwWords = std::size_t{1} << 14;
  constexpr int kBwReps = 40;
  const double bw_us = round_trips(kBwWords, kBwReps);
  // Each round trip moves the payload both ways; words/us == Mword/s.
  const double mwps = 2.0 * kBwReps * static_cast<double>(kBwWords) / bw_us;
  if (ctx.rank() == 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f %.1f", lat_us, mwps);
    io.out = buf;
  }
}

/// Rank 0 reports completed allreduces per second at P = world.
/// args[0] = timed reps.
PDC_SPMD_BODY(bench_allreduce) {
  for (int i = 0; i < 20; ++i)  // warm
    (void)ctx.allreduce(ctx.rank(), pdc::mp::ReduceOp::kSum);
  const int reps = io.args.empty() ? 200 : std::stoi(io.args[0]);
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t acc = 0;
  for (int i = 0; i < reps; ++i)
    acc += ctx.allreduce(ctx.rank(), pdc::mp::ReduceOp::kSum);
  const double us = elapsed_us(t0);
  if (ctx.rank() == 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f %lld", 1e6 * reps / us,
                  static_cast<long long>(acc));
    io.out = buf;
  }
}

namespace {

void print_transport_table(pdc::benchutil::Options& bopt, bool smoke) {
  namespace ml = pdc::mp::launch;
  pdc::perf::Table t({"transport", "P2 rt latency (us)",
                      "P2 bandwidth (Mword/s)", "P4 allreduce/s"});
  for (auto kind :
       {pdc::mp::TransportKind::kInproc, pdc::mp::TransportKind::kShm,
        pdc::mp::TransportKind::kTcp}) {
    std::string lat = "-", bw = "-", ar = "-";
    ml::LaunchOptions o;
    o.kind = kind;
    o.body = "bench_pingpong";
    o.world = 2;
    o.args = {smoke ? "200" : "2000"};
    if (const auto r = ml::run_spmd(o); r.ok()) {
      std::istringstream is(r.ranks[0].out);
      is >> lat >> bw;
    }
    o.body = "bench_allreduce";
    o.world = 4;
    o.args = {smoke ? "50" : "500"};
    if (const auto r = ml::run_spmd(o); r.ok()) {
      std::istringstream is(r.ranks[0].out);
      is >> ar;
    }
    t.add_row({std::string(pdc::mp::to_string(kind)), lat, bw, ar});
  }
  // Wall-clock numbers: json-exported for inspection, never diffed as an
  // expectation.
  bopt.add_json_table("transport latency/throughput", t);
  std::cout << "== CS87-mp: one SPMD program, three wires (ping-pong P=2, "
               "allreduce P=4) ==\n"
            << t.str()
            << "(inproc hands the frame to the peer's mailbox under one "
               "mutex; shm pushes it through a lock-free ring; tcp pays "
               "the kernel socket path — the per-message cost ladder the "
               "bandwidth column amortizes away)\n\n";
}

void BM_PingPong(benchmark::State& state) {
  const auto words = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(2);
    comm.run([&](pdc::mp::RankContext& ctx) {
      std::vector<std::int64_t> payload(words, 7);
      for (int i = 0; i < 50; ++i) {
        if (ctx.rank() == 0) {
          ctx.send(1, 0, payload);
          payload = ctx.recv(1, 1).data;
        } else {
          payload = ctx.recv(0, 0).data;
          ctx.send(0, 1, payload);
        }
      }
    });
    benchmark::DoNotOptimize(comm.traffic().messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
}
BENCHMARK(BM_PingPong)->Arg(1)->Arg(64)->Arg(4096)->UseRealTime();

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      std::int64_t acc = ctx.rank();
      for (int i = 0; i < 20; ++i)
        acc = ctx.allreduce(acc, pdc::mp::ReduceOp::kSum);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20);
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      for (int i = 0; i < 50; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          50);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DhtBulkOps(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  constexpr int kOpsPerRank = 500;
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      pdc::mp::BspHashMap dht(ctx);
      for (int i = 0; i < kOpsPerRank; ++i)
        dht.queue_put(ctx.rank() * kOpsPerRank + i, i);
      (void)dht.round();
      for (int i = 0; i < kOpsPerRank; ++i)
        dht.queue_get(((ctx.rank() + 1) % p) * kOpsPerRank + i);
      benchmark::DoNotOptimize(dht.round());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * kOpsPerRank * p);
}
BENCHMARK(BM_DhtBulkOps)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

void print_sample_sort_table(pdc::benchutil::Options& bopt) {
  pdc::perf::Table t({"ranks", "messages", "payload words", "words / key"});
  const std::size_t n = 100000;
  std::vector<std::int64_t> base(n);
  std::uint64_t seed = 9;
  for (auto& v : base) {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    v = static_cast<std::int64_t>(seed);
  }
  for (int ranks : {2, 4, 8}) {
    std::uint64_t msgs = 0, words = 0;
    const auto sorted = pdc::algo::mp_sample_sort(base, ranks, &msgs, &words);
    if (!std::is_sorted(sorted.begin(), sorted.end())) {
      std::cerr << "SAMPLE SORT FAILED\n";
      std::exit(1);
    }
    t.add_row({std::to_string(ranks), std::to_string(msgs),
               std::to_string(words),
               pdc::perf::fmt(static_cast<double>(words) /
                                  static_cast<double>(n),
                              2)});
  }
  bopt.add_json_table("sample sort traffic", t);
  std::cout << "== CS87-mp: distributed sample sort (PSRS) traffic, "
               "N = 100K keys ==\n"
            << t.str()
            << "(each key crosses the network about once — the partition "
               "exchange dominates; samples/pivots are the +epsilon)\n\n";
}

int main(int argc, char** argv) {
  // Children re-exec'd by the transport study never get past this line.
  pdc::mp::launch::maybe_run_child(argc, argv);
  auto opt = pdc::benchutil::parse_args(argc, argv);
  // The collective and sample-sort tables are exact traffic counts —
  // deterministic, so the CI release job diffs them against
  // bench/expectations/. The reliability-tax and transport tables are
  // timing-dependent (retransmit timeouts, wall-clock rates), so they
  // are never diffed.
  print_collective_table(opt);
  print_reliability_tax_table();
  print_sample_sort_table(opt);
  print_transport_table(opt, opt.smoke);
  return pdc::benchutil::finish(opt, argc, argv);
}
