// CS87-mp — the MPI topics: ping-pong message rate, flat vs tree
// collective traffic and critical path for P = 2..32, and allreduce
// throughput.
//
// Expected shape: both algorithms move P-1 messages but the tree's
// critical path is ceil(log2 P) rounds vs P-1 — the crossover argument
// for tree collectives.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "pdc/algo/sample_sort.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/perf/table.hpp"

namespace {

int tree_rounds(int p) {
  int rounds = 0;
  for (int reach = 1; reach < p; reach *= 2) ++rounds;
  return rounds;
}

void print_collective_table(pdc::benchutil::Options& bopt) {
  pdc::perf::Table t({"P", "algo", "bcast msgs", "bcast rounds",
                      "reduce msgs", "reduce rounds"});
  for (int p : {2, 4, 8, 16, 32}) {
    for (auto algo :
         {pdc::mp::CollectiveAlgo::kFlat, pdc::mp::CollectiveAlgo::kTree}) {
      // TrafficStats deltas price the phases: run the broadcast alone,
      // then broadcast + reduce, and subtract — both patterns are
      // deterministic, so the difference is exactly the reduce.
      pdc::mp::Communicator bc(p);
      bc.run([&](pdc::mp::RankContext& ctx) {
        (void)ctx.broadcast_value(0, 1, algo);
      });
      const pdc::mp::TrafficStats bcast_tr = bc.traffic();

      pdc::mp::Communicator both(p);
      both.run([&](pdc::mp::RankContext& ctx) {
        (void)ctx.broadcast_value(0, 1, algo);
        (void)ctx.reduce(0, ctx.rank(), pdc::mp::ReduceOp::kSum, algo);
      });
      const pdc::mp::TrafficStats reduce_tr = both.traffic() - bcast_tr;
      const bool tree = algo == pdc::mp::CollectiveAlgo::kTree;
      const int rounds = tree ? tree_rounds(p) : p - 1;
      t.add_row({std::to_string(p), tree ? "tree" : "flat",
                 std::to_string(bcast_tr.messages),
                 std::to_string(rounds),
                 std::to_string(reduce_tr.messages),
                 std::to_string(rounds)});
    }
  }
  bopt.add_json_table("collective traffic", t);
  std::cout << "== CS87-mp: collective traffic and critical path ==\n"
            << t.str()
            << "(same message count; the tree turns P-1 serial rounds "
               "into log2 P)\n\n";
}

// The reliability tax: run the DHT bulk workload (a) on the plain
// channel, then (b) on the reliable channel under seeded loss rates, and
// price what seq/ack/retransmit costs in traffic. Payload overhead is the
// extra words the reliable wire format moves even at 0% loss (round
// numbers + retransmitted copies); acks ride the counters, not the
// payload.
void print_reliability_tax_table() {
  constexpr int kRanks = 4;
  constexpr int kOpsPerRank = 200;
  const auto workload = [](pdc::mp::RankContext& ctx, bool reliable) {
    ctx.set_reliable(reliable);
    pdc::mp::BspHashMap dht(ctx, {reliable});
    for (int i = 0; i < kOpsPerRank; ++i)
      dht.queue_put(ctx.rank() * kOpsPerRank + i, i);
    (void)dht.round();
    for (int i = 0; i < kOpsPerRank; ++i)
      dht.queue_get(((ctx.rank() + 1) % kRanks) * kOpsPerRank + i);
    if (dht.round().empty()) std::abort();
  };

  // A "wire frame" is any physical transmission: a data message that got
  // enqueued, a dropped or duplicate-suppressed copy, or an ack. The tax
  // column is reliable frames / plain frames for the same workload.
  const auto frames = [](const pdc::mp::TrafficStats& tr) {
    return tr.messages + tr.dropped + tr.duplicates + tr.acks;
  };
  pdc::perf::Table t({"mode", "loss", "messages", "payload words", "acks",
                      "retries", "dropped", "dups", "frame tax"});
  pdc::mp::Communicator base(kRanks);
  base.run([&](pdc::mp::RankContext& ctx) { workload(ctx, false); });
  const double base_frames = static_cast<double>(frames(base.traffic()));
  t.add_row({"plain", "0%", std::to_string(base.traffic().messages),
             std::to_string(base.traffic().payload_words), "0", "0", "0", "0",
             "1.00x"});

  for (double loss : {0.0, 0.01, 0.10}) {
    pdc::mp::FaultPlan plan;
    plan.drop = loss;
    plan.dup = loss / 2;
    plan.reorder = loss > 0;
    plan.seed = 7;
    pdc::mp::Communicator comm(kRanks, plan);
    comm.run([&](pdc::mp::RankContext& ctx) { workload(ctx, true); });
    const auto tr = comm.traffic();
    char pct[16], tax[16];
    std::snprintf(pct, sizeof pct, "%.0f%%", loss * 100);
    std::snprintf(tax, sizeof tax, "%.2fx",
                  static_cast<double>(frames(tr)) / base_frames);
    t.add_row({"reliable", pct, std::to_string(tr.messages),
               std::to_string(tr.payload_words), std::to_string(tr.acks),
               std::to_string(tr.retries), std::to_string(tr.dropped),
               std::to_string(tr.duplicates), tax});
  }
  std::cout << "== CS87-mp: reliability tax — DHT bulk workload, P = 4, "
               "2x" << kOpsPerRank << " ops/rank ==\n"
            << t.str()
            << "(acks ~= one per delivered message; retries scale with "
               "loss; dedup eats every duplicate)\n\n";
}

void BM_PingPong(benchmark::State& state) {
  const auto words = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(2);
    comm.run([&](pdc::mp::RankContext& ctx) {
      std::vector<std::int64_t> payload(words, 7);
      for (int i = 0; i < 50; ++i) {
        if (ctx.rank() == 0) {
          ctx.send(1, 0, payload);
          payload = ctx.recv(1, 1).data;
        } else {
          payload = ctx.recv(0, 0).data;
          ctx.send(0, 1, payload);
        }
      }
    });
    benchmark::DoNotOptimize(comm.traffic().messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
}
BENCHMARK(BM_PingPong)->Arg(1)->Arg(64)->Arg(4096)->UseRealTime();

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      std::int64_t acc = ctx.rank();
      for (int i = 0; i < 20; ++i)
        acc = ctx.allreduce(acc, pdc::mp::ReduceOp::kSum);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20);
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      for (int i = 0; i < 50; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          50);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DhtBulkOps(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  constexpr int kOpsPerRank = 500;
  for (auto _ : state) {
    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      pdc::mp::BspHashMap dht(ctx);
      for (int i = 0; i < kOpsPerRank; ++i)
        dht.queue_put(ctx.rank() * kOpsPerRank + i, i);
      (void)dht.round();
      for (int i = 0; i < kOpsPerRank; ++i)
        dht.queue_get(((ctx.rank() + 1) % p) * kOpsPerRank + i);
      benchmark::DoNotOptimize(dht.round());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * kOpsPerRank * p);
}
BENCHMARK(BM_DhtBulkOps)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

void print_sample_sort_table(pdc::benchutil::Options& bopt) {
  pdc::perf::Table t({"ranks", "messages", "payload words", "words / key"});
  const std::size_t n = 100000;
  std::vector<std::int64_t> base(n);
  std::uint64_t seed = 9;
  for (auto& v : base) {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    v = static_cast<std::int64_t>(seed);
  }
  for (int ranks : {2, 4, 8}) {
    std::uint64_t msgs = 0, words = 0;
    const auto sorted = pdc::algo::mp_sample_sort(base, ranks, &msgs, &words);
    if (!std::is_sorted(sorted.begin(), sorted.end())) {
      std::cerr << "SAMPLE SORT FAILED\n";
      std::exit(1);
    }
    t.add_row({std::to_string(ranks), std::to_string(msgs),
               std::to_string(words),
               pdc::perf::fmt(static_cast<double>(words) /
                                  static_cast<double>(n),
                              2)});
  }
  bopt.add_json_table("sample sort traffic", t);
  std::cout << "== CS87-mp: distributed sample sort (PSRS) traffic, "
               "N = 100K keys ==\n"
            << t.str()
            << "(each key crosses the network about once — the partition "
               "exchange dominates; samples/pivots are the +epsilon)\n\n";
}

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  // The collective and sample-sort tables are exact traffic counts —
  // deterministic, so the CI release job diffs them against
  // bench/expectations/. The reliability-tax table is seeded but its
  // retransmits are timeout- (timing-) dependent, so it stays print-only.
  print_collective_table(opt);
  print_reliability_tax_table();
  print_sample_sort_table(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
