// Runtime ablation: persistent pooled team executor vs fork-per-region.
//
// Every parallel construct in pdc::core launches SPMD regions; before the
// TeamPool, each region paid P x (jthread spawn + join). The pool parks
// its workers between regions and releases them with a generation bump,
// which is the overhead OpenMP-style runtimes amortize. This bench
// measures exactly that gap: region-launch latency (empty body) and
// parallel_for throughput on a small loop, pooled vs forked, across
// thread counts — the reason every downstream parallel bench is now less
// dominated by thread-creation noise.
//
// Expected shape: pooled launch latency is several-fold (target >= 5x at
// 8 threads) below forked and grows slowly with P; the gap shrinks as the
// loop body grows because real work hides launch overhead.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstddef>
#include <iostream>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/core/team.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace {

/// Seconds per empty region launch on the given path.
double region_launch_seconds(int threads, bool reuse_pool, int regions) {
  const pdc::core::TeamOptions opt{.reuse_pool = reuse_pool};
  return pdc::perf::time_best_of(3, [&] {
           for (int i = 0; i < regions; ++i)
             pdc::core::Team::run(threads, opt,
                                  [](pdc::core::TeamContext&) {});
         }) /
         regions;
}

void print_launch_table() {
  // Warm the pool so lazy worker start is not billed to the first row.
  pdc::core::Team::run(8, [](pdc::core::TeamContext&) {});

  pdc::perf::Table t({"threads", "forked us/region", "pooled us/region",
                      "forked/pooled"});
  for (int p : {1, 2, 4, 8}) {
    const int regions = p >= 4 ? 200 : 500;
    const double forked = region_launch_seconds(p, false, regions) * 1e6;
    const double pooled = region_launch_seconds(p, true, regions) * 1e6;
    t.add_row({std::to_string(p), pdc::perf::fmt(forked, 2),
               pdc::perf::fmt(pooled, 2),
               pdc::perf::fmt(pooled > 0 ? forked / pooled : 0.0, 1)});
  }
  std::cout << "== region launch: persistent pool vs fork-per-region ==\n"
            << t.str()
            << "(threads=1 runs inline on both paths; the forked column "
               "pays P spawns+joins per region)\n\n";

  // The same gap seen through parallel_for on a short loop.
  std::vector<double> xs(1 << 14, 1.0);
  pdc::perf::Table t2({"threads", "forked us/loop", "pooled us/loop"});
  for (int p : {2, 4, 8}) {
    const auto time_loop = [&](bool reuse_pool) {
      pdc::core::ForOptions opt;
      opt.threads = p;
      opt.reuse_pool = reuse_pool;
      return pdc::perf::time_best_of(3, [&] {
               for (int rep = 0; rep < 50; ++rep) {
                 pdc::core::parallel_for(
                     0, xs.size(), opt,
                     [&](std::size_t i) { xs[i] *= 1.0001; });
               }
             }) /
             50 * 1e6;
    };
    t2.add_row({std::to_string(p), pdc::perf::fmt(time_loop(false), 2),
                pdc::perf::fmt(time_loop(true), 2)});
  }
  std::cout << "== parallel_for (16K light iterations) ==\n"
            << t2.str()
            << "(launch overhead is the difference; it shrinks as the "
               "body grows)\n\n";
}

void BM_RegionLaunchForked(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const pdc::core::TeamOptions opt{.reuse_pool = false};
  for (auto _ : state)
    pdc::core::Team::run(threads, opt, [](pdc::core::TeamContext&) {});
}
BENCHMARK(BM_RegionLaunchForked)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_RegionLaunchPooled(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const pdc::core::TeamOptions opt{.reuse_pool = true};
  for (auto _ : state)
    pdc::core::Team::run(threads, opt, [](pdc::core::TeamContext&) {});
}
BENCHMARK(BM_RegionLaunchPooled)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelForPathComparison(benchmark::State& state) {
  std::vector<double> xs(1 << 14, 1.0);
  pdc::core::ForOptions opt;
  opt.threads = 4;
  opt.reuse_pool = state.range(0) != 0;
  for (auto _ : state) {
    pdc::core::parallel_for(0, xs.size(), opt,
                            [&](std::size_t i) { xs[i] *= 1.0001; });
    benchmark::DoNotOptimize(xs.data());
  }
}
BENCHMARK(BM_ParallelForPathComparison)
    ->Arg(0)   // forked
    ->Arg(1)   // pooled
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_launch_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
