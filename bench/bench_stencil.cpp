// bench_stencil — prices the generic 2-D stencil engine's two headline
// claims and exercises the heat workload across all three execution
// modes:
//
//   1. dirty-tile skipping: a sparse Life board (soup confined to one
//      corner, <= 10% of tiles ever active) runs >= 3x faster than the
//      full sweep, bit-identically (the equivalence is asserted in
//      tests/stencil_test.cpp; here we price it).
//   2. 2-D vs row-only tiling: on a wide board with a narrow active
//      column band, row tiles can never sleep (every row intersects the
//      band) while 2-D tiles skip the quiet columns.
//
// The model-counts study emits *exact* deterministic numbers (halo wire
// words, tiles computed/skipped, heat convergence steps) — the same rows
// under --smoke and full runs — which `--json=FILE` exports and CI diffs
// against bench/expectations/BENCH_stencil.json.
//
// `--trace=trace.json` produces the Chrome-trace demo: per-step spans
// shrink as the board settles and tiles drop out of the active set.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "bench_util.hpp"

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"
#include "pdc/stencil/heat.hpp"

namespace {

namespace pl = pdc::life;
namespace ps = pdc::stencil;

/// Board that is dead except for random soup in the top-left
/// `block_rows x block_cols` corner — the sparse workload where skipping
/// should shine.
pl::Grid sparse_board(std::size_t rows, std::size_t cols,
                      std::size_t block_rows, std::size_t block_cols,
                      std::uint64_t seed) {
  pl::Grid soup = pl::random_grid(block_rows, block_cols, 0.35, seed,
                                  pl::Boundary::kDead);
  pl::Grid board(rows, cols, pl::Boundary::kDead);
  for (std::size_t r = 0; r < block_rows; ++r)
    for (std::size_t c = 0; c < block_cols; ++c)
      board.set(r, c, soup.get(r, c));
  return board;
}

double run_life_timed(const pl::Grid& start, int gens,
                      const pl::EngineOptions& opt, ps::RunResult& res) {
  pl::Grid board = start;
  pdc::perf::Timer t;
  res = pl::run_sequential(board, gens, opt);
  const auto ns = static_cast<double>(t.elapsed_ns());
  benchmark::DoNotOptimize(board);
  return ns / 1e6;  // ms
}

void print_skip_ablation(pdc::benchutil::Options& bopt) {
  const std::size_t n = bopt.smoke ? 1024 : 2048;
  const int gens = bopt.smoke ? 150 : 300;
  const pl::Grid start = sparse_board(n, n, n / 16, n / 16, 42);
  pl::EngineOptions opt;
  opt.tile_rows = 32;
  opt.tile_words = 4;

  const auto before = pdc::obs::metrics_snapshot();
  ps::RunResult on, off;
  opt.skip_quiescent = false;
  const double off_ms = run_life_timed(start, gens, opt, off);
  opt.skip_quiescent = true;
  const double on_ms = run_life_timed(start, gens, opt, on);
  const auto delta = pdc::obs::metrics_snapshot() - before;

  const auto total = on.tiles_computed + on.tiles_skipped;
  pdc::perf::Table t({"mode", "ms", "tiles computed", "tiles skipped",
                      "skip rate", "speedup"});
  t.add_row({"full sweep", pdc::perf::fmt(off_ms, 1),
             std::to_string(off.tiles_computed), "0", "0.00", "1.00"});
  t.add_row({"dirty-tile skip", pdc::perf::fmt(on_ms, 1),
             std::to_string(on.tiles_computed),
             std::to_string(on.tiles_skipped),
             pdc::perf::fmt(static_cast<double>(on.tiles_skipped) /
                                static_cast<double>(total),
                            2),
             pdc::perf::fmt(off_ms / on_ms, 2)});
  std::cout << "== stencil: dirty-tile skipping on sparse Life (" << n << "x"
            << n << ", soup in " << n / 16 << "x" << n / 16 << " corner, "
            << gens << " gens) ==\n"
            << t.str()
            << "(obs stencil.tiles_skipped delta: "
            << delta.counter("stencil.tiles_skipped")
            << "; acceptance: speedup >= 3x, results bit-identical — "
               "asserted in stencil_test)\n\n";
  bopt.add_json_table("skip ablation", t);
}

void print_tiling_shape_study(pdc::benchutil::Options& bopt) {
  // Wide board, activity confined to a narrow left column band: row
  // tiles all intersect the band and can never sleep; 2-D tiles put the
  // quiet right-hand words to bed.
  const std::size_t rows = bopt.smoke ? 256 : 512;
  const std::size_t cols = bopt.smoke ? 16384 : 32768;
  const int gens = bopt.smoke ? 30 : 60;
  const pl::Grid start = sparse_board(rows, cols, rows, 256, 7);

  pl::EngineOptions row_opt;
  row_opt.tile_rows = 32;
  row_opt.tile_words = cols / 64;  // one tile spans the whole row
  pl::EngineOptions tile_opt;
  tile_opt.tile_rows = 32;
  tile_opt.tile_words = 16;

  ps::RunResult row_res, tile_res;
  const double row_ms = run_life_timed(start, gens, row_opt, row_res);
  const double tile_ms = run_life_timed(start, gens, tile_opt, tile_res);

  const auto rate = [](const ps::RunResult& r) {
    return static_cast<double>(r.tiles_skipped) /
           static_cast<double>(r.tiles_computed + r.tiles_skipped);
  };
  pdc::perf::Table t(
      {"tiling", "tile shape", "ms", "skip rate", "speedup"});
  t.add_row({"row-only", "32 x " + std::to_string(cols / 64) + " words",
             pdc::perf::fmt(row_ms, 1), pdc::perf::fmt(rate(row_res), 2),
             "1.00"});
  t.add_row({"2-D", "32 x 16 words", pdc::perf::fmt(tile_ms, 1),
             pdc::perf::fmt(rate(tile_res), 2),
             pdc::perf::fmt(row_ms / tile_ms, 2)});
  std::cout << "== stencil: 2-D vs row-only tiling (" << rows << "x" << cols
            << " board, 256-column active band, " << gens << " gens) ==\n"
            << t.str()
            << "(row tiles intersect the band and never sleep; 2-D tiles "
               "skip the quiet columns)\n\n";
  bopt.add_json_table("tiling shape", t);
}

/// The hybrid ladder: the same 8 cores sliced as 8x1 (pure message
/// passing), 4x2, 2x4, and 1x8 (pure shared memory), with the halo
/// exchange overlapped against interior tiles or fully serialized.
/// Results are bit-identical down every row (asserted in stencil_test);
/// this table prices the shapes and the overlap.
void print_hybrid_ladder(pdc::benchutil::Options& bopt) {
  const std::size_t rows = bopt.smoke ? 512 : 1024;
  const std::size_t cols = bopt.smoke ? 1024 : 2048;
  const int gens = bopt.smoke ? 12 : 40;
  const pl::Grid start = pl::random_grid(rows, cols, 0.3, 13);
  pl::EngineOptions opt;
  opt.tile_rows = 32;
  opt.tile_words = 4;

  pdc::perf::Table t(
      {"plan (ranks x threads)", "halo schedule", "ms", "halo words"});
  const auto add = [&](int ranks, int threads, ps::HaloSchedule sched) {
    const ps::ExecPlan plan{
        .ranks = ranks, .threads_per_rank = threads, .schedule = sched};
    ps::RunResult res;
    const double ms = pdc::perf::time_best_of(3, [&] {
                        pl::Grid board = start;
                        res = pl::run_plan(board, gens, plan, opt);
                        benchmark::DoNotOptimize(board);
                      }) *
                      1e3;
    t.add_row({std::to_string(ranks) + " x " + std::to_string(threads),
               ranks > 1
                   ? (sched == ps::HaloSchedule::kOverlap ? "overlap"
                                                          : "serial")
                   : "n/a",
               pdc::perf::fmt(ms, 1), std::to_string(res.halo_words)});
  };
  constexpr std::pair<int, int> kLadder[] = {{8, 1}, {4, 2}, {2, 4}, {1, 8}};
  for (const auto& [ranks, threads] : kLadder) {
    add(ranks, threads, ps::HaloSchedule::kOverlap);
    if (ranks > 1) add(ranks, threads, ps::HaloSchedule::kSerial);
  }
  std::cout << "== stencil: hybrid ladder, 8 cores as ranks x threads ("
            << rows << "x" << cols << " torus soup, " << gens
            << " gens; overlap vs serial halo schedule) ==\n"
            << t.str()
            << "(every row computes the bit-identical board; the overlap "
               "rows hide the halo exchange behind interior tiles)\n\n";
  bopt.add_json_table("hybrid ladder", t);
}

void print_heat_engines(pdc::benchutil::Options& bopt) {
  const std::size_t rows = 96, cols = 128;
  ps::HeatOptions hopt;
  hopt.conductivity = 0.25;
  hopt.converge_eps = 1e-4;
  hopt.tile_rows = 16;
  hopt.tile_cols = 32;
  const auto make = [&] {
    ps::HeatField f(rows, cols, 0.0f);
    f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
    return f;
  };

  pdc::perf::Table t({"engine", "steps", "residual", "tiles computed",
                      "tiles skipped", "ms"});
  const auto add = [&](const char* name, auto&& run) {
    ps::HeatField f = make();
    pdc::perf::Timer timer;
    const ps::RunResult res = run(f);
    const auto ms = static_cast<double>(timer.elapsed_ns()) / 1e6;
    t.add_row({name, std::to_string(res.steps),
               pdc::perf::fmt(res.last_delta, 6),
               std::to_string(res.tiles_computed),
               std::to_string(res.tiles_skipped), pdc::perf::fmt(ms, 1)});
  };
  add("sequential",
      [&](ps::HeatField& f) { return ps::heat_relax(f, hopt); });
  add("threaded x4",
      [&](ps::HeatField& f) { return ps::heat_relax_threaded(f, hopt, 4); });
  add("mp x4",
      [&](ps::HeatField& f) { return ps::heat_relax_mp(f, hopt, 4); });
  add("hybrid 2x2", [&](ps::HeatField& f) {
    return ps::heat_relax_plan(
        f, hopt, ps::ExecPlan{.ranks = 2, .threads_per_rank = 2});
  });

  std::cout << "== stencil: heat dissipation to convergence (" << rows << "x"
            << cols << ", hot top edge, eps=1e-4) ==\n"
            << t.str()
            << "(all engines must report identical steps and residual — "
               "asserted in stencil_test)\n\n";
  bopt.add_json_table("heat engines", t);
}

/// Exact, deterministic model counts — identical under --smoke and full
/// runs, diffed by CI against bench/expectations/BENCH_stencil.json.
void print_model_counts(pdc::benchutil::Options& bopt) {
  pdc::perf::Table t({"config", "steps", "tiles computed", "tiles skipped",
                      "halo words"});
  const auto add = [&](const std::string& name, const ps::RunResult& r) {
    t.add_row({name, std::to_string(r.steps),
               std::to_string(r.tiles_computed),
               std::to_string(r.tiles_skipped),
               std::to_string(r.halo_words)});
  };

  // Life, 256x256 torus soup: 4 payload words + 1 flag word per halo
  // message, 2 messages per rank per generation.
  const pl::Grid life_start = pl::random_grid(256, 256, 0.3, 3);
  pl::EngineOptions lopt;
  lopt.tile_rows = 32;
  lopt.tile_words = 2;
  {
    pl::Grid b = life_start;
    add("life seq 256x256 t32x2 g10", pl::run_sequential(b, 10, lopt));
  }
  {
    pl::Grid b = life_start;
    add("life mp4 256x256 t32x2 g10",
        pl::run_message_passing(b, 10, 4, lopt));
  }
  // Hybrid {2,4}: half the ranks of mp4, so half the halo words — and
  // the tile accounting is unchanged from the sequential row.
  {
    pl::Grid b = life_start;
    add("life hybrid 2x4 256x256 t32x2 g10",
        pl::run_plan(b, 10,
                     ps::ExecPlan{.ranks = 2, .threads_per_rank = 4}, lopt));
  }
  // Life, sparse corner soup: most tiles asleep; exact skip counts.
  {
    pl::Grid b = sparse_board(512, 512, 64, 64, 42);
    add("life seq sparse 512x512 t32x2 g20", pl::run_sequential(b, 20, lopt));
  }

  // Heat to convergence: steps must agree across engines (rows 4 and 5),
  // halo words = 2 edge ranks x 1 msg x (48 payload + 1 flag) per step
  // for the 2-rank strip run.
  ps::HeatOptions hopt;
  hopt.conductivity = 0.25;
  hopt.converge_eps = 1e-4;
  hopt.tile_rows = 16;
  hopt.tile_cols = 32;
  {
    ps::HeatField f(64, 96, 0.0f);
    f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
    add("heat seq 64x96 eps1e-4", ps::heat_relax(f, hopt));
  }
  {
    ps::HeatField f(64, 96, 0.0f);
    f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
    add("heat mp2 64x96 eps1e-4", ps::heat_relax_mp(f, hopt, 2));
  }
  // Hybrid {2,2} must reproduce the mp2 row's counts exactly: threads
  // and halo overlap change wall-clock, never a count.
  {
    ps::HeatField f(64, 96, 0.0f);
    f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
    add("heat hybrid 2x2 64x96 eps1e-4",
        ps::heat_relax_plan(
            f, hopt, ps::ExecPlan{.ranks = 2, .threads_per_rank = 2}));
  }

  std::cout << "== stencil: exact model counts (deterministic; diffed "
               "against bench/expectations/BENCH_stencil.json) ==\n"
            << t.str() << "\n";
  bopt.add_json_table("model counts", t);
}

void BM_LifeSparseSkip(benchmark::State& state) {
  const bool skip = state.range(0) != 0;
  auto board = sparse_board(1024, 1024, 64, 64, 7);
  pl::EngineOptions opt;
  opt.tile_rows = 32;
  opt.tile_words = 4;
  opt.skip_quiescent = skip;
  for (auto _ : state) {
    pl::run_sequential(board, 8, opt);
    benchmark::DoNotOptimize(board);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024 * 1024 * 8);
}
BENCHMARK(BM_LifeSparseSkip)->Arg(0)->Arg(1);

void BM_HeatStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ps::HeatField f(n, n, 0.0f);
  f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
  ps::HeatOptions hopt;
  hopt.converge_eps = -1.0;  // fixed step count: price the raw kernel
  hopt.max_steps = 4;
  for (auto _ : state) {
    ps::heat_relax(f, hopt);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n) * 4);
}
BENCHMARK(BM_HeatStep)->Arg(256)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  print_skip_ablation(opt);
  print_tiling_shape_study(opt);
  print_hybrid_ladder(opt);
  print_heat_engines(opt);
  print_model_counts(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
