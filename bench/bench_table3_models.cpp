// T3-sort / T3-matrix / T3-selection / PRAM — Table III, "Parallel and
// Distributed Models and Complexity" + "Algorithmic Problems": merge sort
// analyzed across the RAM, shared-memory, I/O, and PRAM/DAG models (the
// course's unifying example), plus selection and matrix computation.
//
// Expected shape: parallel merge sort speedup is modest (span Θ(n));
// external sort I/Os drop steeply with memory; quickselect beats
// sort-then-index; blocked/ikj matmul beat naive by memory behavior alone;
// the DAG's measured parallelism matches Θ(log n).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>
#include <random>

#include "pdc/algo/matrix.hpp"
#include "pdc/algo/selection.hpp"
#include "pdc/algo/sort.hpp"
#include "pdc/extmem/external_sort.hpp"
#include "pdc/model/bsp.hpp"
#include "pdc/model/task_graph.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng());
  return v;
}

void print_models_table() {
  const std::size_t n = 1 << 20;
  const auto base = random_values(n, 3);

  // RAM model: sequential merge sort.
  auto seq = base;
  const double t_seq =
      pdc::perf::time_best_of(2, [&] {
        seq = base;
        pdc::algo::merge_sort(seq);
      });

  // Shared memory: fork-join parallel (2 and 4 way).
  auto t_par = [&](int threads) {
    auto v = base;
    return pdc::perf::time_best_of(2, [&] {
      v = base;
      pdc::algo::parallel_merge_sort(v, threads);
    });
  };
  const double t2 = t_par(2);
  const double t4 = t_par(4);

  // DAG model: analytic work/span of the same algorithm.
  const auto dag = pdc::model::fork_join_sort_dag(n, 2048);
  // I/O model: external sort with 64KB of memory, 4KB blocks.
  auto ext = base;
  const auto io =
      pdc::extmem::external_merge_sort(ext, 4096, 64 * 1024);

  pdc::perf::Table t({"model", "metric", "value"});
  t.add_row({"RAM (sequential)", "seconds", pdc::perf::fmt(t_seq, 3)});
  t.add_row({"shared memory P=2", "speedup",
             pdc::perf::fmt(t_seq / t2, 2)});
  t.add_row({"shared memory P=4", "speedup",
             pdc::perf::fmt(t_seq / t4, 2)});
  t.add_row({"DAG / work-span", "parallelism T1/Tinf",
             pdc::perf::fmt(dag.parallelism(), 1)});
  t.add_row({"DAG / work-span", "greedy T_4 vs Brent bound",
             pdc::perf::fmt(dag.greedy_schedule_makespan(4), 0) + " <= " +
                 pdc::perf::fmt(dag.brent_bound(4), 0)});
  t.add_row({"I/O model (M=64KB, B=4KB)", "block I/Os",
             std::to_string(io.total_ios()) + " (predicted " +
                 pdc::perf::fmt(
                     pdc::extmem::predicted_sort_ios(n, 64 * 1024, 4096),
                     0) +
                 ")"});
  std::cout << "== T3-sort: merge sort of 2^20 keys across models of "
               "computation ==\n"
            << t.str()
            << "(sequential merges bound the span: parallelism is only "
               "Θ(log n), so P=4 speedup sits well below 4)\n\n";
}

void print_selection_table() {
  const std::size_t n = 1 << 20;
  const auto values = random_values(n, 9);
  const std::size_t k = n / 2;

  pdc::perf::Table t({"algorithm", "seconds", "guarantee"});
  double t_sort = 0, t_quick = 0, t_mom = 0;
  std::int64_t r1 = 0, r2 = 0, r3 = 0;
  t_sort = pdc::perf::time_best_of(
      2, [&] { r1 = pdc::algo::sort_select(values, k); });
  t_quick = pdc::perf::time_best_of(
      2, [&] { r2 = pdc::algo::quickselect(values, k); });
  t_mom = pdc::perf::time_best_of(
      2, [&] { r3 = pdc::algo::median_of_medians(values, k); });
  if (r1 != r2 || r2 != r3) {
    std::cerr << "SELECTION DISAGREEMENT\n";
    std::exit(1);
  }
  t.add_row({"sort + index", pdc::perf::fmt(t_sort, 4), "Θ(n log n)"});
  t.add_row({"quickselect", pdc::perf::fmt(t_quick, 4), "expected Θ(n)"});
  t.add_row({"median of medians", pdc::perf::fmt(t_mom, 4),
             "worst-case Θ(n)"});
  std::cout << "== T3-selection: median of 2^20 keys ==\n"
            << t.str()
            << "(quickselect wins on average; BFPRT pays a constant "
               "factor for its worst-case bound)\n\n";
}

void print_pram_dag_table() {
  pdc::perf::Table t({"n", "reduce DAG work", "span", "parallelism"});
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto dag = pdc::model::reduction_dag(n);
    t.add_row({std::to_string(n), pdc::perf::fmt(dag.total_work(), 0),
               pdc::perf::fmt(dag.span(), 0),
               pdc::perf::fmt(dag.parallelism(), 0)});
  }
  std::cout << "== PRAM/DAG: tree reduction — work Θ(n), span Θ(log n) ==\n"
            << t.str() << "\n";

  // BSP costs for the course's three standard programs.
  pdc::model::BspMachine m{16, 2.0, 50.0};
  pdc::perf::Table bsp({"program", "supersteps", "cost (g=2, l=50, p=16)"});
  const auto bt = pdc::model::bsp_broadcast(16, true);
  const auto bf = pdc::model::bsp_broadcast(16, false);
  const auto rd = pdc::model::bsp_reduce(1 << 20, 16);
  const auto ss = pdc::model::bsp_sample_sort(1 << 20, 16);
  bsp.add_row({"broadcast (tree)", std::to_string(bt.supersteps()),
               pdc::perf::fmt(bt.cost(m), 0)});
  bsp.add_row({"broadcast (flat)", std::to_string(bf.supersteps()),
               pdc::perf::fmt(bf.cost(m), 0)});
  bsp.add_row({"reduce 2^20", std::to_string(rd.supersteps()),
               pdc::perf::fmt(rd.cost(m), 0)});
  bsp.add_row({"sample sort 2^20", std::to_string(ss.supersteps()),
               pdc::perf::fmt(ss.cost(m), 0)});
  std::cout << "== BSP cost model ==\n" << bsp.str() << "\n";
}

// --- timed kernels ---

void BM_MergeSortSequential(benchmark::State& state) {
  const auto base = random_values(static_cast<std::size_t>(state.range(0)),
                                  1);
  for (auto _ : state) {
    auto v = base;
    pdc::algo::merge_sort(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MergeSortSequential)->Arg(1 << 16)->Arg(1 << 19);

void BM_MergeSortParallel(benchmark::State& state) {
  const auto base = random_values(1 << 19, 1);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto v = base;
    pdc::algo::parallel_merge_sort(v, threads);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MergeSortParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatmulVariants(benchmark::State& state) {
  const std::size_t n = 192;
  pdc::algo::Matrix a(n, n), b(n, n);
  a.fill_pattern(1);
  b.fill_pattern(2);
  const int variant = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::algo::Matrix c = [&] {
      switch (variant) {
        case 0: return pdc::algo::matmul_naive(a, b);
        case 1: return pdc::algo::matmul_ikj(a, b);
        case 2: return pdc::algo::matmul_blocked(a, b, 48);
        default: return pdc::algo::matmul_parallel(a, b, 4);
      }
    }();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MatmulVariants)
    ->Arg(0)   // naive ijk
    ->Arg(1)   // ikj
    ->Arg(2)   // blocked
    ->Arg(3);  // parallel

void BM_Quickselect(benchmark::State& state) {
  const auto values = random_values(1 << 20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pdc::algo::quickselect(values, values.size() / 2));
  }
}
BENCHMARK(BM_Quickselect);

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_models_table();
  print_selection_table();
  print_pram_dag_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
