// T1-alu / T1-bits / T1-clist — Table I's machine-organization labs:
//   "Building an ALU":    gate count and propagation depth vs bit width,
//                          plus the simulated-evaluation rate.
//   "Data Representation / Bit vectors": conversion and set-op throughput.
//   "Python lists in C":   growth-policy ablation (reallocations & bytes
//                          copied) and append/insert rates.
//
// Expected shape: ALU gates grow linearly and depth linearly (ripple
// carry); doubling the list growth factor cuts bytes copied by more than
// half; bit-vector ops run at word speed.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>
#include <random>

#include "pdc/clist/rawlist.hpp"
#include "pdc/machine/alu.hpp"
#include "pdc/machine/bits.hpp"
#include "pdc/machine/bitvector.hpp"
#include "pdc/machine/logic.hpp"
#include "pdc/perf/table.hpp"

namespace {

void print_alu_table() {
  pdc::perf::Table t({"width", "gates", "depth (gate delays)",
                      "wires"});
  for (int w : {4, 8, 16, 32}) {
    pdc::machine::Circuit c;
    const auto a = pdc::machine::input_bus(c, "a", w);
    const auto b = pdc::machine::input_bus(c, "b", w);
    const auto op = pdc::machine::input_bus(c, "op", 3);
    const auto alu = pdc::machine::build_alu(c, a, b, op);
    t.add_row({std::to_string(w), std::to_string(c.gate_count()),
               std::to_string(c.depth(alu.result[static_cast<std::size_t>(
                   w - 1)])),
               std::to_string(c.wire_count())});
  }
  std::cout << "== T1-alu: gate-level ALU cost vs width ==\n"
            << t.str()
            << "(gates grow linearly; ripple-carry depth grows linearly "
               "with width)\n\n";
}

void print_growth_policy_table() {
  pdc::perf::Table t({"growth factor", "reallocations", "bytes copied"});
  for (double factor : {1.25, 1.5, 2.0, 3.0}) {
    pdc::clist::GrowthPolicy p;
    p.factor = factor;
    p.min_step = 1;
    pdc::clist::List<std::int64_t> list(p);
    for (std::int64_t i = 0; i < 100000; ++i) list.append(i);
    t.add_row({pdc::perf::fmt(factor, 2),
               std::to_string(list.stats().grow_count),
               pdc::perf::fmt_count(
                   static_cast<double>(list.stats().bytes_copied))});
  }
  std::cout << "== T1-clist: growth-policy ablation (100K appends) ==\n"
            << t.str()
            << "(larger factor => geometrically fewer reallocations and "
               "less copying)\n\n";
}

// --- timed kernels ---

void BM_AluCircuitEvaluate(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  pdc::machine::Circuit c;
  const auto a = pdc::machine::input_bus(c, "a", w);
  const auto b = pdc::machine::input_bus(c, "b", w);
  const auto op = pdc::machine::input_bus(c, "op", 3);
  (void)pdc::machine::build_alu(c, a, b, op);
  std::vector<bool> inputs(static_cast<std::size_t>(2 * w + 3), false);
  inputs[0] = true;
  for (auto _ : state) {
    auto vals = c.evaluate(inputs);
    benchmark::DoNotOptimize(vals);
  }
}
BENCHMARK(BM_AluCircuitEvaluate)->Arg(8)->Arg(16)->Arg(32);

void BM_TwosComplementRoundTrip(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::vector<std::int64_t> values(1024);
  for (auto& v : values)
    v = pdc::machine::decode_twos_complement(rng(), 32);
  for (auto _ : state) {
    for (auto v : values) {
      benchmark::DoNotOptimize(pdc::machine::decode_twos_complement(
          pdc::machine::encode_twos_complement(v, 32), 32));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_TwosComplementRoundTrip);

void BM_BitVectorIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pdc::machine::BitVector a(n), b(n);
  for (std::size_t i = 0; i < n; i += 3) a.set(i);
  for (std::size_t i = 0; i < n; i += 5) b.set(i);
  for (auto _ : state) {
    auto c = a & b;
    benchmark::DoNotOptimize(c.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitVectorIntersect)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ListAppend(benchmark::State& state) {
  for (auto _ : state) {
    pdc::clist::List<std::int64_t> list;
    for (std::int64_t i = 0; i < state.range(0); ++i) list.append(i);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ListAppend)->Arg(1 << 10)->Arg(1 << 16);

void BM_ListInsertFront(benchmark::State& state) {
  // Quadratic by design: the shifting cost the lab asks students to find.
  for (auto _ : state) {
    pdc::clist::List<std::int64_t> list;
    for (std::int64_t i = 0; i < state.range(0); ++i) list.insert(0, i);
    benchmark::DoNotOptimize(list.size());
  }
}
BENCHMARK(BM_ListInsertFront)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_alu_table();
  print_growth_policy_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
