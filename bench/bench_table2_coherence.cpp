// T2-coherence — Table II "Multicore ... Coherency" and the CS75
// false-sharing topic. Two halves:
//   1. Model counts: MSI vs MESI bus traffic on private-data and
//      shared-counter workloads; false sharing packed vs padded.
//   2. Real hardware: threads incrementing adjacent vs padded counters —
//      the wall-clock cost of the invalidation storm the model predicts.
//
// Expected shape: MESI eliminates the upgrade on private data; packed
// counters generate an invalidation per write while padded generate ~0;
// on real hardware padded counters are several times faster.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "pdc/memsim/coherence.hpp"
#include "pdc/perf/table.hpp"

namespace {

namespace pm = pdc::memsim;

void print_protocol_table() {
  pdc::perf::Table t({"workload", "protocol", "bus transactions",
                      "invalidations", "silent E->M"});
  for (auto proto : {pm::Protocol::kMsi, pm::Protocol::kMesi}) {
    // Private data: each core reads then writes its own lines.
    pm::SnoopBus priv(4, proto, 64);
    for (int c = 0; c < 4; ++c) {
      const auto base = static_cast<pm::Address>(c) * 65536;
      for (int i = 0; i < 64; ++i) {
        priv.read(c, base + static_cast<pm::Address>(i) * 64);
        priv.write(c, base + static_cast<pm::Address>(i) * 64);
      }
    }
    t.add_row({"private read-then-write",
               std::string(pm::protocol_name(proto)),
               std::to_string(priv.stats().bus_transactions()),
               std::to_string(priv.stats().invalidations),
               std::to_string(priv.stats().silent_upgrades)});

    // Shared counter: all cores hammer one line.
    pm::SnoopBus shared(4, proto, 64);
    for (int i = 0; i < 64; ++i) {
      for (int c = 0; c < 4; ++c) {
        shared.read(c, 0);
        shared.write(c, 0);
      }
    }
    t.add_row({"shared counter", std::string(pm::protocol_name(proto)),
               std::to_string(shared.stats().bus_transactions()),
               std::to_string(shared.stats().invalidations),
               std::to_string(shared.stats().silent_upgrades)});
  }
  std::cout << "== T2-coherence: MSI vs MESI traffic (4 cores) ==\n"
            << t.str()
            << "(MESI's E state removes all bus upgrades on private data; "
               "nothing saves the shared counter)\n\n";
}

void print_false_sharing_model() {
  pdc::perf::Table t({"layout", "stride", "bus transactions",
                      "invalidations"});
  for (const auto& [label, stride] :
       {std::pair{std::string("packed (false sharing)"), std::size_t{8}},
        std::pair{std::string("padded (one line each)"), std::size_t{64}}}) {
    pm::SnoopBus bus(4, pm::Protocol::kMesi, 64);
    pm::run_trace(bus, pm::interleaved_counter_trace(4, 200, stride));
    t.add_row({label, std::to_string(stride),
               std::to_string(bus.stats().bus_transactions()),
               std::to_string(bus.stats().invalidations)});
  }
  std::cout << "== T2-coherence: false sharing, 4 cores x 200 increments "
               "(model) ==\n"
            << t.str() << "\n";
}

// --- real hardware counterpart ---

struct PaddedCounter {
  alignas(64) std::atomic<long> value{0};
};

void increment_workload(std::atomic<long>* counters, std::size_t stride,
                        int threads, long iters) {
  std::vector<std::jthread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto& mine = counters[static_cast<std::size_t>(t) * stride];
      for (long i = 0; i < iters; ++i)
        mine.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

void BM_FalseSharingPacked(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  // Adjacent atomics: all in one or two cache lines.
  std::vector<std::atomic<long>> counters(static_cast<std::size_t>(threads));
  for (auto _ : state) {
    for (auto& c : counters) c.store(0);
    increment_workload(counters.data(), 1, threads, 200000);
    benchmark::DoNotOptimize(counters[0].load());
  }
}
BENCHMARK(BM_FalseSharingPacked)->Arg(2)->Arg(4)->UseRealTime();

void BM_FalseSharingPadded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<PaddedCounter> counters(static_cast<std::size_t>(threads));
  for (auto _ : state) {
    for (auto& c : counters) c.value.store(0);
    std::vector<std::jthread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto& mine = counters[static_cast<std::size_t>(t)].value;
        for (long i = 0; i < 200000; ++i)
          mine.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.clear();  // join
    benchmark::DoNotOptimize(counters[0].value.load());
  }
}
BENCHMARK(BM_FalseSharingPadded)->Arg(2)->Arg(4)->UseRealTime();

void BM_CoherenceSimThroughput(benchmark::State& state) {
  const auto trace = pm::interleaved_counter_trace(4, 5000, 8);
  for (auto _ : state) {
    pm::SnoopBus bus(4, pm::Protocol::kMesi, 64);
    pm::run_trace(bus, trace);
    benchmark::DoNotOptimize(bus.stats().invalidations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CoherenceSimThroughput);

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_protocol_table();
  print_false_sharing_model();
  return pdc::benchutil::finish(opt, argc, argv);
}
