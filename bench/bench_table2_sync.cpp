// T2-sync — Table II "Parallel Algorithms and Programming"
// (synchronization, critical sections, producer-consumer, Amdahl's law):
//   - analytic Amdahl/Gustafson table for serial fractions
//   - lock-family throughput under contention (std::mutex vs TAS vs TTAS
//     vs ticket)
//   - producer-consumer throughput vs buffer capacity
//   - barrier cost (condvar vs sense-reversing)
//
// Expected shape: TTAS beats TAS under contention; the ticket lock pays
// for fairness; tiny bounded buffers serialize producers and consumers;
// Amdahl's curve bends hard for f >= 0.1.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cmath>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "pdc/perf/laws.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/sync/barrier.hpp"
#include "pdc/sync/bounded_buffer.hpp"
#include "pdc/sync/spinlock.hpp"

namespace {

void print_amdahl_table() {
  pdc::perf::Table t({"serial fraction", "S(2)", "S(4)", "S(16)", "S(inf)"});
  for (double f : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    const double limit = pdc::perf::amdahl_limit(f);
    t.add_row({pdc::perf::fmt(f, 2),
               pdc::perf::fmt(pdc::perf::amdahl_speedup(f, 2), 2),
               pdc::perf::fmt(pdc::perf::amdahl_speedup(f, 4), 2),
               pdc::perf::fmt(pdc::perf::amdahl_speedup(f, 16), 2),
               std::isinf(limit) ? std::string("inf") : pdc::perf::fmt(limit, 1)});
  }
  std::cout << "== T2-sync: Amdahl's law ==\n" << t.str() << "\n";
}

template <typename Lock>
void contended_increments(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr long kIters = 20000;
  for (auto _ : state) {
    Lock lock;
    long counter = 0;
    {
      std::vector<std::jthread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (long i = 0; i < kIters; ++i) {
            std::lock_guard guard(lock);
            ++counter;
          }
        });
      }
    }
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          threads * kIters);
}

void BM_LockStdMutex(benchmark::State& state) {
  contended_increments<std::mutex>(state);
}
void BM_LockTas(benchmark::State& state) {
  contended_increments<pdc::sync::TasSpinLock>(state);
}
void BM_LockTtas(benchmark::State& state) {
  contended_increments<pdc::sync::TtasSpinLock>(state);
}
void BM_LockTicket(benchmark::State& state) {
  contended_increments<pdc::sync::TicketLock>(state);
}
BENCHMARK(BM_LockStdMutex)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_LockTas)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_LockTtas)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_LockTicket)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ProducerConsumer(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  constexpr int kItems = 20000;
  for (auto _ : state) {
    pdc::sync::BoundedBuffer<int> buf(capacity);
    long long sum = 0;
    {
      std::jthread producer([&] {
        for (int i = 0; i < kItems; ++i) (void)buf.push(i);
        buf.close();
      });
      std::jthread consumer([&] {
        while (auto v = buf.pop()) sum += *v;
      });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kItems);
}
BENCHMARK(BM_ProducerConsumer)->Arg(1)->Arg(4)->Arg(64)->Arg(1024)
    ->UseRealTime();

void BM_BarrierCondvar(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPhases = 2000;
  for (auto _ : state) {
    pdc::sync::CyclicBarrier barrier(static_cast<std::size_t>(threads));
    std::vector<std::jthread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int ph = 0; ph < kPhases; ++ph) barrier.arrive_and_wait();
      });
    }
    pool.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPhases);
}
BENCHMARK(BM_BarrierCondvar)->Arg(2)->Arg(4)->UseRealTime();

void BM_BarrierSense(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPhases = 2000;
  for (auto _ : state) {
    pdc::sync::SenseBarrier barrier(static_cast<std::size_t>(threads));
    std::vector<std::jthread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int ph = 0; ph < kPhases; ++ph) barrier.arrive_and_wait();
      });
    }
    pool.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPhases);
}
BENCHMARK(BM_BarrierSense)->Arg(2)->Arg(4)->UseRealTime();

void BM_BarrierDissemination(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPhases = 2000;
  for (auto _ : state) {
    pdc::sync::DisseminationBarrier barrier(
        static_cast<std::size_t>(threads));
    std::vector<std::jthread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int ph = 0; ph < kPhases; ++ph)
          barrier.arrive_and_wait(static_cast<std::size_t>(t));
      });
    }
    pool.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPhases);
}
BENCHMARK(BM_BarrierDissemination)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_amdahl_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
