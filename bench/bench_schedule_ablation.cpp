// Ablation: OpenMP-style loop schedules on balanced vs imbalanced work —
// the design choice DESIGN.md calls out for pdc::core::parallel_for. The
// CS87 programming unit has students discover exactly this: static wins
// on uniform work, dynamic/guided win when iteration costs vary, and the
// dynamic chunk size trades contention against balance. The work-stealing
// schedule (Chase–Lev deques + lazy binary splitting) is priced against
// all three: it should match static on uniform loops (O(log n) deque
// traffic) and beat it on skewed ones (idle workers steal the heavy
// tail), with the imbalance visible in the core.steals / core.splits
// counters printed below.
//
// Expected shape (2+ cores): on the triangular workload static is ~2x
// slower than dynamic/guided/stealing; on the uniform workload stealing
// is within 10% of static; on the clustered-glider board tile stealing
// beats the static tile partition because all live tiles sit in one
// corner of the active list.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace {

constexpr int kThreads = 4;

/// Iteration i costs Θ(i): the triangular (imbalanced) workload.
void triangular_body(std::size_t i, volatile double* sink) {
  double acc = 0;
  for (std::size_t k = 0; k < i; ++k) acc += std::sqrt(static_cast<double>(k));
  *sink = acc;
}

double time_triangular(pdc::core::Schedule sched, std::size_t chunk,
                       std::size_t n, volatile double* sink) {
  pdc::core::ForOptions opt;
  opt.threads = kThreads;
  opt.schedule = sched;
  opt.chunk = chunk;
  return pdc::perf::time_best_of(3, [&] {
    pdc::core::parallel_for(0, n, opt,
                            [&](std::size_t i) { triangular_body(i, sink); });
  });
}

void print_schedule_table(bool smoke) {
  const std::size_t kN = smoke ? 1500 : 3000;
  volatile double sink = 0;

  pdc::perf::Table t({"schedule", "chunk", "seconds (imbalanced loop)"});
  t.add_row({"static", "-",
             pdc::perf::fmt(
                 time_triangular(pdc::core::Schedule::kStatic, 64, kN, &sink),
                 4)});
  for (std::size_t chunk : {1u, 16u, 64u, 256u}) {
    t.add_row({"dynamic", std::to_string(chunk),
               pdc::perf::fmt(time_triangular(pdc::core::Schedule::kDynamic,
                                              chunk, kN, &sink),
                              4)});
  }
  t.add_row({"guided", "16",
             pdc::perf::fmt(
                 time_triangular(pdc::core::Schedule::kGuided, 16, kN, &sink),
                 4)});
  for (std::size_t chunk : {16u, 64u}) {
    t.add_row({"stealing", std::to_string(chunk),
               pdc::perf::fmt(time_triangular(pdc::core::Schedule::kStealing,
                                              chunk, kN, &sink),
                              4)});
  }
  std::cout << "== schedule ablation: triangular workload, " << kThreads
            << " threads ==\n"
            << t.str()
            << "(static assigns the heavy tail to one worker; dynamic and "
               "guided rebalance from a shared counter, stealing sheds "
               "ranges to idle thieves)\n\n";
}

void print_uniform_table(bool smoke) {
  // Constant per-iteration cost: the schedule can only add overhead
  // here. Acceptance: stealing within 10% of static.
  const std::size_t kN = smoke ? (1u << 18) : (1u << 20);
  std::vector<double> xs(kN, 1.0);

  pdc::perf::Table t({"schedule", "seconds (uniform loop)"});
  const auto time_with = [&](pdc::core::Schedule sched) {
    pdc::core::ForOptions opt;
    opt.threads = kThreads;
    opt.schedule = sched;
    opt.chunk = 1024;
    return pdc::perf::time_best_of(3, [&] {
      pdc::core::parallel_for(0, xs.size(), opt,
                              [&](std::size_t i) { xs[i] = xs[i] * 1.0001; });
    });
  };
  t.add_row({"static", pdc::perf::fmt(time_with(pdc::core::Schedule::kStatic),
                                      4)});
  t.add_row({"dynamic",
             pdc::perf::fmt(time_with(pdc::core::Schedule::kDynamic), 4)});
  t.add_row({"guided",
             pdc::perf::fmt(time_with(pdc::core::Schedule::kGuided), 4)});
  t.add_row({"stealing",
             pdc::perf::fmt(time_with(pdc::core::Schedule::kStealing), 4)});
  std::cout << "== schedule ablation: uniform workload, " << kThreads
            << " threads, chunk 1024 ==\n"
            << t.str()
            << "(uniform loops measure pure schedule overhead; stealing "
               "pays only O(log(n/chunk)) deque operations per worker)\n\n";
}

void print_steal_counter_table(bool smoke) {
  // Where did the iterations actually run? Deltas of the obs counters
  // around one stealing run: steals/splits plus the per-worker
  // executed-chunk spread (max/min ≈ 1 means the tail was shed evenly).
  const std::size_t kN = smoke ? 1500 : 3000;
  volatile double sink = 0;

  pdc::perf::Table t({"workload", "steal attempts", "steals", "splits",
                      "chunks/worker min..max"});
  const auto study = [&](const char* name, std::size_t chunk,
                         const auto& run) {
    const auto before = pdc::obs::metrics_snapshot();
    run(chunk);
    const auto d = pdc::obs::metrics_snapshot() - before;
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (int r = 0; r < kThreads; ++r) {
      const auto c = d.counter("core.for.chunks.r" + std::to_string(r));
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    t.add_row({name, std::to_string(d.counter("core.steal_attempts")),
               std::to_string(d.counter("core.steals")),
               std::to_string(d.counter("core.splits")),
               std::to_string(lo) + ".." + std::to_string(hi)});
  };
  const auto tri = [&](std::size_t chunk) {
    time_triangular(pdc::core::Schedule::kStealing, chunk, kN, &sink);
  };
  study("triangular, chunk 16", 16, tri);
  study("triangular, chunk 64", 64, tri);
  std::vector<double> xs(smoke ? (1u << 16) : (1u << 18), 1.0);
  study("uniform, chunk 1024", 1024, [&](std::size_t chunk) {
    pdc::core::ForOptions opt;
    opt.threads = kThreads;
    opt.schedule = pdc::core::Schedule::kStealing;
    opt.chunk = chunk;
    pdc::core::parallel_for(0, xs.size(), opt,
                            [&](std::size_t i) { xs[i] = xs[i] * 1.0001; });
  });
  std::cout << "== work-stealing counters (kStealing, " << kThreads
            << " threads; deltas per run) ==\n"
            << t.str()
            << "(timed runs repeat the loop, so counts cover several "
               "sweeps; uniform loops split but barely steal)\n\n";
}

/// Board with all live cells — a block of gliders — clustered in the
/// top-left corner. The active tile list is therefore a contiguous
/// prefix of tile indices: the worst case for a static block partition
/// (one worker owns every live tile) and the best case for stealing.
pdc::life::Grid clustered_glider_board(std::size_t rows, std::size_t cols) {
  pdc::life::Grid g(rows, cols, pdc::life::Boundary::kDead);
  constexpr std::size_t glider[5][2] = {
      {0, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}};
  for (std::size_t gr = 0; gr + 8 < rows / 4; gr += 8)
    for (std::size_t gc = 0; gc + 8 < cols / 4; gc += 8)
      for (const auto& [dr, dc] : glider) g.set(gr + dr, gc + dc, true);
  return g;
}

void print_tile_steal_table(bool smoke) {
  const std::size_t rows = smoke ? 256 : 512;
  const std::size_t cols = smoke ? 512 : 1024;
  const int gens = smoke ? 20 : 60;

  pdc::life::EngineOptions opt;
  opt.tile_rows = 16;
  opt.tile_words = 1;

  pdc::perf::Table t(
      {"tile schedule", "seconds", "tile steals", "steal attempts"});
  for (const bool steal : {false, true}) {
    const pdc::stencil::ExecPlan plan{.threads_per_rank = kThreads,
                                      .steal_tiles = steal};
    const auto before = pdc::obs::metrics_snapshot();
    const double secs = pdc::perf::time_best_of(3, [&] {
      pdc::life::Grid board = clustered_glider_board(rows, cols);
      pdc::life::run_plan(board, gens, plan, opt);
    });
    const auto d = pdc::obs::metrics_snapshot() - before;
    t.add_row({steal ? "stealing" : "static block", pdc::perf::fmt(secs, 4),
               std::to_string(d.counter("stencil.steals")),
               std::to_string(d.counter("stencil.steal_attempts"))});
  }
  std::cout << "== tile stealing: clustered-glider board " << rows << "x"
            << cols << ", " << gens << " gens, " << kThreads
            << " threads ==\n"
            << t.str()
            << "(all live tiles sit in one corner of the active list; the "
               "static block partition leaves three workers idle, stealing "
               "spreads the same tiles — results are bit-identical)\n\n";
}

void BM_ScheduleOnImbalanced(benchmark::State& state) {
  const auto sched = static_cast<pdc::core::Schedule>(state.range(0));
  volatile double sink = 0;
  pdc::core::ForOptions opt;
  opt.threads = kThreads;
  opt.schedule = sched;
  opt.chunk = 16;
  for (auto _ : state) {
    pdc::core::parallel_for(0, 2000, opt,
                            [&](std::size_t i) { triangular_body(i, &sink); });
  }
}
BENCHMARK(BM_ScheduleOnImbalanced)
    ->Arg(static_cast<int>(pdc::core::Schedule::kStatic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kDynamic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kGuided))
    ->Arg(static_cast<int>(pdc::core::Schedule::kStealing))
    ->UseRealTime();

void BM_ScheduleOnUniform(benchmark::State& state) {
  const auto sched = static_cast<pdc::core::Schedule>(state.range(0));
  std::vector<double> xs(1 << 20, 1.0);
  pdc::core::ForOptions opt;
  opt.threads = kThreads;
  opt.schedule = sched;
  opt.chunk = 1024;
  for (auto _ : state) {
    pdc::core::parallel_for(0, xs.size(), opt,
                            [&](std::size_t i) { xs[i] = xs[i] * 1.0001; });
    benchmark::DoNotOptimize(xs.data());
  }
}
BENCHMARK(BM_ScheduleOnUniform)
    ->Arg(static_cast<int>(pdc::core::Schedule::kStatic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kDynamic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kGuided))
    ->Arg(static_cast<int>(pdc::core::Schedule::kStealing))
    ->UseRealTime();

void BM_DynamicChunkSweep(benchmark::State& state) {
  volatile double sink = 0;
  pdc::core::ForOptions opt;
  opt.threads = kThreads;
  opt.schedule = pdc::core::Schedule::kDynamic;
  opt.chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pdc::core::parallel_for(0, 2000, opt,
                            [&](std::size_t i) { triangular_body(i, &sink); });
  }
}
BENCHMARK(BM_DynamicChunkSweep)->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->UseRealTime();

void BM_TileStealingOnClusteredBoard(benchmark::State& state) {
  const bool steal = state.range(0) != 0;
  pdc::life::EngineOptions opt;
  opt.tile_rows = 16;
  opt.tile_words = 1;
  const pdc::stencil::ExecPlan plan{.threads_per_rank = kThreads,
                                    .steal_tiles = steal};
  for (auto _ : state) {
    pdc::life::Grid board = clustered_glider_board(256, 512);
    pdc::life::run_plan(board, 20, plan, opt);
  }
}
BENCHMARK(BM_TileStealingOnClusteredBoard)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_schedule_table(opt.smoke);
  print_uniform_table(opt.smoke);
  print_steal_counter_table(opt.smoke);
  print_tile_steal_table(opt.smoke);
  return pdc::benchutil::finish(opt, argc, argv);
}
