// Ablation: OpenMP-style loop schedules on balanced vs imbalanced work —
// the design choice DESIGN.md calls out for pdc::core::parallel_for. The
// CS87 programming unit has students discover exactly this: static wins
// on uniform work, dynamic/guided win when iteration costs vary, and the
// dynamic chunk size trades contention against balance.
//
// Expected shape: on the triangular workload, static is ~2x slower than
// dynamic/guided at 2+ threads; tiny dynamic chunks pay queue contention.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cmath>
#include <iostream>

#include "pdc/core/parallel_for.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace {

/// Iteration i costs Θ(i): the triangular (imbalanced) workload.
void triangular_body(std::size_t i, volatile double* sink) {
  double acc = 0;
  for (std::size_t k = 0; k < i; ++k) acc += std::sqrt(static_cast<double>(k));
  *sink = acc;
}

void print_schedule_table() {
  constexpr std::size_t kN = 3000;
  constexpr int kThreads = 4;
  volatile double sink = 0;

  pdc::perf::Table t({"schedule", "chunk", "seconds (imbalanced loop)"});
  const auto time_with = [&](pdc::core::Schedule sched, std::size_t chunk) {
    pdc::core::ForOptions opt;
    opt.threads = kThreads;
    opt.schedule = sched;
    opt.chunk = chunk;
    return pdc::perf::time_best_of(3, [&] {
      pdc::core::parallel_for(0, kN, opt,
                              [&](std::size_t i) { triangular_body(i, &sink); });
    });
  };

  t.add_row({"static", "-",
             pdc::perf::fmt(time_with(pdc::core::Schedule::kStatic, 64), 4)});
  for (std::size_t chunk : {1u, 16u, 64u, 256u}) {
    t.add_row({"dynamic", std::to_string(chunk),
               pdc::perf::fmt(
                   time_with(pdc::core::Schedule::kDynamic, chunk), 4)});
  }
  t.add_row({"guided", "16",
             pdc::perf::fmt(time_with(pdc::core::Schedule::kGuided, 16), 4)});
  std::cout << "== schedule ablation: triangular workload, " << kThreads
            << " threads ==\n"
            << t.str()
            << "(static assigns the heavy tail to one worker; dynamic and "
               "guided rebalance)\n\n";
}

void BM_ScheduleOnImbalanced(benchmark::State& state) {
  const auto sched = static_cast<pdc::core::Schedule>(state.range(0));
  volatile double sink = 0;
  pdc::core::ForOptions opt;
  opt.threads = 4;
  opt.schedule = sched;
  opt.chunk = 16;
  for (auto _ : state) {
    pdc::core::parallel_for(0, 2000, opt,
                            [&](std::size_t i) { triangular_body(i, &sink); });
  }
}
BENCHMARK(BM_ScheduleOnImbalanced)
    ->Arg(static_cast<int>(pdc::core::Schedule::kStatic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kDynamic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kGuided))
    ->UseRealTime();

void BM_ScheduleOnUniform(benchmark::State& state) {
  const auto sched = static_cast<pdc::core::Schedule>(state.range(0));
  std::vector<double> xs(1 << 20, 1.0);
  pdc::core::ForOptions opt;
  opt.threads = 4;
  opt.schedule = sched;
  opt.chunk = 1024;
  for (auto _ : state) {
    pdc::core::parallel_for(0, xs.size(), opt,
                            [&](std::size_t i) { xs[i] = xs[i] * 1.0001; });
    benchmark::DoNotOptimize(xs.data());
  }
}
BENCHMARK(BM_ScheduleOnUniform)
    ->Arg(static_cast<int>(pdc::core::Schedule::kStatic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kDynamic))
    ->Arg(static_cast<int>(pdc::core::Schedule::kGuided))
    ->UseRealTime();

void BM_DynamicChunkSweep(benchmark::State& state) {
  volatile double sink = 0;
  pdc::core::ForOptions opt;
  opt.threads = 4;
  opt.schedule = pdc::core::Schedule::kDynamic;
  opt.chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pdc::core::parallel_for(0, 2000, opt,
                            [&](std::size_t i) { triangular_body(i, &sink); });
  }
}
BENCHMARK(BM_DynamicChunkSweep)->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_schedule_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
