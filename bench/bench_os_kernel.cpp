// T1-shell — Table I "Unix Shell" substrate: kernel throughput
// (ticks/sec), fork/exec/wait cycle cost, and a scheduler comparison
// (round-robin quantum sweep vs priority) on a mixed workload —
// the mechanism/policy trade-off CS31 discusses.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "pdc/os/kernel.hpp"
#include "pdc/os/shell.hpp"
#include "pdc/perf/table.hpp"

namespace {

/// Average completion time (in ticks) of N equal compute jobs under a
/// scheduler configuration — the policy metric of the scheduling unit.
double average_completion_ticks(pdc::os::KernelConfig cfg, int jobs,
                                long work) {
  pdc::os::Kernel kernel(cfg);
  std::vector<pdc::os::Pid> pids;
  for (int j = 0; j < jobs; ++j)
    pids.push_back(kernel.spawn({pdc::os::Compute(work), pdc::os::Exit(0)},
                                "job" + std::to_string(j), j));
  // Tick until done, recording each pid's completion tick.
  std::vector<std::uint64_t> done(pids.size(), 0);
  std::size_t remaining = pids.size();
  while (remaining > 0) {
    if (!kernel.tick()) break;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (done[i] == 0 &&
          kernel.state(pids[i]) == pdc::os::ProcState::kReaped) {
        done[i] = kernel.now();
        --remaining;
      }
    }
  }
  double total = 0;
  for (auto d : done) total += static_cast<double>(d);
  return total / static_cast<double>(done.size());
}

void print_scheduler_table() {
  pdc::perf::Table t({"scheduler", "quantum", "avg completion (ticks)"});
  for (int quantum : {1, 4, 16, 64}) {
    pdc::os::KernelConfig cfg;
    cfg.scheduler = pdc::os::SchedulerKind::kRoundRobin;
    cfg.quantum = quantum;
    t.add_row({"round-robin", std::to_string(quantum),
               pdc::perf::fmt(average_completion_ticks(cfg, 8, 100), 1)});
  }
  pdc::os::KernelConfig pr;
  pr.scheduler = pdc::os::SchedulerKind::kPriority;
  t.add_row({"priority", "-",
             pdc::perf::fmt(average_completion_ticks(pr, 8, 100), 1)});
  std::cout << "== T1-shell: scheduler policy comparison (8 jobs x 100 "
               "ticks) ==\n"
            << t.str()
            << "(big quanta approach FIFO; priority = run-to-completion "
               "in priority order, minimizing average completion for "
               "SJF-like orderings)\n\n";
}

void BM_KernelTickThroughput(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    for (int i = 0; i < procs; ++i)
      kernel.spawn({pdc::os::Compute(100), pdc::os::Exit(0)});
    const auto ticks = kernel.run(1'000'000);
    benchmark::DoNotOptimize(ticks);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(ticks));
  }
}
BENCHMARK(BM_KernelTickThroughput)->Arg(2)->Arg(8)->Arg(32);

void BM_ForkWaitCycle(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    pdc::os::Program parent;
    for (int i = 0; i < 50; ++i) {
      parent.push_back(pdc::os::Fork({pdc::os::Exit(0)}));
      parent.push_back(pdc::os::Wait());
    }
    parent.push_back(pdc::os::Exit(0));
    kernel.spawn(std::move(parent));
    benchmark::DoNotOptimize(kernel.run(1'000'000));
  }
}
BENCHMARK(BM_ForkWaitCycle);

void BM_ShellPipeline(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    pdc::os::Shell shell(kernel, pdc::os::CommandRegistry::standard());
    shell.execute("yes data 20 | cat | cat");
    benchmark::DoNotOptimize(kernel.console().size());
  }
}
BENCHMARK(BM_ShellPipeline);

void BM_SignalDelivery(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    const auto pid = kernel.spawn(
        {pdc::os::InstallHandler(pdc::os::Signal::kSigUsr1,
                                 pdc::os::Disposition::kHandle),
         pdc::os::Compute(200), pdc::os::Exit(0)});
    kernel.tick();
    for (int i = 0; i < 100; ++i) {
      kernel.kill(pid, pdc::os::Signal::kSigUsr1);
      kernel.tick();
    }
    kernel.run();
    benchmark::DoNotOptimize(
        kernel.handled_count(pid, pdc::os::Signal::kSigUsr1));
  }
}
BENCHMARK(BM_SignalDelivery);

}  // namespace

int main(int argc, char** argv) {
  const auto opt = pdc::benchutil::parse_args(argc, argv);
  print_scheduler_table();
  return pdc::benchutil::finish(opt, argc, argv);
}
