// T1-shell — Table I "Unix Shell" substrate: kernel throughput
// (ticks/sec), fork/exec/wait cycle cost, and a scheduler comparison
// (round-robin quantum sweep vs priority) on a mixed workload —
// the mechanism/policy trade-off CS31 discusses.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <algorithm>
#include <cstdint>
#include <iostream>

#include "pdc/os/kernel.hpp"
#include "pdc/os/shell.hpp"
#include "pdc/perf/table.hpp"

namespace {

/// Average completion time (in ticks) of N equal compute jobs under a
/// scheduler configuration — the policy metric of the scheduling unit.
double average_completion_ticks(pdc::os::KernelConfig cfg, int jobs,
                                long work) {
  pdc::os::Kernel kernel(cfg);
  std::vector<pdc::os::Pid> pids;
  for (int j = 0; j < jobs; ++j)
    pids.push_back(kernel.spawn({pdc::os::Compute(work), pdc::os::Exit(0)},
                                "job" + std::to_string(j), j));
  // Tick until done, recording each pid's completion tick.
  std::vector<std::uint64_t> done(pids.size(), 0);
  std::size_t remaining = pids.size();
  while (remaining > 0) {
    if (!kernel.tick()) break;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (done[i] == 0 &&
          kernel.state(pids[i]) == pdc::os::ProcState::kReaped) {
        done[i] = kernel.now();
        --remaining;
      }
    }
  }
  double total = 0;
  for (auto d : done) total += static_cast<double>(d);
  return total / static_cast<double>(done.size());
}

void print_scheduler_table(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"scheduler", "quantum", "avg completion (ticks)"});
  for (int quantum : {1, 4, 16, 64}) {
    pdc::os::KernelConfig cfg;
    cfg.scheduler = pdc::os::SchedulerKind::kRoundRobin;
    cfg.quantum = quantum;
    t.add_row({"round-robin", std::to_string(quantum),
               pdc::perf::fmt(average_completion_ticks(cfg, 8, 100), 1)});
  }
  pdc::os::KernelConfig pr;
  pr.scheduler = pdc::os::SchedulerKind::kPriority;
  t.add_row({"priority", "-",
             pdc::perf::fmt(average_completion_ticks(pr, 8, 100), 1)});
  std::cout << "== T1-shell: scheduler policy comparison (8 jobs x 100 "
               "ticks) ==\n"
            << t.str()
            << "(big quanta approach FIFO; priority = run-to-completion "
               "in priority order, minimizing average completion for "
               "SJF-like orderings)\n\n";
  opt.add_json_table("scheduler policy", t);
}

/// One MLFQ aging run: three CPU hogs plus an interactive job that first
/// burns enough CPU to be demoted to the bottom level, then alternates
/// blocking reads (fed by a slow writer) with 1-tick bursts. Returns the
/// interactive job's responsiveness: completion tick plus the worst /
/// mean wake-to-CPU latency — the metric the wake boost exists to bound
/// (its sleep time waiting for input is the same either way).
struct AgingStats {
  std::uint64_t completion = 0;
  std::uint64_t max_response = 0;
  double avg_response = 0;
  int blocks = 0;  ///< times the interactive job blocked on Read
};

AgingStats run_aging_workload(bool boost) {
  pdc::os::KernelConfig cfg;
  cfg.scheduler = pdc::os::SchedulerKind::kMlfq;
  cfg.quantum = 4;
  cfg.mlfq_boost = boost;
  pdc::os::Kernel kernel(cfg);
  for (int h = 0; h < 3; ++h)
    kernel.spawn({pdc::os::Compute(400), pdc::os::Exit(0)},
                 "hog" + std::to_string(h));
  constexpr int kLines = 16;
  pdc::os::Program writer, inter;
  inter.push_back(pdc::os::Compute(20));  // earn a demotion first
  for (int i = 0; i < kLines; ++i) {
    // The writer is slower per line than the reader, so the reader
    // drains the pipe and genuinely blocks between lines — the wake
    // path the boost acts on.
    writer.push_back(pdc::os::Compute(6));
    writer.push_back(pdc::os::Print("x"));
    inter.push_back(pdc::os::Read());
    inter.push_back(pdc::os::Compute(1));
  }
  writer.push_back(pdc::os::Exit(0));
  inter.push_back(pdc::os::Exit(0));
  // Spawn the interactive job BEFORE the writer: the round-robin cursor
  // rotates by pid, so a woken (unboosted) reader sits behind every hog
  // in the bottom-level rotation instead of riding the writer's slot.
  const auto ipid = kernel.spawn(std::move(inter), "interactive");
  const auto wpid = kernel.spawn(std::move(writer), "writer");
  const auto pipe = kernel.create_pipe();
  kernel.connect_stdout(wpid, pipe);
  kernel.connect_stdin(ipid, pipe);

  AgingStats s;
  bool was_blocked = false;
  bool awaiting_cpu = false;
  std::uint64_t wake_tick = 0;
  std::size_t responses = 0, response_sum = 0;
  while (s.completion == 0 && kernel.tick()) {
    const auto st = kernel.state(ipid);
    if (st == pdc::os::ProcState::kBlocked && !was_blocked) ++s.blocks;
    if (was_blocked && st != pdc::os::ProcState::kBlocked) {
      wake_tick = kernel.now();
      awaiting_cpu = true;
    }
    if (awaiting_cpu && st == pdc::os::ProcState::kRunning) {
      const std::uint64_t r = kernel.now() - wake_tick;
      s.max_response = std::max(s.max_response, r);
      response_sum += r;
      ++responses;
      awaiting_cpu = false;
    }
    was_blocked = st == pdc::os::ProcState::kBlocked;
    if (st == pdc::os::ProcState::kReaped) s.completion = kernel.now();
  }
  s.avg_response = responses == 0 ? 0.0
                                  : static_cast<double>(response_sum) /
                                        static_cast<double>(responses);
  return s;
}

void print_aging_ablation(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"wake boost", "interactive done (tick)", "blocks",
                      "max wake-to-CPU", "avg wake-to-CPU"});
  for (bool boost : {true, false}) {
    const auto s = run_aging_workload(boost);
    t.add_row({boost ? "on" : "off", std::to_string(s.completion),
               std::to_string(s.blocks), std::to_string(s.max_response),
               pdc::perf::fmt(s.avg_response, 1)});
  }
  std::cout << "== T1-shell: MLFQ aging ablation (3 hogs + demoted "
               "interactive job) ==\n"
            << t.str()
            << "(without the wake boost a once-demoted interactive job "
               "queues behind every hog's bottom-level quantum — the "
               "starvation aging exists to prevent)\n\n";
  opt.add_json_table("mlfq aging ablation", t);
}

void BM_KernelTickThroughput(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    for (int i = 0; i < procs; ++i)
      kernel.spawn({pdc::os::Compute(100), pdc::os::Exit(0)});
    const auto ticks = kernel.run(1'000'000);
    benchmark::DoNotOptimize(ticks);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(ticks));
  }
}
BENCHMARK(BM_KernelTickThroughput)->Arg(2)->Arg(8)->Arg(32);

void BM_ForkWaitCycle(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    pdc::os::Program parent;
    for (int i = 0; i < 50; ++i) {
      parent.push_back(pdc::os::Fork({pdc::os::Exit(0)}));
      parent.push_back(pdc::os::Wait());
    }
    parent.push_back(pdc::os::Exit(0));
    kernel.spawn(std::move(parent));
    benchmark::DoNotOptimize(kernel.run(1'000'000));
  }
}
BENCHMARK(BM_ForkWaitCycle);

void BM_ShellPipeline(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    pdc::os::Shell shell(kernel, pdc::os::CommandRegistry::standard());
    shell.execute("yes data 20 | cat | cat");
    benchmark::DoNotOptimize(kernel.console().size());
  }
}
BENCHMARK(BM_ShellPipeline);

void BM_SignalDelivery(benchmark::State& state) {
  for (auto _ : state) {
    pdc::os::Kernel kernel;
    const auto pid = kernel.spawn(
        {pdc::os::InstallHandler(pdc::os::Signal::kSigUsr1,
                                 pdc::os::Disposition::kHandle),
         pdc::os::Compute(200), pdc::os::Exit(0)});
    kernel.tick();
    for (int i = 0; i < 100; ++i) {
      kernel.kill(pid, pdc::os::Signal::kSigUsr1);
      kernel.tick();
    }
    kernel.run();
    benchmark::DoNotOptimize(
        kernel.handled_count(pid, pdc::os::Signal::kSigUsr1));
  }
}
BENCHMARK(BM_SignalDelivery);

}  // namespace

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  print_scheduler_table(opt);
  print_aging_ablation(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
