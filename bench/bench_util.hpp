#pragma once
// Shared entry/exit plumbing for every bench binary: one flag parser and
// one exit path, so `--smoke` (printed studies at reduced size, no
// google-benchmark loops — the CI Release job's quick exercise) and
// `--trace=<path>` / `PDC_TRACE=<path>` (Chrome trace_event JSON via
// pdc::obs, plus the top-span ASCII summary) behave identically across
// all fourteen binaries.
//
// Usage:
//   int main(int argc, char** argv) {
//     auto opt = pdc::benchutil::parse_args(argc, argv);
//     print_my_study(opt.smoke);
//     return pdc::benchutil::finish(opt, argc, argv);
//   }

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "pdc/obs/obs.hpp"

namespace pdc::benchutil {

struct Options {
  bool smoke = false;      ///< reduced printed studies, skip gbench loops
  std::string trace_path;  ///< non-empty: write Chrome trace JSON here
};

/// Strip `--smoke` and `--trace=<path>` out of argv (google-benchmark
/// rejects flags it does not know). `PDC_TRACE=<path>` in the environment
/// is the no-argv spelling of `--trace`. Requesting a trace enables
/// tracing for the whole process, from here on.
inline Options parse_args(int& argc, char** argv) {
  Options opt;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace_path = argv[i] + 8;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (opt.trace_path.empty()) {
    if (const char* env = std::getenv("PDC_TRACE"); env != nullptr && *env)
      opt.trace_path = env;
  }
  if (!opt.trace_path.empty()) {
    obs::set_thread_label("main");
    obs::set_tracing_enabled(true);
  }
  return opt;
}

/// Run the google-benchmark loops (skipped under --smoke), then export the
/// trace and print the top-span summary when one was requested.
inline int finish(const Options& opt, int& argc, char** argv) {
  if (!opt.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!opt.trace_path.empty()) {
    obs::set_tracing_enabled(false);
    obs::write_chrome_trace(opt.trace_path);
    std::cout << "\n== trace: " << obs::trace_span_count() << " spans -> "
              << opt.trace_path << " ==\n"
              << obs::trace_summary();
  }
  return 0;
}

}  // namespace pdc::benchutil
