#pragma once
// Shared entry/exit plumbing for every bench binary: one flag parser and
// one exit path, so `--smoke` (printed studies at reduced size, no
// google-benchmark loops — the CI Release job's quick exercise) and
// `--trace=<path>` / `PDC_TRACE=<path>` (Chrome trace_event JSON via
// pdc::obs, plus the top-span ASCII summary) behave identically across
// all fourteen binaries.
//
// Usage:
//   int main(int argc, char** argv) {
//     auto opt = pdc::benchutil::parse_args(argc, argv);
//     print_my_study(opt.smoke);
//     return pdc::benchutil::finish(opt, argc, argv);
//   }

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pdc/obs/obs.hpp"
#include "pdc/perf/table.hpp"

namespace pdc::benchutil {

struct Options {
  bool smoke = false;      ///< reduced printed studies, skip gbench loops
  std::string trace_path;  ///< non-empty: write Chrome trace JSON here
  std::string json_path;   ///< non-empty: write collected tables here

  /// Tables registered via add_json_table, serialized by finish().
  std::vector<std::string> json_tables;

  /// Record a study table for machine-readable emission. A no-op unless
  /// `--json=<path>` was given, so studies can call it unconditionally.
  void add_json_table(const std::string& title, const perf::Table& t) {
    if (!json_path.empty()) json_tables.push_back(t.json(title));
  }
};

/// Strip `--smoke`, `--trace=<path>`, and `--json=<path>` out of argv
/// (google-benchmark rejects flags it does not know). `PDC_TRACE=<path>`
/// in the environment is the no-argv spelling of `--trace`. Requesting a
/// trace enables tracing for the whole process, from here on.
inline Options parse_args(int& argc, char** argv) {
  Options opt;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opt.json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (opt.trace_path.empty()) {
    if (const char* env = std::getenv("PDC_TRACE"); env != nullptr && *env)
      opt.trace_path = env;
  }
  if (!opt.trace_path.empty()) {
    obs::set_thread_label("main");
    obs::set_tracing_enabled(true);
  }
  return opt;
}

/// Run the google-benchmark loops (skipped under --smoke), then export
/// the collected JSON tables and/or the trace when requested.
inline int finish(const Options& opt, int& argc, char** argv) {
  if (!opt.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << '\n';
      return 1;
    }
    std::string bench = argc > 0 ? argv[0] : "bench";
    if (const auto pos = bench.find_last_of('/'); pos != std::string::npos)
      bench = bench.substr(pos + 1);
    out << "{\"bench\": \"" << bench << "\", \"tables\": [";
    for (std::size_t i = 0; i < opt.json_tables.size(); ++i)
      out << (i == 0 ? "\n" : ",\n") << opt.json_tables[i];
    out << "\n]}\n";
    std::cout << "\n== json: " << opt.json_tables.size() << " tables -> "
              << opt.json_path << " ==\n";
  }
  if (!opt.trace_path.empty()) {
    obs::set_tracing_enabled(false);
    obs::write_chrome_trace(opt.trace_path);
    std::cout << "\n== trace: " << obs::trace_span_count() << " spans -> "
              << opt.trace_path << " ==\n"
              << obs::trace_summary();
  }
  return 0;
}

}  // namespace pdc::benchutil
