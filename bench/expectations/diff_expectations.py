#!/usr/bin/env python3
"""Diff a bench's --json=FILE dump against a checked-in expectation file.

Usage: diff_expectations.py GOT.json WANT.json

WANT is either a single table object ({"title": ..., "rows": [...]}, the
original BENCH_stencil.json format) or a full dump ({"bench": ...,
"tables": [...]}). Every table named in WANT must exist in GOT with
exactly the expected rows; tables present only in GOT (e.g. ones that
carry timings) are ignored. Only deterministic tables — exact traffic
words, model counts — belong in an expectation file.
"""
import json
import sys


def tables(doc):
    if "tables" in doc:
        return [json.loads(t) if isinstance(t, str) else t
                for t in doc["tables"]]
    return [doc]  # single-table expectation


def main():
    got = json.load(open(sys.argv[1]))
    want = json.load(open(sys.argv[2]))
    got_by_title = {t["title"]: t for t in tables(got)}
    fail = False
    for w in tables(want):
        g = got_by_title.get(w["title"])
        if g is None:
            print("MISSING table: %r" % w["title"])
            fail = True
        elif g["rows"] != w["rows"]:
            print("DRIFT in %r:\ngot  %s\nwant %s"
                  % (w["title"], json.dumps(g["rows"], indent=2),
                     json.dumps(w["rows"], indent=2)))
            fail = True
        else:
            print("match: %r (%d rows)" % (w["title"], len(w["rows"])))
    sys.exit(1 if fail else 0)


if __name__ == "__main__":
    main()
