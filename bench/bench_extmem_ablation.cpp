// CS41-io — I/O-model ablations: external-sort block I/Os as a function of
// memory size M and block size B, measured against the textbook formula;
// out-of-core matmul naive vs blocked; buffer-cache hit rate vs frames.
//
// Expected shape: I/Os fall as M grows (fewer runs, bigger fan-in) and as
// B grows (fewer blocks); blocked matmul beats naive by ~t; the hit-rate
// curve saturates once the working set fits.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>
#include <random>

#include "pdc/extmem/buffer_cache.hpp"
#include "pdc/extmem/external_sort.hpp"
#include "pdc/extmem/ooc_matrix.hpp"
#include "pdc/perf/table.hpp"

namespace {

namespace px = pdc::extmem;

std::vector<std::int64_t> random_values(std::size_t n) {
  std::mt19937_64 rng(13);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng());
  return v;
}

void print_memory_sweep(pdc::benchutil::Options& opt) {
  const std::size_t n = 200000;
  const std::size_t block = 512;
  const auto base = random_values(n);
  pdc::perf::Table t({"M (blocks)", "runs", "passes", "measured I/Os",
                      "predicted I/Os"});
  for (std::size_t mem : {3u, 4u, 8u, 16u, 64u, 256u}) {
    auto values = base;
    const auto s = px::external_merge_sort(values, block, mem * block);
    t.add_row({std::to_string(mem), std::to_string(s.initial_runs),
               std::to_string(s.merge_passes),
               std::to_string(s.total_ios()),
               pdc::perf::fmt(
                   px::predicted_sort_ios(n, mem * block, block), 0)});
  }
  std::cout << "== CS41-io: external sort I/Os vs memory size (N=200K, "
               "B=512B) ==\n"
            << t.str() << "\n";
  opt.add_json_table("sort ios vs memory", t);
}

void print_block_sweep(pdc::benchutil::Options& opt) {
  const std::size_t n = 200000;
  const auto base = random_values(n);
  pdc::perf::Table t({"B (bytes)", "measured I/Os", "predicted I/Os"});
  for (std::size_t block : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    auto values = base;
    const std::size_t mem = 16 * block;  // keep M/B constant at 16
    const auto s = px::external_merge_sort(values, block, mem);
    t.add_row({std::to_string(block), std::to_string(s.total_ios()),
               pdc::perf::fmt(px::predicted_sort_ios(n, mem, block), 0)});
  }
  std::cout << "== CS41-io: external sort I/Os vs block size (M/B = 16) "
               "==\n"
            << t.str()
            << "(I/Os scale as N/B when the pass count is fixed)\n\n";
  opt.add_json_table("sort ios vs block size", t);
}

void print_matmul_ios(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"n", "naive I/Os", "blocked I/Os", "ratio"});
  for (std::size_t n : {32u, 48u, 64u}) {
    px::BlockDevice dev(3 * n * n / 8 + 16, 64);
    px::BufferCache cache(dev, 60);
    px::OocMatrix a(cache, n, 0);
    px::OocMatrix b(cache, n, a.footprint_bytes());
    px::OocMatrix c(cache, n, 2 * a.footprint_bytes());
    a.fill_pattern(1);
    b.fill_pattern(2);
    const auto naive = px::matmul_naive(a, b, c);
    const auto blocked = px::matmul_blocked(a, b, c);
    t.add_row({std::to_string(n), std::to_string(naive),
               std::to_string(blocked),
               pdc::perf::fmt(static_cast<double>(naive) /
                                  static_cast<double>(blocked),
                              1) +
                   "x"});
  }
  std::cout << "== CS41-io: out-of-core matmul, 60-frame (3.75KB) cache "
               "==\n"
            << t.str() << "\n";
  opt.add_json_table("ooc matmul ios", t);
}

void print_hit_rate_curve(pdc::benchutil::Options& opt) {
  pdc::perf::Table t({"frames", "hit rate %"});
  for (std::size_t frames : {2u, 4u, 8u, 16u, 32u, 64u}) {
    px::BlockDevice dev(64, 64);
    px::BufferCache cache(dev, frames);
    // Cyclic sweep over 32 blocks, 4 passes.
    for (int pass = 0; pass < 4; ++pass)
      for (std::size_t b = 0; b < 32; ++b)
        (void)cache.read_i64(b * 8);
    t.add_row({std::to_string(frames),
               pdc::perf::fmt(100 * cache.stats().hit_rate(), 1)});
  }
  std::cout << "== CS41-io: LRU buffer-cache hit rate vs frames (32-block "
               "cyclic working set) ==\n"
            << t.str()
            << "(LRU gets zero reuse on a cyclic sweep until the whole "
               "set fits — the sequential-flooding lesson)\n\n";
  opt.add_json_table("buffer cache hit rate", t);
}

void BM_ExternalSort(benchmark::State& state) {
  const auto base = random_values(1 << 16);
  const std::size_t mem_blocks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto values = base;
    benchmark::DoNotOptimize(
        px::external_merge_sort(values, 512, mem_blocks * 512));
  }
}
BENCHMARK(BM_ExternalSort)->Arg(3)->Arg(16)->Arg(256);

void BM_BufferCacheRead(benchmark::State& state) {
  px::BlockDevice dev(1024, 512);
  px::BufferCache cache(dev, 64);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read_i64(rng() % (1024 * 64)));
  }
}
BENCHMARK(BM_BufferCacheRead);

}  // namespace

int main(int argc, char** argv) {
  auto opt = pdc::benchutil::parse_args(argc, argv);
  print_memory_sweep(opt);
  print_block_sweep(opt);
  print_matmul_ios(opt);
  print_hit_rate_curve(opt);
  return pdc::benchutil::finish(opt, argc, argv);
}
