// Property sweep + fuzzer self-tests. The sweep runs every collective
// (broadcast, reduce, scatter, gather, allgather — plus allreduce,
// exscan and barrier for coverage) under both algorithms and rank counts
// {1, 2, 3, 7, 8}, each against stress_iters(200) seeded fault plans:
// every run must reproduce the fault-free baseline bit-for-bit or (when
// the plan kills a rank) throw a clean RankFailedError. A hang trips the
// harness watchdog, which prints the (seed, plan) repro and aborts.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "fuzzer.hpp"
#include "pdc/mp/client.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/fault.hpp"
#include "pdc/stencil/heat.hpp"

namespace mp = pdc::mp;
namespace pt = pdc::testing;

namespace {

/// Digest body exercising all five collectives (and the derived ones)
/// with rank-dependent inputs, so a single misrouted or stale word
/// changes some rank's digest.
pt::SpmdBody collective_body(mp::CollectiveAlgo algo) {
  return [algo](mp::RankContext& ctx) -> std::vector<std::int64_t> {
    const int p = ctx.size();
    const int r = ctx.rank();
    std::vector<std::int64_t> digest;

    digest.push_back(ctx.broadcast_value(p / 2, r == p / 2 ? 4242 : 0, algo));
    digest.push_back(ctx.reduce(0, (r + 1) * (r + 1), mp::ReduceOp::kSum, algo));

    std::vector<std::int64_t> chunks;
    if (r == p - 1)
      for (int i = 0; i < p; ++i) chunks.push_back(100 + i * 3);
    digest.push_back(ctx.scatter(p - 1, chunks));

    const auto gathered = ctx.gather(0, r * 7 + 1);
    digest.insert(digest.end(), gathered.begin(), gathered.end());

    const auto all = ctx.allgather(r * r - r);
    digest.insert(digest.end(), all.begin(), all.end());

    digest.push_back(ctx.allreduce(r + 1, mp::ReduceOp::kMax));
    digest.push_back(ctx.exscan(r + 1, mp::ReduceOp::kSum));
    ctx.barrier();
    return digest;
  };
}

}  // namespace

// ------------------------------------------------- collective sweep ---

class CollectiveFuzzSweep
    : public ::testing::TestWithParam<std::tuple<int, mp::CollectiveAlgo>> {};

TEST_P(CollectiveFuzzSweep, SurvivesSeededFaultPlans) {
  const auto [ranks, algo] = GetParam();
  pt::FuzzOptions opt;
  opt.ranks = ranks;
  opt.iterations = pt::stress_iters(200);
  // Distinct seed stream per cell so cells don't retread the same plans.
  opt.base_seed = 0xC0FFEE0DULL + static_cast<std::uint64_t>(ranks) * 131 +
                  (algo == mp::CollectiveAlgo::kTree ? 7 : 0);
  const auto report = pt::fuzz_spmd(opt, collective_body(algo));
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
  EXPECT_EQ(report.iterations_run, opt.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndAlgos, CollectiveFuzzSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 8),
                       ::testing::Values(mp::CollectiveAlgo::kFlat,
                                         mp::CollectiveAlgo::kTree)),
    [](const auto& info) {
      return "P" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == mp::CollectiveAlgo::kFlat ? "Flat"
                                                                   : "Tree");
    });

// ------------------------------------------------------- dht sweep ---

TEST(DhtFuzz, ReliableRoundsSurviveFaultPlans) {
  pt::FuzzOptions opt;
  opt.ranks = 4;
  opt.iterations = pt::stress_iters(150);
  opt.base_seed = 0xD47ULL;
  const auto report = pt::fuzz_spmd(opt, [](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    mp::BspHashMap dht(ctx, {true});
    for (int i = 0; i < 8; ++i) dht.queue_put(r * 100 + i, r * 1000 + i);
    (void)dht.round();
    const int peer = (r + 1) % p;
    for (int i = 0; i < 8; ++i) dht.queue_get(peer * 100 + i);
    dht.queue_get(-12345);  // never written
    std::vector<std::int64_t> digest;
    for (const auto& g : dht.round()) {
      digest.push_back(g.found ? 1 : 0);
      digest.push_back(g.value);
    }
    return digest;
  });
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
}

// ------------------------------------------- pipelined client sweep ---

// The async client under seeded fault plans, judged op-for-op against
// its own fault-free baseline: every window depth must deliver the same
// answers whether batches ride the raw channel (faults can only kill) or
// the reliable one (drop/dup/reorder apply and must be recovered).
class DhtClientFuzz
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DhtClientFuzz, PipelinedServingSurvivesFaultPlans) {
  const auto [window, reliable] = GetParam();
  pt::FuzzOptions opt;
  opt.ranks = 4;
  opt.iterations = pt::stress_iters(100);
  opt.base_seed = 0xC11E47ULL + static_cast<std::uint64_t>(window) * 977 +
                  (reliable ? 13 : 0);
  opt.allow_kill = true;
  const auto report = pt::fuzz_spmd(
      opt, [window = window, reliable = reliable](mp::RankContext& ctx) {
        const int p = ctx.size();
        const int r = ctx.rank();
        mp::DhtClient client(
            ctx, {.window = window, .max_batch = 4, .reliable = reliable});
        for (std::int64_t i = 0; i < 16; ++i)
          (void)client.put(r * 64 + i, (r * 64 + i) * 3 + 1);
        client.fence();
        const int peer = (r + 1) % p;
        std::vector<mp::DhtFuture> gets;
        for (std::int64_t i = 0; i < 16; ++i)
          gets.push_back(client.get(peer * 64 + i));
        gets.push_back(client.get(-4242));  // never written
        std::vector<std::int64_t> digest;
        for (auto& g : gets) {
          const auto res = g.wait();
          digest.push_back(res.found ? 1 : 0);
          digest.push_back(res.value);
        }
        client.shutdown();
        return digest;
      });
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndChannels, DhtClientFuzz,
    ::testing::Combine(::testing::Values(1, 8),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      return std::string("W") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Reliable" : "Raw");
    });

// ---------------------------------------------- point-to-point sweep ---

TEST(P2pFuzz, RingPipelineSurvivesFaultPlans) {
  // Each rank streams 12 tagged values to its right neighbor and reads
  // 12 from its left — lots of concurrent per-flow traffic, the worst
  // case for the reorder/dup machinery.
  pt::FuzzOptions opt;
  opt.ranks = 5;
  opt.iterations = pt::stress_iters(150);
  opt.base_seed = 0x9121ULL;
  const auto report = pt::fuzz_spmd(opt, [](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    const int right = (r + 1) % p;
    const int left = (r + p - 1) % p;
    for (std::int64_t i = 0; i < 12; ++i)
      ctx.send_value(right, static_cast<int>(i % 3), r * 1000 + i);
    std::vector<std::int64_t> digest;
    for (std::int64_t i = 0; i < 12; ++i)
      digest.push_back(ctx.recv_value(left, static_cast<int>(i % 3)));
    return digest;
  });
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
}

// ------------------------------------------------- stencil heat sweep ---

/// The mp heat engine's strip body, parameterized by the execution plan
/// inside each rank: {1} is the classic funnel-free strip, {T>1} runs a
/// tile team per rank with comm funneled through its rank-0 thread.
pt::SpmdBody heat_strip_body(pdc::stencil::ExecPlan plan) {
  return [plan](mp::RankContext& ctx) {
    namespace st = pdc::stencil;
    const int p = ctx.size();
    const int r = ctx.rank();
    constexpr std::size_t kRows = 24, kCols = 10;
    st::HeatOptions hopt;
    hopt.conductivity = 0.25;
    hopt.tile_rows = 4;
    hopt.tile_cols = 8;
    hopt.converge_eps = 1e-2;
    hopt.max_steps = 500;

    // Deterministic global field: striped warm interior, hot top edge.
    st::HeatField g(kRows, kCols);
    for (std::size_t i = 0; i < kRows; ++i)
      for (std::size_t j = 0; j < kCols; ++j)
        g.at(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)) =
            static_cast<float>((i * 7 + j * 13) % 5) * 0.2f;
    g.set_boundary(1.0f, 0.0f, 0.5f, 0.25f);

    // This rank's strip: whole tiles per rank, padded rows copied
    // verbatim (the ring rows double as the initial neighbor halo).
    const std::size_t n_tiles = (kRows + hopt.tile_rows - 1) / hopt.tile_rows;
    const std::size_t pp = static_cast<std::size_t>(p);
    const std::size_t rr = static_cast<std::size_t>(r);
    const std::size_t r0 = n_tiles * rr / pp * hopt.tile_rows;
    const std::size_t r1 =
        std::min(kRows, n_tiles * (rr + 1) / pp * hopt.tile_rows);
    if (r0 >= r1) return std::vector<std::int64_t>{0};
    st::HeatField strip(r1 - r0, kCols);
    for (std::ptrdiff_t pr = -1; pr <= static_cast<std::ptrdiff_t>(r1 - r0);
         ++pr)
      for (std::ptrdiff_t pc = -1; pc <= static_cast<std::ptrdiff_t>(kCols);
           ++pc)
        strip.at(pr, pc) = g.at(static_cast<std::ptrdiff_t>(r0) + pr, pc);
    const st::MpLinks links{.up = r > 0 ? r - 1 : -1,
                            .down = r + 1 < p ? r + 1 : -1};
    const auto res = st::heat_relax_strip(strip, hopt, plan, ctx, links);

    std::vector<std::int64_t> digest{
        static_cast<std::int64_t>(res.steps),
        static_cast<std::int64_t>(res.tiles_computed),
        static_cast<std::int64_t>(res.tiles_skipped),
        static_cast<std::int64_t>(res.halo_words),
        res.converged ? 1 : 0};
    for (std::size_t i = 0; i < r1 - r0; ++i)
      for (std::size_t j = 0; j < kCols; ++j)
        digest.push_back(std::bit_cast<std::uint32_t>(
            strip.at(static_cast<std::ptrdiff_t>(i),
                     static_cast<std::ptrdiff_t>(j))));
    return digest;
  };
}

TEST(HeatFuzz, StripRelaxationSurvivesFaultPlans) {
  // The mp heat engine's halo protocol (activity flag words + packed
  // float rows + the bit-exact max-delta allreduce) under seeded
  // drop/dup/reorder plans: every surviving run must converge in the
  // same number of steps to the bit-identical strip, or fail with a
  // clean RankFailedError when the plan kills a rank.
  pt::FuzzOptions opt;
  opt.ranks = 3;
  opt.iterations = pt::stress_iters(60);
  opt.base_seed = 0x4EA7ULL;
  const auto report = pt::fuzz_spmd(opt, heat_strip_body({}));
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
}

TEST(HeatFuzz, HybridStripRelaxationSurvivesFaultPlans) {
  // The same protocol with a four-thread team inside every rank (halo
  // exchange overlapped with interior tiles, comm funneled through each
  // team's rank-0 thread): fault plans must never shake a byte loose
  // from the funnel, and the repro line carries the threads= dimension.
  pt::FuzzOptions opt;
  opt.ranks = 3;
  opt.threads_per_rank = 4;
  opt.iterations = pt::stress_iters(40);
  opt.base_seed = 0x4EA8ULL;
  const auto report = pt::fuzz_spmd(
      opt, heat_strip_body({.threads_per_rank = 4}));
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
  EXPECT_NE(report.repro().find("threads=4"), std::string::npos);
}

// ------------------------------------------------- fuzzer self-test ---

TEST(FuzzerSelfTest, CatchesShrinksAndReportsABuggyBody) {
  // A deliberately buggy body: gives the wrong answer whenever the plan
  // drops aggressively. The fuzzer must catch it, shrink the plan down
  // to the one dimension that matters (drop), and emit a usable repro.
  pt::FuzzOptions opt;
  opt.ranks = 2;
  opt.iterations = 60;
  opt.base_seed = 0xBADBEEFULL;
  opt.allow_kill = false;  // keep the failure purely answer-mismatch
  const auto buggy = [](mp::RankContext& ctx) -> std::vector<std::int64_t> {
    if (ctx.fault_plan().drop > 0.2) return {999};  // the "bug"
    return {ctx.allreduce(ctx.rank(), mp::ReduceOp::kSum)};
  };
  const auto report = pt::fuzz_spmd(opt, buggy);
  ASSERT_FALSE(report.ok) << "the fuzzer must find the injected bug";
  EXPECT_GT(report.plan.drop, 0.2) << "shrink must keep the triggering dim";
  EXPECT_EQ(report.plan.dup, 0.0) << "shrink must zero the irrelevant dims";
  EXPECT_FALSE(report.plan.reorder);
  EXPECT_FALSE(report.plan.kills());
  EXPECT_NE(report.repro().find("seed="), std::string::npos);
  EXPECT_NE(report.repro().find("plan=FaultPlan{"), std::string::npos);
}

TEST(FuzzerSelfTest, ShrunkReproReplaysDeterministically) {
  // The repro contract end to end: take the shrunk (seed, plan) from a
  // caught failure and replay it 10 times — identical verdict every time.
  pt::FuzzOptions opt;
  opt.ranks = 2;
  opt.iterations = 60;
  opt.base_seed = 0xBADBEEFULL;
  opt.allow_kill = false;
  const auto buggy = [](mp::RankContext& ctx) -> std::vector<std::int64_t> {
    if (ctx.fault_plan().drop > 0.2) return {999};
    return {ctx.allreduce(ctx.rank(), mp::ReduceOp::kSum)};
  };
  const auto report = pt::fuzz_spmd(opt, buggy);
  ASSERT_FALSE(report.ok);
  const auto first = pt::run_plan(opt.ranks, report.plan, buggy);
  for (int i = 0; i < 9; ++i) {
    const auto again = pt::run_plan(opt.ranks, report.plan, buggy);
    EXPECT_EQ(again.outcome, first.outcome) << "replay " << i;
    EXPECT_EQ(again.per_rank, first.per_rank) << "replay " << i;
    EXPECT_EQ(again.error, first.error) << "replay " << i;
  }
}

TEST(FuzzerSelfTest, CleanBodyPassesWithKillsAllowed) {
  // Sanity: a correct body sweeps clean even when plans may kill ranks —
  // kills surface as RankFailedError, which the judge accepts.
  pt::FuzzOptions opt;
  opt.ranks = 3;
  opt.iterations = 40;
  opt.base_seed = 0x50DAULL;
  opt.allow_kill = true;
  const auto report = pt::fuzz_spmd(opt, [](mp::RankContext& ctx) {
    return std::vector<std::int64_t>{
        ctx.allreduce(ctx.rank() * 3 + 1, mp::ReduceOp::kSum),
        ctx.exscan(1, mp::ReduceOp::kSum)};
  });
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
  EXPECT_EQ(report.iterations_run, 40);
}
