// Tests for pdc::mapreduce — engine semantics, combiner correctness, and
// the library jobs against sequential oracles.

#include <gtest/gtest.h>

#include <map>

#include "pdc/mapreduce/engine.hpp"
#include "pdc/mapreduce/jobs.hpp"

namespace mr = pdc::mapreduce;

// -------------------------------------------------------------- tokenize ---

TEST(Tokenize, SplitsAndLowercases) {
  EXPECT_EQ(mr::tokenize("Hello, World! hello"),
            (std::vector<std::string>{"hello", "world", "hello"}));
  EXPECT_EQ(mr::tokenize(""), (std::vector<std::string>{}));
  EXPECT_EQ(mr::tokenize("...!!!"), (std::vector<std::string>{}));
  EXPECT_EQ(mr::tokenize("a1 b2"), (std::vector<std::string>{"a1", "b2"}));
}

// ---------------------------------------------------------------- engine ---

TEST(Engine, RejectsBadConfig) {
  const std::vector<int> inputs = {1};
  mr::JobConfig cfg;
  cfg.map_workers = 0;
  const std::function<void(const int&, const std::function<void(int, int)>&)>
      mapper = [](const int&, const std::function<void(int, int)>&) {};
  const std::function<int(const int&, const std::vector<int>&)> reducer =
      [](const int&, const std::vector<int>&) { return 0; };
  EXPECT_THROW((mr::run_job<int, int, int>(inputs, mapper, reducer, cfg)),
               std::invalid_argument);
}

TEST(Engine, EmptyInputGivesEmptyOutput) {
  const std::vector<std::string> empty;
  const auto counts = mr::word_count(empty);
  EXPECT_TRUE(counts.empty());
}

TEST(Engine, StatsAreConsistent) {
  const std::vector<std::string> docs = {"a b a", "b c b", "a"};
  mr::JobStats stats;
  mr::JobConfig cfg;
  cfg.use_combiner = false;
  const auto counts = mr::word_count(docs, cfg, &stats);
  EXPECT_EQ(stats.inputs, 3u);
  EXPECT_EQ(stats.map_emitted, 7u);   // 7 words total
  EXPECT_EQ(stats.shuffled, 7u);      // no combiner: all pairs shuffled
  EXPECT_EQ(stats.distinct_keys, 3u);
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 3);
  EXPECT_EQ(counts.at("c"), 1);
}

TEST(Engine, CombinerShrinksShuffleWithoutChangingResult) {
  const auto docs = mr::synthetic_corpus(50, 100);
  mr::JobConfig with, without;
  with.use_combiner = true;
  without.use_combiner = false;
  mr::JobStats s_with, s_without;
  const auto r_with = mr::word_count(docs, with, &s_with);
  const auto r_without = mr::word_count(docs, without, &s_without);
  EXPECT_EQ(r_with, r_without);                  // same answer
  EXPECT_LT(s_with.shuffled, s_without.shuffled);  // less shuffle traffic
  EXPECT_EQ(s_with.map_emitted, s_without.map_emitted);
}

// Worker/partition sweep: result must be identical regardless of
// parallelism knobs.
class MapReduceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MapReduceSweep, WordCountInvariantUnderConfig) {
  const auto [map_w, reduce_w, parts] = GetParam();
  const auto docs = mr::synthetic_corpus(40, 50, /*seed=*/7);

  // Sequential oracle.
  std::map<std::string, std::int64_t> oracle;
  for (const auto& d : docs)
    for (auto& w : mr::tokenize(d)) ++oracle[w];

  mr::JobConfig cfg;
  cfg.map_workers = map_w;
  cfg.reduce_workers = reduce_w;
  cfg.partitions = parts;
  EXPECT_EQ(mr::word_count(docs, cfg), oracle);
}

INSTANTIATE_TEST_SUITE_P(Configs, MapReduceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 4, 16)));

TEST(Engine, ParallelShuffleIsDeterministicAndValueOrderStable) {
  // The shuffle merges worker buckets per partition on a parallel team;
  // the merge must stay deterministic (worker-rank order within a key)
  // run-to-run and regardless of how many workers merge.
  const auto docs = mr::synthetic_corpus(60, 80, /*seed=*/13);
  mr::JobConfig cfg;
  cfg.map_workers = 4;
  cfg.partitions = 32;
  cfg.use_combiner = false;
  mr::JobStats s1, s2;
  cfg.reduce_workers = 1;
  const auto r1 = mr::word_count(docs, cfg, &s1);
  cfg.reduce_workers = 4;
  const auto r2 = mr::word_count(docs, cfg, &s2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(s1.shuffled, s2.shuffled);
  EXPECT_EQ(s1.map_emitted, s1.shuffled);  // no combiner: 1:1 into shuffle
  EXPECT_EQ(s1.distinct_keys, r1.size());
}

// ------------------------------------------------------------------ jobs ---

TEST(WordCount, KnownText) {
  const std::vector<std::string> docs = {
      "the quick brown fox", "the lazy dog", "the fox"};
  const auto counts = mr::word_count(docs);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("fox"), 2);
  EXPECT_EQ(counts.at("dog"), 1);
  EXPECT_EQ(counts.size(), 6u);
}

TEST(InvertedIndex, MapsWordsToSortedDocIds) {
  const std::vector<std::string> docs = {
      "alpha beta", "beta gamma", "alpha beta alpha"};
  const auto index = mr::inverted_index(docs);
  EXPECT_EQ(index.at("alpha"), (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(index.at("beta"), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(index.at("gamma"), (std::vector<std::int64_t>{1}));
}

TEST(InvertedIndex, DedupsRepeatsWithinDoc) {
  const std::vector<std::string> docs = {"x x x x"};
  const auto index = mr::inverted_index(docs);
  EXPECT_EQ(index.at("x"), (std::vector<std::int64_t>{0}));
}

TEST(SyntheticCorpus, DeterministicAndSized) {
  const auto a = mr::synthetic_corpus(10, 20, 5);
  const auto b = mr::synthetic_corpus(10, 20, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(mr::tokenize(a[0]).size(), 20u);
  const auto c = mr::synthetic_corpus(10, 20, 6);
  EXPECT_NE(a, c);
}

TEST(SyntheticCorpus, IsZipfish) {
  // The most common word should be much more frequent than the median.
  const auto docs = mr::synthetic_corpus(100, 100);
  const auto counts = mr::word_count(docs);
  std::vector<std::int64_t> freqs;
  for (const auto& [w, c] : counts) freqs.push_back(c);
  std::sort(freqs.begin(), freqs.end());
  EXPECT_GT(freqs.back(), 3 * freqs[freqs.size() / 2]);
}
