// Tests for pdc::extmem — block device, buffer cache, external merge sort
// (against predicted I/O counts), and out-of-core matrix multiply.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <tuple>

#include "pdc/extmem/block_device.hpp"
#include "pdc/extmem/buffer_cache.hpp"
#include "pdc/extmem/external_sort.hpp"
#include "pdc/extmem/ooc_matrix.hpp"

namespace px = pdc::extmem;

// --------------------------------------------------------------- device ---

TEST(BlockDevice, RoundTripsBlocks) {
  px::BlockDevice dev(8, 64);
  std::vector<std::byte> out(64), in(64);
  for (std::size_t i = 0; i < 64; ++i) in[i] = static_cast<std::byte>(i);
  dev.write_block(3, in);
  dev.read_block(3, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.stats().block_reads, 1u);
  EXPECT_EQ(dev.stats().block_writes, 1u);
}

TEST(BlockDevice, RejectsBadAccess) {
  px::BlockDevice dev(4, 64);
  std::vector<std::byte> buf(64);
  EXPECT_THROW(dev.read_block(4, buf), std::out_of_range);
  std::vector<std::byte> wrong(32);
  EXPECT_THROW(dev.read_block(0, wrong), std::invalid_argument);
  EXPECT_THROW(px::BlockDevice(0, 64), std::invalid_argument);
  EXPECT_THROW(px::BlockDevice(4, 0), std::invalid_argument);
}

TEST(DeviceSpan, TypedAccess) {
  px::BlockDevice dev(8, 64);  // 8 values per block
  px::DeviceSpan span(dev, 2, 20);
  for (std::size_t i = 0; i < 20; ++i)
    span.write_value(i, static_cast<std::int64_t>(i * i));
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(span.read_value(i), static_cast<std::int64_t>(i * i));
  EXPECT_THROW((void)span.read_value(20), std::out_of_range);
  EXPECT_THROW(px::DeviceSpan(dev, 7, 20), std::out_of_range);  // too big
}

TEST(DeviceSpan, RangeIO) {
  px::BlockDevice dev(16, 64);
  px::DeviceSpan span(dev, 0, 100);
  std::vector<std::int64_t> values(50);
  std::iota(values.begin(), values.end(), 1000);
  span.write_range(25, values);  // unaligned start
  std::vector<std::int64_t> out;
  span.read_range(25, 50, out);
  EXPECT_EQ(out, values);
  // Partial read.
  span.read_range(30, 10, out);
  EXPECT_EQ(out.front(), 1005);
  EXPECT_EQ(out.back(), 1014);
}

TEST(BlockReaderWriter, SequentialIsOneIoPerBlock) {
  px::BlockDevice dev(16, 64);  // vpb = 8
  px::DeviceSpan span(dev, 0, 64);
  {
    px::BlockWriter w(span);
    for (std::int64_t i = 0; i < 64; ++i) w.push(i * 2);
    w.finish();
    EXPECT_EQ(w.written(), 64u);
  }
  const auto writes_used = dev.stats().block_writes;
  EXPECT_EQ(writes_used, 8u);  // 64 values / 8 per block, all full blocks

  px::BlockReader r(span);
  std::int64_t expect = 0;
  while (r.has_next()) {
    EXPECT_EQ(r.next(), expect);
    expect += 2;
  }
  EXPECT_EQ(expect, 128);
  EXPECT_EQ(dev.stats().block_reads, 8u);
}

TEST(BlockWriter, OverflowThrows) {
  px::BlockDevice dev(1, 64);
  px::DeviceSpan span(dev, 0, 4);
  px::BlockWriter w(span);
  for (int i = 0; i < 4; ++i) w.push(i);
  EXPECT_THROW(w.push(99), std::out_of_range);
}

// --------------------------------------------------------- buffer cache ---

TEST(BufferCache, CachesRepeatedReads) {
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 4);
  std::vector<std::byte> buf(8);
  for (int rep = 0; rep < 10; ++rep) cache.read(100, buf);
  EXPECT_EQ(dev.stats().block_reads, 1u);  // one fault, nine cache hits
  EXPECT_EQ(cache.stats().hits, 9u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BufferCache, WriteBackDefersDeviceWrites) {
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 4);
  cache.write_i64(0, 42);
  cache.write_i64(1, 43);
  EXPECT_EQ(dev.stats().block_writes, 0u);  // dirty, not yet written
  cache.flush();
  EXPECT_EQ(dev.stats().block_writes, 1u);  // one dirty block
  EXPECT_EQ(cache.read_i64(0), 42);
  EXPECT_EQ(cache.read_i64(1), 43);
}

TEST(BufferCache, EvictionWritesBackDirty) {
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 2);  // tiny: 2 frames
  cache.write_i64(0, 7);          // block 0 dirty
  (void)cache.read_i64(8);        // block 1
  (void)cache.read_i64(16);       // block 2 -> evicts block 0 (LRU)
  EXPECT_EQ(dev.stats().block_writes, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  // Value survived the round trip.
  EXPECT_EQ(cache.read_i64(0), 7);
}

TEST(BufferCache, CrossBlockAccess) {
  px::BlockDevice dev(4, 64);
  px::BufferCache cache(dev, 4);
  // Write 16 bytes straddling a block boundary.
  std::vector<std::byte> in(16);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<std::byte>(0xA0 + i);
  cache.write(56, in);
  std::vector<std::byte> out(16);
  cache.read(56, out);
  EXPECT_EQ(in, out);
}

TEST(BufferCache, RejectsZeroFrames) {
  px::BlockDevice dev(4, 64);
  EXPECT_THROW(px::BufferCache(dev, 0), std::invalid_argument);
}

TEST(BufferCache, FullBlockOverwriteDoesZeroDeviceReads) {
  // Regression: a write miss used to fault the old block contents in from
  // the device even when the write overwrote the whole block, inflating
  // read-I/O counts for write-only workloads.
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 4);
  std::vector<std::byte> block(64);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<std::byte>(i);
  for (std::size_t b = 0; b < 8; ++b) cache.write(b * 64, block);
  EXPECT_EQ(dev.stats().block_reads, 0u);  // acceptance: zero device reads
  // Still real misses (and evictions write back the dirty victims).
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(dev.stats().block_writes, 4u);  // 8 blocks through 4 frames
  // Data written this way reads back intact (evicted and resident alike).
  std::vector<std::byte> out(64);
  cache.read(0, out);
  EXPECT_EQ(out, block);
  cache.read(7 * 64, out);
  EXPECT_EQ(out, block);
}

TEST(BufferCache, PartialWriteMissStillFaultsBlockIn) {
  // A sub-block write must preserve the unwritten bytes, so the miss
  // still costs one device read.
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 4);
  std::vector<std::byte> seed(64, std::byte{0x5A});
  cache.write(0, seed);
  cache.flush();
  dev.reset_stats();

  // New cache: the partial write misses and must read the block first.
  px::BufferCache cold(dev, 4);
  std::vector<std::byte> half(32, std::byte{0x7B});
  cold.write(0, half);
  EXPECT_EQ(dev.stats().block_reads, 1u);
  std::vector<std::byte> out(64);
  cold.read(0, out);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], std::byte{0x7B});
  for (std::size_t i = 32; i < 64; ++i) EXPECT_EQ(out[i], std::byte{0x5A});
}

TEST(BufferCache, SpanningWriteOnlyReadsTheRaggedEdges) {
  // A write covering [32, 224) of 64-byte blocks: blocks 1..2 are fully
  // overwritten (no reads); blocks 0 and 3 are partial (one read each).
  px::BlockDevice dev(16, 64);
  px::BufferCache cache(dev, 8);
  std::vector<std::byte> in(192, std::byte{0xC3});
  cache.write(32, in);
  EXPECT_EQ(dev.stats().block_reads, 2u);
}

// -------------------------------------------------------- external sort ---

class ExtSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ExtSortSweep, SortsCorrectly) {
  const auto [n, mem_blocks] = GetParam();
  const std::size_t block = 64;  // 8 values per block
  std::mt19937_64 rng(n * 31 + mem_blocks);
  std::vector<std::int64_t> values(n);
  for (auto& v : values) v = static_cast<std::int64_t>(rng() % 100000) - 50000;
  std::vector<std::int64_t> expect = values;
  std::sort(expect.begin(), expect.end());

  const auto stats = px::external_merge_sort(values, block, mem_blocks * block);
  EXPECT_EQ(values, expect);
  EXPECT_EQ(stats.values, n);
  if (n > 0) {
    EXPECT_GE(stats.initial_runs, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMemory, ExtSortSweep,
    ::testing::Combine(::testing::Values(0, 1, 7, 64, 100, 1000, 5000),
                       ::testing::Values(3, 4, 8, 16)));

TEST(ExtSort, AlreadySortedAndReversedInputs) {
  for (bool reversed : {false, true}) {
    std::vector<std::int64_t> values(500);
    std::iota(values.begin(), values.end(), -250);
    if (reversed) std::reverse(values.begin(), values.end());
    (void)px::external_merge_sort(values, 64, 3 * 64);
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  }
}

TEST(ExtSort, DuplicateHeavyInput) {
  std::vector<std::int64_t> values(2000);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<std::int64_t>(i % 7);
  std::vector<std::int64_t> expect = values;
  std::sort(expect.begin(), expect.end());
  (void)px::external_merge_sort(values, 64, 4 * 64);
  EXPECT_EQ(values, expect);
}

TEST(ExtSort, InMemoryCaseIsSinglePass) {
  // Exactly one block's worth of values (64B block = 8 int64s).
  std::vector<std::int64_t> values = {8, 5, 3, 1, 4, 2, 7, 6};
  const auto stats = px::external_merge_sort(values, 64, 1024);
  EXPECT_EQ(values, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(stats.initial_runs, 1u);
  EXPECT_EQ(stats.merge_passes, 0);
  // One block read + one block write.
  EXPECT_EQ(stats.total_ios(), 2u);
}

TEST(ExtSort, IoCountTracksModelPrediction) {
  // The measured I/O count should be within 2x of the textbook formula
  // (the formula ignores partial blocks and copy-back).
  const std::size_t block = 64;
  for (const std::size_t n : {1000u, 4000u, 16000u}) {
    for (const std::size_t mem : {3 * block, 8 * block, 32 * block}) {
      std::mt19937_64 rng(n + mem);
      std::vector<std::int64_t> values(n);
      for (auto& v : values) v = static_cast<std::int64_t>(rng());
      const auto stats = px::external_merge_sort(values, block, mem);
      const double predicted = px::predicted_sort_ios(n, mem, block);
      EXPECT_GT(static_cast<double>(stats.total_ios()), 0.5 * predicted);
      EXPECT_LT(static_cast<double>(stats.total_ios()), 2.0 * predicted);
    }
  }
}

TEST(ExtSort, MoreMemoryMeansFewerPasses) {
  const std::size_t block = 64;
  const std::size_t n = 20000;
  std::mt19937_64 rng(5);
  std::vector<std::int64_t> base(n);
  for (auto& v : base) v = static_cast<std::int64_t>(rng());

  auto run = [&](std::size_t mem_blocks) {
    std::vector<std::int64_t> values = base;
    return px::external_merge_sort(values, block, mem_blocks * block);
  };
  const auto small = run(3);
  const auto large = run(64);
  EXPECT_GT(small.merge_passes, large.merge_passes);
  EXPECT_GT(small.total_ios(), large.total_ios());
  EXPECT_GT(small.initial_runs, large.initial_runs);
}

TEST(ExtSort, RejectsTinyMemoryAndOverlap) {
  std::vector<std::int64_t> values(100, 1);
  EXPECT_THROW((void)px::external_merge_sort(values, 64, 2 * 64),
               std::invalid_argument);

  px::BlockDevice dev(32, 64);
  px::DeviceSpan input(dev, 0, 64);
  px::DeviceSpan overlapping(dev, 4, 64);
  px::ExtSortConfig cfg;
  cfg.memory_bytes = 4 * 64;
  EXPECT_THROW(
      (void)px::external_merge_sort(dev, input, overlapping, cfg),
      std::invalid_argument);
}

// ----------------------------------------------------------- ooc matrix ---

TEST(OocMatrix, GetSetRoundTrip) {
  px::BlockDevice dev(64, 512);
  px::BufferCache cache(dev, 4);
  px::OocMatrix m(cache, 8, 0);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      m.set(r, c, static_cast<double>(r * 10 + c));
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_DOUBLE_EQ(m.get(r, c), static_cast<double>(r * 10 + c));
  EXPECT_THROW((void)m.get(8, 0), std::out_of_range);
}

TEST(OocMatrix, MultiplyMatchesInMemoryOracle) {
  const std::size_t n = 12;
  px::BlockDevice dev(256, 256);
  px::BufferCache cache(dev, 8);
  px::OocMatrix a(cache, n, 0);
  px::OocMatrix b(cache, n, a.footprint_bytes());
  px::OocMatrix c(cache, n, 2 * a.footprint_bytes());
  a.fill_pattern(1);
  b.fill_pattern(2);

  // In-memory oracle.
  std::vector<double> av(n * n), bv(n * n), expect(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col) {
      av[r * n + col] = a.get(r, col);
      bv[r * n + col] = b.get(r, col);
    }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        expect[i * n + j] += av[i * n + k] * bv[k * n + j];

  (void)px::matmul_naive(a, b, c);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(c.get(i, j), expect[i * n + j]);

  px::OocMatrix c2(cache, n, 2 * a.footprint_bytes());
  (void)px::matmul_blocked(a, b, c2, 4);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(c2.get(i, j), expect[i * n + j]);
}

TEST(OocMatrix, BlockedDoesFewerIosThanNaive) {
  // 64x64 doubles = 32KB per matrix; cache of 60 x 64B = 3.75KB: a B
  // column walk (64 blocks) overflows the cache, so naive thrashes while
  // properly sized tiles stay resident.
  const std::size_t n = 64;
  px::BlockDevice dev(1536, 64);
  px::BufferCache cache(dev, 60);
  px::OocMatrix a(cache, n, 0);
  px::OocMatrix b(cache, n, a.footprint_bytes());
  px::OocMatrix c(cache, n, 2 * a.footprint_bytes());
  a.fill_pattern(3);
  b.fill_pattern(4);

  const auto naive_ios = px::matmul_naive(a, b, c);
  const auto blocked_ios = px::matmul_blocked(a, b, c);
  EXPECT_LT(blocked_ios, naive_ios / 2)
      << "blocked=" << blocked_ios << " naive=" << naive_ios;
}

TEST(OocMatrix, DimensionMismatchThrows) {
  px::BlockDevice dev(64, 256);
  px::BufferCache cache(dev, 4);
  px::OocMatrix a(cache, 4, 0);
  px::OocMatrix b(cache, 4, a.footprint_bytes());
  px::OocMatrix c(cache, 3, 2 * a.footprint_bytes());
  EXPECT_THROW((void)px::matmul_naive(a, b, c), std::invalid_argument);
  EXPECT_THROW((void)px::matmul_blocked(a, b, c), std::invalid_argument);
}

TEST(OocMatrix, RejectsOversizedMatrix) {
  px::BlockDevice dev(2, 64);  // 128 bytes total
  px::BufferCache cache(dev, 2);
  EXPECT_THROW(px::OocMatrix(cache, 100, 0), std::out_of_range);
}

// -------------------------------------------------------------- transpose ---

TEST(OocTranspose, BothVariantsCorrect) {
  const std::size_t n = 24;
  px::BlockDevice dev(1024, 64);
  px::BufferCache cache(dev, 8);
  px::OocMatrix a(cache, n, 0);
  px::OocMatrix t1(cache, n, a.footprint_bytes());
  px::OocMatrix t2(cache, n, 2 * a.footprint_bytes());
  a.fill_pattern(11);
  (void)px::transpose_naive(a, t1);
  (void)px::transpose_cache_oblivious(a, t2, 4);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_DOUBLE_EQ(t1.get(r, c), a.get(c, r));
      EXPECT_DOUBLE_EQ(t2.get(r, c), a.get(c, r));
    }
}

TEST(OocTranspose, CacheObliviousSavesIosWhenCacheIsSmall) {
  const std::size_t n = 64;
  px::BlockDevice dev(2048, 64);
  px::BufferCache cache(dev, 16);
  px::OocMatrix a(cache, n, 0);
  px::OocMatrix out(cache, n, a.footprint_bytes());
  a.fill_pattern(2);
  const auto naive = px::transpose_naive(a, out);
  const auto oblivious = px::transpose_cache_oblivious(a, out);
  EXPECT_LT(oblivious, naive);
}

TEST(OocTranspose, RejectsBadArgs) {
  px::BlockDevice dev(256, 64);
  px::BufferCache cache(dev, 4);
  px::OocMatrix a(cache, 8, 0);
  px::OocMatrix b(cache, 4, a.footprint_bytes());
  EXPECT_THROW((void)px::transpose_naive(a, b), std::invalid_argument);
  px::OocMatrix c(cache, 8, a.footprint_bytes());
  EXPECT_THROW((void)px::transpose_cache_oblivious(a, c, 0),
               std::invalid_argument);
}
