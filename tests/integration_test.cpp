// Cross-module integration tests: scenarios that exercise several pdc
// libraries together, the way the curriculum's capstone labs do.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "pdc/algo/sample_sort.hpp"
#include "pdc/algo/sort.hpp"
#include "pdc/core/pipeline.hpp"
#include "pdc/core/reduce_scan.hpp"
#include "pdc/extmem/external_sort.hpp"
#include "pdc/extmem/ooc_matrix.hpp"
#include "pdc/isa/assembler.hpp"
#include "pdc/isa/vm.hpp"
#include "pdc/life/engine.hpp"
#include "pdc/mapreduce/jobs.hpp"
#include "pdc/memsim/coherence.hpp"
#include "pdc/model/bsp.hpp"
#include "pdc/model/task_graph.hpp"
#include "pdc/os/shell.hpp"
#include "pdc/perf/laws.hpp"

// --- sorting stack: four sort implementations agree on one input ---

TEST(Integration, FourSortsAgree) {
  std::mt19937_64 rng(41);
  std::vector<std::int64_t> base(30000);
  for (auto& v : base) v = static_cast<std::int64_t>(rng() % 1000000);

  auto expect = base;
  std::sort(expect.begin(), expect.end());

  auto seq = base;
  pdc::algo::merge_sort(seq);

  auto par = base;
  pdc::algo::parallel_merge_sort(par, 4);

  auto ext = base;
  (void)pdc::extmem::external_merge_sort(ext, 256, 8 * 256);

  const auto dist = pdc::algo::mp_sample_sort(base, 4);

  EXPECT_EQ(seq, expect);
  EXPECT_EQ(par, expect);
  EXPECT_EQ(ext, expect);
  EXPECT_EQ(dist, expect);
}

// --- work/span model vs measured scaling: Brent's bound holds for the
// fork-join sort DAG at every processor count ---

TEST(Integration, SortDagBrentBoundBracketsGreedySchedule) {
  const auto dag = pdc::model::fork_join_sort_dag(1 << 12, 64);
  for (int p : {1, 2, 4, 8, 16}) {
    const double tp = dag.greedy_schedule_makespan(p);
    EXPECT_GE(tp + 1e-9, std::max(dag.total_work() / p, dag.span()));
    EXPECT_LE(tp, dag.brent_bound(p) + 1e-9);
  }
  // Speedup from the DAG saturates at the parallelism.
  const double s16 =
      dag.total_work() / dag.greedy_schedule_makespan(16);
  EXPECT_LE(s16, dag.parallelism() + 1e-9);
}

// --- the shell driving a VM-style workload: run a pipeline, then check
// kernel bookkeeping is fully clean ---

TEST(Integration, ShellSessionLeavesCleanKernel) {
  pdc::os::Kernel kernel;
  pdc::os::Shell shell(kernel, pdc::os::CommandRegistry::standard());
  shell.execute("yes a 4 | cat; echo mid; yes b 2 | cat | cat &");
  shell.execute("echo done");
  shell.wait_all();
  // Only init remains; every other process was reaped.
  EXPECT_EQ(kernel.process_count(), 1u);
  // Console carries 4 a's, mid, 2 b's, done = 8 lines.
  EXPECT_EQ(kernel.console().size(), 8u);
}

// --- binary bomb end-to-end through assembler + VM + profiler ---

TEST(Integration, VmProfilerFindsTheHotLoop) {
  const auto program = pdc::isa::assemble(R"(
      mov r0, $1000
    loop:
      sub r0, $1
      cmp r0, $0
      jg loop
      halt
  )");
  pdc::isa::Vm vm(program);
  vm.run();
  // The three loop instructions dominate the profile.
  const auto hot = vm.hottest_instructions(3);
  ASSERT_EQ(hot.size(), 3u);
  for (const auto& [pc, count] : hot) {
    EXPECT_GE(pc, 1u);
    EXPECT_LE(pc, 3u);
    EXPECT_EQ(count, 1000u);
  }
  EXPECT_EQ(vm.opcode_count(pdc::isa::Opcode::kSub), 1000u);
  EXPECT_EQ(vm.opcode_count(pdc::isa::Opcode::kMov), 1u);
}

// --- MapReduce word count cross-checked with a parallel-reduce count ---

TEST(Integration, MapReduceAgreesWithParallelReduce) {
  const auto corpus = pdc::mapreduce::synthetic_corpus(60, 80, 17);
  const auto counts = pdc::mapreduce::word_count(corpus);

  // Total words via MapReduce == total words via parallel reduction over
  // per-document token counts.
  std::vector<std::int64_t> per_doc(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    per_doc[i] =
        static_cast<std::int64_t>(pdc::mapreduce::tokenize(corpus[i]).size());
  const auto total_tokens =
      pdc::core::parallel_reduce<std::int64_t>(per_doc, 0, 4);

  std::int64_t total_counted = 0;
  for (const auto& [w, c] : counts) total_counted += c;
  EXPECT_EQ(total_counted, total_tokens);
}

// --- Life message-passing traffic obeys the BSP h-relation model ---

TEST(Integration, LifeTrafficMatchesBspHRelation) {
  // Each generation is a superstep with h = 2 packed halo messages per
  // rank; 64 columns pack into a single payload word per row on the
  // wire, plus one per-tile activity flag word per message.
  pdc::life::Grid board = pdc::life::random_grid(64, 64, 0.3, 3);
  const int gens = 12, ranks = 4;
  const std::uint64_t words_per_msg = 64 / 64 + 1;
  std::uint64_t messages = 0, words = 0;
  pdc::life::run_message_passing(board, gens, ranks, &messages, &words);

  pdc::model::BspProgram prog;
  for (int g = 0; g < gens; ++g)
    prog.add_superstep(/*work=*/64.0 * 64.0 / ranks,
                       /*h=*/2 * words_per_msg);
  // Total payload words == sum of h-relations across ranks and gens.
  EXPECT_EQ(words,
            static_cast<std::uint64_t>(gens) * ranks * 2 * words_per_msg);
  EXPECT_EQ(prog.supersteps(), static_cast<std::size_t>(gens));
}

// --- coherence invariants hold after randomized workloads ---

TEST(Integration, CoherenceInvariantsUnderRandomWorkload) {
  std::mt19937_64 rng(19);
  for (auto proto :
       {pdc::memsim::Protocol::kMsi, pdc::memsim::Protocol::kMesi}) {
    pdc::memsim::SnoopBus bus(4, proto, 64);
    for (int i = 0; i < 20000; ++i) {
      const int core = static_cast<int>(rng() % 4);
      const pdc::memsim::Address addr = (rng() % 64) * 8;
      if (rng() % 3 == 0) {
        bus.write(core, addr);
      } else {
        bus.read(core, addr);
      }
    }
    EXPECT_TRUE(bus.invariants_hold())
        << pdc::memsim::protocol_name(proto);
  }
}

// --- pipeline pattern: order preservation and composition with scan ---

TEST(Integration, PipelineComposesStagesInOrder) {
  pdc::core::Pipeline<std::int64_t> pipe(
      {[](std::int64_t x) { return x + 1; },
       [](std::int64_t x) { return x * 2; },
       [](std::int64_t x) { return x - 3; }},
      /*buffer_capacity=*/4);
  std::vector<std::int64_t> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  const auto out = pipe.run(inputs);
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], (static_cast<std::int64_t>(i) + 1) * 2 - 3);
}

// --- external sort through a shared device alongside an OOC matrix:
// both subsystems share one block device without interference ---

TEST(Integration, SharedDeviceSortAndMatrix) {
  pdc::extmem::BlockDevice dev(512, 64);
  // Matrix occupies blocks [0, 128): 32x32 doubles = 8KB.
  pdc::extmem::BufferCache cache(dev, 16);
  pdc::extmem::OocMatrix m(cache, 32, 0);
  m.fill_pattern(5);
  const double probe = m.get(7, 9);

  // Sort lives in blocks [128, 384).
  pdc::extmem::DeviceSpan input(dev, 128, 1000);
  pdc::extmem::DeviceSpan scratch(dev, 256, 1000);
  std::mt19937_64 rng(6);
  std::vector<std::int64_t> values(1000);
  for (auto& v : values) v = static_cast<std::int64_t>(rng() % 10000);
  input.write_range(0, values);
  pdc::extmem::ExtSortConfig cfg;
  cfg.memory_bytes = 4 * 64;
  (void)pdc::extmem::external_merge_sort(dev, input, scratch, cfg);

  std::vector<std::int64_t> sorted;
  input.read_range(0, 1000, sorted);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // The matrix region is untouched.
  EXPECT_DOUBLE_EQ(m.get(7, 9), probe);
}

// --- cache-oblivious transpose beats naive on I/Os and agrees on data ---

TEST(Integration, CacheObliviousTranspose) {
  const std::size_t n = 64;
  pdc::extmem::BlockDevice dev(2048, 64);
  pdc::extmem::BufferCache cache(dev, 16);  // tiny: 1KB
  pdc::extmem::OocMatrix a(cache, n, 0);
  pdc::extmem::OocMatrix t1(cache, n, a.footprint_bytes());
  pdc::extmem::OocMatrix t2(cache, n, 2 * a.footprint_bytes());
  a.fill_pattern(7);

  const auto naive_ios = pdc::extmem::transpose_naive(a, t1);
  const auto co_ios = pdc::extmem::transpose_cache_oblivious(a, t2);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_DOUBLE_EQ(t1.get(r, c), a.get(c, r));
      ASSERT_DOUBLE_EQ(t2.get(r, c), t1.get(r, c));
    }
  EXPECT_LT(co_ios, naive_ios / 2)
      << "co=" << co_ios << " naive=" << naive_ios;
}

// --- Amdahl fit pipeline: generate scaling data from the DAG scheduler,
// fit it, and check the fitted fraction is sane ---

TEST(Integration, DagScheduleScalingFitsAmdahl) {
  const auto dag = pdc::model::fork_join_sort_dag(1 << 10, 8);
  std::vector<int> threads = {1, 2, 4, 8, 16};
  std::vector<double> seconds;
  for (int p : threads)
    seconds.push_back(dag.greedy_schedule_makespan(p));
  const auto rows = pdc::perf::scaling_table(threads, seconds);
  const double f = pdc::perf::fit_amdahl_serial_fraction(rows);
  // The DAG's serial fraction is span/work.
  const double expected = dag.span() / dag.total_work();
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 10 * expected + 0.2);
}
