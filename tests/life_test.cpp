// Tests for pdc::life — grid rules, patterns, and the cross-engine
// equivalence property: sequential, threaded and message-passing engines
// must produce bit-identical boards.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/life/packed_grid.hpp"

namespace pl = pdc::life;

// ----------------------------------------------------------------- rules ---

TEST(Grid, ConstructionAndBounds) {
  pl::Grid g(4, 6);
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_EQ(g.cols(), 6u);
  EXPECT_EQ(g.population(), 0u);
  EXPECT_THROW((void)g.get(4, 0), std::out_of_range);
  EXPECT_THROW(g.set(0, 6, true), std::out_of_range);
  EXPECT_THROW(pl::Grid(0, 5), std::invalid_argument);
}

TEST(Grid, NeighborCountBounded) {
  pl::Grid g(3, 3, pl::Boundary::kDead);
  g.set(0, 0, true);
  g.set(0, 1, true);
  g.set(1, 0, true);
  EXPECT_EQ(g.live_neighbors(0, 0), 2);  // corner: no wrap
  EXPECT_EQ(g.live_neighbors(1, 1), 3);
  EXPECT_EQ(g.live_neighbors(2, 2), 0);
}

TEST(Grid, NeighborCountTorus) {
  pl::Grid g(3, 3, pl::Boundary::kTorus);
  g.set(0, 0, true);
  // On a torus, (2,2) is diagonal to (0,0).
  EXPECT_EQ(g.live_neighbors(2, 2), 1);
  EXPECT_EQ(g.live_neighbors(1, 1), 1);
}

TEST(Grid, B3S23Rule) {
  pl::Grid g(5, 5, pl::Boundary::kDead);
  // Live cell with 2 or 3 neighbors survives; dead with 3 is born.
  g.set(2, 1, true);
  g.set(2, 2, true);
  g.set(2, 3, true);
  EXPECT_TRUE(g.next_state(2, 2));   // 2 neighbors: survives
  EXPECT_FALSE(g.next_state(2, 1));  // 1 neighbor: dies
  EXPECT_TRUE(g.next_state(1, 2));   // 3 neighbors: born
  EXPECT_FALSE(g.next_state(0, 0));  // empty space stays dead
}

TEST(Patterns, BlinkerOscillatesWithPeriod2) {
  pl::Grid board(5, 5, pl::Boundary::kDead);
  pl::stamp(board, pl::blinker(), 2, 1);
  const pl::Grid start = board;
  pl::run_sequential(board, 1);
  EXPECT_NE(board, start);  // vertical now
  pl::run_sequential(board, 1);
  EXPECT_EQ(board, start);  // back to horizontal
}

TEST(Patterns, BlockIsStill) {
  pl::Grid board(6, 6, pl::Boundary::kDead);
  pl::stamp(board, pl::block(), 2, 2);
  const pl::Grid start = board;
  pl::run_sequential(board, 10);
  EXPECT_EQ(board, start);
}

TEST(Patterns, GliderTranslatesByOneCellEvery4Generations) {
  pl::Grid board(16, 16, pl::Boundary::kTorus);
  pl::stamp(board, pl::glider(), 2, 2);
  pl::Grid moved(16, 16, pl::Boundary::kTorus);
  pl::stamp(moved, pl::glider(), 3, 3);  // one down-right
  pl::run_sequential(board, 4);
  EXPECT_EQ(board, moved);
  EXPECT_EQ(board.population(), 5u);  // gliders preserve population
}

TEST(Patterns, GliderWrapsAroundTorus) {
  pl::Grid board(8, 8, pl::Boundary::kTorus);
  pl::stamp(board, pl::glider(), 0, 0);
  const std::size_t pop = board.population();
  pl::run_sequential(board, 8 * 4);  // full loop around the torus
  EXPECT_EQ(board.population(), pop);
}

TEST(Grid, ParsePlaintextRoundTrip) {
  const std::string text = ".O.\n..O\nOOO\n";
  const pl::Grid g = pl::parse_plaintext(text);
  EXPECT_EQ(g.to_string(), text);
  EXPECT_EQ(g.population(), 5u);
  EXPECT_THROW((void)pl::parse_plaintext(""), std::invalid_argument);
  EXPECT_THROW((void)pl::parse_plaintext("x"), std::invalid_argument);
}

TEST(Grid, StampBoundsChecked) {
  pl::Grid board(4, 4);
  EXPECT_THROW(pl::stamp(board, pl::glider(), 2, 2), std::out_of_range);
}

TEST(Grid, RandomGridDeterministicDensity) {
  const auto a = pl::random_grid(50, 50, 0.3, 9);
  const auto b = pl::random_grid(50, 50, 0.3, 9);
  EXPECT_EQ(a, b);
  const double density =
      static_cast<double>(a.population()) / (50.0 * 50.0);
  EXPECT_NEAR(density, 0.3, 0.05);
  EXPECT_THROW((void)pl::random_grid(5, 5, 1.5, 1), std::invalid_argument);
}

// ----------------------------------------------- engine equivalence sweep ---

class EngineEquivalence
    : public ::testing::TestWithParam<
          std::tuple<pl::Boundary, int /*workers*/, int /*gens*/>> {};

TEST_P(EngineEquivalence, ThreadedMatchesSequential) {
  const auto [boundary, workers, gens] = GetParam();
  pl::Grid seq = pl::random_grid(33, 29, 0.35, 1234, boundary);
  pl::Grid thr = seq;
  pl::run_sequential(seq, gens);
  pl::run_threaded(thr, gens, workers);
  EXPECT_EQ(seq, thr) << "boundary=" << static_cast<int>(boundary)
                      << " workers=" << workers << " gens=" << gens;
}

TEST_P(EngineEquivalence, MessagePassingMatchesSequential) {
  const auto [boundary, workers, gens] = GetParam();
  pl::Grid seq = pl::random_grid(33, 29, 0.35, 1234, boundary);
  pl::Grid msg = seq;
  pl::run_sequential(seq, gens);
  pl::run_message_passing(msg, gens, workers);
  EXPECT_EQ(seq, msg) << "boundary=" << static_cast<int>(boundary)
                      << " workers=" << workers << " gens=" << gens;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(::testing::Values(pl::Boundary::kDead,
                                         pl::Boundary::kTorus),
                       ::testing::Values(1, 2, 3, 5),
                       ::testing::Values(0, 1, 7)));

TEST(Engines, ValidateArguments) {
  pl::Grid g(4, 4);
  EXPECT_THROW(pl::run_sequential(g, -1), std::invalid_argument);
  EXPECT_THROW(pl::run_threaded(g, 1, 0), std::invalid_argument);
  EXPECT_THROW(pl::run_message_passing(g, 1, 0), std::invalid_argument);
  EXPECT_THROW(pl::run_message_passing(g, 1, 10), std::invalid_argument);
}

TEST(Engines, MessagePassingTrafficScalesWithRanksAndGenerations) {
  pl::Grid a = pl::random_grid(32, 32, 0.3, 5);
  pl::Grid b = a;
  std::uint64_t msgs2 = 0, msgs4 = 0, words2 = 0, words4 = 0;
  pl::run_message_passing(a, 10, 2, &msgs2, &words2);
  pl::run_message_passing(b, 10, 4, &msgs4, &words4);
  // Torus halo exchange: 2 messages per rank per generation, plus the
  // final barrier's 2*(p-1) empty messages.
  EXPECT_EQ(msgs2, 2u * 2u * 10u + 2u);
  EXPECT_EQ(msgs4, 4u * 2u * 10u + 6u);
  // Each halo message carries one activity flag word plus one row packed
  // 64 cells/word: 32 columns fit in a single payload word (barrier msgs
  // are empty).
  EXPECT_EQ(words2, 2u * 2u * 10u * (1u + 1u));
  EXPECT_EQ(words4, 4u * 2u * 10u * (1u + 1u));
}

TEST(Engines, PackedWireFormatCutsPayload64xVsByteFormat) {
  // 1024 columns = 16 payload words per halo row, plus one activity flag
  // word per message. The old wire format moved one int64 per cell, so
  // the packed *cell payload* is exactly 64x denser.
  pl::Grid board = pl::random_grid(16, 1024, 0.3, 11);
  const int gens = 5, ranks = 4;
  std::uint64_t msgs = 0, words = 0;
  pl::run_message_passing(board, gens, ranks, &msgs, &words);
  const std::uint64_t halo_msgs = 2ull * ranks * gens;
  EXPECT_EQ(msgs, halo_msgs + 2u * (ranks - 1));  // + final barrier
  EXPECT_EQ(words, halo_msgs * (1024u / 64u + 1u));
  const std::uint64_t cell_payload_words = halo_msgs * (1024u / 64u);
  const std::uint64_t byte_format_words = halo_msgs * 1024u;
  EXPECT_EQ(byte_format_words / cell_payload_words, 64u);
}

// --------------------------------------------------------- packed boards ---

using Shape = std::pair<std::size_t, std::size_t>;

// Shapes chosen to stress the bit-packing: narrower than one word,
// word-aligned, one past a word, multi-word, single row / single column.
constexpr Shape kAwkwardShapes[] = {{1, 1},  {1, 130}, {17, 1},  {3, 63},
                                    {8, 64}, {5, 65},  {33, 29}, {6, 200}};

TEST(PackedGrid, RoundTripsThroughByteGridOnAwkwardShapes) {
  for (auto [rows, cols] : kAwkwardShapes) {
    const pl::Grid g = pl::random_grid(rows, cols, 0.4, rows * 1000 + cols);
    const pl::PackedGrid p(g);
    EXPECT_EQ(p.words_per_row(), (cols + 63) / 64);
    EXPECT_EQ(p.population(), g.population());
    EXPECT_EQ(p.unpack(), g) << rows << "x" << cols;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(p.get(r, c), g.get(r, c));
  }
}

TEST(PackedGrid, SetGetAndBounds) {
  pl::PackedGrid p(3, 70);
  EXPECT_FALSE(p.get(2, 69));
  p.set(2, 69, true);
  EXPECT_TRUE(p.get(2, 69));
  EXPECT_EQ(p.population(), 1u);
  p.set(2, 69, false);
  EXPECT_EQ(p.population(), 0u);
  EXPECT_THROW((void)p.get(3, 0), std::out_of_range);
  EXPECT_THROW(p.set(0, 70, true), std::out_of_range);
  EXPECT_THROW(pl::PackedGrid(0, 5), std::invalid_argument);
}

TEST(PackedGrid, EqualityIgnoresGhostAndPaddingBits) {
  pl::Grid g = pl::random_grid(6, 67, 0.4, 77);
  pl::PackedGrid a(g);
  pl::PackedGrid b(g);
  // Force a full ghost-bit sync on one copy only: the boards still
  // compare equal because padding bits are masked out of the comparison.
  a.sync_row_ghosts(0, a.rows());
  a.sync_halo_rows();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.population(), b.population());
  EXPECT_EQ(a.unpack(), b.unpack());
}

// The packed engines against the per-cell byte oracle, over both boundary
// rules, all the awkward shapes, and multi-generation runs (a single row
// means the wrap halo rows alias the row itself).
class PackedEquivalence
    : public ::testing::TestWithParam<
          std::tuple<pl::Boundary, Shape, int /*gens*/>> {};

TEST_P(PackedEquivalence, AllEnginesMatchByteReference) {
  const auto [boundary, shape, gens] = GetParam();
  const auto [rows, cols] = shape;
  const pl::Grid start =
      pl::random_grid(rows, cols, 0.42, 7u * rows + cols, boundary);

  pl::Grid ref = start;
  pl::run_reference(ref, gens);

  pl::Grid seq = start;
  pl::run_sequential(seq, gens);
  EXPECT_EQ(ref, seq) << "sequential " << rows << "x" << cols;

  pl::Grid thr = start;
  pl::run_threaded(thr, gens, 3);
  EXPECT_EQ(ref, thr) << "threaded " << rows << "x" << cols;

  pl::Grid msg = start;
  const int ranks = static_cast<int>(std::min<std::size_t>(3, rows));
  pl::run_message_passing(msg, gens, ranks);
  EXPECT_EQ(ref, msg) << "message-passing " << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, PackedEquivalence,
    ::testing::Combine(
        ::testing::Values(pl::Boundary::kDead, pl::Boundary::kTorus),
        ::testing::ValuesIn(kAwkwardShapes),
        ::testing::Values(1, 3, 8)));
