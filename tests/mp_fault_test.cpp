// Tests for the fault-injecting comm layer: deterministic fault
// decisions, the reliable channel's retry/dedup/reorder healing, rank
// kill -> clean RankFailedError, dead-rank detection on blocked receives,
// Request lifetime safety, the reliable DHT, and the deterministic-repro
// guarantee the stress harness depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>

#include "fuzzer.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/fault.hpp"

namespace mp = pdc::mp;
namespace pt = pdc::testing;

// ----------------------------------------------------------- fault plan ---

TEST(FaultPlan, DecisionsAreDeterministic) {
  // Same (seed, flow, attempt) -> same hash; different seeds diverge.
  const auto h1 = mp::detail::fault_hash(42, mp::detail::kSaltDrop, 1, 2, 3);
  const auto h2 = mp::detail::fault_hash(42, mp::detail::kSaltDrop, 1, 2, 3);
  const auto h3 = mp::detail::fault_hash(43, mp::detail::kSaltDrop, 1, 2, 3);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_FALSE(mp::detail::chance(0.0, h1));
  EXPECT_TRUE(mp::detail::chance(1.0, h1));
}

TEST(FaultPlan, DescribeIsStable) {
  mp::FaultPlan p;
  p.drop = 0.1;
  p.dup = 0.05;
  p.reorder = true;
  p.kill_rank = 2;
  p.kill_after_ops = 7;
  p.seed = 99;
  const auto s = p.describe();
  EXPECT_EQ(s, p.describe());
  EXPECT_NE(s.find("drop=0.100"), std::string::npos);
  EXPECT_NE(s.find("kill=2@7"), std::string::npos);
  EXPECT_NE(s.find("seed=99"), std::string::npos);
}

TEST(FaultPlan, FromSeedIsPure) {
  const auto a = pt::plan_from_seed(123, 8, true);
  const auto b = pt::plan_from_seed(123, 8, true);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(pt::plan_from_seed(123, 8, false).kills());
}

// ----------------------------------------------------- reliable channel ---

TEST(Reliable, ExactWithoutFaults) {
  // The reliable channel on a clean network is just a slower plain
  // channel: same answers, acks counted, nothing retried or dropped.
  mp::Communicator comm(4);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.allreduce(ctx.rank() + 1, mp::ReduceOp::kSum) != 10)
      violations.fetch_add(1);
    const auto all = ctx.allgather(ctx.rank() * 5);
    for (int s = 0; s < 4; ++s)
      if (all[static_cast<std::size_t>(s)] != s * 5) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
  const auto t = comm.traffic();
  EXPECT_GT(t.acks, 0u);
  EXPECT_EQ(t.retries, 0u);
  EXPECT_EQ(t.dropped, 0u);
  EXPECT_EQ(t.duplicates, 0u);
}

TEST(Reliable, WildcardRecvIsRejectedWithDiagnostic) {
  // A blocking recv(kAnySource) on the reliable channel cannot name the
  // sender it depends on: if that sender dies after all its messages were
  // dropped, the wait is an undetectable hang. The channel refuses it up
  // front; probe(source, tag) polling is the supported alternative.
  mp::Communicator comm(2);
  std::atomic<int> rejected{0};
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.rank() == 0) {
      ctx.send_value(1, 0, 42);
      ctx.set_reliable(false);
      ctx.send(1, 3, {7});
    } else {
      try {
        (void)ctx.recv(mp::kAnySource, 0);
      } catch (const std::logic_error& e) {
        if (std::string(e.what()).find("kAnySource") != std::string::npos)
          rejected.fetch_add(1);
      }
      // Naming the source works fine on the reliable channel...
      if (ctx.recv_value(0, 0) != 42) rejected.fetch_add(100);
      // ...and plain mode keeps full wildcard support.
      ctx.set_reliable(false);
      if (ctx.recv(mp::kAnySource, mp::kAnyTag).data.at(0) != 7)
        rejected.fetch_add(100);
    }
  });
  EXPECT_EQ(rejected.load(), 1);
}

TEST(Reliable, DropsAreRetriedToDelivery) {
  mp::FaultPlan plan;
  plan.drop = 0.3;
  plan.seed = 7;
  mp::Communicator comm(2, plan);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.rank() == 0) {
      for (std::int64_t i = 0; i < 50; ++i) ctx.send_value(1, 0, i);
    } else {
      for (std::int64_t i = 0; i < 50; ++i)
        if (ctx.recv_value(0, 0) != i) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
  const auto t = comm.traffic();
  EXPECT_GT(t.dropped, 0u) << "a 30% loss plan over 50 sends must drop some";
  EXPECT_GT(t.retries, 0u);
  EXPECT_EQ(t.messages, 50u) << "each payload enqueued exactly once";
}

TEST(Reliable, DuplicatesAreSuppressed) {
  mp::FaultPlan plan;
  plan.dup = 1.0;  // every delivery arrives twice
  plan.seed = 11;
  mp::Communicator comm(2, plan);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.rank() == 0) {
      for (std::int64_t i = 0; i < 30; ++i) ctx.send_value(1, 0, i);
      ctx.send_value(1, 9, -1);  // end marker
    } else {
      for (std::int64_t i = 0; i < 30; ++i)
        if (ctx.recv_value(0, 0) != i) violations.fetch_add(1);
      (void)ctx.recv_value(0, 9);
      // Nothing may remain: every duplicate was suppressed.
      if (ctx.probe(mp::kAnySource, mp::kAnyTag)) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GE(comm.traffic().duplicates, 30u);
}

TEST(Reliable, ReorderIsHealedByStopAndWait) {
  mp::FaultPlan plan;
  plan.reorder = true;
  plan.delay_prob = 1.0;  // hold every delivery back
  plan.max_delay = 3;
  plan.seed = 13;
  mp::Communicator comm(2, plan);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.rank() == 0) {
      for (std::int64_t i = 0; i < 25; ++i) ctx.send_value(1, 0, i);
    } else {
      for (std::int64_t i = 0; i < 25; ++i)
        if (ctx.recv_value(0, 0) != i) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0) << "per-flow FIFO must survive reordering";
  EXPECT_GT(comm.traffic().delayed, 0u);
}

TEST(Reliable, CollectivesMatchOracleUnderLoss) {
  mp::FaultPlan plan;
  plan.drop = 0.2;
  plan.dup = 0.1;
  plan.reorder = true;
  plan.seed = 17;
  for (auto algo : {mp::CollectiveAlgo::kFlat, mp::CollectiveAlgo::kTree}) {
    mp::Communicator comm(5, plan);
    std::atomic<int> violations{0};
    comm.run([&](mp::RankContext& ctx) {
      ctx.set_reliable(true);
      if (ctx.broadcast_value(2, ctx.rank() == 2 ? 777 : 0, algo) != 777)
        violations.fetch_add(1);
      const auto sum =
          ctx.reduce(0, (ctx.rank() + 1) * 10, mp::ReduceOp::kSum, algo);
      if (ctx.rank() == 0 && sum != 150) violations.fetch_add(1);
      if (ctx.allreduce(ctx.rank(), mp::ReduceOp::kMax) != 4)
        violations.fetch_add(1);
    });
    EXPECT_EQ(violations.load(), 0);
  }
}

// ------------------------------------------------------------ rank kill ---

TEST(RankKill, SurfacesAsRankFailedError) {
  mp::FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_after_ops = 2;
  plan.seed = 5;
  mp::Communicator comm(4, plan);
  try {
    comm.run([&](mp::RankContext& ctx) {
      ctx.set_reliable(true);
      for (int i = 0; i < 5; ++i)
        (void)ctx.allreduce(ctx.rank() + i, mp::ReduceOp::kSum);
    });
    FAIL() << "a killed rank must fail the job";
  } catch (const mp::RankFailedError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_NE(std::string(e.what()).find("kill=1@2"), std::string::npos)
        << "the error must carry the reproducing plan";
  }
}

TEST(RankKill, ErrorIsDeterministicAcrossReruns) {
  // The satellite guarantee: a failing (seed, plan) pair re-runs to the
  // identical failure 10/10 times.
  mp::FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_after_ops = 3;
  plan.drop = 0.1;
  plan.seed = 42;
  auto body = [](mp::RankContext& ctx) -> std::vector<std::int64_t> {
    std::vector<std::int64_t> d;
    for (int i = 0; i < 6; ++i)
      d.push_back(ctx.allreduce(ctx.rank() + i, mp::ReduceOp::kSum));
    return d;
  };
  std::optional<std::string> first;
  for (int i = 0; i < 10; ++i) {
    const auto r = pt::run_plan(3, plan, body);
    ASSERT_EQ(r.outcome, pt::Outcome::kRankFailed) << "rerun " << i;
    if (!first) first = r.error;
    EXPECT_EQ(r.error, *first) << "rerun " << i;
  }
}

TEST(RankKill, SingleRankJobAlsoFails) {
  mp::FaultPlan plan;
  plan.kill_rank = 0;
  plan.kill_after_ops = 0;
  mp::Communicator comm(2, plan);
  EXPECT_THROW(comm.run([&](mp::RankContext& ctx) {
                 ctx.set_reliable(true);
                 (void)ctx.allreduce(1, mp::ReduceOp::kSum);
               }),
               mp::RankFailedError);
}

// ------------------------------------------------- dead-rank detection ---

TEST(DeadRank, BlockedRecvFailsFastInsteadOfHanging) {
  // Rank 1 dies with a logic error before sending; rank 0's recv must
  // unblock (RankFailedError internally) and run() must rethrow the
  // root cause, not the secondary failure.
  mp::Communicator comm(2);
  try {
    comm.run([&](mp::RankContext& ctx) {
      if (ctx.rank() == 1) throw std::runtime_error("boom");
      (void)ctx.recv(1, 0);  // would hang forever on the seed comm layer
    });
    FAIL() << "expected the root-cause exception";
  } catch (const mp::RankFailedError&) {
    FAIL() << "root cause (runtime_error) must beat the cascade";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(DeadRank, AnySourceRecvFailsWhenAllPeersExit) {
  mp::Communicator comm(3);
  std::atomic<int> failures{0};
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() != 0) return;  // peers exit immediately, sending nothing
    try {
      (void)ctx.recv(mp::kAnySource, 7);
    } catch (const mp::RankFailedError&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 1);
}

TEST(DeadRank, RecvOutOfRangeSourceRejected) {
  mp::Communicator comm(2);
  EXPECT_THROW(comm.run([&](mp::RankContext& ctx) {
                 if (ctx.rank() == 0) (void)ctx.recv(99, 0);
               }),
               std::out_of_range);
}

// ------------------------------------------------------ request lifetime ---

TEST(RequestLifetime, OutlivingCommunicatorThrowsInsteadOfUAF) {
  std::optional<mp::Request> leaked;
  {
    auto comm = std::make_unique<mp::Communicator>(2);
    comm->run([&](mp::RankContext& ctx) {
      if (ctx.rank() == 0) leaked.emplace(ctx.irecv(1, 5));
    });
    ASSERT_TRUE(leaked.has_value());
    EXPECT_FALSE(leaked->test());  // communicator alive: works normally
  }
  // Communicator destroyed; the leaked request must fail loudly.
  EXPECT_THROW((void)leaked->test(), std::runtime_error);
  EXPECT_THROW((void)leaked->wait(), std::runtime_error);
}

TEST(RequestLifetime, MatchedRequestStillWorksAfterRun) {
  std::optional<mp::Request> leaked;
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) leaked.emplace(ctx.irecv(1, 5));
    if (ctx.rank() == 1) ctx.send_value(0, 5, 31337);
  });
  ASSERT_TRUE(leaked.has_value());
  EXPECT_TRUE(leaked->test());
  EXPECT_EQ(leaked->wait().data.at(0), 31337);
}

// ------------------------------------------------------------------ dht ---

TEST(ReliableDht, RoundTripsUnderLoss) {
  mp::FaultPlan plan;
  plan.drop = 0.2;
  plan.dup = 0.1;
  plan.reorder = true;
  plan.seed = 23;
  mp::Communicator comm(4, plan);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap dht(ctx, {true});
    const int r = ctx.rank();
    for (int i = 0; i < 20; ++i) dht.queue_put(r * 1000 + i, r * 10 + i);
    (void)dht.round();
    const int peer = (r + 1) % 4;
    for (int i = 0; i < 20; ++i) dht.queue_get(peer * 1000 + i);
    const auto results = dht.round();
    for (int i = 0; i < 20; ++i) {
      const auto& g = results[static_cast<std::size_t>(i)];
      if (!g.found || g.value != peer * 10 + i) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(comm.traffic().retries, 0u);
}

TEST(ReliableDht, KillFailsTheRoundCleanly) {
  mp::FaultPlan plan;
  plan.kill_rank = 2;
  plan.kill_after_ops = 1;
  plan.seed = 29;
  mp::Communicator comm(4, plan);
  EXPECT_THROW(comm.run([&](mp::RankContext& ctx) {
                 mp::BspHashMap dht(ctx, {true});
                 dht.queue_put(ctx.rank(), ctx.rank());
                 (void)dht.round();
                 dht.queue_get(ctx.rank());
                 (void)dht.round();
               }),
               mp::RankFailedError);
}

// --------------------------------------------------------------- traffic ---

TEST(Traffic, ReliabilityCountersStayZeroOnPlainChannel) {
  mp::Communicator comm(4);
  comm.run([&](mp::RankContext& ctx) {
    (void)ctx.allreduce(ctx.rank(), mp::ReduceOp::kSum);
  });
  const auto t = comm.traffic();
  EXPECT_EQ(t.acks, 0u);
  EXPECT_EQ(t.retries, 0u);
  EXPECT_EQ(t.dropped, 0u);
  EXPECT_EQ(t.duplicates, 0u);
  EXPECT_EQ(t.delayed, 0u);
}

TEST(Traffic, ResetClearsReliabilityCounters) {
  mp::FaultPlan plan;
  plan.drop = 0.3;
  plan.seed = 31;
  mp::Communicator comm(2, plan);
  comm.run([&](mp::RankContext& ctx) {
    ctx.set_reliable(true);
    if (ctx.rank() == 0) ctx.send_value(1, 0, 1);
    if (ctx.rank() == 1) (void)ctx.recv(0, 0);
  });
  comm.reset_traffic();
  const auto t = comm.traffic();
  EXPECT_EQ(t.messages, 0u);
  EXPECT_EQ(t.acks, 0u);
  EXPECT_EQ(t.dropped, 0u);
}
