// Tests for pdc::sync — locks, semaphore, bounded buffer, barriers, and
// deadlock detection. Concurrency tests use modest thread counts and real
// contention to exercise the primitives' mutual-exclusion invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "pdc/sync/barrier.hpp"
#include "pdc/sync/bounded_buffer.hpp"
#include "pdc/sync/deadlock.hpp"
#include "pdc/sync/rwlock.hpp"
#include "pdc/sync/semaphore.hpp"
#include "pdc/sync/spinlock.hpp"

namespace ps = pdc::sync;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- locks ---

// Mutual exclusion property: N threads increment a plain int M times each
// under the lock; the final count must be exactly N*M.
template <typename Lock>
void check_mutual_exclusion() {
  Lock lock;
  long long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          std::lock_guard guard(lock);
          ++counter;
        }
      });
    }
  }
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(SpinLock, TasMutualExclusion) { check_mutual_exclusion<ps::TasSpinLock>(); }
TEST(SpinLock, TtasMutualExclusion) {
  check_mutual_exclusion<ps::TtasSpinLock>();
}
TEST(SpinLock, TicketMutualExclusion) {
  check_mutual_exclusion<ps::TicketLock>();
}

TEST(SpinLock, TryLockSemantics) {
  ps::TasSpinLock tas;
  EXPECT_TRUE(tas.try_lock());
  EXPECT_FALSE(tas.try_lock());
  tas.unlock();
  EXPECT_TRUE(tas.try_lock());
  tas.unlock();

  ps::TtasSpinLock ttas;
  EXPECT_TRUE(ttas.try_lock());
  EXPECT_FALSE(ttas.try_lock());
  ttas.unlock();

  ps::TicketLock ticket;
  EXPECT_TRUE(ticket.try_lock());
  EXPECT_FALSE(ticket.try_lock());
  ticket.unlock();
  EXPECT_TRUE(ticket.try_lock());
  ticket.unlock();
}

TEST(SpinLock, TicketLockIsFifoUnderSequentialHandoff) {
  // Acquire in a fixed order from many threads, record service order.
  ps::TicketLock lock;
  std::vector<int> service_order;
  std::atomic<int> arrivals{0};
  constexpr int kThreads = 4;
  {
    std::vector<std::jthread> threads;
    lock.lock();  // hold so all threads queue up
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Serialize arrival (ticket draw happens inside lock()).
        while (arrivals.load() != t) std::this_thread::yield();
        arrivals.store(t + 1);
        // Small stagger so ticket order matches arrival order.
        lock.lock();
        service_order.push_back(t);
        lock.unlock();
      });
    }
    while (arrivals.load() != kThreads) std::this_thread::yield();
    std::this_thread::sleep_for(20ms);  // let all threads draw tickets
    lock.unlock();
  }
  // FIFO: service order equals arrival order.
  std::vector<int> expected(kThreads);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(service_order, expected);
}

// --------------------------------------------------------------- rwlock ---

TEST(RwLock, MultipleReadersShare) {
  ps::RwLock rw;
  rw.lock_shared();
  rw.lock_shared();
  const auto st = rw.state();
  EXPECT_EQ(st.active_readers, 2);
  EXPECT_FALSE(st.active_writer);
  rw.unlock_shared();
  rw.unlock_shared();
}

TEST(RwLock, WriterExcludesReaders) {
  ps::RwLock rw;
  rw.lock();
  EXPECT_FALSE(rw.try_lock_shared());
  EXPECT_FALSE(rw.try_lock());
  rw.unlock();
  EXPECT_TRUE(rw.try_lock_shared());
  rw.unlock_shared();
}

TEST(RwLock, WaitingWriterBlocksNewReaders) {
  ps::RwLock rw;
  rw.lock_shared();  // reader in
  std::atomic<bool> writer_done{false};
  std::jthread writer([&] {
    rw.lock();  // queues behind the reader
    writer_done = true;
    rw.unlock();
  });
  // Give the writer time to queue.
  while (rw.state().waiting_writers == 0) std::this_thread::yield();
  // Writer preference: a new reader must not jump the queue.
  EXPECT_FALSE(rw.try_lock_shared());
  rw.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_done);
}

TEST(RwLock, ReaderWriterDataConsistency) {
  ps::RwLock rw;
  // Writers keep an invariant (a == b); readers must never observe a tear.
  long a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> threads;
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          std::lock_guard guard(rw);
          ++a;
          ++b;
        }
      });
    }
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&] {
        while (!stop.load()) {
          rw.lock_shared();
          if (a != b) violations.fetch_add(1);
          rw.unlock_shared();
        }
      });
    }
    // Writers finish, then stop the readers.
    threads[0].join();
    threads[1].join();
    stop = true;
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(a, 10000);
  EXPECT_EQ(b, 10000);
}

// ------------------------------------------------------------ semaphore ---

TEST(Semaphore, RejectsNegativeInitial) {
  EXPECT_THROW((void)ps::Semaphore(-1), std::invalid_argument);
}

TEST(Semaphore, TryAcquireTracksCount) {
  ps::Semaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_EQ(sem.count(), 0);
}

TEST(Semaphore, TimedAcquireTimesOut) {
  ps::Semaphore sem(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(sem.try_acquire_for(30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST(Semaphore, ReleaseWakesBlockedAcquirer) {
  ps::Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::jthread waiter([&] {
    sem.acquire();
    acquired = true;
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(acquired);
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired);
}

TEST(Semaphore, BoundsConcurrencyLikeAPool) {
  // Semaphore of K permits: never more than K threads inside the region.
  ps::Semaphore sem(3);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          sem.acquire();
          const int now = inside.fetch_add(1) + 1;
          int prev = max_inside.load();
          while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
          }
          inside.fetch_sub(1);
          sem.release();
        }
      });
    }
  }
  EXPECT_LE(max_inside.load(), 3);
  EXPECT_GE(max_inside.load(), 1);
}

// ------------------------------------------------------- bounded buffer ---

TEST(BoundedBuffer, RejectsZeroCapacity) {
  EXPECT_THROW((void)ps::BoundedBuffer<int>(0), std::invalid_argument);
}

TEST(BoundedBuffer, FifoOrderSingleThread) {
  ps::BoundedBuffer<int> buf(4);
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  EXPECT_TRUE(buf.push(3));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.pop().value(), 1);
  EXPECT_EQ(buf.pop().value(), 2);
  EXPECT_EQ(buf.pop().value(), 3);
  EXPECT_EQ(buf.try_pop(), std::nullopt);
}

TEST(BoundedBuffer, TryPushRespectsCapacity) {
  ps::BoundedBuffer<int> buf(2);
  EXPECT_TRUE(buf.try_push(1));
  EXPECT_TRUE(buf.try_push(2));
  EXPECT_FALSE(buf.try_push(3));
  (void)buf.pop();
  EXPECT_TRUE(buf.try_push(3));
}

TEST(BoundedBuffer, CloseDrainsThenSignalsEnd) {
  ps::BoundedBuffer<int> buf(4);
  (void)buf.push(1);
  (void)buf.push(2);
  buf.close();
  EXPECT_FALSE(buf.push(3));  // producer sees closed
  EXPECT_EQ(buf.pop().value(), 1);
  EXPECT_EQ(buf.pop().value(), 2);
  EXPECT_EQ(buf.pop(), std::nullopt);  // drained
}

TEST(BoundedBuffer, ProducerConsumerDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 4000;
  ps::BoundedBuffer<int> buf(16);
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i)
          ASSERT_TRUE(buf.push(p * kPerProducer + i));
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = buf.pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      });
    }
    // Join producers (first kProducers threads), then close.
    for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
    buf.close();
  }
  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedBuffer, TimedPopTimesOutOnEmptyThenSucceeds) {
  ps::BoundedBuffer<int> buf(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(buf.try_pop_for(30ms), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  (void)buf.push(7);
  EXPECT_EQ(buf.try_pop_for(30ms).value(), 7);
}

TEST(BoundedBuffer, TimedPushTimesOutOnFullThenSucceeds) {
  ps::BoundedBuffer<int> buf(1);
  (void)buf.push(1);  // full
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(buf.try_push_for(2, 30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  (void)buf.pop();
  EXPECT_TRUE(buf.try_push_for(2, 30ms));
  EXPECT_EQ(buf.pop().value(), 2);
}

TEST(BoundedBuffer, TimedPopWokenByConcurrentPush) {
  ps::BoundedBuffer<int> buf(2);
  std::jthread producer([&] {
    std::this_thread::sleep_for(10ms);
    (void)buf.push(42);
  });
  // Generous budget: the wait must end early, on the push.
  EXPECT_EQ(buf.try_pop_for(5000ms).value(), 42);
}

TEST(BoundedBuffer, TimedOpsSeeClose) {
  ps::BoundedBuffer<int> buf(1);
  (void)buf.push(1);
  buf.close();
  EXPECT_FALSE(buf.try_push_for(2, 5000ms));       // closed: no wait
  EXPECT_EQ(buf.try_pop_for(5000ms).value(), 1);   // drains the queue
  EXPECT_EQ(buf.try_pop_for(5000ms), std::nullopt);  // closed and drained
}

TEST(Semaphore, TimedAcquireSucceedsWhenPermitArrives) {
  ps::Semaphore sem(0);
  std::jthread releaser([&] {
    std::this_thread::sleep_for(10ms);
    sem.release();
  });
  EXPECT_TRUE(sem.try_acquire_for(5000ms));
  EXPECT_FALSE(sem.try_acquire());  // the permit was consumed
}

TEST(BoundedBuffer, CloseUnblocksWaitingProducer) {
  ps::BoundedBuffer<int> buf(1);
  (void)buf.push(1);  // full
  std::atomic<bool> returned{false};
  std::jthread producer([&] {
    EXPECT_FALSE(buf.push(2));  // blocks, then fails on close
    returned = true;
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(returned);
  buf.close();
  producer.join();
  EXPECT_TRUE(returned);
}

// -------------------------------------------------------------- barrier ---

TEST(CyclicBarrier, RejectsZeroParties) {
  EXPECT_THROW((void)ps::CyclicBarrier(0), std::invalid_argument);
}

TEST(CyclicBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  ps::CyclicBarrier barrier(kThreads);
  std::vector<std::atomic<int>> phase_done(kPhases);
  for (auto& p : phase_done) p = 0;
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int ph = 0; ph < kPhases; ++ph) {
          phase_done[static_cast<std::size_t>(ph)].fetch_add(1);
          barrier.arrive_and_wait();
          // After the barrier, every thread must have finished the phase.
          if (phase_done[static_cast<std::size_t>(ph)].load() != kThreads)
            violations.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(violations.load(), 0);
}

TEST(CyclicBarrier, ReturnsMatchingPhaseNumbers) {
  ps::CyclicBarrier barrier(2);
  std::size_t phase_a = 99, phase_b = 99;
  {
    std::jthread a([&] { phase_a = barrier.arrive_and_wait(); });
    std::jthread b([&] { phase_b = barrier.arrive_and_wait(); });
  }
  EXPECT_EQ(phase_a, 0u);
  EXPECT_EQ(phase_b, 0u);
}

TEST(CyclicBarrier, BreakReleasesWaitersAndPoisonsFutureArrivals) {
  ps::CyclicBarrier barrier(3);
  std::atomic<int> broken_count{0};
  {
    std::vector<std::jthread> waiters;
    for (int t = 0; t < 2; ++t) {
      waiters.emplace_back([&] {
        try {
          barrier.arrive_and_wait();  // party 3 never arrives
        } catch (const ps::BrokenBarrierError&) {
          broken_count.fetch_add(1);
        }
      });
    }
    // Give the waiters a chance to block, then break instead of arriving.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    barrier.break_barrier();
  }
  EXPECT_EQ(broken_count.load(), 2);
  EXPECT_TRUE(barrier.broken());
  // Late arrivals fail fast rather than waiting on a dead phase.
  EXPECT_THROW(barrier.arrive_and_wait(), ps::BrokenBarrierError);
}

TEST(CyclicBarrier, BreakBeforeAnyArrivalFailsFast) {
  ps::CyclicBarrier barrier(2);
  EXPECT_FALSE(barrier.broken());
  barrier.break_barrier();
  EXPECT_THROW(barrier.arrive_and_wait(), ps::BrokenBarrierError);
}

TEST(CyclicBarrier, CompletedPhasesUnaffectedByLaterBreak) {
  ps::CyclicBarrier barrier(2);
  std::size_t phase_a = 99, phase_b = 99;
  {
    std::jthread a([&] { phase_a = barrier.arrive_and_wait(); });
    std::jthread b([&] { phase_b = barrier.arrive_and_wait(); });
  }
  barrier.break_barrier();
  EXPECT_EQ(phase_a, 0u);  // the completed phase already returned normally
  EXPECT_EQ(phase_b, 0u);
}

TEST(SenseBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 200;
  ps::SenseBarrier barrier(kThreads);
  std::atomic<long> counter{0};
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int ph = 0; ph < kPhases; ++ph) {
          counter.fetch_add(1);
          barrier.arrive_and_wait();
          if (counter.load() < static_cast<long>(kThreads) * (ph + 1))
            violations.fetch_add(1);
          barrier.arrive_and_wait();
        }
      });
    }
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kPhases);
}

// ------------------------------------------------------------- deadlock ---

TEST(WaitForGraph, NoCycleInDag) {
  ps::WaitForGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_TRUE(g.find_cycle().empty());
}

TEST(WaitForGraph, DetectsSimpleCycle) {
  ps::WaitForGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  EXPECT_TRUE(g.has_cycle());
  const auto cycle = g.find_cycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(WaitForGraph, DetectsLongCycleAndRemoveEdgeClearsIt) {
  ps::WaitForGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  EXPECT_TRUE(g.has_cycle());
  g.remove_edge(3, 4);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(WaitForGraph, SelfLoopIsCycle) {
  ps::WaitForGraph g;
  g.add_edge(7, 7);
  EXPECT_TRUE(g.has_cycle());
}

TEST(ResourceAllocation, ClassicTwoLockDeadlock) {
  // T1 holds A wants B; T2 holds B wants A.
  ps::ResourceAllocationState s;
  s.acquire(1, 100);  // T1 holds A
  s.acquire(2, 200);  // T2 holds B
  s.request(1, 200);
  s.request(2, 100);
  const auto dead = s.deadlocked_threads();
  EXPECT_EQ(dead, (std::vector<int>{1, 2}));
}

TEST(ResourceAllocation, NoDeadlockWithoutCycle) {
  ps::ResourceAllocationState s;
  s.acquire(1, 100);
  s.request(2, 100);  // T2 waits on T1, but T1 wants nothing
  EXPECT_TRUE(s.deadlocked_threads().empty());
  // T1 releases; T2 acquires; all clear.
  s.release(1, 100);
  s.acquire(2, 100);
  EXPECT_TRUE(s.deadlocked_threads().empty());
}

TEST(ResourceAllocation, ThreeWayCycle) {
  ps::ResourceAllocationState s;
  s.acquire(1, 10);
  s.acquire(2, 20);
  s.acquire(3, 30);
  s.request(1, 20);
  s.request(2, 30);
  s.request(3, 10);
  EXPECT_EQ(s.deadlocked_threads(), (std::vector<int>{1, 2, 3}));
}

TEST(LockOrder, ConsistentOrderIsClean) {
  ps::LockOrderRegistry reg;
  for (int t = 0; t < 3; ++t) {
    reg.on_acquire(t, "A");
    reg.on_acquire(t, "B");
    reg.on_release(t, "B");
    reg.on_release(t, "A");
  }
  EXPECT_TRUE(reg.clean());
}

TEST(LockOrder, InvertedOrderIsViolation) {
  ps::LockOrderRegistry reg;
  reg.on_acquire(1, "A");
  reg.on_acquire(1, "B");  // records A->B
  reg.on_release(1, "B");
  reg.on_release(1, "A");
  reg.on_acquire(2, "B");
  reg.on_acquire(2, "A");  // records B->A: cycle!
  EXPECT_FALSE(reg.clean());
  ASSERT_EQ(reg.violations().size(), 1u);
  EXPECT_NE(reg.violations()[0].find("->"), std::string::npos);
}

TEST(LockOrder, TransitiveCycleDetected) {
  ps::LockOrderRegistry reg;
  reg.on_acquire(1, "A");
  reg.on_acquire(1, "B");  // A->B
  reg.on_release(1, "B");
  reg.on_release(1, "A");
  reg.on_acquire(2, "B");
  reg.on_acquire(2, "C");  // B->C
  reg.on_release(2, "C");
  reg.on_release(2, "B");
  reg.on_acquire(3, "C");
  reg.on_acquire(3, "A");  // C->A closes A->B->C->A
  EXPECT_FALSE(reg.clean());
}

TEST(DisseminationBarrier, RejectsZeroPartiesAndBadIndex) {
  EXPECT_THROW(ps::DisseminationBarrier(0), std::invalid_argument);
  ps::DisseminationBarrier b(2);
  EXPECT_THROW(b.arrive_and_wait(2), std::out_of_range);
  EXPECT_EQ(b.rounds(), 1u);
  EXPECT_EQ(ps::DisseminationBarrier(8).rounds(), 3u);
  EXPECT_EQ(ps::DisseminationBarrier(1).rounds(), 0u);
}

TEST(DisseminationBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 300;
  ps::DisseminationBarrier barrier(kThreads);
  std::atomic<long> counter{0};
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int ph = 0; ph < kPhases; ++ph) {
          counter.fetch_add(1);
          barrier.arrive_and_wait(static_cast<std::size_t>(t));
          if (counter.load() < static_cast<long>(kThreads) * (ph + 1))
            violations.fetch_add(1);
          barrier.arrive_and_wait(static_cast<std::size_t>(t));
        }
      });
    }
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kPhases);
}

TEST(DisseminationBarrier, SinglePartyIsNoop) {
  ps::DisseminationBarrier b(1);
  b.arrive_and_wait(0);
  b.arrive_and_wait(0);
  SUCCEED();
}
