// gtest main for multi-process suites: a re-exec'd SPMD child must take
// over the process before gtest ever parses argv (gtest_main would treat
// --pdc-* flags as its own and run the full suite in every child).
#include <gtest/gtest.h>

#include "pdc/mp/launch.hpp"

int main(int argc, char** argv) {
  pdc::mp::launch::maybe_run_child(argc, argv);  // no return in a child
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
