#include "fuzzer.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>

namespace pdc::testing {

namespace mp = pdc::mp;

int stress_iters(int fallback) {
  if (const char* s = std::getenv("PDC_STRESS_ITERS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

mp::FaultPlan plan_from_seed(std::uint64_t seed, int ranks, bool allow_kill) {
  auto h = [seed](std::uint64_t salt) {
    return mp::detail::fault_hash(seed, salt, 0x66757a7a /* "fuzz" */, 0, 0);
  };
  static constexpr double kDropChoices[] = {0.0, 0.01, 0.05, 0.1, 0.3};
  static constexpr double kDupChoices[] = {0.0, 0.01, 0.05, 0.1};
  mp::FaultPlan p;
  p.seed = seed;
  p.drop = kDropChoices[h(1) % 5];
  p.dup = kDupChoices[h(2) % 4];
  p.reorder = (h(3) & 1) != 0;
  p.max_delay = 1 + static_cast<int>(h(4) % 4);
  p.jitter = (h(5) & 1) != 0;
  if (allow_kill && h(6) % 4 == 0) {
    p.kill_rank = static_cast<int>(h(7) % static_cast<std::uint64_t>(ranks));
    p.kill_after_ops = static_cast<int>(h(8) % 24);
  }
  return p;
}

RunResult run_plan(int ranks, const mp::FaultPlan& plan, const SpmdBody& body) {
  RunResult out;
  out.per_rank.assign(static_cast<std::size_t>(ranks), {});
  mp::Communicator comm(ranks, plan);
  try {
    comm.run([&](mp::RankContext& ctx) {
      ctx.set_reliable(true);
      out.per_rank[static_cast<std::size_t>(ctx.rank())] = body(ctx);
    });
  } catch (const mp::RankFailedError& e) {
    out.outcome = Outcome::kRankFailed;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.outcome = Outcome::kError;
    out.error = e.what();
  } catch (...) {
    out.outcome = Outcome::kError;
    out.error = "non-standard exception";
  }
  out.traffic = comm.traffic();
  return out;
}

RunResult run_plan_process(int ranks, mp::TransportKind kind,
                           const mp::FaultPlan& plan,
                           const std::string& body_name,
                           std::chrono::seconds timeout,
                           const std::vector<std::string>& args) {
  mp::launch::LaunchOptions o;
  o.body = body_name;
  o.world = ranks;
  o.kind = kind;
  o.plan = plan;
  o.args = args;
  o.reliable = true;  // the fuzz contract: bodies run reliably
  o.timeout = std::chrono::duration_cast<std::chrono::milliseconds>(timeout);
  const auto lr = mp::launch::run_spmd(o);
  RunResult out;
  switch (lr.outcome) {
    case mp::launch::LaunchResult::kOk:
      out.outcome = Outcome::kOk;
      break;
    case mp::launch::LaunchResult::kRankFailed:
      out.outcome = Outcome::kRankFailed;
      break;
    case mp::launch::LaunchResult::kTimeout:
      out.outcome = Outcome::kError;
      out.error = "HANG: run exceeded the launch timeout";
      break;
    default:
      out.outcome = Outcome::kError;
      break;
  }
  if (out.error.empty()) out.error = lr.error;
  for (const auto& r : lr.ranks) out.per_rank_out.push_back(r.out);
  out.traffic = lr.traffic;
  return out;
}

std::string FuzzReport::repro() const {
  return "transport=" + transport + " threads=" + std::to_string(threads) +
         " seed=" + std::to_string(seed) + " plan=" + plan.describe();
}

void report_failure(std::uint64_t seed, const mp::FaultPlan& plan,
                    const std::string& what, const std::string& transport,
                    int threads) {
  const std::string line =
      "[pdc-fuzz] REPRO transport=" + transport +
      " threads=" + std::to_string(threads) +
      " seed=" + std::to_string(seed) + " plan=" + plan.describe() +
      " failure: " + what;
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
  if (const char* path = std::getenv("PDC_FUZZ_ARTIFACT")) {
    std::ofstream f(path, std::ios::app);
    f << line << "\n";
  }
}

namespace {

/// What (if anything) is wrong with one iteration's outcome.
std::string judge(const RunResult& r, const mp::FaultPlan& plan,
                  const RunResult& baseline) {
  if (r.outcome == Outcome::kError)
    return "unexpected exception: " + r.error;
  if (r.outcome == Outcome::kRankFailed) {
    if (plan.kills()) return {};  // clean failure is a legal outcome
    return "RankFailedError without a kill in the plan: " + r.error;
  }
  if (r.per_rank != baseline.per_rank)
    return "result mismatch vs fault-free baseline";
  return {};
}

/// Process-transport judge: same rules, digests are the bodies' out
/// strings and the baseline is the in-process fault-free run.
std::string judge_process(const RunResult& r, const mp::FaultPlan& plan,
                          const RunResult& baseline) {
  if (r.outcome == Outcome::kError)
    return "unexpected failure: " + r.error;
  if (r.outcome == Outcome::kRankFailed) {
    if (plan.kills()) return {};  // a real SIGKILL is a legal outcome
    return "RankFailedError without a kill in the plan: " + r.error;
  }
  if (r.per_rank_out != baseline.per_rank_out)
    return "result mismatch vs in-process fault-free baseline";
  return {};
}

/// Greedy shrink: disable fault dimensions one at a time, keeping each
/// simplification that still reproduces the failure.
mp::FaultPlan shrink_plan(mp::FaultPlan plan, int ranks, const SpmdBody& body,
                          const RunResult& baseline) {
  auto still_fails = [&](const mp::FaultPlan& candidate) {
    return !judge(run_plan(ranks, candidate, body), candidate, baseline)
                .empty();
  };
  auto try_keep = [&](auto mutate) {
    mp::FaultPlan candidate = plan;
    mutate(candidate);
    if (still_fails(candidate)) plan = candidate;
  };
  try_keep([](mp::FaultPlan& c) { c.kill_rank = -1; c.kill_after_ops = 0; });
  try_keep([](mp::FaultPlan& c) { c.reorder = false; });
  try_keep([](mp::FaultPlan& c) { c.jitter = false; });
  try_keep([](mp::FaultPlan& c) { c.dup = 0.0; });
  try_keep([](mp::FaultPlan& c) { c.drop = 0.0; });
  try_keep([](mp::FaultPlan& c) { c.max_delay = 1; });
  return plan;
}

/// Aborts the process if an iteration outlives its budget; prints the
/// repro line first so CI still gets the (seed, plan) pair.
class Watchdog {
 public:
  Watchdog(std::chrono::seconds budget, std::uint64_t seed,
           const mp::FaultPlan& plan)
      : thread_([this, budget, seed, plan] {
          std::unique_lock lk(m_);
          if (!cv_.wait_for(lk, budget, [&] { return done_; })) {
            report_failure(seed, plan,
                           "HANG: iteration exceeded watchdog budget");
            std::abort();
          }
        }) {}
  ~Watchdog() {
    {
      std::lock_guard lk(m_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

FuzzReport fuzz_spmd(const FuzzOptions& opt, const SpmdBody& body) {
  FuzzReport report;
  report.threads = opt.threads_per_rank;
  const RunResult baseline = run_plan(opt.ranks, mp::FaultPlan{}, body);
  if (baseline.outcome != Outcome::kOk) {
    report.ok = false;
    report.failure = "fault-free baseline failed: " + baseline.error;
    report_failure(0, mp::FaultPlan{}, report.failure, report.transport,
                   report.threads);
    return report;
  }
  for (int i = 0; i < opt.iterations; ++i) {
    const std::uint64_t seed =
        mp::detail::mix64(opt.base_seed + static_cast<std::uint64_t>(i));
    const mp::FaultPlan plan = plan_from_seed(seed, opt.ranks, opt.allow_kill);
    std::string verdict;
    {
      Watchdog dog(opt.hang_timeout, seed, plan);
      verdict = judge(run_plan(opt.ranks, plan, body), plan, baseline);
    }
    ++report.iterations_run;
    if (!verdict.empty()) {
      report.ok = false;
      report.seed = seed;
      report.failure = verdict;
      report.plan =
          opt.shrink ? shrink_plan(plan, opt.ranks, body, baseline) : plan;
      report_failure(seed, report.plan, verdict, report.transport,
                     report.threads);
      return report;
    }
  }
  return report;
}

FuzzReport fuzz_spmd_process(const FuzzOptions& opt,
                             const std::string& body_name) {
  FuzzReport report;
  report.transport = mp::to_string(opt.transport);
  report.threads = opt.threads_per_rank;
  // The hybrid dimension crosses the exec boundary as a body arg.
  std::vector<std::string> args;
  if (opt.threads_per_rank > 1)
    args.push_back("threads=" + std::to_string(opt.threads_per_rank));
  // The reference answers come from the in-process backend, fault-free:
  // the process transports must recover exactly what threads produce.
  const RunResult baseline =
      run_plan_process(opt.ranks, mp::TransportKind::kInproc, mp::FaultPlan{},
                       body_name, opt.hang_timeout, args);
  if (baseline.outcome != Outcome::kOk) {
    report.ok = false;
    report.failure = "fault-free baseline failed: " + baseline.error;
    report_failure(0, mp::FaultPlan{}, report.failure, report.transport,
                   report.threads);
    return report;
  }
  auto judge_one = [&](const mp::FaultPlan& plan) {
    return judge_process(run_plan_process(opt.ranks, opt.transport, plan,
                                          body_name, opt.hang_timeout, args),
                         plan, baseline);
  };
  for (int i = 0; i < opt.iterations; ++i) {
    const std::uint64_t seed =
        mp::detail::mix64(opt.base_seed + static_cast<std::uint64_t>(i));
    const mp::FaultPlan plan = plan_from_seed(seed, opt.ranks, opt.allow_kill);
    // No thread watchdog here: run_spmd's own timeout SIGKILLs a hung
    // world and surfaces it as a judged failure.
    const std::string verdict = judge_one(plan);
    ++report.iterations_run;
    if (!verdict.empty()) {
      report.ok = false;
      report.seed = seed;
      report.failure = verdict;
      report.plan = plan;
      if (opt.shrink) {
        // Same greedy shrink as in-process, replayed over the transport.
        auto try_keep = [&](auto mutate) {
          mp::FaultPlan candidate = report.plan;
          mutate(candidate);
          if (!judge_one(candidate).empty()) report.plan = candidate;
        };
        try_keep([](mp::FaultPlan& c) {
          c.kill_rank = -1;
          c.kill_after_ops = 0;
        });
        try_keep([](mp::FaultPlan& c) { c.reorder = false; });
        try_keep([](mp::FaultPlan& c) { c.jitter = false; });
        try_keep([](mp::FaultPlan& c) { c.dup = 0.0; });
        try_keep([](mp::FaultPlan& c) { c.drop = 0.0; });
        try_keep([](mp::FaultPlan& c) { c.max_delay = 1; });
      }
      report_failure(seed, report.plan, verdict, report.transport,
                     report.threads);
      return report;
    }
  }
  return report;
}

}  // namespace pdc::testing
