#pragma once
// pdc::testing — deterministic schedule/fault fuzzer for SPMD bodies.
//
// The harness runs a body hundreds of times, each under a FaultPlan
// derived from a seed, on the reliable channel. Every iteration must
// either reproduce the fault-free baseline bit-for-bit or (when the plan
// kills a rank) fail with a clean RankFailedError. Anything else — a
// wrong answer, an unexpected exception, a hang — is a bug; the harness
// shrinks the plan to a minimal failing one and prints a
//   [pdc-fuzz] REPRO seed=<seed> plan=FaultPlan{...}
// line (also appended to $PDC_FUZZ_ARTIFACT if set) that replays the
// failure deterministically. A watchdog aborts a stuck iteration after
// `hang_timeout`, printing the repro line first, so an injected deadlock
// fails fast instead of hanging the suite.
//
// This is permanent correctness tooling: any future mp/sync/core change
// can wrap its protocol in a body and inherit the whole adversarial
// schedule sweep.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pdc/mp/comm.hpp"
#include "pdc/mp/fault.hpp"
#include "pdc/mp/launch.hpp"
#include "pdc/mp/transport.hpp"

namespace pdc::testing {

/// The SPMD code under test. Runs on the reliable channel; returns a
/// per-rank digest (any deterministic fingerprint of the rank's results)
/// that the harness compares against the fault-free baseline.
using SpmdBody =
    std::function<std::vector<std::int64_t>(pdc::mp::RankContext&)>;

/// Iteration budget: $PDC_STRESS_ITERS overrides `fallback` (the CI
/// stress job time-boxes the sweep with it).
[[nodiscard]] int stress_iters(int fallback);

/// Derive a fault plan from a seed: drop in {0..0.3}, dup in {0..0.1},
/// reorder/jitter coin flips, and (when allowed) a rank-kill. Pure
/// function of (seed, ranks, allow_kill).
[[nodiscard]] pdc::mp::FaultPlan plan_from_seed(std::uint64_t seed, int ranks,
                                                bool allow_kill);

enum class Outcome {
  kOk,          ///< run completed; per_rank holds every rank's digest
  kRankFailed,  ///< run threw RankFailedError (legitimate under a kill)
  kError,       ///< run threw anything else
};

struct RunResult {
  Outcome outcome = Outcome::kOk;
  std::vector<std::vector<std::int64_t>> per_rank;
  std::string error;  ///< what() when outcome != kOk
  pdc::mp::TrafficStats traffic;
  /// Process-transport runs carry their digests as the bodies' out
  /// strings (per_rank stays empty there).
  std::vector<std::string> per_rank_out;
};

/// Execute one (ranks, plan, body) run on the reliable channel.
/// Deterministic in its observable outcome for a fixed (seed, plan).
[[nodiscard]] RunResult run_plan(int ranks, const pdc::mp::FaultPlan& plan,
                                 const SpmdBody& body);

/// Same, but over a launch transport with a PDC_SPMD_BODY-registered body
/// (a lambda cannot cross an exec boundary): each rank is its own forked
/// process on shm/tcp, and a fault-plan rank kill is a REAL SIGKILL. The
/// caller's main() must route through launch::maybe_run_child. `args`
/// are forwarded to the body (io.args) — how hybrid dimensions like
/// "threads=N" reach process bodies.
[[nodiscard]] RunResult run_plan_process(
    int ranks, pdc::mp::TransportKind kind, const pdc::mp::FaultPlan& plan,
    const std::string& body_name,
    std::chrono::seconds timeout = std::chrono::seconds{30},
    const std::vector<std::string>& args = {});

struct FuzzOptions {
  int ranks = 4;
  int iterations = 100;
  std::uint64_t base_seed = 0xC0FFEE0DULL;
  bool allow_kill = true;
  bool shrink = true;
  /// Watchdog: abort the process (after printing the repro line) if one
  /// iteration runs longer than this — a hang IS the bug being hunted.
  /// For process transports this is the per-run launch timeout instead
  /// (a blown budget SIGKILLs the stragglers and judges as a failure).
  std::chrono::seconds hang_timeout{30};
  /// Transport for fuzz_spmd_process: where each seeded run executes.
  /// The fault-free baseline it is judged against always runs in-process.
  pdc::mp::TransportKind transport = pdc::mp::TransportKind::kInproc;
  /// Hybrid dimension: threads advancing each rank's work, recorded in
  /// repro lines so a FaultPlan replays under the same ExecPlan shape.
  /// fuzz_spmd_process forwards it to the body as a "threads=N" arg;
  /// in-process bodies capture their plan directly and set this to match.
  int threads_per_rank = 1;
};

struct FuzzReport {
  bool ok = true;
  int iterations_run = 0;
  std::uint64_t seed = 0;        ///< failing seed (when !ok)
  pdc::mp::FaultPlan plan;       ///< shrunk failing plan (when !ok)
  std::string failure;           ///< what went wrong
  std::string transport = "inproc";  ///< where the failing run executed
  int threads = 1;  ///< threads per rank the failing body ran with
  [[nodiscard]] std::string repro() const;
};

/// The fuzzer: baseline run, then `iterations` seeded fault plans.
/// Returns on the first failure (shrunk), or ok after the full sweep.
[[nodiscard]] FuzzReport fuzz_spmd(const FuzzOptions& opt,
                                   const SpmdBody& body);

/// The fuzzer over a process transport (opt.transport): every seeded
/// plan runs the registered body via fork/exec — rank kills are real
/// SIGKILLs — and survivors are judged against the in-process fault-free
/// baseline. Repro lines carry the transport= dimension.
[[nodiscard]] FuzzReport fuzz_spmd_process(const FuzzOptions& opt,
                                           const std::string& body_name);

/// Print (and persist to $PDC_FUZZ_ARTIFACT) a repro line.
void report_failure(std::uint64_t seed, const pdc::mp::FaultPlan& plan,
                    const std::string& what,
                    const std::string& transport = "inproc",
                    int threads = 1);

}  // namespace pdc::testing
