// pdc::stencil — tile map / activity tracking units, the engine's
// skip-soundness contract (skipping is bit-identical to the full sweep),
// and the heat workload's cross-engine identity: the same options must
// produce the same iteration count, residual, and field on the
// sequential, threaded, and message-passing engines.

#include "pdc/stencil/engine.hpp"
#include "pdc/stencil/heat.hpp"
#include "pdc/stencil/tile.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/transport.hpp"

namespace ps = pdc::stencil;
namespace pl = pdc::life;
namespace mp = pdc::mp;

// ---------------------------------------------------------------- tiles ---

TEST(TileMap, CutsDomainIntoHalfOpenRectangles) {
  const ps::TileMap tm(10, 7, 4, 3);
  EXPECT_EQ(tm.tiles_y(), 3u);
  EXPECT_EQ(tm.tiles_x(), 3u);
  EXPECT_EQ(tm.count(), 9u);

  const ps::TileBounds first = tm.bounds(0);
  EXPECT_EQ(first.r0, 0u);
  EXPECT_EQ(first.r1, 4u);
  EXPECT_EQ(first.c0, 0u);
  EXPECT_EQ(first.c1, 3u);

  // Bottom-right tile is the ragged remainder.
  const ps::TileBounds last = tm.bounds(tm.count() - 1);
  EXPECT_EQ(last.r0, 8u);
  EXPECT_EQ(last.r1, 10u);
  EXPECT_EQ(last.c0, 6u);
  EXPECT_EQ(last.c1, 7u);
  EXPECT_EQ(last.rows(), 2u);
  EXPECT_EQ(last.cols(), 1u);

  // Every unit is covered exactly once.
  std::vector<int> hits(10 * 7, 0);
  for (std::size_t t = 0; t < tm.count(); ++t) {
    const auto b = tm.bounds(t);
    for (std::size_t r = b.r0; r < b.r1; ++r)
      for (std::size_t c = b.c0; c < b.c1; ++c) ++hits[r * 7 + c];
  }
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(TileMap, ClampsOversizedTilesAndValidates) {
  const ps::TileMap tm(4, 4, 100, 100);
  EXPECT_EQ(tm.count(), 1u);
  EXPECT_EQ(tm.tile_h(), 4u);
  EXPECT_THROW(ps::TileMap(0, 4, 1, 1), std::invalid_argument);
  EXPECT_THROW(ps::TileMap(4, 4, 0, 1), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tm.bounds(1)), std::out_of_range);
}

TEST(ActivityMap, StartsAllChangedSoFirstAdvanceActivatesEverything) {
  const ps::TileMap tm(9, 9, 3, 3);
  ps::ActivityMap act(tm, false, false);
  act.advance();
  EXPECT_EQ(act.active_count(), tm.count());
}

TEST(ActivityMap, DilatesChangedTilesToEightNeighbors) {
  const ps::TileMap tm(9, 9, 3, 3);  // 3x3 tiles
  ps::ActivityMap act(tm, false, false);
  act.advance();  // consume the initial all-changed state
  // Nothing changed -> everything sleeps.
  act.advance();
  EXPECT_EQ(act.active_count(), 0u);
  // One corner tile changed -> it and its 3 in-bounds neighbors wake.
  act.mark_changed(tm.index(0, 0), true);
  act.advance();
  EXPECT_EQ(act.active_count(), 4u);
  EXPECT_TRUE(act.active()[tm.index(0, 0)]);
  EXPECT_TRUE(act.active()[tm.index(0, 1)]);
  EXPECT_TRUE(act.active()[tm.index(1, 0)]);
  EXPECT_TRUE(act.active()[tm.index(1, 1)]);
}

TEST(ActivityMap, WrapDilatesAcrossEdges) {
  const ps::TileMap tm(9, 9, 3, 3);
  ps::ActivityMap act(tm, true, true);
  act.advance();
  act.mark_changed(tm.index(0, 0), true);
  act.advance();
  // Torus: the corner's 8 neighbors wrap -> 9 active tiles (all of a 3x3
  // tile grid).
  EXPECT_EQ(act.active_count(), 9u);
}

TEST(ActivityMap, ExternalFlagsReplaceRowWrapForStrips) {
  const ps::TileMap tm(3, 9, 3, 3);  // one tile row, three tile columns
  ps::ActivityMap act(tm, false, false);
  act.advance();
  act.advance();
  EXPECT_EQ(act.active_count(), 0u);
  // Neighbor rank reports its edge tile column 2 changed: our tiles 1
  // and 2 wake (8-neighbor dilation from above), tile 0 stays asleep.
  const std::uint8_t above[3] = {0, 0, 1};
  act.advance(above, nullptr);
  EXPECT_EQ(act.active_count(), 2u);
  EXPECT_FALSE(act.active()[0]);
  EXPECT_TRUE(act.active()[1]);
  EXPECT_TRUE(act.active()[2]);
}

TEST(ActivityMap, CopyEdgeChangedSnapshotsBeforeAdvanceClears) {
  const ps::TileMap tm(6, 6, 3, 3);  // 2x2 tiles
  ps::ActivityMap act(tm, false, false);
  act.advance();
  act.mark_changed(tm.index(0, 1), true);
  act.mark_changed(tm.index(1, 0), true);
  std::uint8_t top[2], bottom[2];
  act.copy_edge_changed(true, top);
  act.copy_edge_changed(false, bottom);
  EXPECT_EQ(top[0], 0);
  EXPECT_EQ(top[1], 1);
  EXPECT_EQ(bottom[0], 1);
  EXPECT_EQ(bottom[1], 0);
}

// --------------------------------------------------------------- options ---

TEST(StencilOptions, ValidatesQuiesceAgainstConvergence) {
  ps::HeatField f(8, 8);
  ps::HeatOptions opt;
  opt.converge_eps = 1e-4;
  opt.quiesce_eps = 1e-3;  // would hide exactly the residual we wait for
  EXPECT_THROW(ps::heat_relax(f, opt), std::invalid_argument);
  opt.quiesce_eps = -1.0;
  EXPECT_THROW(ps::heat_relax(f, opt), std::invalid_argument);
  opt.quiesce_eps = 0.0;
  opt.tile_rows = 0;
  EXPECT_THROW(ps::heat_relax(f, opt), std::invalid_argument);
}

// --------------------------------------- Life on the stencil engine ------

using Shape = std::pair<std::size_t, std::size_t>;
constexpr Shape kShapes[] = {{1, 1},  {1, 130}, {17, 1},  {3, 63},
                             {8, 64}, {5, 65},  {33, 29}, {6, 200}};

class LifeSkipEquivalence
    : public ::testing::TestWithParam<std::tuple<pl::Boundary, int>> {};

// Tiny tiles (2 rows x 1 word) on awkward shapes: skipping ON must stay
// bit-identical to the full sweep AND to the byte-grid oracle, on all
// three engines. This is the skip-soundness theorem, exercised.
TEST_P(LifeSkipEquivalence, SkippingIsBitIdenticalAcrossEngines) {
  const auto [boundary, gens] = GetParam();
  pl::EngineOptions skip_on;
  skip_on.tile_rows = 2;
  skip_on.tile_words = 1;
  pl::EngineOptions skip_off = skip_on;
  skip_off.skip_quiescent = false;

  for (const auto& [rows, cols] : kShapes) {
    const pl::Grid start = pl::random_grid(rows, cols, 0.3, 99, boundary);
    pl::Grid oracle = start;
    pl::run_reference(oracle, gens);

    pl::Grid full = start;
    const auto full_res = pl::run_sequential(full, gens, skip_off);
    EXPECT_EQ(full, oracle);
    EXPECT_EQ(full_res.tiles_skipped, 0u);

    pl::Grid skip = start;
    pl::run_sequential(skip, gens, skip_on);
    EXPECT_EQ(skip, oracle) << rows << "x" << cols;

    pl::Grid thr = start;
    pl::run_threaded(thr, gens, 3, skip_on);
    EXPECT_EQ(thr, oracle) << rows << "x" << cols;

    if (rows >= 2) {
      pl::Grid msg = start;
      pl::run_message_passing(msg, gens, 2, skip_on);
      EXPECT_EQ(msg, oracle) << rows << "x" << cols;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LifeSkipEquivalence,
    ::testing::Combine(::testing::Values(pl::Boundary::kDead,
                                         pl::Boundary::kTorus),
                       ::testing::Values(1, 3, 8)));

TEST(LifeStencil, SparseBoardActuallySkipsAndStaysExact) {
  // Soup in one corner of an otherwise dead board: most tiles must
  // sleep, and the result must equal the full sweep bit for bit.
  pl::Grid board(128, 256, pl::Boundary::kDead);
  const pl::Grid soup = pl::random_grid(24, 24, 0.4, 5, pl::Boundary::kDead);
  for (std::size_t r = 0; r < 24; ++r)
    for (std::size_t c = 0; c < 24; ++c) board.set(r, c, soup.get(r, c));

  pl::EngineOptions opt;
  opt.tile_rows = 8;
  opt.tile_words = 1;
  pl::Grid skip = board, full = board;
  const auto skip_res = pl::run_sequential(skip, 12, opt);
  opt.skip_quiescent = false;
  const auto full_res = pl::run_sequential(full, 12, opt);

  EXPECT_EQ(skip, full);
  EXPECT_EQ(full_res.tiles_skipped, 0u);
  EXPECT_GT(skip_res.tiles_skipped, skip_res.tiles_computed)
      << "sparse board should skip the majority of tiles";
  EXPECT_EQ(skip_res.tiles_computed + skip_res.tiles_skipped,
            full_res.tiles_computed);
}

TEST(LifeStencil, MessagePassingHaloWordsAreExact) {
  // 256 columns = 4 payload words, tiles_x = 2 -> 1 flag word; 2 ranks x
  // 2 messages x gens.
  pl::Grid board = pl::random_grid(64, 256, 0.3, 21);
  pl::EngineOptions opt;
  opt.tile_rows = 16;
  opt.tile_words = 2;
  const int gens = 7;
  const auto res = pl::run_message_passing(board, gens, 2, opt);
  EXPECT_EQ(res.halo_words,
            static_cast<std::uint64_t>(2 * 2 * gens) * (4u + 1u));
  EXPECT_EQ(res.steps, static_cast<std::uint64_t>(gens));
}

// ----------------------------------------------------------------- heat ---

namespace {

ps::HeatField hot_top(std::size_t rows, std::size_t cols) {
  ps::HeatField f(rows, cols, 0.0f);
  f.set_boundary(1.0f, 0.0f, 0.0f, 0.0f);
  return f;
}

}  // namespace

TEST(Heat, SequentialConvergesAndHeatFlowsDownward) {
  ps::HeatField f = hot_top(32, 32);
  ps::HeatOptions opt;
  opt.converge_eps = 1e-3;
  const ps::RunResult res = ps::heat_relax(f, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.steps, 1u);
  EXPECT_LE(res.last_delta, 1e-3);
  // Monotone temperature profile away from the hot edge.
  EXPECT_GT(f.at(0, 16), f.at(8, 16));
  EXPECT_GT(f.at(8, 16), f.at(31, 16));
  EXPECT_GT(f.at(31, 16), 0.0f);  // warmth reached the far edge
}

class HeatEngineIdentity : public ::testing::TestWithParam<double> {};

// The acceptance criterion: identical iteration counts (and residual,
// and field) on sequential, threaded, and message-passing engines — both
// with the exact dirty predicate and with a residual-based one.
TEST_P(HeatEngineIdentity, AllEnginesAgreeOnStepsResidualAndField) {
  const double quiesce = GetParam();
  ps::HeatOptions opt;
  opt.conductivity = 0.25;
  opt.converge_eps = 1e-4;
  opt.quiesce_eps = quiesce;
  opt.tile_rows = 16;
  opt.tile_cols = 32;

  ps::HeatField seq = hot_top(64, 96);
  const ps::RunResult rs = ps::heat_relax(seq, opt);
  EXPECT_TRUE(rs.converged);

  ps::HeatField thr = hot_top(64, 96);
  const ps::RunResult rt = ps::heat_relax_threaded(thr, opt, 4);
  EXPECT_EQ(rt.steps, rs.steps);
  EXPECT_EQ(rt.last_delta, rs.last_delta);
  EXPECT_EQ(rt.tiles_computed, rs.tiles_computed);
  EXPECT_TRUE(thr == seq);

  for (const int ranks : {1, 2, 4}) {
    ps::HeatField mp = hot_top(64, 96);
    const ps::RunResult rm = ps::heat_relax_mp(mp, opt, ranks);
    EXPECT_EQ(rm.steps, rs.steps) << "ranks=" << ranks;
    EXPECT_EQ(rm.last_delta, rs.last_delta) << "ranks=" << ranks;
    EXPECT_EQ(rm.tiles_computed, rs.tiles_computed) << "ranks=" << ranks;
    EXPECT_TRUE(mp == seq) << "ranks=" << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(ExactAndResidual, HeatEngineIdentity,
                         ::testing::Values(0.0, 1e-6));

TEST(Heat, SkippingExactPredicateMatchesFullSweep) {
  ps::HeatOptions opt;
  opt.converge_eps = 1e-4;
  opt.tile_rows = 8;
  opt.tile_cols = 16;
  ps::HeatField skip = hot_top(48, 64);
  const ps::RunResult rs = ps::heat_relax(skip, opt);
  opt.skip_quiescent = false;
  ps::HeatField full = hot_top(48, 64);
  const ps::RunResult rf = ps::heat_relax(full, opt);
  EXPECT_TRUE(skip == full);
  EXPECT_EQ(rs.steps, rf.steps);
  EXPECT_EQ(rs.last_delta, rf.last_delta);
  EXPECT_GT(rs.tiles_skipped, 0u);
  EXPECT_EQ(rf.tiles_skipped, 0u);
}

TEST(Heat, ResidualPredicateStaysCloseToExact) {
  ps::HeatOptions opt;
  opt.converge_eps = 1e-3;
  ps::HeatField exact = hot_top(48, 48);
  ps::heat_relax(exact, opt);
  opt.quiesce_eps = 1e-4;  // aggressive sleeping, bounded deviation
  ps::HeatField lazy = hot_top(48, 48);
  const ps::RunResult res = ps::heat_relax(lazy, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(exact.max_abs_diff(lazy), 0.05);
}

TEST(Heat, MpHaloWordsAreExact) {
  ps::HeatOptions opt;
  opt.conductivity = 0.25;
  opt.converge_eps = 1e-4;
  opt.tile_rows = 16;
  opt.tile_cols = 32;
  ps::HeatField f = hot_top(64, 96);
  const ps::RunResult res = ps::heat_relax_mp(f, opt, 2);
  // 2 ranks, each with one neighbor: 2 messages per step, each 1 flag
  // word + ceil(96/2) packed float words.
  EXPECT_EQ(res.halo_words, res.steps * 2u * (1u + 48u));
}

// ------------------------------------------ tile-stealing run_threaded ---

// Acceptance criterion for the work-stealing engine: tile stealing is a
// pure load-balance lever. Grids stay bit-identical to the sequential
// engine and the updated-tile accounting is *exactly* unchanged, for
// every thread count 1..8 and with stealing both on and off.
TEST(TileStealing, LifeGridsBitIdenticalAndTileCountsExact1To8Threads) {
  // Clustered sparse board — all live tiles in one corner, the worst
  // case for the static partition and the reason stealing exists.
  pl::Grid board(128, 256, pl::Boundary::kDead);
  const pl::Grid soup = pl::random_grid(24, 24, 0.4, 7, pl::Boundary::kDead);
  for (std::size_t r = 0; r < 24; ++r)
    for (std::size_t c = 0; c < 24; ++c) board.set(r, c, soup.get(r, c));

  const int gens = 10;
  pl::EngineOptions opt;
  opt.tile_rows = 8;
  opt.tile_words = 1;

  pl::Grid seq_g = board;
  const auto seq = pl::run_sequential(seq_g, gens, opt);

  for (int threads = 1; threads <= 8; ++threads) {
    for (const bool steal : {false, true}) {
      const ps::ExecPlan plan{.threads_per_rank = threads,
                              .steal_tiles = steal};
      pl::Grid g = board;
      const auto res = pl::run_plan(g, gens, plan, opt);
      EXPECT_EQ(g, seq_g) << "threads=" << threads << " steal=" << steal;
      EXPECT_EQ(res.tiles_computed, seq.tiles_computed)
          << "threads=" << threads << " steal=" << steal;
      EXPECT_EQ(res.tiles_skipped, seq.tiles_skipped)
          << "threads=" << threads << " steal=" << steal;
      EXPECT_EQ(res.steps, seq.steps);
    }
  }
}

TEST(TileStealing, HeatStealingMatchesSequentialExactly1To8Threads) {
  ps::HeatOptions opt;
  opt.conductivity = 0.25;
  opt.converge_eps = 1e-4;
  opt.tile_rows = 16;
  opt.tile_cols = 32;

  ps::HeatField seq = hot_top(64, 96);
  const ps::RunResult rs = ps::heat_relax(seq, opt);
  EXPECT_TRUE(rs.converged);

  for (int threads = 1; threads <= 8; ++threads) {
    for (const bool steal : {false, true}) {
      const ps::ExecPlan plan{.threads_per_rank = threads,
                              .steal_tiles = steal};
      ps::HeatField thr = hot_top(64, 96);
      const ps::RunResult rt = ps::heat_relax_plan(thr, opt, plan);
      EXPECT_EQ(rt.steps, rs.steps) << "threads=" << threads;
      EXPECT_EQ(rt.last_delta, rs.last_delta) << "threads=" << threads;
      EXPECT_EQ(rt.tiles_computed, rs.tiles_computed)
          << "threads=" << threads << " steal=" << steal;
      EXPECT_EQ(rt.tiles_skipped, rs.tiles_skipped);
      EXPECT_TRUE(thr == seq) << "threads=" << threads << " steal=" << steal;
    }
  }
}

// ------------------------------------------------- hybrid ExecPlan ------

// The single-entry-point contract: the legacy wrappers are thin aliases
// of run() on the corresponding plan — same grids, same accounting,
// same wire words, byte for byte.
TEST(HybridPlan, CompatWrappersMatchPlanEntryPoints) {
  const pl::Grid start = pl::random_grid(48, 96, 0.3, 11);
  pl::EngineOptions opt;
  opt.tile_rows = 8;
  opt.tile_words = 1;
  const int gens = 6;

  const auto expect_same = [](const ps::RunResult& a, const ps::RunResult& b,
                              const pl::Grid& ga, const pl::Grid& gb,
                              const char* what) {
    EXPECT_EQ(ga, gb) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.tiles_computed, b.tiles_computed) << what;
    EXPECT_EQ(a.tiles_skipped, b.tiles_skipped) << what;
    EXPECT_EQ(a.halo_words, b.halo_words) << what;
  };

  pl::Grid seq = start;
  const auto seq_res = pl::run_sequential(seq, gens, opt);
  pl::Grid p11 = start;
  const auto p11_res = pl::run_plan(p11, gens, ps::ExecPlan{}, opt);
  expect_same(seq_res, p11_res, seq, p11, "{1,1} vs run_sequential");
  EXPECT_EQ(p11_res.halo_words, 0u);

  pl::Grid thr = start;
  const auto thr_res = pl::run_threaded(thr, gens, 3, opt);
  pl::Grid p13 = start;
  const auto p13_res =
      pl::run_plan(p13, gens, ps::ExecPlan{.threads_per_rank = 3}, opt);
  expect_same(thr_res, p13_res, thr, p13, "{1,3} vs run_threaded");

  pl::Grid msg = start;
  std::uint64_t msg_msgs = 0, msg_words = 0;
  const auto msg_res =
      pl::run_message_passing(msg, gens, 2, opt, &msg_msgs, &msg_words);
  pl::Grid p21 = start;
  std::uint64_t plan_msgs = 0, plan_words = 0;
  const auto p21_res = pl::run_plan(p21, gens, ps::ExecPlan{.ranks = 2}, opt,
                                    &plan_msgs, &plan_words);
  expect_same(msg_res, p21_res, msg, p21, "{2,1} vs run_message_passing");
  EXPECT_EQ(msg_msgs, plan_msgs);
  EXPECT_EQ(msg_words, plan_words);
}

// The hybrid equivalence theorem, exercised: every plan shape {R,T} x
// {overlap, serial} x {steal on/off}, over the same awkward shapes the
// engine sweep uses, produces grids bit-identical to the sequential
// oracle. Tile accounting matches whenever the strip partition keeps
// the global tile grid (rows/ranks >= tile_rows); narrower strips
// shrink the tile height, which changes the counts but never the cells.
TEST(HybridPlan, LifeBitIdenticalToSeqOracleAcrossPlanMatrix) {
  pl::EngineOptions opt;
  opt.tile_rows = 2;
  opt.tile_words = 1;
  const int gens = 4;

  for (const auto& [rows, cols] : kShapes) {
    const pl::Grid start =
        pl::random_grid(rows, cols, 0.3, 77, pl::Boundary::kTorus);
    pl::Grid seq_g = start;
    const auto seq = pl::run_sequential(seq_g, gens, opt);

    for (const int ranks : {1, 2, 4}) {
      if (static_cast<std::size_t>(ranks) > rows) continue;
      for (const int threads : {1, 2, 4}) {
        for (const auto sched :
             {ps::HaloSchedule::kOverlap, ps::HaloSchedule::kSerial}) {
          for (const bool steal : {false, true}) {
            const ps::ExecPlan plan{.ranks = ranks,
                                    .threads_per_rank = threads,
                                    .schedule = sched,
                                    .steal_tiles = steal};
            const std::string tag =
                std::to_string(rows) + "x" + std::to_string(cols) +
                " plan{" + std::to_string(ranks) + "," +
                std::to_string(threads) +
                (sched == ps::HaloSchedule::kOverlap ? ",overlap"
                                                     : ",serial") +
                (steal ? ",steal}" : ",static}");
            pl::Grid g = start;
            const auto res = pl::run_plan(g, gens, plan, opt);
            EXPECT_EQ(g, seq_g) << tag;
            EXPECT_EQ(res.steps, seq.steps) << tag;
            if (rows / static_cast<std::size_t>(ranks) >= opt.tile_rows) {
              EXPECT_EQ(res.tiles_computed, seq.tiles_computed) << tag;
              EXPECT_EQ(res.tiles_skipped, seq.tiles_skipped) << tag;
            }
          }
        }
      }
    }
  }
}

// Same matrix for the float workload: fields, step counts, and the
// converged residual (a bit-exact double, thanks to the bit_cast kMax
// allreduce) must all match the sequential oracle.
TEST(HybridPlan, HeatBitIdenticalToSeqOracleAcrossPlanMatrix) {
  ps::HeatOptions opt;
  opt.conductivity = 0.25;
  opt.converge_eps = 1e-3;
  opt.tile_rows = 4;
  opt.tile_cols = 16;
  opt.max_steps = 400;

  constexpr std::pair<std::size_t, std::size_t> kFields[] = {{24, 20},
                                                             {33, 17}};
  for (const auto& [rows, cols] : kFields) {
    ps::HeatField seq = hot_top(rows, cols);
    const ps::RunResult rs = ps::heat_relax(seq, opt);
    EXPECT_TRUE(rs.converged);

    for (const int ranks : {1, 2, 4}) {
      for (const int threads : {1, 2, 4}) {
        for (const auto sched :
             {ps::HaloSchedule::kOverlap, ps::HaloSchedule::kSerial}) {
          for (const bool steal : {false, true}) {
            const ps::ExecPlan plan{.ranks = ranks,
                                    .threads_per_rank = threads,
                                    .schedule = sched,
                                    .steal_tiles = steal};
            const std::string tag =
                std::to_string(rows) + "x" + std::to_string(cols) +
                " plan{" + std::to_string(ranks) + "," +
                std::to_string(threads) +
                (sched == ps::HaloSchedule::kOverlap ? ",overlap"
                                                     : ",serial") +
                (steal ? ",steal}" : ",static}");
            ps::HeatField f = hot_top(rows, cols);
            const ps::RunResult rt = ps::heat_relax_plan(f, opt, plan);
            EXPECT_TRUE(f == seq) << tag;
            EXPECT_EQ(rt.steps, rs.steps) << tag;
            EXPECT_EQ(rt.last_delta, rs.last_delta) << tag;
            EXPECT_TRUE(rt.converged) << tag;
            if (rows / static_cast<std::size_t>(ranks) >= opt.tile_rows) {
              EXPECT_EQ(rt.tiles_computed, rs.tiles_computed) << tag;
              EXPECT_EQ(rt.tiles_skipped, rs.tiles_skipped) << tag;
            }
          }
        }
      }
    }
  }
}

TEST(HybridPlan, ValidatesPlanShapeAndTransport) {
  pl::Grid g = pl::random_grid(8, 8, 0.3, 1);
  EXPECT_THROW(pl::run_plan(g, 1, ps::ExecPlan{.ranks = 0}),
               std::invalid_argument);
  EXPECT_THROW(pl::run_plan(g, 1, ps::ExecPlan{.threads_per_rank = 0}),
               std::invalid_argument);
  // In-process drivers refuse process transports: those worlds are
  // launched via mp::launch::run_spmd with the strip-level run() inside
  // each body.
  EXPECT_THROW(
      pl::run_plan(
          g, 1,
          ps::ExecPlan{.ranks = 2, .transport = mp::TransportKind::kShm}),
      std::invalid_argument);
  ps::HeatField f = hot_top(8, 8);
  ps::HeatOptions hopt;
  EXPECT_THROW(ps::heat_relax_plan(f, hopt, ps::ExecPlan{.ranks = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ps::heat_relax_plan(
          f, hopt,
          ps::ExecPlan{.ranks = 2, .transport = mp::TransportKind::kTcp}),
      std::invalid_argument);
}

// ------------------------------------------- funneled threading mode ---

// The mp::Threading contract the hybrid engine relies on: once a rank
// enters kFunneled mode, communication from any thread other than the
// designated one is a deterministic std::logic_error, not a silent
// mailbox race.
TEST(MpThreading, FunneledModeRejectsCommFromForeignThreads) {
  if (!mp::thread_checks_enabled())
    GTEST_SKIP() << "thread checks compiled out (NDEBUG build)";
  mp::Communicator comm(2);
  comm.run([](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_threading(mp::Threading::kFunneled);
      EXPECT_EQ(ctx.threading(), mp::Threading::kFunneled);
      ctx.send_value(1, 0, 42);  // the designated thread may still talk
      bool threw = false;
      std::thread foreign([&] {
        try {
          ctx.send_value(1, 1, -1);  // must never reach the wire
        } catch (const std::logic_error&) {
          threw = true;
        }
      });
      foreign.join();
      EXPECT_TRUE(threw) << "off-thread send in kFunneled mode must throw";
      // Dropping back to kSingle re-pins the comm thread to the caller.
      ctx.set_threading(mp::Threading::kSingle);
      ctx.send_value(1, 1, 43);
    } else {
      EXPECT_EQ(ctx.recv_value(0, 0), 42);
      EXPECT_EQ(ctx.recv_value(0, 1), 43);
    }
  });
}

TEST(Heat, ValidatesArguments) {
  EXPECT_THROW(ps::HeatField(0, 4), std::invalid_argument);
  ps::HeatField f = hot_top(8, 8);
  ps::HeatOptions opt;
  EXPECT_THROW(ps::heat_relax_threaded(f, opt, 0), std::invalid_argument);
  EXPECT_THROW(ps::heat_relax_mp(f, opt, 0), std::invalid_argument);
  EXPECT_THROW(ps::heat_relax_mp(f, opt, 9), std::invalid_argument);
}
