// Tests for pdc::model — task-graph work/span analysis, the PRAM
// simulator and its access-discipline enforcement, and the BSP cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "pdc/model/bsp.hpp"
#include "pdc/model/pram.hpp"
#include "pdc/model/task_graph.hpp"

namespace md = pdc::model;

// ------------------------------------------------------------ task graph ---

TEST(TaskGraph, WorkAndSpanOfChain) {
  md::TaskGraph g;
  const auto a = g.add_task(2.0);
  const auto b = g.add_task(3.0);
  const auto c = g.add_task(5.0);
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  EXPECT_DOUBLE_EQ(g.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(g.span(), 10.0);  // a chain has no parallelism
  EXPECT_DOUBLE_EQ(g.parallelism(), 1.0);
}

TEST(TaskGraph, WorkAndSpanOfDiamond) {
  md::TaskGraph g;
  const auto src = g.add_task(1.0);
  const auto left = g.add_task(10.0);
  const auto right = g.add_task(4.0);
  const auto sink = g.add_task(1.0);
  g.add_dependency(src, left);
  g.add_dependency(src, right);
  g.add_dependency(left, sink);
  g.add_dependency(right, sink);
  EXPECT_DOUBLE_EQ(g.total_work(), 16.0);
  EXPECT_DOUBLE_EQ(g.span(), 12.0);  // 1 + 10 + 1 (heavier branch)
  EXPECT_NEAR(g.parallelism(), 16.0 / 12.0, 1e-12);
}

TEST(TaskGraph, RejectsBadInput) {
  md::TaskGraph g;
  EXPECT_THROW((void)g.add_task(0.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_task(-1.0), std::invalid_argument);
  const auto a = g.add_task(1.0);
  EXPECT_THROW(g.add_dependency(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_dependency(a, 99), std::out_of_range);
}

TEST(TaskGraph, DetectsCycle) {
  md::TaskGraph g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  EXPECT_THROW((void)g.span(), std::runtime_error);
  EXPECT_THROW((void)g.topological_order(), std::runtime_error);
}

TEST(TaskGraph, TopologicalOrderRespectsDeps) {
  md::TaskGraph g;
  std::vector<md::NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(g.add_task(1.0));
  // Chain 0->1->...->9 plus some skip edges.
  for (int i = 0; i + 1 < 10; ++i) g.add_dependency(nodes[i], nodes[i + 1]);
  g.add_dependency(nodes[0], nodes[5]);
  g.add_dependency(nodes[2], nodes[9]);
  const auto order = g.topological_order();
  std::vector<std::size_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (int i = 0; i + 1 < 10; ++i) EXPECT_LT(pos[nodes[i]], pos[nodes[i + 1]]);
}

TEST(TaskGraph, GreedyScheduleSatisfiesBrentBound) {
  // Random DAGs: greedy makespan within [max(T1/P, Tinf), T1/P + Tinf].
  std::mt19937 rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    md::TaskGraph g;
    const int n = 30;
    std::vector<md::NodeId> nodes;
    for (int i = 0; i < n; ++i)
      nodes.push_back(g.add_task(1.0 + static_cast<double>(rng() % 10)));
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng() % 5 == 0) g.add_dependency(nodes[i], nodes[j]);

    const double t1 = g.total_work();
    const double tinf = g.span();
    for (int p : {1, 2, 4, 8}) {
      const double tp = g.greedy_schedule_makespan(p);
      EXPECT_GE(tp + 1e-9, std::max(t1 / p, tinf)) << "p=" << p;
      EXPECT_LE(tp, g.brent_bound(p) + 1e-9) << "p=" << p;
    }
    // One processor executes all the work serially.
    EXPECT_NEAR(g.greedy_schedule_makespan(1), t1, 1e-9);
  }
}

TEST(TaskGraph, ReductionDagHasLogSpan) {
  for (std::size_t n : {2u, 8u, 64u, 1024u}) {
    const auto g = md::reduction_dag(n);
    // Work: n leaves + n-1 combines.
    EXPECT_DOUBLE_EQ(g.total_work(), static_cast<double>(2 * n - 1));
    // Span: leaf + ceil(log2 n) combines.
    const double expected_span = 1.0 + std::ceil(std::log2(n));
    EXPECT_DOUBLE_EQ(g.span(), expected_span);
  }
}

TEST(TaskGraph, ForkJoinSortDagParallelismIsLogarithmic) {
  // Parallel merge sort with sequential merges: work Θ(n log n),
  // span Θ(n) => parallelism Θ(log n). Doubling n should grow parallelism
  // by roughly a constant, not double it.
  const auto g1 = md::fork_join_sort_dag(1 << 10, 1);
  const auto g2 = md::fork_join_sort_dag(1 << 14, 1);
  EXPECT_GT(g2.parallelism(), g1.parallelism());
  EXPECT_LT(g2.parallelism(), 2.5 * g1.parallelism());
  // Span is dominated by the top merge: close to 2n for n >> 1.
  EXPECT_GT(g2.span(), static_cast<double>(1 << 14));
}

// ----------------------------------------------------------------- pram ---

TEST(Pram, StepReadsOldMemory) {
  md::Pram pram(4, md::PramMode::kErew);
  pram.poke(0, 10);
  pram.poke(1, 20);
  // Swap cells 0 and 1 in ONE synchronous step — only possible because
  // reads see the pre-step image.
  std::vector<md::PramRead> reads = {{0, 0}, {1, 1}};
  std::vector<md::PramWrite> writes = {{0, 1, 10}, {1, 0, 20}};
  const auto vals = pram.step(reads, writes);
  EXPECT_EQ(vals[0], 10);
  EXPECT_EQ(vals[1], 20);
  EXPECT_EQ(pram.get(0), 20);
  EXPECT_EQ(pram.get(1), 10);
  EXPECT_EQ(pram.steps_executed(), 1);
}

TEST(Pram, ErewRejectsConcurrentReads) {
  md::Pram pram(4, md::PramMode::kErew);
  std::vector<md::PramRead> reads = {{0, 2}, {1, 2}};
  EXPECT_THROW((void)pram.step(reads, {}), md::PramConflictError);
}

TEST(Pram, CrewAllowsConcurrentReadsRejectsConcurrentWrites) {
  md::Pram pram(4, md::PramMode::kCrew);
  std::vector<md::PramRead> reads = {{0, 2}, {1, 2}, {2, 2}};
  EXPECT_NO_THROW((void)pram.step(reads, {}));
  std::vector<md::PramWrite> writes = {{0, 3, 1}, {1, 3, 1}};
  EXPECT_THROW((void)pram.step({}, writes), md::PramConflictError);
}

TEST(Pram, CrcwCommonRequiresAgreement) {
  md::Pram pram(4, md::PramMode::kCrcwCommon);
  std::vector<md::PramWrite> agree = {{0, 0, 7}, {1, 0, 7}};
  EXPECT_NO_THROW((void)pram.step({}, agree));
  EXPECT_EQ(pram.get(0), 7);
  std::vector<md::PramWrite> disagree = {{0, 1, 7}, {1, 1, 8}};
  EXPECT_THROW((void)pram.step({}, disagree), md::PramConflictError);
}

TEST(Pram, CrcwArbitraryLowestProcWins) {
  md::Pram pram(4, md::PramMode::kCrcwArbitrary);
  std::vector<md::PramWrite> writes = {{3, 0, 30}, {1, 0, 10}, {2, 0, 20}};
  (void)pram.step({}, writes);
  EXPECT_EQ(pram.get(0), 10);
}

TEST(Pram, SumReductionCorrectAndLogSteps) {
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u, 128u}) {
    md::Pram pram(n, md::PramMode::kErew);
    std::int64_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      pram.poke(i, static_cast<std::int64_t>(i * 3 + 1));
      expect += static_cast<std::int64_t>(i * 3 + 1);
    }
    EXPECT_EQ(md::pram_sum(pram, n), expect) << "n=" << n;
    // Two synchronous steps per doubling round.
    const int rounds =
        n <= 1 ? 0 : static_cast<int>(std::ceil(std::log2(n)));
    EXPECT_LE(pram.steps_executed(), 2 * rounds + 1) << "n=" << n;
  }
}

TEST(Pram, PrefixSumCorrectOnCrew) {
  const std::size_t n = 64;
  md::Pram pram(n, md::PramMode::kCrew);
  for (std::size_t i = 0; i < n; ++i)
    pram.poke(i, static_cast<std::int64_t>(i + 1));
  md::pram_prefix_sum(pram, n);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(i + 1);
    EXPECT_EQ(pram.get(i), acc) << "i=" << i;
  }
}

TEST(Pram, PrefixSumNeedsConcurrentReads) {
  // The same algorithm on an EREW machine must be rejected — an executable
  // proof that Hillis-Steele is a CREW algorithm.
  md::Pram pram(8, md::PramMode::kErew);
  for (std::size_t i = 0; i < 8; ++i) pram.poke(i, 1);
  EXPECT_THROW(md::pram_prefix_sum(pram, 8), md::PramConflictError);
}

TEST(Pram, CrcwMaxConstantSteps) {
  for (std::size_t n : {1u, 4u, 9u, 32u}) {
    md::Pram pram(2 * n, md::PramMode::kCrcwCommon);
    std::int64_t expect = std::numeric_limits<std::int64_t>::min();
    std::mt19937 rng(static_cast<unsigned>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<std::int64_t>(rng() % 1000);
      pram.poke(i, v);
      expect = std::max(expect, v);
    }
    EXPECT_EQ(md::pram_max_crcw(pram, n), expect) << "n=" << n;
    // Constant number of synchronous steps, independent of n.
    EXPECT_LE(pram.steps_executed(), 6) << "n=" << n;
  }
}

TEST(Pram, MaxWithDuplicateMaximaStillCommon) {
  md::Pram pram(8, md::PramMode::kCrcwCommon);
  for (std::size_t i = 0; i < 4; ++i) pram.poke(i, 42);  // all equal
  EXPECT_EQ(md::pram_max_crcw(pram, 4), 42);
}

TEST(Pram, BoundsChecking) {
  md::Pram pram(4, md::PramMode::kCrew);
  EXPECT_THROW((void)pram.get(10), std::out_of_range);
  EXPECT_THROW(pram.poke(4, 1), std::out_of_range);
  std::vector<md::PramRead> bad = {{0, 99}};
  EXPECT_THROW((void)pram.step(bad, {}), std::out_of_range);
  EXPECT_THROW(md::Pram(0, md::PramMode::kCrew), std::invalid_argument);
}

// ------------------------------------------------------------------ bsp ---

TEST(Bsp, CostFormula) {
  md::BspMachine m{4, 2.0, 50.0};
  md::BspProgram prog;
  prog.add_superstep(100.0, 10, "compute");
  prog.add_superstep(20.0, 5, "exchange");
  // cost = (100 + 2*10 + 50) + (20 + 2*5 + 50) = 170 + 80.
  EXPECT_DOUBLE_EQ(prog.cost(m), 250.0);
  const auto b = prog.breakdown(m);
  EXPECT_DOUBLE_EQ(b.compute, 120.0);
  EXPECT_DOUBLE_EQ(b.communicate, 30.0);
  EXPECT_DOUBLE_EQ(b.synchronize, 100.0);
}

TEST(Bsp, TreeBroadcastBeatsFlatWhenGIsLarge) {
  // Expensive communication, cheap barriers: the tree's h=1 supersteps win.
  md::BspMachine expensive_comm{64, 100.0, 1.0};
  const auto tree = md::bsp_broadcast(64, /*tree=*/true);
  const auto flat = md::bsp_broadcast(64, /*tree=*/false);
  EXPECT_LT(tree.cost(expensive_comm), flat.cost(expensive_comm));

  // Cheap communication, very expensive barriers: flat's single superstep
  // wins — the crossover CS41 asks students to find.
  md::BspMachine expensive_sync{64, 1.0, 10000.0};
  EXPECT_LT(flat.cost(expensive_sync), tree.cost(expensive_sync));
}

TEST(Bsp, BroadcastStructure) {
  EXPECT_EQ(md::bsp_broadcast(8, true).supersteps(), 3u);   // log2(8)
  EXPECT_EQ(md::bsp_broadcast(9, true).supersteps(), 4u);   // ceil(log2 9)
  EXPECT_EQ(md::bsp_broadcast(8, false).supersteps(), 1u);
  EXPECT_EQ(md::bsp_broadcast(1, false).step(0).h_relation, 0u);
}

TEST(Bsp, ReduceLocalWorkShrinksWithP) {
  const auto r4 = md::bsp_reduce(1 << 20, 4);
  const auto r16 = md::bsp_reduce(1 << 20, 16);
  // More processors: less local work per superstep...
  EXPECT_LT(r16.step(0).max_local_work, r4.step(0).max_local_work);
  // ...but more combine supersteps.
  EXPECT_GT(r16.supersteps(), r4.supersteps());
}

TEST(Bsp, SampleSortHasFivePhases) {
  const auto prog = md::bsp_sample_sort(1 << 16, 8);
  EXPECT_EQ(prog.supersteps(), 5u);
  md::BspMachine m{8, 1.0, 100.0};
  EXPECT_GT(prog.cost(m), 0.0);
  // Local sort dominates for large n / small p.
  EXPECT_GT(prog.step(0).max_local_work, prog.step(2).max_local_work);
}

TEST(Bsp, Validation) {
  md::BspProgram prog;
  EXPECT_THROW(prog.add_superstep(-1.0, 0), std::invalid_argument);
  prog.add_superstep(1.0, 1);
  EXPECT_THROW((void)prog.step(5), std::out_of_range);
  EXPECT_THROW((void)md::bsp_broadcast(0, true), std::invalid_argument);
  md::BspMachine bad{0, 1.0, 1.0};
  EXPECT_THROW((void)prog.cost(bad), std::invalid_argument);
}

// ---------------------------------------------------------- list ranking ---

TEST(Pram, ListRankingOnChain) {
  // A simple chain 0 -> 1 -> 2 -> ... -> n-1 (tail points to itself):
  // rank of node i is n-1-i.
  const std::size_t n = 16;
  md::Pram pram(2 * n, md::PramMode::kCrew);
  for (std::size_t i = 0; i < n; ++i)
    pram.poke(i, static_cast<std::int64_t>(i + 1 < n ? i + 1 : i));
  md::pram_list_rank(pram, n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(pram.get(n + i), static_cast<std::int64_t>(n - 1 - i))
        << "node " << i;
}

TEST(Pram, ListRankingOnScrambledList) {
  // A permuted linked list: build successor pointers from a random
  // ordering and check ranks against the list walk.
  const std::size_t n = 32;
  std::mt19937 rng(8);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  md::Pram pram(2 * n, md::PramMode::kCrew);
  for (std::size_t k = 0; k + 1 < n; ++k)
    pram.poke(order[k], static_cast<std::int64_t>(order[k + 1]));
  pram.poke(order[n - 1], static_cast<std::int64_t>(order[n - 1]));  // tail

  md::pram_list_rank(pram, n);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_EQ(pram.get(n + order[k]),
              static_cast<std::int64_t>(n - 1 - k))
        << "position " << k;
}

TEST(Pram, ListRankingLogarithmicSteps) {
  const std::size_t n = 64;
  md::Pram pram(2 * n, md::PramMode::kCrew);
  for (std::size_t i = 0; i < n; ++i)
    pram.poke(i, static_cast<std::int64_t>(i + 1 < n ? i + 1 : i));
  md::pram_list_rank(pram, n);
  // 4 synchronous steps per jumping round + 2 init steps; rounds = log2 n.
  EXPECT_LE(pram.steps_executed(), 4 * 6 + 2);
}

TEST(Pram, ListRankingNeedsCrew) {
  md::Pram pram(16, md::PramMode::kErew);
  for (std::size_t i = 0; i < 8; ++i)
    pram.poke(i, static_cast<std::int64_t>(i + 1 < 8 ? i + 1 : i));
  // Near the tail many nodes share a successor: concurrent reads.
  EXPECT_THROW(md::pram_list_rank(pram, 8), md::PramConflictError);
}
