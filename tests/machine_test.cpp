// Tests for pdc::machine — data representation, bit vectors, digital logic,
// and the gate-level ALU checked exhaustively against a software oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>

#include "pdc/machine/alu.hpp"
#include "pdc/machine/bits.hpp"
#include "pdc/machine/bitvector.hpp"
#include "pdc/machine/logic.hpp"

namespace pm = pdc::machine;

// ----------------------------------------------------------------- bits ---

TEST(Bits, BinaryRendering) {
  EXPECT_EQ(pm::to_binary(10, 8), "00001010");
  EXPECT_EQ(pm::to_binary(0, 1), "0");
  EXPECT_EQ(pm::to_binary(1, 1), "1");
  EXPECT_EQ(pm::to_binary(0xFF, 4), "1111");  // truncates to low bits
  EXPECT_THROW((void)pm::to_binary(0, 0), std::invalid_argument);
  EXPECT_THROW((void)pm::to_binary(0, 65), std::invalid_argument);
}

TEST(Bits, HexRendering) {
  EXPECT_EQ(pm::to_hex(255, 16), "00ff");
  EXPECT_EQ(pm::to_hex(0xDEADBEEF, 32), "deadbeef");
  EXPECT_THROW((void)pm::to_hex(1, 6), std::invalid_argument);
}

TEST(Bits, ParseBinary) {
  EXPECT_EQ(pm::parse_binary("1010"), 10u);
  EXPECT_EQ(pm::parse_binary("0b1010"), 10u);
  EXPECT_EQ(pm::parse_binary("0"), 0u);
  EXPECT_THROW((void)pm::parse_binary(""), std::invalid_argument);
  EXPECT_THROW((void)pm::parse_binary("012"), std::invalid_argument);
}

TEST(Bits, ParseHex) {
  EXPECT_EQ(pm::parse_hex("ff"), 255u);
  EXPECT_EQ(pm::parse_hex("0xFF"), 255u);
  EXPECT_EQ(pm::parse_hex("DeadBeef"), 0xDEADBEEFu);
  EXPECT_THROW((void)pm::parse_hex("xyz"), std::invalid_argument);
  EXPECT_THROW((void)pm::parse_hex(""), std::invalid_argument);
}

TEST(Bits, ConversionRoundTrip) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng();
    EXPECT_EQ(pm::parse_binary(pm::to_binary(v, 64)), v);
    EXPECT_EQ(pm::parse_hex(pm::to_hex(v, 64)), v);
  }
}

TEST(Bits, TwosComplementKnownValues) {
  EXPECT_EQ(pm::decode_twos_complement(0b1111, 4), -1);
  EXPECT_EQ(pm::decode_twos_complement(0b1000, 4), -8);
  EXPECT_EQ(pm::decode_twos_complement(0b0111, 4), 7);
  EXPECT_EQ(pm::encode_twos_complement(-1, 4), 0b1111u);
  EXPECT_EQ(pm::encode_twos_complement(-8, 4), 0b1000u);
  EXPECT_THROW((void)pm::encode_twos_complement(8, 4), std::out_of_range);
  EXPECT_THROW((void)pm::encode_twos_complement(-9, 4), std::out_of_range);
}

TEST(Bits, SignedRange) {
  EXPECT_EQ(pm::min_signed(8), -128);
  EXPECT_EQ(pm::max_signed(8), 127);
  EXPECT_TRUE(pm::fits_twos_complement(-128, 8));
  EXPECT_FALSE(pm::fits_twos_complement(128, 8));
}

// Two's complement encode/decode must round-trip at every width.
class TwosComplementWidths : public ::testing::TestWithParam<int> {};

TEST_P(TwosComplementWidths, RoundTripsEveryValueOrSample) {
  const int w = GetParam();
  if (w <= 12) {
    for (std::int64_t v = pm::min_signed(w); v <= pm::max_signed(w); ++v) {
      EXPECT_EQ(pm::decode_twos_complement(pm::encode_twos_complement(v, w), w),
                v);
    }
  } else {
    std::mt19937_64 rng(42);
    for (int i = 0; i < 500; ++i) {
      const auto bits = rng() & pm::low_mask(w);
      const std::int64_t v = pm::decode_twos_complement(bits, w);
      EXPECT_EQ(pm::encode_twos_complement(v, w), bits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TwosComplementWidths,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 32, 63, 64));

TEST(Bits, SignExtension) {
  EXPECT_EQ(pm::sign_extend(0b1010, 4, 8), 0b11111010u);
  EXPECT_EQ(pm::sign_extend(0b0101, 4, 8), 0b00000101u);
  EXPECT_EQ(pm::sign_extend(0xFF, 8, 64), ~std::uint64_t{0});
  EXPECT_THROW((void)pm::sign_extend(0, 8, 4), std::invalid_argument);
}

TEST(Bits, SignExtensionPreservesValue) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto bits = rng() & pm::low_mask(16);
    const std::int64_t v = pm::decode_twos_complement(bits, 16);
    EXPECT_EQ(pm::decode_twos_complement(pm::sign_extend(bits, 16, 40), 40), v);
  }
}

TEST(Bits, AddFlagsUnsignedOverflow) {
  const auto r = pm::add_with_flags(0xFF, 0x01, 8);
  EXPECT_EQ(r.bits, 0u);
  EXPECT_TRUE(r.carry_out);
  EXPECT_FALSE(r.signed_overflow);  // -1 + 1 = 0: fine in signed terms
  EXPECT_TRUE(r.zero);
}

TEST(Bits, AddFlagsSignedOverflow) {
  const auto r = pm::add_with_flags(0x7F, 0x01, 8);  // 127 + 1
  EXPECT_EQ(r.bits, 0x80u);
  EXPECT_FALSE(r.carry_out);
  EXPECT_TRUE(r.signed_overflow);
  EXPECT_TRUE(r.negative);
}

TEST(Bits, SubFlags) {
  const auto r = pm::sub_with_flags(5, 7, 8);
  EXPECT_EQ(pm::decode_twos_complement(r.bits, 8), -2);
  EXPECT_TRUE(r.negative);
  const auto r2 = pm::sub_with_flags(7, 7, 8);
  EXPECT_TRUE(r2.zero);
}

TEST(Bits, AddMatchesNativeArithmetic) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng() & 0xFFFF;
    const std::uint64_t b = rng() & 0xFFFF;
    const auto r = pm::add_with_flags(a, b, 16);
    EXPECT_EQ(r.bits, (a + b) & 0xFFFF);
    EXPECT_EQ(r.carry_out, (a + b) > 0xFFFF);
    const std::int64_t sa = pm::decode_twos_complement(a, 16);
    const std::int64_t sb = pm::decode_twos_complement(b, 16);
    EXPECT_EQ(r.signed_overflow, !pm::fits_twos_complement(sa + sb, 16));
  }
}

// ------------------------------------------------------------ bitvector ---

TEST(BitVector, BasicSetTestReset) {
  pm::BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_TRUE(bv.none());
  bv.set(0);
  bv.set(63);
  bv.set(64);
  bv.set(99);
  EXPECT_EQ(bv.count(), 4u);
  EXPECT_TRUE(bv.test(63));
  EXPECT_TRUE(bv.test(64));
  bv.reset(63);
  EXPECT_FALSE(bv.test(63));
  EXPECT_EQ(bv.count(), 3u);
  EXPECT_THROW((void)bv.test(100), std::out_of_range);
  EXPECT_THROW(bv.set(100), std::out_of_range);
}

TEST(BitVector, FlipAndAssign) {
  pm::BitVector bv(10);
  bv.flip(3);
  EXPECT_TRUE(bv.test(3));
  bv.flip(3);
  EXPECT_FALSE(bv.test(3));
  bv.assign(5, true);
  EXPECT_TRUE(bv.test(5));
  bv.assign(5, false);
  EXPECT_FALSE(bv.test(5));
}

TEST(BitVector, SetAllRespectsPadding) {
  pm::BitVector bv(70);
  bv.set_all();
  EXPECT_EQ(bv.count(), 70u);
  const pm::BitVector complement = ~bv;
  EXPECT_EQ(complement.count(), 0u);
}

TEST(BitVector, SetAlgebraDeMorgan) {
  pm::BitVector a(130), b(130);
  for (std::size_t i = 0; i < 130; i += 3) a.set(i);
  for (std::size_t i = 0; i < 130; i += 5) b.set(i);
  // De Morgan: ~(a | b) == ~a & ~b.
  EXPECT_EQ(~(a | b), (~a & ~b));
  // a ^ b == (a | b) & ~(a & b).
  EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
}

TEST(BitVector, SubsetAndIndices) {
  pm::BitVector a(50), b(50);
  a.set(10);
  a.set(20);
  b.set(10);
  b.set(20);
  b.set(30);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_EQ(b.to_indices(), (std::vector<std::size_t>{10, 20, 30}));
}

TEST(BitVector, FindFirstNext) {
  pm::BitVector bv(200);
  EXPECT_EQ(bv.find_first(), 200u);
  bv.set(5);
  bv.set(64);
  bv.set(199);
  EXPECT_EQ(bv.find_first(), 5u);
  EXPECT_EQ(bv.find_next(5), 64u);
  EXPECT_EQ(bv.find_next(64), 199u);
  EXPECT_EQ(bv.find_next(199), 200u);
}

TEST(BitVector, SizeMismatchThrows) {
  pm::BitVector a(10), b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
}

// ---------------------------------------------------------------- logic ---

TEST(Logic, GateTruthTables) {
  pm::Circuit c;
  const auto a = c.input("a");
  const auto b = c.input("b");
  const auto w_and = c.and_gate(a, b);
  const auto w_or = c.or_gate(a, b);
  const auto w_xor = c.xor_gate(a, b);
  const auto w_nand = c.nand_gate(a, b);
  const auto w_nor = c.nor_gate(a, b);
  const auto w_not = c.not_gate(a);

  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      const auto vals = c.evaluate({av != 0, bv != 0});
      EXPECT_EQ(vals[w_and.id], (av && bv));
      EXPECT_EQ(vals[w_or.id], (av || bv));
      EXPECT_EQ(vals[w_xor.id], (av != bv));
      EXPECT_EQ(vals[w_nand.id], !(av && bv));
      EXPECT_EQ(vals[w_nor.id], !(av || bv));
      EXPECT_EQ(vals[w_not.id], !av);
    }
  }
}

TEST(Logic, ConstantsAndCounts) {
  pm::Circuit c;
  const auto one = c.constant(true);
  const auto zero = c.constant(false);
  const auto w = c.or_gate(one, zero);
  EXPECT_TRUE(c.evaluate_wire(w, {}));
  EXPECT_EQ(c.gate_count(), 1u);
  EXPECT_EQ(c.wire_count(), 3u);
  EXPECT_EQ(c.input_count(), 0u);
}

TEST(Logic, DepthIsLongestPath) {
  pm::Circuit c;
  const auto a = c.input("a");
  const auto n1 = c.not_gate(a);
  const auto n2 = c.not_gate(n1);
  const auto w = c.and_gate(a, n2);  // depth = max(0, 2) + 1 = 3
  EXPECT_EQ(c.depth(w), 3);
  EXPECT_EQ(c.depth(a), 0);
}

TEST(Logic, WrongInputCountThrows) {
  pm::Circuit c;
  (void)c.input("a");
  EXPECT_THROW((void)c.evaluate({}), std::invalid_argument);
  EXPECT_THROW((void)c.evaluate({true, false}), std::invalid_argument);
}

TEST(Logic, BusHelpers) {
  pm::Circuit c;
  const auto bus = pm::input_bus(c, "x", 8);
  ASSERT_EQ(bus.size(), 8u);
  std::vector<bool> in(8, false);
  in[0] = true;  // bit 0
  in[3] = true;  // bit 3
  const auto vals = c.evaluate(in);
  EXPECT_EQ(pm::read_bus(bus, vals), 0b1001u);
}

// ------------------------------------------------------------------ alu ---

TEST(Alu, HalfAndFullAdderTruthTables) {
  pm::Circuit c;
  const auto a = c.input("a");
  const auto b = c.input("b");
  const auto cin = c.input("cin");
  const auto fa = pm::full_adder(c, a, b, cin);
  for (int av = 0; av <= 1; ++av)
    for (int bv = 0; bv <= 1; ++bv)
      for (int cv = 0; cv <= 1; ++cv) {
        const auto vals = c.evaluate({av != 0, bv != 0, cv != 0});
        const int total = av + bv + cv;
        EXPECT_EQ(vals[fa.sum.id], total % 2 == 1);
        EXPECT_EQ(vals[fa.carry.id], total >= 2);
      }
}

TEST(Alu, RippleCarryAdderExhaustive4Bit) {
  pm::Circuit c;
  const auto a = pm::input_bus(c, "a", 4);
  const auto b = pm::input_bus(c, "b", 4);
  const auto cin = c.constant(false);
  const auto r = pm::ripple_carry_adder(c, a, b, cin);
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back((av >> i) & 1);
      for (int i = 0; i < 4; ++i) in.push_back((bv >> i) & 1);
      const auto vals = c.evaluate(in);
      EXPECT_EQ(pm::read_bus(r.sum, vals), (av + bv) & 0xF);
      EXPECT_EQ(vals[r.carry_out.id], (av + bv) > 0xF);
      const auto oracle = pm::add_with_flags(av, bv, 4);
      EXPECT_EQ(vals[r.overflow.id], oracle.signed_overflow);
    }
  }
}

// Gate-level ALU vs software oracle, for every op at several widths.
class AluSweep
    : public ::testing::TestWithParam<std::tuple<pm::AluOp, int>> {};

TEST_P(AluSweep, MatchesOracle) {
  const auto [op, width] = GetParam();
  pm::Circuit c;
  const auto a = pm::input_bus(c, "a", width);
  const auto b = pm::input_bus(c, "b", width);
  const auto opbus = pm::input_bus(c, "op", 3);
  const auto alu = pm::build_alu(c, a, b, opbus);

  std::mt19937_64 rng(static_cast<unsigned>(width) * 31 +
                      static_cast<unsigned>(op));
  const int trials = width <= 4 ? 256 : 64;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t av, bv;
    if (width <= 4) {  // exhaustive
      av = static_cast<std::uint64_t>(t) & pm::low_mask(width);
      bv = (static_cast<std::uint64_t>(t) >> width) & pm::low_mask(width);
    } else {
      av = rng() & pm::low_mask(width);
      bv = rng() & pm::low_mask(width);
    }
    std::vector<bool> in;
    for (int i = 0; i < width; ++i) in.push_back((av >> i) & 1);
    for (int i = 0; i < width; ++i) in.push_back((bv >> i) & 1);
    const auto opcode = static_cast<unsigned>(op);
    for (int i = 0; i < 3; ++i) in.push_back((opcode >> i) & 1);

    const auto vals = c.evaluate(in);
    const std::uint64_t expect = pm::alu_reference(op, av, bv, width);
    EXPECT_EQ(pm::read_bus(alu.result, vals), expect)
        << "op=" << static_cast<int>(op) << " a=" << av << " b=" << bv;
    EXPECT_EQ(vals[alu.zero.id], expect == 0);
    EXPECT_EQ(vals[alu.negative.id], (expect >> (width - 1)) & 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndWidths, AluSweep,
    ::testing::Combine(::testing::Values(pm::AluOp::kAdd, pm::AluOp::kSub,
                                         pm::AluOp::kAnd, pm::AluOp::kOr,
                                         pm::AluOp::kXor, pm::AluOp::kNor,
                                         pm::AluOp::kPassA, pm::AluOp::kLess),
                       ::testing::Values(4, 8, 16)));

TEST(Alu, GateCountGrowsLinearlyWithWidth) {
  auto gates_for = [](int w) {
    pm::Circuit c;
    const auto a = pm::input_bus(c, "a", w);
    const auto b = pm::input_bus(c, "b", w);
    const auto op = pm::input_bus(c, "op", 3);
    (void)pm::build_alu(c, a, b, op);
    return c.gate_count();
  };
  const auto g4 = gates_for(4);
  const auto g8 = gates_for(8);
  const auto g16 = gates_for(16);
  EXPECT_GT(g8, g4);
  EXPECT_GT(g16, g8);
  // Linear-ish growth: doubling width should not quadruple gates.
  EXPECT_LT(g16, 3 * g8);
}

TEST(Alu, RejectsBadBuses) {
  pm::Circuit c;
  const auto a = pm::input_bus(c, "a", 4);
  const auto b = pm::input_bus(c, "b", 3);
  const auto op = pm::input_bus(c, "op", 3);
  EXPECT_THROW((void)pm::build_alu(c, a, b, op), std::invalid_argument);
  const auto b4 = pm::input_bus(c, "b4", 4);
  const auto op2 = pm::input_bus(c, "op2", 2);
  EXPECT_THROW((void)pm::build_alu(c, a, b4, op2), std::invalid_argument);
}
