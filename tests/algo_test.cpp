// Tests for pdc::algo — sorting (property sweeps across sizes,
// distributions and thread counts), selection vs oracle, matrix kernels
// vs the naive reference, and prefix applications.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <tuple>

#include "pdc/algo/matrix.hpp"
#include "pdc/algo/prefix.hpp"
#include "pdc/algo/selection.hpp"
#include "pdc/algo/sort.hpp"

namespace pa = pdc::algo;

namespace {

enum class Dist { kRandom, kSorted, kReversed, kConstant, kFewDistinct };

std::vector<std::int64_t> make_input(std::size_t n, Dist dist,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int64_t> v(n);
  switch (dist) {
    case Dist::kRandom:
      for (auto& x : v) x = static_cast<std::int64_t>(rng()) % 1000000;
      break;
    case Dist::kSorted:
      std::iota(v.begin(), v.end(), -static_cast<std::int64_t>(n) / 2);
      break;
    case Dist::kReversed:
      std::iota(v.begin(), v.end(), 0);
      std::reverse(v.begin(), v.end());
      break;
    case Dist::kConstant:
      std::fill(v.begin(), v.end(), 7);
      break;
    case Dist::kFewDistinct:
      for (auto& x : v) x = static_cast<std::int64_t>(rng() % 5);
      break;
  }
  return v;
}

}  // namespace

// ------------------------------------------------------------------ sort ---

class SortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Dist, int>> {};

TEST_P(SortSweep, ParallelMergeSortSortsAPermutation) {
  const auto [n, dist, threads] = GetParam();
  const auto input = make_input(n, dist, n * 31 + threads);
  auto expect = input;
  std::sort(expect.begin(), expect.end());

  auto seq = input;
  pa::merge_sort(seq);
  EXPECT_EQ(seq, expect);

  auto par = input;
  pa::parallel_merge_sort(par, threads);
  EXPECT_EQ(par, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesDistsThreads, SortSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 100, 4096,
                                                      50000),
                       ::testing::Values(Dist::kRandom, Dist::kSorted,
                                         Dist::kReversed, Dist::kConstant,
                                         Dist::kFewDistinct),
                       ::testing::Values(1, 2, 4)));

TEST(Sort, StableForEqualKeys) {
  // Sort pairs by first component only; second must keep insertion order.
  std::vector<std::pair<int, int>> v;
  for (int i = 0; i < 100; ++i) v.emplace_back(i % 3, i);
  pa::merge_sort(v, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].first == v[i].first) {
      EXPECT_LT(v[i - 1].second, v[i].second);
    }
  }
}

TEST(Sort, CustomComparatorDescending) {
  auto v = make_input(1000, Dist::kRandom, 3);
  pa::parallel_merge_sort(v, 4, std::greater<std::int64_t>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(),
                             std::greater<std::int64_t>{}));
}

// ------------------------------------------------------------- selection ---

class SelectionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Dist>> {};

TEST_P(SelectionSweep, AllThreeAlgorithmsAgreeWithOracle) {
  const auto [n, dist] = GetParam();
  const auto input = make_input(n, dist, n + 17);
  auto sorted = input;
  std::sort(sorted.begin(), sorted.end());

  for (std::size_t k :
       {std::size_t{0}, n / 4, n / 2, n - 1}) {
    const auto expect = sorted[k];
    EXPECT_EQ(pa::sort_select(input, k), expect) << "k=" << k;
    EXPECT_EQ(pa::quickselect(input, k), expect) << "k=" << k;
    EXPECT_EQ(pa::median_of_medians(input, k), expect) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDists, SelectionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 100, 10001),
                       ::testing::Values(Dist::kRandom, Dist::kSorted,
                                         Dist::kReversed, Dist::kConstant,
                                         Dist::kFewDistinct)));

TEST(Selection, RejectsBadInput) {
  const std::vector<std::int64_t> empty;
  EXPECT_THROW((void)pa::quickselect(empty, 0), std::invalid_argument);
  const std::vector<std::int64_t> v = {1, 2, 3};
  EXPECT_THROW((void)pa::quickselect(v, 3), std::out_of_range);
  EXPECT_THROW((void)pa::median_of_medians(v, 5), std::out_of_range);
  EXPECT_THROW((void)pa::sort_select(v, 99), std::out_of_range);
}

// ---------------------------------------------------------------- matrix ---

TEST(Matrix, BasicAccessAndBounds) {
  pa::Matrix m(3, 4);
  m.at(2, 3) = 1.5;
  EXPECT_DOUBLE_EQ(m.at(2, 3), 1.5);
  EXPECT_THROW((void)m.at(3, 0), std::out_of_range);
  EXPECT_THROW(pa::Matrix(0, 4), std::invalid_argument);
}

TEST(Matrix, KnownProduct) {
  pa::Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const auto c = pa::matmul_naive(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

class MatmulSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulSweep, AllKernelsMatchNaive) {
  const std::size_t n = GetParam();
  pa::Matrix a(n, n), b(n, n);
  a.fill_pattern(1);
  b.fill_pattern(2);
  const auto reference = pa::matmul_naive(a, b);
  EXPECT_LT(pa::matmul_ikj(a, b).max_diff(reference), 1e-9);
  EXPECT_LT(pa::matmul_blocked(a, b, 8).max_diff(reference), 1e-9);
  EXPECT_LT(pa::matmul_blocked(a, b).max_diff(reference), 1e-9);
  for (int threads : {1, 2, 4})
    EXPECT_LT(pa::matmul_parallel(a, b, threads).max_diff(reference), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSweep,
                         ::testing::Values(1, 7, 16, 33, 64));

TEST(Matrix, RectangularMultiply) {
  pa::Matrix a(3, 5), b(5, 2);
  a.fill_pattern(3);
  b.fill_pattern(4);
  const auto c = pa::matmul_ikj(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_LT(c.max_diff(pa::matmul_naive(a, b)), 1e-9);
}

TEST(Matrix, DimensionMismatchThrows) {
  pa::Matrix a(3, 4), b(3, 4);
  EXPECT_THROW((void)pa::matmul_naive(a, b), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  pa::Matrix m(5, 9);
  m.fill_pattern(8);
  const auto t = pa::transpose(m);
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_DOUBLE_EQ(t.at(3, 4), m.at(4, 3));
  EXPECT_EQ(pa::transpose(t), m);
}

TEST(Matrix, TransposedMultiplyIdentity) {
  // (A*B)^T == B^T * A^T.
  pa::Matrix a(6, 6), b(6, 6);
  a.fill_pattern(5);
  b.fill_pattern(6);
  const auto left = pa::transpose(pa::matmul_ikj(a, b));
  const auto right = pa::matmul_ikj(pa::transpose(b), pa::transpose(a));
  EXPECT_LT(left.max_diff(right), 1e-9);
}

// ---------------------------------------------------------------- prefix ---

class PackSweep : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PackSweep, MatchesCopyIf) {
  const auto [n, threads] = GetParam();
  const auto input = make_input(n, Dist::kRandom, n + 3);
  auto is_even = [](std::int64_t x) { return x % 2 == 0; };

  std::vector<std::int64_t> expect;
  std::copy_if(input.begin(), input.end(), std::back_inserter(expect),
               is_even);

  const auto got = pa::parallel_pack<std::int64_t>(input, is_even, threads);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThreads, PackSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 100, 10000),
                       ::testing::Values(1, 2, 4)));

TEST(Pack, AllAndNone) {
  const std::vector<std::int64_t> v = {1, 2, 3, 4};
  EXPECT_EQ((pa::parallel_pack<std::int64_t>(
                v, [](std::int64_t) { return true; }, 2)),
            v);
  EXPECT_TRUE((pa::parallel_pack<std::int64_t>(
                   v, [](std::int64_t) { return false; }, 2))
                  .empty());
}

TEST(Histogram, MatchesSequentialCount) {
  const auto input = make_input(50000, Dist::kRandom, 11);
  auto bin_of = [](std::int64_t x) {
    return static_cast<std::size_t>(((x % 16) + 16) % 16);
  };
  std::vector<std::uint64_t> expect(16, 0);
  for (auto x : input) ++expect[bin_of(x)];

  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ((pa::parallel_histogram<std::int64_t>(input, 16, bin_of,
                                                    threads)),
              expect)
        << "threads=" << threads;
  }
}

TEST(Histogram, RejectsBadArgs) {
  const std::vector<std::int64_t> v = {1};
  auto bin_of = [](std::int64_t) { return std::size_t{0}; };
  EXPECT_THROW(
      (void)pa::parallel_histogram<std::int64_t>(v, 0, bin_of, 2),
      std::invalid_argument);
  EXPECT_THROW(
      (void)pa::parallel_histogram<std::int64_t>(v, 1, bin_of, 0),
      std::invalid_argument);
}

// ------------------------------------------------------------ sample sort ---

#include "pdc/algo/sample_sort.hpp"

class SampleSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Dist, int>> {};

TEST_P(SampleSortSweep, SortsAndIsPermutation) {
  const auto [n, dist, ranks] = GetParam();
  const auto input = make_input(n, dist, n * 7 + ranks);
  auto expect = input;
  std::sort(expect.begin(), expect.end());
  const auto got = pa::mp_sample_sort(input, ranks);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesDistsRanks, SampleSortSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 10, 1000, 20000),
                       ::testing::Values(Dist::kRandom, Dist::kSorted,
                                         Dist::kReversed, Dist::kConstant,
                                         Dist::kFewDistinct),
                       ::testing::Values(1, 2, 4, 7)));

TEST(SampleSort, ReportsTraffic) {
  const auto input = make_input(10000, Dist::kRandom, 1);
  std::uint64_t messages = 0, words = 0;
  const auto got = pa::mp_sample_sort(input, 4, &messages, &words);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_GT(messages, 0u);
  // Every key crosses the network at most once in the partition
  // exchange, plus samples/pivots/sizes: comfortably under 2N words.
  EXPECT_LT(words, 2 * input.size());
}

TEST(SampleSort, RejectsBadRanks) {
  std::vector<std::int64_t> v = {1, 2, 3};
  EXPECT_THROW((void)pa::mp_sample_sort(v, 0), std::invalid_argument);
}

// ------------------------------------------------------------------- join ---

#include "pdc/algo/join.hpp"

namespace {

std::vector<pa::Row> make_relation(std::size_t n, std::int64_t key_range,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<pa::Row> rel(n);
  for (std::size_t i = 0; i < n; ++i)
    rel[i] = {static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(
                  key_range)),
              static_cast<std::int64_t>(i)};
  return rel;
}

std::vector<pa::JoinedRow> sorted_copy(std::vector<pa::JoinedRow> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

TEST(Join, KnownSmallCase) {
  const std::vector<pa::Row> r = {{1, 10}, {2, 20}, {2, 21}, {3, 30}};
  const std::vector<pa::Row> s = {{2, 200}, {3, 300}, {4, 400}};
  const auto out = sorted_copy(pa::hash_join(r, s));
  // key 2: 2 left rows x 1 right row; key 3: 1 x 1 = 3 tuples.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (pa::JoinedRow{2, 20, 200}));
  EXPECT_EQ(out[1], (pa::JoinedRow{2, 21, 200}));
  EXPECT_EQ(out[2], (pa::JoinedRow{3, 30, 300}));
}

TEST(Join, EmptyRelations) {
  const std::vector<pa::Row> r = {{1, 10}};
  const std::vector<pa::Row> empty;
  EXPECT_TRUE(pa::hash_join(r, empty).empty());
  EXPECT_TRUE(pa::hash_join(empty, r).empty());
  EXPECT_TRUE(pa::parallel_hash_join(empty, empty, 2).empty());
}

class JoinSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t,
                                                 int>> {};

TEST_P(JoinSweep, AllJoinsAgreeWithNestedLoopOracle) {
  const auto [n, key_range, threads] = GetParam();
  const auto r = make_relation(n, key_range, n + 1);
  const auto s = make_relation(n / 2 + 1, key_range, n + 2);

  const auto oracle = sorted_copy(pa::nested_loop_join(r, s));
  EXPECT_EQ(sorted_copy(pa::hash_join(r, s)), oracle);
  EXPECT_EQ(sorted_copy(pa::parallel_hash_join(r, s, threads)), oracle);
}

INSTANTIATE_TEST_SUITE_P(
    SizesKeysThreads, JoinSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 10, 500, 2000),
                       ::testing::Values<std::int64_t>(2, 50, 100000),
                       ::testing::Values(1, 2, 4)));

TEST(Join, SkewedKeysStillCorrect) {
  // All rows share one key: quadratic output, heavy single partition.
  const std::size_t n = 200;
  std::vector<pa::Row> r(n), s(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = {7, static_cast<std::int64_t>(i)};
    s[i] = {7, static_cast<std::int64_t>(1000 + i)};
  }
  const auto out = pa::parallel_hash_join(r, s, 4);
  EXPECT_EQ(out.size(), n * n);
}

TEST(Join, RejectsBadThreadCount) {
  const std::vector<pa::Row> r = {{1, 1}};
  EXPECT_THROW((void)pa::parallel_hash_join(r, r, 0),
               std::invalid_argument);
}
