// Tests for pdc::core — thread pool, SPMD team, parallel_for schedules,
// reduce/scan, and fork-join helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/core/reduce_scan.hpp"
#include "pdc/core/task_group.hpp"
#include "pdc/core/team.hpp"
#include "pdc/core/team_pool.hpp"
#include "pdc/core/thread_pool.hpp"
#include "pdc/core/work_steal.hpp"

namespace pc = pdc::core;

// ----------------------------------------------------------- thread pool ---

TEST(ThreadPool, RunsSubmittedTasks) {
  pc::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  pc::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) pool.post([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPool, PropagatesExceptionThroughFuture) {
  pc::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  pc::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&pc::ThreadPool::global(), &pc::ThreadPool::global());
  EXPECT_GE(pc::ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, PostedTaskThrowRethrownFromWaitIdle) {
  // Regression: a throwing post()ed task used to escape into the jthread
  // and std::terminate the process.
  pc::ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("posted boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool stays usable and idle afterwards.
  std::atomic<int> done{0};
  pool.post([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, FirstOfManyErrorsWins) {
  pc::ThreadPool pool(1);  // single worker: FIFO order is deterministic
  pool.post([] { throw std::runtime_error("first"); });
  pool.post([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

// ----------------------------------------------------------------- team ---

TEST(Team, RunsEveryRankExactlyOnce) {
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  pc::Team::run(4, [&](pc::TeamContext& ctx) {
    EXPECT_EQ(ctx.size(), 4);
    hits[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, SingleThreadRunsInline) {
  pc::Team::run(1, [](pc::TeamContext& ctx) {
    EXPECT_EQ(ctx.rank(), 0);
    EXPECT_EQ(ctx.size(), 1);
    ctx.barrier();  // must not hang with one party
  });
}

TEST(Team, RejectsBadSize) {
  EXPECT_THROW(pc::Team::run(0, [](pc::TeamContext&) {}),
               std::invalid_argument);
}

TEST(Team, BarrierSeparatesPhases) {
  constexpr int kThreads = 3;
  std::atomic<int> phase1{0};
  std::atomic<int> violations{0};
  pc::Team::run(kThreads, [&](pc::TeamContext& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != kThreads) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Team, PropagatesMemberException) {
  EXPECT_THROW(pc::Team::run(2,
                             [](pc::TeamContext& ctx) {
                               if (ctx.rank() == 1)
                                 throw std::runtime_error("rank1 failed");
                             }),
               std::runtime_error);
}

TEST(Team, ThrowBeforeBarrierReleasesWaitingTeammates) {
  // Regression: rank 1 throws before the barrier the other ranks are
  // blocked in; the thrower never arrives, and the team used to hang
  // forever. The broken-barrier protocol must unwind everyone and
  // rethrow the original exception.
  for (bool reuse_pool : {true, false}) {
    std::atomic<int> unwound{0};
    try {
      pc::Team::run(4, pc::TeamOptions{.reuse_pool = reuse_pool},
                    [&](pc::TeamContext& ctx) {
                      if (ctx.rank() == 1)
                        throw std::runtime_error("rank1 died pre-barrier");
                      ctx.barrier();  // would deadlock without the fix
                      unwound.fetch_add(1);  // must never run
                    });
      FAIL() << "expected rethrow (reuse_pool=" << reuse_pool << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank1 died pre-barrier");
    }
    EXPECT_EQ(unwound.load(), 0);
  }
}

TEST(Team, ThrowAcrossMultiplePhasesStillUnwinds) {
  // Failure in a late phase: earlier barriers complete normally, then the
  // broken-barrier release has to reach ranks already waiting in phase 2.
  for (bool reuse_pool : {true, false}) {
    std::atomic<int> phase1{0};
    try {
      pc::Team::run(3, pc::TeamOptions{.reuse_pool = reuse_pool},
                    [&](pc::TeamContext& ctx) {
                      phase1.fetch_add(1);
                      ctx.barrier();
                      if (ctx.rank() == 2)
                        throw std::logic_error("phase-2 failure");
                      ctx.barrier();
                    });
      FAIL() << "expected rethrow (reuse_pool=" << reuse_pool << ")";
    } catch (const std::logic_error&) {
    }
    EXPECT_EQ(phase1.load(), 3);  // phase 1 ran to completion everywhere
  }
}

TEST(Team, LowestFailingRankWins) {
  for (bool reuse_pool : {true, false}) {
    try {
      pc::Team::run(4, pc::TeamOptions{.reuse_pool = reuse_pool},
                    [](pc::TeamContext& ctx) {
                      // Every rank throws; rank 0's exception must win.
                      throw std::runtime_error(
                          "rank" + std::to_string(ctx.rank()));
                    });
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank0");
    }
  }
}

// ------------------------------------------------ pooled vs forked team ---

TEST(TeamPool, PooledAndForkedRegionsAreEquivalent) {
  // Same ranks, same block_range partition, barrier reusable across
  // phases — on both execution paths.
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 1013;
  for (bool reuse_pool : {true, false}) {
    std::vector<int> rank_seen(kThreads, 0);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(kThreads);
    std::atomic<int> phase_a{0};
    std::atomic<int> violations{0};
    pc::Team::run(kThreads, pc::TeamOptions{.reuse_pool = reuse_pool},
                  [&](pc::TeamContext& ctx) {
                    const auto r = static_cast<std::size_t>(ctx.rank());
                    EXPECT_EQ(ctx.size(), kThreads);
                    rank_seen[r] += 1;
                    ranges[r] = ctx.block_range(0, kN);
                    phase_a.fetch_add(1);
                    ctx.barrier();  // phase 1
                    if (phase_a.load() != kThreads) violations.fetch_add(1);
                    ctx.barrier();  // phase 2: same barrier, reused
                    if (phase_a.load() != kThreads) violations.fetch_add(1);
                  });
    EXPECT_EQ(violations.load(), 0) << "reuse_pool=" << reuse_pool;
    std::size_t expected_lo = 0;
    for (int r = 0; r < kThreads; ++r) {
      EXPECT_EQ(rank_seen[static_cast<std::size_t>(r)], 1);
      const auto [lo, hi] = ranges[static_cast<std::size_t>(r)];
      EXPECT_EQ(lo, expected_lo) << "reuse_pool=" << reuse_pool;
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, kN);
  }
}

TEST(TeamPool, BackToBackRegionsReuseWorkers) {
  // After the first region, the pool must not grow: every subsequent
  // region reuses the parked workers.
  pc::Team::run(4, [](pc::TeamContext&) {});
  const std::size_t after_first = pc::TeamPool::instance().workers_started();
  EXPECT_GE(after_first, 3u);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> hits{0};
    pc::Team::run(4, [&](pc::TeamContext& ctx) {
      ctx.barrier();
      hits.fetch_add(1 + ctx.rank());
    });
    ASSERT_EQ(hits.load(), 10);
  }
  EXPECT_EQ(pc::TeamPool::instance().workers_started(), after_first);
}

TEST(TeamPool, NestedAndConcurrentRegionsFallBackSafely) {
  // A region launched from inside a region cannot reuse the busy pool;
  // it must fall back to forking, not deadlock.
  std::atomic<int> inner_total{0};
  pc::Team::run(2, [&](pc::TeamContext&) {
    pc::Team::run(2, [&](pc::TeamContext& inner) {
      inner.barrier();
      inner_total.fetch_add(1 + inner.rank());
    });
  });
  EXPECT_EQ(inner_total.load(), 6);  // two inner teams of ranks {0,1}

  // Concurrent top-level regions from independent threads.
  std::atomic<long> sum{0};
  {
    std::vector<std::jthread> drivers;
    for (int d = 0; d < 3; ++d) {
      drivers.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          pc::Team::run(3, [&](pc::TeamContext& ctx) {
            ctx.barrier();
            sum.fetch_add(ctx.rank());
          });
        }
      });
    }
  }
  EXPECT_EQ(sum.load(), 3L * 20L * 3L);  // 3 drivers x 20 regions x (0+1+2)
}

TEST(Team, BlockRangePartitionIsExactCover) {
  // Property: block ranges across ranks tile [begin, end) exactly.
  for (int p = 1; p <= 7; ++p) {
    for (std::size_t n : {0u, 1u, 5u, 64u, 100u, 101u}) {
      std::vector<std::pair<std::size_t, std::size_t>> ranges(
          static_cast<std::size_t>(p));
      pc::Team::run(p, [&](pc::TeamContext& ctx) {
        ranges[static_cast<std::size_t>(ctx.rank())] =
            ctx.block_range(10, 10 + n);
      });
      std::size_t expected_lo = 10;
      std::size_t total = 0;
      for (int r = 0; r < p; ++r) {
        const auto [lo, hi] = ranges[static_cast<std::size_t>(r)];
        EXPECT_EQ(lo, expected_lo) << "p=" << p << " n=" << n << " r=" << r;
        EXPECT_GE(hi, lo);
        total += hi - lo;
        expected_lo = hi;
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(expected_lo, 10 + n);
    }
  }
}

// ----------------------------------------------------------- parallel_for ---

class ParallelForSweep
    : public ::testing::TestWithParam<std::tuple<pc::Schedule, int>> {};

TEST_P(ParallelForSweep, TouchesEveryIndexExactlyOnce) {
  const auto [sched, threads] = GetParam();
  constexpr std::size_t kN = 10007;  // prime: exercises uneven splits
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t = 0;
  pc::ForOptions opt;
  opt.threads = threads;
  opt.schedule = sched;
  opt.chunk = 13;
  pc::parallel_for(0, kN, opt,
                   [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndThreads, ParallelForSweep,
    ::testing::Combine(::testing::Values(pc::Schedule::kStatic,
                                         pc::Schedule::kDynamic,
                                         pc::Schedule::kGuided,
                                         pc::Schedule::kStealing),
                       ::testing::Values(1, 2, 3, 4, 8)));

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  pc::parallel_for(5, 5, 4, [&](std::size_t) { ++calls; });
  pc::parallel_for(9, 5, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RejectsBadOptions) {
  pc::ForOptions opt;
  opt.threads = 0;
  EXPECT_THROW(pc::parallel_for(0, 10, opt, [](std::size_t) {}),
               std::invalid_argument);
  opt.threads = 2;
  opt.chunk = 0;
  EXPECT_THROW(pc::parallel_for(0, 10, opt, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(ParallelFor, ThrowingBodyReachesCaller) {
  // Acceptance: a throwing loop body must neither terminate the process
  // (pool-worker escape) nor hang it (teammates stuck at a barrier) — on
  // every schedule and both execution paths.
  for (auto sched : {pc::Schedule::kStatic, pc::Schedule::kDynamic,
                     pc::Schedule::kGuided, pc::Schedule::kStealing}) {
    for (bool reuse_pool : {true, false}) {
      pc::ForOptions opt;
      opt.threads = 4;
      opt.schedule = sched;
      opt.chunk = 8;
      opt.reuse_pool = reuse_pool;
      EXPECT_THROW(pc::parallel_for(0, 1000, opt,
                                    [](std::size_t i) {
                                      if (i == 537)
                                        throw std::runtime_error("body boom");
                                    }),
                   std::runtime_error);
    }
  }
}

TEST(ParallelFor, NonZeroBeginHandled) {
  std::atomic<long> sum{0};
  pc::ForOptions opt;
  opt.threads = 3;
  opt.schedule = pc::Schedule::kDynamic;
  opt.chunk = 7;
  pc::parallel_for(100, 200, opt,
                   [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  long expect = 0;
  for (long i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ParallelFor, DynamicExtremeRangeDoesNotWrap) {
  // Regression: the old kDynamic claim loop fetch_add'ed the shared
  // counter past `end` (one overshoot per thread), so a range ending
  // near SIZE_MAX wrapped the counter back into the loop and re-executed
  // indices. The CAS-clamped loop never advances the counter past `end`.
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kBegin = SIZE_MAX - kN;  // end == SIZE_MAX
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t = 0;
  pc::ForOptions opt;
  opt.threads = 4;
  opt.schedule = pc::Schedule::kDynamic;
  opt.chunk = 64;  // does not divide kN: the last chunk must clamp
  pc::parallel_for(kBegin, SIZE_MAX, opt,
                   [&](std::size_t i) { touched[i - kBegin].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

// ------------------------------------------------- scheduling equivalence ---

// All four schedules are *only* execution orders: on the same seeded
// skew workload they must produce bit-identical output to the sequential
// loop. (Stencil bit-identity under tile stealing is asserted in
// stencil_test.)
TEST(SchedulingEquivalence, AllSchedulesMatchSequential) {
  constexpr std::size_t kN = 4096;
  std::mt19937_64 rng(20260809);
  std::vector<std::uint64_t> input(kN);
  for (auto& x : input) x = rng();

  // Deterministic per-index work whose cost is triangular in i (the
  // skewed shape the ablation bench prices): index i hashes i times.
  const auto work = [&](std::size_t i) {
    std::uint64_t h = input[i];
    for (std::size_t k = 0; k <= i % 97; ++k)
      h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    return h;
  };

  std::vector<std::uint64_t> expect(kN);
  for (std::size_t i = 0; i < kN; ++i) expect[i] = work(i);

  for (auto sched : {pc::Schedule::kStatic, pc::Schedule::kDynamic,
                     pc::Schedule::kGuided, pc::Schedule::kStealing}) {
    for (int threads : {2, 3, 8}) {
      std::vector<std::uint64_t> out(kN, 0);
      pc::ForOptions opt;
      opt.threads = threads;
      opt.schedule = sched;
      opt.chunk = 16;
      pc::parallel_for(0, kN, opt, [&](std::size_t i) { out[i] = work(i); });
      ASSERT_EQ(out, expect) << "schedule " << static_cast<int>(sched)
                             << " threads " << threads;
    }
  }
}

// ---------------------------------------------------- work-stealing deque ---

TEST(WorkStealingDeque, OwnerPopIsLifo) {
  pc::WorkStealingDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  EXPECT_EQ(d.size(), 10u);
  for (int i = 9; i >= 0; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_TRUE(d.empty());
}

TEST(WorkStealingDeque, StealIsFifo) {
  pc::WorkStealingDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // oldest first
  }
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  pc::WorkStealingDeque<std::size_t> d(8);
  constexpr std::size_t kN = 10000;  // forces many doublings
  for (std::size_t i = 0; i < kN; ++i) d.push(i);
  EXPECT_EQ(d.size(), kN);
  // Mixed drain: steal the old half, pop the young half.
  for (std::size_t i = 0; i < kN / 2; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  for (std::size_t i = kN; i-- > kN / 2;) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(d.empty());
}

TEST(WorkStealingDeque, MultiWordItemsSurviveRoundTrip) {
  struct Fat {
    std::uint64_t a, b, c;
  };
  pc::WorkStealingDeque<Fat> d;
  for (std::uint64_t i = 0; i < 100; ++i) d.push({i, ~i, i * i});
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->a, i);
    EXPECT_EQ(v->b, ~i);
    EXPECT_EQ(v->c, i * i);
  }
}

// TSan target: one owner pushing and popping against N concurrent
// thieves; every pushed item must be returned by exactly one pop() or
// steal(), none lost, none duplicated.
TEST(WorkStealingDeque, StressExactlyOnceUnderConcurrentSteals) {
  constexpr int kThieves = 3;
  constexpr std::size_t kItems = 50000;
  pc::WorkStealingDeque<std::size_t> d(16);  // small: exercises growth
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s = 0;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = d.steal()) seen[*v].fetch_add(1);
      }
      while (auto v = d.steal()) seen[*v].fetch_add(1);
    });
  }

  // Owner: push in bursts, pop between bursts (mixes the last-element
  // CAS race into the schedule).
  std::size_t next = 0;
  while (next < kItems) {
    const std::size_t burst = std::min<std::size_t>(64, kItems - next);
    for (std::size_t i = 0; i < burst; ++i) d.push(next++);
    for (int i = 0; i < 16; ++i) {
      if (auto v = d.pop())
        seen[*v].fetch_add(1);
      else
        break;
    }
  }
  while (auto v = d.pop()) seen[*v].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (std::size_t i = 0; i < kItems; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
}

// ------------------------------------------------------------ reduce/scan ---

TEST(Reduce, SumMatchesSequential) {
  std::vector<long> xs(100000);
  std::iota(xs.begin(), xs.end(), 1);
  const long expect = std::accumulate(xs.begin(), xs.end(), 0L);
  for (int p : {1, 2, 4, 8}) {
    EXPECT_EQ(pc::parallel_reduce<long>(xs, 0L, p), expect) << "p=" << p;
  }
}

TEST(Reduce, MaxWithCustomOp) {
  std::mt19937 rng(5);
  std::vector<int> xs(50000);
  for (auto& x : xs) x = static_cast<int>(rng() % 1000000);
  const int expect = *std::max_element(xs.begin(), xs.end());
  const int got = pc::parallel_reduce<int>(
      xs, std::numeric_limits<int>::min(), 4,
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(got, expect);
}

TEST(Reduce, EmptyReturnsIdentity) {
  std::vector<int> empty;
  EXPECT_EQ(pc::parallel_reduce<int>(empty, 42, 4), 42);
}

TEST(Reduce, TransformReduceDotProduct) {
  struct Pair {
    double a, b;
  };
  std::vector<Pair> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = {static_cast<double>(i % 10), static_cast<double>((i + 1) % 7)};
  double expect = 0;
  for (const auto& p : xs) expect += p.a * p.b;
  const double got = pc::parallel_transform_reduce<Pair, double>(
      xs, 0.0, 4, [](const Pair& p) { return p.a * p.b; });
  EXPECT_DOUBLE_EQ(got, expect);
}

class ScanSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScanSweep, InclusiveMatchesSequential) {
  const auto [threads, size_exp] = GetParam();
  const std::size_t n = std::size_t{1} << size_exp;
  std::mt19937 rng(99);
  std::vector<long> in(n);
  for (auto& x : in) x = static_cast<long>(rng() % 100) - 50;

  std::vector<long> expect(n);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += in[i];
    expect[i] = acc;
  }

  std::vector<long> out(n);
  pc::parallel_inclusive_scan<long>(in, out, 0L, threads);
  EXPECT_EQ(out, expect);
}

TEST_P(ScanSweep, ExclusiveMatchesSequential) {
  const auto [threads, size_exp] = GetParam();
  const std::size_t n = std::size_t{1} << size_exp;
  std::mt19937 rng(7);
  std::vector<long> in(n);
  for (auto& x : in) x = static_cast<long>(rng() % 100);

  std::vector<long> expect(n);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc += in[i];
  }

  std::vector<long> out(n);
  pc::parallel_exclusive_scan<long>(in, out, 0L, threads);
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndSizes, ScanSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 4, 10, 16)));

TEST(Scan, InclusiveInPlaceAllowed) {
  std::vector<long> data = {1, 2, 3, 4, 5, 6, 7, 8};
  pc::parallel_inclusive_scan<long>(data, data, 0L, 2);
  EXPECT_EQ(data, (std::vector<long>{1, 3, 6, 10, 15, 21, 28, 36}));
}

TEST(Scan, ExclusiveInPlaceRejected) {
  std::vector<long> data = {1, 2, 3};
  EXPECT_THROW(pc::parallel_exclusive_scan<long>(data, data, 0L, 2),
               std::invalid_argument);
}

TEST(Scan, SizeMismatchThrows) {
  std::vector<long> in = {1, 2, 3};
  std::vector<long> out(2);
  EXPECT_THROW(pc::parallel_inclusive_scan<long>(in, out, 0L, 2),
               std::invalid_argument);
}

TEST(Scan, NonCommutativeOpStillCorrect) {
  // String concatenation is associative but not commutative: a scan that
  // reorders operands would corrupt the result.
  std::vector<std::string> in;
  for (int i = 0; i < 100; ++i) in.push_back(std::string(1, static_cast<char>('a' + i % 26)));
  std::vector<std::string> out(in.size());
  pc::parallel_inclusive_scan<std::string>(in, out, std::string{}, 4);
  std::string acc;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    EXPECT_EQ(out[i], acc);
  }
}

// ------------------------------------------------------------ task group ---

TEST(TaskGroup, WaitsForAllSpawnedTasks) {
  pc::ThreadPool pool(3);
  pc::TaskGroup group(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) group.spawn([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(TaskGroup, RethrowsFirstError) {
  pc::ThreadPool pool(2);
  pc::TaskGroup group(&pool);
  group.spawn([] { throw std::runtime_error("task failed"); });
  group.spawn([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, ReusableAfterWait) {
  pc::ThreadPool pool(2);
  pc::TaskGroup group(&pool);
  std::atomic<int> done{0};
  group.spawn([&] { done.fetch_add(1); });
  group.wait();
  group.spawn([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 2);
}

// ------------------------------------------------------------- fork-join ---

TEST(ForkJoin, RunsBothBranches) {
  std::atomic<int> a{0}, b{0};
  pc::invoke_parallel([&] { a = 1; }, [&] { b = 2; }, 1);
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(ForkJoin, DepthZeroRunsInline) {
  const auto main_id = std::this_thread::get_id();
  std::thread::id f_id, g_id;
  pc::invoke_parallel([&] { f_id = std::this_thread::get_id(); },
                      [&] { g_id = std::this_thread::get_id(); }, 0);
  EXPECT_EQ(f_id, main_id);
  EXPECT_EQ(g_id, main_id);
}

TEST(ForkJoin, PropagatesForkedException) {
  EXPECT_THROW(
      pc::invoke_parallel([] { throw std::logic_error("left"); }, [] {}, 2),
      std::logic_error);
}

TEST(ForkJoin, DepthForThreads) {
  EXPECT_EQ(pc::fork_depth_for_threads(1), 0);
  EXPECT_EQ(pc::fork_depth_for_threads(2), 1);
  EXPECT_EQ(pc::fork_depth_for_threads(3), 2);
  EXPECT_EQ(pc::fork_depth_for_threads(4), 2);
  EXPECT_EQ(pc::fork_depth_for_threads(8), 3);
}

// --------------------------------------------------------------- pipeline ---

#include "pdc/core/pipeline.hpp"

TEST(Pipeline, SingleStageIdentityOrder) {
  pc::Pipeline<int> pipe({[](int x) { return x; }}, 2);
  std::vector<int> in = {5, 3, 8, 1};
  EXPECT_EQ(pipe.run(in), in);
}

TEST(Pipeline, StagesApplyInOrder) {
  pc::Pipeline<int> pipe(
      {[](int x) { return x + 1; }, [](int x) { return x * 10; }});
  EXPECT_EQ(pipe.run({0, 1, 2}), (std::vector<int>{10, 20, 30}));
}

TEST(Pipeline, TinyBufferStillCompletes) {
  // Capacity 1 forces full backpressure through every stage.
  pc::Pipeline<int> pipe(
      {[](int x) { return x + 1; }, [](int x) { return x + 1; },
       [](int x) { return x + 1; }},
      1);
  std::vector<int> in(200);
  std::iota(in.begin(), in.end(), 0);
  const auto out = pipe.run(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) + 3);
}

TEST(Pipeline, EmptyInputAndReuse) {
  pc::Pipeline<int> pipe({[](int x) { return x; }});
  EXPECT_TRUE(pipe.run({}).empty());
  EXPECT_EQ(pipe.run({42}), (std::vector<int>{42}));  // reusable
}

TEST(Pipeline, RejectsBadConfig) {
  EXPECT_THROW(pc::Pipeline<int>({}, 4), std::invalid_argument);
  EXPECT_THROW(pc::Pipeline<int>({[](int x) { return x; }}, 0),
               std::invalid_argument);
}

TEST(ThreadPool, ConcurrentSubmittersStress) {
  pc::ThreadPool pool(3);
  std::atomic<long> sum{0};
  {
    std::vector<std::jthread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 500; ++i) pool.post([&] { sum.fetch_add(1); });
      });
    }
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 2000);
}

TEST(Team, ManySmallTeamsBackToBack) {
  // Regression guard for team setup/teardown races.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pc::Team::run(3, [&](pc::TeamContext& ctx) {
      ctx.barrier();
      hits.fetch_add(1 + ctx.rank());
    });
    ASSERT_EQ(hits.load(), 6);
  }
}
