// Unit and property tests for pdc::perf — statistics, speedup laws,
// scaling tables, and the strong-scaling study runner.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "pdc/perf/laws.hpp"
#include "pdc/perf/scalability.hpp"
#include "pdc/perf/stats.hpp"
#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace pp = pdc::perf;

// ---------------------------------------------------------------- stats ---

TEST(Stats, EmptyInputGivesZeroSummary) {
  const pp::Summary s = pp::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleSample) {
  const std::vector<double> xs = {42.0};
  const pp::Summary s = pp::summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Stats, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const pp::Summary s = pp::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, MedianOddCount) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(pp::summarize(xs).median, 2.0);
}

TEST(Stats, RunningMatchesBatch) {
  const std::vector<double> xs = {1.5, -2.0, 8.25, 0.0, 3.75, 3.75};
  pp::RunningStats rs;
  for (double x : xs) rs.push(x);
  const pp::Summary s = pp::summarize(xs);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(Stats, MergeEqualsSequential) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  pp::RunningStats a, b, all;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 4 ? a : b).push(xs[i]);
    all.push(xs[i]);
  }
  const pp::RunningStats m = pp::merge(a, b);
  EXPECT_EQ(m.count(), all.count());
  EXPECT_NEAR(m.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(m.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), all.min());
  EXPECT_DOUBLE_EQ(m.max(), all.max());
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  pp::RunningStats a, empty;
  a.push(3.0);
  a.push(5.0);
  const pp::RunningStats m = pp::merge(a, empty);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
}

// ----------------------------------------------------------------- laws ---

TEST(Laws, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(pp::speedup(10.0, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(pp::efficiency(10.0, 2.5, 8), 0.5);
  EXPECT_THROW((void)pp::speedup(1.0, 0.0), std::invalid_argument);
}

TEST(Laws, AmdahlKnownPoints) {
  // f=0: perfect speedup.
  EXPECT_DOUBLE_EQ(pp::amdahl_speedup(0.0, 16), 16.0);
  // f=1: no speedup.
  EXPECT_DOUBLE_EQ(pp::amdahl_speedup(1.0, 16), 1.0);
  // f=0.5, p=2 -> 1/(0.5+0.25) = 4/3.
  EXPECT_NEAR(pp::amdahl_speedup(0.5, 2), 4.0 / 3.0, 1e-12);
  EXPECT_THROW((void)pp::amdahl_speedup(-0.1, 2), std::invalid_argument);
  EXPECT_THROW((void)pp::amdahl_speedup(0.5, 0), std::invalid_argument);
}

TEST(Laws, AmdahlMonotoneInPAndBounded) {
  const double f = 0.1;
  double prev = 0.0;
  for (int p = 1; p <= 1024; p *= 2) {
    const double s = pp::amdahl_speedup(f, p);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, pp::amdahl_limit(f) + 1e-9);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(pp::amdahl_limit(0.1), 10.0);
  EXPECT_TRUE(std::isinf(pp::amdahl_limit(0.0)));
}

TEST(Laws, GustafsonKnownPoints) {
  EXPECT_DOUBLE_EQ(pp::gustafson_speedup(0.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(pp::gustafson_speedup(1.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(pp::gustafson_speedup(0.5, 3), 2.0);
}

TEST(Laws, GustafsonExceedsAmdahlForSameFraction) {
  // Scaled speedup is always at least as optimistic.
  for (int p = 2; p <= 64; p *= 2)
    EXPECT_GE(pp::gustafson_speedup(0.2, p), pp::amdahl_speedup(0.2, p));
}

TEST(Laws, KarpFlattRecoversAmdahlFraction) {
  // If measured speedup follows Amdahl exactly, Karp-Flatt returns f.
  const double f = 0.07;
  for (int p : {2, 4, 8, 16}) {
    const double s = pp::amdahl_speedup(f, p);
    EXPECT_NEAR(pp::karp_flatt(s, p), f, 1e-12);
  }
  EXPECT_THROW((void)pp::karp_flatt(1.0, 1), std::invalid_argument);
}

TEST(Laws, ScalingTableUsesOneThreadBaseline) {
  const std::vector<int> threads = {1, 2, 4};
  const std::vector<double> secs = {8.0, 4.0, 2.5};
  const auto rows = pp::scaling_table(threads, secs);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].speedup, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rows[2].speedup, 3.2);
  EXPECT_TRUE(std::isnan(rows[0].karp_flatt));
  EXPECT_FALSE(std::isnan(rows[2].karp_flatt));
}

TEST(Laws, ScalingTableSizeMismatchThrows) {
  const std::vector<int> threads = {1, 2};
  const std::vector<double> secs = {1.0};
  EXPECT_THROW((void)pp::scaling_table(threads, secs), std::invalid_argument);
}

TEST(Laws, AmdahlFitRecoversFraction) {
  // Generate perfect Amdahl data and check the fit recovers f.
  const double f = 0.15;
  std::vector<int> threads = {1, 2, 4, 8, 16};
  std::vector<double> secs;
  for (int p : threads) secs.push_back(100.0 / pp::amdahl_speedup(f, p));
  const auto rows = pp::scaling_table(threads, secs);
  EXPECT_NEAR(pp::fit_amdahl_serial_fraction(rows), f, 1e-9);
}

// Parameterized sweep: the fit must recover any serial fraction.
class AmdahlFitSweep : public ::testing::TestWithParam<double> {};

TEST_P(AmdahlFitSweep, RoundTrips) {
  const double f = GetParam();
  std::vector<int> threads = {1, 2, 3, 4, 6, 8, 12, 16};
  std::vector<double> secs;
  for (int p : threads) secs.push_back(3.5 / pp::amdahl_speedup(f, p));
  const auto rows = pp::scaling_table(threads, secs);
  EXPECT_NEAR(pp::fit_amdahl_serial_fraction(rows), f, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SerialFractions, AmdahlFitSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.75, 1.0));

// ---------------------------------------------------------------- table ---

TEST(Table, AlignsAndCounts) {
  pp::Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", "y"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
  const std::string s = t.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsBadRow) {
  pp::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(pp::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pp::fmt_count(1500.0), "1.5K");
  EXPECT_EQ(pp::fmt_count(2500000.0), "2.5M");
  EXPECT_EQ(pp::fmt_count(7.0), "7");
}

// ---------------------------------------------------------------- timer ---

TEST(Timer, MeasuresSleep) {
  pp::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.elapsed_seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, RestartResets) {
  pp::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.restart();
  EXPECT_LT(t.elapsed_seconds(), 0.010);
}

TEST(Timer, BestOfClampsNonPositiveRepsToOne) {
  // Regression: reps <= 0 used to skip the loop and report 0.0 without
  // ever invoking fn. It must measure exactly one rep instead.
  for (int reps : {0, -3}) {
    int calls = 0;
    const double t = pp::time_best_of(reps, [&] {
      ++calls;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    EXPECT_EQ(calls, 1) << "reps=" << reps;
    EXPECT_GT(t, 0.0) << "reps=" << reps;
  }
}

TEST(Timer, BestOfIsMinimum) {
  int calls = 0;
  const double best = pp::time_best_of(3, [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * calls));
  });
  EXPECT_EQ(calls, 3);
  EXPECT_LT(best, 0.010);  // the 2ms first call should be the min
}

// ----------------------------------------------------------- scalability ---

TEST(Scalability, StudyProducesOnePointPerThreadCount) {
  pp::StudyConfig cfg;
  cfg.thread_counts = {1, 2};
  cfg.repetitions = 1;
  cfg.warmup = false;
  const auto result = pp::run_strong_scaling(cfg, [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].threads, 1);
  EXPECT_EQ(result.points[1].threads, 2);
  EXPECT_GT(result.points[0].seconds, 0.0);
  const std::string table = result.to_table();
  EXPECT_NE(table.find("threads"), std::string::npos);
  EXPECT_NE(table.find("amdahl fit"), std::string::npos);
}

TEST(Scalability, RejectsBadConfig) {
  pp::StudyConfig cfg;
  cfg.thread_counts = {};
  EXPECT_THROW((void)pp::run_strong_scaling(cfg, [](int) {}),
               std::invalid_argument);
  cfg.thread_counts = {0};
  EXPECT_THROW((void)pp::run_strong_scaling(cfg, [](int) {}),
               std::invalid_argument);
  cfg.thread_counts = {1};
  cfg.repetitions = 0;
  EXPECT_THROW((void)pp::run_strong_scaling(cfg, [](int) {}),
               std::invalid_argument);
}

TEST(Scalability, WeakScalingReportsScaledEfficiency) {
  pp::StudyConfig cfg;
  cfg.thread_counts = {1, 2};
  cfg.repetitions = 1;
  cfg.warmup = false;
  // Perfectly flat workload: efficiency ~1 at every point.
  const auto result = pp::run_weak_scaling(cfg, [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].threads, 1);
  EXPECT_NEAR(result.points[0].scaled_efficiency, 1.0, 1e-9);
  EXPECT_GT(result.points[1].scaled_efficiency, 0.5);
  EXPECT_NE(result.to_table().find("scaled efficiency"), std::string::npos);
}

TEST(Scalability, WeakScalingRejectsBadConfig) {
  pp::StudyConfig cfg;
  cfg.thread_counts = {};
  EXPECT_THROW((void)pp::run_weak_scaling(cfg, [](int) {}),
               std::invalid_argument);
}
