// Tests for pdc::os — process lifecycle (fork/exec/wait/exit, zombies,
// orphans), signals, schedulers, pipes, and the shell.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "pdc/obs/obs.hpp"
#include "pdc/os/kernel.hpp"
#include "pdc/os/shell.hpp"

namespace po = pdc::os;

// ------------------------------------------------------------- lifecycle ---

TEST(Kernel, SpawnRunExit) {
  po::Kernel k;
  const po::Pid pid = k.spawn({po::Print("hello"), po::Exit(7)}, "hello");
  EXPECT_EQ(k.state(pid), po::ProcState::kReady);
  k.run();
  EXPECT_EQ(k.state(pid), po::ProcState::kReaped);  // init reaped it
  EXPECT_EQ(k.exit_status(pid), 7);
  ASSERT_EQ(k.console().size(), 1u);
  EXPECT_EQ(k.console()[0], (po::ConsoleLine{pid, "hello"}));
}

TEST(Kernel, FallingOffEndIsExitZero) {
  po::Kernel k;
  const po::Pid pid = k.spawn({po::Print("x")});
  k.run();
  EXPECT_EQ(k.exit_status(pid), 0);
}

TEST(Kernel, ForkCreatesChildWithCorrectParent) {
  po::Kernel k;
  const po::Pid parent = k.spawn({
      po::Fork({po::Exit(3)}),
      po::Wait(),
      po::Exit(0),
  });
  k.run();
  // Parent reaped exactly one child with status 3.
  ASSERT_EQ(k.waited(parent).size(), 1u);
  EXPECT_EQ(k.waited(parent)[0].second, 3);
  const po::Pid child = k.waited(parent)[0].first;
  EXPECT_EQ(k.parent(child), parent);
}

TEST(Kernel, ChildIsZombieUntilParentWaits) {
  po::Kernel k;
  // Parent computes for a long time before waiting.
  const po::Pid parent = k.spawn({
      po::Fork({po::Exit(9)}),
      po::Compute(50),
      po::Wait(),
      po::Exit(0),
  });
  // Tick until the child has exited but the parent hasn't waited yet.
  po::Pid child = 0;
  for (int i = 0; i < 20; ++i) {
    k.tick();
    const auto kids = k.children(parent);
    if (!kids.empty() && k.state(kids[0]) == po::ProcState::kZombie) {
      child = kids[0];
      break;
    }
  }
  ASSERT_NE(child, 0) << "child never became a zombie";
  EXPECT_EQ(k.state(child), po::ProcState::kZombie);
  k.run();
  EXPECT_EQ(k.state(child), po::ProcState::kReaped);
  ASSERT_EQ(k.waited(parent).size(), 1u);
  EXPECT_EQ(k.waited(parent)[0], (std::pair<po::Pid, int>{child, 9}));
}

TEST(Kernel, OrphanReparentedToInitAndAutoReaped) {
  po::Kernel k;
  // Parent forks a slow child then exits immediately without waiting.
  const po::Pid parent = k.spawn({
      po::Fork({po::Compute(30), po::Exit(5)}),
      po::Exit(0),
  });
  k.tick();  // fork
  const auto kids = k.children(parent);
  ASSERT_EQ(kids.size(), 1u);
  const po::Pid child = kids[0];
  k.run();
  // Child was reparented to init and auto-reaped on exit.
  EXPECT_EQ(k.parent(child), po::kInitPid);
  EXPECT_EQ(k.state(child), po::ProcState::kReaped);
  EXPECT_EQ(k.exit_status(child), 5);
}

TEST(Kernel, WaitWithNoChildrenReturnsImmediately) {
  po::Kernel k;
  const po::Pid pid = k.spawn({po::Wait(), po::Print("after"), po::Exit(0)});
  k.run();
  EXPECT_EQ(k.exit_status(pid), 0);
  ASSERT_EQ(k.console().size(), 1u);
  EXPECT_EQ(k.console()[0].text, "after");
}

TEST(Kernel, WaitBlocksUntilChildExits) {
  po::Kernel k;
  const po::Pid parent = k.spawn({
      po::Fork({po::Compute(20), po::Exit(1)}),
      po::Wait(),
      po::Print("reaped"),
      po::Exit(0),
  });
  k.tick();  // fork executes
  k.tick();  // parent hits Wait and blocks
  k.tick();
  EXPECT_EQ(k.state(parent), po::ProcState::kBlocked);
  k.run();
  EXPECT_EQ(k.console().back().text, "reaped");
}

TEST(Kernel, ExecReplacesProgram) {
  po::Kernel k;
  const po::Pid pid = k.spawn({
      po::Print("before"),
      po::Exec({po::Print("after"), po::Exit(2)}),
      po::Print("never"),  // unreachable: exec replaced the image
  });
  k.run();
  ASSERT_EQ(k.console().size(), 2u);
  EXPECT_EQ(k.console()[0].text, "before");
  EXPECT_EQ(k.console()[1].text, "after");
  EXPECT_EQ(k.exit_status(pid), 2);
}

TEST(Kernel, NestedForkTree) {
  po::Kernel k;
  // Parent forks a child which forks a grandchild; both wait.
  const po::Pid root = k.spawn({
      po::Fork({
          po::Fork({po::Exit(30)}),
          po::Wait(),
          po::Exit(20),
      }),
      po::Wait(),
      po::Exit(10),
  });
  k.run();
  EXPECT_EQ(k.exit_status(root), 10);
  ASSERT_EQ(k.waited(root).size(), 1u);
  EXPECT_EQ(k.waited(root)[0].second, 20);
}

// --------------------------------------------------------------- signals ---

TEST(Signals, SigKillTerminates) {
  po::Kernel k;
  const po::Pid pid = k.spawn({po::Compute(1000), po::Exit(0)});
  k.tick();
  k.kill(pid, po::Signal::kSigKill);
  k.run();
  EXPECT_EQ(k.state(pid), po::ProcState::kReaped);
  EXPECT_EQ(k.exit_status(pid),
            128 + static_cast<int>(po::Signal::kSigKill));
}

TEST(Signals, DefaultTermKillsIgnoreDoesNot) {
  po::Kernel k;
  const po::Pid victim = k.spawn({po::Compute(100), po::Exit(0)}, "victim");
  const po::Pid tough = k.spawn(
      {po::InstallHandler(po::Signal::kSigTerm, po::Disposition::kIgnore),
       po::Compute(100), po::Exit(42)},
      "tough");
  // Let both processes run past their first op (quantum interleaving), so
  // "tough" has installed its handler before the signal arrives.
  for (int i = 0; i < 6; ++i) k.tick();
  k.kill(victim, po::Signal::kSigTerm);
  k.kill(tough, po::Signal::kSigTerm);
  k.run();
  EXPECT_EQ(k.exit_status(victim),
            128 + static_cast<int>(po::Signal::kSigTerm));
  EXPECT_EQ(k.exit_status(tough), 42);  // ignored the signal
}

TEST(Signals, HandlerRecordsDelivery) {
  po::Kernel k;
  const po::Pid pid = k.spawn({
      po::InstallHandler(po::Signal::kSigUsr1, po::Disposition::kHandle),
      po::Compute(50),
      po::Exit(0),
  });
  k.tick();  // install
  k.kill(pid, po::Signal::kSigUsr1);
  k.kill(pid, po::Signal::kSigUsr1);
  k.run();
  EXPECT_EQ(k.handled_count(pid, po::Signal::kSigUsr1), 2);
  EXPECT_EQ(k.exit_status(pid), 0);  // survived
}

TEST(Signals, SigKillCannotBeCaughtOrIgnored) {
  po::Kernel k;
  const po::Pid pid = k.spawn({
      po::InstallHandler(po::Signal::kSigKill, po::Disposition::kIgnore),
      po::Compute(100),
      po::Exit(0),
  });
  k.tick();
  k.kill(pid, po::Signal::kSigKill);
  k.run();
  EXPECT_EQ(k.exit_status(pid),
            128 + static_cast<int>(po::Signal::kSigKill));
}

TEST(Signals, ParentGetsSigchldOnChildExit) {
  po::Kernel k;
  const po::Pid parent = k.spawn({
      po::InstallHandler(po::Signal::kSigChld, po::Disposition::kHandle),
      po::Fork({po::Exit(0)}),
      po::Compute(20),
      po::Wait(),
      po::Exit(0),
  });
  k.run();
  EXPECT_EQ(k.handled_count(parent, po::Signal::kSigChld), 1);
}

TEST(Signals, KillLastChildFromParent) {
  po::Kernel k;
  const po::Pid parent = k.spawn({
      po::Fork({po::Compute(1000), po::Exit(0)}),  // runs "forever"
      po::Kill(po::kLastChild, po::Signal::kSigKill),
      po::Wait(),
      po::Exit(0),
  });
  k.run(5000);
  ASSERT_EQ(k.waited(parent).size(), 1u);
  EXPECT_EQ(k.waited(parent)[0].second,
            128 + static_cast<int>(po::Signal::kSigKill));
}

TEST(Signals, SignalUnblocksWaitingProcessByKillingIt) {
  po::Kernel k;
  // Process waits on a child that never exits; SIGTERM ends the wait.
  const po::Pid pid = k.spawn({
      po::Fork({po::Compute(100000), po::Exit(0)}),
      po::Wait(),
      po::Exit(0),
  });
  k.tick();
  k.tick();
  EXPECT_EQ(k.state(pid), po::ProcState::kBlocked);
  k.kill(pid, po::Signal::kSigTerm);
  k.tick();
  EXPECT_TRUE(k.state(pid) == po::ProcState::kZombie ||
              k.state(pid) == po::ProcState::kReaped);
  // Clean up the runaway child.
  for (po::Pid c : k.children(po::kInitPid)) k.kill(c, po::Signal::kSigKill);
  k.run();
}

// ------------------------------------------------------------- scheduling ---

TEST(Scheduler, RoundRobinInterleavesByQuantum) {
  po::KernelConfig cfg;
  cfg.quantum = 2;
  po::Kernel k(cfg);
  const po::Pid a = k.spawn({po::Compute(4), po::Exit(0)}, "a");
  const po::Pid b = k.spawn({po::Compute(4), po::Exit(0)}, "b");
  k.run();
  // Trace: a a b b a a b b (then exits).
  const auto& trace = k.schedule_trace();
  ASSERT_GE(trace.size(), 8u);
  EXPECT_EQ(trace[0], a);
  EXPECT_EQ(trace[1], a);
  EXPECT_EQ(trace[2], b);
  EXPECT_EQ(trace[3], b);
  EXPECT_EQ(trace[4], a);
}

TEST(Scheduler, PriorityRunsHighFirst) {
  po::KernelConfig cfg;
  cfg.scheduler = po::SchedulerKind::kPriority;
  po::Kernel k(cfg);
  const po::Pid low = k.spawn({po::Compute(3), po::Exit(0)}, "low", 1);
  const po::Pid high = k.spawn({po::Compute(3), po::Exit(0)}, "high", 5);
  k.run();
  const auto& trace = k.schedule_trace();
  // High-priority process runs to completion before low ever runs.
  const auto first_low = std::find(trace.begin(), trace.end(), low);
  const auto last_high =
      std::find(trace.rbegin(), trace.rend(), high).base();
  ASSERT_NE(first_low, trace.end());
  EXPECT_GE(first_low, last_high - 1);
}

TEST(Scheduler, YieldGivesUpSlice) {
  po::KernelConfig cfg;
  cfg.quantum = 10;
  po::Kernel k(cfg);
  const po::Pid a = k.spawn({po::Yield(), po::Compute(2), po::Exit(0)}, "a");
  const po::Pid b = k.spawn({po::Compute(2), po::Exit(0)}, "b");
  k.run();
  const auto& trace = k.schedule_trace();
  // a runs once (the yield), then b gets the CPU despite a's big quantum.
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[0], a);
  EXPECT_EQ(trace[1], b);
}

// ----------------------------------------------------------------- pipes ---

TEST(Pipes, WriterToReaderDeliversLines) {
  po::Kernel k;
  const po::Pid writer = k.spawn({
      po::Print("one"),
      po::Print("two"),
      po::Exit(0),
  });
  const po::Pid reader = k.spawn({po::Read(), po::Read(), po::Exit(0)});
  const po::PipeId pipe = k.create_pipe();
  k.connect_stdout(writer, pipe);
  k.connect_stdin(reader, pipe);
  k.run();
  ASSERT_EQ(k.reads(reader).size(), 2u);
  EXPECT_EQ(k.reads(reader)[0], "one");
  EXPECT_EQ(k.reads(reader)[1], "two");
  EXPECT_TRUE(k.console().empty());  // nothing reached the console
}

TEST(Pipes, ReaderBlocksThenWakes) {
  po::Kernel k;
  const po::Pid reader = k.spawn({po::Read(), po::Exit(0)});
  const po::Pid writer = k.spawn({po::Compute(10), po::Print("late"),
                                  po::Exit(0)});
  const po::PipeId pipe = k.create_pipe();
  k.connect_stdout(writer, pipe);
  k.connect_stdin(reader, pipe);
  // Reader blocks first.
  k.tick();
  k.tick();
  EXPECT_EQ(k.state(reader), po::ProcState::kBlocked);
  k.run();
  ASSERT_EQ(k.reads(reader).size(), 1u);
  EXPECT_EQ(k.reads(reader)[0], "late");
}

TEST(Pipes, ReadAllStopsAtEof) {
  po::Kernel k;
  const po::Pid writer = k.spawn({
      po::Print("a"),
      po::Print("b"),
      po::Print("c"),
      po::Exit(0),
  });
  const po::Pid reader = k.spawn({po::ReadAll(), po::Exit(0)});
  const po::PipeId pipe = k.create_pipe();
  k.connect_stdout(writer, pipe);
  k.connect_stdin(reader, pipe);
  k.run();
  EXPECT_EQ(k.reads(reader).size(), 3u);
}

TEST(Pipes, ReadFromConsoleStdinIsEof) {
  po::Kernel k;
  const po::Pid pid = k.spawn({po::Read(), po::Print("done"), po::Exit(0)});
  k.run();
  EXPECT_TRUE(k.reads(pid).empty());
  EXPECT_EQ(k.console().back().text, "done");
}

// ----------------------------------------------------------------- shell ---

TEST(ShellParse, SimpleCommand) {
  const auto jobs = po::parse_command_line("echo hello world");
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].commands.size(), 1u);
  EXPECT_EQ(jobs[0].commands[0].name, "echo");
  EXPECT_EQ(jobs[0].commands[0].args,
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_FALSE(jobs[0].background);
}

TEST(ShellParse, PipelineAndBackground) {
  const auto jobs = po::parse_command_line("yes y 5 | cat &");
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].commands.size(), 2u);
  EXPECT_EQ(jobs[0].commands[0].name, "yes");
  EXPECT_EQ(jobs[0].commands[1].name, "cat");
  EXPECT_TRUE(jobs[0].background);
}

TEST(ShellParse, MultipleJobsAndErrors) {
  const auto jobs = po::parse_command_line("true; false; echo hi");
  EXPECT_EQ(jobs.size(), 3u);
  EXPECT_THROW((void)po::parse_command_line("a | | b"),
               std::invalid_argument);
  EXPECT_THROW((void)po::parse_command_line("&"), std::invalid_argument);
  EXPECT_TRUE(po::parse_command_line("   ").empty());
}

TEST(Shell, EchoToConsole) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  shell.execute("echo hello shell");
  ASSERT_EQ(k.console().size(), 1u);
  EXPECT_EQ(k.console()[0].text, "hello shell");
}

TEST(Shell, PipelineEchoIntoCat) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  shell.execute("yes hi 3 | cat");
  ASSERT_EQ(k.console().size(), 3u);
  for (const auto& line : k.console()) EXPECT_EQ(line.text, "hi");
}

TEST(Shell, ThreeStagePipeline) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  shell.execute("yes x 2 | cat | cat");
  ASSERT_EQ(k.console().size(), 2u);
  EXPECT_EQ(k.console()[0].text, "x");
}

TEST(Shell, BackgroundJobRunsConcurrently) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  shell.execute("sleep 50 &");
  EXPECT_EQ(shell.active_jobs().size(), 1u);  // still running
  shell.execute("echo fg");                   // foreground completes first
  EXPECT_EQ(k.console().back().text, "fg");
  EXPECT_EQ(shell.active_jobs().size(), 1u);
  shell.wait_all();
  EXPECT_TRUE(shell.active_jobs().empty());
}

TEST(Shell, UnknownCommandThrowsBeforeSpawning) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  const auto before = k.process_count();
  EXPECT_THROW(shell.execute("echo ok | no-such-cmd"),
               std::invalid_argument);
  EXPECT_EQ(k.process_count(), before);  // nothing was spawned
}

TEST(Shell, ExitStatusVisible) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  const auto pids = shell.execute("false");
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(k.exit_status(pids[0]), 1);
}

// ------------------------------------------------------------------ mlfq ---

TEST(Mlfq, CpuHogIsDemotedInteractiveStaysHigh) {
  po::KernelConfig cfg;
  cfg.scheduler = po::SchedulerKind::kMlfq;
  cfg.quantum = 2;
  po::Kernel k(cfg);
  const po::Pid hog = k.spawn({po::Compute(100), po::Exit(0)}, "hog");
  // Run long enough for the hog to burn several quanta.
  for (int i = 0; i < 20; ++i) k.tick();
  EXPECT_GT(k.mlfq_level(hog), 0);  // demoted
  k.kill(hog, po::Signal::kSigKill);
  k.run();
}

TEST(Mlfq, BlockedProcessBoostsToTopOnWake) {
  po::KernelConfig cfg;
  cfg.scheduler = po::SchedulerKind::kMlfq;
  cfg.quantum = 1;
  po::Kernel k(cfg);
  // Reader blocks on an empty pipe; a slow writer eventually feeds it.
  const po::Pid reader =
      k.spawn({po::Compute(6),  // get demoted first
               po::Read(), po::Exit(0)},
              "reader");
  const po::Pid writer = k.spawn(
      {po::Compute(10), po::Print("data"), po::Exit(0)}, "writer");
  const po::PipeId pipe = k.create_pipe();
  k.connect_stdout(writer, pipe);
  k.connect_stdin(reader, pipe);
  // Run until the reader has blocked at a demoted level.
  int guard = 0;
  while (k.state(reader) != po::ProcState::kBlocked && guard++ < 50)
    k.tick();
  ASSERT_EQ(k.state(reader), po::ProcState::kBlocked);
  EXPECT_GT(k.mlfq_level(reader), 0);
  k.run();
  EXPECT_EQ(k.exit_status(reader), 0);
  ASSERT_EQ(k.reads(reader).size(), 1u);
}

TEST(Mlfq, InteractiveBeatsCpuHogAfterWake) {
  // Classic MLFQ property: once the interactive process wakes, it
  // preempts the demoted CPU hog at the next scheduling decision.
  po::KernelConfig cfg;
  cfg.scheduler = po::SchedulerKind::kMlfq;
  cfg.quantum = 2;
  po::Kernel k(cfg);
  const po::Pid hog = k.spawn({po::Compute(1000), po::Exit(0)}, "hog");
  const po::Pid io = k.spawn({po::Read(), po::Print("hi"), po::Exit(0)},
                             "io");
  const po::PipeId pipe = k.create_pipe();
  const po::Pid feeder =
      k.spawn({po::Compute(8), po::Print("x"), po::Exit(0)}, "feeder");
  k.connect_stdout(feeder, pipe);
  k.connect_stdin(io, pipe);
  // Run until io exits; it should finish long before the hog.
  int guard = 0;
  while (k.state(io) != po::ProcState::kReaped && guard++ < 200) k.tick();
  EXPECT_EQ(k.state(io), po::ProcState::kReaped);
  EXPECT_NE(k.state(hog), po::ProcState::kReaped);  // hog still grinding
  k.kill(hog, po::Signal::kSigKill);
  k.run();
}

TEST(Mlfq, EqualHogsShareBottomLevelWithoutStarvation) {
  // Starvation regression: three identical CPU hogs demote together to
  // the bottom MLFQ level, where round-robin must keep every hog's gap
  // between consecutive schedulings bounded by (n_hogs - 1) * bottom
  // quantum. A broken scheduler (strict priority without RR, or a
  // demotion that drops a process from the ready scan) shows up as one
  // hog waiting for a competitor's entire remaining runtime.
  po::KernelConfig cfg;
  cfg.scheduler = po::SchedulerKind::kMlfq;
  cfg.quantum = 2;  // bottom of 3 levels runs quantum << 2 = 8 ticks
  po::Kernel k(cfg);
  const auto before = pdc::obs::metrics_snapshot();
  const std::array<po::Pid, 3> hogs = {
      k.spawn({po::Compute(40), po::Exit(0)}, "hog0"),
      k.spawn({po::Compute(40), po::Exit(0)}, "hog1"),
      k.spawn({po::Compute(40), po::Exit(0)}, "hog2"),
  };
  k.run();
  for (const po::Pid h : hogs) {
    EXPECT_EQ(k.state(h), po::ProcState::kReaped);
    EXPECT_EQ(k.mlfq_level(h), 2);  // all ended at the bottom
  }

  // Max gap between consecutive appearances of each hog in the
  // tick-by-tick trace, measured between its first and last scheduling.
  // Steady-state RR gives gaps of (n_hogs - 1) * bottom quantum; allow
  // one extra quantum for the demotion transition, where a hog still at
  // a higher level squeezes in an extra slice. A starved hog would wait
  // a competitor's entire ~40-tick remaining runtime instead.
  const auto& trace = k.schedule_trace();
  constexpr std::size_t kBottomQuantum = 8;  // cfg.quantum << 2
  const std::size_t bound = hogs.size() * kBottomQuantum;
  for (const po::Pid h : hogs) {
    std::size_t last = trace.size(), max_gap = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] != h) continue;
      if (last != trace.size()) max_gap = std::max(max_gap, i - last);
      last = i;
    }
    EXPECT_LE(max_gap, bound) << "hog " << h << " starved";
  }

  // The PR 5 scheduler counters must account for the same run: one
  // os.scheduled per executed tick, and the per-pick wait (the latency
  // half of the starvation story) bounded by the same RR gap.
  const auto d = pdc::obs::metrics_snapshot() - before;
  EXPECT_EQ(d.counter("os.scheduled"), trace.size());
  EXPECT_GE(d.counter("os.context_switches"), 2 * hogs.size());
  EXPECT_LE(d.counter("os.sched_wait_ticks"),
            d.counter("os.scheduled") * bound);
}

// --------------------------------------------------------- bounded pipes ---

TEST(Pipes, BoundedPipeBlocksWriterUntilDrained) {
  po::Kernel k;
  const po::Pid writer = k.spawn({
      po::Print("1"), po::Print("2"), po::Print("3"), po::Print("4"),
      po::Exit(0),
  });
  const po::Pid reader = k.spawn({
      po::Compute(20),  // let the writer fill the pipe and block
      po::Read(), po::Read(), po::Read(), po::Read(),
      po::Exit(0),
  });
  const po::PipeId pipe = k.create_pipe(/*capacity=*/2);
  k.connect_stdout(writer, pipe);
  k.connect_stdin(reader, pipe);

  // Run a few ticks: writer must be blocked with exactly 2 lines queued.
  bool saw_blocked_writer = false;
  for (int i = 0; i < 15 && !saw_blocked_writer; ++i) {
    k.tick();
    saw_blocked_writer = k.state(writer) == po::ProcState::kBlocked;
  }
  EXPECT_TRUE(saw_blocked_writer);
  k.run();
  ASSERT_EQ(k.reads(reader).size(), 4u);
  EXPECT_EQ(k.reads(reader)[3], "4");
}

TEST(Pipes, BoundedCatPipelineCompletes) {
  // cat (ReadAll + PrintReads) through a capacity-1 pipe: PrintReads must
  // block and resume mid-output without duplicating lines.
  po::Kernel k;
  const po::Pid producer = k.spawn({
      po::Print("a"), po::Print("b"), po::Print("c"), po::Print("d"),
      po::Exit(0),
  });
  const po::Pid cat = k.spawn({po::ReadAll(), po::PrintReads(), po::Exit(0)});
  const po::Pid sink = k.spawn({
      po::Read(), po::Compute(10), po::Read(), po::Read(), po::Read(),
      po::Exit(0),
  });
  const po::PipeId front = k.create_pipe(2);
  const po::PipeId back = k.create_pipe(1);
  k.connect_stdout(producer, front);
  k.connect_stdin(cat, front);
  k.connect_stdout(cat, back);
  k.connect_stdin(sink, back);
  k.run();
  ASSERT_EQ(k.reads(sink).size(), 4u);
  EXPECT_EQ(k.reads(sink)[0], "a");
  EXPECT_EQ(k.reads(sink)[3], "d");
}

// ---------------------------------------------------------- weak scaling ---

TEST(Shell, MultipleBackgroundJobsTrackedIndependently) {
  po::Kernel k;
  po::Shell shell(k, po::CommandRegistry::standard());
  shell.execute("sleep 40 &");
  shell.execute("sleep 5 &");
  EXPECT_EQ(shell.active_jobs().size(), 2u);
  // Drive the kernel until the short job finishes.
  for (int i = 0; i < 30 && shell.active_jobs().size() > 1; ++i) k.tick();
  EXPECT_EQ(shell.active_jobs().size(), 1u);
  shell.wait_all();
  EXPECT_TRUE(shell.active_jobs().empty());
}
