// Tests for DHT shard placement and the pipelined async client:
// the identity-hash skew regression, Zipf workload generation, client
// semantics (batch coalescing, windows/backpressure/shedding, fences,
// shutdown), op-for-op equivalence against the BSP baseline, and fault
// recovery on the reliable channel.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "pdc/mp/client.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/workload.hpp"
#include "pdc/obs/obs.hpp"

namespace mp = pdc::mp;

// --------------------------------------------------------- placement ---

namespace {

/// Shard loads for one key stream under an owner function.
std::vector<std::size_t> occupancy(const std::vector<std::int64_t>& keys,
                                   int p,
                                   const std::function<int(std::int64_t)>& own) {
  std::vector<std::size_t> load(static_cast<std::size_t>(p), 0);
  for (const auto k : keys) ++load[static_cast<std::size_t>(own(k))];
  return load;
}

double max_min_ratio(const std::vector<std::size_t>& load) {
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  if (*mn == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(*mx) / static_cast<double>(*mn);
}

/// The pre-fix owner(): std::hash<int64_t> is the identity function on
/// libstdc++, so this is key % P.
int identity_owner(std::int64_t key, int p) {
  return static_cast<int>(std::hash<std::int64_t>{}(key) %
                          static_cast<std::size_t>(p));
}

std::vector<std::int64_t> sequential_keys(std::size_t n) {
  std::vector<std::int64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<std::int64_t>(i);
  return keys;
}

std::vector<std::int64_t> strided_keys(std::size_t n, std::int64_t stride) {
  std::vector<std::int64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = static_cast<std::int64_t>(i) * stride;
  return keys;
}

/// The distinct keys touched by a Zipf(0.99) stream — a prefix-heavy,
/// irregular subset of the keyspace.
std::vector<std::int64_t> zipf_distinct_keys(std::size_t n) {
  mp::ZipfGenerator zipf(4 * n, 0.99, 0x5eedULL);
  std::unordered_set<std::int64_t> seen;
  for (std::size_t draws = 0; draws < 64 * n && seen.size() < n; ++draws)
    seen.insert(zipf.next());
  return {seen.begin(), seen.end()};
}

}  // namespace

TEST(ShardPlacement, MixedHashSpreadsStructuredStreams) {
  constexpr int kP = 8;
  constexpr std::size_t kKeys = 64 * 1024;
  const auto own = [](std::int64_t k) { return mp::shard_owner(k, kP); };
  for (const auto& [name, keys] :
       {std::pair{"sequential", sequential_keys(kKeys)},
        std::pair{"strided", strided_keys(kKeys, kP)},
        std::pair{"zipf", zipf_distinct_keys(kKeys / 4)}}) {
    const auto load = occupancy(keys, kP, own);
    EXPECT_LT(max_min_ratio(load), 2.0) << name << " stream";
  }
}

TEST(ShardPlacement, IdentityHashCollapsesStridedStreamMixedHashDoesNot) {
  // The regression this PR fixes: with the identity hash, any stride
  // sharing a factor with P lands every key on a handful of shards —
  // stride == P puts ALL of them on shard 0.
  constexpr int kP = 8;
  const auto keys = strided_keys(64 * 1024, kP);
  const auto skewed =
      occupancy(keys, kP, [](std::int64_t k) { return identity_owner(k, kP); });
  EXPECT_EQ(skewed[0], keys.size()) << "identity hash: one shard owns all";
  EXPECT_TRUE(std::isinf(max_min_ratio(skewed)));

  const auto fixed =
      occupancy(keys, kP, [](std::int64_t k) { return mp::shard_owner(k, kP); });
  EXPECT_LT(max_min_ratio(fixed), 2.0);
}

TEST(ShardPlacement, BspMapAndClientAgreeOnOwnership) {
  mp::Communicator comm(4);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap bsp(ctx);
    mp::DhtClient client(ctx);
    for (std::int64_t k = -100; k < 100; ++k)
      if (bsp.owner(k) != client.owner(k) ||
          bsp.owner(k) != mp::shard_owner(k, 4))
        violations.fetch_add(1);
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
}

// ---------------------------------------------------------- workload ---

TEST(Zipf, IsDeterministicAndHotKeyHeavy) {
  mp::ZipfGenerator a(1024, 0.99, 42), b(1024, 0.99, 42);
  std::vector<std::size_t> freq(1024, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto k = a.next();
    ASSERT_EQ(k, b.next());
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1024);
    ++freq[static_cast<std::size_t>(k)];
  }
  // Key 0 is the hottest, and the head dominates the tail.
  EXPECT_GT(freq[0], freq[100]);
  std::size_t head = 0, total = 20000;
  for (std::size_t k = 0; k < 16; ++k) head += freq[k];
  EXPECT_GT(head, total / 4) << "Zipf(0.99): top 16/1024 keys carry >25%";
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  mp::ZipfGenerator z(16, 0.0, 7);
  std::vector<std::size_t> freq(16, 0);
  for (int i = 0; i < 16000; ++i) ++freq[static_cast<std::size_t>(z.next())];
  const auto [mn, mx] = std::minmax_element(freq.begin(), freq.end());
  EXPECT_LT(static_cast<double>(*mx) / static_cast<double>(*mn), 1.5);
}

// -------------------------------------------------------- client basics ---

TEST(DhtClient, PutGetRoundTripsAcrossRanks) {
  constexpr int kP = 4;
  mp::Communicator comm(kP);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx);
    for (int i = 0; i < 32; ++i)
      (void)client.put(ctx.rank() * 1000 + i, ctx.rank() * 10 + i);
    client.fence();
    const int peer = (ctx.rank() + 1) % kP;
    std::vector<mp::DhtFuture> gets;
    for (int i = 0; i < 32; ++i) gets.push_back(client.get(peer * 1000 + i));
    for (int i = 0; i < 32; ++i) {
      const auto r = gets[static_cast<std::size_t>(i)].wait();
      if (!r.found || r.value != peer * 10 + i) violations.fetch_add(1);
    }
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(DhtClient, MissingKeyReportsNotFoundAndPutEchoesValue) {
  mp::Communicator comm(2);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx);
    if (ctx.rank() == 0) {
      auto p = client.put(42, 99);
      const auto pr = p.wait();
      if (!pr.found || pr.value != 99 || pr.key != 42) violations.fetch_add(1);
      const auto miss = client.get(-777).wait();
      if (miss.found) violations.fetch_add(1);
    }
    client.fence();
    const auto hit = client.get(42).wait();
    if (!hit.found || hit.value != 99) violations.fetch_add(1);
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(DhtClient, InBatchGetsObserveEarlierPutsAndCoalesce) {
  mp::Communicator comm(2);
  std::atomic<int> violations{0};
  const auto before = pdc::obs::metrics_snapshot();
  comm.run([&](mp::RankContext& ctx) {
    // Large batch, single in-flight window: everything rides one wire
    // batch, so this exercises in-batch semantics specifically.
    mp::DhtClient client(ctx, {.window = 64, .max_batch = 64});
    if (ctx.rank() == 0) {
      // A key owned by the remote rank, so the batch actually travels.
      std::int64_t k = 0;
      while (client.owner(k) != 1) ++k;
      // Occupy the wire: an idle wire ships each op immediately, so the
      // coalescing window only opens once a batch is in flight.
      (void)client.put(k, 0);
      (void)client.put(k, 1);
      auto second = client.put(k, 2);  // coalesces: last writer wins
      auto g1 = client.get(k);
      auto g2 = client.get(k);  // deduped: asked once, fanned out
      if (g1.wait().value != 2 || g2.wait().value != 2)
        violations.fetch_add(1);
      if (second.wait().value != 2) violations.fetch_add(1);
    }
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
  const auto d = pdc::obs::metrics_snapshot() - before;
  EXPECT_GE(d.counter("dht.client.coalesced_puts"), 1u);
  EXPECT_GE(d.counter("dht.client.deduped_gets"), 1u);
}

TEST(DhtClient, BlockingWindowBackpressuresButCompletesEverything) {
  mp::Communicator comm(3);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx, {.window = 1, .max_batch = 1});
    std::vector<mp::DhtFuture> futs;
    for (int i = 0; i < 120; ++i)
      futs.push_back(client.put(ctx.rank() * 500 + i, i));
    client.drain();
    if (client.outstanding() != 0) violations.fetch_add(1);
    for (auto& f : futs)
      if (f.status() != mp::DhtOpStatus::kDone) violations.fetch_add(1);
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(DhtClient, ShedModeRejectsBeyondWindowAndWaitThrows) {
  mp::Communicator comm(2);
  std::atomic<int> shed_count{0};
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx, {.window = 2, .max_batch = 2, .shed = true});
    if (ctx.rank() == 0) {
      // Burst to one shard with no pumping in between: the window (2)
      // fills immediately and the rest must shed.
      std::int64_t k = 0;
      while (client.owner(k) != 1) ++k;
      std::vector<mp::DhtFuture> futs;
      for (int i = 0; i < 10; ++i) futs.push_back(client.put(k + 0, i));
      int shed = 0;
      for (auto& f : futs)
        if (f.status() == mp::DhtOpStatus::kShed) ++shed;
      if (shed == 0) violations.fetch_add(1);
      shed_count.store(shed);
      for (auto& f : futs) {
        if (f.status() == mp::DhtOpStatus::kShed) {
          EXPECT_THROW((void)f.wait(), std::runtime_error);
        }
      }
    }
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(shed_count.load(), 0);
}

TEST(DhtClient, SubmitAfterShutdownThrows) {
  mp::Communicator comm(1);
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx);
    (void)client.put(1, 2);
    client.shutdown();
    EXPECT_THROW((void)client.put(3, 4), std::logic_error);
  });
}

TEST(DhtClient, SingleRankDegeneratesToLocalStore) {
  mp::Communicator comm(1);
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx);
    for (int i = 0; i < 50; ++i) (void)client.put(i * 7, i);
    client.fence();
    EXPECT_EQ(client.local_size(), 50u);
    for (int i = 0; i < 50; ++i) {
      const auto r = client.get(i * 7).wait();
      EXPECT_TRUE(r.found);
      EXPECT_EQ(r.value, i);
    }
    client.shutdown();
  });
}

// ------------------------------------------- equivalence vs BSP rounds ---

namespace {

struct Op {
  bool is_get = false;
  std::int64_t key = 0;
  std::int64_t value = 0;
};

constexpr int kEqRanks = 4;
constexpr std::int64_t kEqKeys = 512;

std::int64_t eq_value(std::int64_t key, int phase) {
  return static_cast<std::int64_t>(
      mp::detail::mix64(static_cast<std::uint64_t>(key) * 31 +
                        static_cast<std::uint64_t>(phase)) &
      0xffff);
}

/// Deterministic op stream for (rank, phase). Put phases write only keys
/// from the rank's writer set (key % P == rank), so the final state is
/// order-independent across ranks; get phases read anywhere, including
/// guaranteed misses.
std::vector<Op> eq_phase_ops(int rank, int phase, bool puts) {
  mp::SplitMix64 rng(0xE0ULL + static_cast<std::uint64_t>(rank) * 131 +
                     static_cast<std::uint64_t>(phase));
  std::vector<Op> ops;
  for (int i = 0; i < 150; ++i) {
    const auto raw = static_cast<std::int64_t>(
        rng.next() % static_cast<std::uint64_t>(kEqKeys));
    if (puts) {
      const std::int64_t k = raw - (raw % kEqRanks) + rank;
      ops.push_back({false, k, eq_value(k, phase)});
    } else {
      const bool miss = rng.next_unit() < 0.1;
      ops.push_back({true, miss ? kEqKeys + raw : raw, 0});
    }
  }
  return ops;
}

}  // namespace

TEST(DhtEquivalence, PipelinedClientMatchesBspRoundsOpForOp) {
  // Phases: puts, gets, overwriting puts, gets — fences between. The BSP
  // map runs each phase as one synchronous round; the client runs it
  // free-running with a fence at the boundary. Every get result must be
  // byte-identical.
  const std::vector<std::pair<int, bool>> phases = {
      {0, false}, {1, true}, {2, false}, {3, true}};
  using Digest = std::vector<std::int64_t>;

  std::vector<Digest> bsp_digest(kEqRanks), client_digest(kEqRanks);
  {
    mp::Communicator comm(kEqRanks);
    comm.run([&](mp::RankContext& ctx) {
      mp::BspHashMap dht(ctx);
      auto& digest = bsp_digest[static_cast<std::size_t>(ctx.rank())];
      for (const auto& [phase, is_get_phase] : phases) {
        for (const auto& op : eq_phase_ops(ctx.rank(), phase, !is_get_phase)) {
          if (op.is_get)
            dht.queue_get(op.key);
          else
            dht.queue_put(op.key, op.value);
        }
        for (const auto& g : dht.round()) {
          digest.push_back(g.found ? 1 : 0);
          digest.push_back(g.value);
        }
      }
    });
  }
  {
    mp::Communicator comm(kEqRanks);
    comm.run([&](mp::RankContext& ctx) {
      mp::DhtClient client(ctx, {.window = 16, .max_batch = 8});
      auto& digest = client_digest[static_cast<std::size_t>(ctx.rank())];
      for (const auto& [phase, is_get_phase] : phases) {
        std::vector<mp::DhtFuture> gets;
        for (const auto& op : eq_phase_ops(ctx.rank(), phase, !is_get_phase)) {
          if (op.is_get)
            gets.push_back(client.get(op.key));
          else
            (void)client.put(op.key, op.value);
        }
        client.fence();
        for (auto& g : gets) {
          const auto r = g.wait();
          digest.push_back(r.found ? 1 : 0);
          digest.push_back(r.value);
        }
      }
      client.shutdown();
    });
  }
  for (int r = 0; r < kEqRanks; ++r)
    EXPECT_EQ(bsp_digest[static_cast<std::size_t>(r)],
              client_digest[static_cast<std::size_t>(r)])
        << "rank " << r;
}

// ------------------------------------------------- reliable channel ---

TEST(DhtClient, ReliableClientRecoversTheFaultFreeAnswerUnderLoss) {
  mp::FaultPlan plan;
  plan.drop = 0.05;
  plan.dup = 0.05;
  plan.reorder = true;
  plan.seed = 1234;
  mp::Communicator comm(4, plan);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx, {.window = 8, .max_batch = 4, .reliable = true});
    for (int i = 0; i < 24; ++i)
      (void)client.put(ctx.rank() * 100 + i, ctx.rank() * 100 + i * 3);
    client.fence();
    const int peer = (ctx.rank() + 2) % 4;
    for (int i = 0; i < 24; ++i) {
      const auto r = client.get(peer * 100 + i).wait();
      if (!r.found || r.value != peer * 100 + i * 3) violations.fetch_add(1);
    }
    client.shutdown();
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(DhtClient, LatencyHistogramRecordsEveryCompletedOp) {
  const auto before = pdc::obs::metrics_snapshot();
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    mp::DhtClient client(ctx);
    for (int i = 0; i < 40; ++i) (void)client.put(ctx.rank() * 64 + i, i);
    client.drain();
    client.shutdown();
  });
  const auto d = pdc::obs::metrics_snapshot() - before;
  const auto it = d.histograms.find("dht.client.op_ns");
  ASSERT_NE(it, d.histograms.end());
  std::uint64_t n = 0;
  for (const auto b : it->second) n += b;
  EXPECT_EQ(n, 80u) << "one latency sample per completed op";
  EXPECT_GT(pdc::obs::quantile_from_buckets(it->second, 0.5), 0.0);
}
