// Tests for pdc::mp — point-to-point semantics (tags, wildcards, ordering),
// nonblocking receives, and every collective checked against a sequential
// oracle across communicator sizes and algorithms.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>

#include "pdc/mp/comm.hpp"

namespace mp = pdc::mp;

// --------------------------------------------------------- point to point ---

TEST(P2P, PingPong) {
  mp::Communicator comm(2);
  std::atomic<std::int64_t> got{0};
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 7, 123);
      got = ctx.recv_value(1, 8);
    } else {
      const auto v = ctx.recv_value(0, 7);
      ctx.send_value(0, 8, v + 1);
    }
  });
  EXPECT_EQ(got.load(), 124);
  EXPECT_EQ(comm.traffic().messages, 2u);
  EXPECT_EQ(comm.traffic().payload_words, 2u);
}

TEST(P2P, TagsSelectMessages) {
  mp::Communicator comm(2);
  std::atomic<std::int64_t> first{0};
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 10, 100);  // arrives first
      ctx.send_value(1, 20, 200);
    } else {
      // Receive tag 20 FIRST even though tag 10 arrived first.
      first = ctx.recv_value(0, 20);
      EXPECT_EQ(ctx.recv_value(0, 10), 100);
    }
  });
  EXPECT_EQ(first.load(), 200);
}

TEST(P2P, SameSourceSameTagIsFifo) {
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (std::int64_t i = 0; i < 50; ++i) ctx.send_value(1, 0, i);
    } else {
      for (std::int64_t i = 0; i < 50; ++i)
        EXPECT_EQ(ctx.recv_value(0, 0), i);  // MPI ordering guarantee
    }
  });
}

TEST(P2P, WildcardsMatchAnything) {
  mp::Communicator comm(3);
  std::mutex m;
  std::vector<std::int64_t> got;
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const auto msg = ctx.recv(mp::kAnySource, mp::kAnyTag);
        std::lock_guard lk(m);
        got.push_back(msg.data.at(0));
      }
    } else {
      ctx.send_value(0, ctx.rank(), ctx.rank() * 10);
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 30);  // 10 + 20 in some order
}

TEST(P2P, VectorPayload) {
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, {1, 2, 3, 4, 5});
    } else {
      const auto msg = ctx.recv(0, 0);
      EXPECT_EQ(msg.data, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 0);
    }
  });
}

TEST(P2P, NegativeUserTagRejected) {
  mp::Communicator comm(2);
  EXPECT_THROW(comm.run([&](mp::RankContext& ctx) {
                 if (ctx.rank() == 0) ctx.send_value(1, -5, 1);
                 // rank 1 sends to itself so it terminates either way
                 if (ctx.rank() == 1) return;
               }),
               std::invalid_argument);
}

TEST(P2P, ProbeAndIrecv) {
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_FALSE(ctx.probe(1, 5));
      auto req = ctx.irecv(1, 5);
      ctx.send_value(1, 9, 0);  // tell peer to go
      const auto msg = req.wait();
      EXPECT_EQ(msg.data.at(0), 77);
      EXPECT_TRUE(ctx.probe(1, 6));  // second message still queued
      EXPECT_EQ(ctx.recv_value(1, 6), 88);
    } else {
      (void)ctx.recv(0, 9);
      ctx.send_value(0, 5, 77);
      ctx.send_value(0, 6, 88);
    }
  });
}

// ------------------------------------------------------------ collectives ---

class CollectiveSweep
    : public ::testing::TestWithParam<std::tuple<int, mp::CollectiveAlgo>> {};

TEST_P(CollectiveSweep, BroadcastDeliversRootValue) {
  const auto [p, algo] = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> results(static_cast<std::size_t>(p), -1);
  const int root = p / 2;
  comm.run([&](mp::RankContext& ctx) {
    const std::int64_t mine = ctx.rank() == root ? 4242 : 0;
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.broadcast_value(root, mine, algo);
  });
  for (auto v : results) EXPECT_EQ(v, 4242);
}

TEST_P(CollectiveSweep, ReduceSumMatchesOracle) {
  const auto [p, algo] = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> results(static_cast<std::size_t>(p), -1);
  comm.run([&](mp::RankContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.reduce(0, (ctx.rank() + 1) * 10, mp::ReduceOp::kSum, algo);
  });
  // Oracle: sum of (r+1)*10.
  std::int64_t expect = 0;
  for (int r = 0; r < p; ++r) expect += (r + 1) * 10;
  EXPECT_EQ(results[0], expect);
}

TEST_P(CollectiveSweep, ReduceMaxAndMin) {
  const auto [p, algo] = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> maxs(static_cast<std::size_t>(p), -1);
  std::vector<std::int64_t> mins(static_cast<std::size_t>(p), -1);
  comm.run([&](mp::RankContext& ctx) {
    const std::int64_t v = (ctx.rank() * 37) % 11;
    maxs[static_cast<std::size_t>(ctx.rank())] =
        ctx.reduce(0, v, mp::ReduceOp::kMax, algo);
    mins[static_cast<std::size_t>(ctx.rank())] =
        ctx.reduce(0, v, mp::ReduceOp::kMin, algo);
  });
  std::int64_t emax = std::numeric_limits<std::int64_t>::min();
  std::int64_t emin = std::numeric_limits<std::int64_t>::max();
  for (int r = 0; r < p; ++r) {
    emax = std::max<std::int64_t>(emax, (r * 37) % 11);
    emin = std::min<std::int64_t>(emin, (r * 37) % 11);
  }
  EXPECT_EQ(maxs[0], emax);
  EXPECT_EQ(mins[0], emin);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, CollectiveSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8),
                       ::testing::Values(mp::CollectiveAlgo::kFlat,
                                         mp::CollectiveAlgo::kTree)));

class CommSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommSizeSweep, AllreduceGivesEveryoneTheSum) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> results(static_cast<std::size_t>(p), -1);
  comm.run([&](mp::RankContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.allreduce(ctx.rank() + 1, mp::ReduceOp::kSum);
  });
  const std::int64_t expect = static_cast<std::int64_t>(p) * (p + 1) / 2;
  for (auto v : results) EXPECT_EQ(v, expect);
}

TEST_P(CommSizeSweep, GatherCollectsInRankOrder) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> at_root;
  comm.run([&](mp::RankContext& ctx) {
    auto r = ctx.gather(0, ctx.rank() * ctx.rank());
    if (ctx.rank() == 0) at_root = std::move(r);
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(at_root[static_cast<std::size_t>(r)], r * r);
}

TEST_P(CommSizeSweep, ScatterDistributes) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> results(static_cast<std::size_t>(p), -1);
  comm.run([&](mp::RankContext& ctx) {
    std::vector<std::int64_t> values;
    if (ctx.rank() == 0)
      for (int r = 0; r < p; ++r) values.push_back(100 + r);
    results[static_cast<std::size_t>(ctx.rank())] = ctx.scatter(0, values);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<std::size_t>(r)], 100 + r);
}

TEST_P(CommSizeSweep, AllgatherEveryoneSeesAll) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::vector<std::int64_t>> results(
      static_cast<std::size_t>(p));
  comm.run([&](mp::RankContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.allgather(ctx.rank() * 3);
  });
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s)
      EXPECT_EQ(results[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(s)],
                s * 3);
  }
}

TEST_P(CommSizeSweep, ExscanIsExclusivePrefix) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> results(static_cast<std::size_t>(p), -1);
  comm.run([&](mp::RankContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.exscan(ctx.rank() + 1, mp::ReduceOp::kSum);
  });
  std::int64_t prefix = 0;
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], prefix) << "rank " << r;
    prefix += r + 1;
  }
}

TEST_P(CommSizeSweep, BarrierSeparatesPhases) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::atomic<int> before{0};
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    before.fetch_add(1);
    ctx.barrier();
    if (before.load() != p) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(CommSizeSweep, ConsecutiveCollectivesDoNotCrosstalk) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::vector<std::int64_t> sums(static_cast<std::size_t>(p));
  comm.run([&](mp::RankContext& ctx) {
    std::int64_t acc = 0;
    for (int round = 0; round < 10; ++round)
      acc += ctx.allreduce(round, mp::ReduceOp::kSum);
    sums[static_cast<std::size_t>(ctx.rank())] = acc;
  });
  // Each round's allreduce = round * p; total = p * 45.
  for (auto s : sums) EXPECT_EQ(s, static_cast<std::int64_t>(p) * 45);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

// --------------------------------------------------------------- traffic ---

TEST(Traffic, TreeAndFlatBroadcastMoveSameMessages) {
  // Both algorithms move exactly P-1 messages; the difference is the
  // critical path (rounds), which the bench reports analytically.
  for (int p : {4, 8, 16}) {
    for (auto algo : {mp::CollectiveAlgo::kFlat, mp::CollectiveAlgo::kTree}) {
      mp::Communicator comm(p);
      comm.run([&](mp::RankContext& ctx) {
        (void)ctx.broadcast_value(0, 5, algo);
      });
      EXPECT_EQ(comm.traffic().messages, static_cast<std::uint64_t>(p - 1))
          << "p=" << p;
    }
  }
}

TEST(Traffic, ResetClears) {
  mp::Communicator comm(2);
  comm.run([&](mp::RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_value(1, 0, 1);
    if (ctx.rank() == 1) (void)ctx.recv(0, 0);
  });
  EXPECT_GT(comm.traffic().messages, 0u);
  comm.reset_traffic();
  EXPECT_EQ(comm.traffic().messages, 0u);
}

TEST(Communicator, RejectsBadSize) {
  EXPECT_THROW(mp::Communicator(0), std::invalid_argument);
}

TEST(Communicator, PropagatesRankException) {
  mp::Communicator comm(2);
  EXPECT_THROW(comm.run([](mp::RankContext& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank died");
               }),
               std::runtime_error);
}

// ------------------------------------------------- alltoall / sendrecv ---

TEST_P(CommSizeSweep, AlltoallDeliversPersonalizedMessages) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    // Rank r sends {r*100 + d} to rank d.
    std::vector<std::vector<std::int64_t>> out(
        static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      out[static_cast<std::size_t>(d)] = {ctx.rank() * 100 + d};
    const auto in = ctx.alltoall(std::move(out));
    for (int s = 0; s < p; ++s) {
      const auto& got = in[static_cast<std::size_t>(s)];
      if (got.size() != 1 || got[0] != s * 100 + ctx.rank())
        violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(CommSizeSweep, AlltoallWithVariableSizes) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    // Rank r sends d copies of r to rank d.
    std::vector<std::vector<std::int64_t>> out(
        static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d),
                                              ctx.rank());
    const auto in = ctx.alltoall(std::move(out));
    for (int s = 0; s < p; ++s) {
      const auto& got = in[static_cast<std::size_t>(s)];
      if (got.size() != static_cast<std::size_t>(ctx.rank()))
        violations.fetch_add(1);
      for (auto v : got)
        if (v != s) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(P2P, AlltoallRejectsWrongBufferCount) {
  mp::Communicator comm(2);
  EXPECT_THROW(comm.run([](mp::RankContext& ctx) {
                 std::vector<std::vector<std::int64_t>> out(1);
                 (void)ctx.alltoall(std::move(out));
               }),
               std::invalid_argument);
}

TEST(P2P, SendrecvRingShiftIsDeadlockFree) {
  const int p = 5;
  mp::Communicator comm(p);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() - 1 + p) % p;
    // Everyone sends right and receives from the left simultaneously —
    // with naive blocking sends this pattern deadlocks; sendrecv cannot.
    const auto got = ctx.sendrecv(next, {ctx.rank() * 7}, prev);
    if (got.size() != 1 || got[0] != prev * 7) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
}

// -------------------------------------------------------------------- dht ---

#include "pdc/mp/dht.hpp"

TEST_P(CommSizeSweep, DhtPutThenGetRoundTrips) {
  const int p = GetParam();
  mp::Communicator comm(p);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap dht(ctx);
    // Every rank stores 20 keys in its own stripe.
    for (int i = 0; i < 20; ++i)
      dht.queue_put(ctx.rank() * 1000 + i, ctx.rank() * 10 + i);
    (void)dht.round();
    // Every rank reads a *different* rank's stripe.
    const int peer = (ctx.rank() + 1) % p;
    for (int i = 0; i < 20; ++i) dht.queue_get(peer * 1000 + i);
    const auto results = dht.round();
    for (int i = 0; i < 20; ++i) {
      if (!results[static_cast<std::size_t>(i)].found ||
          results[static_cast<std::size_t>(i)].value != peer * 10 + i)
        violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Dht, MissingKeysReportNotFound) {
  mp::Communicator comm(3);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap dht(ctx);
    if (ctx.rank() == 0) dht.queue_put(42, 99);
    (void)dht.round();
    dht.queue_get(42);
    dht.queue_get(43);  // never stored
    const auto r = dht.round();
    if (!r[0].found || r[0].value != 99) violations.fetch_add(1);
    if (r[1].found) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Dht, LaterPutOverwrites) {
  mp::Communicator comm(2);
  std::atomic<std::int64_t> seen{-1};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap dht(ctx);
    if (ctx.rank() == 0) dht.queue_put(7, 100);
    (void)dht.round();
    if (ctx.rank() == 1) dht.queue_put(7, 200);  // second round overwrites
    (void)dht.round();
    dht.queue_get(7);
    const auto r = dht.round();
    if (ctx.rank() == 0) seen = r[0].value;
  });
  EXPECT_EQ(seen.load(), 200);
}

TEST(Dht, ShardingDistributesKeys) {
  mp::Communicator comm(4);
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> max_shard{0};
  comm.run([&](mp::RankContext& ctx) {
    mp::BspHashMap dht(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 400; ++i) dht.queue_put(i, i);
    (void)dht.round();
    total.fetch_add(dht.local_size());
    std::size_t prev = max_shard.load();
    while (dht.local_size() > prev &&
           !max_shard.compare_exchange_weak(prev, dht.local_size())) {
    }
  });
  EXPECT_EQ(total.load(), 400u);
  // No shard should hold more than half of a 4-way hash partition.
  EXPECT_LT(max_shard.load(), 200u);
}

// Stress: many ranks exchanging randomized tagged messages with
// wildcards; per-(source,tag) FIFO order must survive the chaos.
TEST(P2P, RandomizedTaggedTrafficKeepsPerFlowOrder) {
  constexpr int kRanks = 6;
  constexpr int kMsgsPerFlow = 40;
  mp::Communicator comm(kRanks);
  std::atomic<int> violations{0};
  comm.run([&](mp::RankContext& ctx) {
    // Every rank sends kMsgsPerFlow messages to every other rank on two
    // tags, with sequence numbers embedded.
    for (int seq = 0; seq < kMsgsPerFlow; ++seq) {
      for (int d = 0; d < kRanks; ++d) {
        if (d == ctx.rank()) continue;
        for (int tag : {1, 2})
          ctx.send(d, tag, {ctx.rank() * 1000000 + tag * 1000 + seq});
      }
    }
    // Receive everything with wildcards, tracking per-flow sequence.
    int expected[kRanks][3] = {};
    const int total = (kRanks - 1) * kMsgsPerFlow * 2;
    for (int i = 0; i < total; ++i) {
      const auto m = ctx.recv(mp::kAnySource, mp::kAnyTag);
      const auto v = m.data.at(0);
      const int src = static_cast<int>(v / 1000000);
      const int tag = static_cast<int>((v / 1000) % 1000);
      const int seq = static_cast<int>(v % 1000);
      if (src != m.source || tag != m.tag) violations.fetch_add(1);
      if (seq != expected[src][tag]++) violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}
