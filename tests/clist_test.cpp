// Tests for pdc::clist — the raw-memory list and the layout inspector.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pdc/clist/layout.hpp"
#include "pdc/clist/rawlist.hpp"

namespace pc = pdc::clist;

// -------------------------------------------------------------- rawlist ---

TEST(RawList, RejectsZeroElemSize) {
  EXPECT_THROW(pc::RawList(0), std::invalid_argument);
}

TEST(RawList, RejectsBadGrowthFactor) {
  pc::GrowthPolicy p;
  p.factor = 1.0;
  EXPECT_THROW(pc::RawList(4, p), std::invalid_argument);
}

TEST(RawList, AppendAndGet) {
  pc::RawList list(sizeof(int));
  for (int i = 0; i < 100; ++i) list.append(&i);
  EXPECT_EQ(list.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    int out = -1;
    list.get(static_cast<std::size_t>(i), &out);
    EXPECT_EQ(out, i);
  }
}

TEST(RawList, InsertShiftsTail) {
  pc::List<int> list;
  for (int i = 0; i < 5; ++i) list.append(i);  // 0 1 2 3 4
  list.insert(2, 99);                          // 0 1 99 2 3 4
  EXPECT_EQ(list.size(), 6u);
  EXPECT_EQ(list[1], 1);
  EXPECT_EQ(list[2], 99);
  EXPECT_EQ(list[3], 2);
  EXPECT_EQ(list[5], 4);
}

TEST(RawList, InsertAtEndsAndBounds) {
  pc::List<int> list;
  list.insert(0, 1);  // front of empty
  list.insert(1, 3);  // back
  list.insert(0, 0);  // front
  EXPECT_EQ(list[0], 0);
  EXPECT_EQ(list[1], 1);
  EXPECT_EQ(list[2], 3);
  EXPECT_THROW(list.insert(99, 5), std::out_of_range);
}

TEST(RawList, RemoveShiftsTail) {
  pc::List<int> list;
  for (int i = 0; i < 5; ++i) list.append(i);
  list.remove(1);  // 0 2 3 4
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0], 0);
  EXPECT_EQ(list[1], 2);
  EXPECT_EQ(list[3], 4);
  EXPECT_THROW(list.remove(4), std::out_of_range);
}

TEST(RawList, SetOverwrites) {
  pc::List<double> list;
  list.append(1.0);
  list.set(0, 2.5);
  EXPECT_DOUBLE_EQ(list[0], 2.5);
}

TEST(RawList, CopySemantics) {
  pc::List<int> a;
  for (int i = 0; i < 10; ++i) a.append(i);
  pc::RawList raw(sizeof(int));
  for (int i = 0; i < 10; ++i) raw.append(&i);
  pc::RawList copy(raw);
  // Mutating the copy leaves the original intact.
  int v = 999;
  copy.set(0, &v);
  int orig = -1;
  raw.get(0, &orig);
  EXPECT_EQ(orig, 0);
  int copied = -1;
  copy.get(0, &copied);
  EXPECT_EQ(copied, 999);
}

TEST(RawList, GrowthStatsCountReallocations) {
  pc::GrowthPolicy p;
  p.factor = 2.0;
  p.min_step = 1;
  pc::List<std::uint64_t> list(p);
  for (std::uint64_t i = 0; i < 1000; ++i) list.append(i);
  const auto& st = list.stats();
  // Doubling from 1: ~log2(1000) ≈ 10 growths, far less than 1000.
  EXPECT_GE(st.grow_count, 8u);
  EXPECT_LE(st.grow_count, 16u);
  EXPECT_GT(st.bytes_copied, 0u);
}

TEST(RawList, SlowGrowthCopiesMoreBytes) {
  // Amortized-analysis lab observation: smaller growth factor => more
  // reallocations and more bytes copied for the same appends.
  auto bytes_for_factor = [](double factor) {
    pc::GrowthPolicy p;
    p.factor = factor;
    p.min_step = 1;
    pc::List<int> list(p);
    for (int i = 0; i < 4000; ++i) list.append(i);
    return list.stats().bytes_copied;
  };
  EXPECT_GT(bytes_for_factor(1.2), bytes_for_factor(3.0));
}

TEST(RawList, ReserveAvoidsGrowth) {
  pc::List<int> list;
  list.reserve(1000);
  const auto grows_before = list.stats().grow_count;
  for (int i = 0; i < 1000; ++i) list.append(i);
  EXPECT_EQ(list.stats().grow_count, grows_before);
}

TEST(RawList, ClearKeepsCapacity) {
  pc::List<int> list;
  for (int i = 0; i < 100; ++i) list.append(i);
  const auto cap = list.capacity();
  list.clear();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.capacity(), cap);
}

TEST(RawList, WorksWithStructElements) {
  struct Point {
    double x, y;
    int tag;
  };
  pc::List<Point> list;
  list.append({1.0, 2.0, 7});
  list.append({3.0, 4.0, 8});
  EXPECT_DOUBLE_EQ(list[0].x, 1.0);
  EXPECT_EQ(list[1].tag, 8);
}

// Property: RawList behaves exactly like std::vector under a random op mix.
TEST(RawList, MatchesVectorOracleUnderRandomOps) {
  pc::List<int> list;
  std::vector<int> oracle;
  std::uint32_t seed = 12345;
  auto rnd = [&seed] {
    seed = seed * 1664525u + 1013904223u;
    return seed >> 8;
  };
  for (int step = 0; step < 2000; ++step) {
    const auto op = rnd() % 4;
    if (op == 0 || oracle.empty()) {
      const int v = static_cast<int>(rnd() % 1000);
      list.append(v);
      oracle.push_back(v);
    } else if (op == 1) {
      const auto i = rnd() % (oracle.size() + 1);
      const int v = static_cast<int>(rnd() % 1000);
      list.insert(i, v);
      oracle.insert(oracle.begin() + static_cast<long>(i), v);
    } else if (op == 2) {
      const auto i = rnd() % oracle.size();
      list.remove(i);
      oracle.erase(oracle.begin() + static_cast<long>(i));
    } else {
      const auto i = rnd() % oracle.size();
      const int v = static_cast<int>(rnd() % 1000);
      list.set(i, v);
      oracle[i] = v;
    }
  }
  ASSERT_EQ(list.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i)
    EXPECT_EQ(list[i], oracle[i]) << "index " << i;
}

// --------------------------------------------------------------- layout ---

TEST(Layout, HostEndiannessIsDeterministic) {
  EXPECT_EQ(pc::host_endianness(), pc::host_endianness());
}

TEST(Layout, HexdumpFormatsBytes) {
  const std::uint8_t raw[] = {0x48, 0x69, 0x21, 0x00, 0xFF};
  const std::string dump = pc::hexdump(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(raw), sizeof(raw)));
  EXPECT_NE(dump.find("48 69 21 00 ff"), std::string::npos);
  EXPECT_NE(dump.find("Hi!"), std::string::npos);  // printable ASCII column
  EXPECT_NE(dump.find("00000000"), std::string::npos);
}

TEST(Layout, HexdumpMultiLine) {
  std::vector<std::byte> bytes(40, std::byte{0xAB});
  const std::string dump = pc::hexdump(bytes);
  // 40 bytes = 3 lines at 16 bytes/line.
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("00000020"), std::string::npos);
}

TEST(Layout, HexdumpObjectShowsLittleEndianInt) {
  if (pc::host_endianness() != pc::Endian::kLittle) GTEST_SKIP();
  const std::uint32_t v = 0x01020304;
  const std::string dump = pc::hexdump_object(v);
  // Least significant byte first in memory.
  EXPECT_NE(dump.find("04 03 02 01"), std::string::npos);
}

TEST(Layout, StructLayoutReportsPadding) {
  struct Mixed {
    char c;      // offset 0, size 1
    // 3 bytes padding
    int i;       // offset 4, size 4
    char c2;     // offset 8, size 1
    // 3 bytes tail padding
  };
  pc::StructLayout layout;
  layout.name = "Mixed";
  layout.size = sizeof(Mixed);
  layout.alignment = alignof(Mixed);
  layout.fields = {
      {"c", offsetof(Mixed, c), sizeof(char)},
      {"i", offsetof(Mixed, i), sizeof(int)},
      {"c2", offsetof(Mixed, c2), sizeof(char)},
  };
  EXPECT_EQ(layout.padding_bytes(), sizeof(Mixed) - 6);
  const std::string report = layout.to_string();
  EXPECT_NE(report.find("pad"), std::string::npos);
  EXPECT_NE(report.find("Mixed"), std::string::npos);
}
