// Cross-transport conformance suite: every Communicator feature that the
// in-process backend supports must behave byte-identically over the
// shared-memory and TCP process backends. Each conformance body computes
// a per-rank digest string (protocol results + the deterministic slice of
// the traffic ledger), runs under launch::run_spmd on the backend under
// test, and is compared rank-for-rank against a fresh in-process
// reference run of the same body.
//
// What is and is not asserted about traffic: LaunchResult::traffic sums
// every rank process's ledger AFTER its Communicator finished, so the
// receiver-side counters (messages, payload_words) and the sender-side
// fault counters (dropped, delayed) are complete and deterministic —
// those are asserted byte-identical across all three backends. Each
// rank's digest also carries its own arrivals() count, snapshotted after
// the body's last communication op (at which point everything destined
// to this rank has been consumed). Ack/retry/duplicate counts are
// timing-dependent on real transports (a slow ack triggers a legitimate
// retransmit), so those are asserted per-transport: exact on inproc
// (synchronous delivery never retransmits), lower-bounded on the
// process backends.
//
// Fault-plan rank kills on process backends are REAL SIGKILLs; the suite
// asserts the surviving ranks report the same deterministic
// RankFailedError text as an in-process kill of the same plan.

#include <gtest/gtest.h>

#include <bit>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzzer.hpp"
#include "pdc/mp/client.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"
#include "pdc/mp/fault.hpp"
#include "pdc/mp/launch.hpp"
#include "pdc/mp/transport.hpp"
#include "pdc/stencil/heat.hpp"

namespace mp = pdc::mp;
namespace launch = pdc::mp::launch;
namespace pt = pdc::testing;

namespace {

std::string join64(const std::vector<std::int64_t>& v) {
  std::string s;
  for (const auto x : v) {
    if (!s.empty()) s += ',';
    s += std::to_string(x);
  }
  return s;
}

/// Per-rank mailbox arrivals, appended after the body's last
/// communication op: every message destined to this rank has been
/// consumed by then, and nobody sends afterwards, so the count is
/// deterministic on every backend (sequence dedup keeps retransmitted
/// copies out of it).
void append_arrivals(mp::RankContext& ctx, std::string& out) {
  out += "|arrivals=" + std::to_string(ctx.arrivals());
}

// ------------------------------------------------ conformance bodies ---

PDC_SPMD_BODY(conf_collectives) {
  const int p = ctx.size();
  const int r = ctx.rank();
  std::vector<std::int64_t> digest;
  for (const auto algo : {mp::CollectiveAlgo::kFlat, mp::CollectiveAlgo::kTree}) {
    digest.push_back(ctx.broadcast_value(p / 2, r == p / 2 ? 4242 : 0, algo));
    digest.push_back(
        ctx.reduce(0, (r + 1) * (r + 1), mp::ReduceOp::kSum, algo));
    std::vector<std::int64_t> chunks;
    if (r == p - 1)
      for (int i = 0; i < p; ++i) chunks.push_back(100 + i * 3);
    digest.push_back(ctx.scatter(p - 1, chunks));
    const auto gathered = ctx.gather(0, r * 7 + 1);
    digest.insert(digest.end(), gathered.begin(), gathered.end());
    const auto all = ctx.allgather(r * r - r);
    digest.insert(digest.end(), all.begin(), all.end());
    digest.push_back(ctx.allreduce(r + 1, mp::ReduceOp::kMax));
    digest.push_back(ctx.exscan(r + 1, mp::ReduceOp::kSum));
    ctx.barrier();
  }
  std::vector<std::vector<std::int64_t>> outgoing;
  for (int d = 0; d < p; ++d)
    outgoing.push_back({r * 100 + d, r - d});
  for (const auto& in : ctx.alltoall(std::move(outgoing)))
    digest.insert(digest.end(), in.begin(), in.end());
  io.out = join64(digest);
  append_arrivals(ctx, io.out);
}

PDC_SPMD_BODY(conf_bsp_dht) {
  const int p = ctx.size();
  const int r = ctx.rank();
  mp::BspHashMap dht(ctx, {true});
  for (int i = 0; i < 8; ++i) dht.queue_put(r * 100 + i, r * 1000 + i);
  (void)dht.round();
  const int peer = (r + 1) % p;
  for (int i = 0; i < 8; ++i) dht.queue_get(peer * 100 + i);
  dht.queue_get(-12345);  // never written
  std::vector<std::int64_t> digest;
  for (const auto& g : dht.round()) {
    digest.push_back(g.found ? 1 : 0);
    digest.push_back(g.value);
  }
  io.out = join64(digest);
  append_arrivals(ctx, io.out);
}

PDC_SPMD_BODY(conf_dht_client) {
  const bool reliable = !io.args.empty() && io.args[0] == "reliable";
  const int p = ctx.size();
  const int r = ctx.rank();
  mp::DhtClient client(ctx, {.window = 8, .max_batch = 4, .reliable = reliable});
  for (std::int64_t i = 0; i < 16; ++i)
    (void)client.put(r * 64 + i, (r * 64 + i) * 3 + 1);
  client.fence();
  const int peer = (r + 1) % p;
  std::vector<mp::DhtFuture> gets;
  for (std::int64_t i = 0; i < 16; ++i)
    gets.push_back(client.get(peer * 64 + i));
  gets.push_back(client.get(-4242));  // never written
  std::vector<std::int64_t> digest;
  for (auto& g : gets) {
    const auto res = g.wait();
    digest.push_back(res.found ? 1 : 0);
    digest.push_back(res.value);
  }
  client.shutdown();
  // No arrivals tail here: the client coalesces eagerly when the wire is
  // idle (DestQueue::sent.empty()), so its batch count — and therefore
  // message/arrival counts — is timing-dependent by design, even on the
  // in-process backend. Only the op results are asserted.
  io.out = join64(digest);
}

PDC_SPMD_BODY(conf_heat_strip) {
  namespace st = pdc::stencil;
  const int p = ctx.size();
  const int r = ctx.rank();
  constexpr std::size_t kRows = 24, kCols = 10;
  // Hybrid plans ride in through the body args ("threads=N",
  // "schedule=serial"), so the same digest body covers {R,1} and {R,T}
  // execution on every backend.
  st::ExecPlan plan;
  for (const auto& a : io.args) {
    if (a.rfind("threads=", 0) == 0)
      plan.threads_per_rank = std::stoi(a.substr(8));
    if (a == "schedule=serial") plan.schedule = st::HaloSchedule::kSerial;
  }
  st::HeatOptions hopt;
  hopt.conductivity = 0.25;
  hopt.tile_rows = 4;
  hopt.tile_cols = 8;
  hopt.converge_eps = 1e-2;
  hopt.max_steps = 500;

  st::HeatField g(kRows, kCols);
  for (std::size_t i = 0; i < kRows; ++i)
    for (std::size_t j = 0; j < kCols; ++j)
      g.at(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)) =
          static_cast<float>((i * 7 + j * 13) % 5) * 0.2f;
  g.set_boundary(1.0f, 0.0f, 0.5f, 0.25f);

  const std::size_t n_tiles = (kRows + hopt.tile_rows - 1) / hopt.tile_rows;
  const std::size_t pp = static_cast<std::size_t>(p);
  const std::size_t rr = static_cast<std::size_t>(r);
  const std::size_t r0 = n_tiles * rr / pp * hopt.tile_rows;
  const std::size_t r1 =
      std::min(kRows, n_tiles * (rr + 1) / pp * hopt.tile_rows);
  std::vector<std::int64_t> digest;
  if (r0 >= r1) {
    digest.push_back(0);
  } else {
    st::HeatField strip(r1 - r0, kCols);
    for (std::ptrdiff_t pr = -1; pr <= static_cast<std::ptrdiff_t>(r1 - r0);
         ++pr)
      for (std::ptrdiff_t pc = -1; pc <= static_cast<std::ptrdiff_t>(kCols);
           ++pc)
        strip.at(pr, pc) = g.at(static_cast<std::ptrdiff_t>(r0) + pr, pc);
    const st::MpLinks links{.up = r > 0 ? r - 1 : -1,
                            .down = r + 1 < p ? r + 1 : -1};
    const auto res = st::heat_relax_strip(strip, hopt, plan, ctx, links);
    digest.push_back(static_cast<std::int64_t>(res.steps));
    digest.push_back(static_cast<std::int64_t>(res.tiles_computed));
    digest.push_back(static_cast<std::int64_t>(res.tiles_skipped));
    digest.push_back(static_cast<std::int64_t>(res.halo_words));
    digest.push_back(res.converged ? 1 : 0);
    for (std::size_t i = 0; i < r1 - r0; ++i)
      for (std::size_t j = 0; j < kCols; ++j)
        digest.push_back(std::bit_cast<std::uint32_t>(
            strip.at(static_cast<std::ptrdiff_t>(i),
                     static_cast<std::ptrdiff_t>(j))));
  }
  io.out = join64(digest);
  append_arrivals(ctx, io.out);
}

PDC_SPMD_BODY(conf_p2p_ring) {
  const int p = ctx.size();
  const int r = ctx.rank();
  const int right = (r + 1) % p;
  const int left = (r + p - 1) % p;
  for (std::int64_t i = 0; i < 12; ++i)
    ctx.send_value(right, static_cast<int>(i % 3), r * 1000 + i);
  std::vector<std::int64_t> digest;
  for (std::int64_t i = 0; i < 12; ++i)
    digest.push_back(ctx.recv_value(left, static_cast<int>(i % 3)));
  io.out = join64(digest);
  append_arrivals(ctx, io.out);
}

PDC_SPMD_BODY(conf_reliable_ring) {
  // Launched with LaunchOptions.reliable=true: every ring send rides the
  // reliable channel (sequence numbers, acks, retransmission).
  const int p = ctx.size();
  const int r = ctx.rank();
  const int right = (r + 1) % p;
  const int left = (r + p - 1) % p;
  for (std::int64_t i = 0; i < 12; ++i)
    ctx.send_value(right, static_cast<int>(i % 3), r * 1000 + i);
  std::vector<std::int64_t> digest;
  for (std::int64_t i = 0; i < 12; ++i)
    digest.push_back(ctx.recv_value(left, static_cast<int>(i % 3)));
  io.out = join64(digest);
  append_arrivals(ctx, io.out);
}

// Satellite-3 regressions: single-process assumptions that must hold for
// remote peers too.

PDC_SPMD_BODY(conf_request_dead_peer) {
  // The plan SIGKILLs rank 1 on its first channel op, before anything is
  // sent. Rank 0's Request::wait() on that peer must fast-fail with
  // RankFailedError (not hang), identically on every backend.
  if (ctx.rank() == 1) {
    ctx.send_value(0, 7, 1);  // never completes: the kill clock fires first
  } else if (ctx.rank() == 0) {
    auto req = ctx.irecv(1, 7);
    try {
      (void)req.wait();
      io.out = "got-a-message";
    } catch (const mp::RankFailedError&) {
      io.out = "fastfail";
    }
  }
}

PDC_SPMD_BODY(conf_arrivals) {
  // arrivals()/wait_arrivals() event-loop contract for remote peers:
  // rank 0 sleeps until rank 1's three sends land, drains them, then
  // waits for the peer-stopped notification.
  if (ctx.rank() == 1) {
    for (std::int64_t i = 0; i < 3; ++i) ctx.send_value(0, 5, 10 + i);
  } else if (ctx.rank() == 0) {
    std::uint64_t seen = 0;
    while (ctx.arrivals() < 3) seen = ctx.wait_arrivals(seen);
    std::int64_t sum = 0;
    for (int i = 0; i < 3; ++i) sum += ctx.recv_value(1, 5);
    while (ctx.peer_running(1)) (void)ctx.wait_arrivals(ctx.arrivals());
    io.out = "sum=" + std::to_string(sum) +
             " arrivals=" + std::to_string(ctx.arrivals());
  }
}

// ----------------------------------------------------- the test rig ---

struct Cell {
  mp::TransportKind kind;
  int world;
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string n = mp::to_string(info.param.kind);
  n[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(n[0])));
  return n + "P" + std::to_string(info.param.world);
}

launch::LaunchResult run_body(mp::TransportKind kind, int world,
                              const std::string& body, bool reliable = false,
                              std::vector<std::string> args = {},
                              mp::FaultPlan plan = {}) {
  launch::LaunchOptions o;
  o.body = body;
  o.world = world;
  o.kind = kind;
  o.reliable = reliable;
  o.args = std::move(args);
  o.plan = plan;
  return launch::run_spmd(o);
}

/// Run `body` on the backend under test and on a fresh in-process
/// reference; every rank's digest must match byte for byte.
void expect_conformant(const Cell& cell, const std::string& body,
                       bool reliable = false,
                       std::vector<std::string> args = {},
                       launch::LaunchResult* got_out = nullptr,
                       bool exact_traffic = true) {
  const auto ref =
      run_body(mp::TransportKind::kInproc, cell.world, body, reliable, args);
  const auto got = run_body(cell.kind, cell.world, body, reliable, args);
  if (got_out != nullptr) *got_out = got;
  ASSERT_TRUE(ref.ok()) << "inproc reference failed: " << ref.error;
  ASSERT_TRUE(got.ok()) << mp::to_string(cell.kind)
                        << " run failed: " << got.error;
  ASSERT_EQ(ref.ranks.size(), got.ranks.size());
  for (std::size_t r = 0; r < ref.ranks.size(); ++r) {
    EXPECT_FALSE(ref.ranks[r].out.empty()) << "rank " << r << " empty digest";
    EXPECT_EQ(ref.ranks[r].out, got.ranks[r].out)
        << "rank " << r << " digest diverged on " << mp::to_string(cell.kind);
  }
  // Whole-world traffic, summed from quiescent per-process ledgers: the
  // receiver-side counters and the fault-plan counters are deterministic
  // on every backend — except for bodies whose message count is itself
  // timing-dependent (the eagerly-coalescing DhtClient), which only get
  // the fault-counter check. (Ack/retry/duplicate overhead is never
  // compared here — asserted separately, per transport.)
  if (exact_traffic) {
    EXPECT_EQ(ref.traffic.messages, got.traffic.messages);
    EXPECT_EQ(ref.traffic.payload_words, got.traffic.payload_words);
  }
  EXPECT_EQ(ref.traffic.dropped, got.traffic.dropped);
  EXPECT_EQ(ref.traffic.delayed, got.traffic.delayed);
  if (cell.world > 1) {
    EXPECT_GT(got.traffic.messages, 0u);
  }
}

class TransportConformance : public ::testing::TestWithParam<Cell> {};

TEST_P(TransportConformance, Collectives) {
  expect_conformant(GetParam(), "conf_collectives");
}

TEST_P(TransportConformance, BspHashMapRounds) {
  expect_conformant(GetParam(), "conf_bsp_dht");
}

TEST_P(TransportConformance, DhtClientRawChannel) {
  expect_conformant(GetParam(), "conf_dht_client", false, {}, nullptr,
                    /*exact_traffic=*/false);
}

TEST_P(TransportConformance, DhtClientReliableChannel) {
  expect_conformant(GetParam(), "conf_dht_client", false, {"reliable"}, nullptr,
                    /*exact_traffic=*/false);
}

TEST_P(TransportConformance, HeatStripRelaxation) {
  expect_conformant(GetParam(), "conf_heat_strip");
}

TEST_P(TransportConformance, HeatStripRelaxationHybrid) {
  // {R,4} hybrid ranks: a four-thread team advances every strip, comm
  // funneled through each team's rank-0 thread. Digests (steps, tile
  // counts, halo words, every field word) must match the in-process
  // hybrid reference byte for byte.
  expect_conformant(GetParam(), "conf_heat_strip", false, {"threads=4"});
}

TEST_P(TransportConformance, HeatStripRelaxationHybridSerialAblation) {
  expect_conformant(GetParam(), "conf_heat_strip", false,
                    {"threads=4", "schedule=serial"});
}

TEST_P(TransportConformance, P2pRingPlainChannel) {
  const auto cell = GetParam();
  launch::LaunchResult got;
  expect_conformant(cell, "conf_p2p_ring", false, {}, &got);
  if (::testing::Test::HasFatalFailure()) return;
  // Plain channel on a clean plan: the reliability machinery must never
  // engage, on any backend.
  EXPECT_EQ(got.traffic.acks, 0u);
  EXPECT_EQ(got.traffic.retries, 0u);
  EXPECT_EQ(got.traffic.duplicates, 0u);
}

TEST_P(TransportConformance, P2pRingReliableChannel) {
  const auto cell = GetParam();
  launch::LaunchResult got;
  expect_conformant(cell, "conf_reliable_ring", /*reliable=*/true, {}, &got);
  if (::testing::Test::HasFatalFailure()) return;
  // Frame/ack overhead is transport-specific: inproc delivery is
  // synchronous (the ack lands before the sender ever waits), so counts
  // are exact; on shm/tcp a slow ack legitimately triggers retransmits,
  // so only a lower bound holds. 12 reliable ring sends per rank, each
  // acked at least once.
  const auto floor = static_cast<std::uint64_t>(12 * cell.world);
  if (cell.kind == mp::TransportKind::kInproc) {
    EXPECT_EQ(got.traffic.acks, floor);
    EXPECT_EQ(got.traffic.retries, 0u);
    EXPECT_EQ(got.traffic.duplicates, 0u);
  } else {
    EXPECT_GE(got.traffic.acks, floor);
  }
}

// Every execution shape of the same strip world — {4,1}, {4,2}, {4,4},
// and the serial-schedule ablation — produces the identical per-rank
// digest: hybrid threading and halo overlap change wall-clock only,
// never a byte of results, accounting, or wire traffic.
TEST(HybridPlanShapes, AllThreadCountsAndSchedulesShareOneDigest) {
  const auto base =
      run_body(mp::TransportKind::kInproc, 4, "conf_heat_strip");
  ASSERT_TRUE(base.ok()) << base.error;
  const std::vector<std::vector<std::string>> variants = {
      {"threads=2"}, {"threads=4"}, {"threads=4", "schedule=serial"}};
  for (const auto& args : variants) {
    const auto got = run_body(mp::TransportKind::kInproc, 4,
                              "conf_heat_strip", false, args);
    ASSERT_TRUE(got.ok()) << got.error;
    ASSERT_EQ(base.ranks.size(), got.ranks.size());
    for (std::size_t r = 0; r < base.ranks.size(); ++r)
      EXPECT_EQ(base.ranks[r].out, got.ranks[r].out)
          << "rank " << r << " args " << args[0];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TransportConformance,
    ::testing::Values(Cell{mp::TransportKind::kInproc, 1},
                      Cell{mp::TransportKind::kInproc, 2},
                      Cell{mp::TransportKind::kInproc, 4},
                      Cell{mp::TransportKind::kShm, 1},
                      Cell{mp::TransportKind::kShm, 2},
                      Cell{mp::TransportKind::kShm, 4},
                      Cell{mp::TransportKind::kTcp, 1},
                      Cell{mp::TransportKind::kTcp, 2},
                      Cell{mp::TransportKind::kTcp, 4}),
    cell_name);

// ------------------------------------------------- rank-kill parity ---

class TransportKillParity : public ::testing::TestWithParam<Cell> {};

TEST_P(TransportKillParity, SigkilledRankMatchesInprocessError) {
  const auto [kind, world] = GetParam();
  mp::FaultPlan plan;
  plan.kill_rank = world - 1;
  plan.kill_after_ops = 3;
  plan.seed = 0x5EEDULL;

  const auto ref = run_body(mp::TransportKind::kInproc, world,
                            "conf_collectives", false, {}, plan);
  ASSERT_EQ(ref.outcome, launch::LaunchResult::kRankFailed)
      << "inproc reference: " << ref.error;
  ASSERT_EQ(ref.killed_rank, plan.kill_rank);
  ASSERT_NE(ref.error.find("killed by fault plan"), std::string::npos)
      << ref.error;

  const auto got = run_body(kind, world, "conf_collectives", false, {}, plan);
  EXPECT_EQ(got.outcome, launch::LaunchResult::kRankFailed) << got.error;
  EXPECT_EQ(got.killed_rank, plan.kill_rank);
  // The victim died by a real SIGKILL, not by unwinding an exception.
  ASSERT_LT(static_cast<std::size_t>(plan.kill_rank), got.ranks.size());
  EXPECT_TRUE(got.ranks[plan.kill_rank].signaled);
  EXPECT_EQ(got.ranks[plan.kill_rank].term_signal, SIGKILL);
  // Survivors report the exact in-process error text.
  EXPECT_EQ(got.error, ref.error);
}

INSTANTIATE_TEST_SUITE_P(Matrix, TransportKillParity,
                         ::testing::Values(Cell{mp::TransportKind::kShm, 2},
                                           Cell{mp::TransportKind::kShm, 4},
                                           Cell{mp::TransportKind::kTcp, 2},
                                           Cell{mp::TransportKind::kTcp, 4}),
                         cell_name);

// -------------------------------------- dead-peer fast-fail (sat. 3) ---

class TransportDeadPeer : public ::testing::TestWithParam<mp::TransportKind> {};

TEST_P(TransportDeadPeer, RequestWaitOnKilledRankFastFails) {
  mp::FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_after_ops = 0;
  plan.seed = 0xDEADULL;
  const auto res =
      run_body(GetParam(), 2, "conf_request_dead_peer", false, {}, plan);
  // The world lost a rank, so the run as a whole reports the kill — but
  // rank 0's body must have observed it as a caught RankFailedError from
  // Request::wait, well inside the test timeout.
  EXPECT_EQ(res.outcome, launch::LaunchResult::kRankFailed) << res.error;
  ASSERT_EQ(res.ranks.size(), 2u);
  EXPECT_EQ(res.ranks[0].out, "fastfail");
}

TEST_P(TransportDeadPeer, ArrivalsAndPeerStopNotifications) {
  const auto res = run_body(GetParam(), 2, "conf_arrivals");
  ASSERT_TRUE(res.ok()) << res.error;
  ASSERT_EQ(res.ranks.size(), 2u);
  EXPECT_EQ(res.ranks[0].out, "sum=33 arrivals=3");
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportDeadPeer,
                         ::testing::Values(mp::TransportKind::kInproc,
                                           mp::TransportKind::kShm,
                                           mp::TransportKind::kTcp),
                         [](const auto& info) {
                           std::string n = mp::to_string(info.param);
                           n[0] = static_cast<char>(
                               std::toupper(static_cast<unsigned char>(n[0])));
                           return n;
                         });

// -------------------------------- fuzz over process transports (sat. 2) ---

PDC_SPMD_BODY(conf_buggy_under_drop) {
  // Deliberately wrong whenever the plan drops aggressively: the process
  // fuzzer must catch it, shrink the plan to the one dimension that
  // matters, and emit a repro line carrying the transport= dimension.
  if (ctx.fault_plan().drop > 0.2) {
    io.out = "999";
    return;
  }
  io.out = std::to_string(ctx.allreduce(ctx.rank(), mp::ReduceOp::kSum));
}

class TransportFuzz : public ::testing::TestWithParam<mp::TransportKind> {};

TEST_P(TransportFuzz, CollectivesSurviveSeededFaultPlansWithRealKills) {
  // Seeded drop/dup/reorder/kill plans over forked rank processes: every
  // run must reproduce the in-process fault-free baseline bit-for-bit,
  // or — when the plan SIGKILLs a rank — fail with the clean
  // RankFailedError. A hang is SIGKILLed by the launch timeout and
  // judged as a failure.
  pt::FuzzOptions opt;
  opt.ranks = 3;
  opt.iterations = pt::stress_iters(10);
  opt.base_seed =
      0xFACADEULL + (GetParam() == mp::TransportKind::kShm ? 1 : 2);
  opt.transport = GetParam();
  const auto report = pt::fuzz_spmd_process(opt, "conf_collectives");
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
  EXPECT_EQ(report.iterations_run, opt.iterations);
}

TEST_P(TransportFuzz, RingPipelineSurvivesSeededFaultPlans) {
  pt::FuzzOptions opt;
  opt.ranks = 4;
  opt.iterations = pt::stress_iters(8);
  opt.base_seed = 0x916ULL + (GetParam() == mp::TransportKind::kShm ? 3 : 4);
  opt.transport = GetParam();
  const auto report = pt::fuzz_spmd_process(opt, "conf_p2p_ring");
  EXPECT_TRUE(report.ok) << report.repro() << " failure: " << report.failure;
}

TEST_P(TransportFuzz, CatchesShrinksAndEmitsTransportRepro) {
  pt::FuzzOptions opt;
  opt.ranks = 2;
  opt.iterations = 30;
  opt.base_seed = 0xBADBEEFULL;
  opt.allow_kill = false;  // keep the failure purely answer-mismatch
  opt.transport = GetParam();
  const auto report = pt::fuzz_spmd_process(opt, "conf_buggy_under_drop");
  ASSERT_FALSE(report.ok) << "the fuzzer must find the injected bug";
  EXPECT_GT(report.plan.drop, 0.2) << "shrink must keep the triggering dim";
  EXPECT_EQ(report.plan.dup, 0.0) << "shrink must zero the irrelevant dims";
  EXPECT_FALSE(report.plan.reorder);
  EXPECT_FALSE(report.plan.kills());
  const std::string repro = report.repro();
  EXPECT_NE(repro.find(std::string("transport=") + mp::to_string(GetParam())),
            std::string::npos)
      << repro;
  EXPECT_NE(repro.find("seed="), std::string::npos);
  EXPECT_NE(repro.find("plan=FaultPlan{"), std::string::npos);
}

TEST_P(TransportFuzz, KillReproReplaysDeterministically) {
  // The repro contract over real processes: a plan that SIGKILLs a rank
  // mid-protocol replays 10/10 with the identical outcome, error text,
  // and per-rank digests.
  mp::FaultPlan plan;
  plan.drop = 0.05;
  plan.kill_rank = 1;
  plan.kill_after_ops = 2;
  plan.seed = 0x10ADULL;
  const auto first =
      pt::run_plan_process(3, GetParam(), plan, "conf_collectives");
  EXPECT_EQ(first.outcome, pt::Outcome::kRankFailed) << first.error;
  EXPECT_NE(first.error.find("killed by fault plan"), std::string::npos)
      << first.error;
  for (int i = 0; i < 9; ++i) {
    const auto again =
        pt::run_plan_process(3, GetParam(), plan, "conf_collectives");
    EXPECT_EQ(again.outcome, first.outcome) << "replay " << i;
    EXPECT_EQ(again.error, first.error) << "replay " << i;
    EXPECT_EQ(again.per_rank_out, first.per_rank_out) << "replay " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessTransports, TransportFuzz,
                         ::testing::Values(mp::TransportKind::kShm,
                                           mp::TransportKind::kTcp),
                         [](const auto& info) {
                           std::string n = mp::to_string(info.param);
                           n[0] = static_cast<char>(
                               std::toupper(static_cast<unsigned char>(n[0])));
                           return n;
                         });

}  // namespace
