// Tests for pdc::memsim — cache model, traces, coherence protocols, and
// paging. Miss counts are exact model quantities, so the assertions are
// exact too (the lab asks students to predict these numbers by hand).

#include <gtest/gtest.h>

#include <tuple>

#include "pdc/memsim/cache.hpp"
#include "pdc/memsim/coherence.hpp"
#include "pdc/memsim/paging.hpp"
#include "pdc/memsim/trace.hpp"

namespace pm = pdc::memsim;

// ----------------------------------------------------------- cache basics ---

TEST(CacheConfig, ValidatesGeometry) {
  pm::CacheConfig cfg;
  cfg.total_size = 1000;  // not a power of two
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.total_size = 1024;
  cfg.line_size = 48;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.line_size = 2048;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.line_size = 64;
  cfg.associativity = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.associativity = 32;  // 1024/64 = 16 lines < 32 ways
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.associativity = 4;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.num_lines(), 16u);
  EXPECT_EQ(cfg.num_sets(), 4u);
}

TEST(Cache, AddressDecomposition) {
  pm::CacheConfig cfg;
  cfg.total_size = 1024;
  cfg.line_size = 64;       // 6 offset bits
  cfg.associativity = 1;    // 16 sets -> 4 set bits
  const auto p = pm::split_address(0b1010'1101'0110'1011, cfg);
  EXPECT_EQ(p.offset, 0b10'1011u);
  EXPECT_EQ(p.set, 0b0101u);
  EXPECT_EQ(p.tag, 0b1010'11u);
}

TEST(Cache, ColdMissThenHit) {
  pm::CacheConfig cfg;
  cfg.total_size = 1024;
  cfg.line_size = 64;
  cfg.associativity = 2;
  pm::Cache cache(cfg);
  EXPECT_FALSE(cache.access(0x100, false));  // compulsory miss
  EXPECT_TRUE(cache.access(0x100, false));   // hit
  EXPECT_TRUE(cache.access(0x13F, false));   // same line (0x100..0x13F)
  EXPECT_FALSE(cache.access(0x140, false));  // next line: miss
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflictMisses) {
  // Two addresses mapping to the same set thrash a direct-mapped cache but
  // coexist in a 2-way cache — the classic associativity lesson.
  pm::CacheConfig dm;
  dm.total_size = 1024;
  dm.line_size = 64;
  dm.associativity = 1;
  pm::Cache direct(dm);

  pm::CacheConfig two = dm;
  two.associativity = 2;
  pm::Cache assoc(two);

  // 0x0 and 0x400 map to set 0 in both configs (0x400 = 1024).
  for (int i = 0; i < 10; ++i) {
    direct.access(0x0, false);
    direct.access(0x400, false);
    assoc.access(0x0, false);
    assoc.access(0x400, false);
  }
  EXPECT_EQ(direct.stats().misses, 20u);  // every access misses
  EXPECT_EQ(assoc.stats().misses, 2u);    // only the two cold misses
}

TEST(Cache, LruEvictsLeastRecent) {
  pm::CacheConfig cfg;
  cfg.total_size = 256;
  cfg.line_size = 64;
  cfg.associativity = 4;  // one set of 4 ways
  pm::Cache cache(cfg);
  // Fill 4 ways: lines 0,1,2,3.
  for (pm::Address a : {0x0, 0x40, 0x80, 0xC0}) cache.access(a, false);
  cache.access(0x0, false);    // touch line 0 -> LRU is line 1
  cache.access(0x100, false);  // new line evicts 0x40
  EXPECT_TRUE(cache.contains(0x0));
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_TRUE(cache.contains(0x80));
  EXPECT_TRUE(cache.contains(0x100));
}

TEST(Cache, FifoEvictsOldestRegardlessOfUse) {
  pm::CacheConfig cfg;
  cfg.total_size = 256;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.replacement = pm::Replacement::kFifo;
  pm::Cache cache(cfg);
  for (pm::Address a : {0x0, 0x40, 0x80, 0xC0}) cache.access(a, false);
  cache.access(0x0, false);    // touching does NOT refresh FIFO age
  cache.access(0x100, false);  // evicts 0x0 (oldest fill)
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_TRUE(cache.contains(0x40));
}

TEST(Cache, WritebackCountsDirtyEvictions) {
  pm::CacheConfig cfg;
  cfg.total_size = 128;
  cfg.line_size = 64;
  cfg.associativity = 1;  // 2 sets
  pm::Cache cache(cfg);
  cache.access(0x0, true);    // dirty line in set 0
  cache.access(0x80, false);  // set 0 conflict: evicts dirty line
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  cache.access(0x0, false);   // clean refill, evicts clean 0x80
  cache.access(0x80, false);  // evicts clean 0x0: no writeback either
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteNoAllocateSkipsFill) {
  pm::CacheConfig cfg;
  cfg.total_size = 256;
  cfg.line_size = 64;
  cfg.associativity = 1;
  cfg.write_allocate = false;
  pm::Cache cache(cfg);
  EXPECT_FALSE(cache.access(0x0, true));   // write miss, no allocate
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_FALSE(cache.access(0x0, false));  // still a miss
}

TEST(Cache, InvalidateReportsDirty) {
  pm::CacheConfig cfg;
  cfg.total_size = 256;
  cfg.line_size = 64;
  cfg.associativity = 2;
  pm::Cache cache(cfg);
  cache.access(0x0, true);
  cache.access(0x40, false);
  EXPECT_TRUE(cache.invalidate(0x0));    // was dirty
  EXPECT_FALSE(cache.invalidate(0x40));  // clean
  EXPECT_FALSE(cache.invalidate(0x0));   // already gone
  EXPECT_FALSE(cache.contains(0x0));
}

// -------------------------------------------------------------- traces ---

TEST(Trace, RowVsColumnMajorMissRates) {
  // 64x64 matrix of 8-byte doubles, 64-byte lines: row-major touches each
  // line 8 times (1 miss + 7 hits); column-major misses on (almost) every
  // access once the working set exceeds the cache.
  pm::CacheConfig cfg;
  cfg.total_size = 4 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 1;
  pm::Cache row_cache(cfg), col_cache(cfg);

  const auto row = pm::matrix_row_major(64, 64, 8);
  const auto col = pm::matrix_col_major(64, 64, 8);
  const auto row_stats = pm::run_trace(row_cache, row);
  const auto col_stats = pm::run_trace(col_cache, col);

  // Row-major: exactly one miss per 64-byte line = 64*64/8 = 512.
  EXPECT_EQ(row_stats.misses, 512u);
  // Column-major: a 64x64 row-major matrix strides 512B between accesses;
  // each column walk touches 64 distinct lines and the matrix (32KB)
  // overflows the 4KB cache => every access misses.
  EXPECT_EQ(col_stats.misses, 4096u);
  EXPECT_GT(col_stats.miss_rate(), 4 * row_stats.miss_rate());
}

TEST(Trace, RepeatedSweepHitsWhenWorkingSetFits) {
  pm::CacheConfig cfg;
  cfg.total_size = 8 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 4;
  // Working set 4KB < 8KB cache: second pass all hits.
  pm::Cache fits(cfg);
  pm::run_trace(fits, pm::repeated_sweep(4 * 1024, 64, 2));
  EXPECT_EQ(fits.stats().misses, 64u);  // 4096/64 cold misses only

  // Working set 32KB > 8KB LRU cache swept sequentially: always misses.
  pm::Cache thrash(cfg);
  pm::run_trace(thrash, pm::repeated_sweep(32 * 1024, 64, 2));
  EXPECT_EQ(thrash.stats().hits, 0u);
}

TEST(Trace, StridedAccessMissesEveryLineOnceAtLineStride) {
  pm::CacheConfig cfg;
  cfg.total_size = 64 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 8;
  pm::Cache cache(cfg);
  pm::run_trace(cache, pm::strided(256, 64));
  EXPECT_EQ(cache.stats().misses, 256u);

  pm::Cache cache8(cfg);
  pm::run_trace(cache8, pm::strided(256, 8));  // 8 accesses per line
  EXPECT_EQ(cache8.stats().misses, 32u);
}

TEST(Trace, GeneratorsValidateArgs) {
  EXPECT_THROW((void)pm::matrix_row_major(4, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)pm::strided(4, 0), std::invalid_argument);
  EXPECT_THROW((void)pm::repeated_sweep(64, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)pm::repeated_sweep(64, 8, 0), std::invalid_argument);
  EXPECT_THROW((void)pm::uniform_random(4, 0, 1), std::invalid_argument);
}

TEST(Trace, RandomTraceIsDeterministicPerSeed) {
  const auto a = pm::uniform_random(100, 4096, 42);
  const auto b = pm::uniform_random(100, 4096, 42);
  const auto c = pm::uniform_random(100, 4096, 43);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].addr != b[i].addr) all_equal = false;
  EXPECT_TRUE(all_equal);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].addr != c[i].addr) differs = true;
  EXPECT_TRUE(differs);
}

// Property sweep: larger caches never miss more on an LRU sweep workload
// (inclusion property of LRU).
class LruMonotoneSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruMonotoneSweep, BiggerCacheNeverWorse) {
  const std::size_t small_size = GetParam();
  pm::CacheConfig small_cfg;
  small_cfg.total_size = small_size;
  small_cfg.line_size = 64;
  small_cfg.associativity = small_cfg.num_lines();  // fully associative
  pm::CacheConfig big_cfg = small_cfg;
  big_cfg.total_size = small_size * 2;
  big_cfg.associativity = big_cfg.num_lines();

  const auto trace = pm::uniform_random(20000, 64 * 1024, 7);
  pm::Cache small_cache(small_cfg), big_cache(big_cfg);
  pm::run_trace(small_cache, trace);
  pm::run_trace(big_cache, trace);
  EXPECT_LE(big_cache.stats().misses, small_cache.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LruMonotoneSweep,
                         ::testing::Values(1024, 2048, 4096, 8192));

// ------------------------------------------------------------ hierarchy ---

TEST(Hierarchy, L2CatchesL1Misses) {
  pm::CacheConfig l1;
  l1.total_size = 1024;
  l1.line_size = 64;
  l1.associativity = 2;
  pm::CacheConfig l2;
  l2.total_size = 16 * 1024;
  l2.line_size = 64;
  l2.associativity = 8;
  pm::Hierarchy h({{l1, {4}}, {l2, {12}}}, 100);

  // Sweep an 8KB working set twice: overflows L1, fits L2.
  pm::run_trace(h, pm::repeated_sweep(8 * 1024, 64, 2));
  const auto& s1 = h.level_stats(0);
  const auto& s2 = h.level_stats(1);
  EXPECT_GT(s1.misses, 0u);
  EXPECT_EQ(s2.accesses, s1.misses);  // L2 sees only L1 misses
  // Second pass hits in L2: L2 misses only the cold 128 lines.
  EXPECT_EQ(s2.misses, 128u);
  const double amat = h.amat();
  EXPECT_GT(amat, 4.0);
  EXPECT_LT(amat, 116.0);
}

TEST(Hierarchy, AmatFormula) {
  pm::CacheConfig l1;
  l1.total_size = 1024;
  l1.line_size = 64;
  l1.associativity = 1;
  pm::Hierarchy h({{l1, {4}}}, 100);
  // No accesses: miss rates are 0, AMAT = hit time.
  EXPECT_DOUBLE_EQ(h.amat(), 4.0);
  EXPECT_THROW((void)h.level_stats(1), std::out_of_range);
}

// ------------------------------------------------------------ coherence ---

class CoherenceProtocols : public ::testing::TestWithParam<pm::Protocol> {};

TEST_P(CoherenceProtocols, ReadSharingThenWriteInvalidates) {
  pm::SnoopBus bus(3, GetParam(), 64);
  bus.read(0, 0x100);
  bus.read(1, 0x100);
  bus.read(2, 0x100);
  EXPECT_EQ(bus.state(1, 0x100), pm::LineState::kShared);

  bus.write(0, 0x100);
  EXPECT_EQ(bus.state(0, 0x100), pm::LineState::kModified);
  EXPECT_EQ(bus.state(1, 0x100), pm::LineState::kInvalid);
  EXPECT_EQ(bus.state(2, 0x100), pm::LineState::kInvalid);
  EXPECT_EQ(bus.stats().invalidations, 2u);
}

TEST_P(CoherenceProtocols, ModifiedFlushedOnPeerRead) {
  pm::SnoopBus bus(2, GetParam(), 64);
  bus.write(0, 0x200);
  EXPECT_EQ(bus.state(0, 0x200), pm::LineState::kModified);
  bus.read(1, 0x200);
  EXPECT_EQ(bus.stats().writebacks, 1u);
  EXPECT_EQ(bus.state(0, 0x200), pm::LineState::kShared);
  EXPECT_EQ(bus.state(1, 0x200), pm::LineState::kShared);
}

INSTANTIATE_TEST_SUITE_P(Both, CoherenceProtocols,
                         ::testing::Values(pm::Protocol::kMsi,
                                           pm::Protocol::kMesi));

TEST(Coherence, MesiExclusiveOnSoleReader) {
  pm::SnoopBus mesi(2, pm::Protocol::kMesi, 64);
  mesi.read(0, 0x100);
  EXPECT_EQ(mesi.state(0, 0x100), pm::LineState::kExclusive);
  // Writing an Exclusive line is silent (no bus transaction).
  const auto before = mesi.stats().bus_transactions();
  mesi.write(0, 0x100);
  EXPECT_EQ(mesi.stats().bus_transactions(), before);
  EXPECT_EQ(mesi.stats().silent_upgrades, 1u);
  EXPECT_EQ(mesi.state(0, 0x100), pm::LineState::kModified);
}

TEST(Coherence, MsiSoleReaderStillPaysUpgrade) {
  pm::SnoopBus msi(2, pm::Protocol::kMsi, 64);
  msi.read(0, 0x100);
  EXPECT_EQ(msi.state(0, 0x100), pm::LineState::kShared);  // no E state
  const auto before = msi.stats().bus_transactions();
  msi.write(0, 0x100);
  EXPECT_EQ(msi.stats().bus_transactions(), before + 1);  // BusUpgr
}

TEST(Coherence, MesiReducesTrafficForPrivateData) {
  // The read-then-write private pattern: MESI saves one bus transaction
  // per line vs MSI — the textbook justification for the E state.
  auto traffic = [](pm::Protocol p) {
    pm::SnoopBus bus(4, p, 64);
    for (int c = 0; c < 4; ++c) {
      const pm::Address base = static_cast<pm::Address>(c) * 4096;
      for (int i = 0; i < 16; ++i) {
        bus.read(c, base + static_cast<pm::Address>(i) * 64);
        bus.write(c, base + static_cast<pm::Address>(i) * 64);
      }
    }
    return bus.stats().bus_transactions();
  };
  EXPECT_LT(traffic(pm::Protocol::kMesi), traffic(pm::Protocol::kMsi));
}

TEST(Coherence, FalseSharingCausesInvalidationStorm) {
  // 4 cores incrementing their own counter: packed counters share a line,
  // padded counters do not.
  const auto packed = pm::interleaved_counter_trace(4, 100, 8);    // 8B apart
  const auto padded = pm::interleaved_counter_trace(4, 100, 64);   // 64B apart

  pm::SnoopBus packed_bus(4, pm::Protocol::kMesi, 64);
  pm::SnoopBus padded_bus(4, pm::Protocol::kMesi, 64);
  pm::run_trace(packed_bus, packed);
  pm::run_trace(padded_bus, padded);

  // Padded: each core faults its line once, then runs silently.
  EXPECT_EQ(padded_bus.stats().invalidations, 0u);
  // Packed: every write invalidates peers' copies, every read refetches.
  EXPECT_GT(packed_bus.stats().invalidations, 100u);
  EXPECT_GT(packed_bus.stats().bus_transactions(),
            50 * padded_bus.stats().bus_transactions());
}

TEST(Coherence, ValidatesArguments) {
  EXPECT_THROW(pm::SnoopBus(0, pm::Protocol::kMsi), std::invalid_argument);
  pm::SnoopBus bus(2, pm::Protocol::kMsi);
  EXPECT_THROW(bus.read(5, 0), std::out_of_range);
  EXPECT_THROW(bus.write(-1, 0), std::out_of_range);
  EXPECT_THROW((void)pm::interleaved_counter_trace(0, 1, 8),
               std::invalid_argument);
}

// --------------------------------------------------------------- paging ---

TEST(Paging, LruOnKnownString) {
  // CLRS/OS-textbook example: 1,2,3,4,1,2,5,1,2,3,4,5 with 3 frames.
  const auto refs = pm::belady_reference_string();
  const auto lru = pm::simulate_paging(refs, 3, pm::PageReplacement::kLru);
  EXPECT_EQ(lru.faults, 10u);
  const auto fifo = pm::simulate_paging(refs, 3, pm::PageReplacement::kFifo);
  EXPECT_EQ(fifo.faults, 9u);
  const auto opt =
      pm::simulate_paging(refs, 3, pm::PageReplacement::kOptimal);
  EXPECT_EQ(opt.faults, 7u);
}

TEST(Paging, BeladyAnomalyUnderFifo) {
  const auto refs = pm::belady_reference_string();
  const auto f3 = pm::simulate_paging(refs, 3, pm::PageReplacement::kFifo);
  const auto f4 = pm::simulate_paging(refs, 4, pm::PageReplacement::kFifo);
  // The anomaly: MORE frames, MORE faults (9 -> 10).
  EXPECT_EQ(f3.faults, 9u);
  EXPECT_EQ(f4.faults, 10u);
  EXPECT_GT(f4.faults, f3.faults);
}

TEST(Paging, LruIsAnomalyFree) {
  // LRU is a stack algorithm: faults are monotone non-increasing in frames.
  const auto refs = pm::uniform_random(2000, 64 * 4096, 13);
  std::vector<std::uint64_t> pages;
  for (const auto& r : refs) pages.push_back(r.addr / 4096);
  std::uint64_t prev = ~0ull;
  for (std::size_t frames = 1; frames <= 32; frames *= 2) {
    const auto r = pm::simulate_paging(pages, frames,
                                       pm::PageReplacement::kLru);
    EXPECT_LE(r.faults, prev);
    prev = r.faults;
  }
}

TEST(Paging, OptimalIsLowerBound) {
  const auto refs = pm::uniform_random(3000, 32 * 4096, 99);
  std::vector<std::uint64_t> pages;
  for (const auto& r : refs) pages.push_back(r.addr / 4096);
  for (std::size_t frames : {4u, 8u, 16u}) {
    const auto opt =
        pm::simulate_paging(pages, frames, pm::PageReplacement::kOptimal);
    for (auto policy : {pm::PageReplacement::kFifo, pm::PageReplacement::kLru,
                        pm::PageReplacement::kClock}) {
      const auto r = pm::simulate_paging(pages, frames, policy);
      EXPECT_GE(r.faults, opt.faults)
          << pm::page_replacement_name(policy) << " frames=" << frames;
    }
  }
}

TEST(Paging, ClockApproximatesLru) {
  const auto refs = pm::uniform_random(5000, 64 * 4096, 3);
  std::vector<std::uint64_t> pages;
  for (const auto& r : refs) pages.push_back(r.addr / 4096);
  const auto lru = pm::simulate_paging(pages, 16, pm::PageReplacement::kLru);
  const auto clock =
      pm::simulate_paging(pages, 16, pm::PageReplacement::kClock);
  // Clock should be within 15% of LRU on a random trace.
  EXPECT_NEAR(static_cast<double>(clock.faults),
              static_cast<double>(lru.faults),
              0.15 * static_cast<double>(lru.faults));
}

TEST(Paging, ZeroFramesRejected) {
  const auto refs = pm::belady_reference_string();
  EXPECT_THROW(
      (void)pm::simulate_paging(refs, 0, pm::PageReplacement::kLru),
      std::invalid_argument);
}

TEST(Tlb, HitsOnLocality) {
  pm::Tlb tlb(4, 4096);
  EXPECT_FALSE(tlb.lookup(0x1000));  // cold
  EXPECT_TRUE(tlb.lookup(0x1004));   // same page
  EXPECT_TRUE(tlb.lookup(0x1FFF));
  EXPECT_FALSE(tlb.lookup(0x2000));  // next page
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruEvictionAndFlush) {
  pm::Tlb tlb(2, 4096);
  (void)tlb.lookup(0x0000);  // page 0
  (void)tlb.lookup(0x1000);  // page 1
  (void)tlb.lookup(0x0000);  // touch page 0
  (void)tlb.lookup(0x2000);  // page 2 evicts page 1 (LRU)
  EXPECT_TRUE(tlb.lookup(0x0000));
  EXPECT_FALSE(tlb.lookup(0x1000));  // was evicted
  tlb.flush();
  EXPECT_FALSE(tlb.lookup(0x0000));  // all gone after flush
}

TEST(Coherence, InvariantsHoldOnDirectedWorkloads) {
  for (auto proto : {pm::Protocol::kMsi, pm::Protocol::kMesi}) {
    pm::SnoopBus bus(3, proto, 64);
    bus.read(0, 0x100);
    bus.read(1, 0x100);
    EXPECT_TRUE(bus.invariants_hold());
    bus.write(2, 0x100);
    EXPECT_TRUE(bus.invariants_hold());
    bus.read(0, 0x100);
    bus.write(0, 0x140);
    bus.write(1, 0x180);
    EXPECT_TRUE(bus.invariants_hold());
  }
}

TEST(Prefetch, HalvesSequentialMisses) {
  pm::CacheConfig base;
  base.total_size = 8 * 1024;
  base.line_size = 64;
  base.associativity = 4;
  pm::CacheConfig pf = base;
  pf.next_line_prefetch = true;

  // Sequential stream much larger than the cache.
  const auto trace = pm::strided(4096, 64);
  pm::Cache plain(base), prefetching(pf);
  pm::run_trace(plain, trace);
  pm::run_trace(prefetching, trace);
  // Next-line prefetch turns every second demand miss into a hit.
  EXPECT_EQ(plain.stats().misses, 4096u);
  EXPECT_EQ(prefetching.stats().misses, 2048u);
  EXPECT_GT(prefetching.stats().prefetch_useful, 2000u);
}

TEST(Prefetch, PollutesOnRandomAccess) {
  pm::CacheConfig base;
  base.total_size = 4 * 1024;
  base.line_size = 64;
  base.associativity = 4;
  pm::CacheConfig pf = base;
  pf.next_line_prefetch = true;

  const auto trace = pm::uniform_random(20000, 1 << 20, 3);
  pm::Cache plain(base), prefetching(pf);
  pm::run_trace(plain, trace);
  pm::run_trace(prefetching, trace);
  // Random access: prefetches are rarely useful and evict live lines, so
  // the prefetching cache cannot beat the plain one by much — and most
  // prefetch fills go unused.
  EXPECT_GE(static_cast<double>(prefetching.stats().misses),
            0.95 * static_cast<double>(plain.stats().misses));
  EXPECT_LT(prefetching.stats().prefetch_useful,
            prefetching.stats().prefetch_fills / 2);
}

// Property: hit/miss behavior is invariant under any whole-number-of-
// "cache-image" translation (shifting every address by a multiple of
// total_size maps tags but preserves sets/offsets).
TEST(Cache, TranslationInvariance) {
  pm::CacheConfig cfg;
  cfg.total_size = 4 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 2;
  const auto base_trace = pm::uniform_random(5000, 64 * 1024, 21);
  pm::Cache a(cfg), b(cfg);
  pm::run_trace(a, base_trace);
  pm::Trace shifted = base_trace;
  for (auto& ref : shifted) ref.addr += 16 * cfg.total_size;
  pm::run_trace(b, shifted);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
}
