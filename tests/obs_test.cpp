// pdc::obs — metrics registry and tracing spans. The trace tests validate
// the Chrome trace_event export the way a consumer would: parse the JSON,
// check span nesting per thread, and check that identical runs produce
// identical track labels. The registry tests pin the dual-write contract:
// the process-global "mp.*" counters move in lockstep with a
// communicator's TrafficStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/obs/obs.hpp"

namespace obs = pdc::obs;

namespace {

// ------------------------------------------------------------- metrics ---

TEST(Metrics, CounterAddsAndResets) {
  obs::Counter& c = obs::counter("test.counter.basic");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, SameNameSameCounter) {
  obs::Counter& a = obs::counter("test.counter.alias");
  obs::Counter& b = obs::counter("test.counter.alias");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &obs::counter("test.counter.other"));
}

TEST(Metrics, ConcurrentAddsAreExact) {
  obs::Counter& c = obs::counter("test.counter.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  {
    std::vector<std::jthread> ts;
    for (int t = 0; t < kThreads; ++t)
      ts.emplace_back([&] {
        for (int i = 0; i < kAddsPerThread; ++i) c.add();
      });
  }
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Metrics, GaugeIsLastWriterWins) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Metrics, HistogramLog2Buckets) {
  obs::Histogram& h = obs::histogram("test.hist");
  h.reset();
  h.record(0);
  h.record(1);   // bucket 0
  h.record(2);   // bucket 1
  h.record(3);   // bucket 1
  h.record(64);  // bucket 6
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(6), 1u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  obs::Histogram& h = obs::histogram("test.hist.quantile");
  h.reset();
  // 2 samples in bucket 0 ([0,2)), 4 in bucket 2 ([4,8)), 4 in bucket 4
  // ([16,32)). N = 10; rank = q*N; mass spread uniformly per bucket.
  h.record(0);
  h.record(0);
  for (int i = 0; i < 4; ++i) h.record(4);
  for (int i = 0; i < 4; ++i) h.record(16);
  // rank 5 lands 3/4 into bucket 2: 4 + 0.75*(8-4) = 7.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  // rank 9 lands 3/4 into bucket 4: 16 + 0.75*(32-16) = 28.
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 28.0);
  // rank 1 lands halfway into bucket 0: 0 + 0.5*(2-0) = 1.
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
  // Edge conventions: q<=0 -> lower edge of first non-empty bucket,
  // q>=1 -> upper edge of last non-empty bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 32.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 32.0);
  const auto ps = h.percentiles({0.5, 0.9, 1.0});
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[0], 7.0);
  EXPECT_DOUBLE_EQ(ps[1], 28.0);
  EXPECT_DOUBLE_EQ(ps[2], 32.0);
}

TEST(Metrics, QuantileEdgeCasesAndRawBucketVectors) {
  // Empty histogram -> 0 everywhere.
  obs::Histogram& h = obs::histogram("test.hist.quantile.empty");
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  // Raw bucket vectors (the MetricsSnapshot::histograms representation)
  // go through the same free function.
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets({}, 0.5), 0.0);
  std::vector<std::uint64_t> buckets(obs::Histogram::kBuckets, 0);
  buckets[3] = 10;  // all mass in [8,16)
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(buckets, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(buckets, 0.5), 12.0);
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(buckets, 1.0), 16.0);
  // Snapshot deltas feed the same path: a phase's p50 from `after-before`.
  const auto before = obs::metrics_snapshot();
  obs::Histogram& d = obs::histogram("test.hist.quantile.delta");
  d.reset();
  for (int i = 0; i < 8; ++i) d.record(100);  // bucket 6: [64,128)
  const auto delta = obs::metrics_snapshot() - before;
  const auto it = delta.histograms.find("test.hist.quantile.delta");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(it->second, 0.5), 96.0);
}

TEST(Metrics, SnapshotDeltaPricesOnePhase) {
  obs::Counter& c = obs::counter("test.snapshot.delta");
  c.add(5);
  const auto before = obs::metrics_snapshot();
  c.add(37);
  const auto delta = obs::metrics_snapshot() - before;
  EXPECT_EQ(delta.counter("test.snapshot.delta"), 37u);
  // A name absent from the baseline counts as zero there.
  obs::counter("test.snapshot.fresh").add(3);
  const auto delta2 = obs::metrics_snapshot() - before;
  EXPECT_EQ(delta2.counter("test.snapshot.fresh"), 3u);
  EXPECT_EQ(delta2.counter("test.snapshot.no_such_metric"), 0u);
}

// The acceptance pin: registry deltas for one mp collective equal the
// communicator's own TrafficStats exactly.
TEST(Metrics, MpCollectiveCountersMatchTrafficStats) {
  const auto before = obs::metrics_snapshot();
  pdc::mp::Communicator comm(4);
  comm.run([](pdc::mp::RankContext& ctx) {
    (void)ctx.allreduce(ctx.rank(), pdc::mp::ReduceOp::kSum);
  });
  const auto delta = obs::metrics_snapshot() - before;
  const auto tr = comm.traffic();
  EXPECT_EQ(delta.counter("mp.messages"), tr.messages);
  EXPECT_EQ(delta.counter("mp.payload_words"), tr.payload_words);
  EXPECT_EQ(delta.counter("mp.acks"), tr.acks);
  EXPECT_EQ(delta.counter("mp.retries"), tr.retries);
  EXPECT_EQ(delta.counter("mp.dropped"), tr.dropped);
  EXPECT_EQ(delta.counter("mp.duplicates"), tr.duplicates);
  EXPECT_EQ(delta.counter("mp.delayed"), tr.delayed);
  EXPECT_GT(tr.messages, 0u);
}

TEST(Metrics, TrafficStatsArithmetic) {
  pdc::mp::TrafficStats a;
  a.messages = 10;
  a.payload_words = 100;
  a.acks = 4;
  pdc::mp::TrafficStats b;
  b.messages = 3;
  b.payload_words = 40;
  b.retries = 2;

  const auto sum = a + b;
  EXPECT_EQ(sum.messages, 13u);
  EXPECT_EQ(sum.payload_words, 140u);
  EXPECT_EQ(sum.acks, 4u);
  EXPECT_EQ(sum.retries, 2u);

  const auto diff = sum - b;
  EXPECT_EQ(diff, a);

  pdc::mp::TrafficStats acc;
  acc += a;
  acc += b;
  EXPECT_EQ(acc, sum);
  acc -= b;
  EXPECT_EQ(acc, a);
}

// ------------------------------------------------------ minimal JSON ---

// Tiny recursive-descent JSON parser — enough to verify the exporter
// emits well-formed JSON and to walk the trace_event structure. Throws
// std::runtime_error on malformed input.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return obj.contains(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // decoded value not needed for these tests
            out += '?';
            break;
          default: throw std::runtime_error("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  Json null() {
    if (s_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("bad literal");
    pos_ += 4;
    return {};
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- tracing ---

/// Test fixture: every trace test starts from a clean, disabled tracer.
class Trace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace();
  }
};

TEST_F(Trace, DisabledRecordsNothing) {
  {
    PDC_TRACE_SCOPE("test.should_not_appear");
    obs::TraceScope inner("test.also_not");
  }
  EXPECT_EQ(obs::trace_span_count(), 0u);
  for (const auto& t : obs::trace_threads())
    for (const auto& e : t.events)
      EXPECT_STRNE(e.name, "test.should_not_appear");
}

TEST_F(Trace, SpanRecordsNameAndDuration) {
  obs::set_tracing_enabled(true);
  {
    PDC_TRACE_SCOPE("test.outer");
    PDC_TRACE_SCOPE("test.inner");
  }
  obs::set_tracing_enabled(false);
  ASSERT_EQ(obs::trace_span_count(), 2u);
  const auto threads = obs::trace_threads();
  ASSERT_EQ(threads.size(), 1u);
  // Completion order: inner closes first.
  const auto& evts = threads[0].events;
  EXPECT_STREQ(evts[0].name, "test.inner");
  EXPECT_STREQ(evts[1].name, "test.outer");
  EXPECT_EQ(evts[0].depth, 1u);
  EXPECT_EQ(evts[1].depth, 0u);
  // Inner nests inside outer.
  EXPECT_GE(evts[0].start_ns, evts[1].start_ns);
  EXPECT_LE(evts[0].start_ns + evts[0].dur_ns,
            evts[1].start_ns + evts[1].dur_ns);
}

TEST_F(Trace, ExportIsValidChromeTraceJson) {
  obs::set_tracing_enabled(true);
  {
    PDC_TRACE_SCOPE("test.json \"quoted\\name\"");
    PDC_TRACE_SCOPE("test.json.inner");
  }
  obs::set_tracing_enabled(false);

  const Json root = JsonParser(obs::export_chrome_trace()).parse();
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const auto& events = root.at("traceEvents").arr;
  std::size_t complete = 0, meta = 0;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").str;
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e.has("name"));
      EXPECT_TRUE(e.has("cat"));
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
      EXPECT_TRUE(e.has("pid"));
      EXPECT_TRUE(e.has("tid"));
      EXPECT_GE(e.at("dur").num, 0.0);
    } else {
      EXPECT_EQ(ph, "M");
      ++meta;
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_GE(meta, 1u);  // thread_name metadata for the emitting thread
}

TEST_F(Trace, SpansNestUnderConcurrentEmitters) {
  obs::set_tracing_enabled(true);
  {
    std::vector<std::jthread> ts;
    for (int t = 0; t < 4; ++t)
      ts.emplace_back([t] {
        obs::set_thread_label("test.nest/" + std::to_string(t));
        for (int i = 0; i < 50; ++i) {
          PDC_TRACE_SCOPE("test.nest.outer");
          PDC_TRACE_SCOPE("test.nest.mid");
          PDC_TRACE_SCOPE("test.nest.leaf");
        }
      });
  }
  obs::set_tracing_enabled(false);

  // Per thread: any two spans either nest or are disjoint — never a
  // partial overlap (the invariant Perfetto's flame view needs).
  const auto threads = obs::trace_threads();
  std::size_t emitters = 0;
  for (const auto& th : threads) {
    if (th.label.rfind("test.nest/", 0) != 0) continue;
    ++emitters;
    EXPECT_EQ(th.events.size(), 150u) << th.label;
    EXPECT_EQ(th.dropped, 0u);
    for (std::size_t i = 0; i < th.events.size(); ++i) {
      for (std::size_t j = i + 1; j < th.events.size(); ++j) {
        const auto& a = th.events[i];
        const auto& b = th.events[j];
        const auto a_end = a.start_ns + a.dur_ns;
        const auto b_end = b.start_ns + b.dur_ns;
        const bool disjoint = a_end <= b.start_ns || b_end <= a.start_ns;
        const bool a_in_b = a.start_ns >= b.start_ns && a_end <= b_end;
        const bool b_in_a = b.start_ns >= a.start_ns && b_end <= a_end;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << th.label << ": spans " << i << " and " << j
            << " partially overlap";
      }
    }
  }
  EXPECT_EQ(emitters, 4u);
}

// The exporter orders tracks by (label, registration order), so the same
// workload traced twice produces the same rank labels in the same order.
TEST_F(Trace, RankLabelsAreStableAcrossRuns) {
  const auto mp_labels = [] {
    obs::clear_trace();
    obs::set_tracing_enabled(true);
    pdc::mp::Communicator comm(4);
    comm.run([](pdc::mp::RankContext& ctx) {
      (void)ctx.allreduce(1, pdc::mp::ReduceOp::kSum);
    });
    obs::set_tracing_enabled(false);
    std::vector<std::string> labels;
    for (const auto& th : obs::trace_threads())
      if (th.label.rfind("mp/", 0) == 0) labels.push_back(th.label);
    return labels;
  };

  const auto first = mp_labels();
  const auto second = mp_labels();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, (std::vector<std::string>{"mp/0", "mp/1", "mp/2",
                                             "mp/3"}));
}

// One smoke workload crosses three layers; all three span families land
// in a single trace (the PR's multi-layer acceptance shape).
TEST_F(Trace, CapturesSpansFromThreeLayers) {
  obs::set_tracing_enabled(true);
  auto board = pdc::life::random_grid(64, 64, 0.3, 11);
  pdc::life::run_threaded(board, 4, 2);
  pdc::life::run_message_passing(board, 4, 2);
  obs::set_tracing_enabled(false);

  std::set<std::string> names;
  for (const auto& th : obs::trace_threads())
    for (const auto& e : th.events) names.insert(e.name);
  EXPECT_TRUE(names.contains("life.gen"));
  EXPECT_TRUE(names.contains("core.region"));
  EXPECT_TRUE(names.contains("mp.send"));
  EXPECT_TRUE(names.contains("mp.recv"));
}

TEST_F(Trace, CapacityCapDropsAndCounts) {
  obs::set_trace_capacity(16);
  obs::set_tracing_enabled(true);
  for (int i = 0; i < 100; ++i) {
    PDC_TRACE_SCOPE("test.cap");
  }
  obs::set_tracing_enabled(false);
  std::uint64_t dropped = 0;
  std::size_t kept = 0;
  for (const auto& th : obs::trace_threads()) {
    for (const auto& e : th.events)
      if (std::string_view(e.name) == "test.cap") ++kept;
    dropped += th.dropped;
  }
  EXPECT_EQ(kept, 16u);
  EXPECT_EQ(dropped, 84u);
  obs::set_trace_capacity(1 << 15);
  // clear_trace resets the drop accounting too.
  obs::clear_trace();
  for (const auto& th : obs::trace_threads()) EXPECT_EQ(th.dropped, 0u);
}

// TSan-facing: concurrent emitters racing the exporter and the runtime
// switch must be clean.
TEST_F(Trace, ConcurrentEmissionAndExportIsClean) {
  obs::set_tracing_enabled(true);
  std::atomic<bool> stop{false};
  {
    std::vector<std::jthread> emitters;
    for (int t = 0; t < 4; ++t)
      emitters.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          PDC_TRACE_SCOPE("test.race");
        }
      });
    for (int i = 0; i < 20; ++i) {
      (void)obs::export_chrome_trace();
      (void)obs::trace_summary();
      (void)obs::trace_span_count();
    }
    stop.store(true, std::memory_order_relaxed);
  }
  obs::set_tracing_enabled(false);
  // The export during emission parses, too.
  EXPECT_NO_THROW(JsonParser(obs::export_chrome_trace()).parse());
}

TEST_F(Trace, SummaryListsTopSpans) {
  obs::set_tracing_enabled(true);
  {
    PDC_TRACE_SCOPE("test.summary.hot");
  }
  obs::set_tracing_enabled(false);
  const std::string summary = obs::trace_summary();
  EXPECT_NE(summary.find("test.summary.hot"), std::string::npos);
  EXPECT_NE(summary.find("count"), std::string::npos);
}

}  // namespace
