// Tests for pdc::isa — assembler round trips, instruction semantics,
// function-call mechanics on the stack, flags/branches, and trap behavior.

#include <gtest/gtest.h>

#include "pdc/isa/assembler.hpp"
#include "pdc/isa/instruction.hpp"
#include "pdc/isa/vm.hpp"

namespace pi = pdc::isa;

namespace {

/// Assemble + run to halt, return the VM for inspection.
pi::Vm run_program(const std::string& src,
                   std::vector<std::int64_t> input = {}) {
  pi::Vm vm(pi::assemble(src));
  vm.set_input(std::move(input));
  vm.run();
  return vm;
}

}  // namespace

// ------------------------------------------------------------- assembler ---

TEST(Assembler, ParsesOperandForms) {
  const auto prog = pi::assemble(R"(
    mov r0, $42        ; immediate
    mov r1, r0         ; register
    mov [sp-1], r1     ; memory with negative displacement
    mov r2, [sp-1]     ; memory load
    halt
  )");
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[0].dst, pi::Operand::reg_op(pi::Reg::kR0));
  EXPECT_EQ(prog[0].src, pi::Operand::imm(42));
  EXPECT_EQ(prog[2].dst, pi::Operand::mem(pi::Reg::kSp, -1));
}

TEST(Assembler, ResolvesLabelsForwardAndBackward) {
  const auto prog = pi::assemble(R"(
    start:
      jmp fwd
    back:
      halt
    fwd:
      jmp back
  )");
  ASSERT_EQ(prog.size(), 3u);
  EXPECT_EQ(prog[0].target, 2u);  // fwd
  EXPECT_EQ(prog[2].target, 1u);  // back
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)pi::assemble("nop\nbogus r0\n");
    FAIL() << "expected AsmError";
  } catch (const pi::AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW((void)pi::assemble("mov r0"), pi::AsmError);       // arity
  EXPECT_THROW((void)pi::assemble("mov r9, $1"), pi::AsmError);   // register
  EXPECT_THROW((void)pi::assemble("jmp nowhere"), pi::AsmError);  // label
  EXPECT_THROW((void)pi::assemble("x: nop\nx: nop"), pi::AsmError);
  EXPECT_THROW((void)pi::assemble("mov r0, $zz"), pi::AsmError);
}

TEST(Assembler, DisassembleRoundTrip) {
  const std::string src = R"(
    mov r0, $10
    loop:
    sub r0, $1
    cmp r0, $0
    jne loop
    halt
  )";
  const auto prog = pi::assemble(src);
  const std::string dis = pi::disassemble_program(prog);
  EXPECT_NE(dis.find("mov r0, $10"), std::string::npos);
  EXPECT_NE(dis.find("jne @1"), std::string::npos);
  // Reassembling the disassembly is not supported (labels become @n), but
  // each instruction disassembles deterministically.
  EXPECT_EQ(pi::disassemble(prog[0]), "mov r0, $10");
}

// ------------------------------------------------------------- semantics ---

TEST(Vm, ArithmeticAndOutput) {
  const auto vm = run_program(R"(
    mov r0, $6
    mov r1, $7
    mul r0, r1
    out r0
    halt
  )");
  ASSERT_EQ(vm.output().size(), 1u);
  EXPECT_EQ(vm.output()[0], 42);
}

TEST(Vm, LoopComputesSum) {
  // sum 1..10 = 55
  const auto vm = run_program(R"(
      mov r0, $0       ; acc
      mov r1, $10      ; i
    loop:
      add r0, r1
      sub r1, $1
      cmp r1, $0
      jg loop
      out r0
      halt
  )");
  EXPECT_EQ(vm.output().back(), 55);
}

TEST(Vm, ConditionalBranchesSignedComparisons) {
  const auto vm = run_program(R"(
      mov r0, $-5
      cmp r0, $3
      jl is_less
      out $0
      halt
    is_less:
      out $1
      halt
  )");
  EXPECT_EQ(vm.output().back(), 1);
}

TEST(Vm, FunctionCallMechanics) {
  // square(x) with an explicit stack frame: the CS31 call-convention unit.
  const auto vm = run_program(R"(
      mov r0, $9
      push r0          ; argument
      call square
      pop r1           ; discard argument
      out r0           ; result in r0
      halt
    square:
      push fp          ; prologue
      mov fp, sp
      mov r2, [fp+2]   ; argument (above saved fp and return address)
      mul r2, r2
      mov r0, r2
      pop fp           ; epilogue
      ret
  )");
  EXPECT_EQ(vm.output().back(), 81);
}

TEST(Vm, RecursiveFactorialOnStack) {
  const auto vm = run_program(R"(
      mov r0, $5
      push r0
      call fact
      pop r1
      out r0
      halt
    fact:
      push fp
      mov fp, sp
      mov r1, [fp+2]    ; n
      cmp r1, $1
      jg recurse
      mov r0, $1
      pop fp
      ret
    recurse:
      sub r1, $1
      push r1
      call fact
      pop r1            ; discard arg
      mov r2, [fp+2]    ; n again
      mul r0, r2
      pop fp
      ret
  )");
  EXPECT_EQ(vm.output().back(), 120);
}

TEST(Vm, InputConsumption) {
  const auto vm = run_program(R"(
      in r0
      in r1
      add r0, r1
      out r0
      halt
  )",
                              {30, 12});
  EXPECT_EQ(vm.output().back(), 42);
}

TEST(Vm, FlagsAfterSub) {
  pi::Vm vm(pi::assemble("mov r0, $5\nsub r0, $5\nhalt\n"));
  vm.run();
  EXPECT_TRUE(vm.flags().zf);
  EXPECT_FALSE(vm.flags().sf);
  EXPECT_EQ(vm.reg(pi::Reg::kR0), 0);
}

TEST(Vm, BitwiseAndShifts) {
  const auto vm = run_program(R"(
      mov r0, $12
      and r0, $10      ; 8
      mov r1, $1
      shl r1, $4       ; 16
      or r0, r1        ; 24
      xor r0, $7       ; 31
      shr r0, $1       ; 15
      not r0           ; -16
      neg r0           ; 16
      out r0
      halt
  )");
  EXPECT_EQ(vm.output().back(), 16);
}

// ----------------------------------------------------------------- traps ---

TEST(Vm, TrapsOnDivByZero) {
  pi::Vm vm(pi::assemble("mov r0, $1\nmov r1, $0\ndiv r0, r1\nhalt\n"));
  EXPECT_THROW(vm.run(), pi::VmTrap);
}

TEST(Vm, TrapsOnStackUnderflow) {
  pi::Vm vm(pi::assemble("pop r0\nhalt\n"));
  EXPECT_THROW(vm.run(), pi::VmTrap);
}

TEST(Vm, TrapsOnStackOverflow) {
  // Tiny memory: pushing forever must trap, not scribble.
  pi::Vm vm(pi::assemble("loop: push $1\njmp loop\n"), /*memory_words=*/8);
  EXPECT_THROW(vm.run(), pi::VmTrap);
}

TEST(Vm, TrapsOnMemoryOutOfBounds) {
  pi::Vm vm(pi::assemble("mov r0, $100000\nmov r1, [r0]\nhalt\n"), 16);
  EXPECT_THROW(vm.run(), pi::VmTrap);
}

TEST(Vm, TrapsOnInputExhausted) {
  pi::Vm vm(pi::assemble("in r0\nhalt\n"));
  EXPECT_THROW(vm.run(), pi::VmTrap);
}

TEST(Vm, TrapsOnRunawayProgram) {
  pi::Vm vm(pi::assemble("loop: jmp loop\n"));
  EXPECT_THROW(vm.run(1000), pi::VmTrap);
}

TEST(Vm, FallingOffEndTraps) {
  pi::Vm vm(pi::assemble("nop\n"));
  EXPECT_THROW(vm.run(), pi::VmTrap);  // pc out of range (no halt)
}

// --------------------------------------------------------------- tracing ---

TEST(Vm, TraceRecordsEveryStep) {
  pi::Vm vm(pi::assemble("mov r0, $1\nadd r0, $2\nhalt\n"));
  vm.set_tracing(true);
  vm.run();
  ASSERT_EQ(vm.trace().size(), 3u);
  EXPECT_EQ(vm.trace()[0].text, "mov r0, $1");
  EXPECT_EQ(vm.trace()[1].regs[0], 3);
  EXPECT_EQ(vm.instructions_executed(), 3u);
}

TEST(Vm, SingleStepping) {
  pi::Vm vm(pi::assemble("mov r0, $5\nout r0\nhalt\n"));
  EXPECT_TRUE(vm.step());
  EXPECT_EQ(vm.reg(pi::Reg::kR0), 5);
  EXPECT_TRUE(vm.step());
  EXPECT_FALSE(vm.step());  // halt
  EXPECT_TRUE(vm.halted());
  EXPECT_FALSE(vm.step());  // stays halted
}

// A "binary bomb": the input must satisfy hidden predicates or the bomb
// explodes (outputs 666). Tests both defusal and explosion paths — this is
// the integration test for the bomb example.
namespace {
const char* kBombSource = R"(
    ; phase 1: input must equal 42
    in r0
    cmp r0, $42
    jne explode
    ; phase 2: input must be the sum of the next two inputs
    in r0
    in r1
    in r2
    mov r3, r1
    add r3, r2
    cmp r0, r3
    jne explode
    out $1          ; defused
    halt
  explode:
    out $666
    halt
)";
}

TEST(Vm, BombDefused) {
  const auto vm = run_program(kBombSource, {42, 10, 4, 6});
  EXPECT_EQ(vm.output().back(), 1);
}

TEST(Vm, BombExplodesOnWrongPhase1) {
  const auto vm = run_program(kBombSource, {41, 10, 4, 6});
  EXPECT_EQ(vm.output().back(), 666);
}

TEST(Vm, BombExplodesOnWrongPhase2) {
  const auto vm = run_program(kBombSource, {42, 10, 4, 7});
  EXPECT_EQ(vm.output().back(), 666);
}

// -------------------------------------------------------------- profiler ---

TEST(Profiler, CountsOpcodesAndHotPcs) {
  pi::Vm vm(pi::assemble(R"(
      mov r0, $50
    loop:
      sub r0, $1
      cmp r0, $0
      jg loop
      halt
  )"));
  vm.run();
  EXPECT_EQ(vm.opcode_count(pi::Opcode::kMov), 1u);
  EXPECT_EQ(vm.opcode_count(pi::Opcode::kSub), 50u);
  EXPECT_EQ(vm.opcode_count(pi::Opcode::kCmp), 50u);
  EXPECT_EQ(vm.opcode_count(pi::Opcode::kJg), 50u);
  EXPECT_EQ(vm.opcode_count(pi::Opcode::kHalt), 1u);
  EXPECT_EQ(vm.pc_count(0), 1u);
  EXPECT_EQ(vm.pc_count(1), 50u);
  EXPECT_EQ(vm.pc_count(99), 0u);  // out of range: 0, not a throw
}

TEST(Profiler, HottestInstructionsSorted) {
  pi::Vm vm(pi::assemble(R"(
      mov r0, $10
    loop:
      sub r0, $1
      cmp r0, $0
      jg loop
      halt
  )"));
  vm.run();
  const auto hot = vm.hottest_instructions(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_GE(hot[0].second, hot[1].second);
  EXPECT_EQ(hot[0].second, 10u);
}

TEST(Assembler, ToleratesWhitespaceInMemoryOperands) {
  const auto prog = pi::assemble("mov r0, [ fp + 2 ]\nmov r1, [sp - 3]\nhalt\n");
  EXPECT_EQ(prog[0].src, pi::Operand::mem(pi::Reg::kFp, 2));
  EXPECT_EQ(prog[1].src, pi::Operand::mem(pi::Reg::kSp, -3));
}

TEST(Assembler, MultipleLabelsOnOneLine) {
  const auto prog = pi::assemble("a: b: nop\njmp a\njmp b\n");
  EXPECT_EQ(prog[1].target, 0u);
  EXPECT_EQ(prog[2].target, 0u);
}

TEST(Assembler, HexImmediates) {
  const auto prog = pi::assemble("mov r0, $0x2A\nhalt\n");
  EXPECT_EQ(prog[0].src, pi::Operand::imm(42));
}

// Property: random straight-line arithmetic programs produce the same
// register state as a host-side interpreter (the "oracle" differential
// test used to validate real ISA simulators).

#include <random>

TEST(Vm, RandomProgramsMatchHostOracle) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::string src;
    std::int64_t regs[6] = {};
    // Seed registers with small values.
    for (int r = 0; r < 6; ++r) {
      const auto v = static_cast<std::int64_t>(rng() % 2000) - 1000;
      regs[r] = v;
      src += "mov r" + std::to_string(r) + ", $" + std::to_string(v) + "\n";
    }
    // Random arithmetic ops (avoid div to dodge divide-by-zero traps).
    for (int step = 0; step < 30; ++step) {
      const int dst = static_cast<int>(rng() % 6);
      const int s = static_cast<int>(rng() % 6);
      switch (rng() % 5) {
        case 0:
          src += "add r" + std::to_string(dst) + ", r" + std::to_string(s) +
                 "\n";
          regs[dst] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(regs[dst]) +
              static_cast<std::uint64_t>(regs[s]));
          break;
        case 1:
          src += "sub r" + std::to_string(dst) + ", r" + std::to_string(s) +
                 "\n";
          regs[dst] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(regs[dst]) -
              static_cast<std::uint64_t>(regs[s]));
          break;
        case 2:
          src += "xor r" + std::to_string(dst) + ", r" + std::to_string(s) +
                 "\n";
          regs[dst] ^= regs[s];
          break;
        case 3:
          src += "and r" + std::to_string(dst) + ", r" + std::to_string(s) +
                 "\n";
          regs[dst] &= regs[s];
          break;
        default:
          src += "or r" + std::to_string(dst) + ", r" + std::to_string(s) +
                 "\n";
          regs[dst] |= regs[s];
          break;
      }
    }
    src += "halt\n";
    pi::Vm vm(pi::assemble(src));
    vm.run();
    for (int r = 0; r < 6; ++r)
      ASSERT_EQ(vm.reg(static_cast<pi::Reg>(r)), regs[r])
          << "trial " << trial << " r" << r << "\n" << src;
  }
}
