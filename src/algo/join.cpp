#include "pdc/algo/join.hpp"

#include <stdexcept>
#include <unordered_map>

#include "pdc/core/team.hpp"

namespace pdc::algo {

std::vector<JoinedRow> nested_loop_join(std::span<const Row> r,
                                        std::span<const Row> s) {
  std::vector<JoinedRow> out;
  for (const auto& a : r)
    for (const auto& b : s)
      if (a.key == b.key) out.push_back({a.key, a.payload, b.payload});
  return out;
}

namespace {

/// Build on `build_side`, probe with `probe_side`.
void build_and_probe(std::span<const Row> build_side,
                     std::span<const Row> probe_side, bool build_is_left,
                     std::vector<JoinedRow>& out) {
  std::unordered_multimap<std::int64_t, std::int64_t> table;
  table.reserve(build_side.size());
  for (const auto& row : build_side) table.emplace(row.key, row.payload);
  for (const auto& row : probe_side) {
    const auto [lo, hi] = table.equal_range(row.key);
    for (auto it = lo; it != hi; ++it) {
      if (build_is_left) {
        out.push_back({row.key, it->second, row.payload});
      } else {
        out.push_back({row.key, row.payload, it->second});
      }
    }
  }
}

}  // namespace

std::vector<JoinedRow> hash_join(std::span<const Row> r,
                                 std::span<const Row> s) {
  std::vector<JoinedRow> out;
  if (r.size() <= s.size()) {
    build_and_probe(r, s, /*build_is_left=*/true, out);
  } else {
    build_and_probe(s, r, /*build_is_left=*/false, out);
  }
  return out;
}

std::vector<JoinedRow> parallel_hash_join(std::span<const Row> r,
                                          std::span<const Row> s,
                                          int threads,
                                          std::size_t partitions) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (partitions == 0)
    partitions = static_cast<std::size_t>(4 * threads);

  const auto part_of = [partitions](std::int64_t key) {
    return static_cast<std::size_t>(std::hash<std::int64_t>{}(key)) %
           partitions;
  };

  // Phase 1: parallel partition. Each worker partitions a block of each
  // relation into its own buckets; buckets are concatenated afterwards.
  const auto workers = static_cast<std::size_t>(threads);
  std::vector<std::vector<std::vector<Row>>> r_local(
      workers, std::vector<std::vector<Row>>(partitions));
  std::vector<std::vector<std::vector<Row>>> s_local = r_local;

  core::Team::run(threads, [&](core::TeamContext& ctx) {
    const auto w = static_cast<std::size_t>(ctx.rank());
    {
      const auto [lo, hi] = ctx.block_range(0, r.size());
      for (std::size_t i = lo; i < hi; ++i)
        r_local[w][part_of(r[i].key)].push_back(r[i]);
    }
    {
      const auto [lo, hi] = ctx.block_range(0, s.size());
      for (std::size_t i = lo; i < hi; ++i)
        s_local[w][part_of(s[i].key)].push_back(s[i]);
    }
  });

  std::vector<std::vector<Row>> r_parts(partitions), s_parts(partitions);
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t p = 0; p < partitions; ++p) {
      auto& rp = r_parts[p];
      rp.insert(rp.end(), r_local[w][p].begin(), r_local[w][p].end());
      auto& sp = s_parts[p];
      sp.insert(sp.end(), s_local[w][p].begin(), s_local[w][p].end());
    }
  }

  // Phase 2: join matching partitions independently in parallel.
  std::vector<std::vector<JoinedRow>> results(partitions);
  core::Team::run(threads, [&](core::TeamContext& ctx) {
    for (std::size_t p = static_cast<std::size_t>(ctx.rank());
         p < partitions; p += static_cast<std::size_t>(ctx.size())) {
      if (r_parts[p].empty() || s_parts[p].empty()) continue;
      if (r_parts[p].size() <= s_parts[p].size()) {
        build_and_probe(r_parts[p], s_parts[p], true, results[p]);
      } else {
        build_and_probe(s_parts[p], r_parts[p], false, results[p]);
      }
    }
  });

  std::vector<JoinedRow> out;
  for (auto& part : results)
    out.insert(out.end(), part.begin(), part.end());
  return out;
}

}  // namespace pdc::algo
