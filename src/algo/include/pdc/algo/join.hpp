#pragma once
// Parallel hash join — the paper's planned CS44 (Databases) content:
// "parallel join algorithms". GRACE-style: both relations are hash
// partitioned in parallel, then partition pairs are joined independently
// (build + probe), so the join parallelizes without shared mutable state.

#include <cstdint>
#include <span>
#include <vector>

namespace pdc::algo {

/// A relation row: join key + payload.
struct Row {
  std::int64_t key = 0;
  std::int64_t payload = 0;
  bool operator==(const Row&) const = default;
};

/// One joined output tuple.
struct JoinedRow {
  std::int64_t key = 0;
  std::int64_t left_payload = 0;
  std::int64_t right_payload = 0;
  bool operator==(const JoinedRow&) const = default;
  auto operator<=>(const JoinedRow&) const = default;
};

/// Equi-join r ⋈ s on key, sequential nested loops — the Θ(|R|·|S|)
/// baseline (and the test oracle).
[[nodiscard]] std::vector<JoinedRow> nested_loop_join(
    std::span<const Row> r, std::span<const Row> s);

/// Sequential hash join: build a hash table on the smaller side, probe
/// with the larger. Θ(|R| + |S| + |output|).
[[nodiscard]] std::vector<JoinedRow> hash_join(std::span<const Row> r,
                                               std::span<const Row> s);

/// GRACE parallel hash join over `threads` workers and
/// `partitions` >= threads hash partitions. Output order is unspecified;
/// compare as multisets.
[[nodiscard]] std::vector<JoinedRow> parallel_hash_join(
    std::span<const Row> r, std::span<const Row> s, int threads,
    std::size_t partitions = 0);

}  // namespace pdc::algo
