#pragma once
// Dense matrix kernels (Table III "Matrix Computation"): naive vs
// loop-reordered vs cache-blocked vs parallel multiply, and transpose.
// These are the in-memory counterparts of pdc::extmem's out-of-core
// versions; bench_table3_models measures the wall-clock effect of the
// same blocking idea the I/O model predicts.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdc::algo {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] double* data() { return data_.data(); }

  /// Deterministic pseudo-random fill.
  void fill_pattern(std::uint64_t seed);

  /// Max absolute elementwise difference.
  [[nodiscard]] double max_diff(const Matrix& other) const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// C = A * B, classic i-j-k loop (B walked column-wise: cache hostile).
[[nodiscard]] Matrix matmul_naive(const Matrix& a, const Matrix& b);

/// C = A * B, i-k-j loop order (all unit-stride inner accesses).
[[nodiscard]] Matrix matmul_ikj(const Matrix& a, const Matrix& b);

/// C = A * B with square tiling (`tile` = 0 picks 64).
[[nodiscard]] Matrix matmul_blocked(const Matrix& a, const Matrix& b,
                                    std::size_t tile = 0);

/// C = A * B with rows block-partitioned over `threads` (i-k-j inside).
[[nodiscard]] Matrix matmul_parallel(const Matrix& a, const Matrix& b,
                                     int threads);

/// Out-of-place transpose.
[[nodiscard]] Matrix transpose(const Matrix& m);

}  // namespace pdc::algo
