#pragma once
// Merge sort — CS41's unifying example across models of computation:
//   RAM model:       sequential merge sort, Θ(n log n) comparisons
//   shared memory:   fork-join parallel merge sort (invoke_parallel),
//                    work Θ(n log n), span Θ(n) with sequential merges
//   I/O model:       external merge sort (pdc::extmem::external_merge_sort)
// The analytic DAG lives in pdc::model::fork_join_sort_dag.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "pdc/core/task_group.hpp"

namespace pdc::algo {

namespace detail {

template <typename T, typename Cmp>
void merge_sort_rec(std::vector<T>& data, std::vector<T>& scratch,
                    std::size_t lo, std::size_t hi, const Cmp& cmp) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  merge_sort_rec(data, scratch, lo, mid, cmp);
  merge_sort_rec(data, scratch, mid, hi, cmp);
  std::merge(data.begin() + static_cast<long>(lo),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(hi),
             scratch.begin() + static_cast<long>(lo), cmp);
  std::copy(scratch.begin() + static_cast<long>(lo),
            scratch.begin() + static_cast<long>(hi),
            data.begin() + static_cast<long>(lo));
}

template <typename T, typename Cmp>
void parallel_merge_sort_rec(std::vector<T>& data, std::vector<T>& scratch,
                             std::size_t lo, std::size_t hi, const Cmp& cmp,
                             int depth) {
  constexpr std::size_t kCutoff = 2048;
  if (depth <= 0 || hi - lo <= kCutoff) {
    merge_sort_rec(data, scratch, lo, hi, cmp);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  core::invoke_parallel(
      [&] { parallel_merge_sort_rec(data, scratch, lo, mid, cmp, depth - 1); },
      [&] { parallel_merge_sort_rec(data, scratch, mid, hi, cmp, depth - 1); },
      /*depth_budget=*/1);
  std::merge(data.begin() + static_cast<long>(lo),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(hi),
             scratch.begin() + static_cast<long>(lo), cmp);
  std::copy(scratch.begin() + static_cast<long>(lo),
            scratch.begin() + static_cast<long>(hi),
            data.begin() + static_cast<long>(lo));
}

}  // namespace detail

/// Sequential merge sort (stable).
template <typename T, typename Cmp = std::less<T>>
void merge_sort(std::vector<T>& data, Cmp cmp = {}) {
  std::vector<T> scratch(data.size());
  detail::merge_sort_rec(data, scratch, 0, data.size(), cmp);
}

/// Fork-join parallel merge sort: recursion forks until ~`threads` leaves
/// (then sorts sequentially); merges are sequential, so the span is Θ(n) —
/// expect speedup to flatten well below linear, exactly as the work/span
/// analysis predicts.
template <typename T, typename Cmp = std::less<T>>
void parallel_merge_sort(std::vector<T>& data, int threads, Cmp cmp = {}) {
  std::vector<T> scratch(data.size());
  detail::parallel_merge_sort_rec(data, scratch, 0, data.size(), cmp,
                                  core::fork_depth_for_threads(threads));
}

}  // namespace pdc::algo
