#pragma once
// Distributed sample sort (PSRS — parallel sorting by regular sampling)
// over the message-passing substrate: the executable counterpart of the
// BSP cost skeleton in pdc::model::bsp_sample_sort, and the kind of MPI
// program CS87's project unit targets.
//
// Phases (each rank): local sort -> pick p regular samples -> gather
// samples at rank 0 -> rank 0 selects p-1 pivots, broadcast -> partition
// local data by pivot -> all-to-all exchange -> local merge. Rank 0
// gathers the concatenated result.

#include <cstdint>
#include <vector>

namespace pdc::algo {

/// Sort `data` using `ranks` message-passing processes; returns the
/// sorted vector. Also returns, through the optional out-parameters, the
/// total messages and payload words the algorithm moved (for comparison
/// with the BSP cost model).
[[nodiscard]] std::vector<std::int64_t> mp_sample_sort(
    std::vector<std::int64_t> data, int ranks,
    std::uint64_t* messages_out = nullptr,
    std::uint64_t* payload_words_out = nullptr);

}  // namespace pdc::algo
