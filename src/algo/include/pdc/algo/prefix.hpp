#pragma once
// Applications of parallel prefix (Table III "Scan" paradigm): pack/filter
// via exclusive scan + scatter, and a parallel histogram with per-thread
// local bins — the two idioms the CS40 reduction lab generalizes to.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/core/reduce_scan.hpp"
#include "pdc/core/team.hpp"

namespace pdc::algo {

/// Keep elements where `pred` holds, preserving order — implemented the
/// data-parallel way: flag, exclusive-scan the flags, scatter. Work Θ(n),
/// span Θ(n/P + P).
template <typename T, typename Pred>
[[nodiscard]] std::vector<T> parallel_pack(std::span<const T> data,
                                           Pred pred, int threads) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  const std::size_t n = data.size();
  if (n == 0) return {};

  std::vector<std::size_t> flags(n);
  core::parallel_for(0, n, threads,
                     [&](std::size_t i) { flags[i] = pred(data[i]) ? 1 : 0; });

  std::vector<std::size_t> offsets(n);
  core::parallel_exclusive_scan<std::size_t>(flags, offsets, 0, threads);

  const std::size_t total = offsets[n - 1] + flags[n - 1];
  std::vector<T> out(total);
  core::parallel_for(0, n, threads, [&](std::size_t i) {
    if (flags[i] != 0) out[offsets[i]] = data[i];
  });
  return out;
}

/// Histogram of `data` into `bins` buckets via `bin_of` (must return a
/// value < bins). Per-thread local histograms merged at the end — the
/// standard way to avoid atomics on the hot path.
template <typename T, typename BinOf>
[[nodiscard]] std::vector<std::uint64_t> parallel_histogram(
    std::span<const T> data, std::size_t bins, BinOf bin_of, int threads) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (bins == 0) throw std::invalid_argument("bins must be > 0");

  std::vector<std::vector<std::uint64_t>> local(
      static_cast<std::size_t>(threads),
      std::vector<std::uint64_t>(bins, 0));
  core::Team::run(threads, [&](core::TeamContext& ctx) {
    auto& mine = local[static_cast<std::size_t>(ctx.rank())];
    const auto [lo, hi] = ctx.block_range(0, data.size());
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = bin_of(data[i]);
      if (b >= bins) throw std::out_of_range("bin_of returned bad bin");
      ++mine[b];
    }
  });

  std::vector<std::uint64_t> total(bins, 0);
  for (const auto& hist : local)
    for (std::size_t b = 0; b < bins; ++b) total[b] += hist[b];
  return total;
}

}  // namespace pdc::algo
