#pragma once
// Selection (Table III "Algorithmic Problems: Selection"): find the k-th
// smallest element. Three algorithms with different guarantees:
//   - sort_select:        Θ(n log n), the baseline
//   - quickselect:        expected Θ(n), worst case Θ(n²)
//   - median_of_medians:  worst-case Θ(n) (BFPRT)

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pdc::algo {

/// k is 0-based: k == 0 selects the minimum. All functions throw
/// std::out_of_range when k >= data.size() and std::invalid_argument on
/// empty input.

[[nodiscard]] std::int64_t sort_select(std::span<const std::int64_t> data,
                                       std::size_t k);

[[nodiscard]] std::int64_t quickselect(std::span<const std::int64_t> data,
                                       std::size_t k,
                                       std::uint64_t seed = 12345);

[[nodiscard]] std::int64_t median_of_medians(
    std::span<const std::int64_t> data, std::size_t k);

}  // namespace pdc::algo
