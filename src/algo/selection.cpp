#include "pdc/algo/selection.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdc::algo {

namespace {

void check(std::span<const std::int64_t> data, std::size_t k) {
  if (data.empty()) throw std::invalid_argument("selection on empty input");
  if (k >= data.size()) throw std::out_of_range("selection rank");
}

/// Three-way partition of `v` around `pivot`: returns (less, equal) sizes.
std::pair<std::size_t, std::size_t> partition3(std::vector<std::int64_t>& v,
                                               std::int64_t pivot) {
  std::size_t lt = 0, eq = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] < pivot) ++lt;
    if (v[i] == pivot) ++eq;
  }
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  for (auto x : v)
    if (x < pivot) out.push_back(x);
  for (auto x : v)
    if (x == pivot) out.push_back(x);
  for (auto x : v)
    if (x > pivot) out.push_back(x);
  v = std::move(out);
  return {lt, eq};
}

std::int64_t quickselect_impl(std::vector<std::int64_t> v, std::size_t k,
                              std::uint64_t seed) {
  std::uint64_t s = seed ? seed : 1;
  while (true) {
    if (v.size() == 1) return v[0];
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const std::int64_t pivot = v[s % v.size()];
    const auto [lt, eq] = partition3(v, pivot);
    if (k < lt) {
      v.resize(lt);
    } else if (k < lt + eq) {
      return pivot;
    } else {
      v.erase(v.begin(), v.begin() + static_cast<long>(lt + eq));
      k -= lt + eq;
    }
  }
}

std::int64_t mom_impl(std::vector<std::int64_t> v, std::size_t k);

/// BFPRT pivot: median of the medians of groups of 5.
std::int64_t mom_pivot(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> medians;
  medians.reserve(v.size() / 5 + 1);
  for (std::size_t i = 0; i < v.size(); i += 5) {
    const std::size_t len = std::min<std::size_t>(5, v.size() - i);
    std::vector<std::int64_t> group(v.begin() + static_cast<long>(i),
                                    v.begin() + static_cast<long>(i + len));
    std::sort(group.begin(), group.end());
    medians.push_back(group[len / 2]);
  }
  if (medians.size() == 1) return medians[0];
  const std::size_t mid = medians.size() / 2;
  return mom_impl(std::move(medians), mid);
}

std::int64_t mom_impl(std::vector<std::int64_t> v, std::size_t k) {
  while (true) {
    if (v.size() <= 5) {
      std::sort(v.begin(), v.end());
      return v[k];
    }
    const std::int64_t pivot = mom_pivot(v);
    const auto [lt, eq] = partition3(v, pivot);
    if (k < lt) {
      v.resize(lt);
    } else if (k < lt + eq) {
      return pivot;
    } else {
      v.erase(v.begin(), v.begin() + static_cast<long>(lt + eq));
      k -= lt + eq;
    }
  }
}

}  // namespace

std::int64_t sort_select(std::span<const std::int64_t> data, std::size_t k) {
  check(data, k);
  std::vector<std::int64_t> v(data.begin(), data.end());
  std::sort(v.begin(), v.end());
  return v[k];
}

std::int64_t quickselect(std::span<const std::int64_t> data, std::size_t k,
                         std::uint64_t seed) {
  check(data, k);
  return quickselect_impl(std::vector<std::int64_t>(data.begin(), data.end()),
                          k, seed);
}

std::int64_t median_of_medians(std::span<const std::int64_t> data,
                               std::size_t k) {
  check(data, k);
  return mom_impl(std::vector<std::int64_t>(data.begin(), data.end()), k);
}

}  // namespace pdc::algo
