#include "pdc/algo/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pdc/core/parallel_for.hpp"

namespace pdc::algo {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  if (rows_ == 0 || cols_ == 0)
    throw std::invalid_argument("matrix dimensions must be > 0");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix index");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix index");
  return data_[r * cols_ + c];
}

void Matrix::fill_pattern(std::uint64_t seed) {
  std::uint64_t s = seed ? seed : 1;
  for (auto& x : data_) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<double>(s % 1997) / 1000.0 - 1.0;
  }
}

double Matrix::max_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("dimension mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

namespace {
void check_mult(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul dimension mismatch");
}
}  // namespace

Matrix matmul_naive(const Matrix& a, const Matrix& b) {
  check_mult(a, b);
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        sum += a.data()[i * a.cols() + k] * b.data()[k * b.cols() + j];
      c.data()[i * c.cols() + j] = sum;
    }
  return c;
}

Matrix matmul_ikj(const Matrix& a, const Matrix& b) {
  check_mult(a, b);
  Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.data()[i * a.cols() + k];
      const double* brow = b.data() + k * n;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  return c;
}

Matrix matmul_blocked(const Matrix& a, const Matrix& b, std::size_t tile) {
  check_mult(a, b);
  if (tile == 0) tile = 64;
  Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  for (std::size_t ii = 0; ii < a.rows(); ii += tile) {
    const std::size_t imax = std::min(a.rows(), ii + tile);
    for (std::size_t kk = 0; kk < a.cols(); kk += tile) {
      const std::size_t kmax = std::min(a.cols(), kk + tile);
      for (std::size_t jj = 0; jj < n; jj += tile) {
        const std::size_t jmax = std::min(n, jj + tile);
        for (std::size_t i = ii; i < imax; ++i) {
          for (std::size_t k = kk; k < kmax; ++k) {
            const double aik = a.data()[i * a.cols() + k];
            const double* brow = b.data() + k * n;
            double* crow = c.data() + i * n;
            for (std::size_t j = jj; j < jmax; ++j)
              crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
  return c;
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b, int threads) {
  check_mult(a, b);
  Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  core::parallel_for(0, a.rows(), threads, [&](std::size_t i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.data()[i * a.cols() + k];
      const double* brow = b.data() + k * n;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      t.data()[c * m.rows() + r] = m.data()[r * m.cols() + c];
  return t;
}

}  // namespace pdc::algo
