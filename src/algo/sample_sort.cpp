#include "pdc/algo/sample_sort.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "pdc/mp/comm.hpp"

namespace pdc::algo {

std::vector<std::int64_t> mp_sample_sort(std::vector<std::int64_t> data,
                                         int ranks,
                                         std::uint64_t* messages_out,
                                         std::uint64_t* payload_words_out) {
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  if (ranks == 1 || data.size() < static_cast<std::size_t>(2 * ranks)) {
    std::sort(data.begin(), data.end());
    if (messages_out != nullptr) *messages_out = 0;
    if (payload_words_out != nullptr) *payload_words_out = 0;
    return data;
  }

  const std::size_t n = data.size();
  std::vector<std::int64_t> result(n);
  mp::Communicator comm(ranks);

  comm.run([&](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    const auto up = static_cast<std::size_t>(p);
    const auto ur = static_cast<std::size_t>(r);

    // Block partition of the input (each rank copies its own block; the
    // shared vector is only read here, before any rank writes).
    const std::size_t base = n / up;
    const std::size_t extra = n % up;
    const std::size_t lo = ur * base + std::min(ur, extra);
    const std::size_t len = base + (ur < extra ? 1 : 0);
    std::vector<std::int64_t> local(data.begin() + static_cast<long>(lo),
                                    data.begin() + static_cast<long>(lo + len));

    // Phase 1: local sort.
    std::sort(local.begin(), local.end());

    // Phase 2: p regular samples per rank, gathered at rank 0.
    // (gather() moves one value; send the whole sample vector P2P-style
    // through alltoall to keep it a collective exercise.)
    std::vector<std::int64_t> samples;
    for (int s = 0; s < p; ++s) {
      const std::size_t idx =
          local.empty() ? 0
                        : std::min(local.size() - 1,
                                   static_cast<std::size_t>(s) * local.size() /
                                       up);
      samples.push_back(local.empty() ? 0 : local[idx]);
    }
    std::vector<std::vector<std::int64_t>> sample_out(up);
    sample_out[0] = samples;  // everyone sends samples to rank 0
    auto sample_in = ctx.alltoall(std::move(sample_out));

    // Phase 3: rank 0 sorts the p*p samples and broadcasts p-1 pivots.
    std::vector<std::int64_t> pivots;
    if (r == 0) {
      std::vector<std::int64_t> all;
      for (auto& v : sample_in) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      for (int k = 1; k < p; ++k)
        pivots.push_back(all[static_cast<std::size_t>(k) * all.size() / up]);
    } else {
      pivots.assign(static_cast<std::size_t>(p - 1), 0);
    }
    pivots = ctx.broadcast(0, std::move(pivots));

    // Phase 4: partition local data by pivots, all-to-all exchange.
    std::vector<std::vector<std::int64_t>> buckets(up);
    {
      std::size_t b = 0;
      for (auto v : local) {
        while (b + 1 < up && v > pivots[b]) ++b;
        // v may belong to an earlier bucket if local is sorted... local
        // IS sorted, so b only moves forward. (First elements may skip
        // buckets; that is fine.)
        buckets[b].push_back(v);
      }
    }
    auto incoming = ctx.alltoall(std::move(buckets));

    // Phase 5: p-way merge of the sorted incoming runs.
    std::vector<std::int64_t> merged;
    for (auto& run : incoming)
      merged.insert(merged.end(), run.begin(), run.end());
    std::sort(merged.begin(), merged.end());

    // Gather: tell rank 0 our size via allgather, compute offsets, then
    // write into the shared result (disjoint ranges; barrier first).
    const auto sizes = ctx.allgather(static_cast<std::int64_t>(merged.size()));
    std::size_t offset = 0;
    for (int s = 0; s < r; ++s)
      offset += static_cast<std::size_t>(sizes[static_cast<std::size_t>(s)]);
    ctx.barrier();
    std::copy(merged.begin(), merged.end(),
              result.begin() + static_cast<long>(offset));
  });

  const auto traffic = comm.traffic();
  if (messages_out != nullptr) *messages_out = traffic.messages;
  if (payload_words_out != nullptr) *payload_words_out = traffic.payload_words;
  return result;
}

}  // namespace pdc::algo
