#include "pdc/os/kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "pdc/obs/obs.hpp"

namespace pdc::os {

namespace {

// Process-global scheduler metrics (cumulative across Kernel instances;
// callers take metrics_snapshot() deltas to price one run).
obs::Counter& switches_counter() {
  static obs::Counter& c = obs::counter("os.context_switches");
  return c;
}
obs::Counter& scheduled_counter() {
  static obs::Counter& c = obs::counter("os.scheduled");
  return c;
}
obs::Counter& wait_ticks_counter() {
  static obs::Counter& c = obs::counter("os.sched_wait_ticks");
  return c;
}

}  // namespace

// ------------------------------------------------------------ process.hpp ---

std::string_view signal_name(Signal s) {
  switch (s) {
    case Signal::kSigKill: return "SIGKILL";
    case Signal::kSigTerm: return "SIGTERM";
    case Signal::kSigInt: return "SIGINT";
    case Signal::kSigUsr1: return "SIGUSR1";
    case Signal::kSigChld: return "SIGCHLD";
  }
  return "?";
}

std::string_view proc_state_name(ProcState s) {
  switch (s) {
    case ProcState::kReady: return "ready";
    case ProcState::kRunning: return "running";
    case ProcState::kBlocked: return "blocked";
    case ProcState::kZombie: return "zombie";
    case ProcState::kReaped: return "reaped";
  }
  return "?";
}

ProcOp Compute(long ticks) {
  ProcOp op;
  op.kind = ProcOp::Kind::kCompute;
  op.amount = ticks;
  return op;
}

ProcOp Print(std::string text) {
  ProcOp op;
  op.kind = ProcOp::Kind::kPrint;
  op.text = std::move(text);
  return op;
}

ProcOp Read() {
  ProcOp op;
  op.kind = ProcOp::Kind::kRead;
  return op;
}

ProcOp Fork(Program child) {
  ProcOp op;
  op.kind = ProcOp::Kind::kFork;
  op.child = std::move(child);
  return op;
}

ProcOp Exec(Program image) {
  ProcOp op;
  op.kind = ProcOp::Kind::kExec;
  op.child = std::move(image);
  return op;
}

ProcOp Exit(int code) {
  ProcOp op;
  op.kind = ProcOp::Kind::kExit;
  op.code = code;
  return op;
}

ProcOp Wait() {
  ProcOp op;
  op.kind = ProcOp::Kind::kWait;
  return op;
}

ProcOp Kill(Pid target, Signal sig) {
  ProcOp op;
  op.kind = ProcOp::Kind::kKill;
  op.target = target;
  op.sig = sig;
  return op;
}

ProcOp InstallHandler(Signal sig, Disposition disp) {
  ProcOp op;
  op.kind = ProcOp::Kind::kInstallHandler;
  op.sig = sig;
  op.disp = disp;
  return op;
}

ProcOp Yield() {
  ProcOp op;
  op.kind = ProcOp::Kind::kYield;
  return op;
}

ProcOp ReadAll() {
  ProcOp op;
  op.kind = ProcOp::Kind::kReadAll;
  return op;
}

ProcOp PrintReads() {
  ProcOp op;
  op.kind = ProcOp::Kind::kPrintReads;
  return op;
}

// ----------------------------------------------------------------- kernel ---

Kernel::Kernel(KernelConfig config) : config_(config) {
  if (config_.quantum < 1) throw std::invalid_argument("quantum must be >= 1");
  // init (pid 1): never scheduled, reaps orphans as they die.
  Pcb init;
  init.pid = kInitPid;
  init.ppid = 0;
  init.name = "init";
  init.state = ProcState::kBlocked;
  procs_[kInitPid] = std::move(init);
  next_pid_ = kInitPid + 1;
}

Kernel::Pcb& Kernel::pcb(Pid pid) {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) throw std::out_of_range("unknown pid");
  return it->second;
}

const Kernel::Pcb& Kernel::pcb(Pid pid) const {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) throw std::out_of_range("unknown pid");
  return it->second;
}

Pid Kernel::allocate(Program program, std::string name, Pid ppid,
                     int priority) {
  Pcb p;
  p.pid = next_pid_++;
  p.ppid = ppid;
  p.name = std::move(name);
  p.priority = priority;
  p.program = std::move(program);
  p.state = ProcState::kReady;
  p.ready_since = now_;
  const Pid pid = p.pid;
  procs_[pid] = std::move(p);
  return pid;
}

Pid Kernel::spawn(Program program, std::string name, int priority) {
  return allocate(std::move(program), std::move(name), kInitPid, priority);
}

void Kernel::kill(Pid pid, Signal sig) {
  Pcb& p = pcb(pid);
  if (p.state == ProcState::kZombie || p.state == ProcState::kReaped) return;
  p.pending.push_back(sig);
}

PipeId Kernel::create_pipe(std::size_t capacity) {
  const PipeId id = next_pipe_++;
  Pipe pipe;
  pipe.capacity = capacity;
  pipes_[id] = std::move(pipe);
  return id;
}

void Kernel::connect_stdout(Pid pid, PipeId pipe) {
  Pcb& p = pcb(pid);
  const auto it = pipes_.find(pipe);
  if (it == pipes_.end()) throw std::out_of_range("unknown pipe");
  if (p.stdout_pipe) --pipes_[*p.stdout_pipe].writers;
  p.stdout_pipe = pipe;
  ++it->second.writers;
}

void Kernel::connect_stdin(Pid pid, PipeId pipe) {
  Pcb& p = pcb(pid);
  if (!pipes_.contains(pipe)) throw std::out_of_range("unknown pipe");
  p.stdin_pipe = pipe;
}

void Kernel::reparent_children(Pid dead_parent) {
  for (auto& [pid, p] : procs_) {
    if (p.ppid != dead_parent || p.state == ProcState::kReaped) continue;
    p.ppid = kInitPid;
    // init reaps zombies immediately.
    if (p.state == ProcState::kZombie) p.state = ProcState::kReaped;
  }
}

void Kernel::wake(Pcb& p) {
  p.state = ProcState::kReady;
  // MLFQ boost (aging): a process that blocked (interactive behavior)
  // returns at the top level when it wakes.
  if (config_.mlfq_boost) p.mlfq_level = 0;
  p.ready_since = now_;
}

void Kernel::wake_waiting_parent(Pid parent_pid) {
  const auto it = procs_.find(parent_pid);
  if (it == procs_.end()) return;
  Pcb& parent = it->second;
  if (parent.state == ProcState::kBlocked && parent.waiting) wake(parent);
}

void Kernel::terminate(Pcb& p, int code) {
  p.exit_code = code;
  p.waiting = false;
  p.reading = false;
  p.writing = false;
  if (p.stdout_pipe) {
    Pipe& pipe = pipes_[*p.stdout_pipe];
    if (--pipe.writers == 0) {
      // EOF: wake any readers blocked on this pipe.
      for (auto& [pid, q] : procs_) {
        if (q.state == ProcState::kBlocked && q.reading && q.stdin_pipe &&
            *q.stdin_pipe == *p.stdout_pipe) {
          wake(q);
        }
      }
    }
  }
  reparent_children(p.pid);
  if (p.ppid == kInitPid || !procs_.contains(p.ppid) ||
      pcb(p.ppid).state == ProcState::kReaped) {
    p.state = ProcState::kReaped;  // init auto-reaps
  } else {
    p.state = ProcState::kZombie;
    pcb(p.ppid).pending.push_back(Signal::kSigChld);
    wake_waiting_parent(p.ppid);
  }
  if (current_ == p.pid) current_ = 0;
}

void Kernel::deliver_pending(Pcb& p) {
  if (p.pending.empty()) return;
  if (p.state == ProcState::kZombie || p.state == ProcState::kReaped) {
    p.pending.clear();
    return;
  }
  std::vector<Signal> pending;
  pending.swap(p.pending);
  for (Signal sig : pending) {
    const auto idx = static_cast<int>(sig);
    if (sig == Signal::kSigKill) {
      terminate(p, 128 + idx);
      return;
    }
    switch (p.disp[idx]) {
      case Disposition::kIgnore:
        break;
      case Disposition::kHandle:
        ++p.handled[idx];
        break;
      case Disposition::kDefault:
        if (sig == Signal::kSigChld) break;  // default: ignore
        terminate(p, 128 + idx);
        return;
    }
  }
}

bool Kernel::try_read(Pcb& p) {
  if (!p.stdin_pipe) {
    // Console stdin is empty: immediate EOF, read completes with nothing.
    return true;
  }
  Pipe& pipe = pipes_[*p.stdin_pipe];
  if (!pipe.lines.empty()) {
    p.read_log.push_back(pipe.lines.front());
    pipe.lines.pop_front();
    return true;
  }
  return pipe.writers == 0;  // EOF if no writers remain
}

bool Kernel::try_reap(Pcb& p) {
  for (auto& [pid, child] : procs_) {
    if (child.ppid != p.pid) continue;
    if (child.state == ProcState::kZombie) {
      child.state = ProcState::kReaped;
      p.wait_log.emplace_back(pid, child.exit_code);
      return true;
    }
  }
  return false;
}

int Kernel::quantum_for(const Pcb& p) const {
  if (config_.scheduler != SchedulerKind::kMlfq) return config_.quantum;
  return config_.quantum << p.mlfq_level;  // quantum doubles per level
}

int Kernel::mlfq_level(Pid pid) const { return pcb(pid).mlfq_level; }

Pid Kernel::pick_next() {
  auto runnable = [&](const Pcb& p) {
    return p.pid != kInitPid && (p.state == ProcState::kReady ||
                                 p.state == ProcState::kRunning);
  };

  if (config_.scheduler == SchedulerKind::kPriority) {
    Pid best = 0;
    for (auto& [pid, p] : procs_) {
      if (!runnable(p)) continue;
      if (best == 0 || p.priority > pcb(best).priority) best = pid;
    }
    return best;
  }

  // Round robin / MLFQ: keep the current process until its quantum
  // expires (MLFQ quantum depends on the process's level).
  if (current_ != 0 && procs_.contains(current_)) {
    Pcb& cur = pcb(current_);
    if (runnable(cur) && slice_used_ < quantum_for(cur)) return current_;
    // MLFQ: a process that used its whole slice is demoted.
    if (config_.scheduler == SchedulerKind::kMlfq && runnable(cur) &&
        slice_used_ >= quantum_for(cur)) {
      cur.mlfq_level = std::min(cur.mlfq_level + 1, kMlfqLevels - 1);
    }
  }

  if (config_.scheduler == SchedulerKind::kMlfq) {
    // Highest level (lowest number) first; round-robin within the level.
    int best_level = kMlfqLevels;
    for (auto& [pid, p] : procs_)
      if (runnable(p)) best_level = std::min(best_level, p.mlfq_level);
    if (best_level == kMlfqLevels) return 0;
    Pid first_runnable = 0;
    Pid chosen = 0;
    for (auto& [pid, p] : procs_) {
      if (!runnable(p) || p.mlfq_level != best_level) continue;
      if (first_runnable == 0) first_runnable = pid;
      if (pid > rr_cursor_ && chosen == 0) chosen = pid;
    }
    if (chosen == 0) chosen = first_runnable;
    if (chosen != 0) {
      rr_cursor_ = chosen;
      slice_used_ = 0;
    }
    return chosen;
  }
  // Rotate: first runnable pid after rr_cursor_, wrapping.
  Pid first_runnable = 0;
  Pid chosen = 0;
  for (auto& [pid, p] : procs_) {
    if (!runnable(p)) continue;
    if (first_runnable == 0) first_runnable = pid;
    if (pid > rr_cursor_ && chosen == 0) chosen = pid;
  }
  if (chosen == 0) chosen = first_runnable;  // wrap around
  if (chosen != 0) {
    rr_cursor_ = chosen;
    slice_used_ = 0;
  }
  return chosen;
}

void Kernel::execute_op(Pcb& p) {
  if (p.pc >= p.program.size()) {
    terminate(p, 0);  // falling off the end is exit(0)
    return;
  }
  const ProcOp& op = p.program[p.pc];
  switch (op.kind) {
    case ProcOp::Kind::kCompute:
      if (p.compute_left == 0) p.compute_left = op.amount;
      if (--p.compute_left <= 0) {
        p.compute_left = 0;
        ++p.pc;
      }
      break;
    case ProcOp::Kind::kPrint:
      if (p.stdout_pipe) {
        Pipe& pipe = pipes_[*p.stdout_pipe];
        if (pipe.full()) {  // backpressure: block until a reader drains
          p.writing = true;
          p.state = ProcState::kBlocked;
          break;
        }
        p.writing = false;
        pipe.lines.push_back(op.text);
        // Wake readers blocked on this pipe.
        for (auto& [pid, q] : procs_) {
          if (q.state == ProcState::kBlocked && q.reading && q.stdin_pipe &&
              *q.stdin_pipe == *p.stdout_pipe) {
            wake(q);
          }
        }
      } else {
        console_.push_back({p.pid, op.text});
      }
      ++p.pc;
      break;
    case ProcOp::Kind::kRead:
      if (try_read(p)) {
        p.reading = false;
        ++p.pc;
      } else {
        p.reading = true;
        p.state = ProcState::kBlocked;
      }
      break;
    case ProcOp::Kind::kFork: {
      const Pid child =
          allocate(op.child, p.name + "+", p.pid, p.priority);
      p.last_child = child;
      ++p.pc;
      break;
    }
    case ProcOp::Kind::kExec:
      p.program = op.child;
      p.pc = 0;
      p.compute_left = 0;
      for (auto& d : p.disp) d = Disposition::kDefault;  // exec resets
      break;
    case ProcOp::Kind::kExit:
      terminate(p, op.code);
      break;
    case ProcOp::Kind::kWait: {
      // No children at all? wait returns immediately (ECHILD).
      bool has_child = false;
      for (auto& [pid, q] : procs_)
        if (q.ppid == p.pid && q.state != ProcState::kReaped) has_child = true;
      if (!has_child) {
        ++p.pc;
        break;
      }
      if (try_reap(p)) {
        p.waiting = false;
        ++p.pc;
      } else {
        p.waiting = true;
        p.state = ProcState::kBlocked;
      }
      break;
    }
    case ProcOp::Kind::kKill: {
      Pid target = op.target;
      if (target == kLastChild) target = p.last_child;
      if (target != 0 && procs_.contains(target)) kill(target, op.sig);
      ++p.pc;
      break;
    }
    case ProcOp::Kind::kInstallHandler:
      if (op.sig != Signal::kSigKill)  // SIGKILL cannot be caught
        p.disp[static_cast<int>(op.sig)] = op.disp;
      ++p.pc;
      break;
    case ProcOp::Kind::kYield:
      slice_used_ = config_.quantum;  // give up the rest of the slice
      ++p.pc;
      break;
    case ProcOp::Kind::kReadAll: {
      if (!p.stdin_pipe) {  // console stdin: immediate EOF
        ++p.pc;
        break;
      }
      Pipe& pipe = pipes_[*p.stdin_pipe];
      while (!pipe.lines.empty()) {
        p.read_log.push_back(pipe.lines.front());
        pipe.lines.pop_front();
      }
      if (pipe.writers == 0) {
        p.reading = false;
        ++p.pc;
      } else {
        p.reading = true;
        p.state = ProcState::kBlocked;
      }
      break;
    }
    case ProcOp::Kind::kPrintReads: {
      bool blocked = false;
      while (p.print_cursor < p.read_log.size()) {
        const auto& line = p.read_log[p.print_cursor];
        if (p.stdout_pipe) {
          Pipe& pipe = pipes_[*p.stdout_pipe];
          if (pipe.full()) {
            p.writing = true;
            p.state = ProcState::kBlocked;
            blocked = true;
            break;
          }
          pipe.lines.push_back(line);
        } else {
          console_.push_back({p.pid, line});
        }
        ++p.print_cursor;
      }
      if (!blocked) {
        p.writing = false;
        p.print_cursor = 0;
        ++p.pc;
      }
      break;
    }
  }
}

bool Kernel::tick() {
  ++now_;
  // Signal delivery happens for every process, running or blocked.
  for (auto& [pid, p] : procs_) deliver_pending(p);

  // Re-check blocked processes whose condition may now hold.
  for (auto& [pid, p] : procs_) {
    if (p.state != ProcState::kBlocked) continue;
    if (p.waiting) {
      for (auto& [cpid, c] : procs_)
        if (c.ppid == pid && c.state == ProcState::kZombie)
          p.state = ProcState::kReady;
    } else if (p.reading && p.stdin_pipe) {
      const Pipe& pipe = pipes_[*p.stdin_pipe];
      if (!pipe.lines.empty() || pipe.writers == 0)
        p.state = ProcState::kReady;
    } else if (p.writing && p.stdout_pipe) {
      if (!pipes_[*p.stdout_pipe].full()) p.state = ProcState::kReady;
    }
    if (p.state == ProcState::kReady) wake(p);
  }

  const Pid next = pick_next();
  if (next == 0) {
    current_ = 0;
    return false;
  }
  if (current_ != 0 && current_ != next && procs_.contains(current_)) {
    Pcb& prev = pcb(current_);
    if (prev.state == ProcState::kRunning) {
      prev.state = ProcState::kReady;
      prev.ready_since = now_;
    }
  }
  current_ = next;
  Pcb& p = pcb(current_);
  // Scheduler-latency accounting: how long this pick sat runnable but
  // unscheduled, and whether the CPU changed hands since the last tick.
  if (p.state == ProcState::kReady)
    wait_ticks_counter().add(now_ - p.ready_since);
  scheduled_counter().add(1);
  if (!schedule_trace_.empty() && schedule_trace_.back() != next)
    switches_counter().add(1);
  p.state = ProcState::kRunning;
  schedule_trace_.push_back(current_);
  ++slice_used_;
  execute_op(p);
  if (procs_.contains(current_)) {
    Pcb& cur = pcb(current_);
    if (cur.state == ProcState::kBlocked || cur.state == ProcState::kZombie ||
        cur.state == ProcState::kReaped) {
      current_ = 0;
    }
  }
  return true;
}

std::size_t Kernel::run(std::size_t max_ticks) {
  std::size_t ticks = 0;
  auto all_done = [&] {
    for (auto& [pid, p] : procs_)
      if (pid != kInitPid && p.state != ProcState::kReaped) return false;
    return true;
  };
  while (!all_done()) {
    if (ticks >= max_ticks)
      throw std::runtime_error("kernel run budget exceeded (deadlock?)");
    const bool ran = tick();
    ++ticks;
    // A tick with no runnable process can still make progress by
    // delivering signals (e.g. SIGKILL reaping the last process); only a
    // tick that neither ran nor completed everything is a real deadlock.
    if (!ran && !all_done())
      throw std::runtime_error("no runnable process (processes blocked)");
  }
  return ticks;
}

bool Kernel::alive(Pid pid) const {
  const auto it = procs_.find(pid);
  return it != procs_.end() && it->second.state != ProcState::kReaped &&
         it->second.state != ProcState::kZombie;
}

ProcState Kernel::state(Pid pid) const { return pcb(pid).state; }
Pid Kernel::parent(Pid pid) const { return pcb(pid).ppid; }
const std::string& Kernel::name(Pid pid) const { return pcb(pid).name; }
int Kernel::exit_status(Pid pid) const { return pcb(pid).exit_code; }

const std::vector<std::string>& Kernel::reads(Pid pid) const {
  return pcb(pid).read_log;
}

int Kernel::handled_count(Pid pid, Signal sig) const {
  return pcb(pid).handled[static_cast<int>(sig)];
}

const std::vector<std::pair<Pid, int>>& Kernel::waited(Pid pid) const {
  return pcb(pid).wait_log;
}

std::vector<Pid> Kernel::children(Pid pid) const {
  std::vector<Pid> out;
  for (const auto& [cpid, c] : procs_)
    if (c.ppid == pid && c.state != ProcState::kReaped) out.push_back(cpid);
  return out;
}

std::size_t Kernel::process_count() const {
  std::size_t n = 0;
  for (const auto& [pid, p] : procs_)
    if (p.state != ProcState::kReaped) ++n;
  return n;
}

}  // namespace pdc::os
