#include "pdc/os/shell.hpp"

#include <sstream>
#include <stdexcept>

namespace pdc::os {

namespace {

std::string trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.erase(s.begin());
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.pop_back();
  return s;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace

std::vector<ParsedPipeline> parse_command_line(const std::string& line) {
  std::vector<ParsedPipeline> pipelines;
  for (std::string job_text : split(line, ';')) {
    job_text = trim(job_text);
    if (job_text.empty()) continue;

    ParsedPipeline pipeline;
    if (job_text.back() == '&') {
      pipeline.background = true;
      job_text = trim(job_text.substr(0, job_text.size() - 1));
      if (job_text.empty())
        throw std::invalid_argument("dangling '&'");
    }

    for (std::string stage : split(job_text, '|')) {
      stage = trim(stage);
      if (stage.empty())
        throw std::invalid_argument("empty pipeline stage");
      ParsedCommand cmd;
      std::istringstream words(stage);
      std::string word;
      while (words >> word) {
        if (cmd.name.empty()) {
          cmd.name = word;
        } else {
          cmd.args.push_back(word);
        }
      }
      pipeline.commands.push_back(std::move(cmd));
    }
    if (!pipeline.commands.empty()) pipelines.push_back(std::move(pipeline));
  }
  return pipelines;
}

void CommandRegistry::add(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

bool CommandRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

Program CommandRegistry::make(const std::string& name,
                              const std::vector<std::string>& args) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw std::invalid_argument("unknown command: " + name);
  return it->second(args);
}

CommandRegistry CommandRegistry::standard() {
  CommandRegistry reg;
  reg.add("echo", [](const std::vector<std::string>& args) {
    std::string text;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) text += ' ';
      text += args[i];
    }
    return Program{Print(text), Exit(0)};
  });
  reg.add("cat", [](const std::vector<std::string>&) {
    return Program{ReadAll(), PrintReads(), Exit(0)};
  });
  reg.add("sleep", [](const std::vector<std::string>& args) {
    const long n = args.empty() ? 1 : std::stol(args[0]);
    return Program{Compute(n), Exit(0)};
  });
  reg.add("yes", [](const std::vector<std::string>& args) {
    const std::string word = args.empty() ? "y" : args[0];
    const long n = args.size() > 1 ? std::stol(args[1]) : 3;
    Program prog;
    for (long i = 0; i < n; ++i) prog.push_back(Print(word));
    prog.push_back(Exit(0));
    return prog;
  });
  reg.add("true", [](const std::vector<std::string>&) {
    return Program{Exit(0)};
  });
  reg.add("false", [](const std::vector<std::string>&) {
    return Program{Exit(1)};
  });
  return reg;
}

Shell::Shell(Kernel& kernel, CommandRegistry registry)
    : kernel_(&kernel), registry_(std::move(registry)) {}

std::vector<Pid> Shell::execute(const std::string& line) {
  std::vector<Pid> all_spawned;
  for (const auto& pipeline : parse_command_line(line)) {
    // Validate every command before spawning anything.
    for (const auto& cmd : pipeline.commands)
      if (!registry_.contains(cmd.name))
        throw std::invalid_argument("unknown command: " + cmd.name);

    std::vector<Pid> pids;
    for (const auto& cmd : pipeline.commands)
      pids.push_back(
          kernel_->spawn(registry_.make(cmd.name, cmd.args), cmd.name));

    // Wire stage i's stdout to stage i+1's stdin.
    for (std::size_t i = 0; i + 1 < pids.size(); ++i) {
      const PipeId pipe = kernel_->create_pipe();
      kernel_->connect_stdout(pids[i], pipe);
      kernel_->connect_stdin(pids[i + 1], pipe);
    }

    Job job;
    job.id = next_job_++;
    job.pids = pids;
    job.background = pipeline.background;
    jobs_.push_back(job);

    if (!pipeline.background) run_to_completion(pids, 100'000);
    all_spawned.insert(all_spawned.end(), pids.begin(), pids.end());
  }
  return all_spawned;
}

bool Shell::all_done(const std::vector<Pid>& pids) const {
  for (Pid pid : pids)
    if (kernel_->state(pid) != ProcState::kReaped) return false;
  return true;
}

void Shell::run_to_completion(const std::vector<Pid>& pids,
                              std::size_t max_ticks) {
  std::size_t ticks = 0;
  while (!all_done(pids)) {
    if (ticks++ >= max_ticks)
      throw std::runtime_error("foreground job did not finish");
    if (!kernel_->tick())
      throw std::runtime_error("foreground job blocked forever");
  }
}

void Shell::wait_all(std::size_t max_ticks) {
  std::vector<Pid> pending;
  for (const auto& job : jobs_)
    for (Pid pid : job.pids)
      if (kernel_->state(pid) != ProcState::kReaped) pending.push_back(pid);
  run_to_completion(pending, max_ticks);
}

std::vector<Job> Shell::active_jobs() const {
  std::vector<Job> active;
  for (const auto& job : jobs_)
    if (!all_done(job.pids)) active.push_back(job);
  return active;
}

}  // namespace pdc::os
