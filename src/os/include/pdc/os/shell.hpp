#pragma once
// A Unix-style shell over the simulated kernel — the CS31 shell lab:
// command parsing, fork/exec per command, pipelines, background jobs with
// `&`, foreground waiting, and a jobs table.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pdc/os/kernel.hpp"

namespace pdc::os {

/// One command with its arguments ("echo hello world").
struct ParsedCommand {
  std::string name;
  std::vector<std::string> args;
  bool operator==(const ParsedCommand&) const = default;
};

/// A pipeline of commands, optionally backgrounded ("a | b | c &").
struct ParsedPipeline {
  std::vector<ParsedCommand> commands;
  bool background = false;
};

/// Parse a command line: pipelines split on '|', multiple jobs split on
/// ';', a trailing '&' backgrounds its pipeline. Throws
/// std::invalid_argument on empty pipeline stages ("a | | b").
[[nodiscard]] std::vector<ParsedPipeline> parse_command_line(
    const std::string& line);

/// Maps command names to program factories: factory(args) -> Program.
class CommandRegistry {
 public:
  using Factory = std::function<Program(const std::vector<std::string>&)>;

  void add(const std::string& name, Factory factory);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] Program make(const std::string& name,
                             const std::vector<std::string>& args) const;

  /// Registry preloaded with the standard toy commands:
  ///   echo WORDS...   print arguments
  ///   cat             copy stdin to stdout (read-all then print)
  ///   sleep N         compute for N ticks
  ///   yes WORD N      print WORD N times
  ///   false           exit 1
  ///   true            exit 0
  [[nodiscard]] static CommandRegistry standard();

 private:
  std::map<std::string, Factory> factories_;
};

/// Job-control record.
struct Job {
  int id = 0;
  std::vector<Pid> pids;
  std::string line;
  bool background = false;
};

/// The shell itself. Not a simulated process: it drives the kernel the
/// way a user at a terminal would.
class Shell {
 public:
  Shell(Kernel& kernel, CommandRegistry registry);

  /// Parse and launch `line`. Foreground pipelines are run to completion
  /// (the kernel is ticked until they finish); background pipelines are
  /// left running and entered in the jobs table. Returns pids spawned.
  /// Throws std::invalid_argument for unknown commands.
  std::vector<Pid> execute(const std::string& line);

  /// Tick the kernel until all background jobs finish.
  void wait_all(std::size_t max_ticks = 100'000);

  /// Background jobs still alive.
  [[nodiscard]] std::vector<Job> active_jobs() const;

  [[nodiscard]] Kernel& kernel() { return *kernel_; }

 private:
  void run_to_completion(const std::vector<Pid>& pids,
                         std::size_t max_ticks);
  [[nodiscard]] bool all_done(const std::vector<Pid>& pids) const;

  Kernel* kernel_;
  CommandRegistry registry_;
  std::vector<Job> jobs_;
  int next_job_ = 1;
};

}  // namespace pdc::os
