#pragma once
// Process model for the simulated kernel (CS31 "Unix shell" lab substrate):
// a program is a list of operations the kernel interprets one per tick, so
// fork/exec/wait/exit, signals, zombies, orphans, pipes and scheduling are
// all deterministic and unit-testable.
//
// Simplification vs. real fork(2): Fork carries the child's program
// explicitly (fork+exec fused). Everything downstream — process hierarchy,
// reaping, reparenting, signal delivery — follows real Unix semantics.

#include <cstdint>
#include <string>
#include <vector>

namespace pdc::os {

using Pid = int;
inline constexpr Pid kInitPid = 1;
/// Kill-target sentinel: the most recently forked child of the caller.
inline constexpr Pid kLastChild = -1;

enum class Signal : std::uint8_t {
  kSigKill,  ///< uncatchable, unignorable
  kSigTerm,
  kSigInt,
  kSigUsr1,
  kSigChld,
};

[[nodiscard]] std::string_view signal_name(Signal s);
inline constexpr int kNumSignals = 5;

/// What a process does with a delivered signal.
enum class Disposition : std::uint8_t {
  kDefault,  ///< terminate for KILL/TERM/INT/USR1; ignore for CHLD
  kIgnore,
  kHandle,   ///< run the registered handler (records the delivery)
};

struct ProcOp;
using Program = std::vector<ProcOp>;

/// One interpreted operation. Each op costs one tick except kCompute,
/// which costs `amount` ticks.
struct ProcOp {
  enum class Kind : std::uint8_t {
    kCompute,         ///< burn `amount` ticks of CPU
    kPrint,           ///< write `text` to stdout (console or pipe)
    kRead,            ///< read one line from stdin into the read log
    kFork,            ///< spawn `child` as a child process
    kExec,            ///< replace remaining program with `child`
    kExit,            ///< terminate with `code`
    kWait,            ///< block until a child can be reaped
    kKill,            ///< send `sig` to `target` (kLastChild allowed)
    kInstallHandler,  ///< set disposition for `sig`
    kYield,           ///< give up the CPU voluntarily
    kReadAll,         ///< read lines until EOF (blocks while writers live)
    kPrintReads,      ///< write every line read so far to stdout (cat)
  };

  Kind kind = Kind::kYield;
  long amount = 0;      // kCompute
  std::string text;     // kPrint
  Program child;        // kFork / kExec
  int code = 0;         // kExit
  Pid target = 0;       // kKill
  Signal sig = Signal::kSigTerm;        // kKill / kInstallHandler
  Disposition disp = Disposition::kDefault;  // kInstallHandler
};

/// Convenience constructors so programs read like code.
[[nodiscard]] ProcOp Compute(long ticks);
[[nodiscard]] ProcOp Print(std::string text);
[[nodiscard]] ProcOp Read();
[[nodiscard]] ProcOp Fork(Program child);
[[nodiscard]] ProcOp Exec(Program image);
[[nodiscard]] ProcOp Exit(int code);
[[nodiscard]] ProcOp Wait();
[[nodiscard]] ProcOp Kill(Pid target, Signal sig);
[[nodiscard]] ProcOp InstallHandler(Signal sig, Disposition disp);
[[nodiscard]] ProcOp Yield();
[[nodiscard]] ProcOp ReadAll();
[[nodiscard]] ProcOp PrintReads();

enum class ProcState : std::uint8_t {
  kReady,
  kRunning,
  kBlocked,   ///< in Wait() or a blocking Read()
  kZombie,    ///< exited, awaiting reap
  kReaped,    ///< gone (pid retired)
};

[[nodiscard]] std::string_view proc_state_name(ProcState s);

}  // namespace pdc::os
