#pragma once
// The simulated kernel: PCB table, round-robin or priority scheduling,
// fork/exec/wait/exit with zombies and reparenting to init, signal
// delivery with default/ignore/handler dispositions, and pipes for shell
// pipelines. Time advances one tick per `tick()`; everything is
// deterministic.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pdc/os/process.hpp"

namespace pdc::os {

enum class SchedulerKind {
  kRoundRobin,
  kPriority,
  kMlfq,  ///< multi-level feedback queue: 3 levels, quantum doubles per
          ///< level, demotion on quantum expiry, boost to top on wake
};

struct KernelConfig {
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  int quantum = 4;  ///< ticks per time slice (round robin)
  /// MLFQ aging: boost a process back to the top level when it wakes
  /// from a block. Off = once demoted, always demoted — the classic
  /// starvation failure mode (exists so the bench can ablate it).
  bool mlfq_boost = true;
};

/// A console line attributed to the process that printed it.
struct ConsoleLine {
  Pid pid = 0;
  std::string text;
  bool operator==(const ConsoleLine&) const = default;
};

/// Inter-process pipe: a queue of lines plus writer bookkeeping so readers
/// see EOF once all writers have exited.
using PipeId = int;

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {});

  // ---- process management ----

  /// Create a process (child of init). Returns its pid (2, 3, ...).
  Pid spawn(Program program, std::string name = {}, int priority = 0);

  /// External signal injection (like typing ^C or running `kill`).
  void kill(Pid pid, Signal sig);

  // ---- pipes & stdio wiring ----

  /// `capacity` 0 = unbounded; otherwise writers block when the pipe
  /// holds `capacity` lines until a reader drains it (backpressure).
  PipeId create_pipe(std::size_t capacity = 0);
  /// Route a process's stdout to a pipe (default: console). The process
  /// counts as a writer; EOF is reachable once all writers exited.
  void connect_stdout(Pid pid, PipeId pipe);
  /// Route a process's stdin to a pipe (default: an empty console stdin
  /// that yields EOF).
  void connect_stdin(Pid pid, PipeId pipe);

  // ---- time ----

  /// Advance one tick: deliver pending signals, schedule, execute one op.
  /// Returns false if no runnable process exists.
  bool tick();

  /// Tick until every non-init process is reaped or `max_ticks` elapse.
  /// Returns ticks consumed. Throws std::runtime_error if the budget is
  /// exhausted (deadlock / runaway detector).
  std::size_t run(std::size_t max_ticks = 100'000);

  [[nodiscard]] std::uint64_t now() const { return now_; }

  // ---- inspection ----

  [[nodiscard]] bool alive(Pid pid) const;
  [[nodiscard]] ProcState state(Pid pid) const;
  [[nodiscard]] Pid parent(Pid pid) const;
  [[nodiscard]] std::vector<Pid> children(Pid pid) const;
  [[nodiscard]] const std::string& name(Pid pid) const;
  /// Exit status (valid once zombie/reaped).
  [[nodiscard]] int exit_status(Pid pid) const;
  /// Values a process's Read() ops consumed, in order.
  [[nodiscard]] const std::vector<std::string>& reads(Pid pid) const;
  /// Deliveries recorded by kHandle dispositions: count per signal.
  [[nodiscard]] int handled_count(Pid pid, Signal sig) const;
  /// Statuses collected by this process's Wait() calls: (child, status).
  [[nodiscard]] const std::vector<std::pair<Pid, int>>& waited(Pid pid) const;

  [[nodiscard]] const std::vector<ConsoleLine>& console() const {
    return console_;
  }
  /// Current MLFQ level of a process (0 = highest priority).
  [[nodiscard]] int mlfq_level(Pid pid) const;
  /// Pids scheduled at each tick, in order (for scheduler tests).
  [[nodiscard]] const std::vector<Pid>& schedule_trace() const {
    return schedule_trace_;
  }
  /// Count of live (not reaped) processes, including init.
  [[nodiscard]] std::size_t process_count() const;

 private:
  struct Pipe {
    std::deque<std::string> lines;
    int writers = 0;          // live processes with stdout connected here
    std::size_t capacity = 0; // 0 = unbounded
    [[nodiscard]] bool full() const {
      return capacity != 0 && lines.size() >= capacity;
    }
  };

  struct Pcb {
    Pid pid = 0;
    Pid ppid = kInitPid;
    std::string name;
    int priority = 0;
    ProcState state = ProcState::kReady;
    Program program;
    std::size_t pc = 0;          // index of next op
    long compute_left = 0;       // remaining ticks of current kCompute
    int exit_code = 0;
    Pid last_child = 0;
    std::optional<PipeId> stdout_pipe;
    std::optional<PipeId> stdin_pipe;
    Disposition disp[kNumSignals] = {};
    int handled[kNumSignals] = {};
    std::vector<Signal> pending;
    std::vector<std::string> read_log;
    std::vector<std::pair<Pid, int>> wait_log;
    bool waiting = false;        // blocked in Wait()
    bool reading = false;        // blocked in Read()
    bool writing = false;        // blocked on a full pipe
    std::size_t print_cursor = 0;  // kPrintReads progress
    int mlfq_level = 0;          // 0 (highest) .. kMlfqLevels-1
    std::uint64_t ready_since = 0;  // tick of the last kReady transition
  };

  Pcb& pcb(Pid pid);
  [[nodiscard]] const Pcb& pcb(Pid pid) const;
  Pid allocate(Program program, std::string name, Pid ppid, int priority);
  void deliver_pending(Pcb& p);
  /// Block→ready transition: one place for the MLFQ wake boost, so every
  /// wake site (tick recheck, pipe write, writer EOF, child exit) ages
  /// identically.
  void wake(Pcb& p);
  void terminate(Pcb& p, int code);
  void reparent_children(Pid dead_parent);
  void wake_waiting_parent(Pid parent_pid);
  [[nodiscard]] Pid pick_next();
  void execute_op(Pcb& p);
  /// Try to complete a blocking Read; true if it made progress or hit EOF.
  bool try_read(Pcb& p);
  /// Try to reap a zombie child; true on success.
  bool try_reap(Pcb& p);

  static constexpr int kMlfqLevels = 3;
  [[nodiscard]] int quantum_for(const Pcb& p) const;

  KernelConfig config_;
  std::map<Pid, Pcb> procs_;
  std::map<PipeId, Pipe> pipes_;
  Pid next_pid_ = kInitPid;
  PipeId next_pipe_ = 1;
  std::uint64_t now_ = 0;
  std::vector<ConsoleLine> console_;
  std::vector<Pid> schedule_trace_;
  Pid current_ = 0;      // pid holding the CPU (0 = none)
  int slice_used_ = 0;   // ticks used in the current quantum
  Pid rr_cursor_ = 0;    // round-robin rotation point
};

}  // namespace pdc::os
