#include "pdc/isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace pdc::isa {

namespace {

struct PendingInstruction {
  Instruction ins;
  std::string label_ref;  // unresolved branch target (empty if none)
  int line = 0;
};

std::string trim(std::string s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.erase(s.begin());
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.pop_back();
  return s;
}

std::optional<Opcode> parse_opcode(const std::string& text) {
  static const std::map<std::string, Opcode> kOps = {
      {"nop", Opcode::kNop},   {"halt", Opcode::kHalt},
      {"mov", Opcode::kMov},   {"add", Opcode::kAdd},
      {"sub", Opcode::kSub},   {"mul", Opcode::kMul},
      {"div", Opcode::kDiv},   {"and", Opcode::kAnd},
      {"or", Opcode::kOr},     {"xor", Opcode::kXor},
      {"not", Opcode::kNot},   {"neg", Opcode::kNeg},
      {"shl", Opcode::kShl},   {"shr", Opcode::kShr},
      {"cmp", Opcode::kCmp},   {"test", Opcode::kTest},
      {"jmp", Opcode::kJmp},   {"je", Opcode::kJe},
      {"jne", Opcode::kJne},   {"jl", Opcode::kJl},
      {"jle", Opcode::kJle},   {"jg", Opcode::kJg},
      {"jge", Opcode::kJge},   {"push", Opcode::kPush},
      {"pop", Opcode::kPop},   {"call", Opcode::kCall},
      {"ret", Opcode::kRet},   {"in", Opcode::kIn},
      {"out", Opcode::kOut},
  };
  const auto it = kOps.find(text);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

/// Expected operand count for validation.
int operand_count(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      return 0;
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kIn:
    case Opcode::kOut:
      return 1;
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
    case Opcode::kCall:
      return 1;  // the label
    default:
      return 2;
  }
}

std::int64_t parse_int(const std::string& text, int line) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(text, &pos, 0);
    if (pos != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw AsmError(line, "bad integer literal: " + text);
  }
}

Operand parse_operand(const std::string& text, int line) {
  if (text.empty()) throw AsmError(line, "missing operand");
  if (text[0] == '$') return Operand::imm(parse_int(text.substr(1), line));
  if (text[0] == '[') {
    if (text.back() != ']') throw AsmError(line, "unterminated memory operand");
    std::string inner = text.substr(1, text.size() - 2);
    // "[ fp + 2 ]" and "[fp+2]" are equivalent: drop all inner whitespace.
    std::erase_if(inner, [](unsigned char c) { return std::isspace(c) != 0; });
    // [reg], [reg+disp], [reg-disp]
    std::size_t sign = inner.find_first_of("+-");
    std::string reg_text = sign == std::string::npos
                               ? inner
                               : trim(inner.substr(0, sign));
    std::int64_t disp = 0;
    if (sign != std::string::npos)
      disp = parse_int(trim(inner.substr(sign)), line);
    try {
      return Operand::mem(parse_reg(reg_text), disp);
    } catch (const std::invalid_argument& e) {
      throw AsmError(line, e.what());
    }
  }
  try {
    return Operand::reg_op(parse_reg(text));
  } catch (const std::invalid_argument& e) {
    throw AsmError(line, e.what());
  }
}

std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = trim(cur);
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

std::vector<Instruction> assemble(const std::string& source) {
  std::vector<PendingInstruction> pending;
  std::map<std::string, std::size_t> labels;

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments.
    if (const auto semi = raw.find(';'); semi != std::string::npos)
      raw.erase(semi);
    std::string line = trim(raw);
    // Pull off any leading labels ("name:").
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string name = trim(line.substr(0, colon));
      if (name.empty() || name.find(' ') != std::string::npos)
        throw AsmError(line_no, "bad label");
      if (labels.contains(name))
        throw AsmError(line_no, "duplicate label: " + name);
      labels[name] = pending.size();
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    // Opcode is the first word.
    const auto space = line.find_first_of(" \t");
    std::string op_text = line.substr(0, space);
    std::transform(op_text.begin(), op_text.end(), op_text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const auto op = parse_opcode(op_text);
    if (!op) throw AsmError(line_no, "unknown opcode: " + op_text);

    const std::string rest =
        space == std::string::npos ? "" : trim(line.substr(space));
    const auto operands = split_operands(rest);
    if (static_cast<int>(operands.size()) != operand_count(*op))
      throw AsmError(line_no, "wrong operand count for " + op_text);

    PendingInstruction p;
    p.ins.op = *op;
    p.line = line_no;
    if (is_branch(*op)) {
      p.label_ref = operands[0];
    } else {
      if (!operands.empty()) p.ins.dst = parse_operand(operands[0], line_no);
      if (operands.size() > 1) p.ins.src = parse_operand(operands[1], line_no);
    }
    pending.push_back(std::move(p));
  }

  // Pass 2: resolve labels.
  std::vector<Instruction> program;
  program.reserve(pending.size());
  for (auto& p : pending) {
    if (!p.label_ref.empty()) {
      const auto it = labels.find(p.label_ref);
      if (it == labels.end())
        throw AsmError(p.line, "undefined label: " + p.label_ref);
      p.ins.target = it->second;
    }
    program.push_back(p.ins);
  }
  return program;
}

std::string disassemble_program(const std::vector<Instruction>& program) {
  std::string out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    out += "@" + std::to_string(i) + ": " + disassemble(program[i]) + "\n";
  }
  return out;
}

}  // namespace pdc::isa
