#pragma once
// The SwatVM execution engine: fetch/decode/execute with condition flags,
// a downward-growing stack, word-addressed memory, trapping semantics for
// every error students would hit with gdb on real hardware, and an
// optional single-step trace.

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "pdc/isa/instruction.hpp"

namespace pdc::isa {

/// Runtime fault (invalid memory, stack overflow, division by zero, ...).
class VmTrap : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Condition flags, set by add/sub/cmp/test/logic ops.
struct Flags {
  bool zf = false;  ///< zero
  bool sf = false;  ///< sign
  bool of = false;  ///< signed overflow
  bool cf = false;  ///< carry (unsigned overflow)
  bool operator==(const Flags&) const = default;
};

/// One line of an execution trace.
struct TraceEntry {
  std::size_t pc = 0;
  std::string text;                  // disassembled instruction
  std::int64_t regs[kNumRegs] = {};  // register file *after* execution
  Flags flags;
};

class Vm {
 public:
  /// `memory_words` words of RAM; SP starts at memory_words (one past the
  /// end, stack grows down), FP starts equal to SP.
  explicit Vm(std::vector<Instruction> program,
              std::size_t memory_words = 4096);

  /// Feed input values consumed by the `in` instruction.
  void set_input(std::vector<std::int64_t> values);

  /// Execute one instruction. Returns false when halted (or already
  /// halted). Throws VmTrap on faults.
  bool step();

  /// Run until halt or `max_steps` executed. Returns the number of
  /// instructions executed. Throws VmTrap on faults and on exceeding
  /// max_steps (runaway guard).
  std::size_t run(std::size_t max_steps = 1'000'000);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::size_t pc() const { return pc_; }
  [[nodiscard]] std::int64_t reg(Reg r) const;
  void set_reg(Reg r, std::int64_t v);
  [[nodiscard]] const Flags& flags() const { return flags_; }
  [[nodiscard]] std::int64_t mem(std::size_t addr) const;
  void set_mem(std::size_t addr, std::int64_t v);
  [[nodiscard]] std::size_t memory_words() const { return memory_.size(); }

  /// Values emitted by `out`, in order.
  [[nodiscard]] const std::vector<std::int64_t>& output() const {
    return output_;
  }

  /// Enable per-step tracing (kept in trace()).
  void set_tracing(bool on) { tracing_ = on; }
  [[nodiscard]] const std::vector<TraceEntry>& trace() const { return trace_; }

  [[nodiscard]] std::size_t instructions_executed() const { return executed_; }

  /// Per-opcode execution counts (always collected; the profiling view of
  /// the bomb lab: "where does this program spend its instructions?").
  [[nodiscard]] std::uint64_t opcode_count(Opcode op) const;

  /// Execution count of the instruction at `pc` (hot-spot histogram).
  [[nodiscard]] std::uint64_t pc_count(std::size_t pc) const;

  /// The `top` hottest (pc, count) pairs, descending by count.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>>
  hottest_instructions(std::size_t top = 5) const;

 private:
  [[nodiscard]] std::int64_t read_operand(const Operand& o) const;
  void write_operand(const Operand& o, std::int64_t v);
  void set_arith_flags(std::int64_t result);
  void push(std::int64_t v);
  [[nodiscard]] std::int64_t pop();

  std::vector<Instruction> program_;
  std::vector<std::int64_t> memory_;
  std::int64_t regs_[kNumRegs] = {};
  Flags flags_;
  std::size_t pc_ = 0;
  bool halted_ = false;
  std::deque<std::int64_t> input_;
  std::vector<std::int64_t> output_;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
  std::size_t executed_ = 0;
  std::uint64_t opcode_counts_[64] = {};
  std::vector<std::uint64_t> pc_counts_;
};

}  // namespace pdc::isa
