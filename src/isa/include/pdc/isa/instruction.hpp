#pragma once
// SwatVM instruction set — the portable stand-in for the IA32 material in
// CS31 (reading/tracing assembly, the stack, function-call mechanics).
// An 8-register machine with condition flags, a downward-growing stack,
// and word-addressed memory of 64-bit integers.

#include <cstdint>
#include <string>

namespace pdc::isa {

/// General-purpose registers. R6 is the frame pointer (FP) and R7 the
/// stack pointer (SP) by convention; CALL/RET/PUSH/POP use SP implicitly.
enum class Reg : std::uint8_t { kR0, kR1, kR2, kR3, kR4, kR5, kFp, kSp };

inline constexpr int kNumRegs = 8;

[[nodiscard]] std::string_view reg_name(Reg r);
/// Parse "r0".."r5", "fp", "sp" (case-insensitive); throws on bad names.
[[nodiscard]] Reg parse_reg(std::string_view text);

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,
  kMov,    // mov dst, src
  kAdd,    // dst += src (sets flags)
  kSub,    // dst -= src (sets flags)
  kMul,    // dst *= src (sets ZF/SF)
  kDiv,    // dst /= src (traps on 0)
  kAnd,
  kOr,
  kXor,
  kNot,    // dst = ~dst
  kNeg,    // dst = -dst
  kShl,
  kShr,
  kCmp,    // flags from dst - src (no write)
  kTest,   // flags from dst & src (no write)
  kJmp,
  kJe,     // ZF
  kJne,    // !ZF
  kJl,     // SF != OF
  kJle,    // ZF or SF != OF
  kJg,     // !ZF and SF == OF
  kJge,    // SF == OF
  kPush,
  kPop,
  kCall,
  kRet,
  kIn,     // dst = next input value (traps if exhausted)
  kOut,    // append src to output
};

[[nodiscard]] std::string_view opcode_name(Opcode op);

/// Operand: register, immediate, or memory [reg + disp].
struct Operand {
  enum class Kind : std::uint8_t { kNone, kReg, kImm, kMem };
  Kind kind = Kind::kNone;
  Reg reg = Reg::kR0;           // for kReg / kMem base
  std::int64_t value = 0;       // immediate, or displacement for kMem

  [[nodiscard]] static Operand none() { return {}; }
  [[nodiscard]] static Operand reg_op(Reg r) {
    return {Kind::kReg, r, 0};
  }
  [[nodiscard]] static Operand imm(std::int64_t v) {
    return {Kind::kImm, Reg::kR0, v};
  }
  [[nodiscard]] static Operand mem(Reg base, std::int64_t disp = 0) {
    return {Kind::kMem, base, disp};
  }
  bool operator==(const Operand&) const = default;
};

/// One decoded instruction. Jump/call targets are instruction indices
/// stored in `target` after label resolution.
struct Instruction {
  Opcode op = Opcode::kNop;
  Operand dst;
  Operand src;
  std::size_t target = 0;  // jmp/call destination (instruction index)

  bool operator==(const Instruction&) const = default;
};

/// Render one instruction back to assembly text (labels appear as
/// absolute instruction indices: "jmp @12").
[[nodiscard]] std::string disassemble(const Instruction& ins);

}  // namespace pdc::isa
