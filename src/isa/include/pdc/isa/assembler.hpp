#pragma once
// Two-pass assembler for SwatVM assembly.
//
// Syntax (one instruction per line):
//   ; comments run to end of line
//   label:            ; labels name the next instruction
//   mov r0, $42       ; $n  = immediate
//   mov r1, [fp-2]    ; [reg+disp] = memory operand (word displacement)
//   add r0, r1
//   cmp r0, $0
//   je  done
//   call func
//   out r0
//   halt

#include <stdexcept>
#include <string>
#include <vector>

#include "pdc/isa/instruction.hpp"

namespace pdc::isa {

/// Assembly error with (1-based) source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Assemble a full program; throws AsmError on syntax errors, duplicate
/// labels, or references to undefined labels.
[[nodiscard]] std::vector<Instruction> assemble(const std::string& source);

/// Disassemble a whole program, one instruction per line, prefixed with
/// the instruction index ("@3: mov r0, $1").
[[nodiscard]] std::string disassemble_program(
    const std::vector<Instruction>& program);

}  // namespace pdc::isa
