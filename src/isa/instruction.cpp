#include "pdc/isa/instruction.hpp"

#include <array>
#include <stdexcept>

namespace pdc::isa {

namespace {
constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "r0", "r1", "r2", "r3", "r4", "r5", "fp", "sp"};
}

std::string_view reg_name(Reg r) {
  return kRegNames[static_cast<std::size_t>(r)];
}

Reg parse_reg(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  for (std::size_t i = 0; i < kRegNames.size(); ++i)
    if (lower == kRegNames[i]) return static_cast<Reg>(i);
  throw std::invalid_argument("unknown register: " + std::string(text));
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kNeg: return "neg";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmp: return "cmp";
    case Opcode::kTest: return "test";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJe: return "je";
    case Opcode::kJne: return "jne";
    case Opcode::kJl: return "jl";
    case Opcode::kJle: return "jle";
    case Opcode::kJg: return "jg";
    case Opcode::kJge: return "jge";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kIn: return "in";
    case Opcode::kOut: return "out";
  }
  return "?";
}

namespace {

std::string operand_text(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::kNone: return "";
    case Operand::Kind::kReg: return std::string(reg_name(o.reg));
    case Operand::Kind::kImm: return "$" + std::to_string(o.value);
    case Operand::Kind::kMem: {
      std::string s = "[" + std::string(reg_name(o.reg));
      if (o.value > 0) s += "+" + std::to_string(o.value);
      if (o.value < 0) s += std::to_string(o.value);
      return s + "]";
    }
  }
  return "";
}

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string disassemble(const Instruction& ins) {
  std::string s(opcode_name(ins.op));
  if (is_branch(ins.op)) {
    s += " @" + std::to_string(ins.target);
    return s;
  }
  const std::string d = operand_text(ins.dst);
  const std::string r = operand_text(ins.src);
  if (!d.empty()) s += " " + d;
  if (!r.empty()) s += ", " + r;
  return s;
}

}  // namespace pdc::isa
