#include "pdc/isa/vm.hpp"

#include <algorithm>
#include <limits>

namespace pdc::isa {

Vm::Vm(std::vector<Instruction> program, std::size_t memory_words)
    : program_(std::move(program)), memory_(memory_words, 0) {
  pc_counts_.resize(program_.size(), 0);
  if (memory_words == 0) throw std::invalid_argument("memory must be > 0");
  regs_[static_cast<int>(Reg::kSp)] = static_cast<std::int64_t>(memory_words);
  regs_[static_cast<int>(Reg::kFp)] = static_cast<std::int64_t>(memory_words);
}

void Vm::set_input(std::vector<std::int64_t> values) {
  input_.assign(values.begin(), values.end());
}

std::int64_t Vm::reg(Reg r) const {
  return regs_[static_cast<int>(r)];
}

void Vm::set_reg(Reg r, std::int64_t v) { regs_[static_cast<int>(r)] = v; }

std::int64_t Vm::mem(std::size_t addr) const {
  if (addr >= memory_.size()) throw VmTrap("memory read out of bounds");
  return memory_[addr];
}

void Vm::set_mem(std::size_t addr, std::int64_t v) {
  if (addr >= memory_.size()) throw VmTrap("memory write out of bounds");
  memory_[addr] = v;
}

std::int64_t Vm::read_operand(const Operand& o) const {
  switch (o.kind) {
    case Operand::Kind::kReg: return regs_[static_cast<int>(o.reg)];
    case Operand::Kind::kImm: return o.value;
    case Operand::Kind::kMem: {
      const std::int64_t addr = regs_[static_cast<int>(o.reg)] + o.value;
      if (addr < 0) throw VmTrap("negative memory address");
      return mem(static_cast<std::size_t>(addr));
    }
    case Operand::Kind::kNone: break;
  }
  throw VmTrap("read of missing operand");
}

void Vm::write_operand(const Operand& o, std::int64_t v) {
  switch (o.kind) {
    case Operand::Kind::kReg:
      regs_[static_cast<int>(o.reg)] = v;
      return;
    case Operand::Kind::kMem: {
      const std::int64_t addr = regs_[static_cast<int>(o.reg)] + o.value;
      if (addr < 0) throw VmTrap("negative memory address");
      set_mem(static_cast<std::size_t>(addr), v);
      return;
    }
    case Operand::Kind::kImm:
      throw VmTrap("write to immediate operand");
    case Operand::Kind::kNone:
      throw VmTrap("write to missing operand");
  }
}

void Vm::set_arith_flags(std::int64_t result) {
  flags_.zf = result == 0;
  flags_.sf = result < 0;
}

void Vm::push(std::int64_t v) {
  std::int64_t& sp = regs_[static_cast<int>(Reg::kSp)];
  if (sp <= 0) throw VmTrap("stack overflow");
  --sp;
  memory_[static_cast<std::size_t>(sp)] = v;
}

std::int64_t Vm::pop() {
  std::int64_t& sp = regs_[static_cast<int>(Reg::kSp)];
  if (sp >= static_cast<std::int64_t>(memory_.size()))
    throw VmTrap("stack underflow");
  return memory_[static_cast<std::size_t>(sp++)];
}

bool Vm::step() {
  if (halted_) return false;
  if (pc_ >= program_.size()) throw VmTrap("program counter out of range");

  const Instruction& ins = program_[pc_];
  std::size_t next_pc = pc_ + 1;

  auto sub_with_flags = [&](std::int64_t a, std::int64_t b) {
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    const auto ur = ua - ub;
    const auto r = static_cast<std::int64_t>(ur);
    flags_.zf = r == 0;
    flags_.sf = r < 0;
    flags_.cf = ua < ub;
    flags_.of = ((a < 0) != (b < 0)) && ((r < 0) != (a < 0));
    return r;
  };
  auto add_with_flags = [&](std::int64_t a, std::int64_t b) {
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    const auto ur = ua + ub;
    const auto r = static_cast<std::int64_t>(ur);
    flags_.zf = r == 0;
    flags_.sf = r < 0;
    flags_.cf = ur < ua;
    flags_.of = ((a < 0) == (b < 0)) && ((r < 0) != (a < 0));
    return r;
  };
  auto branch_if = [&](bool cond) {
    if (cond) {
      if (ins.target >= program_.size())
        throw VmTrap("branch target out of range");
      next_pc = ins.target;
    }
  };

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kMov:
      write_operand(ins.dst, read_operand(ins.src));
      break;
    case Opcode::kAdd:
      write_operand(ins.dst,
                    add_with_flags(read_operand(ins.dst),
                                   read_operand(ins.src)));
      break;
    case Opcode::kSub:
      write_operand(ins.dst,
                    sub_with_flags(read_operand(ins.dst),
                                   read_operand(ins.src)));
      break;
    case Opcode::kMul: {
      const std::int64_t r = read_operand(ins.dst) * read_operand(ins.src);
      set_arith_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kDiv: {
      const std::int64_t b = read_operand(ins.src);
      if (b == 0) throw VmTrap("division by zero");
      const std::int64_t r = read_operand(ins.dst) / b;
      set_arith_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kAnd: {
      const std::int64_t r = read_operand(ins.dst) & read_operand(ins.src);
      set_arith_flags(r);
      flags_.of = flags_.cf = false;
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kOr: {
      const std::int64_t r = read_operand(ins.dst) | read_operand(ins.src);
      set_arith_flags(r);
      flags_.of = flags_.cf = false;
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kXor: {
      const std::int64_t r = read_operand(ins.dst) ^ read_operand(ins.src);
      set_arith_flags(r);
      flags_.of = flags_.cf = false;
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kNot:
      write_operand(ins.dst, ~read_operand(ins.dst));
      break;
    case Opcode::kNeg: {
      const std::int64_t r = -read_operand(ins.dst);
      set_arith_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kShl: {
      const std::int64_t sh = read_operand(ins.src);
      if (sh < 0 || sh > 63) throw VmTrap("shift amount out of range");
      const std::int64_t r = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(read_operand(ins.dst)) << sh);
      set_arith_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kShr: {
      const std::int64_t sh = read_operand(ins.src);
      if (sh < 0 || sh > 63) throw VmTrap("shift amount out of range");
      const std::int64_t r = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(read_operand(ins.dst)) >> sh);
      set_arith_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Opcode::kCmp:
      (void)sub_with_flags(read_operand(ins.dst), read_operand(ins.src));
      break;
    case Opcode::kTest: {
      const std::int64_t r = read_operand(ins.dst) & read_operand(ins.src);
      set_arith_flags(r);
      flags_.of = flags_.cf = false;
      break;
    }
    case Opcode::kJmp: branch_if(true); break;
    case Opcode::kJe: branch_if(flags_.zf); break;
    case Opcode::kJne: branch_if(!flags_.zf); break;
    case Opcode::kJl: branch_if(flags_.sf != flags_.of); break;
    case Opcode::kJle: branch_if(flags_.zf || flags_.sf != flags_.of); break;
    case Opcode::kJg: branch_if(!flags_.zf && flags_.sf == flags_.of); break;
    case Opcode::kJge: branch_if(flags_.sf == flags_.of); break;
    case Opcode::kPush:
      push(read_operand(ins.dst));
      break;
    case Opcode::kPop:
      write_operand(ins.dst, pop());
      break;
    case Opcode::kCall:
      push(static_cast<std::int64_t>(pc_ + 1));
      branch_if(true);
      break;
    case Opcode::kRet: {
      const std::int64_t ra = pop();
      if (ra < 0 || static_cast<std::size_t>(ra) > program_.size())
        throw VmTrap("corrupt return address");
      next_pc = static_cast<std::size_t>(ra);
      // Returning to one-past-the-end halts cleanly (main's return).
      if (next_pc == program_.size()) halted_ = true;
      break;
    }
    case Opcode::kIn: {
      if (input_.empty()) throw VmTrap("input exhausted");
      write_operand(ins.dst, input_.front());
      input_.pop_front();
      break;
    }
    case Opcode::kOut:
      output_.push_back(read_operand(ins.dst));
      break;
  }

  ++executed_;
  ++opcode_counts_[static_cast<int>(ins.op)];
  ++pc_counts_[pc_];
  if (tracing_) {
    TraceEntry e;
    e.pc = pc_;
    e.text = disassemble(ins);
    for (int i = 0; i < kNumRegs; ++i) e.regs[i] = regs_[i];
    e.flags = flags_;
    trace_.push_back(std::move(e));
  }
  if (!halted_) pc_ = next_pc;
  return !halted_;
}

std::uint64_t Vm::opcode_count(Opcode op) const {
  return opcode_counts_[static_cast<int>(op)];
}

std::uint64_t Vm::pc_count(std::size_t pc) const {
  return pc < pc_counts_.size() ? pc_counts_[pc] : 0;
}

std::vector<std::pair<std::size_t, std::uint64_t>> Vm::hottest_instructions(
    std::size_t top) const {
  std::vector<std::pair<std::size_t, std::uint64_t>> all;
  for (std::size_t pc = 0; pc < pc_counts_.size(); ++pc)
    if (pc_counts_[pc] > 0) all.emplace_back(pc, pc_counts_[pc]);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (all.size() > top) all.resize(top);
  return all;
}

std::size_t Vm::run(std::size_t max_steps) {
  const std::size_t start = executed_;
  while (!halted_) {
    if (executed_ - start >= max_steps)
      throw VmTrap("instruction budget exceeded (runaway program?)");
    step();
  }
  return executed_ - start;
}

}  // namespace pdc::isa
