#pragma once
// Counting semaphore built from a mutex + condition variable — the CS31
// synchronization-primitives unit derives exactly this construction before
// using semaphores to solve producer-consumer.

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace pdc::sync {

/// Classic counting semaphore with P (acquire) / V (release).
class Semaphore {
 public:
  /// `initial` must be >= 0 (std::invalid_argument otherwise).
  explicit Semaphore(long initial);

  /// P: block until the count is positive, then decrement.
  void acquire();

  /// Non-blocking P: decrement if positive; false otherwise.
  bool try_acquire();

  /// Timed P: false on timeout.
  bool try_acquire_for(std::chrono::milliseconds timeout);

  /// V: increment and wake one waiter.
  void release(long n = 1);

  /// Current count (advisory — may change immediately after returning).
  [[nodiscard]] long count() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  long count_;
};

}  // namespace pdc::sync
