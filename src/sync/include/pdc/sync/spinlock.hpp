#pragma once
// Spinlock family from the CS31/CS87 synchronization units. Each type
// meets the C++ Lockable requirements, so std::lock_guard/scoped_lock work
// (Core Guidelines CP.20: RAII, never plain lock/unlock).
//
// The three variants exist to be *compared*: test-and-set hammers the cache
// line with RMW operations, test-and-test-and-set spins on a read-only copy,
// and the ticket lock adds FIFO fairness. bench_table2_sync measures the
// difference under contention.

#include <atomic>
#include <cstdint>
#include <thread>

namespace pdc::sync {

/// Naive test-and-set spinlock: every spin iteration is an atomic exchange
/// (a cache-line invalidation broadcast under contention).
class TasSpinLock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // spin
    }
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Test-and-test-and-set: spin with plain loads, attempt the RMW only when
/// the lock looks free; optional exponential yield backoff.
class TtasSpinLock {
 public:
  explicit TtasSpinLock(bool backoff = true) : backoff_(backoff) {}

  void lock() {
    int spins = 0;
    while (true) {
      while (flag_.load(std::memory_order_relaxed)) {
        if (backoff_ && ++spins > kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 1024;
  std::atomic<bool> flag_{false};
  bool backoff_;
};

/// FIFO ticket lock: acquisitions are served strictly in arrival order, so
/// no thread can starve (contrast with the TAS locks above, which are
/// unfair under contention).
class TicketLock {
 public:
  void lock() {
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != my)
      std::this_thread::yield();
  }

  bool try_lock() {
    std::uint64_t s = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = s;
    // Succeed only if no one is queued: next == serving, and we can claim it.
    return next_.compare_exchange_strong(expected, s + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() { serving_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> serving_{0};
};

}  // namespace pdc::sync
