#pragma once
// Deadlock analysis (CS31 "Deadlock" topic; OS course theory made
// executable):
//  - WaitForGraph: offline detection — build the "thread waits for thread"
//    graph from resource-allocation state and find cycles.
//  - LockOrderRegistry: online prevention — record the order in which lock
//    *classes* are acquired while other locks are held; a cycle in that
//    order graph means some interleaving can deadlock, even if this run
//    did not.

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pdc::sync {

/// Directed graph over integer node ids with cycle detection.
class WaitForGraph {
 public:
  /// Add edge: `from` waits for `to`.
  void add_edge(int from, int to);
  void remove_edge(int from, int to);

  /// True iff the graph currently contains a directed cycle.
  [[nodiscard]] bool has_cycle() const;

  /// One cycle (node sequence, first == last) if any, else empty.
  [[nodiscard]] std::vector<int> find_cycle() const;

  [[nodiscard]] std::size_t edge_count() const;

 private:
  std::map<int, std::set<int>> adj_;
};

/// Resource-allocation state: which thread holds which lock, who requests
/// what. `deadlocked_threads()` reduces it to a WaitForGraph and reports
/// every thread on a cycle.
class ResourceAllocationState {
 public:
  void acquire(int thread, int resource);         ///< grant resource
  void release(int thread, int resource);
  void request(int thread, int resource);         ///< thread blocks on it
  void cancel_request(int thread, int resource);

  [[nodiscard]] std::vector<int> deadlocked_threads() const;

 private:
  std::map<int, int> holder_;                 // resource -> thread
  std::map<int, std::set<int>> requests_;     // thread -> resources wanted
};

/// Online lock-ordering checker.
///
/// Instrument acquisitions with `on_acquire(tid, lock_class)` and releases
/// with `on_release(tid, lock_class)`. Whenever a thread acquires class B
/// while holding class A, the order edge A->B is recorded; an A->B and
/// B->A pair (any cycle) is a potential deadlock and is reported.
class LockOrderRegistry {
 public:
  void on_acquire(int thread, const std::string& lock_class);
  void on_release(int thread, const std::string& lock_class);

  /// Cycles detected so far, rendered as "A -> B -> A" strings.
  [[nodiscard]] std::vector<std::string> violations() const;

  [[nodiscard]] bool clean() const { return violations().empty(); }

 private:
  mutable std::mutex m_;
  std::map<int, std::vector<std::string>> held_;       // per-thread stack
  std::map<std::string, std::set<std::string>> order_; // A held before B
  std::vector<std::string> violations_;
};

}  // namespace pdc::sync
