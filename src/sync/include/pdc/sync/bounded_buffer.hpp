#pragma once
// Producer-consumer bounded buffer (monitor style): the canonical CS31
// synchronization problem, solved with one mutex and two condition
// variables. close() gives clean multi-producer/multi-consumer shutdown.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace pdc::sync {

/// Fixed-capacity FIFO channel for T. Thread-safe for any number of
/// producers and consumers.
template <typename T>
class BoundedBuffer {
 public:
  explicit BoundedBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0)
      throw std::invalid_argument("capacity must be > 0");
  }

  /// Block until space is available, then enqueue.
  /// Returns false (item dropped) if the buffer has been closed.
  bool push(T item) {
    std::unique_lock lk(m_);
    not_full_.wait(lk, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Timed enqueue: wait up to `timeout` for space; false on timeout or
  /// if the buffer is (or becomes) closed.
  bool try_push_for(T item, std::chrono::milliseconds timeout) {
    std::unique_lock lk(m_);
    if (!not_full_.wait_for(lk, timeout,
                            [&] { return q_.size() < capacity_ || closed_; }))
      return false;
    if (closed_) return false;
    q_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue; false if full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lk(m_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the buffer is closed *and*
  /// drained; std::nullopt signals end-of-stream.
  std::optional<T> pop() {
    std::unique_lock lk(m_);
    not_empty_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed dequeue: wait up to `timeout` for an item; std::nullopt on
  /// timeout or when the buffer is closed and drained.
  std::optional<T> try_pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lk(m_);
    if (!not_empty_.wait_for(lk, timeout,
                             [&] { return !q_.empty() || closed_; }))
      return std::nullopt;
    if (q_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue; std::nullopt if currently empty.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lk(m_);
      if (q_.empty()) return std::nullopt;
      item = std::move(q_.front());
      q_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Mark end-of-stream: producers start failing, consumers drain then see
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lk(m_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lk(m_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(m_);
    return q_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace pdc::sync
