#pragma once
// Readers-writer lock built from a mutex and condition variables, the way
// the OS course derives it: state = (active readers, active writer,
// waiting writers), with writer preference to avoid writer starvation.

#include <condition_variable>
#include <mutex>

namespace pdc::sync {

/// Writer-preferring readers-writer lock.
///
/// Meets SharedLockable/Lockable: usable with std::shared_lock (reader
/// side) and std::unique_lock (writer side).
class RwLock {
 public:
  // --- reader (shared) side ---
  void lock_shared();
  bool try_lock_shared();
  void unlock_shared();

  // --- writer (exclusive) side ---
  void lock();
  bool try_lock();
  void unlock();

  /// Snapshot of internal state, for tests/teaching.
  struct State {
    int active_readers = 0;
    bool active_writer = false;
    int waiting_writers = 0;
  };
  [[nodiscard]] State state() const;

 private:
  mutable std::mutex m_;
  std::condition_variable readers_cv_;
  std::condition_variable writers_cv_;
  int active_readers_ = 0;
  bool active_writer_ = false;
  int waiting_writers_ = 0;
};

}  // namespace pdc::sync
