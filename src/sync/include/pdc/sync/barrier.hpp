#pragma once
// Reusable synchronization barriers. The threaded Game of Life engine uses
// one barrier per generation; CS87 contrasts the centralized (condvar)
// barrier with the sense-reversing spinning barrier.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace pdc::sync {

/// Thrown out of CyclicBarrier::arrive_and_wait() after break_barrier():
/// a teammate failed before arriving, so this phase can never complete.
class BrokenBarrierError : public std::runtime_error {
 public:
  BrokenBarrierError() : std::runtime_error("barrier broken") {}
};

/// Centralized reusable barrier on mutex + condition variable.
///
/// `arrive_and_wait()` blocks until `parties` threads have arrived; the
/// barrier then resets for the next phase (generation counter prevents a
/// fast thread from lapping a slow one).
///
/// A barrier can be *broken* (break_barrier()) when one participant will
/// never arrive — e.g. it threw out of its SPMD body. Current and future
/// waiters then raise BrokenBarrierError instead of blocking forever,
/// which is how pdc::core::Team unwinds a failed region without deadlock.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties);

  /// Returns the phase number that just completed (0-based), identical for
  /// every thread released together. Throws BrokenBarrierError if the
  /// barrier is (or becomes) broken before the phase completes.
  std::size_t arrive_and_wait();

  /// Permanently break the barrier: wake every waiter with
  /// BrokenBarrierError and make future arrivals throw immediately.
  void break_barrier();

  [[nodiscard]] bool broken() const;

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::size_t waiting_ = 0;
  std::size_t phase_ = 0;
  bool broken_ = false;
};

/// Sense-reversing spinning barrier: no syscalls, just atomics — the
/// low-latency variant for short phases on dedicated cores.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t parties);

  void arrive_and_wait();

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> count_;
  std::atomic<bool> sense_{false};
};

/// Dissemination barrier: ceil(log2 P) rounds; in round k, thread i
/// signals thread (i + 2^k) mod P and waits for (i - 2^k) mod P. No
/// central counter — every flag is written by exactly one thread per
/// phase, so contention is O(1) per location (the scalable textbook
/// barrier, and the software analog of the mp tree collectives).
///
/// Unlike the other barriers, threads must identify themselves:
/// call arrive_and_wait(my_index) with a stable index in [0, parties).
class DisseminationBarrier {
 public:
  explicit DisseminationBarrier(std::size_t parties);

  void arrive_and_wait(std::size_t my_index);

  [[nodiscard]] std::size_t parties() const { return parties_; }
  [[nodiscard]] std::size_t rounds() const { return rounds_; }

 private:
  const std::size_t parties_;
  std::size_t rounds_;
  // flags_[thread][round]: generation counter written by the signaler.
  std::vector<std::vector<std::atomic<std::uint64_t>>> flags_;
  std::vector<std::uint64_t> generation_;  // per-thread local phase count
};

}  // namespace pdc::sync
