#include "pdc/sync/rwlock.hpp"

namespace pdc::sync {

void RwLock::lock_shared() {
  std::unique_lock lk(m_);
  // Writer preference: readers also wait while writers are queued.
  readers_cv_.wait(lk, [&] { return !active_writer_ && waiting_writers_ == 0; });
  ++active_readers_;
}

bool RwLock::try_lock_shared() {
  std::lock_guard lk(m_);
  if (active_writer_ || waiting_writers_ > 0) return false;
  ++active_readers_;
  return true;
}

void RwLock::unlock_shared() {
  std::lock_guard lk(m_);
  if (--active_readers_ == 0) writers_cv_.notify_one();
}

void RwLock::lock() {
  std::unique_lock lk(m_);
  ++waiting_writers_;
  writers_cv_.wait(lk, [&] { return !active_writer_ && active_readers_ == 0; });
  --waiting_writers_;
  active_writer_ = true;
}

bool RwLock::try_lock() {
  std::lock_guard lk(m_);
  if (active_writer_ || active_readers_ > 0) return false;
  active_writer_ = true;
  return true;
}

void RwLock::unlock() {
  std::lock_guard lk(m_);
  active_writer_ = false;
  if (waiting_writers_ > 0) {
    writers_cv_.notify_one();
  } else {
    readers_cv_.notify_all();
  }
}

RwLock::State RwLock::state() const {
  std::lock_guard lk(m_);
  return {active_readers_, active_writer_, waiting_writers_};
}

}  // namespace pdc::sync
