#include "pdc/sync/barrier.hpp"

#include <stdexcept>
#include <thread>

namespace pdc::sync {

CyclicBarrier::CyclicBarrier(std::size_t parties) : parties_(parties) {
  if (parties_ == 0) throw std::invalid_argument("parties must be > 0");
}

std::size_t CyclicBarrier::arrive_and_wait() {
  std::unique_lock lk(m_);
  if (broken_) throw BrokenBarrierError();
  const std::size_t my_phase = phase_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++phase_;
    lk.unlock();
    cv_.notify_all();
    return my_phase;
  }
  cv_.wait(lk, [&] { return broken_ || phase_ != my_phase; });
  // Woken by break_barrier() rather than a completed phase.
  if (phase_ == my_phase) throw BrokenBarrierError();
  return my_phase;
}

void CyclicBarrier::break_barrier() {
  {
    std::lock_guard lk(m_);
    broken_ = true;
  }
  cv_.notify_all();
}

bool CyclicBarrier::broken() const {
  std::lock_guard lk(m_);
  return broken_;
}

SenseBarrier::SenseBarrier(std::size_t parties)
    : parties_(parties), count_(parties) {
  if (parties_ == 0) throw std::invalid_argument("parties must be > 0");
}

void SenseBarrier::arrive_and_wait() {
  // Capture the phase's sense before decrementing; the releasing thread
  // resets the count *before* flipping the sense so early re-entrants are
  // safe.
  const bool my_sense = sense_.load(std::memory_order_acquire);
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    count_.store(parties_, std::memory_order_relaxed);
    sense_.store(!my_sense, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (sense_.load(std::memory_order_acquire) == my_sense) {
    if (++spins > 1024) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

DisseminationBarrier::DisseminationBarrier(std::size_t parties)
    : parties_(parties) {
  if (parties_ == 0) throw std::invalid_argument("parties must be > 0");
  rounds_ = 0;
  for (std::size_t reach = 1; reach < parties_; reach *= 2) ++rounds_;
  flags_.resize(parties_);
  for (auto& per_thread : flags_) {
    per_thread = std::vector<std::atomic<std::uint64_t>>(
        rounds_ == 0 ? 1 : rounds_);
    for (auto& f : per_thread) f.store(0, std::memory_order_relaxed);
  }
  generation_.assign(parties_, 0);
}

void DisseminationBarrier::arrive_and_wait(std::size_t my_index) {
  if (my_index >= parties_) throw std::out_of_range("barrier index");
  const std::uint64_t gen = ++generation_[my_index];
  for (std::size_t k = 0; k < rounds_; ++k) {
    const std::size_t partner = (my_index + (std::size_t{1} << k)) % parties_;
    // Signal the partner's round-k flag (single writer per flag).
    flags_[partner][k].store(gen, std::memory_order_release);
    // Wait for our own round-k flag from (my_index - 2^k) mod P.
    int spins = 0;
    while (flags_[my_index][k].load(std::memory_order_acquire) < gen) {
      if (++spins > 1024) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

}  // namespace pdc::sync
