#include "pdc/sync/semaphore.hpp"

#include <stdexcept>

namespace pdc::sync {

Semaphore::Semaphore(long initial) : count_(initial) {
  if (initial < 0) throw std::invalid_argument("semaphore count must be >= 0");
}

void Semaphore::acquire() {
  std::unique_lock lk(m_);
  cv_.wait(lk, [&] { return count_ > 0; });
  --count_;
}

bool Semaphore::try_acquire() {
  std::lock_guard lk(m_);
  if (count_ == 0) return false;
  --count_;
  return true;
}

bool Semaphore::try_acquire_for(std::chrono::milliseconds timeout) {
  std::unique_lock lk(m_);
  if (!cv_.wait_for(lk, timeout, [&] { return count_ > 0; })) return false;
  --count_;
  return true;
}

void Semaphore::release(long n) {
  if (n <= 0) throw std::invalid_argument("release count must be > 0");
  {
    std::lock_guard lk(m_);
    count_ += n;
  }
  if (n == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

long Semaphore::count() const {
  std::lock_guard lk(m_);
  return count_;
}

}  // namespace pdc::sync
