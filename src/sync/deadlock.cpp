#include "pdc/sync/deadlock.hpp"

#include <algorithm>
#include <functional>

namespace pdc::sync {

void WaitForGraph::add_edge(int from, int to) { adj_[from].insert(to); }

void WaitForGraph::remove_edge(int from, int to) {
  auto it = adj_.find(from);
  if (it == adj_.end()) return;
  it->second.erase(to);
  if (it->second.empty()) adj_.erase(it);
}

std::size_t WaitForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [_, outs] : adj_) n += outs.size();
  return n;
}

std::vector<int> WaitForGraph::find_cycle() const {
  enum class Color { kWhite, kGray, kBlack };
  std::map<int, Color> color;
  std::map<int, int> parent;

  // Collect all nodes (sources and sinks).
  std::set<int> nodes;
  for (const auto& [from, outs] : adj_) {
    nodes.insert(from);
    nodes.insert(outs.begin(), outs.end());
  }
  for (int n : nodes) color[n] = Color::kWhite;

  std::vector<int> cycle;
  std::function<bool(int)> dfs = [&](int u) -> bool {
    color[u] = Color::kGray;
    auto it = adj_.find(u);
    if (it != adj_.end()) {
      for (int v : it->second) {
        if (color[v] == Color::kGray) {
          // Reconstruct the cycle v -> ... -> u -> v.
          cycle.push_back(v);
          for (int x = u; x != v; x = parent[x]) cycle.push_back(x);
          cycle.push_back(v);
          std::reverse(cycle.begin(), cycle.end());
          return true;
        }
        if (color[v] == Color::kWhite) {
          parent[v] = u;
          if (dfs(v)) return true;
        }
      }
    }
    color[u] = Color::kBlack;
    return false;
  };

  for (int n : nodes)
    if (color[n] == Color::kWhite && dfs(n)) return cycle;
  return {};
}

bool WaitForGraph::has_cycle() const { return !find_cycle().empty(); }

void ResourceAllocationState::acquire(int thread, int resource) {
  holder_[resource] = thread;
  requests_[thread].erase(resource);
}

void ResourceAllocationState::release(int thread, int resource) {
  auto it = holder_.find(resource);
  if (it != holder_.end() && it->second == thread) holder_.erase(it);
}

void ResourceAllocationState::request(int thread, int resource) {
  requests_[thread].insert(resource);
}

void ResourceAllocationState::cancel_request(int thread, int resource) {
  auto it = requests_.find(thread);
  if (it != requests_.end()) it->second.erase(resource);
}

std::vector<int> ResourceAllocationState::deadlocked_threads() const {
  // Thread T waits for thread U iff T requests a resource U holds.
  WaitForGraph g;
  for (const auto& [t, wants] : requests_) {
    for (int r : wants) {
      auto h = holder_.find(r);
      if (h != holder_.end() && h->second != t) g.add_edge(t, h->second);
    }
  }
  std::vector<int> cycle = g.find_cycle();
  if (cycle.empty()) return {};
  cycle.pop_back();  // drop the duplicated closing node
  std::sort(cycle.begin(), cycle.end());
  cycle.erase(std::unique(cycle.begin(), cycle.end()), cycle.end());
  return cycle;
}

void LockOrderRegistry::on_acquire(int thread, const std::string& lock_class) {
  std::lock_guard lk(m_);
  auto& held = held_[thread];
  for (const auto& before : held) {
    if (before == lock_class) continue;  // recursive same-class: not an edge
    order_[before].insert(lock_class);
    // New edge before->lock_class: does the reverse path already exist?
    // BFS from lock_class looking for `before`.
    std::vector<std::string> stack{lock_class};
    std::set<std::string> seen{lock_class};
    bool found = false;
    while (!stack.empty() && !found) {
      std::string u = stack.back();
      stack.pop_back();
      auto it = order_.find(u);
      if (it == order_.end()) continue;
      for (const auto& v : it->second) {
        if (v == before) {
          found = true;
          break;
        }
        if (seen.insert(v).second) stack.push_back(v);
      }
    }
    if (found) {
      violations_.push_back(before + " -> " + lock_class + " -> " + before);
    }
  }
  held.push_back(lock_class);
}

void LockOrderRegistry::on_release(int thread, const std::string& lock_class) {
  std::lock_guard lk(m_);
  auto& held = held_[thread];
  auto it = std::find(held.rbegin(), held.rend(), lock_class);
  if (it != held.rend()) held.erase(std::next(it).base());
}

std::vector<std::string> LockOrderRegistry::violations() const {
  std::lock_guard lk(m_);
  return violations_;
}

}  // namespace pdc::sync
