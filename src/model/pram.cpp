#include "pdc/model/pram.hpp"

#include <map>
#include <set>

namespace pdc::model {

std::string_view pram_mode_name(PramMode m) {
  switch (m) {
    case PramMode::kErew: return "EREW";
    case PramMode::kCrew: return "CREW";
    case PramMode::kCrcwCommon: return "CRCW-common";
    case PramMode::kCrcwArbitrary: return "CRCW-arbitrary";
  }
  return "?";
}

Pram::Pram(std::size_t cells, PramMode mode) : memory_(cells, 0), mode_(mode) {
  if (cells == 0) throw std::invalid_argument("cells must be > 0");
}

void Pram::check_addr(std::size_t addr) const {
  if (addr >= memory_.size()) throw std::out_of_range("PRAM address");
}

std::int64_t Pram::get(std::size_t addr) const {
  check_addr(addr);
  return memory_[addr];
}

void Pram::poke(std::size_t addr, std::int64_t value) {
  check_addr(addr);
  memory_[addr] = value;
}

std::vector<std::int64_t> Pram::step(std::span<const PramRead> reads,
                                     std::span<const PramWrite> writes) {
  // --- validate the access pattern against the mode ---
  const bool exclusive_read =
      mode_ == PramMode::kErew;
  const bool exclusive_write =
      mode_ == PramMode::kErew || mode_ == PramMode::kCrew;

  std::map<std::size_t, int> read_count;
  for (const auto& r : reads) {
    check_addr(r.addr);
    ++read_count[r.addr];
  }
  if (exclusive_read) {
    for (const auto& [addr, n] : read_count)
      if (n > 1)
        throw PramConflictError("EREW: concurrent read of cell " +
                                std::to_string(addr));
  }

  std::map<std::size_t, std::vector<const PramWrite*>> writers;
  for (const auto& w : writes) {
    check_addr(w.addr);
    writers[w.addr].push_back(&w);
  }
  for (const auto& [addr, ws] : writers) {
    if (ws.size() > 1) {
      if (exclusive_write)
        throw PramConflictError(std::string(pram_mode_name(mode_)) +
                                ": concurrent write to cell " +
                                std::to_string(addr));
      if (mode_ == PramMode::kCrcwCommon) {
        for (const auto* w : ws)
          if (w->value != ws.front()->value)
            throw PramConflictError(
                "CRCW-common: conflicting values written to cell " +
                std::to_string(addr));
      }
    }
    // Note: a PRAM step has separate read and write substeps, so one read
    // and one write of the same cell within a step is legal even in EREW —
    // exclusivity is enforced per substep above.
  }

  // --- execute: reads see pre-step memory, then writes apply ---
  std::vector<std::int64_t> results;
  results.reserve(reads.size());
  for (const auto& r : reads) results.push_back(memory_[r.addr]);

  for (const auto& [addr, ws] : writers) {
    if (mode_ == PramMode::kCrcwArbitrary && ws.size() > 1) {
      // Lowest processor id wins (deterministic "arbitrary").
      const PramWrite* winner = ws.front();
      for (const auto* w : ws)
        if (w->proc < winner->proc) winner = w;
      memory_[addr] = winner->value;
    } else {
      memory_[addr] = ws.front()->value;
    }
  }

  ++steps_;
  return results;
}

std::int64_t pram_sum(Pram& pram, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (n > pram.cells()) throw std::out_of_range("n exceeds PRAM memory");
  // Tree reduction: in round r, proc i adds cell i+stride into cell i.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    std::vector<PramRead> reads;
    std::vector<PramWrite> writes;
    int proc = 0;
    // First gather both operands (exclusive: each cell touched once).
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i + stride < n; i += 2 * stride)
      pairs.emplace_back(i, i + stride);
    for (const auto& [a, b] : pairs) {
      reads.push_back({proc, a});
      reads.push_back({proc, b});
      ++proc;
    }
    const auto vals = pram.step(reads, {});
    proc = 0;
    writes.clear();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      writes.push_back({static_cast<int>(k), pairs[k].first,
                        vals[2 * k] + vals[2 * k + 1]});
    }
    (void)pram.step({}, writes);
  }
  return pram.get(0);
}

void pram_prefix_sum(Pram& pram, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (n > pram.cells()) throw std::out_of_range("n exceeds PRAM memory");
  // Hillis-Steele: x[i] += x[i - stride]. Cell i-stride is read by proc i
  // while also being read by proc i-stride... in the classic formulation
  // each proc reads two cells; concurrent reads occur, so CREW is required.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    std::vector<PramRead> reads;
    for (std::size_t i = stride; i < n; ++i) {
      const int proc = static_cast<int>(i);
      reads.push_back({proc, i});
      reads.push_back({proc, i - stride});
    }
    const auto vals = pram.step(reads, {});
    std::vector<PramWrite> writes;
    std::size_t k = 0;
    for (std::size_t i = stride; i < n; ++i, k += 2) {
      writes.push_back(
          {static_cast<int>(i), i, vals[k] + vals[k + 1]});
    }
    (void)pram.step({}, writes);
  }
}

std::int64_t pram_max_crcw(Pram& pram, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (2 * n > pram.cells())
    throw std::out_of_range("need 2n cells of PRAM memory");
  // flags[i] (cells n..2n) start at 1; proc (i,j) clears flags[i] if
  // x[i] < x[j]. The surviving flag marks the maximum. Constant steps,
  // n^2 processors, common-CRCW writes (everyone writes 0).
  {
    std::vector<PramWrite> init;
    for (std::size_t i = 0; i < n; ++i)
      init.push_back({static_cast<int>(i), n + i, 1});
    (void)pram.step({}, init);
  }
  // Read all pairs (concurrent reads!), then clear losing flags.
  std::vector<PramRead> reads;
  reads.reserve(2 * n * n);
  int proc = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      reads.push_back({proc, i});
      reads.push_back({proc, j});
      ++proc;
    }
  const auto vals = pram.step(reads, {});
  std::vector<PramWrite> clears;
  proc = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t xi = vals[2 * static_cast<std::size_t>(proc)];
      const std::int64_t xj = vals[2 * static_cast<std::size_t>(proc) + 1];
      if (xi < xj) clears.push_back({proc, n + i, 0});
      ++proc;
    }
  (void)pram.step({}, clears);

  // One more parallel step: the winning index writes x[i] to cell 0
  // (exactly one flag survives; duplicates of the max all write the same
  // value, still common).
  std::vector<PramRead> flag_reads;
  for (std::size_t i = 0; i < n; ++i)
    flag_reads.push_back({static_cast<int>(i), n + i});
  std::vector<PramRead> val_reads;
  for (std::size_t i = 0; i < n; ++i)
    val_reads.push_back({static_cast<int>(i), i});
  const auto flags = pram.step(flag_reads, {});
  const auto xs = pram.step(val_reads, {});
  std::vector<PramWrite> result;
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i] == 1) result.push_back({static_cast<int>(i), 0, xs[i]});
  (void)pram.step({}, result);
  return pram.get(0);
}

void pram_list_rank(Pram& pram, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (2 * n > pram.cells())
    throw std::out_of_range("need 2n cells of PRAM memory");
  // rank[i] = 0 if succ[i] == i else 1 (initial step counts one hop).
  {
    std::vector<PramRead> reads;
    for (std::size_t i = 0; i < n; ++i)
      reads.push_back({static_cast<int>(i), i});
    const auto succ = pram.step(reads, {});
    std::vector<PramWrite> writes;
    for (std::size_t i = 0; i < n; ++i)
      writes.push_back({static_cast<int>(i), n + i,
                        succ[i] == static_cast<std::int64_t>(i) ? 0 : 1});
    (void)pram.step({}, writes);
  }
  // Pointer jumping: rank[i] += rank[succ[i]]; succ[i] = succ[succ[i]].
  // log2(n) rounds suffice. Reads of succ[succ[i]] are concurrent (many
  // nodes can share a successor near the tail) => CREW.
  std::size_t rounds = 0;
  for (std::size_t reach = 1; reach < n; reach *= 2) ++rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Step A: read succ[i] for all i.
    std::vector<PramRead> succ_reads;
    for (std::size_t i = 0; i < n; ++i)
      succ_reads.push_back({static_cast<int>(i), i});
    const auto succ = pram.step(succ_reads, {});

    // Step B: read rank[succ[i]] and succ[succ[i]] (concurrent reads).
    std::vector<PramRead> hop_reads;
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = static_cast<std::size_t>(succ[i]);
      hop_reads.push_back({static_cast<int>(i), n + s});
      hop_reads.push_back({static_cast<int>(i), s});
    }
    const auto hops = pram.step(hop_reads, {});

    // Step C: read own rank, then write updated rank and jumped pointer.
    std::vector<PramRead> own_reads;
    for (std::size_t i = 0; i < n; ++i)
      own_reads.push_back({static_cast<int>(i), n + i});
    const auto own = pram.step(own_reads, {});

    std::vector<PramWrite> writes;
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = static_cast<std::size_t>(succ[i]);
      const bool at_tail = s == i;
      if (at_tail) continue;  // already done
      writes.push_back({static_cast<int>(i), n + i, own[i] + hops[2 * i]});
      writes.push_back({static_cast<int>(i), i, hops[2 * i + 1]});
    }
    (void)pram.step({}, writes);
  }
}

}  // namespace pdc::model
