#include "pdc/model/bsp.hpp"

#include <cmath>
#include <stdexcept>

namespace pdc::model {

void BspProgram::add_superstep(double max_local_work, std::size_t h_relation,
                               std::string label) {
  if (max_local_work < 0.0) throw std::invalid_argument("work must be >= 0");
  steps_.push_back({max_local_work, h_relation, std::move(label)});
}

const Superstep& BspProgram::step(std::size_t i) const {
  if (i >= steps_.size()) throw std::out_of_range("superstep index");
  return steps_[i];
}

double BspProgram::cost(const BspMachine& m) const {
  const auto b = breakdown(m);
  return b.compute + b.communicate + b.synchronize;
}

BspProgram::Breakdown BspProgram::breakdown(const BspMachine& m) const {
  if (m.processors < 1) throw std::invalid_argument("processors must be >= 1");
  Breakdown b;
  for (const auto& s : steps_) {
    b.compute += s.max_local_work;
    b.communicate += m.g * static_cast<double>(s.h_relation);
    b.synchronize += m.l;
  }
  return b;
}

namespace {
int ceil_log2(int p) {
  int levels = 0;
  int reach = 1;
  while (reach < p) {
    reach *= 2;
    ++levels;
  }
  return levels;
}
}  // namespace

BspProgram bsp_broadcast(int p, bool tree) {
  if (p < 1) throw std::invalid_argument("p must be >= 1");
  BspProgram prog;
  if (tree) {
    const int levels = ceil_log2(p);
    for (int i = 0; i < levels; ++i)
      prog.add_superstep(1.0, 1, "bcast-level-" + std::to_string(i));
  } else {
    prog.add_superstep(1.0, p > 1 ? static_cast<std::size_t>(p - 1) : 0,
                       "bcast-flat");
  }
  return prog;
}

BspProgram bsp_reduce(std::size_t n, int p) {
  if (p < 1) throw std::invalid_argument("p must be >= 1");
  BspProgram prog;
  const double local = static_cast<double>(n) / static_cast<double>(p);
  prog.add_superstep(local, 0, "local-reduce");
  const int levels = ceil_log2(p);
  for (int i = 0; i < levels; ++i)
    prog.add_superstep(1.0, 1, "combine-level-" + std::to_string(i));
  return prog;
}

BspProgram bsp_sample_sort(std::size_t n, int p) {
  if (p < 1) throw std::invalid_argument("p must be >= 1");
  const double np = static_cast<double>(n) / static_cast<double>(p);
  const auto pu = static_cast<std::size_t>(p);
  BspProgram prog;
  // 1. Local sort: (n/p) log(n/p) comparisons.
  prog.add_superstep(np * std::max(1.0, std::log2(std::max(2.0, np))), 0,
                     "local-sort");
  // 2. Each processor sends p samples to processor 0.
  prog.add_superstep(static_cast<double>(p), pu * pu, "sample-gather");
  // 3. Processor 0 sorts p^2 samples, broadcasts p-1 pivots.
  prog.add_superstep(static_cast<double>(p * p) *
                         std::max(1.0, std::log2(std::max(2.0, double(p)))),
                     pu * (pu - 1), "pivot-bcast");
  // 4. Partition exchange: every processor sends/receives ~n/p keys.
  prog.add_superstep(np, static_cast<std::size_t>(np), "partition-exchange");
  // 5. Local p-way merge.
  prog.add_superstep(np * std::max(1.0, std::log2(std::max(2.0, double(p)))),
                     0, "local-merge");
  return prog;
}

}  // namespace pdc::model
