#pragma once
// Task-graph (computation DAG) analysis — the work/span framework CS41
// teaches from CLRS chapter 27:
//   work  T1   = total weight of all tasks,
//   span  T∞   = heaviest path through the DAG,
//   parallelism = T1 / T∞,
//   Brent/greedy-scheduler bound: T_P <= T1/P + T∞.
// A discrete-event greedy (list) scheduler lets students check the bound
// against an actual schedule.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pdc::model {

using NodeId = std::size_t;

/// Weighted DAG of tasks.
class TaskGraph {
 public:
  /// Add a task with the given work (must be > 0).
  NodeId add_task(double work = 1.0, std::string label = {});

  /// Declare that `pred` must finish before `succ` starts.
  void add_dependency(NodeId pred, NodeId succ);

  [[nodiscard]] std::size_t size() const { return work_.size(); }
  [[nodiscard]] double task_work(NodeId id) const;
  [[nodiscard]] const std::string& label(NodeId id) const;

  /// T1: sum of all task weights.
  [[nodiscard]] double total_work() const;

  /// T∞: weight of the heaviest path (throws std::runtime_error on cycle).
  [[nodiscard]] double span() const;

  /// T1 / T∞ (infinite if the span is 0, i.e. the graph is empty).
  [[nodiscard]] double parallelism() const;

  /// Brent's bound on greedy P-processor makespan: T1/P + T∞.
  [[nodiscard]] double brent_bound(int p) const;

  /// Simulate a greedy list scheduler on `p` processors: whenever a
  /// processor is free and a task is ready, it runs. Returns the makespan.
  /// Guaranteed to satisfy max(T1/P, T∞) <= result <= brent_bound(P).
  [[nodiscard]] double greedy_schedule_makespan(int p) const;

  /// Topological order (throws std::runtime_error if the graph has a cycle).
  [[nodiscard]] std::vector<NodeId> topological_order() const;

 private:
  void check_node(NodeId id) const;

  std::vector<double> work_;
  std::vector<std::string> labels_;
  std::vector<std::vector<NodeId>> succs_;
  std::vector<std::vector<NodeId>> preds_;
};

/// Build the DAG of a binary fork-join divide-and-conquer over `n` items
/// with `leaf_cutoff` (e.g. parallel merge sort): each internal node has a
/// divide task, two recursive subtrees, and a combine task whose weight is
/// `combine_weight_per_item * n` (the Θ(n) merge). With sequential merges
/// the DAG has work Θ(n log n) and span Θ(n), so parallelism is only
/// Θ(log n) — the classic CS41 observation about parallel merge sort.
[[nodiscard]] TaskGraph fork_join_sort_dag(std::size_t n,
                                           std::size_t leaf_cutoff,
                                           double leaf_weight_per_item = 1.0,
                                           double combine_weight_per_item = 1.0);

/// Build the reduction-tree DAG over n leaves (tree reduce):
/// work Θ(n), span Θ(log n).
[[nodiscard]] TaskGraph reduction_dag(std::size_t n);

}  // namespace pdc::model
