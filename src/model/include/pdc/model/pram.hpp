#pragma once
// Step-synchronous PRAM simulator (CS41 "PRAM" topic). Each step, all
// processors read the OLD memory image, then all writes are applied —
// exactly the lock-step semantics of the model. The simulator enforces the
// access discipline of the chosen variant and throws PramConflictError on
// violations, making "this algorithm needs CREW" an executable fact.
//
// Library algorithms (pointer-jumping-free versions of the classics) run
// on the simulator and report the number of synchronous steps, so tests
// can assert O(log n) step counts.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdc::model {

enum class PramMode {
  kErew,        ///< exclusive read, exclusive write
  kCrew,        ///< concurrent read, exclusive write
  kCrcwCommon,  ///< concurrent write allowed iff all write the same value
  kCrcwArbitrary,  ///< one arbitrary (here: lowest-id) writer wins
};

[[nodiscard]] std::string_view pram_mode_name(PramMode m);

/// Thrown when a step violates the mode's access discipline.
class PramConflictError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PramRead {
  int proc = 0;
  std::size_t addr = 0;
};

struct PramWrite {
  int proc = 0;
  std::size_t addr = 0;
  std::int64_t value = 0;
};

/// Shared memory of `cells` words plus the step-synchronous engine.
class Pram {
 public:
  Pram(std::size_t cells, PramMode mode);

  /// Execute one synchronous step. Returns the read results in the order
  /// of `reads`. All reads observe memory as of the start of the step.
  std::vector<std::int64_t> step(std::span<const PramRead> reads,
                                 std::span<const PramWrite> writes);

  [[nodiscard]] std::int64_t get(std::size_t addr) const;
  void poke(std::size_t addr, std::int64_t value);  ///< host-side init

  [[nodiscard]] std::size_t cells() const { return memory_.size(); }
  [[nodiscard]] PramMode mode() const { return mode_; }
  [[nodiscard]] int steps_executed() const { return steps_; }

 private:
  void check_addr(std::size_t addr) const;

  std::vector<std::int64_t> memory_;
  PramMode mode_;
  int steps_ = 0;
};

/// O(log n)-step EREW tree reduction (sum) of memory[0..n). Returns the sum
/// and leaves it in memory[0]. Destroys the input region.
std::int64_t pram_sum(Pram& pram, std::size_t n);

/// O(log n)-step CREW inclusive prefix-sum (Hillis-Steele) over
/// memory[0..n) in place. Requires concurrent reads: running it on an EREW
/// machine throws PramConflictError (a test demonstrates this).
void pram_prefix_sum(Pram& pram, std::size_t n);

/// O(1)-step CRCW-common maximum of memory[0..n) using n^2 virtual
/// comparisons: the classic constant-time max. Returns the maximum.
/// Requires n >= 1; uses scratch space [n, n + n).
std::int64_t pram_max_crcw(Pram& pram, std::size_t n);

/// O(log n)-step CREW pointer jumping (list ranking): memory[0..n) holds
/// each node's successor index (tail points to itself); on return,
/// memory[n..2n) holds each node's distance to the tail. The other PRAM
/// classic CS41 presents. Uses cells [0, 2n).
void pram_list_rank(Pram& pram, std::size_t n);

}  // namespace pdc::model
