#pragma once
// BSP (Bulk Synchronous Parallel) cost model — the second "alternative
// model of computation" CS41 introduces alongside PRAM. A program is a
// sequence of supersteps; each superstep costs
//     w + g * h + l
// where w is the maximum local work, h the maximum messages sent or
// received by any processor (an h-relation), g the per-message gap, and l
// the barrier latency.

#include <cstddef>
#include <string>
#include <vector>

namespace pdc::model {

/// Machine parameters.
struct BspMachine {
  int processors = 4;
  double g = 1.0;  ///< cost per message unit (gap)
  double l = 10.0; ///< barrier synchronization latency
};

/// One superstep's resource usage.
struct Superstep {
  double max_local_work = 0.0;
  std::size_t h_relation = 0;  ///< max messages in/out at any processor
  std::string label;
};

/// A BSP program: supersteps in order.
class BspProgram {
 public:
  void add_superstep(double max_local_work, std::size_t h_relation,
                     std::string label = {});

  [[nodiscard]] std::size_t supersteps() const { return steps_.size(); }
  [[nodiscard]] const Superstep& step(std::size_t i) const;

  /// Total predicted cost on `m`: sum of (w + g*h + l).
  [[nodiscard]] double cost(const BspMachine& m) const;

  /// Cost decomposition: (compute, communicate, synchronize).
  struct Breakdown {
    double compute = 0.0;
    double communicate = 0.0;
    double synchronize = 0.0;
  };
  [[nodiscard]] Breakdown breakdown(const BspMachine& m) const;

 private:
  std::vector<Superstep> steps_;
};

/// Library cost models for the patterns CS41 analyzes.

/// Broadcast of one word from processor 0 to all p processors.
/// `tree` uses ceil(log2 p) supersteps with h=1 each; flat uses one
/// superstep with h = p-1.
[[nodiscard]] BspProgram bsp_broadcast(int p, bool tree);

/// Parallel reduction of n items on p processors: one local superstep of
/// n/p work, then a tree combine (log p supersteps of h=1 and O(1) work).
[[nodiscard]] BspProgram bsp_reduce(std::size_t n, int p);

/// BSP parallel sorting by regular sampling (PSRS) cost skeleton on n keys,
/// p processors: local sort, sample exchange, pivot broadcast, partition
/// exchange, local merge.
[[nodiscard]] BspProgram bsp_sample_sort(std::size_t n, int p);

}  // namespace pdc::model
