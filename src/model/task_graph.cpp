#include "pdc/model/task_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace pdc::model {

NodeId TaskGraph::add_task(double work, std::string label) {
  if (work <= 0.0) throw std::invalid_argument("task work must be > 0");
  work_.push_back(work);
  labels_.push_back(std::move(label));
  succs_.emplace_back();
  preds_.emplace_back();
  return work_.size() - 1;
}

void TaskGraph::check_node(NodeId id) const {
  if (id >= work_.size()) throw std::out_of_range("unknown task id");
}

void TaskGraph::add_dependency(NodeId pred, NodeId succ) {
  check_node(pred);
  check_node(succ);
  if (pred == succ) throw std::invalid_argument("self dependency");
  succs_[pred].push_back(succ);
  preds_[succ].push_back(pred);
}

double TaskGraph::task_work(NodeId id) const {
  check_node(id);
  return work_[id];
}

const std::string& TaskGraph::label(NodeId id) const {
  check_node(id);
  return labels_[id];
}

double TaskGraph::total_work() const {
  double w = 0.0;
  for (double x : work_) w += x;
  return w;
}

std::vector<NodeId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(size());
  for (NodeId v = 0; v < size(); ++v) indegree[v] = preds_[v].size();
  std::vector<NodeId> order;
  order.reserve(size());
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < size(); ++v)
    if (indegree[v] == 0) ready.push(v);
  while (!ready.empty()) {
    const NodeId u = ready.front();
    ready.pop();
    order.push_back(u);
    for (NodeId v : succs_[u])
      if (--indegree[v] == 0) ready.push(v);
  }
  if (order.size() != size())
    throw std::runtime_error("task graph contains a cycle");
  return order;
}

double TaskGraph::span() const {
  if (size() == 0) return 0.0;
  const auto order = topological_order();  // also validates acyclicity
  std::vector<double> finish(size(), 0.0);
  double best = 0.0;
  for (NodeId u : order) {
    double start = 0.0;
    for (NodeId p : preds_[u]) start = std::max(start, finish[p]);
    finish[u] = start + work_[u];
    best = std::max(best, finish[u]);
  }
  return best;
}

double TaskGraph::parallelism() const {
  const double s = span();
  if (s == 0.0) return std::numeric_limits<double>::infinity();
  return total_work() / s;
}

double TaskGraph::brent_bound(int p) const {
  if (p < 1) throw std::invalid_argument("p must be >= 1");
  return total_work() / static_cast<double>(p) + span();
}

double TaskGraph::greedy_schedule_makespan(int p) const {
  if (p < 1) throw std::invalid_argument("p must be >= 1");
  if (size() == 0) return 0.0;
  (void)topological_order();  // validate acyclicity

  // Discrete-event simulation: processors pick ready tasks greedily.
  std::vector<std::size_t> remaining_preds(size());
  for (NodeId v = 0; v < size(); ++v) remaining_preds[v] = preds_[v].size();

  // Ready tasks, largest work first (a common list-scheduling heuristic;
  // any greedy order satisfies Brent's bound).
  auto cmp = [this](NodeId a, NodeId b) { return work_[a] < work_[b]; };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  for (NodeId v = 0; v < size(); ++v)
    if (remaining_preds[v] == 0) ready.push(v);

  // Running tasks as (finish_time, node), min-heap.
  using Running = std::pair<double, NodeId>;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;

  double now = 0.0;
  int busy = 0;
  while (!ready.empty() || !running.empty()) {
    // Start as many ready tasks as we have free processors.
    while (busy < p && !ready.empty()) {
      const NodeId u = ready.top();
      ready.pop();
      running.emplace(now + work_[u], u);
      ++busy;
    }
    // Advance time to the next completion.
    const auto [t, u] = running.top();
    running.pop();
    now = t;
    --busy;
    for (NodeId v : succs_[u])
      if (--remaining_preds[v] == 0) ready.push(v);
  }
  return now;
}

namespace {

NodeId build_sort_subtree(TaskGraph& g, std::size_t n, std::size_t cutoff,
                          double leaf_w, double combine_w, NodeId* entry) {
  // Returns the *exit* node of the subtree (its combine task) and stores
  // the entry (divide/leaf) node through `entry`.
  if (n <= cutoff) {
    const NodeId leaf =
        g.add_task(std::max(1.0, leaf_w * static_cast<double>(n)), "leaf");
    *entry = leaf;
    return leaf;
  }
  const NodeId divide = g.add_task(1.0, "divide");
  *entry = divide;
  NodeId left_entry = 0, right_entry = 0;
  const NodeId left_exit =
      build_sort_subtree(g, n / 2, cutoff, leaf_w, combine_w, &left_entry);
  const NodeId right_exit = build_sort_subtree(g, n - n / 2, cutoff, leaf_w,
                                               combine_w, &right_entry);
  g.add_dependency(divide, left_entry);
  g.add_dependency(divide, right_entry);
  const NodeId combine = g.add_task(
      std::max(1.0, combine_w * static_cast<double>(n)), "merge");
  g.add_dependency(left_exit, combine);
  g.add_dependency(right_exit, combine);
  return combine;
}

}  // namespace

TaskGraph fork_join_sort_dag(std::size_t n, std::size_t leaf_cutoff,
                             double leaf_weight_per_item,
                             double combine_weight_per_item) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (leaf_cutoff == 0) throw std::invalid_argument("cutoff must be > 0");
  TaskGraph g;
  NodeId entry = 0;
  (void)build_sort_subtree(g, n, leaf_cutoff, leaf_weight_per_item,
                           combine_weight_per_item, &entry);
  return g;
}

TaskGraph reduction_dag(std::size_t n) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  TaskGraph g;
  std::vector<NodeId> level;
  level.reserve(n);
  for (std::size_t i = 0; i < n; ++i) level.push_back(g.add_task(1.0, "leaf"));
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NodeId op = g.add_task(1.0, "combine");
      g.add_dependency(level[i], op);
      g.add_dependency(level[i + 1], op);
      next.push_back(op);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return g;
}

}  // namespace pdc::model
