#include "pdc/stencil/tile.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdc::stencil {

TileMap::TileMap(std::size_t height, std::size_t width, std::size_t tile_h,
                 std::size_t tile_w)
    : height_(height),
      width_(width),
      tile_h_(std::min(tile_h, height)),
      tile_w_(std::min(tile_w, width)) {
  if (height == 0 || width == 0)
    throw std::invalid_argument("tile map domain must be > 0");
  if (tile_h == 0 || tile_w == 0)
    throw std::invalid_argument("tile dimensions must be > 0");
  tiles_y_ = (height_ + tile_h_ - 1) / tile_h_;
  tiles_x_ = (width_ + tile_w_ - 1) / tile_w_;
}

TileBounds TileMap::bounds(std::size_t t) const {
  if (t >= count()) throw std::out_of_range("tile index");
  const std::size_t ty = tile_row(t), tx = tile_col(t);
  return TileBounds{
      ty * tile_h_, std::min(height_, (ty + 1) * tile_h_),
      tx * tile_w_, std::min(width_, (tx + 1) * tile_w_)};
}

ActivityMap::ActivityMap(const TileMap& tm, bool wrap_rows, bool wrap_cols)
    : tiles_y_(tm.tiles_y()),
      tiles_x_(tm.tiles_x()),
      wrap_rows_(wrap_rows),
      wrap_cols_(wrap_cols),
      changed_(tm.count(), 1),  // "everything changed": step 0 sweeps all
      active_(tm.count(), 0) {}

std::size_t ActivityMap::active_count() const {
  std::size_t n = 0;
  for (const auto a : active_) n += a;
  return n;
}

bool ActivityMap::row_any(const std::uint8_t* row, std::size_t tx) const {
  if (row == nullptr) return false;
  if (row[tx] != 0) return true;
  if (tx > 0 ? row[tx - 1] != 0
             : (wrap_cols_ && tiles_x_ > 1 && row[tiles_x_ - 1] != 0))
    return true;
  if (tx + 1 < tiles_x_ ? row[tx + 1] != 0
                        : (wrap_cols_ && tiles_x_ > 1 && row[0] != 0))
    return true;
  return false;
}

void ActivityMap::advance(const std::uint8_t* above,
                          const std::uint8_t* below) {
  // Row of changed flags one step beyond the top/bottom edge, as dilation
  // sees it: external flags win, else the wrap row, else nothing.
  const auto edge_row = [&](bool top) -> const std::uint8_t* {
    const std::uint8_t* ext = top ? above : below;
    if (ext != nullptr) return ext;
    if (wrap_rows_ && tiles_y_ > 1)
      return changed_.data() + (top ? (tiles_y_ - 1) * tiles_x_ : 0);
    if (wrap_rows_ && tiles_y_ == 1) return changed_.data();  // self-wrap
    return nullptr;
  };

  for (std::size_t ty = 0; ty < tiles_y_; ++ty) {
    const std::uint8_t* mid = changed_.data() + ty * tiles_x_;
    const std::uint8_t* up =
        ty > 0 ? changed_.data() + (ty - 1) * tiles_x_ : edge_row(true);
    const std::uint8_t* down =
        ty + 1 < tiles_y_ ? changed_.data() + (ty + 1) * tiles_x_
                          : edge_row(false);
    for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
      active_[ty * tiles_x_ + tx] =
          (row_any(mid, tx) || row_any(up, tx) || row_any(down, tx)) ? 1 : 0;
    }
  }
  std::fill(changed_.begin(), changed_.end(), 0);
}

void ActivityMap::activate_edges(const std::uint8_t* above,
                                 const std::uint8_t* below) {
  // Mirrors advance()'s edge handling for a strip map: `above` dilates
  // only into tile row 0, `below` only into the last tile row (the same
  // row when tiles_y() == 1). Interior rows are untouched, which is what
  // makes the advance/activate_edges split sound.
  for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
    if (row_any(above, tx)) active_[tx] = 1;
    if (row_any(below, tx)) active_[(tiles_y_ - 1) * tiles_x_ + tx] = 1;
  }
}

void ActivityMap::copy_edge_changed(bool top, std::uint8_t* out) const {
  const std::uint8_t* row =
      changed_.data() + (top ? 0 : (tiles_y_ - 1) * tiles_x_);
  std::copy_n(row, tiles_x_, out);
}

}  // namespace pdc::stencil
