#include "pdc/stencil/heat.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace pdc::stencil {

namespace {

Options engine_opts(const HeatOptions& o) {
  Options e;
  e.tile_rows = o.tile_rows;
  e.tile_cols = o.tile_cols;
  e.max_steps = o.max_steps;
  e.skip_quiescent = o.skip_quiescent;
  e.quiesce_eps = o.quiesce_eps;
  e.converge_eps = o.converge_eps;
  e.span_name = "heat.step";
  return e;
}

/// One rank per strip, partitioned on tile-row boundaries (see
/// heat_relax_plan); each strip relaxed by plan.threads_per_rank threads.
RunResult relax_strips(HeatField& field, const HeatOptions& opt,
                       const ExecPlan& plan) {
  const int ranks = plan.ranks;
  const std::size_t rows = field.rows();
  if (static_cast<std::size_t>(ranks) > rows)
    throw std::invalid_argument("more ranks than rows");
  if (plan.transport != mp::TransportKind::kInproc)
    throw std::invalid_argument(
        "heat_relax_plan runs its ranks in-process (inproc transport); "
        "launch shm/tcp worlds with mp::launch::run_spmd and call "
        "heat_relax_strip inside each body");

  // Partition on tile-row boundaries so every strip's tile grid is the
  // global grid restricted to its rows: distributed skip decisions then
  // match the shared-memory engines tile for tile. Shrink the tile
  // height if needed so every rank owns at least one tile row.
  const std::size_t tile_h = std::max<std::size_t>(
      1, std::min(opt.tile_rows, rows / static_cast<std::size_t>(ranks)));
  const std::size_t n_tiles = (rows + tile_h - 1) / tile_h;
  const auto tile_range = [&](int r) {
    const auto n = n_tiles, p = static_cast<std::size_t>(ranks);
    const auto rr = static_cast<std::size_t>(r);
    const std::size_t lo = rr * (n / p) + std::min(rr, n % p);
    return std::pair{lo, lo + n / p + (rr < n % p ? 1 : 0)};
  };

  HeatOptions strip_opt = opt;
  strip_opt.tile_rows = tile_h;
  std::vector<RunResult> results(static_cast<std::size_t>(ranks));
  mp::Communicator comm(ranks);
  comm.run([&](mp::RankContext& ctx) {
    const int r = ctx.rank();
    const auto [tlo, thi] = tile_range(r);
    const std::size_t r0 = tlo * tile_h;
    const std::size_t r1 = std::min(rows, thi * tile_h);
    HeatField strip(r1 - r0, field.cols());
    // Copy the padded strip rows wholesale: the left/right halo columns
    // are the Dirichlet boundary, the top/bottom halo rows start as the
    // neighbor's edge rows (or the global boundary at the domain edge)
    // and are refreshed by the halo exchange every step.
    for (std::size_t pr = 0; pr < (r1 - r0) + 2; ++pr)
      std::copy_n(
          &field.at(static_cast<std::ptrdiff_t>(r0 + pr) - 1, -1),
          field.cols() + 2,
          &strip.at(static_cast<std::ptrdiff_t>(pr) - 1, -1));

    MpLinks links{r > 0 ? r - 1 : -1, r + 1 < ranks ? r + 1 : -1};
    results[static_cast<std::size_t>(r)] =
        heat_relax_strip(strip, strip_opt, plan, ctx, links);

    ctx.barrier();  // everyone done reading `field` before writeback
    for (std::size_t pr = 0; pr < r1 - r0; ++pr)
      std::copy_n(&strip.at(static_cast<std::ptrdiff_t>(pr), 0),
                  field.cols(),
                  &field.at(static_cast<std::ptrdiff_t>(r0 + pr), 0));
  });

  RunResult total = results[0];
  for (int i = 1; i < ranks; ++i) {
    const auto& res = results[static_cast<std::size_t>(i)];
    total.tiles_computed += res.tiles_computed;
    total.tiles_skipped += res.tiles_skipped;
    total.halo_words += res.halo_words;
    total.last_delta = std::max(total.last_delta, res.last_delta);
  }
  return total;
}

}  // namespace

HeatField::HeatField(std::size_t rows, std::size_t cols, float initial)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("heat field dimensions must be > 0");
  data_.assign((rows_ + 2) * (cols_ + 2), initial);
}

void HeatField::set_boundary(float top, float bottom, float left,
                             float right) {
  const std::ptrdiff_t nr = static_cast<std::ptrdiff_t>(rows_);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(cols_);
  for (std::ptrdiff_t c = -1; c <= nc; ++c) {
    at(-1, c) = top;
    at(nr, c) = bottom;
  }
  for (std::ptrdiff_t r = 0; r < nr; ++r) {
    at(r, -1) = left;
    at(r, nc) = right;
  }
}

double HeatField::max_abs_diff(const HeatField& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("heat field shape mismatch");
  double m = 0.0;
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows_); ++r)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(cols_); ++c)
      m = std::max(m, std::fabs(static_cast<double>(at(r, c)) -
                                static_cast<double>(other.at(r, c))));
  return m;
}

double HeatWorkload::step_tile(const Field& src, Field& dst,
                               const TileBounds& b) const {
  const float k = static_cast<float>(conductivity);
  float max_d = 0.0f;
  for (std::size_t r = b.r0; r < b.r1; ++r) {
    const auto ri = static_cast<std::ptrdiff_t>(r);
    for (std::size_t c = b.c0; c < b.c1; ++c) {
      const auto ci = static_cast<std::ptrdiff_t>(c);
      const float cur = src.at(ri, ci);
      const float avg =
          0.25f * (src.at(ri - 1, ci) + src.at(ri + 1, ci) +
                   src.at(ri, ci - 1) + src.at(ri, ci + 1));
      const float next = cur + k * (avg - cur);
      dst.at(ri, ci) = next;
      max_d = std::max(max_d, std::fabs(next - cur));
    }
  }
  return static_cast<double>(max_d);
}

void HeatWorkload::pack_row(const Field& f, bool top,
                            std::int64_t* out) const {
  const std::ptrdiff_t r =
      top ? 0 : static_cast<std::ptrdiff_t>(f.rows()) - 1;
  out[halo_words(f) - 1] = 0;  // zero the odd-cols tail half-word
  std::memcpy(out, &f.at(r, 0), f.cols() * sizeof(float));
}

void HeatWorkload::unpack_halo(Field& f, bool above,
                               const std::int64_t* in) const {
  const std::ptrdiff_t r =
      above ? -1 : static_cast<std::ptrdiff_t>(f.rows());
  std::memcpy(&f.at(r, 0), in, f.cols() * sizeof(float));
}

RunResult heat_relax(HeatField& field, const HeatOptions& opt) {
  HeatWorkload w{opt.conductivity};
  HeatField scratch = field;  // clones the boundary ring too
  return run_seq(w, field, scratch, engine_opts(opt));
}

RunResult heat_relax_threaded(HeatField& field, const HeatOptions& opt,
                              int threads) {
  return heat_relax_plan(field, opt, ExecPlan{.threads_per_rank = threads});
}

RunResult heat_relax_strip(HeatField& strip, const HeatOptions& opt,
                           mp::RankContext& ctx, const MpLinks& links) {
  return heat_relax_strip(strip, opt, ExecPlan{}, ctx, links);
}

RunResult heat_relax_strip(HeatField& strip, const HeatOptions& opt,
                           const ExecPlan& plan, mp::RankContext& ctx,
                           const MpLinks& links) {
  HeatWorkload w{opt.conductivity};
  HeatField scratch = strip;
  return run(w, strip, scratch, plan, engine_opts(opt), ctx, links);
}

RunResult heat_relax_plan(HeatField& field, const HeatOptions& opt,
                          const ExecPlan& plan) {
  detail::validate(plan);
  if (plan.ranks == 1) {
    HeatWorkload w{opt.conductivity};
    HeatField scratch = field;
    return run(w, field, scratch, plan, engine_opts(opt));
  }
  return relax_strips(field, opt, plan);
}

RunResult heat_relax_mp(HeatField& field, const HeatOptions& opt,
                        int ranks) {
  ExecPlan plan{.ranks = ranks};
  detail::validate(plan);
  // Always through the communicator, even for one rank (a 1-rank strip
  // world is legal and distinct from the local engine: it allreduces).
  return relax_strips(field, opt, plan);
}

}  // namespace pdc::stencil
