#pragma once
// Heat dissipation on the stencil engine — the second workload that
// proves pdc::stencil is an abstraction rather than Life with the serial
// numbers filed off. Jacobi relaxation of the heat equation on a float
// grid with fixed (Dirichlet) boundary temperatures:
//
//   next(r,c) = cur(r,c) + k * (avg4(cur, r, c) - cur(r,c))
//
// run until the global max per-cell delta drops to converge_eps. Unlike
// Life this is a float kernel with a *residual-based* dirty predicate: a
// tile is quiescent once its step delta is <= quiesce_eps. With
// quiesce_eps = 0 skipping is exact; either way the same options produce
// the same iteration count and final residual on the sequential,
// threaded, and message-passing engines.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdc/stencil/engine.hpp"

namespace pdc::stencil {

/// rows x cols float grid with a one-cell halo ring. The ring holds the
/// Dirichlet boundary for the full-domain engines and the neighbor halo
/// rows for strip (message-passing) execution.
class HeatField {
 public:
  HeatField(std::size_t rows, std::size_t cols, float initial = 0.0f);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Payload access, 0-based; the halo ring sits at index -1 and rows()/
  /// cols(), reachable through the same accessor.
  [[nodiscard]] float& at(std::ptrdiff_t r, std::ptrdiff_t c) {
    return data_[static_cast<std::size_t>(r + 1) * (cols_ + 2) +
                 static_cast<std::size_t>(c + 1)];
  }
  [[nodiscard]] const float& at(std::ptrdiff_t r, std::ptrdiff_t c) const {
    return data_[static_cast<std::size_t>(r + 1) * (cols_ + 2) +
                 static_cast<std::size_t>(c + 1)];
  }

  /// Fill the whole halo ring (corners included) with fixed boundary
  /// temperatures. Call on *both* double buffers: the ring is read every
  /// step but written only here (full-domain runs) or by halo unpacking
  /// (strip runs, top/bottom rows only).
  void set_boundary(float top, float bottom, float left, float right);

  [[nodiscard]] double max_abs_diff(const HeatField& other) const;
  friend bool operator==(const HeatField& a, const HeatField& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<float> data_;
};

struct HeatOptions {
  double conductivity = 0.2;  ///< k in next = cur + k*(avg4 - cur)
  int max_steps = 10000;
  double converge_eps = 1e-3;
  double quiesce_eps = 0.0;  ///< 0 = exact skipping
  std::size_t tile_rows = 32;
  std::size_t tile_cols = 64;
  bool skip_quiescent = true;
};

/// Stencil workload adapter: plugs HeatField into run_seq / run_threaded /
/// run_mp. Units are cells; boundaries are Dirichlet (no wrap).
struct HeatWorkload {
  double conductivity = 0.2;

  using Field = HeatField;
  [[nodiscard]] std::size_t height(const Field& f) const { return f.rows(); }
  [[nodiscard]] std::size_t width(const Field& f) const { return f.cols(); }
  [[nodiscard]] bool wrap_rows(const Field&) const { return false; }
  [[nodiscard]] bool wrap_cols(const Field&) const { return false; }
  void init(Field&) const {}
  double step_tile(const Field& src, Field& dst, const TileBounds& b) const;
  void finish_step(Field&, const TileMap&,
                   const std::vector<std::uint8_t>&) const {}

  // Strip-execution hooks: halo rows travel packed two floats per wire
  // word.
  [[nodiscard]] std::size_t halo_words(const Field& f) const {
    return (f.cols() + 1) / 2;
  }
  void pack_row(const Field& f, bool top, std::int64_t* out) const;
  void unpack_halo(Field& f, bool above, const std::int64_t* in) const;
  void finish_halo(Field&) const {}
};

/// Relax `field` in place until convergence (or max_steps); sequential.
RunResult heat_relax(HeatField& field, const HeatOptions& opt);

/// Same computation on the shared-memory engine (plan {1,threads}).
RunResult heat_relax_threaded(HeatField& field, const HeatOptions& opt,
                              int threads);

/// Same computation on an arbitrary ExecPlan: plan.ranks row strips
/// (each an in-process message-passing rank — the driver requires
/// mp::TransportKind::kInproc; launch shm/tcp worlds through
/// mp::launch::run_spmd with heat_relax_strip inside each body) with
/// plan.threads_per_rank threads relaxing every strip. Rows are
/// partitioned on tile boundaries so every plan's skip decisions — and
/// therefore fields, steps, residuals, tile counts — are bit-identical.
RunResult heat_relax_plan(HeatField& field, const HeatOptions& opt,
                          const ExecPlan& plan);

/// Same computation on the message-passing engine: plan {ranks, 1}.
RunResult heat_relax_mp(HeatField& field, const HeatOptions& opt, int ranks);

/// One rank's share of heat_relax_plan, callable from inside an existing
/// SPMD body (this is what the fault-injection stress harness drives
/// directly). `strip` is this rank's rows with boundary + halo ring
/// already set; for cross-engine-identical skip decisions the strip's
/// row count must be a whole number of tiles except on the last rank.
/// The plan overload runs plan.threads_per_rank threads inside the rank
/// (plan.ranks and plan.transport are the launcher's concern here).
RunResult heat_relax_strip(HeatField& strip, const HeatOptions& opt,
                           mp::RankContext& ctx, const MpLinks& links);
RunResult heat_relax_strip(HeatField& strip, const HeatOptions& opt,
                           const ExecPlan& plan, mp::RankContext& ctx,
                           const MpLinks& links);

}  // namespace pdc::stencil
