#pragma once
// 2-D tile decomposition + per-tile activity tracking — the bookkeeping
// half of the stencil engine (engine.hpp is the execution half).
//
// TileMap cuts an abstract height x width domain into a grid of
// near-equal rectangular tiles. "Units" are whatever the workload
// addresses: cells for the float heat field, 64-cell packed words for
// Life — the map never touches memory, it only hands out bounds.
//
// ActivityMap is the dirty-tracking core. Each step the engine marks
// which tiles *changed* (their output differs from their input by more
// than the workload's quiescence threshold); advance() then dilates the
// changed set by one tile in all 8 directions to produce the next step's
// *active* set. The soundness argument, for any 1-deep stencil F:
//
//   if no input of tile T changed between steps g-1 and g, then
//   F applied at step g reproduces T's step-g value exactly — and the
//   double-buffered destination already holds that value (it was written
//   at step g-1), so T can be skipped without touching its memory.
//
// Dilation starts from "everything changed", so step 0 is always a full
// sweep and the invariant holds inductively. Strip execution (the
// message-passing engine) replaces the row-wrap with externally supplied
// per-tile-column flags from the neighboring ranks, which keeps the
// distributed skip decisions identical to the shared-memory ones.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdc::stencil {

/// Half-open bounds of one tile: rows [r0, r1) x columns [c0, c1), in
/// workload units.
struct TileBounds {
  std::size_t r0 = 0, r1 = 0, c0 = 0, c1 = 0;
  [[nodiscard]] std::size_t rows() const { return r1 - r0; }
  [[nodiscard]] std::size_t cols() const { return c1 - c0; }
};

/// Rectangular tiling of a height x width domain. Tiles are indexed
/// row-major: t = ty * tiles_x() + tx.
class TileMap {
 public:
  TileMap(std::size_t height, std::size_t width, std::size_t tile_h,
          std::size_t tile_w);

  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t tile_h() const { return tile_h_; }
  [[nodiscard]] std::size_t tile_w() const { return tile_w_; }
  [[nodiscard]] std::size_t tiles_y() const { return tiles_y_; }
  [[nodiscard]] std::size_t tiles_x() const { return tiles_x_; }
  [[nodiscard]] std::size_t count() const { return tiles_y_ * tiles_x_; }

  [[nodiscard]] std::size_t index(std::size_t ty, std::size_t tx) const {
    return ty * tiles_x_ + tx;
  }
  [[nodiscard]] std::size_t tile_row(std::size_t t) const {
    return t / tiles_x_;
  }
  [[nodiscard]] std::size_t tile_col(std::size_t t) const {
    return t % tiles_x_;
  }
  [[nodiscard]] TileBounds bounds(std::size_t t) const;

 private:
  std::size_t height_, width_, tile_h_, tile_w_;
  std::size_t tiles_y_, tiles_x_;
};

/// Per-tile changed/active flags with 8-neighbor dilation. Starts in the
/// "everything changed" state so the first advance() activates every
/// tile. mark_changed() writes one byte per tile and is safe to call
/// concurrently for *distinct* tiles between barriers (each tile is
/// computed by exactly one worker).
class ActivityMap {
 public:
  /// wrap_rows / wrap_cols: dilate across the respective edges (torus).
  /// Strip execution passes wrap_rows = false and supplies neighbor
  /// flags to advance() instead.
  ActivityMap(const TileMap& tm, bool wrap_rows, bool wrap_cols);

  void mark_changed(std::size_t t, bool changed) {
    changed_[t] = changed ? 1 : 0;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& changed() const {
    return changed_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& active() const {
    return active_;
  }
  [[nodiscard]] std::size_t active_count() const;

  /// active = 8-neighbor dilation of changed; changed is then cleared
  /// for the next step's marks. `above` / `below` (when non-null) are
  /// tiles_x() external changed flags for the tile row beyond the top /
  /// bottom edge — the strip-execution replacement for the row wrap
  /// (they win over wrap_rows). Null means "nothing beyond the edge
  /// changed" (or the wrap applies, when wrap_rows is set).
  void advance(const std::uint8_t* above = nullptr,
               const std::uint8_t* below = nullptr);

  /// OR the dilation contributed by external neighbor flags into an
  /// already-advanced active set: `above` / `below` are tiles_x()
  /// changed flags for the tile row beyond the top / bottom edge, null =
  /// no neighbor. For a strip map (wrap_rows = false),
  ///     advance(a, b)  ==  advance(nullptr, nullptr); activate_edges(a, b)
  /// — the split the hybrid engine uses to fix the *interior* active set
  /// before the halo arrives and fold the edge tile rows in afterwards.
  void activate_edges(const std::uint8_t* above, const std::uint8_t* below);

  /// Copy the changed flags of the top / bottom tile row (tiles_x()
  /// bytes) — what a rank sends to its neighbors before advance() wipes
  /// them.
  void copy_edge_changed(bool top, std::uint8_t* out) const;

 private:
  /// Any of row[tx-1..tx+1] set (with the column wrap)? Null row = no.
  [[nodiscard]] bool row_any(const std::uint8_t* row, std::size_t tx) const;

  std::size_t tiles_y_, tiles_x_;
  bool wrap_rows_, wrap_cols_;
  std::vector<std::uint8_t> changed_;
  std::vector<std::uint8_t> active_;
};

}  // namespace pdc::stencil
