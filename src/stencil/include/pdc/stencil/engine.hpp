#pragma once
// pdc::stencil — a reusable 2-D stencil engine with dirty-tile skipping.
//
// One engine, three execution modes (the curriculum's sequential →
// shared-memory → message-passing progression), any 1-deep stencil
// workload. The engine owns tiling (tile.hpp), double-buffer rotation,
// per-tile dirty tracking (quiescent tiles are skipped without touching
// their memory — see tile.hpp for the soundness argument), convergence
// detection, and — for run_mp — the packed halo exchange and the
// cross-rank activity flags that keep distributed skip decisions
// identical to the shared-memory ones.
//
// A workload W plugs in via compile-time duck typing:
//
//   using Field = ...;                      // double-buffered by the engine
//   std::size_t height(const Field&);       // domain size, in W's units
//   std::size_t width(const Field&);        //   (cells, packed words, ...)
//   bool wrap_rows(const Field&);           // torus boundary?
//   bool wrap_cols(const Field&);
//   void init(Field& cur);                  // one-time source fixups
//   double step_tile(const Field& src, Field& dst, const TileBounds&);
//       // compute one tile; returns the tile's max per-unit delta
//       // (Life: 1.0 if any bit changed, else 0.0)
//   void finish_step(Field& dst, const TileMap&,
//                    const std::vector<std::uint8_t>& computed);
//       // post-step fixups on the rows of computed tiles (ghost bits,
//       // wrap halo rows); no-op for plain fields
//   // --- run_mp only ---
//   std::size_t halo_words(const Field&);   // wire words per halo row
//   void pack_row(const Field&, bool top, std::int64_t* out);
//   void unpack_halo(Field&, bool above, const std::int64_t* in);
//   void finish_halo(Field&);               // e.g. ghost-bit sync
//
// Every engine produces identical results for a quiescence threshold of
// 0 (exact skipping): a skipped tile's destination provably already
// holds the value a full sweep would write. With quiesce_eps > 0 the
// skip set is still deterministic and identical across all three engines
// (same tile grid, same flags), so seq/threaded/mp stay bit-identical to
// *each other* while trading exactness of the skip for more skipping.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/core/work_steal.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/stencil/tile.hpp"

namespace pdc::stencil {

struct Options {
  std::size_t tile_rows = 64;   ///< tile height (workload units)
  std::size_t tile_cols = 256;  ///< tile width (workload units)
  int max_steps = 1;
  bool skip_quiescent = true;   ///< false: full sweep every step (A/B lever)
  /// run_threaded: drain the active tile list through per-worker
  /// Chase–Lev deques and steal tiles from busy victims when dry
  /// (default), instead of a fixed block partition of the list. Results
  /// and tile accounting are identical either way — each active tile is
  /// executed exactly once per step — so this is a pure load-balance
  /// lever (the schedule-ablation bench prices it on clustered boards).
  bool steal_tiles = true;
  /// A tile counts as changed when its step delta exceeds this. 0 = exact
  /// (bit-identical to a full sweep). Must be <= converge_eps when
  /// convergence is enabled.
  double quiesce_eps = 0.0;
  /// Stop once a step's global max delta is <= this; negative disables
  /// (run exactly max_steps — Life's fixed-generation contract).
  double converge_eps = -1.0;
  /// Trace span emitted per step (must outlive the run; literals only).
  const char* span_name = "stencil.step";
};

struct RunResult {
  std::uint64_t steps = 0;
  std::uint64_t tiles_computed = 0;
  std::uint64_t tiles_skipped = 0;
  /// run_mp: total int64 wire words this rank sent for halo exchange
  /// (activity flag words + packed row payload).
  std::uint64_t halo_words = 0;
  double last_delta = 0.0;
  bool converged = false;
};

/// Neighbor ranks for run_mp strip execution (-1 = board edge; the torus
/// wrap is expressed as up/down pointing at the wrapping rank, possibly
/// this rank itself when it owns the whole board).
struct MpLinks {
  int up = -1;
  int down = -1;
};

namespace detail {

void validate(const Options& opt);
void bump_counters(const RunResult& res);  // stencil.* obs counters

/// Flag words on the wire per halo message: one bit per tile column.
[[nodiscard]] inline std::size_t flag_words(std::size_t tiles_x) {
  return (tiles_x + 63) / 64;
}

inline void encode_flags(const std::uint8_t* flags, std::size_t n,
                         std::int64_t* out) {
  std::fill_n(out, flag_words(n), 0);
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i] != 0)
      out[i / 64] |= static_cast<std::int64_t>(std::int64_t{1} << (i % 64));
}

inline void decode_flags(const std::int64_t* in, std::size_t n,
                         std::uint8_t* flags) {
  for (std::size_t i = 0; i < n; ++i)
    flags[i] = static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(in[i / 64]) >> (i % 64)) & 1);
}

}  // namespace detail

/// Sequential engine. `cur` holds the input state and, on return, the
/// final state; `nxt` is the scratch double buffer (same shape).
template <class W>
RunResult run_seq(W& w, typename W::Field& cur, typename W::Field& nxt,
                  const Options& opt) {
  detail::validate(opt);
  const TileMap tm(w.height(cur), w.width(cur), opt.tile_rows, opt.tile_cols);
  ActivityMap act(tm, w.wrap_rows(cur), w.wrap_cols(cur));
  std::vector<std::uint8_t> computed(tm.count(), 0);
  w.init(cur);

  RunResult res;
  for (int s = 0; s < opt.max_steps; ++s) {
    obs::TraceScope span(opt.span_name);
    act.advance();
    std::fill(computed.begin(), computed.end(), 0);
    double max_delta = 0.0;
    std::uint64_t ncomputed = 0;
    for (std::size_t t = 0; t < tm.count(); ++t) {
      if (opt.skip_quiescent && act.active()[t] == 0) continue;
      const double d = w.step_tile(cur, nxt, tm.bounds(t));
      act.mark_changed(t, d > opt.quiesce_eps);
      computed[t] = 1;
      if (d > max_delta) max_delta = d;
      ++ncomputed;
    }
    w.finish_step(nxt, tm, computed);
    res.tiles_computed += ncomputed;
    res.tiles_skipped += tm.count() - ncomputed;
    res.last_delta = max_delta;
    ++res.steps;
    std::swap(cur, nxt);
    if (opt.converge_eps >= 0.0 && max_delta <= opt.converge_eps) {
      res.converged = true;
      break;
    }
  }
  detail::bump_counters(res);
  return res;
}

/// Threaded engine: the per-step *active* tile list is distributed
/// across a core::Team, so workers share the (possibly sparse) live
/// region instead of owning fixed row strips that may be entirely
/// quiescent. By default (Options::steal_tiles) each worker drains its
/// share of the list through its own Chase–Lev deque and steals tiles
/// from busy victims when dry, so a live region clustered in one
/// corner's worth of tiles still spreads across the whole team; with
/// steal_tiles off the list is block-partitioned up front (the ablation
/// baseline). Either way every active tile is executed exactly once per
/// step, so grids and tile accounting are bit-identical across both
/// modes and any thread count. Two barriers per step, serial
/// bookkeeping (including deque re-seeding) on rank 0.
template <class W>
RunResult run_threaded(W& w, typename W::Field& cur, typename W::Field& nxt,
                       const Options& opt, int threads) {
  detail::validate(opt);
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  const TileMap tm(w.height(cur), w.width(cur), opt.tile_rows, opt.tile_cols);
  ActivityMap act(tm, w.wrap_rows(cur), w.wrap_cols(cur));
  w.init(cur);

  typename W::Field* bufs[2] = {&cur, &nxt};
  int src = 0;
  std::vector<std::uint32_t> active_list;
  std::vector<std::uint8_t> computed(tm.count(), 0);
  std::vector<double> rank_delta(static_cast<std::size_t>(threads), 0.0);
  RunResult res;
  bool stop = opt.max_steps == 0;

  const bool steal = opt.steal_tiles && threads > 1;
  const auto nthreads = static_cast<std::size_t>(threads);
  std::vector<core::WorkStealingDeque<std::uint32_t>> deques(
      steal ? nthreads : 0);

  const auto build_active_list = [&] {
    active_list.clear();
    for (std::uint32_t t = 0; t < tm.count(); ++t)
      if (!opt.skip_quiescent || act.active()[t] != 0) active_list.push_back(t);
  };
  // Serial-section only (single-threaded, published to the workers by
  // barrier A): seed worker r's deque with its near-equal contiguous
  // share of the active list. Stealing rebalances from there.
  const auto seed_deques = [&] {
    const std::size_t n = active_list.size();
    const std::size_t base = n / nthreads, extra = n % nthreads;
    std::size_t lo = 0;
    for (std::size_t r = 0; r < nthreads; ++r) {
      const std::size_t hi = lo + base + (r < extra ? 1 : 0);
      for (std::size_t i = lo; i < hi; ++i) deques[r].push(active_list[i]);
      lo = hi;
    }
  };
  act.advance();
  build_active_list();
  if (steal) seed_deques();

  core::Team::run(threads, [&](core::TeamContext& ctx) {
    static obs::Counter& c_attempts = obs::counter("stencil.steal_attempts");
    static obs::Counter& c_steals = obs::counter("stencil.steals");
    while (true) {
      // Barrier A: the serial section's state (active list, seeded
      // deques, buffer flip, stop flag) is visible to every worker.
      ctx.barrier();
      if (stop) break;
      {
        obs::TraceScope span(opt.span_name);
        double local = 0.0;
        const auto exec_tile = [&](std::uint32_t t) {
          const double d =
              w.step_tile(*bufs[src], *bufs[1 - src], tm.bounds(t));
          act.mark_changed(t, d > opt.quiesce_eps);
          computed[t] = 1;
          if (d > local) local = d;
        };
        if (!steal) {
          const auto [lo, hi] = ctx.block_range(0, active_list.size());
          for (std::size_t i = lo; i < hi; ++i) exec_tile(active_list[i]);
        } else {
          const auto me = static_cast<std::size_t>(ctx.rank());
          auto& mine = deques[me];
          while (true) {
            if (auto t = mine.pop()) {
              exec_tile(*t);
              continue;
            }
            bool got = false;
            bool contended = false;
            for (std::size_t off = 1; off < nthreads && !got; ++off) {
              auto& victim = deques[(me + off) % nthreads];
              c_attempts.add(1);
              if (auto t = victim.steal()) {
                c_steals.add(1);
                PDC_TRACE_SCOPE("stencil.steal");
                exec_tile(*t);
                got = true;
              } else if (!victim.empty()) {
                contended = true;  // lost a race on a live tile: retry
              }
            }
            if (got) continue;
            if (!contended) break;  // every deque observed empty
          }
        }
        rank_delta[static_cast<std::size_t>(ctx.rank())] = local;
      }
      // Barrier B: every tile write and flag is visible to rank 0.
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double max_delta =
            *std::max_element(rank_delta.begin(), rank_delta.end());
        w.finish_step(*bufs[1 - src], tm, computed);
        res.tiles_computed += active_list.size();
        res.tiles_skipped += tm.count() - active_list.size();
        res.last_delta = max_delta;
        ++res.steps;
        src = 1 - src;
        if (opt.converge_eps >= 0.0 && max_delta <= opt.converge_eps)
          res.converged = stop = true;
        if (res.steps >= static_cast<std::uint64_t>(opt.max_steps))
          stop = true;
        if (!stop) {
          act.advance();
          build_active_list();
          if (steal) seed_deques();
          std::fill(computed.begin(), computed.end(), 0);
          std::fill(rank_delta.begin(), rank_delta.end(), 0.0);
        }
      }
    }
  });

  if (src == 1) std::swap(cur, nxt);  // `cur` always holds the final state
  detail::bump_counters(res);
  return res;
}

/// Message-passing engine: call from inside an SPMD rank body with this
/// rank's row strip in `cur`/`nxt`. Each step sends one message per
/// neighbor — [activity flag words][packed halo row] — then dilates the
/// local activity map with the received neighbor flags, computes the
/// active tiles, and (when convergence is enabled) allreduces the step's
/// max delta. The strip's tile grid must be the global tile grid
/// restricted to this rank's rows (partition on tile-row boundaries) so
/// distributed skip decisions match the shared-memory engines exactly.
template <class W>
RunResult run_mp(W& w, typename W::Field& cur, typename W::Field& nxt,
                 const Options& opt, mp::RankContext& ctx,
                 const MpLinks& links) {
  detail::validate(opt);
  const TileMap tm(w.height(cur), w.width(cur), opt.tile_rows, opt.tile_cols);
  ActivityMap act(tm, /*wrap_rows=*/false, w.wrap_cols(cur));
  w.init(cur);

  const std::size_t hw = w.halo_words(cur);
  const std::size_t fw = detail::flag_words(tm.tiles_x());
  std::vector<std::uint8_t> computed(tm.count(), 0);
  std::vector<std::uint8_t> edge_flags(tm.tiles_x(), 1);  // step 0: all
  std::vector<std::uint8_t> above_flags(tm.tiles_x(), 0);
  std::vector<std::uint8_t> below_flags(tm.tiles_x(), 0);
  std::vector<std::int64_t> sbuf_up, sbuf_down;  // recycled wire buffers
  bool first = true;
  RunResult res;

  const auto fill_msg = [&](std::vector<std::int64_t>& buf, bool top) {
    buf.resize(fw + hw);
    if (first) {
      std::fill_n(buf.data(), fw, ~std::int64_t{0});
    } else {
      act.copy_edge_changed(top, edge_flags.data());
      detail::encode_flags(edge_flags.data(), tm.tiles_x(), buf.data());
    }
    w.pack_row(cur, top, buf.data() + fw);
  };

  for (int s = 0; s < opt.max_steps; ++s) {
    obs::TraceScope span(opt.span_name);
    const int tag = 2 * s;
    // Halo + flags exchange (buffered sends: no deadlock). A rank that
    // owns the whole wrap sends to itself; its up-send arrives as its
    // own down-message, exactly the torus geometry.
    if (links.up >= 0) {
      fill_msg(sbuf_up, /*top=*/true);
      res.halo_words += sbuf_up.size();
      ctx.send(links.up, tag, std::move(sbuf_up));
    }
    if (links.down >= 0) {
      fill_msg(sbuf_down, /*top=*/false);
      res.halo_words += sbuf_down.size();
      ctx.send(links.down, tag + 1, std::move(sbuf_down));
    }
    bool have_above = false, have_below = false;
    if (links.down >= 0) {
      auto msg = ctx.recv(links.down, tag);
      detail::decode_flags(msg.data.data(), tm.tiles_x(), below_flags.data());
      w.unpack_halo(cur, /*above=*/false, msg.data.data() + fw);
      have_below = true;
      sbuf_down = std::move(msg.data);
    }
    if (links.up >= 0) {
      auto msg = ctx.recv(links.up, tag + 1);
      detail::decode_flags(msg.data.data(), tm.tiles_x(), above_flags.data());
      w.unpack_halo(cur, /*above=*/true, msg.data.data() + fw);
      have_above = true;
      sbuf_up = std::move(msg.data);
    }
    w.finish_halo(cur);
    first = false;

    act.advance(have_above ? above_flags.data() : nullptr,
                have_below ? below_flags.data() : nullptr);
    std::fill(computed.begin(), computed.end(), 0);
    double max_delta = 0.0;
    std::uint64_t ncomputed = 0;
    for (std::size_t t = 0; t < tm.count(); ++t) {
      if (opt.skip_quiescent && act.active()[t] == 0) continue;
      const double d = w.step_tile(cur, nxt, tm.bounds(t));
      act.mark_changed(t, d > opt.quiesce_eps);
      computed[t] = 1;
      if (d > max_delta) max_delta = d;
      ++ncomputed;
    }
    w.finish_step(nxt, tm, computed);
    res.tiles_computed += ncomputed;
    res.tiles_skipped += tm.count() - ncomputed;
    ++res.steps;
    std::swap(cur, nxt);

    if (opt.converge_eps >= 0.0) {
      // Global max delta. Non-negative IEEE doubles order like their bit
      // patterns, so a kMax over the bits is a kMax over the values.
      const std::int64_t bits = std::bit_cast<std::int64_t>(max_delta);
      max_delta =
          std::bit_cast<double>(ctx.allreduce(bits, mp::ReduceOp::kMax));
      res.last_delta = max_delta;
      if (max_delta <= opt.converge_eps) {
        res.converged = true;
        break;
      }
    } else {
      res.last_delta = max_delta;
    }
  }
  detail::bump_counters(res);
  return res;
}

}  // namespace pdc::stencil
