#pragma once
// pdc::stencil — a reusable 2-D stencil engine with dirty-tile skipping.
//
// ONE engine, one entry point: stencil::run(w, cur, nxt, plan, opt). The
// ExecPlan picks the execution shape the curriculum teaches as a
// progression — sequential {1,1}, shared-memory {1,T}, message-passing
// {R,1} — plus the capstone hybrid {R,T}: a core::Team of T threads
// inside every rank, tile-stealing over that rank's strip, with the
// packed halo exchange funneled through the team's rank-0 thread
// (mp::Threading::kFunneled) and, by default, overlapped with interior
// tile compute (HaloSchedule::kOverlap). run_seq / run_threaded / run_mp
// survive as one-line compat wrappers.
//
// The engine owns tiling (tile.hpp), double-buffer rotation, per-tile
// dirty tracking (quiescent tiles are skipped without touching their
// memory — see tile.hpp for the soundness argument), convergence
// detection, and — for strip plans — the packed halo exchange and the
// cross-rank activity flags that keep distributed skip decisions
// identical to the shared-memory ones.
//
// A workload W plugs in via compile-time duck typing:
//
//   using Field = ...;                      // double-buffered by the engine
//   std::size_t height(const Field&);       // domain size, in W's units
//   std::size_t width(const Field&);        //   (cells, packed words, ...)
//   bool wrap_rows(const Field&);           // torus boundary?
//   bool wrap_cols(const Field&);
//   void init(Field& cur);                  // one-time source fixups
//   double step_tile(const Field& src, Field& dst, const TileBounds&);
//       // compute one tile; returns the tile's max per-unit delta
//       // (Life: 1.0 if any bit changed, else 0.0)
//   void finish_step(Field& dst, const TileMap&,
//                    const std::vector<std::uint8_t>& computed);
//       // post-step fixups on the rows of computed tiles (ghost bits,
//       // wrap halo rows); no-op for plain fields
//   // --- strip (RankContext) plans only ---
//   std::size_t halo_words(const Field&);   // wire words per halo row
//   void pack_row(const Field&, bool top, std::int64_t* out);
//   void unpack_halo(Field&, bool above, const std::int64_t* in);
//   void finish_halo(Field&);               // e.g. ghost-bit sync
//
// Every plan produces identical results for a quiescence threshold of 0
// (exact skipping): a skipped tile's destination provably already holds
// the value a full sweep would write. With quiesce_eps > 0 the skip set
// is still deterministic and identical across all plans (same tile grid,
// same flags), so every {R} x {T} x {schedule} x {steal} combination
// stays bit-identical to the sequential run — grids, residuals, tile
// counts, and halo wire words alike. Tests assert exactly this.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/core/work_steal.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/mp/transport.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/stencil/tile.hpp"

namespace pdc::stencil {

struct Options {
  std::size_t tile_rows = 64;   ///< tile height (workload units)
  std::size_t tile_cols = 256;  ///< tile width (workload units)
  int max_steps = 1;
  bool skip_quiescent = true;   ///< false: full sweep every step (A/B lever)
  /// A tile counts as changed when its step delta exceeds this. 0 = exact
  /// (bit-identical to a full sweep). Must be <= converge_eps when
  /// convergence is enabled.
  double quiesce_eps = 0.0;
  /// Stop once a step's global max delta is <= this; negative disables
  /// (run exactly max_steps — Life's fixed-generation contract).
  double converge_eps = -1.0;
  /// Trace span emitted per step (must outlive the run; literals only).
  const char* span_name = "stencil.step";
};

/// How a multi-threaded rank schedules its halo exchange against tile
/// compute (ignored when threads_per_rank == 1, where the exchange is
/// inherently serial).
enum class HaloSchedule {
  /// Interior tiles (those not touching a halo row) run on the team
  /// while the funnel thread receives the halo; boundary tiles run once
  /// it lands. The exchange hides behind compute — the point of hybrid
  /// execution, and what the bench ablation prices.
  kOverlap,
  /// The funnel thread completes the whole exchange before any tile is
  /// computed (the ablation baseline; bit-identical to kOverlap).
  kSerial,
};

/// The execution shape of a stencil run: how many message-passing ranks,
/// how many threads inside each rank, and how the hybrid case schedules
/// and balances. {1,1} = sequential, {1,T} = shared-memory, {R,1} =
/// message passing, {R,T} = hybrid (a core::Team per rank, comm funneled
/// through each team's rank-0 thread). Every shape is bit-identical.
struct ExecPlan {
  int ranks = 1;
  int threads_per_rank = 1;
  /// Transport for plans a *driver* launches (life::run_plan,
  /// heat_relax_plan). In-process drivers require kInproc; shm/tcp worlds
  /// are per-rank processes, launched via mp::launch::run_spmd with the
  /// strip-level run() called inside each body.
  mp::TransportKind transport = mp::TransportKind::kInproc;
  HaloSchedule schedule = HaloSchedule::kOverlap;
  /// threads_per_rank > 1: drain the active tile list through per-worker
  /// Chase–Lev deques and steal tiles from busy victims when dry
  /// (default), instead of a fixed block partition of the list. Results
  /// and tile accounting are identical either way — each active tile is
  /// executed exactly once per step — so this is a pure load-balance
  /// lever (the schedule-ablation bench prices it on clustered boards).
  bool steal_tiles = true;
};

struct RunResult {
  std::uint64_t steps = 0;
  std::uint64_t tiles_computed = 0;
  std::uint64_t tiles_skipped = 0;
  /// Strip plans: total int64 wire words this rank sent for halo
  /// exchange (activity flag words + packed row payload).
  std::uint64_t halo_words = 0;
  double last_delta = 0.0;
  bool converged = false;
};

/// Neighbor ranks for strip execution (-1 = board edge; the torus wrap
/// is expressed as up/down pointing at the wrapping rank, possibly this
/// rank itself when it owns the whole board).
struct MpLinks {
  int up = -1;
  int down = -1;
};

namespace detail {

void validate(const Options& opt);
void validate(const ExecPlan& plan);
void bump_counters(const RunResult& res);  // stencil.* obs counters

/// Flag words on the wire per halo message: one bit per tile column.
[[nodiscard]] inline std::size_t flag_words(std::size_t tiles_x) {
  return (tiles_x + 63) / 64;
}

inline void encode_flags(const std::uint8_t* flags, std::size_t n,
                         std::int64_t* out) {
  std::fill_n(out, flag_words(n), 0);
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i] != 0)
      out[i / 64] |= static_cast<std::int64_t>(std::int64_t{1} << (i % 64));
}

inline void decode_flags(const std::int64_t* in, std::size_t n,
                         std::uint8_t* flags) {
  for (std::size_t i = 0; i < n; ++i)
    flags[i] = static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(in[i / 64]) >> (i % 64)) & 1);
}

/// The per-step epilogue every execution shape shares: fold one step's
/// tile accounting and max delta into the result and decide whether the
/// run is over (converged, or out of steps). `max_delta` must already be
/// the *global* max for strip runs with convergence on.
inline bool step_epilogue(RunResult& res, const Options& opt,
                          std::uint64_t computed, std::uint64_t total,
                          double max_delta) {
  res.tiles_computed += computed;
  res.tiles_skipped += total - computed;
  res.last_delta = max_delta;
  ++res.steps;
  if (opt.converge_eps >= 0.0 && max_delta <= opt.converge_eps)
    res.converged = true;
  return res.converged ||
         res.steps >= static_cast<std::uint64_t>(opt.max_steps);
}

/// Bit-exact global max of non-negative IEEE doubles: their bit patterns
/// order like the values, so an integer kMax allreduce is exact.
inline double allreduce_max(mp::RankContext& ctx, double v) {
  return std::bit_cast<double>(
      ctx.allreduce(std::bit_cast<std::int64_t>(v), mp::ReduceOp::kMax));
}

/// One rank's halo machinery, shared by the serial ({R,1}) and funneled
/// hybrid ({R,T}) strip engines: recycled wire buffers, activity-flag
/// staging, exact word accounting. Each step sends one message per
/// neighbor — [activity flag words][packed halo row] — under tags 2s /
/// 2s+1, so the wire format and word counts are identical across every
/// thread count and schedule.
template <class W>
class HaloExchange {
 public:
  HaloExchange(W& w, mp::RankContext& ctx, const MpLinks& links,
               const TileMap& tm, std::size_t halo_words)
      : w_(w),
        ctx_(ctx),
        links_(links),
        tm_(tm),
        hw_(halo_words),
        fw_(flag_words(tm.tiles_x())),
        edge_flags_(tm.tiles_x(), 0),
        above_flags_(tm.tiles_x(), 0),
        below_flags_(tm.tiles_x(), 0) {}

  /// Buffered sends to both neighbors. Must run BEFORE
  /// ActivityMap::advance clears the changed marks it encodes. A rank
  /// that owns the whole wrap sends to itself; its up-send arrives as
  /// its own down-message, exactly the torus geometry.
  void send(const typename W::Field& cur, const ActivityMap& act, int step,
            RunResult& res) {
    const int tag = 2 * step;
    if (links_.up >= 0) {
      fill(cur, act, sbuf_up_, /*top=*/true);
      res.halo_words += sbuf_up_.size();
      ctx_.send(links_.up, tag, std::move(sbuf_up_));
    }
    if (links_.down >= 0) {
      fill(cur, act, sbuf_down_, /*top=*/false);
      res.halo_words += sbuf_down_.size();
      ctx_.send(links_.down, tag + 1, std::move(sbuf_down_));
    }
  }

  /// Blocking receives: unpack the halo rows into `cur`, run the
  /// workload's ghost fixups, and stage the decoded neighbor activity
  /// flags for above()/below().
  void recv(typename W::Field& cur, int step) {
    const int tag = 2 * step;
    have_above_ = have_below_ = false;
    if (links_.down >= 0) {
      auto msg = ctx_.recv(links_.down, tag);
      decode_flags(msg.data.data(), tm_.tiles_x(), below_flags_.data());
      w_.unpack_halo(cur, /*above=*/false, msg.data.data() + fw_);
      have_below_ = true;
      sbuf_down_ = std::move(msg.data);  // recycle the wire buffer
    }
    if (links_.up >= 0) {
      auto msg = ctx_.recv(links_.up, tag + 1);
      decode_flags(msg.data.data(), tm_.tiles_x(), above_flags_.data());
      w_.unpack_halo(cur, /*above=*/true, msg.data.data() + fw_);
      have_above_ = true;
      sbuf_up_ = std::move(msg.data);
    }
    w_.finish_halo(cur);
    first_ = false;
  }

  /// Neighbor changed-flags staged by the last recv (null = no neighbor).
  [[nodiscard]] const std::uint8_t* above() const {
    return have_above_ ? above_flags_.data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* below() const {
    return have_below_ ? below_flags_.data() : nullptr;
  }

 private:
  void fill(const typename W::Field& cur, const ActivityMap& act,
            std::vector<std::int64_t>& buf, bool top) {
    buf.resize(fw_ + hw_);
    if (first_) {
      // Step 0 sweeps everything; tell the neighbor so.
      std::fill_n(buf.data(), fw_, ~std::int64_t{0});
    } else {
      act.copy_edge_changed(top, edge_flags_.data());
      encode_flags(edge_flags_.data(), tm_.tiles_x(), buf.data());
    }
    w_.pack_row(cur, top, buf.data() + fw_);
  }

  W& w_;
  mp::RankContext& ctx_;
  const MpLinks links_;
  const TileMap& tm_;
  std::size_t hw_, fw_;
  std::vector<std::uint8_t> edge_flags_, above_flags_, below_flags_;
  std::vector<std::int64_t> sbuf_up_, sbuf_down_;
  bool first_ = true;
  bool have_above_ = false, have_below_ = false;
};

/// Single-threaded engine body: plans {1,1} (ctx == nullptr) and {R,1}
/// (kStrip, ctx set). One sweep over the active tiles per step.
template <bool kStrip, class W>
RunResult run_serial(W& w, typename W::Field& cur, typename W::Field& nxt,
                     const Options& opt,
                     [[maybe_unused]] mp::RankContext* ctx,
                     [[maybe_unused]] const MpLinks& links) {
  const TileMap tm(w.height(cur), w.width(cur), opt.tile_rows, opt.tile_cols);
  ActivityMap act(tm, kStrip ? false : w.wrap_rows(cur), w.wrap_cols(cur));
  std::vector<std::uint8_t> computed(tm.count(), 0);
  w.init(cur);

  RunResult res;
  [[maybe_unused]] std::optional<HaloExchange<W>> halo;
  if constexpr (kStrip) halo.emplace(w, *ctx, links, tm, w.halo_words(cur));

  for (int s = 0; s < opt.max_steps; ++s) {
    obs::TraceScope span(opt.span_name);
    const std::uint8_t* above = nullptr;
    const std::uint8_t* below = nullptr;
    if constexpr (kStrip) {
      halo->send(cur, act, s, res);
      halo->recv(cur, s);
      above = halo->above();
      below = halo->below();
    }
    act.advance(above, below);
    std::fill(computed.begin(), computed.end(), 0);
    double max_delta = 0.0;
    std::uint64_t ncomputed = 0;
    for (std::size_t t = 0; t < tm.count(); ++t) {
      if (opt.skip_quiescent && act.active()[t] == 0) continue;
      const double d = w.step_tile(cur, nxt, tm.bounds(t));
      act.mark_changed(t, d > opt.quiesce_eps);
      computed[t] = 1;
      if (d > max_delta) max_delta = d;
      ++ncomputed;
    }
    w.finish_step(nxt, tm, computed);
    std::swap(cur, nxt);
    if constexpr (kStrip) {
      if (opt.converge_eps >= 0.0) max_delta = allreduce_max(*ctx, max_delta);
    }
    if (step_epilogue(res, opt, ncomputed, tm.count(), max_delta)) break;
  }
  bump_counters(res);
  return res;
}

/// Team engine body: plans {1,T} (ctx == nullptr) and the hybrid {R,T}
/// (kStrip). The per-step *active* tile list is distributed across a
/// core::Team, so workers share the (possibly sparse) live region
/// instead of owning fixed row strips that may be entirely quiescent.
/// With plan.steal_tiles each worker drains its share of the list
/// through its own Chase–Lev deque and steals tiles from busy victims
/// when dry; otherwise the list is block-partitioned up front (the
/// ablation baseline). Either way every active tile is executed exactly
/// once per step, so grids and tile accounting are bit-identical across
/// both modes and any thread count.
///
/// Hybrid plans funnel ALL communication through the team's rank-0
/// thread (mp::Threading::kFunneled, asserted by RankContext). Under
/// HaloSchedule::kOverlap the serial section sends the halo and seeds
/// only the *interior* active tiles (those whose inputs are local); the
/// team computes them while the funnel thread receives, unpacks, and
/// dilates the neighbor flags into the edge tile rows — boundary tiles
/// then flow to the workers either through the funnel's deque (steal
/// mode: pushed while thieves drain, no extra barrier) or through an
/// extra barrier-published phase (block mode).
template <bool kStrip, class W>
RunResult run_team(W& w, typename W::Field& cur, typename W::Field& nxt,
                   const ExecPlan& plan, const Options& opt,
                   [[maybe_unused]] mp::RankContext* ctx,
                   [[maybe_unused]] const MpLinks& links) {
  const int threads = plan.threads_per_rank;
  const TileMap tm(w.height(cur), w.width(cur), opt.tile_rows, opt.tile_cols);
  ActivityMap act(tm, kStrip ? false : w.wrap_rows(cur), w.wrap_cols(cur));
  w.init(cur);

  typename W::Field* bufs[2] = {&cur, &nxt};
  int src = 0;
  int step = 0;
  std::vector<std::uint32_t> active_list;    // overlap: interior tiles only
  std::vector<std::uint32_t> boundary_list;  // overlap: halo-dependent tiles
  std::vector<std::uint8_t> computed(tm.count(), 0);
  std::vector<double> rank_delta(static_cast<std::size_t>(threads), 0.0);
  RunResult res;
  bool stop = opt.max_steps == 0;

  const bool steal = plan.steal_tiles && threads > 1;
  const auto nthreads = static_cast<std::size_t>(threads);
  std::vector<core::WorkStealingDeque<std::uint32_t>> deques(
      steal ? nthreads : 0);
  // Overlap mode: set once the funnel thread has received the halo and
  // published the boundary tiles; preset when there is nothing to wait
  // for. Workers spin past empty deques until it flips.
  std::atomic<bool> halo_done{true};
  const bool overlap =
      kStrip && plan.schedule == HaloSchedule::kOverlap && threads > 1;

  [[maybe_unused]] std::optional<HaloExchange<W>> halo;
  if constexpr (kStrip) halo.emplace(w, *ctx, links, tm, w.halo_words(cur));

  const auto edge_tile = [&](std::uint32_t t) {
    const std::size_t ty = tm.tile_row(t);
    return ty == 0 || ty + 1 == tm.tiles_y();
  };
  const auto want = [&](std::uint32_t t) {
    return !opt.skip_quiescent || act.active()[t] != 0;
  };
  // Serial-section only (single-threaded, published to the workers by
  // barrier A): seed worker r's deque with its near-equal contiguous
  // share of the active list. Stealing rebalances from there.
  const auto seed_deques = [&] {
    const std::size_t n = active_list.size();
    const std::size_t base = n / nthreads, extra = n % nthreads;
    std::size_t lo = 0;
    for (std::size_t r = 0; r < nthreads; ++r) {
      const std::size_t hi = lo + base + (r < extra ? 1 : 0);
      for (std::size_t i = lo; i < hi; ++i) deques[r].push(active_list[i]);
      lo = hi;
    }
  };
  // Serial per-step prep (pre-loop on the home thread, then on the team's
  // rank-0 thread between steps): send this step's halo — the encoded
  // changed marks must be copied before advance() wipes them — advance
  // the activity map, rebuild and reseed the work lists.
  const auto prep_step = [&] {
    std::fill(computed.begin(), computed.end(), 0);
    std::fill(rank_delta.begin(), rank_delta.end(), 0.0);
    boundary_list.clear();
    if constexpr (kStrip) {
      halo->send(*bufs[src], act, step, res);
      if (overlap) {
        // Local dilation only: interior activation never depends on the
        // neighbor flags, so the interior work list is final here.
        act.advance(nullptr, nullptr);
      } else {
        halo->recv(*bufs[src], step);
        act.advance(halo->above(), halo->below());
      }
    } else {
      act.advance();
    }
    active_list.clear();
    for (std::uint32_t t = 0; t < tm.count(); ++t) {
      if (overlap && edge_tile(t)) continue;  // waits for the halo
      if (want(t)) active_list.push_back(t);
    }
    if (steal) seed_deques();
    halo_done.store(!overlap, std::memory_order_relaxed);
  };
  if (!stop) prep_step();

  core::Team::run(threads, [&](core::TeamContext& tc) {
    static obs::Counter& c_attempts = obs::counter("stencil.steal_attempts");
    static obs::Counter& c_steals = obs::counter("stencil.steals");
    const bool funnel = tc.rank() == 0;
    if constexpr (kStrip) {
      // Pin the communication funnel to this thread: under a pooled Team
      // this is the rank's home thread, under a forked Team it is not —
      // either way every comm call below happens here.
      if (funnel) ctx->set_threading(mp::Threading::kFunneled);
    }
    while (true) {
      // Barrier A: the serial section's state (work lists, seeded
      // deques, buffer flip, stop flag) is visible to every worker.
      tc.barrier();
      if (stop) break;
      {
        obs::TraceScope span(opt.span_name);
        double local = 0.0;
        const auto exec_tile = [&](std::uint32_t t) {
          const double d =
              w.step_tile(*bufs[src], *bufs[1 - src], tm.bounds(t));
          act.mark_changed(t, d > opt.quiesce_eps);
          computed[t] = 1;
          if (d > local) local = d;
        };
        if constexpr (kStrip) {
          if (overlap && funnel) {
            try {
              // Receive while the team chews the interior, then dilate
              // the neighbor flags into the edge tile rows and publish
              // the now-final boundary work.
              halo->recv(*bufs[src], step);
              act.activate_edges(halo->above(), halo->below());
              for (std::uint32_t t = 0; t < tm.count(); ++t)
                if (edge_tile(t) && want(t)) boundary_list.push_back(t);
              if (steal) {
                // Owner pushes race cleanly with thieves' steals; the
                // release store orders them before any halo_done load.
                for (const std::uint32_t t : boundary_list)
                  deques[0].push(t);
                halo_done.store(true, std::memory_order_release);
              }
            } catch (...) {
              // A failed recv (e.g. RankFailedError from a killed peer)
              // must flip halo_done before unwinding: thieves spin on it
              // outside any barrier, so Team's broken-barrier protocol
              // alone cannot release them.
              halo_done.store(true, std::memory_order_release);
              throw;
            }
          }
        }
        if (!steal) {
          const auto [lo, hi] = tc.block_range(0, active_list.size());
          for (std::size_t i = lo; i < hi; ++i) exec_tile(active_list[i]);
          if (overlap) {
            // Barrier A2: the funnel's halo unpack + boundary list are
            // visible; compute the boundary phase as a team.
            tc.barrier();
            const auto [blo, bhi] = tc.block_range(0, boundary_list.size());
            for (std::size_t i = blo; i < bhi; ++i)
              exec_tile(boundary_list[i]);
          }
        } else {
          const auto me = static_cast<std::size_t>(tc.rank());
          auto& mine = deques[me];
          while (true) {
            // Load before sweeping: if the halo was already done, the
            // sweep below cannot miss tiles published before it.
            const bool no_more = halo_done.load(std::memory_order_acquire);
            if (auto t = mine.pop()) {
              exec_tile(*t);
              continue;
            }
            bool got = false;
            bool contended = false;
            for (std::size_t off = 1; off < nthreads && !got; ++off) {
              auto& victim = deques[(me + off) % nthreads];
              c_attempts.add(1);
              if (auto t = victim.steal()) {
                c_steals.add(1);
                PDC_TRACE_SCOPE("stencil.steal");
                exec_tile(*t);
                got = true;
              } else if (!victim.empty()) {
                contended = true;  // lost a race on a live tile: retry
              }
            }
            if (got || contended) continue;
            if (no_more) break;  // every deque observed empty, halo in
            std::this_thread::yield();  // halo still in flight
          }
        }
        rank_delta[static_cast<std::size_t>(tc.rank())] = local;
      }
      // Barrier B: every tile write and flag is visible to rank 0.
      tc.barrier();
      if (funnel) {
        double max_delta =
            *std::max_element(rank_delta.begin(), rank_delta.end());
        w.finish_step(*bufs[1 - src], tm, computed);
        const std::uint64_t ncomputed =
            active_list.size() + boundary_list.size();
        src = 1 - src;
        if constexpr (kStrip) {
          if (opt.converge_eps >= 0.0)
            max_delta = allreduce_max(*ctx, max_delta);
        }
        stop = step_epilogue(res, opt, ncomputed, tm.count(), max_delta);
        ++step;
        if (!stop) prep_step();
      }
    }
  });
  if constexpr (kStrip) {
    // Back on the home thread: end the funneled region. (Team::run
    // rethrows worker exceptions after joining, so on the throwing path
    // no further comm happens on this context anyway.)
    ctx->set_threading(mp::Threading::kSingle);
  }

  if (src == 1) std::swap(cur, nxt);  // `cur` always holds the final state
  bump_counters(res);
  return res;
}

}  // namespace detail

/// Unified engine, local plans ({1,1} and {1,T}): `cur` holds the input
/// state and, on return, the final state; `nxt` is the scratch double
/// buffer (same shape). plan.ranks must be 1 — multi-rank worlds are
/// launched by a workload driver (life::run_plan, heat_relax_plan) or an
/// SPMD body calling the strip overload below.
template <class W>
RunResult run(W& w, typename W::Field& cur, typename W::Field& nxt,
              const ExecPlan& plan, const Options& opt) {
  detail::validate(opt);
  detail::validate(plan);
  if (plan.ranks != 1)
    throw std::invalid_argument(
        "stencil::run without a RankContext executes one rank: multi-rank "
        "plans go through a workload driver or the strip overload");
  if (plan.threads_per_rank == 1)
    return detail::run_serial<false, W>(w, cur, nxt, opt, nullptr, MpLinks{});
  return detail::run_team<false, W>(w, cur, nxt, plan, opt, nullptr,
                                    MpLinks{});
}

/// Unified engine, strip plans ({R,1} and hybrid {R,T}): call from
/// inside an SPMD rank body with this rank's row strip in `cur`/`nxt`.
/// Each step sends one message per neighbor — [activity flag words]
/// [packed halo row] — then dilates the local activity map with the
/// received neighbor flags, computes the active tiles (on a core::Team
/// when plan.threads_per_rank > 1, comm funneled through the team's
/// rank-0 thread), and (when convergence is enabled) allreduces the
/// step's max delta. The strip's tile grid must be the global tile grid
/// restricted to this rank's rows (partition on tile-row boundaries) so
/// distributed skip decisions match the shared-memory engines exactly.
template <class W>
RunResult run(W& w, typename W::Field& cur, typename W::Field& nxt,
              const ExecPlan& plan, const Options& opt, mp::RankContext& ctx,
              const MpLinks& links) {
  detail::validate(opt);
  detail::validate(plan);
  if (plan.threads_per_rank == 1)
    return detail::run_serial<true, W>(w, cur, nxt, opt, &ctx, links);
  return detail::run_team<true, W>(w, cur, nxt, plan, opt, &ctx, links);
}

// ---- compat wrappers (the pre-ExecPlan entry points) ----

/// Sequential engine: plan {1,1}.
template <class W>
RunResult run_seq(W& w, typename W::Field& cur, typename W::Field& nxt,
                  const Options& opt) {
  return run(w, cur, nxt, ExecPlan{}, opt);
}

/// Shared-memory engine: plan {1,threads}.
template <class W>
RunResult run_threaded(W& w, typename W::Field& cur, typename W::Field& nxt,
                       const Options& opt, int threads) {
  return run(w, cur, nxt, ExecPlan{.threads_per_rank = threads}, opt);
}

/// Message-passing engine: plan {R,1}, one single-threaded strip rank.
template <class W>
RunResult run_mp(W& w, typename W::Field& cur, typename W::Field& nxt,
                 const Options& opt, mp::RankContext& ctx,
                 const MpLinks& links) {
  return run(w, cur, nxt, ExecPlan{}, opt, ctx, links);
}

}  // namespace pdc::stencil
