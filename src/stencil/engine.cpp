#include "pdc/stencil/engine.hpp"

#include <stdexcept>

#include "pdc/obs/metrics.hpp"

namespace pdc::stencil::detail {

void validate(const Options& opt) {
  if (opt.tile_rows == 0 || opt.tile_cols == 0)
    throw std::invalid_argument("stencil tile dimensions must be > 0");
  if (opt.max_steps < 0)
    throw std::invalid_argument("stencil max_steps must be >= 0");
  if (opt.quiesce_eps < 0.0)
    throw std::invalid_argument("stencil quiesce_eps must be >= 0");
  // A tile marked quiescent at eps > converge_eps could hide exactly the
  // residual the convergence check is looking for; forbid the combination
  // instead of silently converging early.
  if (opt.converge_eps >= 0.0 && opt.quiesce_eps > opt.converge_eps)
    throw std::invalid_argument(
        "stencil quiesce_eps must be <= converge_eps when convergence "
        "detection is enabled");
  if (opt.span_name == nullptr)
    throw std::invalid_argument("stencil span_name must be non-null");
}

void validate(const ExecPlan& plan) {
  if (plan.ranks < 1)
    throw std::invalid_argument("stencil plan ranks must be >= 1");
  if (plan.threads_per_rank < 1)
    throw std::invalid_argument("stencil plan threads_per_rank must be >= 1");
}

void bump_counters(const RunResult& res) {
  obs::counter("stencil.steps").add(res.steps);
  obs::counter("stencil.tiles_computed").add(res.tiles_computed);
  obs::counter("stencil.tiles_skipped").add(res.tiles_skipped);
  obs::counter("stencil.halo_words").add(res.halo_words);
}

}  // namespace pdc::stencil::detail
