#include "pdc/obs/metrics.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace pdc::obs {

namespace detail {

std::uint32_t thread_shard_slot() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

namespace {

/// Name -> metric maps. unique_ptr values keep references stable across
/// rehashes; the mutex guards only lookup/insert, never the hot bump.
struct Registry {
  std::mutex m;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

template <typename T>
T& lookup(std::unordered_map<std::string, std::unique_ptr<T>>& map,
          std::mutex& m, std::string_view name) {
  std::lock_guard lk(m);
  auto it = map.find(std::string(name));
  if (it == map.end())
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  return *it->second;
}

}  // namespace

double quantile_from_buckets(const std::vector<std::uint64_t>& buckets,
                             double q) {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;

  // Bucket b's value span: [0, 2) for b == 0, else [2^b, 2^{b+1}).
  const auto lo_of = [](std::size_t b) {
    return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
  };
  const auto hi_of = [](std::size_t b) {
    return std::ldexp(1.0, static_cast<int>(b) + 1);
  };

  if (q <= 0.0) {
    for (std::size_t b = 0; b < buckets.size(); ++b)
      if (buckets[b] > 0) return lo_of(b);
  }
  if (q >= 1.0) {
    for (std::size_t b = buckets.size(); b-- > 0;)
      if (buckets[b] > 0) return hi_of(b);
  }

  // Walk the CDF to the bucket holding rank q*total, then spread that
  // bucket's mass uniformly over its span.
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const auto count = static_cast<double>(buckets[b]);
    if (cum + count >= rank) {
      const double frac = (rank - cum) / count;
      return lo_of(b) + frac * (hi_of(b) - lo_of(b));
    }
    cum += count;
  }
  return hi_of(buckets.size() - 1);  // unreachable (rank <= total)
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> snap(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) snap[b] = bucket(b);
  return quantile_from_buckets(snap, q);
}

std::vector<double> Histogram::percentiles(
    const std::vector<double>& qs) const {
  std::vector<std::uint64_t> snap(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) snap[b] = bucket(b);
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_from_buckets(snap, q));
  return out;
}

Counter& counter(std::string_view name) {
  Registry& r = Registry::instance();
  return lookup(r.counters, r.m, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = Registry::instance();
  return lookup(r.gauges, r.m, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = Registry::instance();
  return lookup(r.histograms, r.m, name);
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = Registry::instance();
  std::lock_guard lk(r.m);
  MetricsSnapshot s;
  for (const auto& [name, c] : r.counters) s.counters[name] = c->value();
  for (const auto& [name, g] : r.gauges) s.gauges[name] = g->value();
  for (const auto& [name, h] : r.histograms) {
    auto& buckets = s.histograms[name];
    buckets.resize(Histogram::kBuckets);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      buckets[b] = h->bucket(b);
  }
  return s;
}

void reset_metrics() {
  Registry& r = Registry::instance();
  std::lock_guard lk(r.m);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& base) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = base.counters.find(name);
    d.counters[name] = v - (it == base.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : gauges) {
    const auto it = base.gauges.find(name);
    d.gauges[name] = v - (it == base.gauges.end() ? 0 : it->second);
  }
  for (const auto& [name, buckets] : histograms) {
    auto& out = d.histograms[name];
    out.resize(buckets.size());
    const auto it = base.histograms.find(name);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const std::uint64_t old =
          it != base.histograms.end() && b < it->second.size() ? it->second[b]
                                                               : 0;
      out[b] = buckets[b] - old;
    }
  }
  return d;
}

}  // namespace pdc::obs
