#include "pdc/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "pdc/perf/table.hpp"

namespace pdc::obs {

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

std::int64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              origin)
      .count();
}

namespace {

std::atomic<std::size_t> g_capacity{std::size_t{1} << 15};

/// One thread's span buffer. The owner thread emits under `m`; collectors
/// read under `m`. The sink keeps a shared_ptr so events survive the
/// thread, and the thread keeps one so emission never races teardown.
struct ThreadBuf {
  std::mutex m;
  std::string label = "thread";
  std::uint64_t seq = 0;  ///< registration order (sort tiebreak)
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

struct Sink {
  std::mutex m;
  std::uint64_t next_seq = 0;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;

  static Sink& instance() {
    static Sink s;
    return s;
  }
};

ThreadBuf& tls_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Sink& sink = Sink::instance();
    std::lock_guard lk(sink.m);
    b->seq = sink.next_seq++;
    sink.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

thread_local std::uint32_t tl_depth = 0;

/// Collect a consistent copy of every non-empty buffer, sorted by
/// (label, registration order).
std::vector<ThreadTrace> collect() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    Sink& sink = Sink::instance();
    std::lock_guard lk(sink.m);
    bufs = sink.bufs;
  }
  struct Keyed {
    std::uint64_t seq;
    ThreadTrace t;
  };
  std::vector<Keyed> out;
  for (const auto& b : bufs) {
    std::lock_guard lk(b->m);
    if (b->events.empty() && b->dropped == 0) continue;
    out.push_back({b->seq, {b->label, b->dropped, b->events}});
  }
  std::sort(out.begin(), out.end(), [](const Keyed& a, const Keyed& b) {
    return a.t.label != b.t.label ? a.t.label < b.t.label : a.seq < b.seq;
  });
  std::vector<ThreadTrace> result;
  result.reserve(out.size());
  for (auto& k : out) result.push_back(std::move(k.t));
  return result;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
}

}  // namespace

void emit_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
               std::uint32_t depth) noexcept {
  ThreadBuf& buf = tls_buf();
  std::lock_guard lk(buf.m);
  if (buf.events.size() >= g_capacity.load(std::memory_order_relaxed)) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back({name, start_ns, end_ns - start_ns, depth});
}

std::uint32_t enter_depth() noexcept { return tl_depth++; }
void exit_depth() noexcept { --tl_depth; }

}  // namespace detail

void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_label(std::string label) {
  detail::ThreadBuf& buf = detail::tls_buf();
  std::lock_guard lk(buf.m);
  buf.label = std::move(label);
}

std::vector<ThreadTrace> trace_threads() { return detail::collect(); }

std::size_t trace_span_count() {
  std::size_t n = 0;
  for (const auto& t : detail::collect()) n += t.events.size();
  return n;
}

void clear_trace() {
  detail::Sink& sink = detail::Sink::instance();
  std::lock_guard lk(sink.m);
  for (const auto& b : sink.bufs) {
    std::lock_guard blk(b->m);
    b->events.clear();
    b->dropped = 0;
  }
  // Buffers whose thread has exited (sink holds the only reference) have
  // nothing left to record; drop them so labels don't pile up run over run.
  std::erase_if(sink.bufs,
                [](const std::shared_ptr<detail::ThreadBuf>& b) {
                  return b.use_count() == 1;
                });
}

void set_trace_capacity(std::size_t events_per_thread) {
  detail::g_capacity.store(events_per_thread, std::memory_order_relaxed);
}

std::string export_chrome_trace() {
  const auto threads = detail::collect();
  std::string out;
  out.reserve(256 + 96 * [&] {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }());
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[160];
  int tid = 0;
  for (const auto& t : threads) {
    ++tid;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    detail::json_escape_into(out, t.label.c_str());
    out += "\"}}";
    for (const auto& e : t.events) {
      // Category = span-name prefix before the first '.', i.e. the layer.
      const char* dot = e.name;
      while (*dot != '\0' && *dot != '.') ++dot;
      out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"name\":\"";
      detail::json_escape_into(out, e.name);
      out += "\",\"cat\":\"";
      out.append(e.name, static_cast<std::size_t>(dot - e.name));
      std::snprintf(buf, sizeof buf, "\",\"ts\":%.3f,\"dur\":%.3f}",
                    static_cast<double>(e.start_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  f << export_chrome_trace();
  if (!f) throw std::runtime_error("failed writing trace file: " + path);
}

std::string trace_summary(std::size_t top_n) {
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t dropped = 0;
  for (const auto& t : detail::collect()) {
    dropped += t.dropped;
    for (const auto& e : t.events) {
      Agg& a = by_name[e.name];
      ++a.count;
      a.total_ns += e.dur_ns;
      a.max_ns = std::max(a.max_ns, e.dur_ns);
    }
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  perf::Table table({"span", "count", "total ms", "mean us", "max us"});
  for (const auto& [name, a] : rows) {
    const double total_ms = static_cast<double>(a.total_ns) / 1e6;
    const double mean_us =
        static_cast<double>(a.total_ns) / static_cast<double>(a.count) / 1e3;
    table.add_row({name, std::to_string(a.count), perf::fmt(total_ms, 3),
                   perf::fmt(mean_us, 2),
                   perf::fmt(static_cast<double>(a.max_ns) / 1e3, 2)});
  }
  std::string out = "== obs: top spans by total time ==\n" + table.str();
  if (dropped != 0)
    out += "(" + std::to_string(dropped) +
           " spans dropped at the per-thread buffer cap)\n";
  return out;
}

}  // namespace pdc::obs
