#pragma once
// Umbrella header for pdc::obs — the one tracing/metrics substrate under
// the runtime (core), comms (mp), I/O (extmem) and workload (mapreduce,
// life, os) layers. See metrics.hpp and trace.hpp.
//
// Compile-time kill switch: building with -DPDC_OBS_DISABLE turns
// PDC_TRACE_SCOPE into nothing at all (the library itself still builds;
// only the macro call sites vanish). The default build keeps spans
// compiled in behind the runtime flag, which is what the "instrumentation
// is pay-for-what-you-use" acceptance bench measures.

#include "pdc/obs/metrics.hpp"
#include "pdc/obs/trace.hpp"

// Two-step concat so __COUNTER__ expands before pasting.
#define PDC_OBS_CONCAT2(a, b) a##b
#define PDC_OBS_CONCAT(a, b) PDC_OBS_CONCAT2(a, b)

#if defined(PDC_OBS_DISABLE)
#define PDC_TRACE_SCOPE(name) ((void)0)
#else
/// Trace the enclosing scope as a span named `name` (a string literal).
#define PDC_TRACE_SCOPE(name) \
  ::pdc::obs::TraceScope PDC_OBS_CONCAT(pdc_obs_scope_, __COUNTER__)(name)
#endif
