#pragma once
// Process-global metrics registry: named counters, gauges and log2-bucket
// histograms with lock-free hot paths. Counters shard their cells across
// threads (one cache line per shard) so concurrent bumps never contend;
// reads sum the shards. Snapshots are plain value maps with subtraction,
// so "what did this phase cost" is `after - before` instead of hand-kept
// baseline fields — the measurement discipline the scalability labs teach,
// packaged once for every module.
//
// Usage:
//   static pdc::obs::Counter& sent = pdc::obs::counter("mp.bytes_sent");
//   sent.add(msg.size());
//   ...
//   const auto before = pdc::obs::metrics_snapshot();
//   run_workload();
//   const auto delta = pdc::obs::metrics_snapshot() - before;

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pdc::obs {

namespace detail {
/// Small dense per-thread index used to pick a counter shard. Assigned on
/// first use per thread and never reused; shard = index mod kShards.
std::uint32_t thread_shard_slot() noexcept;
}  // namespace detail

/// Monotonic event counter, sharded per thread. add() is a single relaxed
/// fetch_add on this thread's shard; value() sums the shards (exact once
/// the writers have joined, a live lower bound while they run).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard_slot() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zero every shard. Only meaningful while no writer is concurrently
  /// bumping (e.g. between runs) — the same contract as the stats structs
  /// this class replaces.
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Quantile extraction over a raw log2 bucket vector (as stored by
/// Histogram and MetricsSnapshot::histograms). Bucket b >= 1 spans
/// [2^b, 2^{b+1}); bucket 0 spans [0, 2). The q-th quantile is read off
/// the cumulative distribution with each bucket's mass spread uniformly
/// over its span (linear interpolation), so precision is bounded by the
/// bucket width — exact at bucket edges, power-of-two-band resolution
/// inside. Conventions (pinned by tests):
///  - empty histogram -> 0.0
///  - q <= 0 -> lower edge of the first non-empty bucket
///  - q >= 1 -> upper edge of the last non-empty bucket
double quantile_from_buckets(const std::vector<std::uint64_t>& buckets,
                             double q);

/// Log2-bucket histogram: record(v) bumps bucket floor(log2(v)) (bucket 0
/// holds v == 0 and v == 1). Cheap enough for per-message paths; exact
/// counts per power-of-two band, which is the resolution the payload-size
/// and latency questions actually need.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v <= 1 ? 0 : static_cast<std::size_t>(63 - __builtin_clzll(v));
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& b : buckets_) sum += b.load(std::memory_order_relaxed);
    return sum;
  }

  /// The q-th quantile of the recorded values, interpolated within the
  /// matching log2 bucket (see quantile_from_buckets for the exact
  /// conventions). Reads a relaxed snapshot of the buckets: exact once
  /// writers have joined, a live estimate while they run.
  [[nodiscard]] double quantile(double q) const;

  /// quantile() at several points in one bucket snapshot — the p50/p99/
  /// p999 spelling benches want.
  [[nodiscard]] std::vector<double> percentiles(
      const std::vector<double>& qs) const;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time value dump of every registered metric. Subtraction is
/// member-wise (names missing from the subtrahend count as zero), giving
/// phase-delta semantics for free.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::vector<std::uint64_t>> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  MetricsSnapshot operator-(const MetricsSnapshot& base) const;
};

/// Look up (creating on first use) a named metric in the process-global
/// registry. References stay valid for the process lifetime; hot paths
/// should cache them (`static Counter& c = counter("...")`).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Value dump of every registered metric.
MetricsSnapshot metrics_snapshot();

/// Zero every registered counter and histogram (gauges keep their level).
/// Same writer contract as Counter::reset().
void reset_metrics();

}  // namespace pdc::obs
