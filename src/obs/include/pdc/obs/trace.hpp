#pragma once
// Scoped tracing spans on per-thread buffers, exported as Chrome
// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev)
// plus an ASCII top-N summary table. This is the "where did the time go"
// half of pdc::obs; metrics.hpp is the "where did the bytes go" half.
//
// Emission is pay-for-what-you-use: tracing starts disabled, and a
// disabled PDC_TRACE_SCOPE costs one relaxed atomic load. When enabled, a
// span is two steady_clock reads plus one push onto the calling thread's
// own buffer (bounded; overflow drops new events and counts them).
//
// Span names must be string literals (or otherwise outlive the export).
// Threads announce themselves with set_thread_label ("mp/3",
// "core.team/1"); the exporter names Chrome tracks after the labels and
// orders tracks by label, so the same workload produces the same timeline
// layout run after run.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pdc::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
/// Nanoseconds since the process trace origin (first use).
[[nodiscard]] std::int64_t trace_now_ns() noexcept;
void emit_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
               std::uint32_t depth) noexcept;
[[nodiscard]] std::uint32_t enter_depth() noexcept;
void exit_depth() noexcept;
}  // namespace detail

/// Master runtime switch. Spans opened while disabled record nothing even
/// if tracing is enabled before they close.
void set_tracing_enabled(bool on) noexcept;
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Label the calling thread's trace track (e.g. "mp/2"). Also the rank
/// label mechanism: ranks are threads here, so a rank label is a thread
/// label by construction.
void set_thread_label(std::string label);

/// One completed span on one thread. Timestamps are ns since the process
/// trace origin; depth is the nesting level at emission (0 = outermost).
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t depth = 0;
};

/// Everything one thread recorded, snapshot at collection time.
struct ThreadTrace {
  std::string label;
  std::uint64_t dropped = 0;  ///< events lost to the buffer cap
  std::vector<TraceEvent> events;  ///< in completion order
};

/// RAII span: records [construction, destruction) on the calling thread's
/// buffer. Prefer the PDC_TRACE_SCOPE macro, which compiles away entirely
/// under -DPDC_OBS_DISABLE.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (!tracing_enabled()) return;
    name_ = name;
    depth_ = detail::enter_depth();
    start_ns_ = detail::trace_now_ns();
  }
  ~TraceScope() {
    if (name_ == nullptr) return;
    detail::emit_span(name_, start_ns_, detail::trace_now_ns(), depth_);
    detail::exit_depth();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Snapshot of every thread's recorded spans, ordered by (label, thread
/// registration order); threads that recorded nothing are omitted.
[[nodiscard]] std::vector<ThreadTrace> trace_threads();

/// Total completed spans currently buffered across all threads.
[[nodiscard]] std::size_t trace_span_count();

/// Discard all buffered spans (buffers and labels of live threads stay).
void clear_trace();

/// Per-thread event cap (default 1 << 15). Applies to future emissions.
void set_trace_capacity(std::size_t events_per_thread);

/// Render everything buffered as Chrome trace_event JSON.
[[nodiscard]] std::string export_chrome_trace();

/// export_chrome_trace() to a file. Throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path);

/// ASCII table of the top-N span names by total time (count, total ms,
/// mean/max us) — the printf-timer replacement for bench output.
[[nodiscard]] std::string trace_summary(std::size_t top_n = 10);

}  // namespace pdc::obs
