#include "pdc/perf/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pdc::perf {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);

  if (s.count >= 2) {
    double ss = 0.0;
    for (double x : samples) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
    // Normal approximation: 1.96 * s / sqrt(n).
    s.ci95_half_width = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

void RunningStats::push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

RunningStats merge(const RunningStats& a, const RunningStats& b) {
  if (a.n_ == 0) return b;
  if (b.n_ == 0) return a;
  RunningStats r;
  r.n_ = a.n_ + b.n_;
  const double delta = b.mean_ - a.mean_;
  const double na = static_cast<double>(a.n_);
  const double nb = static_cast<double>(b.n_);
  const double n = na + nb;
  r.mean_ = a.mean_ + delta * nb / n;
  r.m2_ = a.m2_ + b.m2_ + delta * delta * na * nb / n;
  r.min_ = std::min(a.min_, b.min_);
  r.max_ = std::max(a.max_, b.max_);
  return r;
}

}  // namespace pdc::perf
