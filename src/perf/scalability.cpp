#include "pdc/perf/scalability.hpp"

#include <cmath>
#include <stdexcept>

#include "pdc/perf/table.hpp"
#include "pdc/perf/timer.hpp"

namespace pdc::perf {

std::string StudyResult::to_table() const {
  Table t({"threads", "seconds", "speedup", "efficiency", "karp-flatt"});
  for (const auto& pt : points) {
    t.add_row({std::to_string(pt.threads), fmt(pt.seconds, 4),
               fmt(pt.speedup, 2), fmt(pt.efficiency, 2),
               std::isnan(pt.karp_flatt) ? "-" : fmt(pt.karp_flatt, 3)});
  }
  std::string out = t.str();
  out += "amdahl fit: serial fraction f = " + fmt(fitted_serial_fraction, 4) +
         " (limit " +
         (fitted_serial_fraction > 0.0
              ? fmt(1.0 / fitted_serial_fraction, 1) + "x"
              : std::string("unbounded")) +
         ")\n";
  return out;
}

std::string WeakStudyResult::to_table() const {
  Table t({"threads", "seconds", "scaled efficiency"});
  for (const auto& pt : points) {
    t.add_row({std::to_string(pt.threads), fmt(pt.seconds, 4),
               fmt(pt.scaled_efficiency, 2)});
  }
  return t.str();
}

WeakStudyResult run_weak_scaling(const StudyConfig& config,
                                 const std::function<void(int)>& workload) {
  if (config.thread_counts.empty())
    throw std::invalid_argument("need at least one thread count");
  if (config.repetitions < 1)
    throw std::invalid_argument("repetitions must be >= 1");

  WeakStudyResult result;
  double baseline = 0.0;  // time of the first point (callers put p=1 first)
  for (int p : config.thread_counts) {
    if (p < 1) throw std::invalid_argument("thread counts must be >= 1");
    if (config.warmup) workload(p);
    const double best = time_best_of(config.repetitions, [&] { workload(p); });
    if (result.points.empty()) baseline = best;
    WeakScalingPoint pt;
    pt.threads = p;
    pt.seconds = best;
    pt.scaled_efficiency = best > 0.0 ? baseline / best : 0.0;
    result.points.push_back(pt);
  }
  return result;
}

StudyResult run_strong_scaling(const StudyConfig& config,
                               const std::function<void(int)>& workload) {
  if (config.thread_counts.empty())
    throw std::invalid_argument("need at least one thread count");
  if (config.repetitions < 1)
    throw std::invalid_argument("repetitions must be >= 1");

  std::vector<int> threads;
  std::vector<double> seconds;
  for (int p : config.thread_counts) {
    if (p < 1) throw std::invalid_argument("thread counts must be >= 1");
    if (config.warmup) workload(p);
    const double best =
        time_best_of(config.repetitions, [&] { workload(p); });
    threads.push_back(p);
    seconds.push_back(best);
  }

  StudyResult result;
  result.points = scaling_table(threads, seconds);
  result.fitted_serial_fraction = fit_amdahl_serial_fraction(result.points);
  return result;
}

}  // namespace pdc::perf
