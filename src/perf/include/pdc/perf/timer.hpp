#pragma once
// Wall-clock timing utilities for the performance-measurement labs.
//
// CS31 ("Game of Life" lab) asks students to "add timing measurement to C
// code" and design scalability experiments; these helpers are the library
// form of that exercise.

#include <chrono>
#include <concepts>
#include <cstdint>
#include <utility>

namespace pdc::perf {

/// Monotonic wall-clock stopwatch.
///
/// The timer starts running on construction. `elapsed_seconds()` may be
/// called repeatedly; `restart()` resets the origin.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  /// Reset the origin to now.
  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last restart().
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  clock::time_point start_;
};

/// Time a single invocation of `fn`, returning seconds.
template <std::invocable F>
double time_seconds(F&& fn) {
  Timer t;
  std::forward<F>(fn)();
  return t.elapsed_seconds();
}

/// Time `fn` over `reps` repetitions and return the *minimum* per-rep time,
/// the standard noise-robust estimator for microbenchmarks. `reps < 1` is
/// clamped to one rep — the function always measures at least once rather
/// than silently reporting 0.0.
template <std::invocable F>
double time_best_of(int reps, F&& fn) {
  if (reps < 1) reps = 1;
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double s = time_seconds(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace pdc::perf
