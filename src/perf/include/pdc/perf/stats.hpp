#pragma once
// Sample statistics for experiment reports (CS31/CS87 "design and carry out
// performance experiments, analyze data and explain results").

#include <cstddef>
#include <span>
#include <vector>

namespace pdc::perf {

/// Summary statistics over a set of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  /// Half-width of the 95% confidence interval of the mean
  /// (normal approximation; 0 for fewer than 2 samples).
  double ci95_half_width = 0.0;
};

/// Compute summary statistics of `samples`. Empty input yields a
/// zero-initialized Summary.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Streaming mean/variance accumulator (Welford's algorithm), suitable for
/// long runs where storing every sample is undesirable.
class RunningStats {
 public:
  void push(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  void reset();

  friend RunningStats merge(const RunningStats& a, const RunningStats& b);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Merge two independently accumulated RunningStats (parallel reduction of
/// statistics — Chan et al.'s pairwise update).
[[nodiscard]] RunningStats merge(const RunningStats& a, const RunningStats& b);

}  // namespace pdc::perf
