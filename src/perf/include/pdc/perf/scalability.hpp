#pragma once
// Strong-scaling study runner: the library form of the CS31 Life lab's
// "designing and carrying out scalability experiments" deliverable.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "pdc/perf/laws.hpp"

namespace pdc::perf {

/// Configuration for a strong-scaling study.
struct StudyConfig {
  std::vector<int> thread_counts = {1, 2, 4, 8};
  int repetitions = 3;          ///< timings per point; best-of is reported
  bool warmup = true;           ///< run one untimed warmup per point
};

/// Result of a strong-scaling study: one ScalingPoint per thread count,
/// plus the Amdahl serial-fraction fit over those points.
struct StudyResult {
  std::vector<ScalingPoint> points;
  double fitted_serial_fraction = 0.0;

  /// Render the standard lab-report table
  /// (threads, seconds, speedup, efficiency, karp-flatt).
  [[nodiscard]] std::string to_table() const;
};

/// Run `workload(threads)` for every configured thread count, timing each
/// invocation `config.repetitions` times and keeping the best. The workload
/// must perform the *same total work* regardless of `threads` (strong
/// scaling).
[[nodiscard]] StudyResult run_strong_scaling(
    const StudyConfig& config, const std::function<void(int)>& workload);

/// One row of a weak-scaling experiment: the problem grows with the
/// processor count, so the ideal is CONSTANT time and the metric is
/// scaled (Gustafson) efficiency T(1)/T(p).
struct WeakScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  double scaled_efficiency = 0.0;  ///< T(1) / T(p); 1.0 is ideal
};

struct WeakStudyResult {
  std::vector<WeakScalingPoint> points;
  /// Render threads / seconds / scaled efficiency rows.
  [[nodiscard]] std::string to_table() const;
};

/// Weak scaling: `workload(threads)` must size its problem proportionally
/// to `threads` (e.g. n = base_n * threads). Ideal scaling keeps the time
/// flat; the report shows where it starts to climb.
[[nodiscard]] WeakStudyResult run_weak_scaling(
    const StudyConfig& config, const std::function<void(int)>& workload);

}  // namespace pdc::perf
