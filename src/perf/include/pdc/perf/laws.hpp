#pragma once
// Analytic speedup laws from the CS31 / CS41 syllabi: speedup, efficiency,
// Amdahl's law, Gustafson's law, the Karp–Flatt experimentally-determined
// serial fraction, and iso-style scalability classification.

#include <cstddef>
#include <span>
#include <vector>

namespace pdc::perf {

/// speedup S(p) = T(1) / T(p).
[[nodiscard]] double speedup(double t_serial, double t_parallel);

/// efficiency E(p) = S(p) / p.
[[nodiscard]] double efficiency(double t_serial, double t_parallel, int p);

/// Amdahl's law: predicted speedup on `p` processors of a program whose
/// serial (non-parallelizable) fraction is `serial_fraction` in [0, 1].
///   S(p) = 1 / (f + (1 - f)/p)
[[nodiscard]] double amdahl_speedup(double serial_fraction, int p);

/// Amdahl's asymptotic bound: lim_{p->inf} S(p) = 1/f (infinity for f == 0).
[[nodiscard]] double amdahl_limit(double serial_fraction);

/// Gustafson's (scaled-speedup) law:
///   S(p) = p - f * (p - 1)
/// where `serial_fraction` f is measured on the parallel execution.
[[nodiscard]] double gustafson_speedup(double serial_fraction, int p);

/// Karp–Flatt metric: the experimentally determined serial fraction
///   e = (1/S - 1/p) / (1 - 1/p)
/// from a measured speedup S on p > 1 processors. A value that grows with p
/// diagnoses parallel overhead; a constant value diagnoses limited inherent
/// parallelism.
[[nodiscard]] double karp_flatt(double measured_speedup, int p);

/// One row of a strong-scaling experiment.
struct ScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  double karp_flatt = 0.0;  ///< NaN for threads == 1
};

/// Convert measured (threads, seconds) pairs into scaling rows, using the
/// entry with threads == 1 as the baseline (first entry if none has 1).
[[nodiscard]] std::vector<ScalingPoint> scaling_table(
    std::span<const int> threads, std::span<const double> seconds);

/// Least-squares fit of Amdahl's law to measured scaling points, returning
/// the serial fraction f in [0,1] minimizing sum_p (1/S_meas - 1/S_amdahl)^2.
/// This is the "fit your scalability data" step of the CS31 Life lab report.
[[nodiscard]] double fit_amdahl_serial_fraction(
    std::span<const ScalingPoint> points);

}  // namespace pdc::perf
