#pragma once
// Minimal ASCII table printer used by the benches and examples to emit the
// same style of result rows the course labs ask students to report.

#include <iosfwd>
#include <string>
#include <vector>

namespace pdc::perf {

/// Column-aligned ASCII table.
///
/// Usage:
///   Table t({"threads", "seconds", "speedup"});
///   t.add_row({"1", "2.00", "1.00"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same number of cells as there are
  /// headers (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Render with a header rule, right-padding every column to its widest
  /// cell.
  void print(std::ostream& os) const;

  /// Convenience: render to a string.
  [[nodiscard]] std::string str() const;

  /// Machine-readable form: one JSON object per row, keyed by header —
  /// {"title": ..., "rows": [{"threads": "1", "seconds": "2.00"}, ...]}.
  /// Cells stay strings (they were formatted for display); consumers that
  /// want numbers parse them. Header/cell text is JSON-escaped.
  [[nodiscard]] std::string json(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Format with SI-ish human suffix for counts (1.2K, 3.4M, ...).
[[nodiscard]] std::string fmt_count(double value);

}  // namespace pdc::perf
