#include "pdc/perf/laws.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pdc::perf {

double speedup(double t_serial, double t_parallel) {
  if (t_parallel <= 0.0) throw std::invalid_argument("t_parallel must be > 0");
  return t_serial / t_parallel;
}

double efficiency(double t_serial, double t_parallel, int p) {
  if (p <= 0) throw std::invalid_argument("p must be > 0");
  return speedup(t_serial, t_parallel) / static_cast<double>(p);
}

double amdahl_speedup(double serial_fraction, int p) {
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::invalid_argument("serial_fraction must be in [0,1]");
  if (p <= 0) throw std::invalid_argument("p must be > 0");
  const double f = serial_fraction;
  return 1.0 / (f + (1.0 - f) / static_cast<double>(p));
}

double amdahl_limit(double serial_fraction) {
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::invalid_argument("serial_fraction must be in [0,1]");
  if (serial_fraction == 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / serial_fraction;
}

double gustafson_speedup(double serial_fraction, int p) {
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::invalid_argument("serial_fraction must be in [0,1]");
  if (p <= 0) throw std::invalid_argument("p must be > 0");
  const double f = serial_fraction;
  return static_cast<double>(p) - f * static_cast<double>(p - 1);
}

double karp_flatt(double measured_speedup, int p) {
  if (p <= 1) throw std::invalid_argument("Karp-Flatt requires p > 1");
  if (measured_speedup <= 0.0)
    throw std::invalid_argument("speedup must be > 0");
  const double inv_s = 1.0 / measured_speedup;
  const double inv_p = 1.0 / static_cast<double>(p);
  return (inv_s - inv_p) / (1.0 - inv_p);
}

std::vector<ScalingPoint> scaling_table(std::span<const int> threads,
                                        std::span<const double> seconds) {
  if (threads.size() != seconds.size())
    throw std::invalid_argument("threads/seconds size mismatch");
  if (threads.empty()) return {};

  // Baseline: the measurement at 1 thread, else the first one.
  double t1 = seconds[0];
  for (std::size_t i = 0; i < threads.size(); ++i)
    if (threads[i] == 1) t1 = seconds[i];

  std::vector<ScalingPoint> rows;
  rows.reserve(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    ScalingPoint pt;
    pt.threads = threads[i];
    pt.seconds = seconds[i];
    pt.speedup = speedup(t1, seconds[i]);
    pt.efficiency = pt.speedup / static_cast<double>(pt.threads);
    pt.karp_flatt = pt.threads > 1
                        ? karp_flatt(pt.speedup, pt.threads)
                        : std::numeric_limits<double>::quiet_NaN();
    rows.push_back(pt);
  }
  return rows;
}

double fit_amdahl_serial_fraction(std::span<const ScalingPoint> points) {
  // 1/S(p) = f + (1-f)/p  is linear in f:  1/S = f*(1 - 1/p) + 1/p.
  // Least squares over points with p > 1:
  //   f = sum_i a_i * (y_i - b_i) / sum_i a_i^2,
  // with a_i = 1 - 1/p_i, b_i = 1/p_i, y_i = 1/S_i.
  double num = 0.0, den = 0.0;
  for (const auto& pt : points) {
    if (pt.threads <= 1 || pt.speedup <= 0.0) continue;
    const double a = 1.0 - 1.0 / static_cast<double>(pt.threads);
    const double b = 1.0 / static_cast<double>(pt.threads);
    const double y = 1.0 / pt.speedup;
    num += a * (y - b);
    den += a * a;
  }
  if (den == 0.0) return 0.0;
  return std::clamp(num / den, 0.0, 1.0);
}

}  // namespace pdc::perf
