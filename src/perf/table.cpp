#include "pdc/perf/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pdc::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

std::string fmt_count(double value) {
  const char* suffix = "";
  double v = value;
  if (std::abs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  std::ostringstream oss;
  if (*suffix == '\0' && v == std::floor(v)) {
    oss << static_cast<long long>(v);
  } else {
    oss << std::fixed << std::setprecision(1) << v << suffix;
  }
  return oss.str();
}

}  // namespace pdc::perf
