#include "pdc/perf/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pdc::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(ch) << std::dec << std::setfill(' ');
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Table::json(const std::string& title) const {
  std::ostringstream oss;
  oss << "{\"title\": ";
  json_escape(oss, title);
  oss << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    oss << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) oss << ", ";
      json_escape(oss, headers_[c]);
      oss << ": ";
      json_escape(oss, rows_[r][c]);
    }
    oss << '}';
  }
  oss << "\n]}";
  return oss.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

std::string fmt_count(double value) {
  const char* suffix = "";
  double v = value;
  if (std::abs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  std::ostringstream oss;
  if (*suffix == '\0' && v == std::floor(v)) {
    oss << static_cast<long long>(v);
  } else {
    oss << std::fixed << std::setprecision(1) << v << suffix;
  }
  return oss.str();
}

}  // namespace pdc::perf
