#include "pdc/machine/bitvector.hpp"

#include <bit>
#include <stdexcept>

namespace pdc::machine {

namespace {
constexpr std::size_t kBits = 64;
}

BitVector::BitVector(std::size_t size)
    : size_(size), data_((size + kBits - 1) / kBits, 0) {}

bool BitVector::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVector index");
  return (data_[i / kBits] >> (i % kBits)) & 1u;
}

void BitVector::set(std::size_t i) {
  if (i >= size_) throw std::out_of_range("BitVector index");
  data_[i / kBits] |= std::uint64_t{1} << (i % kBits);
}

void BitVector::reset(std::size_t i) {
  if (i >= size_) throw std::out_of_range("BitVector index");
  data_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
}

void BitVector::flip(std::size_t i) {
  if (i >= size_) throw std::out_of_range("BitVector index");
  data_[i / kBits] ^= std::uint64_t{1} << (i % kBits);
}

void BitVector::assign(std::size_t i, bool value) {
  value ? set(i) : reset(i);
}

void BitVector::set_all() {
  for (auto& w : data_) w = ~std::uint64_t{0};
  clear_padding();
}

void BitVector::reset_all() {
  for (auto& w : data_) w = 0;
}

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (auto w : data_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVector::find_first() const {
  for (std::size_t wi = 0; wi < data_.size(); ++wi)
    if (data_[wi] != 0)
      return wi * kBits + static_cast<std::size_t>(std::countr_zero(data_[wi]));
  return size_;
}

std::size_t BitVector::find_next(std::size_t i) const {
  if (i + 1 >= size_) return size_;
  std::size_t start = i + 1;
  std::size_t wi = start / kBits;
  std::uint64_t w = data_[wi] & (~std::uint64_t{0} << (start % kBits));
  while (true) {
    if (w != 0)
      return wi * kBits + static_cast<std::size_t>(std::countr_zero(w));
    if (++wi >= data_.size()) return size_;
    w = data_[wi];
  }
}

void BitVector::check_same_size(const BitVector& o) const {
  if (size_ != o.size_)
    throw std::invalid_argument("BitVector size mismatch");
}

BitVector& BitVector::operator&=(const BitVector& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= o.data_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] |= o.data_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] ^= o.data_[i];
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector r(*this);
  for (auto& w : r.data_) w = ~w;
  r.clear_padding();
  return r;
}

bool BitVector::is_subset_of(const BitVector& o) const {
  check_same_size(o);
  for (std::size_t i = 0; i < data_.size(); ++i)
    if ((data_[i] & ~o.data_[i]) != 0) return false;
  return true;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> BitVector::to_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = find_first(); i < size_; i = find_next(i))
    out.push_back(i);
  return out;
}

void BitVector::clear_padding() {
  const std::size_t used = size_ % kBits;
  if (used != 0 && !data_.empty())
    data_.back() &= (std::uint64_t{1} << used) - 1;
}

}  // namespace pdc::machine
