#include "pdc/machine/alu.hpp"

#include <stdexcept>

#include "pdc/machine/bits.hpp"

namespace pdc::machine {

AdderBit half_adder(Circuit& c, Wire a, Wire b) {
  return {c.xor_gate(a, b), c.and_gate(a, b)};
}

AdderBit full_adder(Circuit& c, Wire a, Wire b, Wire carry_in) {
  const AdderBit h1 = half_adder(c, a, b);
  const AdderBit h2 = half_adder(c, h1.sum, carry_in);
  return {h2.sum, c.or_gate(h1.carry, h2.carry)};
}

AdderResult ripple_carry_adder(Circuit& c, const Bus& a, const Bus& b,
                               Wire carry_in) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("adder requires equal non-empty buses");
  AdderResult r;
  Wire carry = carry_in;
  Wire carry_into_msb = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == a.size() - 1) carry_into_msb = carry;
    const AdderBit fa = full_adder(c, a[i], b[i], carry);
    r.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  r.carry_out = carry;
  // Signed overflow: carry into the MSB differs from carry out of it.
  r.overflow = c.xor_gate(carry_into_msb, carry);
  return r;
}

namespace {

/// 3-to-8 decoder over the op-select bus: line k is high iff op == k.
std::vector<Wire> decode_op(Circuit& c, const Bus& op) {
  if (op.size() != 3) throw std::invalid_argument("op bus must be 3 bits");
  const Wire n0 = c.not_gate(op[0]);
  const Wire n1 = c.not_gate(op[1]);
  const Wire n2 = c.not_gate(op[2]);
  std::vector<Wire> lines;
  lines.reserve(8);
  for (int k = 0; k < 8; ++k) {
    const Wire b0 = (k & 1) ? op[0] : n0;
    const Wire b1 = (k & 2) ? op[1] : n1;
    const Wire b2 = (k & 4) ? op[2] : n2;
    lines.push_back(c.and_gate(c.and_gate(b0, b1), b2));
  }
  return lines;
}

/// OR together a non-empty list of wires as a balanced tree.
Wire or_tree(Circuit& c, std::vector<Wire> ws) {
  if (ws.empty()) throw std::invalid_argument("or_tree of nothing");
  while (ws.size() > 1) {
    std::vector<Wire> next;
    for (std::size_t i = 0; i + 1 < ws.size(); i += 2)
      next.push_back(c.or_gate(ws[i], ws[i + 1]));
    if (ws.size() % 2 == 1) next.push_back(ws.back());
    ws = std::move(next);
  }
  return ws[0];
}

}  // namespace

AluOutputs build_alu(Circuit& c, const Bus& a, const Bus& b, const Bus& op) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("ALU requires equal non-empty operand buses");
  const std::size_t n = a.size();
  const std::vector<Wire> sel = decode_op(c, op);

  // Shared adder/subtractor: b is XOR'd with the subtract line so one
  // ripple-carry adder serves ADD, SUB and LESS, as in the lab handout.
  const Wire sub_active =
      or_tree(c, {sel[static_cast<int>(AluOp::kSub)],
                  sel[static_cast<int>(AluOp::kLess)]});
  Bus b_eff;
  b_eff.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    b_eff.push_back(c.xor_gate(b[i], sub_active));
  const AdderResult adder = ripple_carry_adder(c, a, b_eff, sub_active);

  // Per-op result buses.
  Bus and_bus, or_bus, xor_bus, nor_bus, less_bus;
  for (std::size_t i = 0; i < n; ++i) {
    and_bus.push_back(c.and_gate(a[i], b[i]));
    or_bus.push_back(c.or_gate(a[i], b[i]));
    xor_bus.push_back(c.xor_gate(a[i], b[i]));
    nor_bus.push_back(c.nor_gate(a[i], b[i]));
  }
  // Signed less-than: sign of (a-b) corrected by overflow.
  const Wire slt = c.xor_gate(adder.sum[n - 1], adder.overflow);
  const Wire zero_const = c.constant(false);
  less_bus.push_back(slt);
  for (std::size_t i = 1; i < n; ++i) less_bus.push_back(zero_const);

  auto bus_for = [&](AluOp o) -> const Bus& {
    switch (o) {
      case AluOp::kAdd:
      case AluOp::kSub: return adder.sum;
      case AluOp::kAnd: return and_bus;
      case AluOp::kOr: return or_bus;
      case AluOp::kXor: return xor_bus;
      case AluOp::kNor: return nor_bus;
      case AluOp::kPassA: return a;
      case AluOp::kLess: return less_bus;
    }
    throw std::logic_error("unreachable");
  };

  // Result mux: bit i = OR_k (sel_k AND bus_k[i]).
  AluOutputs out;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Wire> terms;
    for (int k = 0; k < 8; ++k)
      terms.push_back(
          c.and_gate(sel[k], bus_for(static_cast<AluOp>(k))[i]));
    out.result.push_back(or_tree(c, std::move(terms)));
  }

  out.zero = c.not_gate(or_tree(c, out.result));
  out.negative = out.result[n - 1];
  out.carry_out = adder.carry_out;
  out.overflow = adder.overflow;
  return out;
}

std::uint64_t alu_reference(AluOp op, std::uint64_t a, std::uint64_t b,
                            int width) {
  const std::uint64_t mask = low_mask(width);
  a &= mask;
  b &= mask;
  switch (op) {
    case AluOp::kAdd: return (a + b) & mask;
    case AluOp::kSub: return (a - b) & mask;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kNor: return ~(a | b) & mask;
    case AluOp::kPassA: return a;
    case AluOp::kLess:
      return decode_twos_complement(a, width) <
                     decode_twos_complement(b, width)
                 ? 1u
                 : 0u;
  }
  throw std::logic_error("unreachable");
}

}  // namespace pdc::machine
