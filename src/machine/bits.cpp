#include "pdc/machine/bits.hpp"

#include <stdexcept>

namespace pdc::machine {

namespace {

void check_width(int width) {
  if (width < 1 || width > kMaxWidth)
    throw std::invalid_argument("width must be in [1,64]");
}

}  // namespace

std::uint64_t low_mask(int width) {
  check_width(width);
  return width == 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << width) - 1);
}

std::string to_binary(std::uint64_t value, int width) {
  check_width(width);
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i)
    if ((value >> (width - 1 - i)) & 1u) out[static_cast<std::size_t>(i)] = '1';
  return out;
}

std::string to_hex(std::uint64_t value, int width) {
  check_width(width);
  if (width % 4 != 0)
    throw std::invalid_argument("hex width must be a multiple of 4");
  static constexpr char digits[] = "0123456789abcdef";
  const int nibbles = width / 4;
  std::string out(static_cast<std::size_t>(nibbles), '0');
  for (int i = 0; i < nibbles; ++i) {
    const auto nib = (value >> (4 * (nibbles - 1 - i))) & 0xFu;
    out[static_cast<std::size_t>(i)] = digits[nib];
  }
  return out;
}

std::uint64_t parse_binary(std::string_view text) {
  if (text.starts_with("0b") || text.starts_with("0B")) text.remove_prefix(2);
  if (text.empty() || text.size() > 64)
    throw std::invalid_argument("binary literal must have 1..64 digits");
  std::uint64_t v = 0;
  for (char c : text) {
    if (c != '0' && c != '1')
      throw std::invalid_argument("invalid binary digit");
    v = (v << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::uint64_t parse_hex(std::string_view text) {
  if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
  if (text.empty() || text.size() > 16)
    throw std::invalid_argument("hex literal must have 1..16 digits");
  std::uint64_t v = 0;
  for (char c : text) {
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9')
      d = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      d = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      d = static_cast<std::uint64_t>(c - 'A' + 10);
    else
      throw std::invalid_argument("invalid hex digit");
    v = (v << 4) | d;
  }
  return v;
}

std::int64_t decode_twos_complement(std::uint64_t bits, int width) {
  check_width(width);
  bits &= low_mask(width);
  const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
  if (bits & sign_bit) {
    // value = bits - 2^width, computed without overflow.
    return static_cast<std::int64_t>(bits | ~low_mask(width));
  }
  return static_cast<std::int64_t>(bits);
}

std::int64_t min_signed(int width) {
  check_width(width);
  return -(static_cast<std::int64_t>(1) << (width - 1));
}

std::int64_t max_signed(int width) {
  check_width(width);
  return (static_cast<std::int64_t>(1) << (width - 1)) - 1;
}

bool fits_twos_complement(std::int64_t value, int width) {
  check_width(width);
  if (width == 64) return true;
  return value >= min_signed(width) && value <= max_signed(width);
}

std::uint64_t encode_twos_complement(std::int64_t value, int width) {
  check_width(width);
  if (!fits_twos_complement(value, width))
    throw std::out_of_range("value not representable at this width");
  return static_cast<std::uint64_t>(value) & low_mask(width);
}

std::uint64_t sign_extend(std::uint64_t bits, int from_width, int to_width) {
  check_width(from_width);
  check_width(to_width);
  if (to_width < from_width)
    throw std::invalid_argument("to_width must be >= from_width");
  bits &= low_mask(from_width);
  const std::uint64_t sign_bit = std::uint64_t{1} << (from_width - 1);
  if (bits & sign_bit)
    bits |= low_mask(to_width) & ~low_mask(from_width);
  return bits;
}

AddResult add_with_flags(std::uint64_t a, std::uint64_t b, int width,
                         bool carry_in) {
  check_width(width);
  const std::uint64_t mask = low_mask(width);
  a &= mask;
  b &= mask;

  // Bitwise ripple so carry-out works uniformly, including width == 64.
  std::uint64_t sum = 0;
  bool carry = carry_in;
  bool carry_into_msb = false;
  for (int i = 0; i < width; ++i) {
    const bool ai = (a >> i) & 1u;
    const bool bi = (b >> i) & 1u;
    const bool s = ai ^ bi ^ carry;
    if (i == width - 1) carry_into_msb = carry;
    carry = (ai && bi) || (ai && carry) || (bi && carry);
    if (s) sum |= std::uint64_t{1} << i;
  }

  AddResult r;
  r.bits = sum;
  r.carry_out = carry;
  // Signed overflow iff carry into MSB differs from carry out of MSB.
  r.signed_overflow = carry_into_msb != carry;
  r.zero = sum == 0;
  r.negative = (sum >> (width - 1)) & 1u;
  return r;
}

AddResult sub_with_flags(std::uint64_t a, std::uint64_t b, int width) {
  // a - b == a + ~b + 1 at fixed width.
  return add_with_flags(a, ~b & low_mask(width), width, /*carry_in=*/true);
}

}  // namespace pdc::machine
