#include "pdc/machine/logic.hpp"

#include <algorithm>

namespace pdc::machine {

std::string_view gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "INPUT";
    case GateKind::kConstant: return "CONST";
    case GateKind::kNot: return "NOT";
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kXor: return "XOR";
    case GateKind::kNand: return "NAND";
    case GateKind::kNor: return "NOR";
  }
  return "?";
}

void Circuit::check_wire(Wire w) const {
  if (w.id >= kinds_.size()) throw std::invalid_argument("unknown wire");
}

Wire Circuit::input(std::string name) {
  const Wire w{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(GateKind::kInput);
  in0_.push_back(0);
  in1_.push_back(0);
  const_values_.push_back(false);
  inputs_.push_back(w.id);
  input_names_.push_back(std::move(name));
  return w;
}

Wire Circuit::constant(bool value) {
  const Wire w{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(GateKind::kConstant);
  in0_.push_back(0);
  in1_.push_back(0);
  const_values_.push_back(value);
  return w;
}

Wire Circuit::add_gate(GateKind kind, Wire a, Wire b) {
  check_wire(a);
  if (kind != GateKind::kNot) check_wire(b);
  const Wire w{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(kind);
  in0_.push_back(a.id);
  in1_.push_back(kind == GateKind::kNot ? a.id : b.id);
  const_values_.push_back(false);
  return w;
}

Wire Circuit::not_gate(Wire a) { return add_gate(GateKind::kNot, a, a); }
Wire Circuit::and_gate(Wire a, Wire b) { return add_gate(GateKind::kAnd, a, b); }
Wire Circuit::or_gate(Wire a, Wire b) { return add_gate(GateKind::kOr, a, b); }
Wire Circuit::xor_gate(Wire a, Wire b) { return add_gate(GateKind::kXor, a, b); }
Wire Circuit::nand_gate(Wire a, Wire b) {
  return add_gate(GateKind::kNand, a, b);
}
Wire Circuit::nor_gate(Wire a, Wire b) { return add_gate(GateKind::kNor, a, b); }

std::size_t Circuit::gate_count() const {
  std::size_t n = 0;
  for (auto k : kinds_)
    if (k != GateKind::kInput && k != GateKind::kConstant) ++n;
  return n;
}

int Circuit::depth(Wire w) const {
  check_wire(w);
  std::vector<int> d(kinds_.size(), 0);
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    switch (kinds_[i]) {
      case GateKind::kInput:
      case GateKind::kConstant:
        d[i] = 0;
        break;
      case GateKind::kNot:
        d[i] = d[in0_[i]] + 1;
        break;
      default:
        d[i] = std::max(d[in0_[i]], d[in1_[i]]) + 1;
    }
  }
  return d[w.id];
}

std::vector<bool> Circuit::evaluate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size())
    throw std::invalid_argument("wrong number of circuit inputs");
  std::vector<bool> v(kinds_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    switch (kinds_[i]) {
      case GateKind::kInput:
        v[i] = input_values[next_input++];
        break;
      case GateKind::kConstant:
        v[i] = const_values_[i];
        break;
      case GateKind::kNot:
        v[i] = !v[in0_[i]];
        break;
      case GateKind::kAnd:
        v[i] = v[in0_[i]] && v[in1_[i]];
        break;
      case GateKind::kOr:
        v[i] = v[in0_[i]] || v[in1_[i]];
        break;
      case GateKind::kXor:
        v[i] = v[in0_[i]] != v[in1_[i]];
        break;
      case GateKind::kNand:
        v[i] = !(v[in0_[i]] && v[in1_[i]]);
        break;
      case GateKind::kNor:
        v[i] = !(v[in0_[i]] || v[in1_[i]]);
        break;
    }
  }
  return v;
}

bool Circuit::evaluate_wire(Wire w, const std::vector<bool>& inputs) const {
  check_wire(w);
  return evaluate(inputs)[w.id];
}

Bus input_bus(Circuit& c, const std::string& prefix, int n) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bus.push_back(c.input(prefix + std::to_string(i)));
  return bus;
}

std::uint64_t read_bus(const Bus& bus, const std::vector<bool>& values) {
  if (bus.size() > 64) throw std::invalid_argument("bus wider than 64 bits");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (values[bus[i].id]) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace pdc::machine
