#pragma once
// Binary data representation (CS31 "Data Representation" lab):
// base conversion, two's complement encode/decode at arbitrary width,
// sign extension, and width-limited arithmetic with carry/overflow flags.

#include <cstdint>
#include <string>
#include <string_view>

namespace pdc::machine {

/// Maximum representable width for the fixed-width helpers below.
inline constexpr int kMaxWidth = 64;

/// Render the low `width` bits of `value` as a binary string, MSB first.
/// e.g. to_binary(10, 8) == "00001010".
[[nodiscard]] std::string to_binary(std::uint64_t value, int width);

/// Render the low `width` bits (width must be a multiple of 4) as lowercase
/// hex without a prefix. e.g. to_hex(255, 16) == "00ff".
[[nodiscard]] std::string to_hex(std::uint64_t value, int width);

/// Parse a binary string ("1010" or "0b1010"); throws std::invalid_argument
/// on bad characters, empty input, or more than 64 digits.
[[nodiscard]] std::uint64_t parse_binary(std::string_view text);

/// Parse a hex string ("ff", "0xff", upper or lower case); throws
/// std::invalid_argument on bad input.
[[nodiscard]] std::uint64_t parse_hex(std::string_view text);

/// Two's complement interpretation of the low `width` bits of `bits`.
/// decode_twos_complement(0b1111, 4) == -1.
[[nodiscard]] std::int64_t decode_twos_complement(std::uint64_t bits,
                                                  int width);

/// Encode `value` as a `width`-bit two's complement pattern. Throws
/// std::out_of_range if `value` is not representable in `width` bits.
[[nodiscard]] std::uint64_t encode_twos_complement(std::int64_t value,
                                                   int width);

/// True iff signed `value` fits in `width`-bit two's complement.
[[nodiscard]] bool fits_twos_complement(std::int64_t value, int width);

/// Smallest/largest signed values representable in `width` bits.
[[nodiscard]] std::int64_t min_signed(int width);
[[nodiscard]] std::int64_t max_signed(int width);

/// Sign-extend the low `from_width` bits of `bits` to `to_width` bits.
[[nodiscard]] std::uint64_t sign_extend(std::uint64_t bits, int from_width,
                                        int to_width);

/// Result of width-limited binary addition, exposing the condition codes the
/// CS31 lab asks students to derive by hand.
struct AddResult {
  std::uint64_t bits = 0;       ///< low `width` bits of the sum
  bool carry_out = false;       ///< unsigned overflow
  bool signed_overflow = false; ///< two's complement overflow
  bool zero = false;            ///< result == 0
  bool negative = false;        ///< sign bit of result
};

/// Add the low `width` bits of a and b (plus optional carry-in), reporting
/// flags exactly as an ALU of that width would.
[[nodiscard]] AddResult add_with_flags(std::uint64_t a, std::uint64_t b,
                                       int width, bool carry_in = false);

/// Subtract via two's complement (a + ~b + 1) with the same flag semantics.
[[nodiscard]] AddResult sub_with_flags(std::uint64_t a, std::uint64_t b,
                                       int width);

/// Mask selecting the low `width` bits.
[[nodiscard]] std::uint64_t low_mask(int width);

}  // namespace pdc::machine
