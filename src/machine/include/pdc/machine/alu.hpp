#pragma once
// Gate-level arithmetic building blocks and an n-bit ALU, composed from the
// Circuit primitives exactly the way the CS31 lab has students wire them:
// half adder -> full adder -> ripple-carry adder -> op-mux'd ALU.

#include <cstdint>

#include "pdc/machine/logic.hpp"

namespace pdc::machine {

/// sum/carry outputs of a 1-bit adder stage.
struct AdderBit {
  Wire sum;
  Wire carry;
};

/// Half adder: sum = a XOR b, carry = a AND b. (2 gates)
[[nodiscard]] AdderBit half_adder(Circuit& c, Wire a, Wire b);

/// Full adder from two half adders plus an OR. (5 gates)
[[nodiscard]] AdderBit full_adder(Circuit& c, Wire a, Wire b, Wire carry_in);

/// Result buses of an n-bit ripple-carry adder.
struct AdderResult {
  Bus sum;        ///< n bits
  Wire carry_out; ///< unsigned overflow
  Wire overflow;  ///< signed (two's complement) overflow
};

/// n-bit ripple-carry adder over little-endian buses `a` and `b`
/// (equal width required) with explicit carry-in wire.
[[nodiscard]] AdderResult ripple_carry_adder(Circuit& c, const Bus& a,
                                             const Bus& b, Wire carry_in);

/// Operations supported by the lab ALU. Encoded on 3 select bits.
enum class AluOp : std::uint8_t {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kNor = 5,
  kPassA = 6,
  kLess = 7,  ///< set-less-than (signed): result = (a < b) ? 1 : 0
};

/// Output buses/flags of the constructed ALU.
struct AluOutputs {
  Bus result;      ///< n bits
  Wire zero;       ///< result == 0
  Wire negative;   ///< MSB of result
  Wire carry_out;  ///< from the adder (meaningful for add/sub)
  Wire overflow;   ///< signed overflow (meaningful for add/sub)
};

/// Gate-level n-bit ALU.
///
/// Inputs: operand buses `a`, `b` (width n) and a 3-wire op-select bus
/// `op` (little-endian, values matching AluOp). Every operation is computed
/// and the select bits mux the result, mirroring the single-cycle datapath
/// presented in lecture.
[[nodiscard]] AluOutputs build_alu(Circuit& c, const Bus& a, const Bus& b,
                                   const Bus& op);

/// Software oracle for the gate-level ALU: computes what an n-bit ALU must
/// produce for `op` on the low n bits of a and b. Used by tests/benches to
/// cross-check the circuit against arithmetic done natively.
[[nodiscard]] std::uint64_t alu_reference(AluOp op, std::uint64_t a,
                                          std::uint64_t b, int width);

}  // namespace pdc::machine
