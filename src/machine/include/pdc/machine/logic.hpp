#pragma once
// Gate-level digital logic (CS31 "Building an ALU" lab): a combinational
// circuit is a DAG of gates over boolean wires; evaluation is topological,
// and propagation delay is the longest gate path.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdc::machine {

/// Handle to a boolean wire inside a Circuit.
struct Wire {
  std::uint32_t id = 0;
  bool operator==(const Wire&) const = default;
};

enum class GateKind : std::uint8_t {
  kInput,     ///< external input wire
  kConstant,  ///< constant 0/1
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
};

[[nodiscard]] std::string_view gate_name(GateKind kind);

/// A combinational circuit built incrementally. Gates may only reference
/// wires created earlier, so the wire order is already topological and a
/// single forward pass evaluates the whole circuit.
class Circuit {
 public:
  /// Create a named external input.
  Wire input(std::string name);
  /// Create a constant wire.
  Wire constant(bool value);

  Wire not_gate(Wire a);
  Wire and_gate(Wire a, Wire b);
  Wire or_gate(Wire a, Wire b);
  Wire xor_gate(Wire a, Wire b);
  Wire nand_gate(Wire a, Wire b);
  Wire nor_gate(Wire a, Wire b);

  /// Number of logic gates (excludes inputs and constants).
  [[nodiscard]] std::size_t gate_count() const;
  /// Total wires, including inputs and constants.
  [[nodiscard]] std::size_t wire_count() const { return kinds_.size(); }
  /// Longest path measured in gates from any input/constant to `w`
  /// (unit-delay propagation model).
  [[nodiscard]] int depth(Wire w) const;
  /// Number of declared external inputs.
  [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }

  /// Evaluate every wire given input values in declaration order; throws
  /// std::invalid_argument if `input_values.size() != input_count()`.
  /// Returns per-wire values indexed by Wire::id.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& input_values) const;

  /// Convenience: evaluate and read one output wire.
  [[nodiscard]] bool evaluate_wire(Wire w,
                                   const std::vector<bool>& inputs) const;

 private:
  Wire add_gate(GateKind kind, Wire a, Wire b);
  void check_wire(Wire w) const;

  std::vector<GateKind> kinds_;
  std::vector<std::uint32_t> in0_, in1_;  // operand wire ids (unused -> 0)
  std::vector<bool> const_values_;        // parallel; meaningful for kConstant
  std::vector<std::uint32_t> inputs_;     // wire ids of external inputs
  std::vector<std::string> input_names_;
};

/// A group of wires interpreted as an unsigned little-endian bus
/// (bit 0 = least significant).
using Bus = std::vector<Wire>;

/// Build an n-bit bus of external inputs named `prefix0..prefix{n-1}`.
[[nodiscard]] Bus input_bus(Circuit& c, const std::string& prefix, int n);

/// Read a bus from an evaluation result as an unsigned integer.
[[nodiscard]] std::uint64_t read_bus(const Bus& bus,
                                     const std::vector<bool>& values);

}  // namespace pdc::machine
