#pragma once
// Dynamic bit vector with set operations — the CS31 "bit vectors" lab:
// represent a set of small integers as packed bits and implement the set
// algebra with bit-wise operators.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pdc::machine {

/// Fixed-universe set of integers [0, size) backed by packed 64-bit words.
class BitVector {
 public:
  BitVector() = default;
  /// All bits cleared.
  explicit BitVector(std::size_t size);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Value of bit `i`; throws std::out_of_range past the end.
  [[nodiscard]] bool test(std::size_t i) const;
  void set(std::size_t i);
  void reset(std::size_t i);
  void flip(std::size_t i);
  /// Set bit i to `value`.
  void assign(std::size_t i, bool value);

  void set_all();
  void reset_all();

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const { return count() > 0; }
  [[nodiscard]] bool none() const { return count() == 0; }

  /// Index of the lowest set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const;
  /// Index of the lowest set bit strictly after `i`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const;

  /// Set algebra. Operands must have equal size (std::invalid_argument).
  BitVector& operator&=(const BitVector& o);
  BitVector& operator|=(const BitVector& o);
  BitVector& operator^=(const BitVector& o);
  /// Complement within the universe [0, size).
  [[nodiscard]] BitVector operator~() const;

  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& o) const = default;

  /// True iff every element of *this is also in `o` (subset test).
  [[nodiscard]] bool is_subset_of(const BitVector& o) const;

  /// "10110..." MSB-last rendering (bit 0 first), handy in tests.
  [[nodiscard]] std::string to_string() const;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

 private:
  [[nodiscard]] std::size_t words() const { return data_.size(); }
  void clear_padding();
  void check_same_size(const BitVector& o) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace pdc::machine
