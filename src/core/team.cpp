#include "pdc/core/team.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdc/core/team_pool.hpp"
#include "pdc/obs/obs.hpp"

namespace pdc::core {

void TeamContext::barrier() { barrier_->arrive_and_wait(); }

std::pair<std::size_t, std::size_t> TeamContext::block_range(
    std::size_t begin, std::size_t end) const {
  const std::size_t n = end > begin ? end - begin : 0;
  const auto p = static_cast<std::size_t>(size_);
  const auto r = static_cast<std::size_t>(rank_);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  // First `extra` ranks get one extra element.
  const std::size_t lo = begin + r * base + std::min(r, extra);
  const std::size_t hi = lo + base + (r < extra ? 1 : 0);
  return {lo, hi};
}

namespace detail {

void run_team_member(int rank, int size, sync::CyclicBarrier* barrier,
                     const std::function<void(TeamContext&)>& body,
                     std::exception_ptr& error) noexcept {
  try {
    TeamContext ctx(rank, size, barrier);
    body(ctx);
  } catch (const sync::BrokenBarrierError&) {
    // A teammate failed first and broke the barrier out from under our
    // ctx.barrier(); we unwound cleanly and have no error of our own.
  } catch (...) {
    error = std::current_exception();
    // Release teammates blocked (or about to block) in ctx.barrier():
    // this member will never arrive.
    barrier->break_barrier();
  }
}

}  // namespace detail

void Team::run(int threads, const std::function<void(TeamContext&)>& body) {
  run(threads, TeamOptions{}, body);
}

void Team::run(int threads, const TeamOptions& options,
               const std::function<void(TeamContext&)>& body) {
  if (threads < 1) throw std::invalid_argument("team size must be >= 1");

  PDC_TRACE_SCOPE("core.region");
  // Registry references are stable for the process lifetime, so pay the
  // name lookup once, not per region launch.
  static obs::Counter& c_regions = obs::counter("core.regions");
  static obs::Counter& c_pooled = obs::counter("core.regions.pooled");
  static obs::Counter& c_forked = obs::counter("core.regions.forked");
  c_regions.add(1);

  sync::CyclicBarrier barrier(static_cast<std::size_t>(threads));

  if (threads == 1) {
    TeamContext ctx(0, 1, &barrier);
    body(ctx);
    return;
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));

  bool ran_pooled = false;
  if (options.reuse_pool) {
    ran_pooled =
        TeamPool::instance().try_run(threads, body, barrier, errors);
  }
  (ran_pooled ? c_pooled : c_forked).add(1);

  if (!ran_pooled) {
    // Fork-per-region path: one fresh jthread per rank, joined on scope
    // exit — the CS31 teaching model, and the fallback for nested or
    // concurrent regions.
    std::vector<std::jthread> members;
    members.reserve(static_cast<std::size_t>(threads));
    for (int r = 0; r < threads; ++r) {
      members.emplace_back([&, r] {
        detail::run_team_member(r, threads, &barrier, body,
                                errors[static_cast<std::size_t>(r)]);
      });
    }
  }  // join all

  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace pdc::core
