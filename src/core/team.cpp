#include "pdc/core/team.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pdc::core {

void TeamContext::barrier() { barrier_->arrive_and_wait(); }

std::pair<std::size_t, std::size_t> TeamContext::block_range(
    std::size_t begin, std::size_t end) const {
  const std::size_t n = end > begin ? end - begin : 0;
  const auto p = static_cast<std::size_t>(size_);
  const auto r = static_cast<std::size_t>(rank_);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  // First `extra` ranks get one extra element.
  const std::size_t lo = begin + r * base + std::min(r, extra);
  const std::size_t hi = lo + base + (r < extra ? 1 : 0);
  return {lo, hi};
}

void Team::run(int threads, const std::function<void(TeamContext&)>& body) {
  if (threads < 1) throw std::invalid_argument("team size must be >= 1");

  sync::CyclicBarrier barrier(static_cast<std::size_t>(threads));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));

  if (threads == 1) {
    TeamContext ctx(0, 1, &barrier);
    body(ctx);
    return;
  }

  {
    std::vector<std::jthread> members;
    members.reserve(static_cast<std::size_t>(threads));
    for (int r = 0; r < threads; ++r) {
      members.emplace_back([&, r] {
        try {
          TeamContext ctx(r, threads, &barrier);
          body(ctx);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }  // join all

  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace pdc::core
