#include "pdc/core/team_pool.hpp"

#include "pdc/obs/obs.hpp"

namespace pdc::core {

namespace {

// Set while a thread runs any Team region member (see TeamPool::in_region).
thread_local bool tl_in_region = false;

// Brief spin before parking / joining. The container this library targets
// is often oversubscribed (teams larger than the core count), so the spin
// is short and yields: condvar parking is the steady state, the spin only
// catches back-to-back regions on idle hardware.
template <typename Pred>
inline bool spin_until(const Pred& done) {
  for (int i = 0; i < 256; ++i) {
    if (done()) return true;
    if ((i & 15) == 15) std::this_thread::yield();
  }
  return done();
}

}  // namespace

TeamPool& TeamPool::instance() {
  static TeamPool pool;
  return pool;
}

bool TeamPool::in_region() { return tl_in_region; }

TeamPool::~TeamPool() {
  {
    std::lock_guard lk(m_);
    stop_ = true;
  }
  release_cv_.notify_all();
  workers_.clear();  // jthread joins on destruction
}

std::size_t TeamPool::workers_started() const {
  std::lock_guard lk(m_);
  return workers_.size();
}

void TeamPool::ensure_workers(std::size_t needed) {
  // Called with launch_m_ held, before the generation bump: a worker born
  // now must treat the upcoming bump as its first region, so it parks on
  // the *current* generation.
  const std::uint64_t gen = region_word_.load(std::memory_order_relaxed) >>
                            kSizeBits;
  std::lock_guard lk(m_);
  while (workers_.size() < needed) {
    const std::size_t index = workers_.size();
    workers_.emplace_back(
        [this, index, gen] { worker_loop(index, gen); });
  }
}

void TeamPool::worker_loop(std::size_t index, std::uint64_t gen_at_spawn) {
  const int rank = static_cast<int>(index) + 1;
  // Pool workers are long-lived and bounded (kMaxTeam), so label the trace
  // track unconditionally — cheap, and spans land on a stable lane.
  obs::set_thread_label("core.team/" + std::to_string(rank));
  std::uint64_t seen_gen = gen_at_spawn;
  while (true) {
    std::uint64_t word = region_word_.load(std::memory_order_acquire);
    if ((word >> kSizeBits) == seen_gen) {
      const bool released = spin_until([&] {
        word = region_word_.load(std::memory_order_acquire);
        return (word >> kSizeBits) != seen_gen;
      });
      if (!released) {
        std::unique_lock lk(m_);
        release_cv_.wait(lk, [&] {
          word = region_word_.load(std::memory_order_acquire);
          return stop_ || (word >> kSizeBits) != seen_gen;
        });
        if (stop_) return;
      }
    }
    seen_gen = word >> kSizeBits;
    const int size = static_cast<int>(word & kSizeMask);
    if (rank < size) {
      tl_in_region = true;
      detail::run_team_member(rank, size, region_barrier_, *region_body_,
                              (*region_errors_)[static_cast<std::size_t>(rank)]);
      tl_in_region = false;
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lk(m_);
        done_cv_.notify_all();
      }
    }
  }
}

bool TeamPool::try_run(int threads,
                       const std::function<void(TeamContext&)>& body,
                       sync::CyclicBarrier& barrier,
                       std::vector<std::exception_ptr>& errors) {
  if (threads > kMaxTeam) return false;
  // Nested region on this thread: launch_m_ is non-recursive and a worker
  // cannot serve a region while running one, so fork instead.
  if (tl_in_region) return false;
  std::unique_lock launch(launch_m_, std::try_to_lock);
  if (!launch.owns_lock()) return false;  // concurrent region holds the pool

  ensure_workers(static_cast<std::size_t>(threads) - 1);

  region_body_ = &body;
  region_barrier_ = &barrier;
  region_errors_ = &errors;
  remaining_.store(threads - 1, std::memory_order_relaxed);
  {
    // Publish under m_ so a parking worker cannot miss the wakeup between
    // its predicate check and its wait.
    std::lock_guard lk(m_);
    const std::uint64_t gen =
        (region_word_.load(std::memory_order_relaxed) >> kSizeBits) + 1;
    region_word_.store((gen << kSizeBits) |
                           static_cast<std::uint64_t>(threads),
                       std::memory_order_release);
  }
  release_cv_.notify_all();

  // The launcher is rank 0 — the caller's thread does real work instead of
  // blocking for the whole region.
  tl_in_region = true;
  detail::run_team_member(0, threads, &barrier, body, errors[0]);
  tl_in_region = false;

  // Join: all participating workers have checked in once remaining_ == 0.
  const auto joined = [&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  };
  if (!spin_until(joined)) {
    std::unique_lock lk(m_);
    done_cv_.wait(lk, joined);
  }
  return true;
}

}  // namespace pdc::core
