#include "pdc/core/task_group.hpp"

namespace pdc::core {

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::global()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor must not throw; wait() explicitly rethrows for callers.
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  {
    std::lock_guard lk(m_);
    ++pending_;
  }
  pool_->post([this, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard lk(m_);
    if (err && !first_error_) first_error_ = err;
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lk(m_);
  cv_.wait(lk, [&] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

int fork_depth_for_threads(int threads) {
  int depth = 0;
  int capacity = 1;
  while (capacity < threads) {
    capacity *= 2;
    ++depth;
  }
  return depth;
}

}  // namespace pdc::core
