#include "pdc/core/thread_pool.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "pdc/obs/obs.hpp"

namespace pdc::core {

namespace {

obs::Counter& pool_tasks_counter() {
  static obs::Counter& c = obs::counter("core.threadpool.tasks");
  return c;
}

obs::Gauge& pool_depth_gauge() {
  static obs::Gauge& g = obs::gauge("core.threadpool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::post(std::function<void()> fn) {
  {
    std::lock_guard lk(m_);
    if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
    queue_.push_back(std::move(fn));
    pool_tasks_counter().add(1);
    pool_depth_gauge().set(queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(m_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lk(m_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      pool_depth_gauge().set(queue_.size());
      ++active_;
    }
    // A throwing task must not escape into the jthread (std::terminate);
    // park the first exception for wait_idle() to rethrow.
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(m_);
      if (err && !first_error_) first_error_ = err;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdc::core
