#pragma once
// Parallel reduction and prefix scan — the "parallel reduce and scan"
// patterns named in the CS87 topic list, and the CPU stand-in for the CS40
// CUDA lab ("parallel reductions on large arrays").
//
// reduce: per-thread partial fold + sequential combine of P partials.
// scan:   the classic three-phase block scan (local sum, exclusive scan of
//         block sums, local rescan with offset) — work O(n), span O(n/P + P).
//
// Both execute their team on the persistent TeamPool (no thread creation
// per call), with the scan reusing one barrier across its three phases.

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "pdc/core/team.hpp"

namespace pdc::core {

/// Fold `data` with associative `op` starting from `identity`, splitting
/// the input into `threads` contiguous blocks.
template <typename T, typename Op = std::plus<T>>
[[nodiscard]] T parallel_reduce(std::span<const T> data, T identity,
                                int threads, Op op = {}) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (data.empty()) return identity;
  if (threads == 1 || data.size() < 2 * static_cast<std::size_t>(threads)) {
    T acc = identity;
    for (const T& x : data) acc = op(acc, x);
    return acc;
  }

  std::vector<T> partial(static_cast<std::size_t>(threads), identity);
  Team::run(threads, [&](TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, data.size());
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, data[i]);
    partial[static_cast<std::size_t>(ctx.rank())] = acc;
  });

  T acc = identity;
  for (const T& x : partial) acc = op(acc, x);
  return acc;
}

/// Map each element through `transform`, then reduce (parallel version of
/// std::transform_reduce). Used for dot products and norms.
template <typename T, typename R, typename Transform, typename Op = std::plus<R>>
[[nodiscard]] R parallel_transform_reduce(std::span<const T> data, R identity,
                                          int threads, Transform transform,
                                          Op op = {}) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (data.empty()) return identity;
  if (threads == 1 || data.size() < 2 * static_cast<std::size_t>(threads)) {
    R acc = identity;
    for (const T& x : data) acc = op(acc, transform(x));
    return acc;
  }

  std::vector<R> partial(static_cast<std::size_t>(threads), identity);
  Team::run(threads, [&](TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, data.size());
    R acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, transform(data[i]));
    partial[static_cast<std::size_t>(ctx.rank())] = acc;
  });

  R acc = identity;
  for (const R& x : partial) acc = op(acc, x);
  return acc;
}

/// Inclusive prefix scan: out[i] = op(in[0], ..., in[i]).
/// `out` may alias `in`. Three-phase block algorithm.
template <typename T, typename Op = std::plus<T>>
void parallel_inclusive_scan(std::span<const T> in, std::span<T> out,
                             T identity, int threads, Op op = {}) {
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (in.size() != out.size())
    throw std::invalid_argument("scan size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return;

  if (threads == 1 || n < 2 * static_cast<std::size_t>(threads)) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      acc = op(acc, in[i]);
      out[i] = acc;
    }
    return;
  }

  std::vector<T> block_sum(static_cast<std::size_t>(threads), identity);
  // Phase 1: per-block totals.
  Team::run(threads, [&](TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, n);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, in[i]);
    block_sum[static_cast<std::size_t>(ctx.rank())] = acc;
    ctx.barrier();
    // Phase 2 (rank 0): exclusive scan of block sums.
    if (ctx.rank() == 0) {
      T run = identity;
      for (auto& b : block_sum) {
        const T next = op(run, b);
        b = run;
        run = next;
      }
    }
    ctx.barrier();
    // Phase 3: local inclusive rescan with block offset.
    T acc2 = block_sum[static_cast<std::size_t>(ctx.rank())];
    for (std::size_t i = lo; i < hi; ++i) {
      acc2 = op(acc2, in[i]);
      out[i] = acc2;
    }
  });
}

/// Exclusive prefix scan: out[i] = op(in[0], ..., in[i-1]); out[0] =
/// identity. `out` must NOT alias `in` (the shifted read would race).
template <typename T, typename Op = std::plus<T>>
void parallel_exclusive_scan(std::span<const T> in, std::span<T> out,
                             T identity, int threads, Op op = {}) {
  if (in.size() != out.size())
    throw std::invalid_argument("scan size mismatch");
  if (!in.empty() && in.data() == out.data())
    throw std::invalid_argument("exclusive scan cannot run in place");
  const std::size_t n = in.size();
  if (n == 0) return;

  if (threads == 1 || n < 2 * static_cast<std::size_t>(threads)) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc = op(acc, in[i]);
    }
    return;
  }

  std::vector<T> block_sum(static_cast<std::size_t>(threads), identity);
  Team::run(threads, [&](TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, n);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, in[i]);
    block_sum[static_cast<std::size_t>(ctx.rank())] = acc;
    ctx.barrier();
    if (ctx.rank() == 0) {
      T run = identity;
      for (auto& b : block_sum) {
        const T next = op(run, b);
        b = run;
        run = next;
      }
    }
    ctx.barrier();
    T acc2 = block_sum[static_cast<std::size_t>(ctx.rank())];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = acc2;
      acc2 = op(acc2, in[i]);
    }
  });
}

}  // namespace pdc::core
