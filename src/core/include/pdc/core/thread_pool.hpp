#pragma once
// Fixed-size worker pool (Core Guidelines CP.41: minimize thread creation by
// reusing workers). Tasks are type-erased nullary callables; submit()
// returns a future for the result.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pdc::core {

/// A pool of N worker threads draining a shared FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; returns a future for its result.
  /// Throws std::runtime_error if the pool is shutting down.
  template <typename F, typename R = std::invoke_result_t<F&>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Enqueue fire-and-forget work (no future overhead). If `fn` throws,
  /// the exception is captured in the pool (first one wins) and rethrown
  /// by the next wait_idle() — it never escapes into the worker thread.
  void post(std::function<void()> fn);

  /// Block until the queue is empty and every worker is idle; rethrows
  /// the first exception any post()ed task raised since the last call.
  void wait_idle();

  /// Process-wide shared pool sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex m_;
  std::condition_variable cv_;        // queue not empty / stopping
  std::condition_variable idle_cv_;   // all work done
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // first throw from a post()ed task
  std::vector<std::jthread> workers_;
};

}  // namespace pdc::core
