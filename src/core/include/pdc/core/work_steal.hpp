#pragma once
// Chase–Lev work-stealing deque — the load-balancing primitive under
// Schedule::kStealing (parallel_for.hpp) and the stencil engine's
// tile-stealing run_threaded. One owner pushes and pops at the bottom
// (LIFO, cache-warm); any number of thieves steal from the top (FIFO,
// the oldest — typically largest — work first).
//
// The implementation follows Chase & Lev (SPAA '05) as reformulated for
// weak memory by Lê et al. (PPoPP '13), with two deliberate deviations
// that keep it ThreadSanitizer-clean and dependency-free:
//
//  - no standalone std::atomic_thread_fence (TSan does not model
//    fences): the owner/thief handshake on the last element runs on
//    seq_cst loads/stores of `bottom_`/`top_` instead, whose total order
//    gives the same Dekker-style guarantee;
//  - buffer cells are arrays of relaxed 64-bit atomics rather than raw
//    memory, so a thief's read that races an owner's overwrite of a
//    recycled slot is a benign atomic race, not UB. A torn multi-word
//    read can only be observed when the claiming CAS on `top_` fails
//    (see steal()), in which case the value is discarded.
//
// The ring buffer grows geometrically when the owner outruns the
// thieves; retired buffers are kept alive until destruction so a thief
// holding a stale buffer pointer always reads the (immutable) copy of
// the logical index it is about to claim.
//
// Item exactly-once guarantee (what the stress test asserts): every
// push()ed item is returned by exactly one pop() or steal() — `top_` is
// only ever advanced by a successful CAS (thief) or by the owner winning
// the CAS on the final element.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace pdc::core {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque items are copied through atomic words");

 public:
  explicit WorkStealingDeque(std::size_t capacity_hint = 64) {
    std::size_t cap = 8;
    while (cap < capacity_hint) cap *= 2;
    buffers_.push_back(std::make_unique<Buffer>(cap));
    active_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: append at the bottom. Grows the ring when full.
  void push(const T& v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = active_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity())) buf = grow(t, b);
    buf->put(b, v);
    // Release: a thief that acquire-loads the new bottom sees the cell.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: take the most recently pushed item, racing thieves for
  /// the last one. Empty deque -> nullopt.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = active_.load(std::memory_order_relaxed);
    // seq_cst store-then-load pairs with steal()'s load of bottom_: at
    // least one side observes the other's claim on the final element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) return buf->get(b);  // >= 2 items: no thief can reach b
    if (t == b) {
      // Single item: claim it through the same CAS the thieves use.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (won) return buf->get(b);
      return std::nullopt;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty: restore
    return std::nullopt;
  }

  /// Any thread: take the oldest item. nullopt means "empty or lost a
  /// race" — when size() stayed nonzero the caller may retry.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    // Read the cell *before* claiming: a successful CAS proves top_ was
    // still t, which (owner grows instead of overwriting live slots)
    // implies the slot held logical item t throughout the read.
    Buffer* buf = active_.load(std::memory_order_acquire);
    const T v = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;
    return v;
  }

  /// Approximate: exact when no operation is in flight.
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  // Power-of-two ring of multi-word atomic cells, indexed by logical
  // position. Immutable once retired (the owner only writes the active
  // buffer), so stale thief pointers stay readable.
  class Buffer {
   public:
    explicit Buffer(std::size_t cap) : mask_(cap - 1), cells_(cap) {}

    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

    void put(std::int64_t i, const T& v) {
      std::uint64_t w[kWords] = {};
      std::memcpy(w, &v, sizeof(T));
      auto& cell = cells_[static_cast<std::size_t>(i) & mask_];
      for (std::size_t k = 0; k < kWords; ++k)
        cell.w[k].store(w[k], std::memory_order_relaxed);
    }

    [[nodiscard]] T get(std::int64_t i) const {
      const auto& cell = cells_[static_cast<std::size_t>(i) & mask_];
      std::uint64_t w[kWords];
      for (std::size_t k = 0; k < kWords; ++k)
        w[k] = cell.w[k].load(std::memory_order_relaxed);
      T v;
      std::memcpy(&v, w, sizeof(T));
      return v;
    }

   private:
    struct Cell {
      std::array<std::atomic<std::uint64_t>, kWords> w{};
    };
    std::size_t mask_;
    std::vector<Cell> cells_;
  };

  /// Owner only: double the ring, copying the live logical range [t, b).
  Buffer* grow(std::int64_t t, std::int64_t b) {
    Buffer* old = active_.load(std::memory_order_relaxed);
    buffers_.push_back(std::make_unique<Buffer>(2 * old->capacity()));
    Buffer* bigger = buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Release-publish: a thief that sees the new pointer sees the copies.
    active_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> active_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-only; keeps
                                                  // retired rings alive
};

}  // namespace pdc::core
