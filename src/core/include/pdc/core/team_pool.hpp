#pragma once
// Persistent pooled SPMD executor: a process-lifetime set of parked worker
// threads that run Team regions without per-region thread creation.
//
// Protocol (release/join, sense-reversing on a packed epoch word):
//  - The launcher publishes the region (body, barrier, error slots, size),
//    then release-stores a new generation into `region_word_` and wakes the
//    parked workers. Worker i serves rank i+1; the launcher itself runs
//    rank 0 inline, so a P-rank region needs only P-1 pool workers.
//  - Each participating worker runs its member, then decrements
//    `remaining_`; the last decrement wakes the launcher (join).
//  - Workers whose rank >= region size observe only the packed word and
//    re-park, so the launcher may safely publish the next region the
//    moment `remaining_` hits zero.
//
// Workers are started lazily, growing to the largest team size ever
// requested minus one (teams larger than the hardware thread count are
// allowed — the scalability labs deliberately oversubscribe). Nested or
// concurrent regions fall back to Team's fork-per-region path, so the
// pool never self-deadlocks.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/sync/barrier.hpp"

namespace pdc::core {

/// Process-wide pool of parked SPMD workers (see file comment).
class TeamPool {
 public:
  static TeamPool& instance();

  TeamPool(const TeamPool&) = delete;
  TeamPool& operator=(const TeamPool&) = delete;

  /// Execute one region: the caller runs rank 0, parked workers run ranks
  /// 1..threads-1. Returns false without running anything when the pool
  /// cannot serve the region (nested inside another region, a concurrent
  /// launch holds the pool, or the team is too large for the packed
  /// protocol word) — the caller must fork instead.
  ///
  /// `errors` must have `threads` slots; member exceptions land at their
  /// rank's index exactly as on the forked path.
  bool try_run(int threads, const std::function<void(TeamContext&)>& body,
               sync::CyclicBarrier& barrier,
               std::vector<std::exception_ptr>& errors);

  /// Workers started so far (grows lazily with demand).
  [[nodiscard]] std::size_t workers_started() const;

  /// True while the calling thread is inside any Team region (pooled or
  /// forked member, or the launcher running rank 0).
  [[nodiscard]] static bool in_region();

 private:
  TeamPool() = default;
  ~TeamPool();

  // region_word_ layout: [generation : 48 | team size : 16].
  static constexpr std::uint64_t kSizeBits = 16;
  static constexpr std::uint64_t kSizeMask = (1u << kSizeBits) - 1;
  static constexpr int kMaxTeam = static_cast<int>(kSizeMask);

  void ensure_workers(std::size_t needed);
  void worker_loop(std::size_t index, std::uint64_t gen_at_spawn);

  // Serializes launches; try_lock failure = pool busy -> caller forks.
  std::mutex launch_m_;

  // Region descriptor, written by the launcher before the generation bump
  // and read only by participating workers of that generation.
  const std::function<void(TeamContext&)>* region_body_ = nullptr;
  sync::CyclicBarrier* region_barrier_ = nullptr;
  std::vector<std::exception_ptr>* region_errors_ = nullptr;

  std::atomic<std::uint64_t> region_word_{0};
  std::atomic<int> remaining_{0};

  mutable std::mutex m_;            // guards cv sleeps, stop_, workers_
  std::condition_variable release_cv_;  // workers park here
  std::condition_variable done_cv_;     // launcher joins here
  bool stop_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace pdc::core
