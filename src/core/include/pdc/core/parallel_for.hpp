#pragma once
// OpenMP-style parallel loop over an index range, with the three classic
// schedules (static / dynamic / guided) the CS87 programming unit compares.
//
// Semantics mirror `#pragma omp parallel for schedule(...)`: a team of
// `threads` workers executes the loop and joins at the end. Regions run on
// the persistent TeamPool by default (the OpenMP-runtime model: parked
// workers released per region); set `ForOptions::reuse_pool = false` for
// the original fork-one-thread-per-region behavior.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <stdexcept>

#include "pdc/core/team.hpp"
#include "pdc/obs/obs.hpp"

namespace pdc::core {

enum class Schedule {
  kStatic,   ///< contiguous blocks assigned up front
  kDynamic,  ///< fixed-size chunks claimed from a shared counter
  kGuided,   ///< shrinking chunks: max(remaining/2P, chunk)
};

struct ForOptions {
  int threads = 1;
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for dynamic/guided (and the minimum chunk for guided).
  std::size_t chunk = 64;
  /// Execute on the persistent TeamPool (default) or fork per region.
  bool reuse_pool = true;
};

/// Apply `body(i)` for every i in [begin, end). `body` must be safe to call
/// concurrently on distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const ForOptions& opt,
                  Body&& body) {
  if (opt.threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (opt.chunk == 0) throw std::invalid_argument("chunk must be > 0");
  if (begin >= end) return;

  if (opt.threads == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const TeamOptions team_opt{.reuse_pool = opt.reuse_pool};
  switch (opt.schedule) {
    case Schedule::kStatic: {
      Team::run(opt.threads, team_opt, [&](TeamContext& ctx) {
        PDC_TRACE_SCOPE("core.for.block");
        const auto [lo, hi] = ctx.block_range(begin, end);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
      break;
    }
    case Schedule::kDynamic: {
      std::atomic<std::size_t> next{begin};
      Team::run(opt.threads, team_opt, [&](TeamContext&) {
        while (true) {
          const std::size_t lo =
              next.fetch_add(opt.chunk, std::memory_order_relaxed);
          if (lo >= end) return;
          PDC_TRACE_SCOPE("core.for.chunk");
          const std::size_t hi = std::min(end, lo + opt.chunk);
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
      });
      break;
    }
    case Schedule::kGuided: {
      std::atomic<std::size_t> next{begin};
      const std::size_t two_p = 2 * static_cast<std::size_t>(opt.threads);
      Team::run(opt.threads, team_opt, [&](TeamContext&) {
        while (true) {
          // Claim a chunk proportional to the remaining work.
          std::size_t lo = next.load(std::memory_order_relaxed);
          std::size_t take = 0;
          do {
            if (lo >= end) return;
            const std::size_t remaining = end - lo;
            take = std::max(opt.chunk, remaining / two_p);
            take = std::min(take, remaining);
          } while (!next.compare_exchange_weak(lo, lo + take,
                                               std::memory_order_relaxed));
          PDC_TRACE_SCOPE("core.for.chunk");
          for (std::size_t i = lo; i < lo + take; ++i) body(i);
        }
      });
      break;
    }
  }
}

/// Convenience overload: static schedule over `threads` workers.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, int threads,
                  Body&& body) {
  ForOptions opt;
  opt.threads = threads;
  parallel_for(begin, end, opt, std::forward<Body>(body));
}

}  // namespace pdc::core
