#pragma once
// OpenMP-style parallel loop over an index range, with the three classic
// schedules (static / dynamic / guided) the CS87 programming unit
// compares, plus a work-stealing schedule built on per-worker Chase–Lev
// deques (work_steal.hpp) — the runtime's native answer to skewed
// iteration costs.
//
// Semantics mirror `#pragma omp parallel for schedule(...)`: a team of
// `threads` workers executes the loop and joins at the end. Regions run on
// the persistent TeamPool by default (the OpenMP-runtime model: parked
// workers released per region); set `ForOptions::reuse_pool = false` for
// the original fork-one-thread-per-region behavior.
//
// kStealing: every worker is seeded with its static contiguous block as a
// single range in its own deque, then repeatedly pops a range, splits the
// upper half back onto the deque while the range is larger than `chunk`,
// and executes the bottom `chunk`-sized piece. Workers whose deque runs
// dry steal the *oldest* (largest) range from a victim. Uniform loops
// therefore pay only O(log(n/chunk)) deque traffic per worker over the
// static partition, while skewed loops shed their heavy tails to idle
// thieves half a range at a time. Imbalance is visible in the obs
// counters: core.steal_attempts / core.steals / core.splits and the
// per-worker core.for.chunks.r<rank> executed-chunk counts.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/core/work_steal.hpp"
#include "pdc/obs/obs.hpp"

namespace pdc::core {

enum class Schedule {
  kStatic,    ///< contiguous blocks assigned up front
  kDynamic,   ///< fixed-size chunks claimed from a shared counter
  kGuided,    ///< shrinking chunks: max(remaining/2P, chunk)
  kStealing,  ///< static seed + lazy binary splitting via Chase–Lev deques
};

struct ForOptions {
  int threads = 1;
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for dynamic/guided (and the minimum chunk for guided),
  /// and the grain below which stealing stops splitting ranges.
  std::size_t chunk = 64;
  /// Execute on the persistent TeamPool (default) or fork per region.
  bool reuse_pool = true;
};

namespace detail {

/// Half-open index range carried by the stealing deques. Trivially
/// copyable (two words) so the deque can move it through atomic cells.
struct ForRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

}  // namespace detail

/// Apply `body(i)` for every i in [begin, end). `body` must be safe to call
/// concurrently on distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const ForOptions& opt,
                  Body&& body) {
  if (opt.threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (opt.chunk == 0) throw std::invalid_argument("chunk must be > 0");
  if (begin >= end) return;

  if (opt.threads == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const TeamOptions team_opt{.reuse_pool = opt.reuse_pool};
  switch (opt.schedule) {
    case Schedule::kStatic: {
      Team::run(opt.threads, team_opt, [&](TeamContext& ctx) {
        PDC_TRACE_SCOPE("core.for.block");
        const auto [lo, hi] = ctx.block_range(begin, end);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
      break;
    }
    case Schedule::kDynamic: {
      std::atomic<std::size_t> next{begin};
      Team::run(opt.threads, team_opt, [&](TeamContext&) {
        // Claim [lo, min(end, lo+chunk)) by CAS. Unlike a bare
        // fetch_add, the counter never advances past `end`, so ranges
        // ending near SIZE_MAX cannot wrap the counter back into the
        // loop (regression-tested at extreme begin/end).
        std::size_t lo = next.load(std::memory_order_relaxed);
        while (lo < end) {
          const std::size_t hi =
              end - lo > opt.chunk ? lo + opt.chunk : end;
          if (next.compare_exchange_weak(lo, hi,
                                         std::memory_order_relaxed)) {
            PDC_TRACE_SCOPE("core.for.chunk");
            for (std::size_t i = lo; i < hi; ++i) body(i);
            lo = next.load(std::memory_order_relaxed);
          }
          // CAS failure reloaded `lo`; retry from the fresh claim point.
        }
      });
      break;
    }
    case Schedule::kGuided: {
      std::atomic<std::size_t> next{begin};
      const std::size_t two_p = 2 * static_cast<std::size_t>(opt.threads);
      Team::run(opt.threads, team_opt, [&](TeamContext&) {
        while (true) {
          // Claim a chunk proportional to the remaining work.
          std::size_t lo = next.load(std::memory_order_relaxed);
          std::size_t take = 0;
          do {
            if (lo >= end) return;
            const std::size_t remaining = end - lo;
            take = std::max(opt.chunk, remaining / two_p);
            take = std::min(take, remaining);
          } while (!next.compare_exchange_weak(lo, lo + take,
                                               std::memory_order_relaxed));
          PDC_TRACE_SCOPE("core.for.chunk");
          for (std::size_t i = lo; i < lo + take; ++i) body(i);
        }
      });
      break;
    }
    case Schedule::kStealing: {
      static obs::Counter& c_attempts = obs::counter("core.steal_attempts");
      static obs::Counter& c_steals = obs::counter("core.steals");
      static obs::Counter& c_splits = obs::counter("core.splits");
      const auto nthreads = static_cast<std::size_t>(opt.threads);
      // One deque per worker; vector<non-movable> is fine — the count is
      // fixed up front, so no relocation ever happens.
      std::vector<WorkStealingDeque<detail::ForRange>> deques(nthreads);
      Team::run(opt.threads, team_opt, [&](TeamContext& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        auto& mine = deques[me];
        // Per-worker executed-chunk counter: one registry lookup per
        // region, not per chunk.
        obs::Counter& c_chunks =
            obs::counter("core.for.chunks.r" + std::to_string(ctx.rank()));

        // Split off the upper half while the range is coarser than the
        // grain (thieves take the big old halves from the top), then run
        // the bottom piece.
        const auto run_range = [&](detail::ForRange r) {
          while (r.hi - r.lo > opt.chunk) {
            const std::size_t mid = r.lo + (r.hi - r.lo) / 2;
            mine.push({mid, r.hi});
            c_splits.add(1);
            r.hi = mid;
          }
          PDC_TRACE_SCOPE("core.for.chunk");
          for (std::size_t i = r.lo; i < r.hi; ++i) body(i);
          c_chunks.add(1);
        };

        // Seed: this worker's static block, as one range. The barrier
        // makes every seed visible before anyone starts stealing (a
        // thief must not conclude "all empty" against unseeded deques).
        const auto [lo, hi] = ctx.block_range(begin, end);
        if (lo < hi) mine.push({lo, hi});
        ctx.barrier();

        while (true) {
          if (auto r = mine.pop()) {
            run_range(*r);
            continue;
          }
          // Dry: hunt the other deques, oldest range first.
          bool got = false;
          bool contended = false;
          for (std::size_t off = 1; off < nthreads && !got; ++off) {
            auto& victim = deques[(me + off) % nthreads];
            c_attempts.add(1);
            if (auto r = victim.steal()) {
              c_steals.add(1);
              PDC_TRACE_SCOPE("core.for.steal");
              run_range(*r);
              got = true;
            } else if (!victim.empty()) {
              contended = true;  // lost a race on live work: retry sweep
            }
          }
          if (got) continue;
          if (!contended) break;  // every deque observed empty
          std::this_thread::yield();
        }
      });
      break;
    }
  }
}

/// Convenience overload: static schedule over `threads` workers.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, int threads,
                  Body&& body) {
  ForOptions opt;
  opt.threads = threads;
  parallel_for(begin, end, opt, std::forward<Body>(body));
}

}  // namespace pdc::core
