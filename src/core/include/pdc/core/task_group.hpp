#pragma once
// Fork-join helpers (Core Guidelines CP.4: think in terms of tasks).
//
//  - TaskGroup: spawn independent tasks onto a ThreadPool and wait for all
//    of them; exceptions are collected and the first is rethrown at wait().
//  - invoke_parallel: structured two-way fork-join for divide-and-conquer
//    (each fork runs one branch on a fresh thread and the other inline),
//    with a depth budget so recursion spawns O(2^depth) threads at most.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "pdc/core/thread_pool.hpp"

namespace pdc::core {

/// Awaits a dynamic set of independent tasks submitted to a pool.
class TaskGroup {
 public:
  /// Tasks run on `pool` (defaults to the process-global pool).
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Not copyable/movable: tasks capture `this`.
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// `wait()`s if the caller forgot to (std::terminate-safe destruction).
  ~TaskGroup();

  /// Schedule `fn` to run concurrently. Must not be called after wait()
  /// has returned unless more work is intentionally batched.
  void spawn(std::function<void()> fn);

  /// Block until every spawned task has finished; rethrows the first
  /// exception any task raised.
  void wait();

 private:
  ThreadPool* pool_;
  std::mutex m_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Run `f` and `g` potentially in parallel and return when both are done.
/// `depth_budget` > 0 forks a real thread for `f`; 0 runs both inline.
/// Exceptions propagate (if both throw, `f`'s wins).
template <typename F, typename G>
void invoke_parallel(F&& f, G&& g, int depth_budget) {
  if (depth_budget <= 0) {
    f();
    g();
    return;
  }
  std::exception_ptr f_error;
  {
    std::jthread left([&] {
      try {
        f();
      } catch (...) {
        f_error = std::current_exception();
      }
    });
    g();  // g's exception unwinds after the jthread joins
  }
  if (f_error) std::rethrow_exception(f_error);
}

/// Depth budget that bounds forked threads to about `threads`:
/// ceil(log2(threads)).
[[nodiscard]] int fork_depth_for_threads(int threads);

}  // namespace pdc::core
