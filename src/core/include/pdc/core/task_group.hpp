#pragma once
// Fork-join helpers (Core Guidelines CP.4: think in terms of tasks).
//
//  - TaskGroup: spawn independent tasks onto a ThreadPool and wait for all
//    of them; exceptions are collected and the first is rethrown at wait().
//  - invoke_parallel: structured two-way fork-join for divide-and-conquer.
//    One branch is offered to the persistent global ThreadPool and the
//    other runs inline; if no pool worker has picked the offered branch up
//    by the time the inline one finishes, the caller claims and runs it
//    itself (help-first), so recursion never creates threads and never
//    deadlocks on a saturated pool. The depth budget bounds how deep the
//    recursion keeps offering work to the pool.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "pdc/core/thread_pool.hpp"

namespace pdc::core {

/// Awaits a dynamic set of independent tasks submitted to a pool.
class TaskGroup {
 public:
  /// Tasks run on `pool` (defaults to the process-global pool).
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Not copyable/movable: tasks capture `this`.
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// `wait()`s if the caller forgot to (std::terminate-safe destruction).
  ~TaskGroup();

  /// Schedule `fn` to run concurrently. Must not be called after wait()
  /// has returned unless more work is intentionally batched.
  void spawn(std::function<void()> fn);

  /// Block until every spawned task has finished; rethrows the first
  /// exception any task raised.
  void wait();

 private:
  ThreadPool* pool_;
  std::mutex m_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Run `f` and `g` potentially in parallel and return when both are done.
/// `depth_budget` > 0 offers `f` to the global pool (running it inline if
/// no worker claims it); 0 runs both inline. Both branches complete before
/// the call returns. Exceptions propagate (if both throw, `f`'s wins).
template <typename F, typename G>
void invoke_parallel(F&& f, G&& g, int depth_budget) {
  if (depth_budget <= 0) {
    f();
    g();
    return;
  }
  // Claim token: exactly one of {pool worker, caller} runs f. The posted
  // closure touches `f` only when it wins the claim, which the caller then
  // waits out — so capturing f by pointer is safe.
  struct Offer {
    std::atomic<bool> claimed{false};
    bool done = false;
    std::exception_ptr error;
    std::mutex m;
    std::condition_variable cv;
  };
  auto offer = std::make_shared<Offer>();
  auto* fp = std::addressof(f);
  try {
    ThreadPool::global().post([offer, fp] {
      if (offer->claimed.exchange(true)) return;  // caller already ran f
      std::exception_ptr err;
      try {
        (*fp)();
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lk(offer->m);
      offer->error = err;
      offer->done = true;
      offer->cv.notify_all();
    });
  } catch (...) {
    // Pool shutting down: degrade to sequential.
    f();
    g();
    return;
  }

  std::exception_ptr g_error;
  try {
    g();
  } catch (...) {
    g_error = std::current_exception();
  }

  std::exception_ptr f_error;
  if (!offer->claimed.exchange(true)) {
    try {
      f();  // help-first: nobody started f, run it here
    } catch (...) {
      f_error = std::current_exception();
    }
  } else {
    std::unique_lock lk(offer->m);
    offer->cv.wait(lk, [&] { return offer->done; });
    f_error = offer->error;
  }
  if (f_error) std::rethrow_exception(f_error);
  if (g_error) std::rethrow_exception(g_error);
}

/// Depth budget that bounds forked threads to about `threads`:
/// ceil(log2(threads)).
[[nodiscard]] int fork_depth_for_threads(int threads);

}  // namespace pdc::core
