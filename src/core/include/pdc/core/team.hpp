#pragma once
// SPMD team: the Pthreads programming model taught in CS31 — spawn P
// threads running the same function on different ranks, with a per-team
// reusable barrier. The threaded Game of Life engine and the OpenMP-style
// loop constructs are built on this.

#include <cstddef>
#include <functional>

#include "pdc/sync/barrier.hpp"

namespace pdc::core {

class Team;

/// Per-thread view handed to the SPMD body.
class TeamContext {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Synchronize all team members (reusable across phases).
  void barrier();

  /// Split [begin, end) into `size()` near-equal contiguous blocks and
  /// return this rank's [block_begin, block_end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t begin, std::size_t end) const;

 private:
  friend class Team;
  TeamContext(int rank, int size, sync::CyclicBarrier* barrier)
      : rank_(rank), size_(size), barrier_(barrier) {}

  int rank_;
  int size_;
  sync::CyclicBarrier* barrier_;
};

/// Fork-join SPMD execution: `Team::run(p, body)` spawns p threads, runs
/// `body(ctx)` on each, and joins them all before returning. Exceptions
/// thrown by any member are rethrown (first one wins) after the join.
class Team {
 public:
  static void run(int threads, const std::function<void(TeamContext&)>& body);
};

}  // namespace pdc::core
