#pragma once
// SPMD team: the Pthreads programming model taught in CS31 — run P
// logical threads executing the same function on different ranks, with a
// per-team reusable barrier. The threaded Game of Life engine and the
// OpenMP-style loop constructs are built on this.
//
// Regions execute on the process-wide persistent TeamPool by default
// (parked workers released per region — no thread creation on the hot
// path); `TeamOptions{.reuse_pool = false}` keeps the original
// fork-one-jthread-per-rank path selectable for the CS31 teaching
// comparison (and bench_team_launch measures the gap).

#include <cstddef>
#include <exception>
#include <functional>

#include "pdc/sync/barrier.hpp"

namespace pdc::core {

class Team;
class TeamPool;
class TeamContext;

namespace detail {
/// Run one member: construct its context, invoke `body`, and on failure
/// record the exception in `error` and break the team barrier so that
/// teammates blocked in ctx.barrier() unwind instead of deadlocking.
/// A sync::BrokenBarrierError raised *by* the barrier (a teammate failed
/// first) is the unwind signal, not this member's own error, and is not
/// recorded. Shared by the pooled, forked, and caller-as-rank-0 paths.
void run_team_member(int rank, int size, sync::CyclicBarrier* barrier,
                     const std::function<void(TeamContext&)>& body,
                     std::exception_ptr& error) noexcept;
}  // namespace detail

/// Per-thread view handed to the SPMD body.
class TeamContext {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Synchronize all team members (reusable across phases). Throws
  /// sync::BrokenBarrierError if a teammate failed and will never arrive;
  /// let it propagate — Team::run uses it to unwind the region cleanly.
  void barrier();

  /// Split [begin, end) into `size()` near-equal contiguous blocks and
  /// return this rank's [block_begin, block_end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t begin, std::size_t end) const;

 private:
  friend class Team;
  friend void detail::run_team_member(
      int rank, int size, sync::CyclicBarrier* barrier,
      const std::function<void(TeamContext&)>& body,
      std::exception_ptr& error) noexcept;
  TeamContext(int rank, int size, sync::CyclicBarrier* barrier)
      : rank_(rank), size_(size), barrier_(barrier) {}

  int rank_;
  int size_;
  sync::CyclicBarrier* barrier_;
};

/// How a Team region is launched.
struct TeamOptions {
  /// true (default): release parked TeamPool workers for the region.
  /// false: fork one fresh jthread per rank and join them — the original
  /// CS31 model, kept for the fork-vs-pool teaching comparison.
  bool reuse_pool = true;
};

/// SPMD execution: `Team::run(p, body)` runs `body(ctx)` on p ranks and
/// returns when all of them are done. Exceptions thrown by any member are
/// rethrown (lowest failing rank wins) after the region completes; members
/// blocked in ctx.barrier() when a teammate throws are released via the
/// broken-barrier protocol rather than deadlocking.
class Team {
 public:
  static void run(int threads, const std::function<void(TeamContext&)>& body);
  static void run(int threads, const TeamOptions& options,
                  const std::function<void(TeamContext&)>& body);
};

}  // namespace pdc::core
