#pragma once
// Pipeline parallelism (CS87 "parallel programming patterns"): a chain of
// stages, each running on its own thread, connected by bounded buffers.
// Throughput approaches 1/max(stage time) instead of 1/sum(stage time);
// FIFO buffers and one thread per stage preserve item order.

#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdc/sync/bounded_buffer.hpp"

namespace pdc::core {

/// A linear pipeline over items of type T.
template <typename T>
class Pipeline {
 public:
  using Stage = std::function<T(T)>;

  /// `stages` run in order on every item; `buffer_capacity` bounds the
  /// queue between consecutive stages (backpressure).
  explicit Pipeline(std::vector<Stage> stages,
                    std::size_t buffer_capacity = 16)
      : stages_(std::move(stages)), capacity_(buffer_capacity) {
    if (stages_.empty()) throw std::invalid_argument("need >= 1 stage");
    if (capacity_ == 0) throw std::invalid_argument("capacity must be > 0");
  }

  /// Push all `inputs` through the pipeline; returns the outputs in input
  /// order. Rebuilds the stage threads per call (fork-join semantics).
  std::vector<T> run(const std::vector<T>& inputs) {
    const std::size_t n_stages = stages_.size();
    // buffers[i] connects stage i-1 -> stage i; buffers[0] is the source,
    // buffers[n_stages] the sink.
    std::vector<std::unique_ptr<sync::BoundedBuffer<T>>> buffers;
    for (std::size_t i = 0; i <= n_stages; ++i)
      buffers.push_back(
          std::make_unique<sync::BoundedBuffer<T>>(capacity_));

    std::vector<T> outputs;
    outputs.reserve(inputs.size());
    {
      std::vector<std::jthread> workers;
      for (std::size_t s = 0; s < n_stages; ++s) {
        workers.emplace_back([&, s] {
          auto& in = *buffers[s];
          auto& out = *buffers[s + 1];
          while (auto item = in.pop()) (void)out.push(stages_[s](*item));
          out.close();
        });
      }
      std::jthread sink([&] {
        while (auto item = buffers[n_stages]->pop())
          outputs.push_back(std::move(*item));
      });
      for (const T& item : inputs) (void)buffers[0]->push(item);
      buffers[0]->close();
    }  // join all
    return outputs;
  }

  [[nodiscard]] std::size_t stages() const { return stages_.size(); }

 private:
  std::vector<Stage> stages_;
  std::size_t capacity_;
};

}  // namespace pdc::core
