#include "pdc/life/packed_grid.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace pdc::life {

namespace {

constexpr std::size_t kBits = 64;

/// Column tile width (words) for the cache-blocked sweep: 3 source rows +
/// 1 destination row per tile, 4 x 512 x 8 B = 16 KiB — comfortably L1.
constexpr std::size_t kTileWords = 512;

/// s = a + b (bit), c = carry.
inline void half_add(std::uint64_t a, std::uint64_t b, std::uint64_t& s,
                     std::uint64_t& c) {
  s = a ^ b;
  c = a & b;
}

/// s = a + b + cin (bit), c = carry.
inline void full_add(std::uint64_t a, std::uint64_t b, std::uint64_t cin,
                     std::uint64_t& s, std::uint64_t& c) {
  const std::uint64_t t = a ^ b;
  s = t ^ cin;
  c = (a & b) | (cin & t);
}

}  // namespace

PackedGrid::PackedGrid(std::size_t rows, std::size_t cols, Boundary boundary)
    : rows_(rows),
      cols_(cols),
      words_((cols + kBits - 1) / kBits),
      boundary_(boundary),
      tail_mask_(cols % kBits == 0 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << (cols % kBits)) - 1),
      data_((rows + 2) * (words_ + 2), 0) {
  if (rows_ == 0 || cols_ == 0)
    throw std::invalid_argument("grid dimensions must be > 0");
}

PackedGrid::PackedGrid(const Grid& grid)
    : PackedGrid(grid.rows(), grid.cols(), grid.boundary()) {
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint8_t* src = grid.row_data(r);
    std::uint64_t* dst = row_words(r);
    for (std::size_t c = 0; c < cols_; ++c)
      dst[c / kBits] |= static_cast<std::uint64_t>(src[c] & 1) << (c % kBits);
  }
}

Grid PackedGrid::unpack() const {
  Grid out(rows_, cols_, boundary_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t* src = row_words(r);
    std::uint8_t* dst = out.row_data(r);
    for (std::size_t c = 0; c < cols_; ++c)
      dst[c] = static_cast<std::uint8_t>((src[c / kBits] >> (c % kBits)) & 1);
  }
  return out;
}

bool PackedGrid::get(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("grid index");
  return ((row_words(r)[c / kBits] >> (c % kBits)) & 1) != 0;
}

void PackedGrid::set(std::size_t r, std::size_t c, bool alive) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("grid index");
  const std::uint64_t bit = std::uint64_t{1} << (c % kBits);
  std::uint64_t& word = row_words(r)[c / kBits];
  word = alive ? (word | bit) : (word & ~bit);
}

std::size_t PackedGrid::population() const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t* w = row_words(r);
    for (std::size_t i = 0; i + 1 < words_; ++i)
      n += static_cast<std::size_t>(std::popcount(w[i]));
    n += static_cast<std::size_t>(std::popcount(w[words_ - 1] & tail_mask_));
  }
  return n;
}

const std::uint64_t* PackedGrid::row_words(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("grid row");
  return padded_row(r + 1);
}

std::uint64_t* PackedGrid::row_words(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("grid row");
  return padded_row(r + 1);
}

std::uint64_t* PackedGrid::halo_above_words() { return padded_row(0); }
std::uint64_t* PackedGrid::halo_below_words() { return padded_row(rows_ + 1); }

void PackedGrid::apply_ghosts(std::uint64_t* payload) {
  // West wrap: last cell of the row into bit 63 of the left halo word.
  const std::size_t rem = cols_ % kBits;
  const std::uint64_t last = payload[words_ - 1] & tail_mask_;
  const std::uint64_t first_cell = payload[0] & 1;
  const std::uint64_t last_cell =
      (last >> ((rem == 0 ? kBits : rem) - 1)) & 1;
  payload[-1] = last_cell << (kBits - 1);
  // East wrap: first cell of the row into the bit the `>> 1` shift of the
  // last payload word consumes — the first padding ("ghost") bit when cols
  // is not word-aligned, bit 0 of the right halo word otherwise.
  if (rem == 0) {
    payload[words_] = first_cell;
  } else {
    payload[words_ - 1] = last | (first_cell << rem);
    payload[words_] = 0;
  }
}

void PackedGrid::sync_row_ghosts(std::size_t row_begin, std::size_t row_end) {
  if (boundary_ != Boundary::kTorus) return;
  for (std::size_t r = row_begin; r < row_end; ++r)
    apply_ghosts(row_words(r));
}

void PackedGrid::sync_halo_row_ghosts() {
  if (boundary_ != Boundary::kTorus) return;
  apply_ghosts(halo_above_words());
  apply_ghosts(halo_below_words());
}

void PackedGrid::sync_halo_rows() {
  if (boundary_ != Boundary::kTorus) return;
  // Whole padded rows (halo words and ghost bits included).
  std::copy_n(padded_row(rows_) - 1, stride(), padded_row(0) - 1);
  std::copy_n(padded_row(1) - 1, stride(), padded_row(rows_ + 1) - 1);
}

void PackedGrid::step_row_words(const std::uint64_t* up,
                                const std::uint64_t* mid,
                                const std::uint64_t* down, std::uint64_t* out,
                                std::size_t nwords, std::uint64_t tail_mask) {
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t u = up[w], m = mid[w], d = down[w];
    // The 8 neighbor planes: each row shifted toward west (cell c-1 lands
    // in lane c) and east, with the cross-word bit from the adjacent word
    // (or halo word / ghost bit at the row ends).
    const std::uint64_t uw = (u << 1) | (up[w - 1] >> (kBits - 1));
    const std::uint64_t ue = (u >> 1) | (up[w + 1] << (kBits - 1));
    const std::uint64_t mw = (m << 1) | (mid[w - 1] >> (kBits - 1));
    const std::uint64_t me = (m >> 1) | (mid[w + 1] << (kBits - 1));
    const std::uint64_t dw = (d << 1) | (down[w - 1] >> (kBits - 1));
    const std::uint64_t de = (d >> 1) | (down[w + 1] << (kBits - 1));

    // Carry-save adder tree: 8 one-bit inputs -> 4-bit count per lane.
    std::uint64_t s0, c0, s1, c1, s2, c2;
    full_add(uw, u, ue, s0, c0);
    full_add(dw, d, de, s1, c1);
    half_add(mw, me, s2, c2);
    std::uint64_t n0, carry2;
    full_add(s0, s1, s2, n0, carry2);  // ones
    std::uint64_t t2, c4a, n1, c4b;
    full_add(c0, c1, c2, t2, c4a);     // twos
    half_add(t2, carry2, n1, c4b);
    std::uint64_t n2, n3;
    half_add(c4a, c4b, n2, n3);        // fours, eights

    // B3/S23: count==3 always lives, count==2 lives iff already alive.
    out[w] = n1 & ~n2 & ~n3 & (n0 | m);
  }
  out[nwords - 1] &= tail_mask;
}

void PackedGrid::step_rows_into(PackedGrid& dst, std::size_t row_begin,
                                std::size_t row_end) const {
  if (dst.rows_ != rows_ || dst.cols_ != cols_)
    throw std::invalid_argument("destination grid shape mismatch");
  for (std::size_t w0 = 0; w0 < words_; w0 += kTileWords) {
    const std::size_t w1 = std::min(words_, w0 + kTileWords);
    const std::uint64_t mask = w1 == words_ ? tail_mask_ : ~std::uint64_t{0};
    for (std::size_t r = row_begin; r < row_end; ++r) {
      step_row_words(padded_row(r) + w0, padded_row(r + 1) + w0,
                     padded_row(r + 2) + w0, dst.padded_row(r + 1) + w0,
                     w1 - w0, mask);
    }
  }
}

bool PackedGrid::step_tile_into(PackedGrid& dst, std::size_t row_begin,
                                std::size_t row_end, std::size_t word_begin,
                                std::size_t word_end) const {
  if (dst.rows_ != rows_ || dst.cols_ != cols_)
    throw std::invalid_argument("destination grid shape mismatch");
  bool changed = false;
  for (std::size_t w0 = word_begin; w0 < word_end; w0 += kTileWords) {
    const std::size_t w1 = std::min(word_end, w0 + kTileWords);
    // Ghost bits beyond cols live in the last payload word; mask them out
    // of both the kernel output and the changed comparison.
    const std::uint64_t mask = w1 == words_ ? tail_mask_ : ~std::uint64_t{0};
    const std::size_t n = w1 - w0;
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::uint64_t* src = padded_row(r + 1) + w0;
      std::uint64_t* out = dst.padded_row(r + 1) + w0;
      step_row_words(padded_row(r) + w0, src, padded_row(r + 2) + w0, out, n,
                     mask);
      if (!changed) {
        std::uint64_t diff = (src[n - 1] ^ out[n - 1]) & mask;
        for (std::size_t i = 0; i + 1 < n; ++i) diff |= src[i] ^ out[i];
        changed = diff != 0;
      }
    }
  }
  return changed;
}

bool PackedGrid::operator==(const PackedGrid& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ ||
      boundary_ != other.boundary_)
    return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t* a = row_words(r);
    const std::uint64_t* b = other.row_words(r);
    for (std::size_t i = 0; i + 1 < words_; ++i)
      if (a[i] != b[i]) return false;
    if (((a[words_ - 1] ^ b[words_ - 1]) & tail_mask_) != 0) return false;
  }
  return true;
}

}  // namespace pdc::life
