#include "pdc/life/grid.hpp"

#include <sstream>
#include <stdexcept>

namespace pdc::life {

Grid::Grid(std::size_t rows, std::size_t cols, Boundary boundary)
    : rows_(rows), cols_(cols), boundary_(boundary), cells_(rows * cols, 0) {
  if (rows_ == 0 || cols_ == 0)
    throw std::invalid_argument("grid dimensions must be > 0");
}

bool Grid::get(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("grid index");
  return cells_[r * cols_ + c] != 0;
}

void Grid::set(std::size_t r, std::size_t c, bool alive) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("grid index");
  cells_[r * cols_ + c] = alive ? 1 : 0;
}

std::size_t Grid::population() const {
  std::size_t n = 0;
  for (auto c : cells_) n += c;
  return n;
}

int Grid::live_neighbors(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("grid index");
  int count = 0;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      auto rr = static_cast<long>(r) + dr;
      auto cc = static_cast<long>(c) + dc;
      if (boundary_ == Boundary::kTorus) {
        rr = (rr + static_cast<long>(rows_)) % static_cast<long>(rows_);
        cc = (cc + static_cast<long>(cols_)) % static_cast<long>(cols_);
      } else if (rr < 0 || cc < 0 || rr >= static_cast<long>(rows_) ||
                 cc >= static_cast<long>(cols_)) {
        continue;
      }
      count += cells_[static_cast<std::size_t>(rr) * cols_ +
                      static_cast<std::size_t>(cc)];
    }
  }
  return count;
}

bool Grid::next_state(std::size_t r, std::size_t c) const {
  const int n = live_neighbors(r, c);
  const bool alive = get(r, c);
  return alive ? (n == 2 || n == 3) : (n == 3);
}

std::string Grid::to_string() const {
  std::string out;
  out.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c)
      out += cells_[r * cols_ + c] ? 'O' : '.';
    out += '\n';
  }
  return out;
}

const std::uint8_t* Grid::row_data(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("grid row");
  return cells_.data() + r * cols_;
}

std::uint8_t* Grid::row_data(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("grid row");
  return cells_.data() + r * cols_;
}

Grid parse_plaintext(const std::string& text, Boundary boundary) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    width = std::max(width, line.size());
    lines.push_back(line);
  }
  if (lines.empty()) throw std::invalid_argument("empty pattern");

  Grid g(lines.size(), width, boundary);
  for (std::size_t r = 0; r < lines.size(); ++r) {
    for (std::size_t c = 0; c < lines[r].size(); ++c) {
      const char ch = lines[r][c];
      if (ch == 'O' || ch == 'o' || ch == '*') {
        g.set(r, c, true);
      } else if (ch != '.' && ch != ' ') {
        throw std::invalid_argument(std::string("bad pattern character: ") +
                                    ch);
      }
    }
  }
  return g;
}

void stamp(Grid& board, const Grid& pattern, std::size_t r, std::size_t c) {
  if (r + pattern.rows() > board.rows() || c + pattern.cols() > board.cols())
    throw std::out_of_range("pattern does not fit");
  for (std::size_t pr = 0; pr < pattern.rows(); ++pr)
    for (std::size_t pc = 0; pc < pattern.cols(); ++pc)
      board.set(r + pr, c + pc, pattern.get(pr, pc));
}

Grid glider(Boundary boundary) {
  return parse_plaintext(".O.\n..O\nOOO\n", boundary);
}

Grid blinker(Boundary boundary) {
  return parse_plaintext("OOO\n", boundary);
}

Grid block(Boundary boundary) {
  return parse_plaintext("OO\nOO\n", boundary);
}

Grid random_grid(std::size_t rows, std::size_t cols, double density,
                 std::uint64_t seed, Boundary boundary) {
  if (density < 0.0 || density > 1.0)
    throw std::invalid_argument("density must be in [0,1]");
  Grid g(rows, cols, boundary);
  std::uint64_t s = seed ? seed : 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      if (static_cast<double>(s % 10000) < density * 10000.0)
        g.set(r, c, true);
    }
  }
  return g;
}

}  // namespace pdc::life
