#pragma once
// Conway's Game of Life grid — the CS31 flagship lab appears twice in
// Table I: the sequential C version ("Game of Life") and the threaded
// version with a scalability study ("Parallel Game of Life").

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pdc::life {

/// What lies beyond the edge of the board.
enum class Boundary {
  kDead,   ///< outside cells are permanently dead
  kTorus,  ///< the board wraps (the lab's default)
};

class Grid {
 public:
  Grid(std::size_t rows, std::size_t cols,
       Boundary boundary = Boundary::kTorus);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] Boundary boundary() const { return boundary_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool alive);

  /// Number of live cells.
  [[nodiscard]] std::size_t population() const;

  /// Live neighbors of (r, c) under the grid's boundary rule.
  [[nodiscard]] int live_neighbors(std::size_t r, std::size_t c) const;

  /// B3/S23: next state of cell (r, c).
  [[nodiscard]] bool next_state(std::size_t r, std::size_t c) const;

  /// Plaintext rendering: 'O' alive, '.' dead, one row per line.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Grid&) const = default;

  /// Raw row access for the engines (row-major, 1 byte per cell).
  [[nodiscard]] const std::uint8_t* row_data(std::size_t r) const;
  [[nodiscard]] std::uint8_t* row_data(std::size_t r);

 private:
  std::size_t rows_;
  std::size_t cols_;
  Boundary boundary_;
  std::vector<std::uint8_t> cells_;
};

/// Parse a plaintext pattern ('O' or '*' alive, '.' or ' ' dead; rows are
/// lines) into a grid of exactly the pattern's bounding box.
[[nodiscard]] Grid parse_plaintext(const std::string& text,
                                   Boundary boundary = Boundary::kTorus);

/// Stamp `pattern` onto `board` with its top-left corner at (r, c);
/// throws std::out_of_range if it does not fit.
void stamp(Grid& board, const Grid& pattern, std::size_t r, std::size_t c);

/// Classic patterns.
[[nodiscard]] Grid glider(Boundary boundary = Boundary::kTorus);
[[nodiscard]] Grid blinker(Boundary boundary = Boundary::kTorus);
[[nodiscard]] Grid block(Boundary boundary = Boundary::kTorus);

/// Deterministic random board with approximately `density` live fraction.
[[nodiscard]] Grid random_grid(std::size_t rows, std::size_t cols,
                               double density, std::uint64_t seed,
                               Boundary boundary = Boundary::kTorus);

}  // namespace pdc::life
