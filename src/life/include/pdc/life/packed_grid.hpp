#pragma once
// Bit-packed Game of Life board: 64 cells per uint64_t word. This is the
// representation the engines actually run on; the byte `Grid` stays the
// public API and the reference implementation, with conversion at the
// boundaries.
//
// Layout: row-major payload words with one halo word on each side of every
// row and one halo row above and below the board, so the generation kernel
// is completely branch-free — every `word[w - 1]` / `word[w + 1]` and every
// `row - 1` / `row + 1` read lands on valid memory that already holds the
// right bits:
//
//   * left halo word, bit 63  = the row's last cell (torus) or 0 (dead),
//     so `(word << 1) | (halo >> 63)` yields the west-neighbor plane;
//   * right halo word, bit 0  = the row's first cell (torus) or 0, the
//     east wrap when cols is a multiple of 64;
//   * when cols % 64 != 0, the east wrap bit instead lives in the first
//     *padding* bit of the last payload word (the "ghost" bit), so the
//     plain `word >> 1` east shift picks it up; kernel output is masked
//     with tail_mask() so ghosts never leak into the stored board;
//   * the halo rows are whole-row copies of the opposite edge rows (torus)
//     or stay all-zero (dead).
//
// The per-generation kernel (`step_row_words`) counts the 8 neighbors of
// all 64 cells of a word at once with a SWAR carry-save adder tree: bitwise
// half/full adders compress the 8 shifted neighbor planes into a 4-bit
// count per bit lane, and B3/S23 becomes four boolean ops — no per-cell
// loads, branches, or modulo.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdc/life/grid.hpp"

namespace pdc::life {

class PackedGrid {
 public:
  PackedGrid(std::size_t rows, std::size_t cols,
             Boundary boundary = Boundary::kTorus);
  /// Pack a byte grid (same dimensions and boundary rule).
  explicit PackedGrid(const Grid& grid);

  /// Convert back to the public byte representation.
  [[nodiscard]] Grid unpack() const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] Boundary boundary() const { return boundary_; }

  /// Payload words per row: ceil(cols / 64).
  [[nodiscard]] std::size_t words_per_row() const { return words_; }
  /// Valid-bit mask for the last payload word of a row (all ones when
  /// cols % 64 == 0).
  [[nodiscard]] std::uint64_t tail_mask() const { return tail_mask_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool alive);
  [[nodiscard]] std::size_t population() const;

  /// Payload words of logical row r (word 0; the row's halo words sit at
  /// index -1 and words_per_row()).
  [[nodiscard]] const std::uint64_t* row_words(std::size_t r) const;
  [[nodiscard]] std::uint64_t* row_words(std::size_t r);

  /// Payload words of the halo rows above row 0 / below row rows()-1, for
  /// engines (message passing) that fill them from received messages
  /// instead of sync_halo_rows().
  [[nodiscard]] std::uint64_t* halo_above_words();
  [[nodiscard]] std::uint64_t* halo_below_words();

  /// Refresh the column-wrap ghost bits (left/right halo words and the
  /// padding ghost bit) of logical rows [row_begin, row_end). A no-op
  /// under Boundary::kDead. Must run after the rows' payload changed and
  /// before they are read by a step.
  void sync_row_ghosts(std::size_t row_begin, std::size_t row_end);

  /// Refresh the ghost bits of the two halo rows from their own payload
  /// (for halo rows filled by hand rather than by sync_halo_rows()).
  void sync_halo_row_ghosts();

  /// Copy the wrap halo rows from the opposite edge rows (torus; no-op for
  /// dead). Edge rows' ghost bits must already be synced — the copy
  /// carries them along.
  void sync_halo_rows();

  /// One generation: compute rows [row_begin, row_end) of `dst` from this
  /// board. Requires ghosts + halo rows of *this to be in sync; writes only
  /// masked payload words of `dst` (its ghosts need a re-sync afterwards).
  /// Cache-blocked: wide rows are processed in column tiles across the row
  /// strip so each tile's 4-row working set stays in L1.
  void step_rows_into(PackedGrid& dst, std::size_t row_begin,
                      std::size_t row_end) const;

  /// One generation restricted to a tile: rows [row_begin, row_end) x
  /// payload words [word_begin, word_end). Same preconditions as
  /// step_rows_into — in particular the *word columns adjacent to the
  /// tile* must hold current bits, which is what the stencil engine's
  /// one-tile activity dilation guarantees. Returns true iff any masked
  /// word of the tile changed (the stencil dirty predicate).
  bool step_tile_into(PackedGrid& dst, std::size_t row_begin,
                      std::size_t row_end, std::size_t word_begin,
                      std::size_t word_end) const;

  /// The SWAR kernel for one span of `nwords` words: `up`/`mid`/`down`
  /// point at the same word offset of three consecutive padded rows (their
  /// [-1] and [nwords] neighbors must be readable), `out` receives the next
  /// generation of the mid row. `tail_mask` is AND-ed into the final word
  /// written (pass ~0 for spans that do not end a row).
  static void step_row_words(const std::uint64_t* up, const std::uint64_t* mid,
                             const std::uint64_t* down, std::uint64_t* out,
                             std::size_t nwords, std::uint64_t tail_mask);

  /// Cell-wise equality (dimensions, boundary, and live cells).
  [[nodiscard]] bool operator==(const PackedGrid& other) const;

 private:
  /// Words per padded row (payload + 2 halo words).
  [[nodiscard]] std::size_t stride() const { return words_ + 2; }
  /// Payload word 0 of padded row index pr in [0, rows + 2): pr 0 is the
  /// halo row above, pr 1..rows are logical rows, pr rows+1 is below.
  [[nodiscard]] std::uint64_t* padded_row(std::size_t pr) {
    return data_.data() + pr * stride() + 1;
  }
  [[nodiscard]] const std::uint64_t* padded_row(std::size_t pr) const {
    return data_.data() + pr * stride() + 1;
  }
  /// Write the ghost bits of one padded row from its payload.
  void apply_ghosts(std::uint64_t* payload);

  std::size_t rows_;
  std::size_t cols_;
  std::size_t words_;
  Boundary boundary_;
  std::uint64_t tail_mask_;
  std::vector<std::uint64_t> data_;  ///< (rows + 2) x (words + 2)
};

}  // namespace pdc::life
