#pragma once
// PackedGrid as a pdc::stencil workload: the SWAR carry-save kernel
// becomes one step_tile and all three Life engines become thin drivers
// over the generic engine (engine.cpp). Units are logical rows x payload
// words — a "cell" of the stencil domain is one 64-cell word, so a tile
// of tile_words columns covers 64 * tile_words board columns.
//
// The dirty predicate is exact: step_tile_into compares the masked
// output words against the source, so a tile reports changed iff any of
// its 64-cell lanes actually flipped. With skipping enabled the engine
// therefore reproduces the full sweep bit for bit (see tile.hpp).

#include <cstdint>
#include <vector>

#include "pdc/life/packed_grid.hpp"
#include "pdc/stencil/engine.hpp"

namespace pdc::life {

struct LifeWorkload {
  /// Strip execution (message passing): the halo rows arrive over the
  /// wire instead of the local row wrap, so init/finish_step leave them
  /// alone and finish_halo re-applies their ghost bits after unpacking.
  bool external_halo = false;

  using Field = PackedGrid;

  [[nodiscard]] std::size_t height(const Field& f) const { return f.rows(); }
  [[nodiscard]] std::size_t width(const Field& f) const {
    return f.words_per_row();
  }
  [[nodiscard]] bool wrap_rows(const Field& f) const {
    return !external_halo && f.boundary() == Boundary::kTorus;
  }
  [[nodiscard]] bool wrap_cols(const Field& f) const {
    return f.boundary() == Boundary::kTorus;
  }

  void init(Field& f) const {
    f.sync_row_ghosts(0, f.rows());
    if (!external_halo) f.sync_halo_rows();
  }

  double step_tile(const Field& src, Field& dst,
                   const stencil::TileBounds& b) const {
    return src.step_tile_into(dst, b.r0, b.r1, b.c0, b.c1) ? 1.0 : 0.0;
  }

  /// Re-sync the ghost bits of every row that got fresh words this step.
  /// Skipped tiles' words provably hold current values (tile.hpp), so a
  /// partially recomputed row still yields correct ghosts; fully skipped
  /// rows keep the consistent ghosts of their last sync in this buffer.
  void finish_step(Field& dst, const stencil::TileMap& tm,
                   const std::vector<std::uint8_t>& computed) const {
    for (std::size_t ty = 0; ty < tm.tiles_y(); ++ty) {
      bool any = false;
      for (std::size_t tx = 0; tx < tm.tiles_x(); ++tx)
        any = any || computed[tm.index(ty, tx)] != 0;
      if (any) {
        const stencil::TileBounds b = tm.bounds(tm.index(ty, 0));
        dst.sync_row_ghosts(b.r0, b.r1);
      }
    }
    if (!external_halo) dst.sync_halo_rows();
  }

  // --- strip-execution hooks ---
  [[nodiscard]] std::size_t halo_words(const Field& f) const {
    return f.words_per_row();
  }
  void pack_row(const Field& f, bool top, std::int64_t* out) const {
    const std::uint64_t* row = f.row_words(top ? 0 : f.rows() - 1);
    const std::size_t n = f.words_per_row();
    for (std::size_t i = 0; i < n; ++i)
      out[i] = static_cast<std::int64_t>(row[i]);
    out[n - 1] = static_cast<std::int64_t>(row[n - 1] & f.tail_mask());
  }
  void unpack_halo(Field& f, bool above, const std::int64_t* in) const {
    std::uint64_t* row = above ? f.halo_above_words() : f.halo_below_words();
    for (std::size_t i = 0; i < f.words_per_row(); ++i)
      row[i] = static_cast<std::uint64_t>(in[i]);
  }
  void finish_halo(Field& f) const { f.sync_halo_row_ghosts(); }
};

}  // namespace pdc::life
