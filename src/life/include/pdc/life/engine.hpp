#pragma once
// Game of Life engines — three implementations of the same generation
// rule, exactly the progression the curriculum teaches:
//   1. sequential         (CS31 "Game of Life" lab)
//   2. row-partitioned threads with a per-generation barrier
//                         (CS31 "Parallel Game of Life" scalability lab)
//   3. message-passing halo exchange over pdc::mp
//                         (CS87 distributed-memory version)
// All engines run on the bit-packed SWAR representation (packed_grid.hpp)
// internally — the byte Grid stays the public API, and run_reference keeps
// the naive per-cell kernel as the oracle. All engines produce
// bit-identical boards; tests assert it.
//
// Execution is delegated to the generic 2-D stencil engine
// (pdc/stencil/engine.hpp) via LifeWorkload: true 2-D tiling plus
// per-tile dirty tracking, so settled regions of the board are skipped
// entirely — with an exact dirty predicate, so skipping stays
// bit-identical to the full sweep.

#include "pdc/life/grid.hpp"
#include "pdc/stencil/engine.hpp"

namespace pdc::life {

/// Tiling/skipping knobs shared by the three packed engines. Tiles are
/// tile_rows board rows by tile_words *64-cell words* (so 64*tile_words
/// board columns). Defaults keep one tile's working set comfortably in
/// cache while leaving enough tiles for skipping to matter.
struct EngineOptions {
  std::size_t tile_rows = 32;
  std::size_t tile_words = 128;
  bool skip_quiescent = true;
};

/// Advance `board` by `generations` steps with the naive byte kernel —
/// one `Grid::next_state` call per cell, exactly as the CS31 lab writes it
/// first. This is the reference implementation the packed engines are
/// asserted bit-identical against (and the baseline the bench compares).
void run_reference(Grid& board, int generations);

/// Advance `board` by `generations` steps, single threaded, on the
/// bit-packed SWAR kernel (see pdc/life/packed_grid.hpp): 64 cells per
/// word, neighbor counts via bitwise carry-save adders, no per-cell work.
/// The RunResult-returning overload exposes the stencil engine's skip
/// accounting (tiles computed/skipped per run).
void run_sequential(Grid& board, int generations);
stencil::RunResult run_sequential(Grid& board, int generations,
                                  const EngineOptions& opt);

/// Advance `board` using `threads` workers. Each generation's *active*
/// tiles are block-partitioned across the team; a barrier separates
/// generations (double buffering, no locks needed).
void run_threaded(Grid& board, int generations, int threads);
stencil::RunResult run_threaded(Grid& board, int generations, int threads,
                                const EngineOptions& opt);

/// Advance `board` on `ranks` message-passing processes: each rank owns a
/// block of tile rows and exchanges one message per neighbor per
/// generation — per-tile activity flags plus the packed halo row, one
/// payload word per 64 cells instead of one per cell. `traffic_out`, if
/// non-null, receives the total messages and payload words exchanged.
void run_message_passing(Grid& board, int generations, int ranks,
                         std::uint64_t* messages_out = nullptr,
                         std::uint64_t* payload_words_out = nullptr);
stencil::RunResult run_message_passing(Grid& board, int generations,
                                       int ranks, const EngineOptions& opt,
                                       std::uint64_t* messages_out = nullptr,
                                       std::uint64_t* payload_words_out =
                                           nullptr);

/// Advance `board` on an arbitrary stencil::ExecPlan — the hybrid
/// entry point. plan.ranks row strips (each an in-process
/// message-passing rank; the driver requires
/// mp::TransportKind::kInproc — launch shm/tcp worlds through
/// mp::launch::run_spmd instead) with plan.threads_per_rank threads
/// advancing each strip's tiles, halo exchange scheduled per
/// plan.schedule. {1,1} is run_sequential, {1,T} run_threaded, {R,1}
/// run_message_passing; every shape is bit-identical to the reference.
stencil::RunResult run_plan(Grid& board, int generations,
                            const stencil::ExecPlan& plan,
                            const EngineOptions& opt = {},
                            std::uint64_t* messages_out = nullptr,
                            std::uint64_t* payload_words_out = nullptr);

}  // namespace pdc::life
