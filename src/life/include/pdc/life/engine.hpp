#pragma once
// Game of Life engines — three implementations of the same generation
// rule, exactly the progression the curriculum teaches:
//   1. sequential         (CS31 "Game of Life" lab)
//   2. row-partitioned threads with a per-generation barrier
//                         (CS31 "Parallel Game of Life" scalability lab)
//   3. message-passing halo exchange over pdc::mp
//                         (CS87 distributed-memory version)
// All engines run on the bit-packed SWAR representation (packed_grid.hpp)
// internally — the byte Grid stays the public API, and run_reference keeps
// the naive per-cell kernel as the oracle. All engines produce
// bit-identical boards; tests assert it.

#include "pdc/life/grid.hpp"

namespace pdc::life {

/// Advance `board` by `generations` steps with the naive byte kernel —
/// one `Grid::next_state` call per cell, exactly as the CS31 lab writes it
/// first. This is the reference implementation the packed engines are
/// asserted bit-identical against (and the baseline the bench compares).
void run_reference(Grid& board, int generations);

/// Advance `board` by `generations` steps, single threaded, on the
/// bit-packed SWAR kernel (see pdc/life/packed_grid.hpp): 64 cells per
/// word, neighbor counts via bitwise carry-save adders, no per-cell work.
void run_sequential(Grid& board, int generations);

/// Advance `board` using `threads` workers. Rows are block-partitioned;
/// a barrier separates generations (double buffering, no locks needed).
void run_threaded(Grid& board, int generations, int threads);

/// Advance `board` on `ranks` message-passing processes: each rank owns a
/// block of rows and exchanges one halo row with each neighbor per
/// generation, wired as packed words — one payload word per 64 cells
/// instead of one per cell. `traffic_out`, if non-null, receives the total
/// messages and payload words exchanged.
void run_message_passing(Grid& board, int generations, int ranks,
                         std::uint64_t* messages_out = nullptr,
                         std::uint64_t* payload_words_out = nullptr);

}  // namespace pdc::life
