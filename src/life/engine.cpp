#include "pdc/life/engine.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/mp/comm.hpp"

namespace pdc::life {

namespace {

/// Compute rows [row_begin, row_end) of `dst` from `src`.
void step_rows(const Grid& src, Grid& dst, std::size_t row_begin,
               std::size_t row_end) {
  for (std::size_t r = row_begin; r < row_end; ++r)
    for (std::size_t c = 0; c < src.cols(); ++c)
      dst.set(r, c, src.next_state(r, c));
}

}  // namespace

void run_sequential(Grid& board, int generations) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  Grid next(board.rows(), board.cols(), board.boundary());
  for (int g = 0; g < generations; ++g) {
    step_rows(board, next, 0, board.rows());
    std::swap(board, next);
  }
}

void run_threaded(Grid& board, int generations, int threads) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (generations == 0) return;

  Grid other(board.rows(), board.cols(), board.boundary());
  Grid* bufs[2] = {&board, &other};

  // One persistent-pool region for the whole run: the team is released
  // once and synchronizes per generation with the reusable barrier, so
  // no threads are created no matter how many generations execute.
  core::Team::run(threads, [&](core::TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, board.rows());
    int src = 0;
    for (int g = 0; g < generations; ++g) {
      step_rows(*bufs[src], *bufs[1 - src], lo, hi);
      // One barrier per generation: nobody may start writing the old
      // source until everyone has finished reading it.
      ctx.barrier();
      src = 1 - src;
    }
  });

  // If the final board landed in `other`, move it back.
  if (generations % 2 == 1) std::swap(board, other);
}

void run_message_passing(Grid& board, int generations, int ranks,
                         std::uint64_t* messages_out,
                         std::uint64_t* payload_words_out) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  if (static_cast<std::size_t>(ranks) > board.rows())
    throw std::invalid_argument("more ranks than rows");
  if (generations == 0) return;

  const std::size_t rows = board.rows();
  const std::size_t cols = board.cols();
  const bool torus = board.boundary() == Boundary::kTorus;

  mp::Communicator comm(ranks);
  comm.run([&](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    // Block partition of rows.
    const std::size_t base = rows / static_cast<std::size_t>(p);
    const std::size_t extra = rows % static_cast<std::size_t>(p);
    const auto ur = static_cast<std::size_t>(r);
    const std::size_t lo = ur * base + std::min(ur, extra);
    const std::size_t n = base + (ur < extra ? 1 : 0);

    // Local block with one halo row above and below.
    // local[0] = halo above, local[1..n] = owned rows, local[n+1] = below.
    std::vector<std::vector<std::uint8_t>> local(
        n + 2, std::vector<std::uint8_t>(cols, 0));
    std::vector<std::vector<std::uint8_t>> next = local;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < cols; ++c)
        local[i + 1][c] = board.get(lo + i, c) ? 1 : 0;

    const int up = r == 0 ? (torus ? p - 1 : -1) : r - 1;
    const int down = r == p - 1 ? (torus ? 0 : -1) : r + 1;

    auto pack = [&](const std::vector<std::uint8_t>& row) {
      std::vector<std::int64_t> out(cols);
      for (std::size_t c = 0; c < cols; ++c) out[c] = row[c];
      return out;
    };
    auto unpack = [&](const std::vector<std::int64_t>& data,
                      std::vector<std::uint8_t>& row) {
      for (std::size_t c = 0; c < cols; ++c)
        row[c] = static_cast<std::uint8_t>(data[c]);
    };

    for (int g = 0; g < generations; ++g) {
      const int tag = 2 * g;
      // Halo exchange (buffered sends: no deadlock).
      // Degenerate single-rank torus: my own rows wrap onto myself.
      if (up >= 0) ctx.send(up, tag, pack(local[1]));
      if (down >= 0) ctx.send(down, tag + 1, pack(local[n]));
      if (down >= 0) {
        unpack(ctx.recv(down, tag).data, local[n + 1]);
      } else {
        local[n + 1].assign(cols, 0);
      }
      if (up >= 0) {
        unpack(ctx.recv(up, tag + 1).data, local[0]);
      } else {
        local[0].assign(cols, 0);
      }

      // Compute owned rows from the haloed block.
      for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t c = 0; c < cols; ++c) {
          int count = 0;
          for (int dr = -1; dr <= 1; ++dr) {
            for (int dc = -1; dc <= 1; ++dc) {
              if (dr == 0 && dc == 0) continue;
              long cc = static_cast<long>(c) + dc;
              if (torus) {
                cc = (cc + static_cast<long>(cols)) %
                     static_cast<long>(cols);
              } else if (cc < 0 || cc >= static_cast<long>(cols)) {
                continue;
              }
              count += local[i + static_cast<std::size_t>(dr)]
                            [static_cast<std::size_t>(cc)];
            }
          }
          const bool alive = local[i][c] != 0;
          next[i][c] = (alive ? (count == 2 || count == 3) : (count == 3))
                           ? 1
                           : 0;
        }
      }
      std::swap(local, next);
    }

    // Everyone finishes computing before anyone writes the shared board
    // (ranks read neighbors' initial rows only at init, but keep the
    // barrier as the explicit synchronization point).
    ctx.barrier();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < cols; ++c)
        board.set(lo + i, c, local[i + 1][c] != 0);
  });

  const auto traffic = comm.traffic();
  if (messages_out != nullptr) *messages_out = traffic.messages;
  if (payload_words_out != nullptr) *payload_words_out = traffic.payload_words;
}

}  // namespace pdc::life
