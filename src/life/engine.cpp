#include "pdc/life/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "pdc/life/packed_grid.hpp"
#include "pdc/life/stencil_workload.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/stencil/engine.hpp"

namespace pdc::life {

namespace {

/// Compute rows [row_begin, row_end) of `dst` from `src`, one cell at a
/// time through the public Grid API — the reference kernel.
void step_rows_bytes(const Grid& src, Grid& dst, std::size_t row_begin,
                     std::size_t row_end) {
  for (std::size_t r = row_begin; r < row_end; ++r)
    for (std::size_t c = 0; c < src.cols(); ++c)
      dst.set(r, c, src.next_state(r, c));
}

stencil::Options engine_opts(const EngineOptions& opt, int generations) {
  stencil::Options e;
  e.tile_rows = opt.tile_rows;
  e.tile_cols = opt.tile_words;
  e.max_steps = generations;
  e.skip_quiescent = opt.skip_quiescent;
  e.quiesce_eps = 0.0;    // exact: skipping is bit-identical
  e.converge_eps = -1.0;  // Life runs a fixed number of generations
  e.span_name = "life.gen";
  return e;
}

void check_args(int generations) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
}

/// plan.ranks strip ranks over an in-process communicator, each strip
/// advanced by plan.threads_per_rank threads (see run_plan). Used for
/// every multi-rank shape — and by run_message_passing even for one
/// rank, where the torus self-links still exchange real messages.
stencil::RunResult run_strips(Grid& board, int generations,
                              const stencil::ExecPlan& plan,
                              const EngineOptions& opt,
                              std::uint64_t* messages_out,
                              std::uint64_t* payload_words_out) {
  const int ranks = plan.ranks;
  if (static_cast<std::size_t>(ranks) > board.rows())
    throw std::invalid_argument("more ranks than rows");
  if (plan.transport != mp::TransportKind::kInproc)
    throw std::invalid_argument(
        "run_plan runs its ranks in-process (inproc transport); launch "
        "shm/tcp worlds with mp::launch::run_spmd");
  if (generations == 0) return {};

  const std::size_t rows = board.rows();
  const std::size_t cols = board.cols();
  const bool torus = board.boundary() == Boundary::kTorus;

  // Partition rows on tile boundaries so every rank's tile grid is the
  // global grid restricted to its strip — the received activity flags
  // then dilate exactly like the shared-memory engines' row wrap, and
  // skip decisions (hence results, trivially, with the exact predicate)
  // match tile for tile. Shrink the tile height if needed so every rank
  // owns at least one tile row.
  const std::size_t tile_h = std::max<std::size_t>(
      1,
      std::min(opt.tile_rows, rows / static_cast<std::size_t>(ranks)));
  const std::size_t n_tiles = (rows + tile_h - 1) / tile_h;
  EngineOptions strip_opt = opt;
  strip_opt.tile_rows = tile_h;

  std::vector<stencil::RunResult> results(static_cast<std::size_t>(ranks));
  mp::Communicator comm(ranks);
  comm.run([&](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    const auto ur = static_cast<std::size_t>(r);
    const auto up = static_cast<std::size_t>(p);
    // Block partition of tile rows.
    const std::size_t tlo = ur * (n_tiles / up) + std::min(ur, n_tiles % up);
    const std::size_t thi =
        tlo + n_tiles / up + (ur < n_tiles % up ? 1 : 0);
    const std::size_t lo = tlo * tile_h;
    const std::size_t n = std::min(rows, thi * tile_h) - lo;

    // Local packed strip; the row halos are filled from received messages
    // (never by sync_halo_rows), the column wrap stays a local concern.
    PackedGrid cur(n, cols, board.boundary());
    PackedGrid nxt(n, cols, board.boundary());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t* src = board.row_data(lo + i);
      std::uint64_t* dst = cur.row_words(i);
      for (std::size_t c = 0; c < cols; ++c)
        dst[c / 64] |= static_cast<std::uint64_t>(src[c] & 1) << (c % 64);
    }

    const stencil::MpLinks links{
        r == 0 ? (torus ? p - 1 : -1) : r - 1,
        r == p - 1 ? (torus ? 0 : -1) : r + 1};
    LifeWorkload w{.external_halo = true};
    results[ur] = stencil::run(w, cur, nxt, plan,
                               engine_opts(strip_opt, generations), ctx,
                               links);

    // Everyone finishes computing before anyone writes the shared board.
    ctx.barrier();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t* src = cur.row_words(i);
      std::uint8_t* dst = board.row_data(lo + i);
      for (std::size_t c = 0; c < cols; ++c)
        dst[c] = static_cast<std::uint8_t>((src[c / 64] >> (c % 64)) & 1);
    }
  });

  const auto traffic = comm.traffic();
  if (messages_out != nullptr) *messages_out = traffic.messages;
  if (payload_words_out != nullptr) *payload_words_out = traffic.payload_words;

  stencil::RunResult total = results[0];
  for (int i = 1; i < ranks; ++i) {
    const auto& res = results[static_cast<std::size_t>(i)];
    total.tiles_computed += res.tiles_computed;
    total.tiles_skipped += res.tiles_skipped;
    total.halo_words += res.halo_words;
  }
  return total;
}

}  // namespace

void run_reference(Grid& board, int generations) {
  check_args(generations);
  Grid next(board.rows(), board.cols(), board.boundary());
  for (int g = 0; g < generations; ++g) {
    PDC_TRACE_SCOPE("life.gen");
    step_rows_bytes(board, next, 0, board.rows());
    std::swap(board, next);
  }
}

stencil::RunResult run_sequential(Grid& board, int generations,
                                  const EngineOptions& opt) {
  check_args(generations);
  PackedGrid cur(board);
  PackedGrid nxt(board.rows(), board.cols(), board.boundary());
  LifeWorkload w;
  const stencil::RunResult res =
      stencil::run_seq(w, cur, nxt, engine_opts(opt, generations));
  board = cur.unpack();
  return res;
}

void run_sequential(Grid& board, int generations) {
  run_sequential(board, generations, EngineOptions{});
}

stencil::RunResult run_threaded(Grid& board, int generations, int threads,
                                const EngineOptions& opt) {
  check_args(generations);
  PackedGrid cur(board);
  PackedGrid nxt(board.rows(), board.cols(), board.boundary());
  LifeWorkload w;
  const stencil::RunResult res = stencil::run_threaded(
      w, cur, nxt, engine_opts(opt, generations), threads);
  board = cur.unpack();
  return res;
}

void run_threaded(Grid& board, int generations, int threads) {
  run_threaded(board, generations, threads, EngineOptions{});
}

stencil::RunResult run_message_passing(Grid& board, int generations,
                                       int ranks, const EngineOptions& opt,
                                       std::uint64_t* messages_out,
                                       std::uint64_t* payload_words_out) {
  check_args(generations);
  stencil::ExecPlan plan{.ranks = ranks};
  stencil::detail::validate(plan);
  return run_strips(board, generations, plan, opt, messages_out,
                    payload_words_out);
}

void run_message_passing(Grid& board, int generations, int ranks,
                         std::uint64_t* messages_out,
                         std::uint64_t* payload_words_out) {
  run_message_passing(board, generations, ranks, EngineOptions{},
                      messages_out, payload_words_out);
}

stencil::RunResult run_plan(Grid& board, int generations,
                            const stencil::ExecPlan& plan,
                            const EngineOptions& opt,
                            std::uint64_t* messages_out,
                            std::uint64_t* payload_words_out) {
  check_args(generations);
  stencil::detail::validate(plan);
  if (plan.ranks > 1)
    return run_strips(board, generations, plan, opt, messages_out,
                      payload_words_out);
  // One rank: the local engine, no communicator (and no traffic).
  if (messages_out != nullptr) *messages_out = 0;
  if (payload_words_out != nullptr) *payload_words_out = 0;
  PackedGrid cur(board);
  PackedGrid nxt(board.rows(), board.cols(), board.boundary());
  LifeWorkload w;
  const stencil::RunResult res =
      stencil::run(w, cur, nxt, plan, engine_opts(opt, generations));
  board = cur.unpack();
  return res;
}

}  // namespace pdc::life
