#include "pdc/life/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "pdc/core/team.hpp"
#include "pdc/life/packed_grid.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/obs/obs.hpp"

namespace pdc::life {

namespace {

/// Compute rows [row_begin, row_end) of `dst` from `src`, one cell at a
/// time through the public Grid API — the reference kernel.
void step_rows_bytes(const Grid& src, Grid& dst, std::size_t row_begin,
                     std::size_t row_end) {
  for (std::size_t r = row_begin; r < row_end; ++r)
    for (std::size_t c = 0; c < src.cols(); ++c)
      dst.set(r, c, src.next_state(r, c));
}

/// Bring `g`'s ghost bits and wrap halo rows fully in sync (single-owner
/// version; the threaded engine splits this work across ranks).
void sync_all(PackedGrid& g) {
  g.sync_row_ghosts(0, g.rows());
  g.sync_halo_rows();
}

}  // namespace

void run_reference(Grid& board, int generations) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  Grid next(board.rows(), board.cols(), board.boundary());
  for (int g = 0; g < generations; ++g) {
    PDC_TRACE_SCOPE("life.gen");
    step_rows_bytes(board, next, 0, board.rows());
    std::swap(board, next);
  }
}

void run_sequential(Grid& board, int generations) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  if (generations == 0) return;
  PackedGrid cur(board);
  PackedGrid nxt(board.rows(), board.cols(), board.boundary());
  for (int g = 0; g < generations; ++g) {
    PDC_TRACE_SCOPE("life.gen");
    sync_all(cur);
    cur.step_rows_into(nxt, 0, cur.rows());
    std::swap(cur, nxt);
  }
  board = cur.unpack();
}

void run_threaded(Grid& board, int generations, int threads) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (generations == 0) return;

  PackedGrid a(board);
  PackedGrid b(board.rows(), board.cols(), board.boundary());
  PackedGrid* bufs[2] = {&a, &b};
  sync_all(a);

  // One persistent-pool region for the whole run, synchronized with the
  // reusable barrier: two barriers per generation — one so nobody reads
  // the new board before every strip (and its ghost bits) is written, one
  // so the wrap halo-row copy is visible before the next step reads it.
  core::Team::run(threads, [&](core::TeamContext& ctx) {
    const auto [lo, hi] = ctx.block_range(0, board.rows());
    int src = 0;
    for (int g = 0; g < generations; ++g) {
      PDC_TRACE_SCOPE("life.gen");
      PackedGrid& dst = *bufs[1 - src];
      bufs[src]->step_rows_into(dst, lo, hi);
      dst.sync_row_ghosts(lo, hi);
      ctx.barrier();
      if (ctx.rank() == 0) dst.sync_halo_rows();
      ctx.barrier();
      src = 1 - src;
    }
  });

  board = bufs[generations % 2]->unpack();
}

void run_message_passing(Grid& board, int generations, int ranks,
                         std::uint64_t* messages_out,
                         std::uint64_t* payload_words_out) {
  if (generations < 0) throw std::invalid_argument("generations must be >= 0");
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  if (static_cast<std::size_t>(ranks) > board.rows())
    throw std::invalid_argument("more ranks than rows");
  if (generations == 0) return;

  const std::size_t rows = board.rows();
  const std::size_t cols = board.cols();
  const bool torus = board.boundary() == Boundary::kTorus;

  mp::Communicator comm(ranks);
  comm.run([&](mp::RankContext& ctx) {
    const int p = ctx.size();
    const int r = ctx.rank();
    // Block partition of rows.
    const std::size_t base = rows / static_cast<std::size_t>(p);
    const std::size_t extra = rows % static_cast<std::size_t>(p);
    const auto ur = static_cast<std::size_t>(r);
    const std::size_t lo = ur * base + std::min(ur, extra);
    const std::size_t n = base + (ur < extra ? 1 : 0);

    // Local packed block; the row halos are filled from received messages
    // (never by sync_halo_rows), the column wrap stays a local concern.
    PackedGrid cur(n, cols, board.boundary());
    PackedGrid nxt(n, cols, board.boundary());
    const std::size_t words = cur.words_per_row();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t* src = board.row_data(lo + i);
      std::uint64_t* dst = cur.row_words(i);
      for (std::size_t c = 0; c < cols; ++c)
        dst[c / 64] |= static_cast<std::uint64_t>(src[c] & 1) << (c % 64);
    }

    const int up = r == 0 ? (torus ? p - 1 : -1) : r - 1;
    const int down = r == p - 1 ? (torus ? 0 : -1) : r + 1;

    // Wire format: one word per 64 cells. The send/recv vectors circulate
    // — each generation's received buffers become the next generation's
    // send buffers, so steady state allocates nothing.
    std::vector<std::int64_t> sbuf_up, sbuf_down;
    auto fill = [&](std::vector<std::int64_t>& buf,
                    const std::uint64_t* row) {
      buf.resize(words);
      for (std::size_t i = 0; i < words; ++i)
        buf[i] = static_cast<std::int64_t>(row[i]);
      buf[words - 1] =
          static_cast<std::int64_t>(row[words - 1] & cur.tail_mask());
    };
    auto place = [&](const std::vector<std::int64_t>& buf,
                     std::uint64_t* row) {
      for (std::size_t i = 0; i < words; ++i)
        row[i] = static_cast<std::uint64_t>(buf[i]);
    };

    for (int g = 0; g < generations; ++g) {
      PDC_TRACE_SCOPE("life.gen");
      const int tag = 2 * g;
      // Halo exchange (buffered sends: no deadlock). Degenerate
      // single-rank torus: my own rows wrap onto myself.
      if (up >= 0) {
        fill(sbuf_up, cur.row_words(0));
        ctx.send(up, tag, std::move(sbuf_up));
      }
      if (down >= 0) {
        fill(sbuf_down, cur.row_words(n - 1));
        ctx.send(down, tag + 1, std::move(sbuf_down));
      }
      if (down >= 0) {
        auto msg = ctx.recv(down, tag);
        place(msg.data, cur.halo_below_words());
        sbuf_down = std::move(msg.data);
      }
      if (up >= 0) {
        auto msg = ctx.recv(up, tag + 1);
        place(msg.data, cur.halo_above_words());
        sbuf_up = std::move(msg.data);
      }

      cur.sync_row_ghosts(0, n);
      cur.sync_halo_row_ghosts();
      cur.step_rows_into(nxt, 0, n);
      std::swap(cur, nxt);
    }

    // Everyone finishes computing before anyone writes the shared board.
    ctx.barrier();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t* src = cur.row_words(i);
      std::uint8_t* dst = board.row_data(lo + i);
      for (std::size_t c = 0; c < cols; ++c)
        dst[c] = static_cast<std::uint8_t>((src[c / 64] >> (c % 64)) & 1);
    }
  });

  const auto traffic = comm.traffic();
  if (messages_out != nullptr) *messages_out = traffic.messages;
  if (payload_words_out != nullptr) *payload_words_out = traffic.payload_words;
}

}  // namespace pdc::life
