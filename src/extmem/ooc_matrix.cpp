#include "pdc/extmem/ooc_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdc::extmem {

OocMatrix::OocMatrix(BufferCache& cache, std::size_t n,
                     std::size_t base_bytes)
    : cache_(&cache), n_(n), base_(base_bytes) {
  if (n_ == 0) throw std::invalid_argument("matrix dimension must be > 0");
  if (base_ % sizeof(double) != 0)
    throw std::invalid_argument("base offset must be 8-byte aligned");
  const std::size_t end = base_ + footprint_bytes();
  if (end > cache.device().capacity_bytes())
    throw std::out_of_range("matrix exceeds device capacity");
}

std::size_t OocMatrix::offset(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) throw std::out_of_range("matrix index");
  return base_ / sizeof(double) + r * n_ + c;
}

double OocMatrix::get(std::size_t r, std::size_t c) {
  return cache_->read_f64(offset(r, c));
}

void OocMatrix::set(std::size_t r, std::size_t c, double v) {
  cache_->write_f64(offset(r, c), v);
}

void OocMatrix::fill_pattern(std::uint64_t seed) {
  std::uint64_t s = seed ? seed : 1;
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < n_; ++c) {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      set(r, c, static_cast<double>(s % 97) - 48.0);
    }
}

void OocMatrix::fill_zero() {
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < n_; ++c) set(r, c, 0.0);
}

namespace {

std::uint64_t ios_since(BlockDevice& dev, const DeviceStats& before) {
  const DeviceStats after = dev.stats();
  return (after.block_reads - before.block_reads) +
         (after.block_writes - before.block_writes);
}

}  // namespace

std::uint64_t matmul_naive(OocMatrix& a, OocMatrix& b, OocMatrix& c) {
  if (a.n() != b.n() || a.n() != c.n())
    throw std::invalid_argument("dimension mismatch");
  BlockDevice& dev = a.cache().device();
  const DeviceStats before = dev.stats();
  const std::size_t n = a.n();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += a.get(i, k) * b.get(k, j);
      c.set(i, j, sum);
    }
  }
  a.cache().flush();
  return ios_since(dev, before);
}

std::uint64_t matmul_blocked(OocMatrix& a, OocMatrix& b, OocMatrix& c,
                             std::size_t tile) {
  if (a.n() != b.n() || a.n() != c.n())
    throw std::invalid_argument("dimension mismatch");
  const std::size_t n = a.n();
  if (tile == 0) {
    // Tiles are not contiguous on disk: a t x t tile touches t row
    // segments, each spanning up to 8t/B + 1 blocks. Requiring the three
    // tiles' block footprint to fit in M gives 24t^2 + 6tB <= M, i.e.
    // t = (-6B + sqrt(36B^2 + 96M)) / 48.
    const double m = static_cast<double>(a.cache().capacity_bytes());
    const double bs = static_cast<double>(a.cache().device().block_size());
    const double t =
        (-6.0 * bs + std::sqrt(36.0 * bs * bs + 96.0 * m)) / 48.0;
    tile = static_cast<std::size_t>(std::max(1.0, std::floor(t)));
    tile = std::min(tile, n);
  }
  BlockDevice& dev = a.cache().device();
  const DeviceStats before = dev.stats();
  c.fill_zero();  // blocked kernel accumulates into C
  for (std::size_t ii = 0; ii < n; ii += tile) {
    const std::size_t imax = std::min(n, ii + tile);
    for (std::size_t jj = 0; jj < n; jj += tile) {
      const std::size_t jmax = std::min(n, jj + tile);
      for (std::size_t kk = 0; kk < n; kk += tile) {
        const std::size_t kmax = std::min(n, kk + tile);
        for (std::size_t i = ii; i < imax; ++i) {
          for (std::size_t j = jj; j < jmax; ++j) {
            double sum = c.get(i, j);
            for (std::size_t k = kk; k < kmax; ++k)
              sum += a.get(i, k) * b.get(k, j);
            c.set(i, j, sum);
          }
        }
      }
    }
  }
  a.cache().flush();
  return ios_since(dev, before);
}

std::uint64_t transpose_naive(OocMatrix& a, OocMatrix& out) {
  if (a.n() != out.n()) throw std::invalid_argument("dimension mismatch");
  BlockDevice& dev = a.cache().device();
  const DeviceStats before = dev.stats();
  const std::size_t n = a.n();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) out.set(c, r, a.get(r, c));
  a.cache().flush();
  return ios_since(dev, before);
}

namespace {

void co_transpose(OocMatrix& a, OocMatrix& out, std::size_t r0,
                  std::size_t r1, std::size_t c0, std::size_t c1,
                  std::size_t leaf) {
  const std::size_t dr = r1 - r0;
  const std::size_t dc = c1 - c0;
  if (dr <= leaf && dc <= leaf) {
    for (std::size_t r = r0; r < r1; ++r)
      for (std::size_t c = c0; c < c1; ++c) out.set(c, r, a.get(r, c));
    return;
  }
  if (dr >= dc) {
    const std::size_t mid = r0 + dr / 2;
    co_transpose(a, out, r0, mid, c0, c1, leaf);
    co_transpose(a, out, mid, r1, c0, c1, leaf);
  } else {
    const std::size_t mid = c0 + dc / 2;
    co_transpose(a, out, r0, r1, c0, mid, leaf);
    co_transpose(a, out, r0, r1, mid, c1, leaf);
  }
}

}  // namespace

std::uint64_t transpose_cache_oblivious(OocMatrix& a, OocMatrix& out,
                                        std::size_t leaf) {
  if (a.n() != out.n()) throw std::invalid_argument("dimension mismatch");
  if (leaf == 0) throw std::invalid_argument("leaf must be > 0");
  BlockDevice& dev = a.cache().device();
  const DeviceStats before = dev.stats();
  co_transpose(a, out, 0, a.n(), 0, a.n(), leaf);
  a.cache().flush();
  return ios_since(dev, before);
}

}  // namespace pdc::extmem
