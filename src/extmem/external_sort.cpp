#include "pdc/extmem/external_sort.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace pdc::extmem {

namespace {

struct Run {
  std::size_t first_block = 0;  // absolute device block
  std::size_t count = 0;        // values
};

/// Merge `runs` (each a block-aligned region on dev) into one run starting
/// at dst_first_block. Returns the merged run.
Run merge_runs(BlockDevice& dev, const std::vector<Run>& runs,
               std::size_t dst_first_block) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.count;

  std::vector<BlockReader> readers;
  readers.reserve(runs.size());
  for (const auto& r : runs)
    readers.emplace_back(DeviceSpan(dev, r.first_block, r.count));

  BlockWriter writer(DeviceSpan(dev, dst_first_block, total));

  using Entry = std::pair<std::int64_t, std::size_t>;  // value, reader index
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < readers.size(); ++i)
    if (readers[i].has_next()) heap.emplace(readers[i].next(), i);

  while (!heap.empty()) {
    const auto [v, i] = heap.top();
    heap.pop();
    writer.push(v);
    if (readers[i].has_next()) heap.emplace(readers[i].next(), i);
  }
  writer.finish();
  return {dst_first_block, total};
}

}  // namespace

ExtSortStats external_merge_sort(BlockDevice& dev, DeviceSpan input,
                                 DeviceSpan scratch,
                                 const ExtSortConfig& cfg) {
  const std::size_t bs = dev.block_size();
  const std::size_t vpb = input.values_per_block();
  const std::size_t mem_blocks = cfg.memory_bytes / bs;
  if (mem_blocks < 3)
    throw std::invalid_argument(
        "memory must hold >= 3 blocks (2 inputs + 1 output)");
  if (scratch.size() < input.size())
    throw std::invalid_argument("scratch region too small");
  {
    // Disjointness check (block granular).
    const std::size_t in_lo = input.first_block();
    const std::size_t in_hi = in_lo + input.blocks_spanned();
    const std::size_t sc_lo = scratch.first_block();
    const std::size_t sc_hi = sc_lo + scratch.blocks_spanned();
    if (in_lo < sc_hi && sc_lo < in_hi)
      throw std::invalid_argument("input and scratch regions overlap");
  }

  ExtSortStats stats;
  stats.values = input.size();
  const DeviceStats before = dev.stats();
  const std::size_t n = input.size();
  if (n == 0) return stats;

  const std::size_t run_values = mem_blocks * vpb;  // block-aligned runs
  stats.fan_in = mem_blocks - 1;

  // ---- Phase 1: run formation (sorted runs written to scratch) ----
  std::vector<Run> runs;
  std::vector<std::int64_t> buffer;
  for (std::size_t off = 0; off < n; off += run_values) {
    const std::size_t len = std::min(run_values, n - off);
    input.read_range(off, len, buffer);
    std::sort(buffer.begin(), buffer.end());
    if (runs.empty() && len == n) {
      // Fits in memory entirely: write straight back, no merge needed.
      input.write_range(0, buffer);
      stats.initial_runs = 1;
      const DeviceStats after = dev.stats();
      stats.block_reads = after.block_reads - before.block_reads;
      stats.block_writes = after.block_writes - before.block_writes;
      return stats;
    }
    DeviceSpan run_span(dev, scratch.first_block() + off / vpb, len);
    run_span.write_range(0, buffer);
    runs.push_back({scratch.first_block() + off / vpb, len});
  }
  stats.initial_runs = runs.size();

  // ---- Phase 2: k-way merge passes, ping-ponging scratch <-> input ----
  const std::size_t k = stats.fan_in;
  bool dst_is_input = true;  // runs currently live in scratch
  while (runs.size() > 1) {
    const std::size_t dst_base =
        dst_is_input ? input.first_block() : scratch.first_block();
    std::vector<Run> merged;
    std::size_t dst_block = dst_base;
    for (std::size_t g = 0; g < runs.size(); g += k) {
      const std::size_t group_end = std::min(runs.size(), g + k);
      std::vector<Run> group(runs.begin() + static_cast<long>(g),
                             runs.begin() + static_cast<long>(group_end));
      const Run out = merge_runs(dev, group, dst_block);
      merged.push_back(out);
      dst_block += (out.count + vpb - 1) / vpb;
    }
    runs = std::move(merged);
    ++stats.merge_passes;
    dst_is_input = !dst_is_input;
  }

  // Result now starts at runs[0]. If it ended up in scratch, copy back.
  if (runs[0].first_block != input.first_block()) {
    DeviceSpan result(dev, runs[0].first_block, n);
    for (std::size_t off = 0; off < n; off += vpb) {
      const std::size_t len = std::min(vpb, n - off);
      result.read_range(off, len, buffer);
      input.write_range(off, buffer);
    }
  }

  const DeviceStats after = dev.stats();
  stats.block_reads = after.block_reads - before.block_reads;
  stats.block_writes = after.block_writes - before.block_writes;
  return stats;
}

double predicted_sort_ios(std::size_t n_values, std::size_t memory_bytes,
                          std::size_t block_bytes) {
  if (n_values == 0) return 0.0;
  const double N = static_cast<double>(n_values) * 8.0;  // bytes
  const double B = static_cast<double>(block_bytes);
  const double M = static_cast<double>(memory_bytes);
  const double blocks = std::ceil(N / B);
  if (N <= M) return 2.0 * blocks;  // read + write, fits in memory
  const double runs = std::ceil(N / M);
  const double k = std::max(2.0, M / B - 1.0);
  const double passes = std::ceil(std::log(runs) / std::log(k));
  return 2.0 * blocks * (1.0 + passes);
}

ExtSortStats external_merge_sort(std::vector<std::int64_t>& values,
                                 std::size_t block_bytes,
                                 std::size_t memory_bytes) {
  const std::size_t vpb = block_bytes / sizeof(std::int64_t);
  if (vpb == 0) throw std::invalid_argument("block too small for int64");
  const std::size_t region_blocks =
      std::max<std::size_t>(1, (values.size() + vpb - 1) / vpb);
  BlockDevice dev(2 * region_blocks, block_bytes);
  DeviceSpan input(dev, 0, values.size());
  DeviceSpan scratch(dev, region_blocks, values.size());
  if (!values.empty()) input.write_range(0, values);
  dev.reset_stats();  // loading the device is not part of the sort

  ExtSortConfig cfg;
  cfg.memory_bytes = memory_bytes;
  const ExtSortStats stats = external_merge_sort(dev, input, scratch, cfg);

  if (!values.empty()) {
    std::vector<std::int64_t> out;
    input.read_range(0, values.size(), out);
    values = std::move(out);
  }
  return stats;
}

}  // namespace pdc::extmem
