#include "pdc/extmem/buffer_cache.hpp"

#include <cstring>
#include <stdexcept>

#include "pdc/obs/obs.hpp"

namespace pdc::extmem {

namespace {

// Per-instance CacheStats stay authoritative; these dual-write the
// process-global registry so cache behavior shows up in metrics_snapshot().
obs::Counter& hits_counter() {
  static obs::Counter& c = obs::counter("extmem.cache.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::counter("extmem.cache.misses");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::counter("extmem.cache.evictions");
  return c;
}
obs::Counter& writebacks_counter() {
  static obs::Counter& c = obs::counter("extmem.cache.writebacks");
  return c;
}

}  // namespace

BufferCache::BufferCache(BlockDevice& dev, std::size_t frames)
    : dev_(&dev), frames_(frames) {
  if (frames_ == 0) throw std::invalid_argument("frames must be > 0");
}

void BufferCache::evict_lru() {
  Frame& victim = lru_.back();
  if (victim.dirty) {
    dev_->write_block(victim.block, victim.data);
    ++stats_.writebacks;
    writebacks_counter().add(1);
  }
  ++stats_.evictions;
  evictions_counter().add(1);
  index_.erase(victim.block);
  lru_.pop_back();
}

BufferCache::Frame& BufferCache::get_frame(std::size_t block,
                                           bool fill_from_device) {
  if (auto it = index_.find(block); it != index_.end()) {
    ++stats_.hits;
    hits_counter().add(1);
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return *it->second;
  }
  ++stats_.misses;
  misses_counter().add(1);
  if (lru_.size() == frames_) evict_lru();
  lru_.emplace_front();
  Frame& f = lru_.front();
  f.block = block;
  f.dirty = false;
  f.data.resize(dev_->block_size());
  if (fill_from_device) dev_->read_block(block, f.data);
  index_[block] = lru_.begin();
  return f;
}

void BufferCache::read(std::size_t offset, std::span<std::byte> out) {
  const std::size_t bs = dev_->block_size();
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t block = (offset + pos) / bs;
    const std::size_t in_block = (offset + pos) % bs;
    const std::size_t n = std::min(bs - in_block, out.size() - pos);
    Frame& f = get_frame(block);
    std::memcpy(out.data() + pos, f.data.data() + in_block, n);
    pos += n;
  }
}

void BufferCache::write(std::size_t offset, std::span<const std::byte> in) {
  const std::size_t bs = dev_->block_size();
  std::size_t pos = 0;
  while (pos < in.size()) {
    const std::size_t block = (offset + pos) / bs;
    const std::size_t in_block = (offset + pos) % bs;
    const std::size_t n = std::min(bs - in_block, in.size() - pos);
    // A full-block overwrite needs no old contents: don't charge the
    // I/O model a device read it never required.
    const bool full_overwrite = in_block == 0 && n == bs;
    Frame& f = get_frame(block, !full_overwrite);
    std::memcpy(f.data.data() + in_block, in.data() + pos, n);
    f.dirty = true;
    pos += n;
  }
}

std::int64_t BufferCache::read_i64(std::size_t index) {
  std::int64_t v;
  read(index * sizeof(v),
       std::span<std::byte>(reinterpret_cast<std::byte*>(&v), sizeof(v)));
  return v;
}

void BufferCache::write_i64(std::size_t index, std::int64_t v) {
  write(index * sizeof(v), std::span<const std::byte>(
                               reinterpret_cast<const std::byte*>(&v),
                               sizeof(v)));
}

double BufferCache::read_f64(std::size_t index) {
  double v;
  read(index * sizeof(v),
       std::span<std::byte>(reinterpret_cast<std::byte*>(&v), sizeof(v)));
  return v;
}

void BufferCache::write_f64(std::size_t index, double v) {
  write(index * sizeof(v), std::span<const std::byte>(
                               reinterpret_cast<const std::byte*>(&v),
                               sizeof(v)));
}

void BufferCache::flush() {
  for (auto& f : lru_) {
    if (f.dirty) {
      dev_->write_block(f.block, f.data);
      f.dirty = false;
      ++stats_.writebacks;
      writebacks_counter().add(1);
    }
  }
}

}  // namespace pdc::extmem
