#include "pdc/extmem/block_device.hpp"

#include <cstring>
#include <stdexcept>

#include "pdc/obs/obs.hpp"

namespace pdc::extmem {

namespace {

obs::Counter& reads_counter() {
  static obs::Counter& c = obs::counter("extmem.dev.block_reads");
  return c;
}

obs::Counter& writes_counter() {
  static obs::Counter& c = obs::counter("extmem.dev.block_writes");
  return c;
}

}  // namespace

BlockDevice::BlockDevice(std::size_t num_blocks, std::size_t block_size)
    : num_blocks_(num_blocks), block_size_(block_size) {
  if (num_blocks_ == 0) throw std::invalid_argument("num_blocks must be > 0");
  if (block_size_ == 0) throw std::invalid_argument("block_size must be > 0");
  data_.resize(num_blocks_ * block_size_);
}

void BlockDevice::check(std::size_t index, std::size_t span_bytes) const {
  if (index >= num_blocks_) throw std::out_of_range("block index");
  if (span_bytes != block_size_)
    throw std::invalid_argument("buffer must be exactly one block");
}

void BlockDevice::read_block(std::size_t index, std::span<std::byte> out) {
  PDC_TRACE_SCOPE("extmem.read_block");
  check(index, out.size());
  std::memcpy(out.data(), data_.data() + index * block_size_, block_size_);
  ++stats_.block_reads;
  reads_counter().add(1);
}

void BlockDevice::write_block(std::size_t index,
                              std::span<const std::byte> in) {
  PDC_TRACE_SCOPE("extmem.write_block");
  check(index, in.size());
  std::memcpy(data_.data() + index * block_size_, in.data(), block_size_);
  ++stats_.block_writes;
  writes_counter().add(1);
}

DeviceSpan::DeviceSpan(BlockDevice& dev, std::size_t first_block,
                       std::size_t count)
    : dev_(&dev), first_block_(first_block), count_(count) {
  if (dev.block_size() % sizeof(std::int64_t) != 0)
    throw std::invalid_argument("block_size must be a multiple of 8");
  vpb_ = dev.block_size() / sizeof(std::int64_t);
  if (first_block_ + blocks_spanned() > dev.num_blocks())
    throw std::out_of_range("region exceeds device capacity");
}

std::int64_t DeviceSpan::read_value(std::size_t i) const {
  if (i >= count_) throw std::out_of_range("DeviceSpan index");
  std::vector<std::byte> buf(dev_->block_size());
  dev_->read_block(first_block_ + i / vpb_, buf);
  std::int64_t v;
  std::memcpy(&v, buf.data() + (i % vpb_) * sizeof(v), sizeof(v));
  return v;
}

void DeviceSpan::write_value(std::size_t i, std::int64_t v) {
  if (i >= count_) throw std::out_of_range("DeviceSpan index");
  // Read-modify-write the containing block.
  std::vector<std::byte> buf(dev_->block_size());
  const std::size_t block = first_block_ + i / vpb_;
  dev_->read_block(block, buf);
  std::memcpy(buf.data() + (i % vpb_) * sizeof(v), &v, sizeof(v));
  dev_->write_block(block, buf);
}

void DeviceSpan::read_range(std::size_t first, std::size_t n,
                            std::vector<std::int64_t>& out) const {
  if (first + n > count_) throw std::out_of_range("read_range");
  out.resize(n);
  if (n == 0) return;
  std::vector<std::byte> buf(dev_->block_size());
  const std::size_t first_blk = first / vpb_;
  const std::size_t last_blk = (first + n - 1) / vpb_;
  std::size_t out_pos = 0;
  for (std::size_t b = first_blk; b <= last_blk; ++b) {
    dev_->read_block(first_block_ + b, buf);
    const std::size_t blk_first_value = b * vpb_;
    const std::size_t lo = std::max(first, blk_first_value);
    const std::size_t hi = std::min(first + n, blk_first_value + vpb_);
    std::memcpy(out.data() + out_pos,
                buf.data() + (lo - blk_first_value) * sizeof(std::int64_t),
                (hi - lo) * sizeof(std::int64_t));
    out_pos += hi - lo;
  }
}

void DeviceSpan::write_range(std::size_t first,
                             std::span<const std::int64_t> values) {
  if (first + values.size() > count_) throw std::out_of_range("write_range");
  if (values.empty()) return;
  std::vector<std::byte> buf(dev_->block_size());
  const std::size_t first_blk = first / vpb_;
  const std::size_t last_blk = (first + values.size() - 1) / vpb_;
  std::size_t in_pos = 0;
  for (std::size_t b = first_blk; b <= last_blk; ++b) {
    const std::size_t blk_first_value = b * vpb_;
    const std::size_t lo = std::max(first, blk_first_value);
    const std::size_t hi =
        std::min(first + values.size(), blk_first_value + vpb_);
    const bool full_block = (lo == blk_first_value) && (hi - lo == vpb_);
    if (!full_block) dev_->read_block(first_block_ + b, buf);  // RMW
    std::memcpy(buf.data() + (lo - blk_first_value) * sizeof(std::int64_t),
                values.data() + in_pos, (hi - lo) * sizeof(std::int64_t));
    dev_->write_block(first_block_ + b, buf);
    in_pos += hi - lo;
  }
}

BlockReader::BlockReader(DeviceSpan span) : span_(span) {}

std::int64_t BlockReader::next() {
  if (!has_next()) throw std::out_of_range("BlockReader exhausted");
  const std::size_t vpb = span_.values_per_block();
  if (!buffer_valid_ || pos_ >= buffer_first_ + buffer_.size()) {
    const std::size_t blk_first = (pos_ / vpb) * vpb;
    const std::size_t n = std::min(vpb, span_.size() - blk_first);
    span_.read_range(blk_first, n, buffer_);
    buffer_first_ = blk_first;
    buffer_valid_ = true;
  }
  return buffer_[pos_++ - buffer_first_];
}

BlockWriter::BlockWriter(DeviceSpan span) : span_(span) {
  buffer_.reserve(span_.values_per_block());
}

void BlockWriter::push(std::int64_t v) {
  if (pos_ + buffer_.size() >= span_.size())
    throw std::out_of_range("BlockWriter overflow");
  buffer_.push_back(v);
  if (buffer_.size() == span_.values_per_block()) {
    span_.write_range(pos_, buffer_);
    pos_ += buffer_.size();
    buffer_.clear();
  }
}

void BlockWriter::finish() {
  if (!buffer_.empty()) {
    span_.write_range(pos_, buffer_);
    pos_ += buffer_.size();
    buffer_.clear();
  }
}

}  // namespace pdc::extmem
