#pragma once
// Simulated block device for the CS41 I/O (external-memory) model. The
// model charges one unit per block transferred; this device *is* that
// counter, with an in-memory backing store so algorithms are fully
// executable and verifiable.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pdc::extmem {

/// Device transfer counters — the quantities the I/O model analyzes.
struct DeviceStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;

  [[nodiscard]] std::uint64_t total_ios() const {
    return block_reads + block_writes;
  }
};

/// Fixed-geometry block device: `num_blocks` blocks of `block_size` bytes.
/// All access is whole-block; byte addressing is the caller's job (that is
/// the point of the model).
class BlockDevice {
 public:
  BlockDevice(std::size_t num_blocks, std::size_t block_size);

  [[nodiscard]] std::size_t num_blocks() const { return num_blocks_; }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  [[nodiscard]] std::size_t capacity_bytes() const {
    return num_blocks_ * block_size_;
  }

  /// Read block `index` into `out` (must be exactly block_size bytes).
  void read_block(std::size_t index, std::span<std::byte> out);

  /// Write `in` (exactly block_size bytes) to block `index`.
  void write_block(std::size_t index, std::span<const std::byte> in);

  [[nodiscard]] const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void check(std::size_t index, std::size_t span_bytes) const;

  std::size_t num_blocks_;
  std::size_t block_size_;
  std::vector<std::byte> data_;
  DeviceStats stats_;
};

/// Typed view of a device region as an array of std::int64_t values, with
/// block-buffered sequential readers/writers used by the external
/// algorithms. values_per_block() == block_size / 8.
class DeviceSpan {
 public:
  /// Region of `count` values starting at `first_block`. block_size must
  /// be a multiple of 8 and the region must fit on the device.
  DeviceSpan(BlockDevice& dev, std::size_t first_block, std::size_t count);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t first_block() const { return first_block_; }
  [[nodiscard]] std::size_t values_per_block() const { return vpb_; }
  [[nodiscard]] std::size_t blocks_spanned() const {
    return (count_ + vpb_ - 1) / vpb_;
  }

  /// Random access — one block I/O per call. Intentionally expensive:
  /// the model charges you for ignoring blocking.
  [[nodiscard]] std::int64_t read_value(std::size_t i) const;
  void write_value(std::size_t i, std::int64_t v);

  /// Bulk helpers (block-granular, minimal I/O).
  void read_range(std::size_t first, std::size_t n,
                  std::vector<std::int64_t>& out) const;
  void write_range(std::size_t first, std::span<const std::int64_t> values);

 private:
  BlockDevice* dev_;
  std::size_t first_block_;
  std::size_t count_;
  std::size_t vpb_;
};

/// Sequential one-block-buffered reader over a DeviceSpan region.
class BlockReader {
 public:
  explicit BlockReader(DeviceSpan span);

  /// True while values remain.
  [[nodiscard]] bool has_next() const { return pos_ < span_.size(); }
  /// Next value (reads a block only at block boundaries).
  std::int64_t next();

 private:
  DeviceSpan span_;
  std::vector<std::int64_t> buffer_;
  std::size_t pos_ = 0;
  std::size_t buffer_first_ = 0;  // index of buffer_[0]
  bool buffer_valid_ = false;
};

/// Sequential one-block-buffered writer over a DeviceSpan region.
class BlockWriter {
 public:
  explicit BlockWriter(DeviceSpan span);
  void push(std::int64_t v);
  /// Flush the partial tail block. Must be called when done.
  void finish();
  [[nodiscard]] std::size_t written() const { return pos_; }

 private:
  DeviceSpan span_;
  std::vector<std::int64_t> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace pdc::extmem
