#pragma once
// Write-back LRU buffer cache in front of a BlockDevice — the OS buffer
// cache from CS45, reused by the out-of-core matrix algorithms so their
// device I/O counts reflect the "M bytes of fast memory" the model grants.

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "pdc/extmem/block_device.hpp"

namespace pdc::extmem {

struct BufferCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Caches `frames` device blocks with LRU replacement and write-back.
class BufferCache {
 public:
  BufferCache(BlockDevice& dev, std::size_t frames);

  /// Read `count` bytes at byte offset `offset` through the cache.
  void read(std::size_t offset, std::span<std::byte> out);

  /// Write bytes at byte offset `offset` through the cache (write-back:
  /// dirty frames hit the device only on eviction or flush).
  void write(std::size_t offset, std::span<const std::byte> in);

  /// Typed convenience for 8-byte values.
  [[nodiscard]] std::int64_t read_i64(std::size_t index);
  void write_i64(std::size_t index, std::int64_t v);
  [[nodiscard]] double read_f64(std::size_t index);
  void write_f64(std::size_t index, double v);

  /// Write all dirty frames back to the device.
  void flush();

  [[nodiscard]] const BufferCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t frames() const { return frames_; }
  [[nodiscard]] BlockDevice& device() { return *dev_; }
  /// frames * block_size — the cache's "M" in I/O-model terms.
  [[nodiscard]] std::size_t capacity_bytes() const {
    return frames_ * dev_->block_size();
  }

 private:
  struct Frame {
    std::size_t block = 0;
    bool dirty = false;
    std::vector<std::byte> data;
  };

  /// Returns the frame holding `block`, faulting it in if needed. On a
  /// miss the device read is skipped when `fill_from_device` is false —
  /// used by write() when the caller is about to overwrite the whole
  /// block, so write-only workloads cost zero read I/Os.
  Frame& get_frame(std::size_t block, bool fill_from_device = true);
  void evict_lru();

  BlockDevice* dev_;
  std::size_t frames_;
  std::list<Frame> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Frame>::iterator> index_;
  BufferCacheStats stats_;
};

}  // namespace pdc::extmem
