#pragma once
// External (out-of-core) k-way merge sort — the I/O-efficient algorithm
// CS41 uses as its unifying example. With N values, M bytes of memory and
// B-byte blocks, the algorithm does
//     Θ( (N/B) · log_{M/B}(N/M) )
// block transfers: run formation reads+writes everything once, then each
// merge pass reads+writes everything once, and the fan-in M/B - 1 bounds
// the number of passes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdc/extmem/block_device.hpp"

namespace pdc::extmem {

struct ExtSortConfig {
  std::size_t memory_bytes = 4096;  ///< the model's M
};

struct ExtSortStats {
  std::size_t values = 0;
  std::size_t initial_runs = 0;
  int merge_passes = 0;
  std::size_t fan_in = 0;
  std::uint64_t block_reads = 0;   ///< attributable to this sort
  std::uint64_t block_writes = 0;

  [[nodiscard]] std::uint64_t total_ios() const {
    return block_reads + block_writes;
  }
};

/// Sort the `n` int64 values in `input` (a region on `dev`) in place,
/// using `scratch` (a disjoint region of at least the same size, also on
/// `dev`) as run storage. Memory use is bounded by cfg.memory_bytes.
///
/// Throws std::invalid_argument if M < 3 blocks (need >= 2 input buffers +
/// 1 output buffer to merge) or the regions overlap.
ExtSortStats external_merge_sort(BlockDevice& dev, DeviceSpan input,
                                 DeviceSpan scratch,
                                 const ExtSortConfig& cfg);

/// Predicted block I/Os from the textbook formula:
///   2 * ceil(N/B) * (1 + passes),  passes = ceil(log_k(runs)),
/// with runs = ceil(N*8 / M) and k = max(2, M/B - 1).
[[nodiscard]] double predicted_sort_ios(std::size_t n_values,
                                        std::size_t memory_bytes,
                                        std::size_t block_bytes);

/// Host-side convenience for tests/benches: round-trip a vector through a
/// fresh device, sort it externally, and return the stats. `values` is
/// replaced by its sorted contents.
ExtSortStats external_merge_sort(std::vector<std::int64_t>& values,
                                 std::size_t block_bytes,
                                 std::size_t memory_bytes);

}  // namespace pdc::extmem
