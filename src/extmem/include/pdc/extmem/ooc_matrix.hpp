#pragma once
// Out-of-core matrix multiply in the I/O model (CS41 "Blocking" paradigm):
// square matrices of doubles live on the block device and are accessed
// through a BufferCache of M bytes. The naive triple loop incurs
// Θ(n^3 / B) I/Os; tiling with t x t tiles (3t^2 doubles <= M) brings it
// down to Θ(n^3 / (t·B)) — the blocked version's advantage is the
// experiment bench_extmem_ablation reproduces.

#include <cstddef>
#include <cstdint>

#include "pdc/extmem/block_device.hpp"
#include "pdc/extmem/buffer_cache.hpp"

namespace pdc::extmem {

/// n x n row-major matrix of doubles stored on a device starting at byte
/// offset `base_bytes`, accessed through a shared BufferCache.
class OocMatrix {
 public:
  OocMatrix(BufferCache& cache, std::size_t n, std::size_t base_bytes);

  [[nodiscard]] std::size_t n() const { return n_; }

  [[nodiscard]] double get(std::size_t r, std::size_t c);
  void set(std::size_t r, std::size_t c, double v);

  /// Fill with a deterministic pattern (tests) or zero.
  void fill_pattern(std::uint64_t seed);
  void fill_zero();

  /// Bytes this matrix occupies on the device.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return n_ * n_ * sizeof(double);
  }

  [[nodiscard]] BufferCache& cache() { return *cache_; }

 private:
  [[nodiscard]] std::size_t offset(std::size_t r, std::size_t c) const;

  BufferCache* cache_;
  std::size_t n_;
  std::size_t base_;
};

/// C = A * B with the naive i-j-k loop; every element access goes through
/// the cache. Returns device I/Os incurred (reads+writes below the cache).
std::uint64_t matmul_naive(OocMatrix& a, OocMatrix& b, OocMatrix& c);

/// C = A * B with t x t tiling. `tile` of 0 picks the largest t with
/// 3·t²·8 bytes <= cache capacity (frames * block_size).
std::uint64_t matmul_blocked(OocMatrix& a, OocMatrix& b, OocMatrix& c,
                             std::size_t tile = 0);

/// out = a^T, walking a row-by-row: writes stride n across out, so when a
/// column of blocks exceeds the cache this incurs Θ(n²) I/Os.
std::uint64_t transpose_naive(OocMatrix& a, OocMatrix& out);

/// out = a^T, cache-OBLIVIOUS: recursively split the larger dimension
/// until tiles are tiny; no tuning parameter, yet Θ(n²/B) I/Os once tiles
/// fit — the CS41 "I/O-efficient algorithms" capstone idea.
std::uint64_t transpose_cache_oblivious(OocMatrix& a, OocMatrix& out,
                                        std::size_t leaf = 4);

}  // namespace pdc::extmem
