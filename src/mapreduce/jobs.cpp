#include "pdc/mapreduce/jobs.hpp"

#include <algorithm>
#include <cctype>

namespace pdc::mapreduce {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

std::map<std::string, std::int64_t> word_count(
    std::span<const std::string> documents, const JobConfig& cfg,
    JobStats* stats) {
  return run_job<std::string, std::string, std::int64_t>(
      documents,
      [](const std::string& doc,
         const std::function<void(std::string, std::int64_t)>& emit) {
        for (auto& w : tokenize(doc)) emit(std::move(w), 1);
      },
      [](const std::string&, const std::vector<std::int64_t>& counts) {
        std::int64_t total = 0;
        for (auto c : counts) total += c;
        return total;
      },
      cfg, stats);
}

std::map<std::string, std::vector<std::int64_t>> inverted_index(
    std::span<const std::string> documents, const JobConfig& cfg) {
  // Mapper emits (word, doc id); reducer dedups and sorts the ids.
  // Doc ids come from a side vector of (text, id) pairs so the mapper
  // knows the id; build the paired input first.
  struct Doc {
    const std::string* text;
    std::int64_t id;
  };
  std::vector<Doc> docs;
  docs.reserve(documents.size());
  for (std::size_t i = 0; i < documents.size(); ++i)
    docs.push_back({&documents[i], static_cast<std::int64_t>(i)});

  return run_job<Doc, std::string, std::int64_t,
                 std::vector<std::int64_t>>(
      docs,
      [](const Doc& doc,
         const std::function<void(std::string, std::int64_t)>& emit) {
        for (auto& w : tokenize(*doc.text)) emit(std::move(w), doc.id);
      },
      [](const std::string&, const std::vector<std::int64_t>& ids) {
        std::vector<std::int64_t> sorted(ids);
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        return sorted;
      },
      cfg);
}

std::vector<std::string> synthetic_corpus(std::size_t docs,
                                          std::size_t words_per_doc,
                                          std::uint64_t seed) {
  static const char* kVocab[] = {
      "parallel", "distributed", "thread",  "process", "cache",  "memory",
      "lock",     "barrier",     "message", "reduce",  "scan",   "sort",
      "graph",    "matrix",      "kernel",  "page",    "disk",   "block",
      "signal",   "pipe",        "fork",    "wait",    "mutex",  "atomic",
      "latency",  "bandwidth",   "speedup", "amdahl",  "pram",   "bsp"};
  constexpr std::size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

  std::uint64_t s = seed ? seed : 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };

  std::vector<std::string> corpus;
  corpus.reserve(docs);
  for (std::size_t d = 0; d < docs; ++d) {
    std::string doc;
    for (std::size_t w = 0; w < words_per_doc; ++w) {
      // Zipf-ish: square the uniform draw so low indices dominate.
      const double u =
          static_cast<double>(next() % 10000) / 10000.0;
      const auto idx =
          static_cast<std::size_t>(u * u * static_cast<double>(kVocabSize));
      doc += kVocab[std::min(idx, kVocabSize - 1)];
      doc += ' ';
    }
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace pdc::mapreduce
