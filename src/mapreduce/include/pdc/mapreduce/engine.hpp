#pragma once
// Mini MapReduce engine (the CS87 Hadoop-lab substitute): the same three
// phases — parallel map with hash partitioning, shuffle/group-by-key,
// parallel reduce — at laptop scale on the pdc::core thread pool, with an
// optional combiner and per-phase statistics.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/core/team.hpp"
#include "pdc/obs/obs.hpp"

namespace pdc::mapreduce {

/// Intermediate key/value pair.
template <typename K, typename V>
struct KeyValue {
  K key;
  V value;
};

/// Engine configuration.
struct JobConfig {
  int map_workers = 2;
  int reduce_workers = 2;
  int partitions = 8;       ///< shuffle buckets (>= 1)
  bool use_combiner = true; ///< apply the reducer map-side when possible
};

/// Phase statistics, for the scaling bench and tests.
struct JobStats {
  std::size_t inputs = 0;
  std::size_t map_emitted = 0;     ///< pairs out of the mappers
  std::size_t shuffled = 0;        ///< pairs entering the shuffle (post-combine)
  std::size_t distinct_keys = 0;
};

/// Run a MapReduce job.
///
/// - `mapper(input, emit)` calls `emit(key, value)` any number of times.
/// - `reducer(key, values)` folds all values for a key into one result of
///   type R (defaults to V).
/// - K must be hashable (std::hash) and equality-comparable — the map-side
///   buckets and the shuffle are hash maps — as well as `<`-comparable for
///   the sorted output map.
/// - When `cfg.use_combiner` is set AND R == V, the reducer doubles as a
///   map-side combiner on each mapper's local buckets (legal when the
///   reduction is associative, as in word count). When R != V the flag is
///   ignored.
///
/// Returns key -> reduced value, plus stats through `stats_out`.
template <typename Input, typename K, typename V, typename R = V>
std::map<K, R> run_job(
    std::span<const Input> inputs,
    const std::type_identity_t<std::function<void(
        const Input&, const std::function<void(K, V)>&)>>& mapper,
    const std::type_identity_t<
        std::function<R(const K&, const std::vector<V>&)>>& reducer,
    const JobConfig& cfg, JobStats* stats_out = nullptr) {
  if (cfg.map_workers < 1 || cfg.reduce_workers < 1 || cfg.partitions < 1)
    throw std::invalid_argument("bad MapReduce config");

  JobStats stats;
  stats.inputs = inputs.size();
  const auto parts = static_cast<std::size_t>(cfg.partitions);

  // ---- map phase: each worker owns a contiguous input block and emits
  // into its own partitioned buckets (no shared mutable state). ----
  const auto workers = static_cast<std::size_t>(cfg.map_workers);
  // buckets[worker][partition] -> key -> values (hash maps: emit and
  // shuffle never need key order, only the final output map does)
  std::vector<std::vector<std::unordered_map<K, std::vector<V>>>> buckets(
      workers, std::vector<std::unordered_map<K, std::vector<V>>>(parts));
  std::vector<std::size_t> emitted(workers, 0);

  PDC_TRACE_SCOPE("mr.job");
  {
    PDC_TRACE_SCOPE("mr.map");
    core::Team::run(cfg.map_workers, [&](core::TeamContext& ctx) {
      const auto w = static_cast<std::size_t>(ctx.rank());
      const auto [lo, hi] = ctx.block_range(0, inputs.size());
      auto emit = [&](K key, V value) {
        ++emitted[w];
        const std::size_t p = std::hash<K>{}(key) % parts;
        buckets[w][p][std::move(key)].push_back(std::move(value));
      };
      std::function<void(K, V)> emit_fn = emit;
      for (std::size_t i = lo; i < hi; ++i) mapper(inputs[i], emit_fn);

      // Map-side combine: collapse each local bucket's value lists. Only
      // type-correct when the reducer's output feeds back in as a value.
      if constexpr (std::is_same_v<R, V>) {
        if (cfg.use_combiner) {
          for (auto& bucket : buckets[w]) {
            for (auto& [key, values] : bucket) {
              if (values.size() > 1) {
                V combined = reducer(key, values);
                values.clear();
                values.push_back(std::move(combined));
              }
            }
          }
        }
      }
    });
  }
  for (auto e : emitted) stats.map_emitted += e;

  // ---- shuffle: merge worker buckets per partition, partitions in
  // parallel under the work-stealing schedule — partition merge cost
  // tracks how many pairs hashed there, so hot keys skew it; a worker
  // that drew light partitions steals heavy ones instead of idling. Each
  // index p is executed exactly once, so the merge needs no locks
  // (worker buckets for one partition are only ever touched by that
  // partition's executor). ----
  std::vector<std::unordered_map<K, std::vector<V>>> grouped(parts);
  std::vector<std::size_t> shuffled_per_part(parts, 0);
  const int shuffle_workers =
      std::max(cfg.map_workers, cfg.reduce_workers);
  {
    PDC_TRACE_SCOPE("mr.shuffle");
    core::ForOptions fopt;
    fopt.threads = shuffle_workers;
    fopt.schedule = core::Schedule::kStealing;
    fopt.chunk = 1;  // a partition is the unit of stealing
    core::parallel_for(0, parts, fopt, [&](std::size_t p) {
      auto& merged = grouped[p];
      for (std::size_t w = 0; w < workers; ++w) {
        for (auto& [key, values] : buckets[w][p]) {
          auto& dst = merged[key];
          shuffled_per_part[p] += values.size();
          dst.insert(dst.end(), std::make_move_iterator(values.begin()),
                     std::make_move_iterator(values.end()));
        }
      }
    });
  }
  for (auto s : shuffled_per_part) stats.shuffled += s;

  // ---- reduce phase: partitions in parallel ----
  std::vector<std::map<K, R>> partial(parts);
  {
    PDC_TRACE_SCOPE("mr.reduce");
    core::Team::run(cfg.reduce_workers, [&](core::TeamContext& ctx) {
      for (std::size_t p = static_cast<std::size_t>(ctx.rank()); p < parts;
           p += static_cast<std::size_t>(ctx.size())) {
        for (auto& [key, values] : grouped[p])
          partial[p].emplace(key, reducer(key, values));
      }
    });
  }

  std::map<K, R> result;
  {
    PDC_TRACE_SCOPE("mr.merge");
    for (auto& part : partial) {
      stats.distinct_keys += part.size();
      result.merge(part);
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace pdc::mapreduce
