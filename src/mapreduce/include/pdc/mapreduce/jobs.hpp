#pragma once
// Library MapReduce jobs: word count (the canonical first Hadoop program)
// and an inverted index, plus a deterministic synthetic-corpus generator
// for benches and tests.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "pdc/mapreduce/engine.hpp"

namespace pdc::mapreduce {

/// Lowercase words of `text` split on non-alphanumeric characters.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& text);

/// Count word occurrences over the documents.
[[nodiscard]] std::map<std::string, std::int64_t> word_count(
    std::span<const std::string> documents, const JobConfig& cfg = {},
    JobStats* stats = nullptr);

/// word -> sorted list of document ids (index into `documents`) containing
/// it, each id listed once.
[[nodiscard]] std::map<std::string, std::vector<std::int64_t>> inverted_index(
    std::span<const std::string> documents, const JobConfig& cfg = {});

/// Deterministic synthetic corpus: `docs` documents of `words_per_doc`
/// words drawn Zipf-ishly from a fixed vocabulary.
[[nodiscard]] std::vector<std::string> synthetic_corpus(
    std::size_t docs, std::size_t words_per_doc, std::uint64_t seed = 42);

}  // namespace pdc::mapreduce
