#include "pdc/clist/rawlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdc::clist {

RawList::RawList(std::size_t elem_size, GrowthPolicy policy)
    : elem_size_(elem_size), policy_(policy) {
  if (elem_size_ == 0) throw std::invalid_argument("elem_size must be > 0");
  if (policy_.factor <= 1.0)
    throw std::invalid_argument("growth factor must be > 1.0");
}

RawList::RawList(const RawList& o)
    : elem_size_(o.elem_size_),
      policy_(o.policy_),
      size_(o.size_),
      capacity_(o.size_),  // copies are tight-fit
      stats_(o.stats_) {
  if (capacity_ > 0) {
    data_ = std::make_unique<std::byte[]>(capacity_ * elem_size_);
    std::memcpy(data_.get(), o.data_.get(), size_ * elem_size_);
  }
}

RawList& RawList::operator=(const RawList& o) {
  if (this != &o) {
    RawList tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

std::byte* RawList::slot(std::size_t index) const {
  return data_.get() + index * elem_size_;
}

void RawList::grow_to(std::size_t new_capacity) {
  if (new_capacity <= capacity_) return;
  auto fresh = std::make_unique<std::byte[]>(new_capacity * elem_size_);
  if (size_ > 0) {
    std::memcpy(fresh.get(), data_.get(), size_ * elem_size_);
    stats_.bytes_copied += size_ * elem_size_;
  }
  data_ = std::move(fresh);
  capacity_ = new_capacity;
  ++stats_.grow_count;
}

void RawList::reserve(std::size_t n) { grow_to(n); }

void RawList::append(const void* elem) {
  if (size_ == capacity_) {
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(capacity_) * policy_.factor);
    grow_to(std::max({scaled, capacity_ + policy_.min_step, std::size_t{1}}));
  }
  std::memcpy(slot(size_), elem, elem_size_);
  ++size_;
}

void RawList::insert(std::size_t index, const void* elem) {
  if (index > size_) throw std::out_of_range("insert index");
  if (size_ == capacity_) {
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(capacity_) * policy_.factor);
    grow_to(std::max({scaled, capacity_ + policy_.min_step, std::size_t{1}}));
  }
  const std::size_t tail = (size_ - index) * elem_size_;
  if (tail > 0) {
    std::memmove(slot(index + 1), slot(index), tail);
    stats_.shift_bytes += tail;
  }
  std::memcpy(slot(index), elem, elem_size_);
  ++size_;
}

void RawList::remove(std::size_t index) {
  if (index >= size_) throw std::out_of_range("remove index");
  const std::size_t tail = (size_ - index - 1) * elem_size_;
  if (tail > 0) {
    std::memmove(slot(index), slot(index + 1), tail);
    stats_.shift_bytes += tail;
  }
  --size_;
}

void* RawList::at(std::size_t index) {
  if (index >= size_) throw std::out_of_range("at index");
  return slot(index);
}

const void* RawList::at(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("at index");
  return slot(index);
}

void RawList::get(std::size_t index, void* out) const {
  std::memcpy(out, at(index), elem_size_);
}

void RawList::set(std::size_t index, const void* elem) {
  std::memcpy(at(index), elem, elem_size_);
}

}  // namespace pdc::clist
