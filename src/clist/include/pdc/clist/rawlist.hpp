#pragma once
// "Python lists in C" (CS31 lab): a growable, amortized-O(1)-append list
// implemented over raw untyped storage with explicit memcpy-style element
// movement — the C library the lab has students write, wrapped in RAII.
//
// RawList is type-erased (elements are fixed-size byte blobs, exactly like
// the void* C version); List<T> is the thin typed veneer for trivially
// copyable T.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace pdc::clist {

/// How capacity grows when an append finds the list full.
struct GrowthPolicy {
  /// Multiplier applied to the old capacity (must be > 1.0).
  double factor = 2.0;
  /// Minimum number of elements added per growth step.
  std::size_t min_step = 4;
};

/// Reallocation statistics — the lab report asks students to count how many
/// times the list grew and how many bytes were copied, to see amortized
/// analysis in practice.
struct ListStats {
  std::size_t grow_count = 0;
  std::size_t bytes_copied = 0;  ///< total element bytes moved by growth
  std::size_t shift_bytes = 0;   ///< bytes moved by insert/remove shifting
};

/// Dynamically sized array of fixed-size, trivially copyable blobs.
class RawList {
 public:
  /// `elem_size` is the byte size of each element (> 0).
  explicit RawList(std::size_t elem_size, GrowthPolicy policy = {});

  RawList(const RawList& o);
  RawList& operator=(const RawList& o);
  RawList(RawList&&) noexcept = default;
  RawList& operator=(RawList&&) noexcept = default;
  ~RawList() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t elem_size() const { return elem_size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const ListStats& stats() const { return stats_; }

  /// Copy `elem_size()` bytes from `elem` onto the end.
  void append(const void* elem);

  /// Insert at `index` (0..size), shifting the tail right.
  void insert(std::size_t index, const void* elem);

  /// Remove the element at `index` (0..size-1), shifting the tail left.
  void remove(std::size_t index);

  /// Pointer to element storage; valid until the next mutation.
  [[nodiscard]] void* at(std::size_t index);
  [[nodiscard]] const void* at(std::size_t index) const;

  /// Copy element `index` into `out` (elem_size() bytes).
  void get(std::size_t index, void* out) const;
  /// Overwrite element `index` from `elem`.
  void set(std::size_t index, const void* elem);

  /// Ensure capacity >= n without changing size.
  void reserve(std::size_t n);
  /// Drop all elements (capacity retained).
  void clear() { size_ = 0; }

 private:
  void grow_to(std::size_t new_capacity);
  [[nodiscard]] std::byte* slot(std::size_t index) const;

  std::size_t elem_size_;
  GrowthPolicy policy_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::unique_ptr<std::byte[]> data_;
  ListStats stats_;
};

/// Typed wrapper over RawList for trivially copyable element types.
template <typename T>
  requires std::is_trivially_copyable_v<T>
class List {
 public:
  explicit List(GrowthPolicy policy = {}) : raw_(sizeof(T), policy) {}

  [[nodiscard]] std::size_t size() const { return raw_.size(); }
  [[nodiscard]] std::size_t capacity() const { return raw_.capacity(); }
  [[nodiscard]] bool empty() const { return raw_.empty(); }
  [[nodiscard]] const ListStats& stats() const { return raw_.stats(); }

  void append(const T& v) { raw_.append(&v); }
  void insert(std::size_t i, const T& v) { raw_.insert(i, &v); }
  void remove(std::size_t i) { raw_.remove(i); }
  void reserve(std::size_t n) { raw_.reserve(n); }
  void clear() { raw_.clear(); }

  [[nodiscard]] T get(std::size_t i) const {
    T out;
    raw_.get(i, &out);
    return out;
  }
  void set(std::size_t i, const T& v) { raw_.set(i, &v); }

  [[nodiscard]] T operator[](std::size_t i) const { return get(i); }

 private:
  RawList raw_;
};

}  // namespace pdc::clist
