#pragma once
// Memory-layout inspection (CS31 "low-level memory" goals): hexdump raw
// object bytes, detect endianness, and report struct field layouts with
// padding — the observations the lab has students make with gdb.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pdc::clist {

/// Endianness of the host as observed by byte inspection.
enum class Endian { kLittle, kBig };

/// Inspect a multi-byte integer in memory to determine host byte order.
[[nodiscard]] Endian host_endianness();

/// Classic offset/hex/ascii dump of a byte range, 16 bytes per line:
///   00000000  01 00 00 00 02 00 00 00  ...
[[nodiscard]] std::string hexdump(std::span<const std::byte> bytes);

/// Convenience overload for any trivially copyable object.
template <typename T>
[[nodiscard]] std::string hexdump_object(const T& obj) {
  return hexdump(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&obj), sizeof(T)));
}

/// One field of a described struct layout.
struct FieldLayout {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
};

/// A struct layout report: fields plus total size, revealing padding.
struct StructLayout {
  std::string name;
  std::size_t size = 0;
  std::size_t alignment = 0;
  std::vector<FieldLayout> fields;

  /// Bytes of padding = size - sum(field sizes).
  [[nodiscard]] std::size_t padding_bytes() const;
  /// Render as an aligned report, flagging gaps between fields.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace pdc::clist
