#include "pdc/clist/layout.hpp"

#include <cstring>
#include <iomanip>
#include <sstream>

namespace pdc::clist {

Endian host_endianness() {
  const std::uint32_t probe = 0x01020304;
  std::uint8_t first = 0;
  std::memcpy(&first, &probe, 1);
  return first == 0x04 ? Endian::kLittle : Endian::kBig;
}

std::string hexdump(std::span<const std::byte> bytes) {
  std::ostringstream oss;
  oss << std::hex << std::setfill('0');
  for (std::size_t off = 0; off < bytes.size(); off += 16) {
    oss << std::setw(8) << off << "  ";
    const std::size_t n = std::min<std::size_t>(16, bytes.size() - off);
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        oss << std::setw(2)
            << static_cast<unsigned>(std::to_integer<std::uint8_t>(
                   bytes[off + i]))
            << ' ';
      } else {
        oss << "   ";
      }
      if (i == 7) oss << ' ';
    }
    oss << ' ';
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = std::to_integer<std::uint8_t>(bytes[off + i]);
      oss << (c >= 0x20 && c < 0x7f ? static_cast<char>(c) : '.');
    }
    oss << '\n';
  }
  return oss.str();
}

std::size_t StructLayout::padding_bytes() const {
  std::size_t fields_total = 0;
  for (const auto& f : fields) fields_total += f.size;
  return size >= fields_total ? size - fields_total : 0;
}

std::string StructLayout::to_string() const {
  std::ostringstream oss;
  oss << "struct " << name << " (size " << size << ", align " << alignment
      << ")\n";
  std::size_t cursor = 0;
  for (const auto& f : fields) {
    if (f.offset > cursor)
      oss << "  [pad " << (f.offset - cursor) << " bytes]\n";
    oss << "  +" << f.offset << "\t" << f.name << " : " << f.size
        << " bytes\n";
    cursor = f.offset + f.size;
  }
  if (size > cursor) oss << "  [tail pad " << (size - cursor) << " bytes]\n";
  return oss.str();
}

}  // namespace pdc::clist
