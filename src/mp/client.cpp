#include "pdc/mp/client.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "pdc/obs/obs.hpp"

namespace pdc::mp {

namespace {

// Wire formats (all int64):
//   request batch: [seq, n_puts, k1, v1, ..., n_gets, g1, ...]
//   reply batch:   [seq, found1, value1, ...]   (one pair per unique get,
//                                                in request order)
// seq is per (client -> server) flow, starting at 1, so a server can
// assert exactly-once, in-order application per source.

struct ClientMetrics {
  obs::Counter& puts = obs::counter("dht.client.puts");
  obs::Counter& gets = obs::counter("dht.client.gets");
  obs::Counter& shed = obs::counter("dht.client.shed");
  obs::Counter& batches = obs::counter("dht.client.batches");
  obs::Counter& coalesced_puts = obs::counter("dht.client.coalesced_puts");
  obs::Counter& deduped_gets = obs::counter("dht.client.deduped_gets");
  obs::Counter& served_batches = obs::counter("dht.client.served_batches");
  obs::Counter& served_puts = obs::counter("dht.client.served_puts");
  obs::Counter& served_gets = obs::counter("dht.client.served_gets");
  obs::Counter& local_ops = obs::counter("dht.client.local_ops");
  obs::Gauge& inflight = obs::gauge("dht.client.inflight");
  obs::Histogram& batch_ops = obs::histogram("dht.client.batch_ops");
  obs::Histogram& op_ns = obs::histogram("dht.client.op_ns");

  static ClientMetrics& instance() {
    static ClientMetrics m;
    return m;
  }
};

}  // namespace

GetResult DhtFuture::wait() {
  if (!valid()) throw std::logic_error("dht: wait() on an empty future");
  client_->wait_for(*op_);
  if (op_->status == DhtOpStatus::kShed)
    throw std::runtime_error("dht: op was shed by admission control (key " +
                             std::to_string(op_->key) + ")");
  return GetResult{op_->key, op_->found, op_->value};
}

DhtClient::DhtClient(RankContext& ctx, Options opts)
    : ctx_(&ctx),
      opts_(opts),
      pool_(std::make_unique<detail::OpPool>()),
      dest_(static_cast<std::size_t>(ctx.size())),
      peer_seq_(static_cast<std::size_t>(ctx.size()), 0) {
  if (opts_.window < 1) throw std::invalid_argument("dht: window must be >= 1");
  if (opts_.max_batch < 1)
    throw std::invalid_argument("dht: max_batch must be >= 1");
  for (auto& q : dest_) {
    q.put_idx.init(static_cast<std::size_t>(opts_.max_batch));
    q.get_idx.init(static_cast<std::size_t>(opts_.max_batch));
  }
}

DhtClient::~DhtClient() {
  flush_pending_counts();
  // Drop the client's own refs first, then check for futures that are
  // still alive (documented misuse: futures must not outlive the client).
  // Leaking the pool turns their dangling ops into a bounded leak instead
  // of a use-after-free.
  for (auto& q : dest_) {
    q.open_puts.clear();
    q.open_gets.clear();
    q.sent.clear();
  }
  if (pool_->live > 0) (void)pool_.release();
}

int DhtClient::owner(std::int64_t key) const {
  return shard_owner(key, ctx_->size());
}

DhtFuture DhtClient::put(std::int64_t key, std::int64_t value) {
  return submit(false, key, value);
}

DhtFuture DhtClient::get(std::int64_t key) { return submit(true, key, 0); }

DhtFuture DhtClient::submit(bool is_get, std::int64_t key,
                            std::int64_t value) {
  if (shut_down_)
    throw std::logic_error("dht: submit after shutdown()");
  auto& m = ClientMetrics::instance();
  (is_get ? pending_.gets : pending_.puts) += 1;
  const int d = owner(key);

  detail::OpRef op = pool_->take();
  op->key = key;
  op->value = value;
  op->dest = d;
  op->is_get = is_get;
  if ((clock_tick_++ % kClockStride) == 0)
    cached_now_ = std::chrono::steady_clock::now();
  op->submitted = cached_now_;

  // Self-owned keys take the local fast path: the shard lives in this
  // client, so apply/answer directly — no batch, no wire, no window.
  // BspHashMap's alltoall skips self the same way.
  if (d == ctx_->rank()) {
    pending_.local += 1;
    if (is_get) {
      const auto it = shard_.find(key);
      complete(*op, it != shard_.end(), it != shard_.end() ? it->second : 0,
               op->submitted);
    } else {
      shard_[key] = value;
      complete(*op, true, value, op->submitted);
    }
    return DhtFuture(this, std::move(op));
  }

  auto& q = dest_[static_cast<std::size_t>(d)];
  // Admission control: the shard's window is full. Shed, or block while
  // pumping progress (we keep serving our own shard — backpressure, not
  // deadlock).
  if (q.inflight_ops >= opts_.window) {
    if (opts_.shed) {
      op->status = DhtOpStatus::kShed;
      m.shed.add();
      return DhtFuture(this, std::move(op));
    }
    while (q.inflight_ops >= opts_.window) {
      const auto seen = ctx_->arrivals();
      if (!poll_once()) {
        check_dest_alive(d);
        (void)ctx_->wait_arrivals(seen);
      }
    }
    clock_tick_ = 0;  // the blocked gap must not inflate later ops' stamps
  }

  if (is_get) {
    const auto [idx, fresh] =
        q.get_idx.upsert(key, static_cast<std::uint32_t>(q.get_keys.size()));
    if (fresh) {
      q.get_keys.push_back(key);
      q.open_gets.push_back(op);
    } else {
      // Asked once, fanned out: push onto the key's waiter chain (the new
      // op's raw link takes over the old head's reference).
      op->next_waiter = q.open_gets[idx].release();
      q.open_gets[idx] = op;
      pending_.dedup += 1;
    }
  } else {
    const auto [idx, fresh] =
        q.put_idx.upsert(key, static_cast<std::uint32_t>(q.put_kv.size()));
    if (fresh) {
      q.put_kv.emplace_back(key, value);
    } else {
      q.put_kv[idx].second = value;  // last writer wins in-batch
      pending_.coalesce += 1;
    }
    q.open_puts.push_back(op);
  }
  ++q.open_ops;
  ++q.inflight_ops;
  ++outstanding_;

  maybe_send(d);
  return DhtFuture(this, std::move(op));
}

void DhtClient::maybe_send(int dest) {
  auto& q = dest_[static_cast<std::size_t>(dest)];
  // Ship when the batch is full, or eagerly when the wire to this shard
  // is idle (an isolated op should not wait for company) — under load the
  // in-flight batch's round trip is exactly the coalescing window.
  if (q.open_ops > 0 && (q.open_ops >= opts_.max_batch || q.sent.empty()))
    send_batch(dest);
}

void DhtClient::send_batch(int dest) {
  auto& m = ClientMetrics::instance();
  auto& q = dest_[static_cast<std::size_t>(dest)];

  SentBatch batch;
  batch.seq = ++q.next_seq;
  batch.ops = q.open_ops;
  batch.puts = std::move(q.open_puts);
  batch.gets = std::move(q.open_gets);

  std::vector<std::int64_t> msg;
  msg.reserve(3 + 2 * q.put_kv.size() + q.get_keys.size());
  msg.push_back(batch.seq);
  msg.push_back(static_cast<std::int64_t>(q.put_kv.size()));
  for (const auto& [k, v] : q.put_kv) {
    msg.push_back(k);
    msg.push_back(v);
  }
  msg.push_back(static_cast<std::int64_t>(q.get_keys.size()));
  for (const auto k : q.get_keys) msg.push_back(k);

  m.batches.add();
  m.batch_ops.record(static_cast<std::uint64_t>(q.open_ops));
  m.inflight.add(q.open_ops);
  flush_pending_counts();

  q.put_kv.clear();
  q.put_idx.clear();
  q.get_keys.clear();
  q.get_idx.clear();
  q.open_puts.clear();
  q.open_gets.clear();
  q.open_ops = 0;
  q.sent.push_back(std::move(batch));

  tagged_send(dest, kDhtReqTag, std::move(msg));
}

void DhtClient::tagged_send(int dest, int tag,
                            std::vector<std::int64_t> data) {
  ReliableModeScope scope(*ctx_, opts_.reliable);
  ctx_->send(dest, tag, std::move(data));
}

bool DhtClient::serve_once() {
  bool progress = false;
  const int p = ctx_->size();
  for (int s = 0; s < p; ++s) {
    if (!ctx_->probe(s, kDhtReqTag)) continue;
    const Message msg = ctx_->recv(s, kDhtReqTag);
    handle_request(s, msg);
    progress = true;
  }
  return progress;
}

void DhtClient::handle_request(int source, const Message& msg) {
  PDC_TRACE_SCOPE("dht.serve_batch");
  auto& m = ClientMetrics::instance();
  const auto us = static_cast<std::size_t>(source);
  std::size_t i = 0;
  const auto seq = msg.data.at(i++);
  if (seq != peer_seq_[us] + 1)
    throw std::logic_error(
        "dht: batch desync from rank " + std::to_string(source) +
        " (expected " + std::to_string(peer_seq_[us] + 1) + ", got " +
        std::to_string(seq) + ") — a batch was replayed or lost");
  peer_seq_[us] = seq;

  const auto n_puts = static_cast<std::size_t>(msg.data.at(i++));
  for (std::size_t k = 0; k < n_puts; ++k) {
    const auto key = msg.data.at(i++);
    const auto value = msg.data.at(i++);
    shard_[key] = value;
  }
  const auto n_gets = static_cast<std::size_t>(msg.data.at(i++));
  std::vector<std::int64_t> reply;
  reply.reserve(1 + 2 * n_gets);
  reply.push_back(seq);
  for (std::size_t k = 0; k < n_gets; ++k) {
    const auto key = msg.data.at(i++);
    const auto it = shard_.find(key);
    reply.push_back(it != shard_.end() ? 1 : 0);
    reply.push_back(it != shard_.end() ? it->second : 0);
  }
  m.served_batches.add();
  m.served_puts.add(n_puts);
  m.served_gets.add(n_gets);
  tagged_send(source, kDhtRepTag, std::move(reply));
}

bool DhtClient::absorb_replies() {
  bool progress = false;
  const int p = ctx_->size();
  for (int d = 0; d < p; ++d) {
    auto& q = dest_[static_cast<std::size_t>(d)];
    while (!q.sent.empty() && ctx_->probe(d, kDhtRepTag)) {
      const Message msg = ctx_->recv(d, kDhtRepTag);
      SentBatch batch = std::move(q.sent.front());
      q.sent.pop_front();
      std::size_t i = 0;
      if (msg.data.at(i++) != batch.seq)
        throw std::logic_error("dht: reply desync from rank " +
                               std::to_string(d) + " — replies reordered");
      // One clock sample prices the whole batch: its ops all complete now.
      const auto now = std::chrono::steady_clock::now();
      for (const auto& op : batch.puts) complete(*op, true, op->value, now);
      for (const auto& head : batch.gets) {
        const auto found = msg.data.at(i++) == 1;
        const auto value = msg.data.at(i++);
        for (detail::DhtOp* w = head.get(); w != nullptr; w = w->next_waiter)
          complete(*w, found, value, now);
      }
      q.inflight_ops -= batch.ops;
      outstanding_ -= batch.ops;
      ClientMetrics::instance().inflight.add(-batch.ops);
      progress = true;
      maybe_send(d);  // the wire went idle: push what coalesced meanwhile
    }
  }
  return progress;
}

void DhtClient::complete(detail::DhtOp& op, bool found, std::int64_t value,
                         std::chrono::steady_clock::time_point now) {
  op.status = DhtOpStatus::kDone;
  op.found = found;
  op.value = value;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - op.submitted)
          .count();
  ClientMetrics::instance().op_ns.record(
      ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
}

void DhtClient::flush_pending_counts() {
  auto& m = ClientMetrics::instance();
  if (pending_.puts != 0) m.puts.add(pending_.puts);
  if (pending_.gets != 0) m.gets.add(pending_.gets);
  if (pending_.local != 0) m.local_ops.add(pending_.local);
  if (pending_.dedup != 0) m.deduped_gets.add(pending_.dedup);
  if (pending_.coalesce != 0) m.coalesced_puts.add(pending_.coalesce);
  pending_ = PendingCounts{};
}

bool DhtClient::poll_once() {
  bool progress = serve_once();
  if (absorb_replies()) progress = true;
  return progress;
}

void DhtClient::poll() {
  flush_pending_counts();
  (void)poll_once();
}

void DhtClient::flush() {
  for (int d = 0; d < ctx_->size(); ++d)
    if (dest_[static_cast<std::size_t>(d)].open_ops > 0) send_batch(d);
}

void DhtClient::check_dest_alive(int dest) const {
  const auto& q = dest_[static_cast<std::size_t>(dest)];
  if (q.inflight_ops > 0 && !ctx_->peer_running(dest) &&
      !ctx_->probe(dest, kDhtRepTag))
    throw RankFailedError(dest, "dht: shard owner rank " +
                                    std::to_string(dest) + " stopped with " +
                                    std::to_string(q.inflight_ops) +
                                    " ops outstanding");
}

void DhtClient::wait_for(const detail::DhtOp& op) {
  flush_pending_counts();
  while (op.status == DhtOpStatus::kPending) {
    const auto seen = ctx_->arrivals();
    if (!poll_once()) {
      check_dest_alive(op.dest);
      (void)ctx_->wait_arrivals(seen);
    }
  }
}

void DhtClient::drain() {
  flush();
  flush_pending_counts();
  while (outstanding_ > 0) {
    const auto seen = ctx_->arrivals();
    if (!poll_once()) {
      for (int d = 0; d < ctx_->size(); ++d) check_dest_alive(d);
      (void)ctx_->wait_arrivals(seen);
    }
  }
  clock_tick_ = 0;  // idle time after a drain must not inflate op stamps
}

Message DhtClient::take_serving(int source, int tag) {
  while (true) {
    const auto seen = ctx_->arrivals();
    if (ctx_->probe(source, tag)) return ctx_->recv(source, tag);
    if (!poll_once()) {
      if (!ctx_->peer_running(source) && !ctx_->probe(source, tag))
        throw RankFailedError(
            source, "dht: rank " + std::to_string(source) +
                        " stopped before completing the fence/shutdown "
                        "handshake");
      (void)ctx_->wait_arrivals(seen);
    }
  }
}

void DhtClient::fence() {
  PDC_TRACE_SCOPE("dht.fence");
  drain();
  // Every rank quiesced its own ops before taking part, so once rank 0
  // holds a token from everyone, every pre-fence op in the system has
  // been applied — then 0 releases. Both waits keep serving: a peer may
  // still be draining (and needing answers from us) when we get here.
  const int p = ctx_->size();
  if (p == 1) return;
  if (ctx_->rank() == 0) {
    for (int s = 1; s < p; ++s) (void)take_serving(s, kDhtFenceTag);
    for (int s = 1; s < p; ++s) tagged_send(s, kDhtFenceTag, {});
  } else {
    tagged_send(0, kDhtFenceTag, {});
    (void)take_serving(0, kDhtFenceTag);
  }
}

void DhtClient::shutdown() {
  if (shut_down_) return;
  PDC_TRACE_SCOPE("dht.shutdown");
  drain();
  // Announce "this rank will submit no more ops", then serve until every
  // peer has said the same — a peer's DONE arrives strictly after its
  // last request batch (per-flow FIFO), and it only sends DONE once all
  // its replies are in, so after P-1 DONEs our mailbox holds no unserved
  // work and nobody needs us anymore.
  const int p = ctx_->size();
  for (int s = 0; s < p; ++s)
    if (s != ctx_->rank()) tagged_send(s, kDhtDoneTag, {});
  for (int s = 0; s < p; ++s)
    if (s != ctx_->rank()) (void)take_serving(s, kDhtDoneTag);
  shut_down_ = true;
}

}  // namespace pdc::mp
