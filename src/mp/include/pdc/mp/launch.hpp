#pragma once
// Multi-process SPMD launcher: fork/exec this very binary once per rank
// and run a registered body in each child over a process transport.
//
// Usage: a test or bench registers its SPMD bodies at static-init time
//
//   PDC_SPMD_BODY(ring_digest) {       // (RankContext& ctx, BodyCtx& io)
//     auto sum = ctx.allreduce(ctx.rank(), ReduceOp::kSum);
//     io.out = std::to_string(sum);    // this rank's digest
//   }
//
// and its main() calls launch::maybe_run_child(argc, argv) FIRST: in the
// parent it is a no-op returning false; in a re-exec'd child it joins the
// world named by the --pdc-* flags, runs the body, writes io.out to the
// per-rank out file, and exits (0 ok, 42 RankFailedError, 43 any other
// exception) without ever reaching the caller's own logic.
//
// The parent side, run_spmd(), forks the children (via /proc/self/exe),
// reaps them PROMPTLY (the shm transport's pid-probe liveness relies on
// killed children not lingering as zombies), enforces a wall-clock
// timeout with SIGKILL, and aggregates exit codes, per-rank digests, and
// error text into a LaunchResult that mirrors what a single in-process
// Communicator::run would have produced.

#include <chrono>
#include <string>
#include <vector>

#include "pdc/mp/comm.hpp"
#include "pdc/mp/fault.hpp"
#include "pdc/mp/transport.hpp"

namespace pdc::mp::launch {

/// Per-rank I/O handed to a registered body alongside its RankContext.
struct BodyCtx {
  std::vector<std::string> args;  ///< forwarded --pdc-arg values, in order
  std::string out;                ///< written to the rank's out file on exit
};

using SpmdBodyFn = void (*)(mp::RankContext&, BodyCtx&);

/// Register a body under `name` (normally via PDC_SPMD_BODY). Returns
/// true so it can initialize a static. Duplicate names throw.
bool register_body(const std::string& name, SpmdBodyFn fn);

/// If argv carries --pdc-spmd-body=NAME, run that body as rank
/// --pdc-rank of a --pdc-world world over --pdc-transport and exit the
/// process. Otherwise return false. Call first thing in main().
bool maybe_run_child(int argc, char** argv);

struct LaunchOptions {
  std::string body;  ///< a PDC_SPMD_BODY-registered name
  int world = 2;
  TransportKind kind = TransportKind::kShm;
  FaultPlan plan;                 ///< forwarded to every rank
  RetryPolicy retry;              ///< forwarded to every rank
  bool reliable = false;          ///< body runs with set_reliable(true)
  std::vector<std::string> args;  ///< forwarded to the body verbatim
  std::chrono::milliseconds timeout{30000};
};

struct RankResult {
  int exit_code = -1;   ///< exit status; meaningless if signaled
  bool signaled = false;
  int term_signal = 0;
  std::string out;      ///< the body's digest (out-file contents)
  std::string error;    ///< exception text, when the rank failed
};

struct LaunchResult {
  enum Outcome {
    kOk,          ///< every rank exited 0
    kRankFailed,  ///< >=1 rank threw RankFailedError or died by SIGKILL
    kError,       ///< >=1 rank threw something else / crashed / misbehaved
    kTimeout,     ///< wall-clock budget blown; stragglers were SIGKILLed
  };
  Outcome outcome = kError;
  std::vector<RankResult> ranks;
  /// First rank that died by SIGKILL (the fault plan's victim), or -1.
  int killed_rank = -1;
  /// Representative error text (first failing rank's), empty when kOk.
  std::string error;
  /// Whole-world traffic: the sum of every rank process's ledger, read
  /// after its Communicator finished (fully quiescent, so the receiver-
  /// side counters are complete — the cross-backend-comparable view).
  /// Best-effort when ranks died: a SIGKILLed rank contributes nothing.
  TrafficStats traffic;

  [[nodiscard]] bool ok() const { return outcome == kOk; }
};

/// Fork/exec one child per rank, wait for all of them (reaping promptly),
/// and aggregate. Endpoint names and out files are generated under a
/// fresh private temp directory, removed before returning.
LaunchResult run_spmd(const LaunchOptions& opt);

/// Round-trippable FaultPlan text (hexfloat probabilities, so replay is
/// exact). Used for --pdc-plan and by the fuzz harness's repro lines.
[[nodiscard]] std::string plan_to_flags(const FaultPlan& plan);
[[nodiscard]] FaultPlan plan_from_flags(const std::string& s);

}  // namespace pdc::mp::launch

/// Define + register an SPMD body callable by name from run_spmd. The
/// block that follows is the body: (RankContext& ctx, BodyCtx& io).
#define PDC_SPMD_BODY(name)                                                  \
  static void pdc_spmd_body_##name(::pdc::mp::RankContext& ctx,              \
                                   ::pdc::mp::launch::BodyCtx& io);          \
  [[maybe_unused]] static const bool pdc_spmd_reg_##name =                   \
      ::pdc::mp::launch::register_body(#name, &pdc_spmd_body_##name);        \
  static void pdc_spmd_body_##name(::pdc::mp::RankContext& ctx,              \
                                   ::pdc::mp::launch::BodyCtx& io)
