#pragma once
// Deterministic fault injection for the message-passing substrate.
//
// A FaultPlan turns the perfect in-process "network" into a lossy,
// reordering, duplicating, rank-killing one. Every decision (drop this
// delivery? duplicate it? hold it back?) is a pure hash of
// (plan.seed, flow, attempt#), so a given (seed, plan) pair replays the
// same fault schedule regardless of thread interleaving — the property
// the stress harness relies on to shrink and reproduce failures.
//
// Faults apply to the *reliable* channel (see RankContext::set_reliable),
// because that is the layer with a recovery path: dropping a message on
// the plain channel would guarantee a hang, and the point of the harness
// is that faulty runs either produce the fault-free answer or fail with
// a clean RankFailedError — never a hang, never a wrong answer.
// Rank-kill applies to the whole rank regardless of channel.

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pdc::mp {

/// Thrown (by Communicator::run and by blocked channel operations) when a
/// peer rank died — killed by the fault plan, or exited/threw while a
/// matching message can no longer arrive. rank() is the dead peer, or -1
/// when no single rank can be blamed (e.g. an any-source receive after
/// every peer exited).
class RankFailedError : public std::runtime_error {
 public:
  RankFailedError(int rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

/// Seeded, deterministic fault schedule for one Communicator.
struct FaultPlan {
  double drop = 0.0;        ///< P(a data or ack delivery attempt is eaten)
  double dup = 0.0;         ///< P(a delivered data message arrives twice)
  bool reorder = false;     ///< hold messages back to scramble arrival order
  double delay_prob = 0.25; ///< P(hold a delivery) when reorder is on
  int max_delay = 3;        ///< held messages release after <= N later deliveries
  int kill_rank = -1;       ///< rank to kill (-1 = nobody)
  int kill_after_ops = 0;   ///< channel ops the victim completes before dying
  bool jitter = false;      ///< sprinkle deterministic yields to shake schedules
  std::uint64_t seed = 0;   ///< the only source of randomness

  [[nodiscard]] bool active() const {
    return drop > 0 || dup > 0 || reorder || kill_rank >= 0 || jitter;
  }
  [[nodiscard]] bool kills() const { return kill_rank >= 0; }

  /// Stable one-line rendering, printed in repro lines and error messages.
  [[nodiscard]] std::string describe() const;
};

/// Retransmission knobs for the reliable channel. The transport ack is
/// generated at delivery time, so backoff waits are only paid when the
/// fault plan actually eats or delays a message.
struct RetryPolicy {
  std::chrono::microseconds initial_backoff{200};
  int backoff_factor = 2;
  std::chrono::microseconds max_backoff{5000};
  /// Give up and throw RankFailedError after this much time without an
  /// ack from a peer that is not known to be dead.
  std::chrono::milliseconds give_up{5000};
};

namespace detail {

/// Thrown inside a rank to simulate its death; deliberately NOT derived
/// from std::exception so SPMD bodies catching std::exception cannot
/// swallow their own demise. Communicator::run translates it.
struct RankKilledError {};

/// splitmix64 finalizer — the deterministic decision hash.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] inline std::uint64_t fault_hash(std::uint64_t seed,
                                              std::uint64_t salt,
                                              std::uint64_t a, std::uint64_t b,
                                              std::uint64_t c) {
  return mix64(mix64(mix64(mix64(seed ^ salt) ^ a) ^ b) ^ c);
}

/// True with probability p, decided by hash bits (53-bit mantissa trick).
[[nodiscard]] inline bool chance(double p, std::uint64_t h) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

inline constexpr std::uint64_t kSaltDrop = 0x64726f70ULL;      // "drop"
inline constexpr std::uint64_t kSaltDup = 0x647570ULL;         // "dup"
inline constexpr std::uint64_t kSaltDelay = 0x64656c61ULL;     // "dela"
inline constexpr std::uint64_t kSaltDelayN = 0x64656c6eULL;    // "deln"
inline constexpr std::uint64_t kSaltAckDrop = 0x61636b64ULL;   // "ackd"
inline constexpr std::uint64_t kSaltJitter = 0x6a697474ULL;    // "jitt"

}  // namespace detail

}  // namespace pdc::mp
