#pragma once
// The transport seam under mp::Communicator.
//
// Everything above this line — collectives, the reliable channel's
// seq/ack/retransmit protocol, the DHT, fault gating — speaks in Frames:
// typed, tagged, rank-addressed packets. Everything below is a Transport:
// a frame mover with rank liveness. Three backends implement it:
//
//  - inproc  (transport_inproc.cpp): all P ranks are threads of this
//    process; send() hands the frame straight to the destination mailbox.
//    The seed behavior, byte for byte.
//  - shm     (transport_shm.cpp): P processes map one shm_open/mmap
//    segment of lock-free SPSC byte rings, one per ordered rank pair,
//    with a rendezvous/attach handshake and pid-probe dead-peer
//    detection. A SIGKILLed rank is noticed because its pid vanishes
//    while its published state still says "running".
//  - tcp     (transport_tcp.cpp): P processes full-mesh connected via a
//    rank-0 bootstrap listener that exchanges the rank -> port map;
//    length-prefixed frames, non-blocking sockets driven by a per-rank
//    progress thread. EOF/ECONNRESET without a prior FIN frame maps to
//    "rank killed".
//
// The contract every backend must honor (the conformance suite in
// tests/mp_transport_test.cpp checks it across the full matrix):
//  - per ordered (src, dst) pair, frames arrive exactly once and in send
//    order (the reliable channel adds its own end-to-end machinery ON TOP
//    of this: the fault plan drops/dups/delays frames *above* the
//    transport, at the sender gate, so a lossy run exercises recovery
//    identically on every backend);
//  - a peer that stops — finished, errored, or killed — is eventually
//    reported to the sink exactly once, and
//  - send() to a stopped peer is a silent no-op (the layer above detects
//    dead peers through rank liveness, not through send failures).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pdc::mp {

/// One transport-level packet. `payload` is the user/protocol data in
/// int64 words (the unit all traffic accounting uses).
struct Frame {
  enum Type : std::uint32_t {
    kData = 1,  ///< plain-channel message
    kRData,     ///< reliable-channel message (seq, dup/delay fault hints)
    kAck,       ///< transport ack: src acked dst's seq
    kFin,       ///< src's terminal RankState rides in `seq`
  };
  static constexpr std::uint32_t kFlagDup = 1u;  ///< deliver a second copy

  Type type = kData;
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint32_t flags = 0;
  std::int32_t delay = 0;  ///< reorder-limbo countdown (fault-plan hint)
  std::uint64_t seq = 0;
  std::vector<std::int64_t> payload;
};

/// Terminal rank-state codes carried by kFin frames and peer_stopped().
/// Numerically identical to detail::RankState in comm.cpp (static_asserted
/// there) — backends speak these without seeing the protocol's internals.
namespace rankstate {
inline constexpr int kRunning = 0;
inline constexpr int kFinished = 1;
inline constexpr int kKilled = 2;
inline constexpr int kErrored = 3;
}  // namespace rankstate

enum class TransportKind { kInproc, kShm, kTcp };

[[nodiscard]] const char* to_string(TransportKind k);
/// Parse "inproc" / "shm" / "tcp" (throws std::invalid_argument).
[[nodiscard]] TransportKind transport_kind_from_string(const std::string& s);

/// How a process joins a communicator world.
struct TransportOptions {
  TransportKind kind = TransportKind::kInproc;
  int rank = 0;   ///< this process's rank (ignored for inproc)
  int world = 1;  ///< total ranks
  /// Rendezvous point shared by all ranks: the shm segment name
  /// ("/pdc_..."), or the path of the file where rank 0 publishes its
  /// bootstrap TCP port. Unused for inproc.
  std::string endpoint;
  /// Per ordered rank pair, the shm ring's data capacity in bytes
  /// (rounded up to a power of two). One frame must fit entirely.
  std::size_t shm_ring_bytes = 1u << 18;
  /// Handshake deadline: how long start() waits for every rank to attach
  /// (shm) or connect (tcp) before throwing.
  std::chrono::milliseconds handshake_timeout{10000};
};

class Transport {
 public:
  /// Where incoming frames and liveness events land. Implemented by the
  /// communicator's shared state; backends call it from their progress
  /// thread (inproc: from the sending rank's thread).
  class Sink {
   public:
    virtual ~Sink() = default;
    /// A frame addressed to a rank local to this process.
    virtual void deliver(Frame&& f) = 0;
    /// Peer `rank` stopped with terminal RankState `state` (a
    /// detail::RankState value). Called at most once per peer.
    virtual void peer_stopped(int rank, int state) = 0;
  };

  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// True when each rank is its own OS process (shm, tcp): rank-kill
  /// must be a real SIGKILL and traffic ledgers are per process.
  [[nodiscard]] virtual bool cross_process() const = 0;
  /// The single local rank, or -1 when every rank is local (inproc).
  [[nodiscard]] virtual int local_rank() const = 0;

  /// Rendezvous + handshake; the sink starts receiving frames once this
  /// returns. Acts as a barrier across ranks on the process backends: no
  /// data frame can arrive before every rank has started.
  virtual void start(Sink* sink) = 0;

  /// Queue one frame toward f.dst. Thread-safe; never blocks on the
  /// destination's protocol state (it may briefly block on transport
  /// backpressure, e.g. a full ring with a live reader).
  virtual void send(Frame&& f) = 0;

  /// Best-effort drain of the outbound path (bounded wait).
  virtual void flush() = 0;

  /// Publish this process's terminal RankState to every peer.
  virtual void announce(int state) = 0;

  /// Wait (up to `linger`) for every peer to stop, then tear down. After
  /// close() the sink is never called again.
  virtual void close(std::chrono::milliseconds linger) = 0;
};

[[nodiscard]] std::unique_ptr<Transport> make_inproc_transport(int world);
[[nodiscard]] std::unique_ptr<Transport> make_shm_transport(
    const TransportOptions& opt);
[[nodiscard]] std::unique_ptr<Transport> make_tcp_transport(
    const TransportOptions& opt);
/// Dispatch on opt.kind.
[[nodiscard]] std::unique_ptr<Transport> make_transport(
    const TransportOptions& opt);

namespace wire {

/// Serialized frame: [u32 total_bytes][u32 type][i32 src][i32 dst]
/// [i32 tag][u32 flags][i32 delay][u32 pad][u64 seq][u64 payload_words]
/// [words...]. The pad keeps seq and the payload 8-aligned in any buffer
/// that starts aligned. Appended to `out` (not cleared), so senders can
/// batch frames.
inline constexpr std::size_t kFrameHeaderBytes = 48;

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// Decode one frame starting at p (n bytes available). Returns the bytes
/// consumed, or 0 if the buffer does not yet hold a complete frame.
/// Throws std::runtime_error on a malformed header.
std::size_t decode_frame(const std::uint8_t* p, std::size_t n, Frame& out);

/// Exact wire size of a frame.
[[nodiscard]] inline std::size_t frame_bytes(const Frame& f) {
  return kFrameHeaderBytes + 8 * f.payload.size();
}

}  // namespace wire

}  // namespace pdc::mp
